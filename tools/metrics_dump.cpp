// Standalone Prometheus metrics exposition tool (docs/OBSERVABILITY.md).
//
//   metrics_dump [--out=metrics.prom] [--cells=N] [--iterations=N]
//                [--log-level=LEVEL]
//   metrics_dump --check=<metrics.prom>
//
// Default mode places one synthetic design under its own FlowContext and
// renders the resulting registries (counters, self-times, memory,
// heartbeat) as a Prometheus text exposition — to stdout, or atomically
// to --out. The document is validated before it is emitted, so a zero
// exit code means "parseable exposition with at least one sample".
//
// --check validates an existing exposition file (e.g. the one a
// PlacementEngine --metrics-file produced) and prints its sample count;
// CI's health-gate uses this to prove the engine's periodic export is
// well-formed.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flow_context.h"
#include "common/log.h"
#include "common/metrics_export.h"
#include "gen/netlist_generator.h"
#include "place/placer.h"

namespace {

bool parseFlagValue(const std::string& arg, const char* name,
                    std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamplace;

  initLogLevelFromEnv();
  initLogJsonFromEnv();

  std::string out_path;
  std::string check_path;
  int cells = 400;
  int iterations = 150;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (parseFlagValue(arg, "--out", value)) {
      out_path = value;
    } else if (parseFlagValue(arg, "--check", value)) {
      check_path = value;
    } else if (parseFlagValue(arg, "--cells", value)) {
      cells = std::atoi(value.c_str());
    } else if (parseFlagValue(arg, "--iterations", value)) {
      iterations = std::atoi(value.c_str());
    } else if (parseFlagValue(arg, "--log-level", value)) {
      LogLevel level = LogLevel::kInfo;
      if (!parseLogLevel(value, level)) {
        std::fprintf(stderr, "error: unknown log level '%s'\n",
                     value.c_str());
        return 2;
      }
      setLogLevel(level);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--cells=N] [--iterations=N] "
                   "[--log-level=LEVEL] | --check=FILE\n",
                   argv[0]);
      return 2;
    }
  }

  std::string error;
  if (!check_path.empty()) {
    std::ifstream in(check_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", check_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::size_t samples = 0;
    if (!validatePrometheusText(ss.str(), &error, &samples)) {
      std::fprintf(stderr, "error: %s: %s\n", check_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("%s: valid exposition, %zu samples\n", check_path.c_str(),
                samples);
    return 0;
  }

  if (cells < 10 || iterations < 1) {
    std::fprintf(stderr, "error: need --cells >= 10 and --iterations >= 1\n");
    return 2;
  }

  GeneratorConfig cfg;
  cfg.designName = "metrics_dump";
  cfg.numCells = static_cast<Index>(cells);
  cfg.utilization = 0.7;
  cfg.seed = 7;
  const std::unique_ptr<Database> db = generateNetlist(cfg);

  PlacerOptions options;
  options.gp.maxIterations = iterations;
  options.gp.binsMax = 64;
  options.dp.passes = 1;
  options.telemetryLabel = cfg.designName;

  FlowContext::Config context_config;
  context_config.privateTrace = true;
  FlowContext context(context_config);
  placeDesign(*db, options, context);

  const std::string text =
      renderPrometheusMetrics({MetricsSource{cfg.designName, &context}});
  std::size_t samples = 0;
  if (!validatePrometheusText(text, &error, &samples)) {
    std::fprintf(stderr, "error: rendered exposition invalid: %s\n",
                 error.c_str());
    return 1;
  }
  if (samples == 0) {
    std::fprintf(stderr, "error: rendered exposition has no samples\n");
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    if (!writeMetricsFile(out_path, text, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s: %zu samples\n", out_path.c_str(), samples);
  }
  return 0;
}
