// CI driver for the PlacementEngine batch gate: places N synthetic
// designs concurrently through one engine and writes the BatchReport
// JSON, which check_report then gates per-job against the run-report
// baseline.
//
//   run_batch <batch.json> [jobs] [maxConcurrentJobs]
//
// Defaults: 3 jobs, 3 concurrent. Designs are the report_test scale
// (600 cells, 300 GP iterations) with distinct seeds, so every job
// satisfies the same baseline invariants as the single-run gate.
// Exits non-zero when any job fails, times out, or is illegal.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gen/netlist_generator.h"
#include "place/engine.h"

int main(int argc, char** argv) {
  using namespace dreamplace;

  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: %s <batch.json> [jobs=3] [maxConcurrentJobs=3]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_path = argv[1];
  const int num_jobs = argc > 2 ? std::atoi(argv[2]) : 3;
  const int concurrent = argc > 3 ? std::atoi(argv[3]) : 3;
  if (num_jobs < 1 || concurrent < 1) {
    std::fprintf(stderr, "error: jobs and maxConcurrentJobs must be >= 1\n");
    return 2;
  }

  std::vector<std::unique_ptr<Database>> designs;
  std::vector<PlacementJob> jobs;
  for (int i = 0; i < num_jobs; ++i) {
    GeneratorConfig cfg;
    cfg.designName = "batch" + std::to_string(i);
    cfg.numCells = 600;
    cfg.utilization = 0.7;
    cfg.seed = 7 + static_cast<std::uint64_t>(i);
    designs.push_back(generateNetlist(cfg));

    PlacementJob job;
    job.db = designs.back().get();
    job.name = cfg.designName;
    job.options.gp.maxIterations = 300;
    job.options.gp.binsMax = 64;
    job.options.dp.passes = 1;
    job.options.telemetryLabel = cfg.designName;
    jobs.push_back(std::move(job));
  }

  EngineOptions engine_options;
  engine_options.maxConcurrentJobs = concurrent;
  PlacementEngine engine(engine_options);
  const BatchReport batch = engine.run(std::move(jobs));

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << batch.toJson() << '\n';
  out.close();

  bool ok = batch.allSucceeded();
  for (const JobReport& job : batch.jobs) {
    std::printf("%-10s %-10s attempts=%d hpwl=%.6e overflow=%.4f legal=%d "
                "wall=%.1fs\n",
                job.name.c_str(), statusName(job.status), job.attempts,
                job.result.hpwl, job.result.overflow,
                job.result.legal ? 1 : 0, job.wallSeconds);
    if (job.status == JobStatus::kSucceeded && !job.result.legal) {
      ok = false;
    }
  }
  std::printf("batch: %d/%zu succeeded, wall %.1fs aggregate %.1fs -> %s\n",
              batch.succeeded, batch.jobs.size(), batch.wallSeconds,
              batch.aggregateSeconds, out_path.c_str());
  return ok ? 0 : 1;
}
