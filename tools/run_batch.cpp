// CI driver for the PlacementEngine batch gate: places N synthetic
// designs concurrently through one engine and writes the BatchReport
// JSON, which check_report then gates per-job against the run-report
// baseline.
//
//   run_batch <batch.json> [jobs] [maxConcurrentJobs] [flags...]
//
// Defaults: 3 jobs, 3 concurrent. Designs are the report_test scale
// (600 cells, 300 GP iterations) with distinct seeds, so every job
// satisfies the same baseline invariants as the single-run gate.
//
// Health-gate flags (docs/OBSERVABILITY.md):
//   --stall-seconds=S        watchdog stall threshold (0 = off)
//   --divergence-ratio=R     watchdog HPWL divergence ratio (0 = off)
//   --divergence-samples=N   consecutive over-ratio samples for a verdict
//   --timeout=S              per-job wall-clock budget (0 = off)
//   --metrics-file=PATH      Prometheus exposition, atomically rewritten
//   --metrics-period=S       seconds between metrics rewrites
//   --log-level=LEVEL        debug|info|warn|error|silent
//   --inject-diverge         add a job tuned to explode (expects: diverged)
//   --inject-stall           add a job that hangs before the flow
//                            (expects: stalled; requires --stall-seconds)
//
// Resume-gate flags (docs/FLOW.md):
//   --checkpoint-dir=DIR     flow checkpoints for every job (stage
//                            boundaries; enables engine retry-resume)
//   --checkpoint-every=N     additional mid-GP checkpoint period
//   --max-attempts=N         engine maxJobAttempts
//   --inject-interrupt       add a job "resume" running batch0's exact
//                            design that cancels itself once mid-GP; the
//                            retry must resume from the checkpoint and
//                            succeed (expects: succeeded, attempts 2,
//                            resumed). check_report --compare-jobs=
//                            batch0,resume then asserts bit-identical
//                            results. Requires --checkpoint-dir and
//                            --max-attempts >= 2.
//
// Injected jobs are EXPECTED to end in their watchdog verdict: the exit
// code treats "diverge ended diverged" as success and anything else as
// failure, so CI can assert the watchdog actually fired.
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flow_context.h"
#include "common/log.h"
#include "gen/netlist_generator.h"
#include "place/engine.h"

namespace {

bool parseFlagValue(const std::string& arg, const char* name,
                    std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

/// Cancels its own flow the first time GP reaches `iteration` — and only
/// that once, so the engine's resumed retry sails past the same iteration
/// untouched. onIteration runs on the flow's thread with its context
/// installed, which is exactly what requestCancel needs.
class CancelOnceAtIteration final : public dreamplace::TelemetrySink {
 public:
  explicit CancelOnceAtIteration(int iteration) : iteration_(iteration) {}

  void onIteration(const dreamplace::IterationStats& stats) override {
    if (!fired_ && stats.iteration >= iteration_) {
      fired_ = true;
      dreamplace::FlowContext::current().requestCancel();
    }
  }

 private:
  int iteration_;
  bool fired_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamplace;

  initLogLevelFromEnv();
  initLogJsonFromEnv();

  EngineOptions engine_options;
  bool inject_diverge = false;
  bool inject_stall = false;
  bool inject_interrupt = false;
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--inject-diverge") {
      inject_diverge = true;
    } else if (arg == "--inject-stall") {
      inject_stall = true;
    } else if (arg == "--inject-interrupt") {
      inject_interrupt = true;
    } else if (parseFlagValue(arg, "--checkpoint-dir", value)) {
      checkpoint_dir = value;
    } else if (parseFlagValue(arg, "--checkpoint-every", value)) {
      checkpoint_every = std::atoi(value.c_str());
    } else if (parseFlagValue(arg, "--max-attempts", value)) {
      engine_options.maxJobAttempts = std::atoi(value.c_str());
    } else if (parseFlagValue(arg, "--stall-seconds", value)) {
      engine_options.stallSeconds = std::atof(value.c_str());
    } else if (parseFlagValue(arg, "--divergence-ratio", value)) {
      engine_options.divergenceHpwlRatio = std::atof(value.c_str());
    } else if (parseFlagValue(arg, "--divergence-samples", value)) {
      engine_options.divergenceSamples = std::atoi(value.c_str());
    } else if (parseFlagValue(arg, "--timeout", value)) {
      engine_options.jobTimeoutSeconds = std::atof(value.c_str());
    } else if (parseFlagValue(arg, "--metrics-file", value)) {
      engine_options.metricsFile = value;
    } else if (parseFlagValue(arg, "--metrics-period", value)) {
      engine_options.metricsPeriodSeconds = std::atof(value.c_str());
    } else if (parseFlagValue(arg, "--log-level", value)) {
      LogLevel level = LogLevel::kInfo;
      if (!parseLogLevel(value, level)) {
        std::fprintf(stderr, "error: unknown log level '%s'\n",
                     value.c_str());
        return 2;
      }
      setLogLevel(level);
    } else if (arg.compare(0, 2, "--") == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.empty() || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: %s <batch.json> [jobs=3] [maxConcurrentJobs=3] "
                 "[flags...]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_path = positional[0];
  const int num_jobs =
      positional.size() > 1 ? std::atoi(positional[1].c_str()) : 3;
  const int concurrent =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 3;
  if (num_jobs < 1 || concurrent < 1) {
    std::fprintf(stderr, "error: jobs and maxConcurrentJobs must be >= 1\n");
    return 2;
  }
  if (inject_stall && engine_options.stallSeconds <= 0.0) {
    std::fprintf(stderr, "error: --inject-stall requires --stall-seconds\n");
    return 2;
  }
  if (inject_diverge && engine_options.divergenceHpwlRatio <= 0.0) {
    std::fprintf(stderr,
                 "error: --inject-diverge requires --divergence-ratio\n");
    return 2;
  }
  if (inject_interrupt &&
      (checkpoint_dir.empty() || engine_options.maxJobAttempts < 2)) {
    std::fprintf(stderr,
                 "error: --inject-interrupt requires --checkpoint-dir and "
                 "--max-attempts >= 2\n");
    return 2;
  }

  std::vector<std::unique_ptr<Database>> designs;
  std::vector<PlacementJob> jobs;
  std::map<std::string, const char*> expected;  // injected job -> status
  for (int i = 0; i < num_jobs; ++i) {
    GeneratorConfig cfg;
    cfg.designName = "batch" + std::to_string(i);
    cfg.numCells = 600;
    cfg.utilization = 0.7;
    cfg.seed = 7 + static_cast<std::uint64_t>(i);
    designs.push_back(generateNetlist(cfg));

    PlacementJob job;
    job.db = designs.back().get();
    job.name = cfg.designName;
    job.options.gp.maxIterations = 300;
    job.options.gp.binsMax = 64;
    job.options.dp.passes = 1;
    job.options.telemetryLabel = cfg.designName;
    job.options.checkpointDir = checkpoint_dir;
    job.options.checkpointEveryIterations = checkpoint_every;
    jobs.push_back(std::move(job));
  }

  std::unique_ptr<CancelOnceAtIteration> interrupt_sink;
  if (inject_interrupt) {
    // Exactly batch0's design and flow options (generator seed 7), so the
    // resumed run's report must be bit-identical to batch0's — that is
    // what check_report --compare-jobs=batch0,resume asserts. Only the
    // names differ (distinct checkpoint file, distinct report label),
    // plus the sink that cancels the first attempt mid-GP.
    GeneratorConfig cfg;
    cfg.designName = "resume";
    cfg.numCells = 600;
    cfg.utilization = 0.7;
    cfg.seed = 7;
    designs.push_back(generateNetlist(cfg));

    interrupt_sink = std::make_unique<CancelOnceAtIteration>(60);
    PlacementJob job;
    job.db = designs.back().get();
    job.name = cfg.designName;
    job.options.gp.maxIterations = 300;
    job.options.gp.binsMax = 64;
    job.options.dp.passes = 1;
    job.options.telemetryLabel = cfg.designName;
    job.options.checkpointDir = checkpoint_dir;
    job.options.checkpointEveryIterations = checkpoint_every;
    job.options.telemetry = interrupt_sink.get();
    jobs.push_back(std::move(job));
  }

  if (inject_diverge) {
    // SGD with an absurd learning rate: positions explode within a few
    // iterations, so the published HPWL blows past the running best (or
    // goes non-finite) and the watchdog must deliver `diverged` long
    // before the iteration cap or any --timeout.
    GeneratorConfig cfg;
    cfg.designName = "diverge";
    cfg.numCells = 400;
    cfg.utilization = 0.7;
    cfg.seed = 101;
    designs.push_back(generateNetlist(cfg));

    PlacementJob job;
    job.db = designs.back().get();
    job.name = cfg.designName;
    job.options.gp.solver = SolverKind::kSgdMomentum;
    job.options.gp.lr = 1.0e6;
    job.options.gp.maxIterations = 100000;
    job.options.gp.binsMax = 64;
    job.options.telemetryLabel = cfg.designName;
    jobs.push_back(std::move(job));
    expected[cfg.designName] = "diverged";
  }

  if (inject_stall) {
    // The attempt hook runs with the job's FlowContext installed and
    // never returns on its own; the watchdog's stall policy must cancel
    // it (the hook polls throwIfInterrupted, the cooperative cancel
    // point).
    GeneratorConfig cfg;
    cfg.designName = "stall";
    cfg.numCells = 400;
    cfg.utilization = 0.7;
    cfg.seed = 102;
    designs.push_back(generateNetlist(cfg));

    PlacementJob job;
    job.db = designs.back().get();
    job.name = cfg.designName;
    job.options.gp.binsMax = 64;
    job.options.telemetryLabel = cfg.designName;
    job.attemptHook = [](int) {
      while (true) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        FlowContext::current().throwIfInterrupted();
      }
    };
    jobs.push_back(std::move(job));
    expected[cfg.designName] = "stalled";
  }

  engine_options.maxConcurrentJobs = concurrent;
  PlacementEngine engine(engine_options);
  const BatchReport batch = engine.run(std::move(jobs));

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << batch.toJson() << '\n';
  out.close();

  bool ok = true;
  for (const JobReport& job : batch.jobs) {
    const auto it = expected.find(job.name);
    const char* want = it == expected.end() ? "succeeded" : it->second;
    bool matched = std::string(statusName(job.status)) == want;
    if (inject_interrupt && job.name == "resume" &&
        (job.attempts < 2 || !job.resumed)) {
      // The injected cancel must have cost an attempt AND the retry must
      // have continued from the checkpoint; a silent from-scratch restart
      // would still "succeed" but prove nothing about resume.
      matched = false;
    }
    std::printf("%-10s %-10s attempts=%d resumed=%d hpwl=%.6e overflow=%.4f "
                "legal=%d wall=%.1fs%s\n",
                job.name.c_str(), statusName(job.status), job.attempts,
                job.resumed ? 1 : 0, job.result.hpwl, job.result.overflow,
                job.result.legal ? 1 : 0, job.wallSeconds,
                matched ? "" : "  [UNEXPECTED]");
    if (!matched) {
      ok = false;
    }
    if (job.status == JobStatus::kSucceeded && !job.result.legal) {
      ok = false;
    }
  }
  std::printf("batch: %d/%zu succeeded (%d diverged, %d stalled), "
              "wall %.1fs aggregate %.1fs -> %s\n",
              batch.succeeded, batch.jobs.size(), batch.diverged,
              batch.stalled, batch.wallSeconds, batch.aggregateSeconds,
              out_path.c_str());
  return ok ? 0 : 1;
}
