// CI regression gate: checks a flow run report (place/report.h JSON)
// against a baseline of deterministic count invariants.
//
//   check_report <report.json> [<baseline.json>]
//                [--expect-status=<job>:<status>]...
//                [--compare-jobs=<jobA>,<jobB>]
//
// <report.json> may be a single run report (dreamplace.run_report.v1) or
// a PlacementEngine batch report (dreamplace.batch_report.v1); for a
// batch, every job must have succeeded and every job's embedded run
// report is checked against the same baseline. --expect-status overrides
// the required terminal status for one job — the CI health-gate uses it
// to assert that injected sick jobs end exactly `diverged` / `stalled`
// (such jobs carry no run report and are exempt from the baseline).
//
// --compare-jobs is the CI resume-gate: it requires a batch report and
// asserts that the two named succeeded jobs agree bit-for-bit on every
// result./design. leaf and every resume-comparable counter (wall-times
// and resume-variant counters excluded — see
// compareBatchJobsForResume, place/report_check.h). The baseline
// argument is optional in this mode; when given, the baseline checks
// run as well.
//
// Prints one PASS/FAIL line per baseline check and exits non-zero when
// any check fails or either document is malformed. Baselines compare
// *counts* (transform-per-solve ratios, workspace allocations, dropped
// trace events), never wall-times — see tools/report_baseline.json and
// docs/OBSERVABILITY.md.
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "place/report_check.h"

namespace {

bool readFile(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamplace;

  BatchCheckOptions check_options;
  std::string compare_job_a;
  std::string compare_job_b;
  bool compare_jobs = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kCompare = "--compare-jobs=";
    if (arg.compare(0, kCompare.size(), kCompare) == 0) {
      const std::string spec = arg.substr(kCompare.size());
      const std::size_t comma = spec.find(',');
      if (comma == std::string::npos || comma == 0 ||
          comma + 1 == spec.size()) {
        std::fprintf(stderr,
                     "error: bad --compare-jobs '%s' (want <jobA>,<jobB>)\n",
                     spec.c_str());
        return 2;
      }
      compare_job_a = spec.substr(0, comma);
      compare_job_b = spec.substr(comma + 1);
      compare_jobs = true;
      continue;
    }
    const std::string kExpect = "--expect-status=";
    if (arg.compare(0, kExpect.size(), kExpect) == 0) {
      const std::string spec = arg.substr(kExpect.size());
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == spec.size()) {
        std::fprintf(stderr,
                     "error: bad --expect-status '%s' (want <job>:<status>)\n",
                     spec.c_str());
        return 2;
      }
      check_options.expectedStatus[spec.substr(0, colon)] =
          spec.substr(colon + 1);
      continue;
    }
    positional.push_back(argv[i]);
  }

  const bool want_baseline = !compare_jobs || positional.size() == 2;
  if (positional.size() != (want_baseline ? 2u : 1u)) {
    std::fprintf(stderr,
                 "usage: %s <report.json> [<baseline.json>] "
                 "[--expect-status=<job>:<status>]... "
                 "[--compare-jobs=<jobA>,<jobB>]\n",
                 argv[0]);
    return 2;
  }

  std::string report_text;
  std::string baseline_text;
  if (!readFile(positional[0], report_text)) {
    std::fprintf(stderr, "error: cannot read report %s\n", positional[0]);
    return 2;
  }
  if (want_baseline && !readFile(positional[1], baseline_text)) {
    std::fprintf(stderr, "error: cannot read baseline %s\n", positional[1]);
    return 2;
  }

  FlatJson report;
  FlatJson baseline;
  std::string error;
  if (!parseJsonFlat(report_text, report, &error)) {
    std::fprintf(stderr, "error: report %s: %s\n", positional[0],
                 error.c_str());
    return 2;
  }
  if (want_baseline && !parseJsonFlat(baseline_text, baseline, &error)) {
    std::fprintf(stderr, "error: baseline %s: %s\n", positional[1],
                 error.c_str());
    return 2;
  }

  int compare_failed = 0;
  if (compare_jobs) {
    if (!isBatchReport(report)) {
      std::fprintf(stderr,
                   "error: --compare-jobs requires a batch report, %s is "
                   "not one\n",
                   positional[0]);
      return 2;
    }
    std::vector<CheckResult> compared;
    if (!compareBatchJobsForResume(report, compare_job_a, compare_job_b,
                                   compared, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    for (const CheckResult& result : compared) {
      if (!result.passed) {
        ++compare_failed;
      }
      std::printf("%s  [%s==%s] %s  (%s)\n", result.passed ? "PASS" : "FAIL",
                  compare_job_a.c_str(), compare_job_b.c_str(),
                  result.description.c_str(), result.detail.c_str());
    }
    std::printf("%zu resume-identity checks, %d failed\n", compared.size(),
                compare_failed);
    if (!want_baseline) {
      return compare_failed == 0 ? 0 : 1;
    }
  }

  if (isBatchReport(report)) {
    std::vector<BatchJobCheck> jobs;
    if (!checkBatchReport(report, baseline, jobs, &error, check_options)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    int failed = 0;
    std::size_t checks = 0;
    for (const BatchJobCheck& job : jobs) {
      if (!job.succeeded) {
        ++failed;
        std::printf("FAIL  [%s] job status %s (expected %s)\n",
                    job.name.c_str(), job.status.c_str(),
                    job.expected.c_str());
        continue;
      }
      if (job.status != "succeeded") {
        std::printf("PASS  [%s] job status %s (as expected)\n",
                    job.name.c_str(), job.status.c_str());
        continue;
      }
      for (const CheckResult& result : job.results) {
        ++checks;
        if (!result.passed) {
          ++failed;
        }
        std::printf("%s  [%s] %s  (%s)\n", result.passed ? "PASS" : "FAIL",
                    job.name.c_str(), result.description.c_str(),
                    result.detail.c_str());
      }
    }
    std::printf("%zu jobs, %zu checks, %d failed\n", jobs.size(), checks,
                failed);
    return (failed + compare_failed) == 0 ? 0 : 1;
  }

  std::vector<CheckResult> results;
  if (!checkReport(report, baseline, results, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  int failed = 0;
  for (const CheckResult& result : results) {
    if (!result.passed) {
      ++failed;
    }
    std::printf("%s  %s  (%s)\n", result.passed ? "PASS" : "FAIL",
                result.description.c_str(), result.detail.c_str());
  }
  std::printf("%zu checks, %d failed\n", results.size(), failed);
  return (failed + compare_failed) == 0 ? 0 : 1;
}
