// Movable-macro legalization for mixed-size placement (the ePlace-MS
// setting the paper's algorithm family covers).
//
// Global placement treats macros as ordinary (large) charges; before
// standard-cell legalization the macros themselves must become legal:
// snapped to the row/site grid, inside the die, and non-overlapping with
// fixed cells and each other. Macros are processed in decreasing area
// order; each snaps to the grid position nearest its GP location that is
// free, found by an expanding ring search. Once placed, macros are
// treated as obstacles by the standard-cell legalizers and the detailed
// placer (see lg/segments.h, dp/detailed_placer.cpp).
#pragma once

#include <vector>

#include "db/database.h"

namespace dreamplace {

/// A movable cell taller than one row is a macro for legalization
/// purposes (standard cells are exactly row height).
inline bool isMovableMacro(const Database& db, Index cell) {
  return db.isMovable(cell) && db.cellHeight(cell) > db.rowHeight();
}

struct MacroLegalizerResult {
  Index macros = 0;
  Index failed = 0;
  double totalDisplacement = 0.0;
};

class MacroLegalizer {
 public:
  struct Options {
    /// Ring-search radius limit in row heights before giving up.
    int maxSearchRadiusRows = 64;
  };

  explicit MacroLegalizer(Options options) : options_(options) {}
  MacroLegalizer() : MacroLegalizer(Options()) {}

  MacroLegalizerResult run(Database& db) const;

 private:
  Options options_;
};

}  // namespace dreamplace
