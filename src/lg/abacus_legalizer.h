// Abacus row-based legalization (Spindler et al., ISPD'08; paper Sec. III-E).
//
// Cells are inserted in x order; for each cell the candidate rows around
// its position are tried, simulating the insertion into the row's cluster
// structure (clusters of abutting cells whose optimal position is the
// weighted mean of member targets, merged while they overlap). The row
// with the cheapest resulting displacement wins. This achieves minimal
// movement relative to the greedy packing pass.
#pragma once

#include "db/database.h"
#include "lg/greedy_legalizer.h"

namespace dreamplace {

class AbacusLegalizer {
 public:
  struct Options {
    int rowSearchWindow = 8;  ///< Rows tried on each side of the target.
  };

  explicit AbacusLegalizer(Options options) : options_(options) {}
  AbacusLegalizer() : AbacusLegalizer(Options()) {}

  /// Legalizes all movable cells (row/site aligned, no overlap), minimizing
  /// total displacement from their current (GP or greedy-legalized)
  /// positions.
  LegalizerResult run(Database& db) const;

 private:
  Options options_;
};

}  // namespace dreamplace
