#include "lg/macro_legalizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

bool placeable(const Database& db, const std::vector<Box<Coord>>& placed,
               const Box<Coord>& candidate) {
  if (!db.dieArea().containsBox(candidate)) {
    return false;
  }
  for (const Box<Coord>& other : placed) {
    if (other.overlaps(candidate)) {
      return false;
    }
  }
  for (Index i = db.numMovable(); i < db.numCells(); ++i) {
    if (db.cellBox(i).overlaps(candidate)) {
      return false;
    }
  }
  return true;
}

}  // namespace

MacroLegalizerResult MacroLegalizer::run(Database& db) const {
  ScopedTimer timer("lg/macro");
  MacroLegalizerResult result;

  std::vector<Index> macros;
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (isMovableMacro(db, i)) {
      macros.push_back(i);
    }
  }
  result.macros = static_cast<Index>(macros.size());
  if (macros.empty()) {
    return result;
  }
  // Big macros first: they have the fewest feasible positions.
  std::sort(macros.begin(), macros.end(), [&](Index a, Index b) {
    return db.cellArea(a) > db.cellArea(b);
  });

  const Coord site = db.siteWidth();
  const Coord row_h = db.rowHeight();
  const Coord x_base = db.rows().empty() ? db.dieArea().xl
                                         : db.rows().front().xl;
  const Coord y_base = db.rows().empty() ? db.dieArea().yl
                                         : db.rows().front().y;

  std::vector<Box<Coord>> placed;
  for (Index macro : macros) {
    const Coord w = db.cellWidth(macro);
    const Coord h = db.cellHeight(macro);
    // Snap the GP location to the grid.
    const Coord want_x =
        x_base + std::round((db.cellX(macro) - x_base) / site) * site;
    const Coord want_y =
        y_base + std::round((db.cellY(macro) - y_base) / row_h) * row_h;

    bool done = false;
    // Expanding ring search over (dx, dy) in grid steps. The ring at
    // radius r is walked exhaustively; radius is measured in rows and the
    // x step count is scaled so both axes cover similar distances.
    const auto x_steps_per_row = std::max<int>(1, static_cast<int>(row_h / site));
    for (int r = 0; r <= options_.maxSearchRadiusRows && !done; ++r) {
      for (int dy = -r; dy <= r && !done; ++dy) {
        const int x_extent = (r - std::abs(dy)) * x_steps_per_row;
        // Only the ring boundary: interior was covered at smaller radii,
        // except we sweep the full x range when |dy| == r.
        std::vector<int> dxs;
        if (std::abs(dy) == r) {
          for (int dx = -x_extent; dx <= x_extent; ++dx) {
            dxs.push_back(dx);
          }
        } else {
          dxs = {-x_extent, x_extent};
        }
        for (int dx : dxs) {
          const Coord x = want_x + dx * site;
          const Coord y = want_y + dy * row_h;
          const Box<Coord> candidate{x, y, x + w, y + h};
          if (placeable(db, placed, candidate)) {
            result.totalDisplacement += std::abs(x - db.cellX(macro)) +
                                        std::abs(y - db.cellY(macro));
            db.setCellPosition(macro, x, y);
            placed.push_back(candidate);
            done = true;
            break;
          }
        }
      }
    }
    if (!done) {
      ++result.failed;
      logWarn("macro legalizer: no space for %s",
              db.cellName(macro).c_str());
    }
  }
  return result;
}

}  // namespace dreamplace
