#include "lg/greedy_legalizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/log.h"
#include "common/timer.h"
#include "lg/segments.h"

namespace dreamplace {

namespace {

/// Free-space bookkeeping for one row segment: a sorted list of free
/// intervals. Unlike a single packing frontier, this never strands space
/// behind a cell placed to the right of a gap, which matters at high
/// utilization.
struct SegmentState {
  RowSegment seg;
  /// Sorted, disjoint free intervals [xl, xh).
  std::vector<std::pair<Coord, Coord>> free;
  Coord largestFree = 0;

  void refreshLargest() {
    largestFree = 0;
    for (const auto& [xl, xh] : free) {
      largestFree = std::max(largestFree, xh - xl);
    }
  }
};

}  // namespace

LegalizerResult GreedyLegalizer::run(Database& db) const {
  ScopedTimer timer("lg/greedy");
  LegalizerResult result;

  std::vector<SegmentState> segments;
  for (const RowSegment& seg : buildRowSegments(db)) {
    SegmentState state;
    state.seg = seg;
    state.free.emplace_back(seg.xl, seg.xh);
    state.largestFree = seg.xh - seg.xl;
    segments.push_back(std::move(state));
  }
  DP_ASSERT_MSG(!segments.empty(), "no free row segments to legalize into");

  const Coord row_height = db.rowHeight();
  const Coord y_base = db.rows().front().y;
  const auto num_rows = static_cast<Index>(db.rows().size());
  std::vector<std::vector<int>> by_row(num_rows);
  for (int s = 0; s < static_cast<int>(segments.size()); ++s) {
    by_row[segments[s].seg.row].push_back(s);
  }

  // Process in x order (classic Tetris sweep).
  std::vector<Index> order;
  order.reserve(db.numMovable());
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (!isMovableMacro(db, i)) {
      order.push_back(i);  // macros are legalized separately (obstacles)
    }
  }
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return db.cellX(a) < db.cellX(b);
  });

  const Coord site = db.siteWidth();
  for (Index cell : order) {
    const Coord want_x = db.cellX(cell);
    const Coord want_y = db.cellY(cell);
    const Coord width = db.cellWidth(cell);
    const auto want_row = static_cast<Index>(
        std::clamp<double>(std::round((want_y - y_base) / row_height), 0,
                           num_rows - 1));

    double best_cost = std::numeric_limits<double>::infinity();
    int best_seg = -1;
    int best_interval = -1;
    Coord best_x = 0;

    auto try_row = [&](Index r) {
      for (int s : by_row[r]) {
        SegmentState& state = segments[s];
        if (state.largestFree < width) {
          continue;
        }
        const double row_cost = std::abs(state.seg.y - want_y);
        if (row_cost >= best_cost) {
          continue;
        }
        for (int k = 0; k < static_cast<int>(state.free.size()); ++k) {
          const auto [fxl, fxh] = state.free[k];
          if (fxh - fxl < width) {
            continue;
          }
          // Site-aligned position nearest want_x inside this interval.
          Coord x = clampSafe(want_x, fxl, fxh - width);
          x = state.seg.xl +
              std::round((x - state.seg.xl) / site) * site;
          x = clampSafe(x, fxl, fxh - width);
          // Both interval ends are site-aligned (segments are), so the
          // clamped x stays aligned.
          const double cost = std::abs(x - want_x) + row_cost;
          if (cost < best_cost) {
            best_cost = cost;
            best_seg = s;
            best_interval = k;
            best_x = x;
          }
        }
      }
    };

    // Expanding row search around the target row.
    for (Index d = 0; d < num_rows; ++d) {
      bool any = false;
      if (want_row + d < num_rows) {
        try_row(want_row + d);
        any = true;
      }
      if (d > 0 && want_row - d >= 0) {
        try_row(want_row - d);
        any = true;
      }
      if (!any) {
        break;
      }
      if (best_seg >= 0 && d > options_.rowSearchWindow &&
          d * row_height > best_cost) {
        break;
      }
    }

    if (best_seg < 0) {
      ++result.failed;
      continue;
    }
    SegmentState& state = segments[best_seg];
    db.setCellPosition(cell, best_x, state.seg.y);
    // Split the chosen interval around [best_x, best_x + width).
    const auto [fxl, fxh] = state.free[best_interval];
    state.free.erase(state.free.begin() + best_interval);
    if (best_x + width < fxh) {
      state.free.insert(state.free.begin() + best_interval,
                        {best_x + width, fxh});
    }
    if (best_x > fxl) {
      state.free.insert(state.free.begin() + best_interval, {fxl, best_x});
    }
    state.refreshLargest();

    ++result.placed;
    result.totalDisplacement += best_cost;
    result.maxDisplacement = std::max(result.maxDisplacement, best_cost);
  }
  if (result.failed > 0) {
    logWarn("greedy legalizer: %d cells could not be placed", result.failed);
  }
  return result;
}

}  // namespace dreamplace
