#include "lg/abacus_legalizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "lg/segments.h"

namespace dreamplace {

namespace {

/// A maximal group of abutting cells within a segment. Optimal cluster
/// position minimizes sum_i e_i (x_c + offset_i - x_i*)^2, giving
/// x_c = q / e with q = sum e_i (x_i* - offset_i).
struct Cluster {
  Coord x = 0;      ///< Cluster left edge.
  double e = 0;     ///< Total weight.
  double q = 0;     ///< Weighted target sum.
  Coord w = 0;      ///< Total width.
  int first = -1;   ///< First member index into the segment's member list.
  int count = 0;    ///< Number of member cells.
};

struct SegmentCells {
  RowSegment seg;
  std::vector<Index> members;    ///< Cells in insertion (x) order.
  std::vector<Cluster> clusters;
  Coord usedWidth = 0;           ///< Total width of committed members.
};

/// Simulates appending a cell with target x `tx` and width `width` into
/// the segment, returning the final x of the cell (or infinity if it does
/// not fit) without modifying the segment. The append can only merge the
/// tail run of existing clusters, so the simulation walks backwards over
/// them carrying a virtual merged cluster — no copy, no allocation. The
/// arithmetic mirrors commitPlace's collapse expression-for-expression so
/// trial and commit agree bit-for-bit.
Coord trialPlace(const SegmentCells& segment, double weight, Coord tx,
                 Coord width) {
  const Coord xl = segment.seg.xl;
  const Coord xh = segment.seg.xh;
  if (segment.usedWidth + width > xh - xl) {
    return std::numeric_limits<Coord>::infinity();
  }
  double e = weight;
  double q = weight * tx;
  Coord w = width;
  std::size_t i = segment.clusters.size();
  for (;;) {
    const Coord x = std::clamp(static_cast<Coord>(q / e), xl, xh - w);
    if (i == 0) {
      return x + w - width;
    }
    const Cluster& prev = segment.clusters[i - 1];
    if (prev.x + prev.w <= x) {
      return x + w - width;
    }
    // Merge prev into the virtual tail cluster: members of the tail sit
    // after prev's, offset by prev.w; their targets shift accordingly in q.
    q = prev.q + (q - e * prev.w);
    e = prev.e + e;
    w = prev.w + w;
    --i;
  }
}

/// Commits the append the trial simulated: pushes a singleton cluster and
/// collapses overlapping tail clusters in place.
void commitPlace(SegmentCells& segment, double weight, Coord tx,
                 Coord width) {
  const Coord xl = segment.seg.xl;
  const Coord xh = segment.seg.xh;
  DP_ASSERT(segment.usedWidth + width <= xh - xl);
  std::vector<Cluster>& clusters = segment.clusters;

  Cluster fresh;
  fresh.e = weight;
  fresh.q = weight * tx;
  fresh.w = width;
  fresh.x = std::clamp(tx, xl, xh - width);
  fresh.first = static_cast<int>(segment.members.size());
  fresh.count = 1;
  clusters.push_back(fresh);

  // Collapse: while the last cluster overlaps its predecessor, merge.
  for (;;) {
    Cluster& last = clusters.back();
    last.x = std::clamp(static_cast<Coord>(last.q / last.e), xl,
                        xh - last.w);
    if (clusters.size() < 2) {
      break;
    }
    Cluster& prev = clusters[clusters.size() - 2];
    if (prev.x + prev.w <= last.x) {
      break;
    }
    prev.q += last.q - last.e * prev.w;
    prev.e += last.e;
    prev.w += last.w;
    prev.count += last.count;
    clusters.pop_back();
  }
  segment.usedWidth += width;
}

}  // namespace

LegalizerResult AbacusLegalizer::run(Database& db) const {
  ScopedTimer timer("lg/abacus");
  LegalizerResult result;

  std::vector<SegmentCells> segments;
  for (const RowSegment& seg : buildRowSegments(db)) {
    segments.push_back({seg, {}, {}, 0});
  }
  DP_ASSERT_MSG(!segments.empty(), "no free row segments to legalize into");

  const auto num_rows = static_cast<Index>(db.rows().size());
  const Coord row_height = db.rowHeight();
  const Coord y_base = db.rows().front().y;
  std::vector<std::vector<int>> by_row(num_rows);
  for (int s = 0; s < static_cast<int>(segments.size()); ++s) {
    by_row[segments[s].seg.row].push_back(s);
  }

  std::vector<Index> order;
  order.reserve(db.numMovable());
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (!isMovableMacro(db, i)) {
      order.push_back(i);  // macros are legalized separately (obstacles)
    }
  }
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return db.cellX(a) < db.cellX(b);
  });

  // Candidate segments are scored in fixed *distance waves*: wave d holds
  // the segments of rows want_row+d then want_row-d, waves are grouped
  // into chunks of kChunkDistances, and each chunk's trials run as one
  // parallel job followed by an ordered min-fold. The fold applies the
  // same wave-boundary stopping rule the serial scan used, and the
  // distance-based prune only ever skips candidates whose displacement
  // lower bound already meets the incumbent (which can never win the
  // strict-< argmin), so the selected segment — and therefore every final
  // position — is identical to the one-candidate-at-a-time serial scan at
  // any thread count.
  constexpr Index kChunkDistances = 8;
  constexpr std::size_t kParallelThreshold = 32;
  const int poolThreads = currentThreadPool().threads();
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  std::vector<int> candidates;       ///< Segment index per candidate.
  std::vector<std::size_t> waveEnd;  ///< Candidate count after each wave.
  std::vector<Index> waveD;          ///< Distance of each wave.
  std::vector<char> waveAny;         ///< Wave had at least one row in range.
  std::vector<double> costs;
  std::vector<char> tried;
  std::int64_t segments_tried = 0;

  for (Index cell : order) {
    const Coord want_x = db.cellX(cell);
    const Coord want_y = db.cellY(cell);
    const Coord width = db.cellWidth(cell);
    const auto want_row = static_cast<Index>(
        std::clamp<double>(std::round((want_y - y_base) / row_height), 0,
                           num_rows - 1));

    double best_cost = kInfinity;
    int best_seg = -1;

    bool done = false;
    for (Index d = 0; d < num_rows && !done; d += kChunkDistances) {
      const Index d_end = std::min<Index>(d + kChunkDistances, num_rows);
      candidates.clear();
      waveEnd.clear();
      waveD.clear();
      waveAny.clear();
      for (Index dd = d; dd < d_end; ++dd) {
        bool any = false;
        if (want_row + dd < num_rows) {
          for (int s : by_row[want_row + dd]) {
            candidates.push_back(s);
          }
          any = true;
        }
        if (dd > 0 && want_row - dd >= 0) {
          for (int s : by_row[want_row - dd]) {
            candidates.push_back(s);
          }
          any = true;
        }
        waveD.push_back(dd);
        waveAny.push_back(any);
        waveEnd.push_back(candidates.size());
      }

      const std::size_t n = candidates.size();
      costs.resize(n);
      tried.assign(n, 0);
      const double chunk_best = best_cost;
      const auto score = [&](std::size_t i) {
        const SegmentCells& segment = segments[candidates[i]];
        if (want_x + width < segment.seg.xl || want_x > segment.seg.xh) {
          // Far-away segment: its displacement cannot beat the chunk-start
          // incumbent, so skip the trial (a skipped candidate's true cost
          // is >= the incumbent, so it can never win the strict-< fold).
          const double lower_bound =
              std::max<double>(segment.seg.xl - want_x - width,
                               want_x - segment.seg.xh) +
              std::abs(segment.seg.y - want_y);
          if (lower_bound >= chunk_best) {
            costs[i] = kInfinity;
            return;
          }
        }
        tried[i] = 1;
        const Coord x = trialPlace(segment, 1.0, want_x, width);
        costs[i] = std::isfinite(x)
                       ? std::abs(x - want_x) + std::abs(segment.seg.y - want_y)
                       : kInfinity;
      };
      if (poolThreads > 1 && n >= kParallelThreshold) {
        parallelForBlocked("lg/score", static_cast<Index>(n), 8,
                           [&](Index lo, Index hi, int) {
                             for (Index i = lo; i < hi; ++i) {
                               score(static_cast<std::size_t>(i));
                             }
                           });
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          score(i);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        segments_tried += tried[i];
      }

      // Ordered fold: replay the serial scan's wave order and stopping
      // rule over the precomputed costs.
      std::size_t i = 0;
      for (std::size_t wave = 0; wave < waveEnd.size() && !done; ++wave) {
        for (; i < waveEnd[wave]; ++i) {
          if (costs[i] < best_cost) {
            best_cost = costs[i];
            best_seg = candidates[i];
          }
        }
        if (!waveAny[wave]) {
          done = true;
          break;
        }
        if (best_seg >= 0 && waveD[wave] > options_.rowSearchWindow &&
            waveD[wave] * row_height > best_cost) {
          done = true;
          break;
        }
      }
    }

    if (best_seg < 0) {
      ++result.failed;
      continue;
    }
    SegmentCells& segment = segments[best_seg];
    commitPlace(segment, 1.0, want_x, width);
    segment.members.push_back(cell);
    ++result.placed;
    result.totalDisplacement += best_cost;
    result.maxDisplacement = std::max(result.maxDisplacement, best_cost);
  }
  currentCounterRegistry().add("lg/segments_tried", segments_tried);

  // Commit final coordinates: walk each segment's clusters, snapping to the
  // site grid (cells have integral site widths, so packing is preserved).
  for (SegmentCells& segment : segments) {
    const Coord site =
        db.rows()[segment.seg.row].siteWidth > 0
            ? db.rows()[segment.seg.row].siteWidth
            : 1;
    int member = 0;
    Coord prev_end = segment.seg.xl;
    for (const Cluster& cluster : segment.clusters) {
      Coord x = segment.seg.xl +
                std::floor((cluster.x - segment.seg.xl) / site) * site;
      // Snapping can collide with the previous cluster's tail; packing
      // left-to-right from prev_end is always feasible because cell widths
      // are site multiples and Abacus guaranteed the total fits.
      x = std::clamp(x, prev_end, segment.seg.xh - cluster.w);
      x = std::max(x, prev_end);
      for (int k = 0; k < cluster.count; ++k) {
        const Index cell = segment.members[member++];
        db.setCellPosition(cell, x, segment.seg.y);
        x += db.cellWidth(cell);
      }
      prev_end = x;
    }
  }

  if (result.failed > 0) {
    logWarn("abacus legalizer: %d cells could not be placed", result.failed);
  }
  return result;
}

}  // namespace dreamplace
