#include "lg/abacus_legalizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/log.h"
#include "common/timer.h"
#include "lg/segments.h"

namespace dreamplace {

namespace {

/// A maximal group of abutting cells within a segment. Optimal cluster
/// position minimizes sum_i e_i (x_c + offset_i - x_i*)^2, giving
/// x_c = q / e with q = sum e_i (x_i* - offset_i).
struct Cluster {
  Coord x = 0;      ///< Cluster left edge.
  double e = 0;     ///< Total weight.
  double q = 0;     ///< Weighted target sum.
  Coord w = 0;      ///< Total width.
  int first = -1;   ///< First member index into the segment's member list.
  int count = 0;    ///< Number of member cells.
};

struct SegmentCells {
  RowSegment seg;
  std::vector<Index> members;    ///< Cells in insertion (x) order.
  std::vector<Cluster> clusters;
};

/// Simulates (or commits) appending `cell` with target x `tx` and width
/// `width` into the segment's cluster list. Returns the final x of the
/// cell, or infinity if it does not fit.
Coord placeRow(SegmentCells& segment, double weight, Coord tx, Coord width,
               bool commit, std::vector<Cluster>& scratch) {
  const Coord xl = segment.seg.xl;
  const Coord xh = segment.seg.xh;
  Coord used = 0;
  for (const Cluster& c : segment.clusters) {
    used += c.w;
  }
  if (used + width > xh - xl) {
    return std::numeric_limits<Coord>::infinity();
  }

  std::vector<Cluster>* clusters = &segment.clusters;
  if (!commit) {
    scratch = segment.clusters;
    clusters = &scratch;
  }

  // New singleton cluster at the clamped target.
  Cluster fresh;
  fresh.e = weight;
  fresh.q = weight * tx;
  fresh.w = width;
  fresh.x = std::clamp(tx, xl, xh - width);
  fresh.first = static_cast<int>(segment.members.size());
  fresh.count = 1;
  clusters->push_back(fresh);

  // Collapse: while the last cluster overlaps its predecessor, merge.
  auto collapse = [&]() {
    for (;;) {
      Cluster& last = clusters->back();
      last.x = std::clamp(static_cast<Coord>(last.q / last.e), xl,
                          xh - last.w);
      if (clusters->size() < 2) {
        return;
      }
      Cluster& prev = (*clusters)[clusters->size() - 2];
      if (prev.x + prev.w <= last.x) {
        return;
      }
      // Merge last into prev: members of last sit after prev's, offset by
      // prev.w; their targets shift accordingly in q.
      prev.q += last.q - last.e * prev.w;
      prev.e += last.e;
      prev.w += last.w;
      prev.count += last.count;
      clusters->pop_back();
    }
  };
  collapse();

  // The appended cell is the final member of the final cluster.
  const Cluster& tail = clusters->back();
  return tail.x + tail.w - width;
}

}  // namespace

LegalizerResult AbacusLegalizer::run(Database& db) const {
  ScopedTimer timer("lg/abacus");
  LegalizerResult result;

  std::vector<SegmentCells> segments;
  for (const RowSegment& seg : buildRowSegments(db)) {
    segments.push_back({seg, {}, {}});
  }
  DP_ASSERT_MSG(!segments.empty(), "no free row segments to legalize into");

  const auto num_rows = static_cast<Index>(db.rows().size());
  const Coord row_height = db.rowHeight();
  const Coord y_base = db.rows().front().y;
  std::vector<std::vector<int>> by_row(num_rows);
  for (int s = 0; s < static_cast<int>(segments.size()); ++s) {
    by_row[segments[s].seg.row].push_back(s);
  }

  std::vector<Index> order;
  order.reserve(db.numMovable());
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (!isMovableMacro(db, i)) {
      order.push_back(i);  // macros are legalized separately (obstacles)
    }
  }
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return db.cellX(a) < db.cellX(b);
  });

  std::vector<Cluster> scratch;
  for (Index cell : order) {
    const Coord want_x = db.cellX(cell);
    const Coord want_y = db.cellY(cell);
    const Coord width = db.cellWidth(cell);
    const auto want_row = static_cast<Index>(
        std::clamp<double>(std::round((want_y - y_base) / row_height), 0,
                           num_rows - 1));

    double best_cost = std::numeric_limits<double>::infinity();
    int best_seg = -1;

    auto try_row = [&](Index r) {
      for (int s : by_row[r]) {
        SegmentCells& segment = segments[s];
        if (want_x + width < segment.seg.xl || want_x > segment.seg.xh) {
          // Far-away segment in this row; displacement cost still computed
          // via the clamped trial, so do not skip entirely — but skip if
          // clearly worse than the incumbent.
          const double lower_bound =
              std::max<double>(segment.seg.xl - want_x - width,
                               want_x - segment.seg.xh) +
              std::abs(segment.seg.y - want_y);
          if (lower_bound >= best_cost) {
            continue;
          }
        }
        const Coord x =
            placeRow(segment, 1.0, want_x, width, /*commit=*/false, scratch);
        if (!std::isfinite(x)) {
          continue;
        }
        const double cost =
            std::abs(x - want_x) + std::abs(segment.seg.y - want_y);
        if (cost < best_cost) {
          best_cost = cost;
          best_seg = s;
        }
      }
    };

    for (Index d = 0; d < num_rows; ++d) {
      bool any = false;
      if (want_row + d < num_rows) {
        try_row(want_row + d);
        any = true;
      }
      if (d > 0 && want_row - d >= 0) {
        try_row(want_row - d);
        any = true;
      }
      if (!any) {
        break;
      }
      if (best_seg >= 0 && d > options_.rowSearchWindow &&
          d * row_height > best_cost) {
        break;
      }
    }

    if (best_seg < 0) {
      ++result.failed;
      continue;
    }
    SegmentCells& segment = segments[best_seg];
    placeRow(segment, 1.0, want_x, width, /*commit=*/true, scratch);
    segment.members.push_back(cell);
    ++result.placed;
    result.totalDisplacement += best_cost;
    result.maxDisplacement = std::max(result.maxDisplacement, best_cost);
  }

  // Commit final coordinates: walk each segment's clusters, snapping to the
  // site grid (cells have integral site widths, so packing is preserved).
  for (SegmentCells& segment : segments) {
    const Coord site =
        db.rows()[segment.seg.row].siteWidth > 0
            ? db.rows()[segment.seg.row].siteWidth
            : 1;
    int member = 0;
    Coord prev_end = segment.seg.xl;
    for (const Cluster& cluster : segment.clusters) {
      Coord x = segment.seg.xl +
                std::floor((cluster.x - segment.seg.xl) / site) * site;
      // Snapping can collide with the previous cluster's tail; packing
      // left-to-right from prev_end is always feasible because cell widths
      // are site multiples and Abacus guaranteed the total fits.
      x = std::clamp(x, prev_end, segment.seg.xh - cluster.w);
      x = std::max(x, prev_end);
      for (int k = 0; k < cluster.count; ++k) {
        const Index cell = segment.members[member++];
        db.setCellPosition(cell, x, segment.seg.y);
        x += db.cellWidth(cell);
      }
      prev_end = x;
    }
  }

  if (result.failed > 0) {
    logWarn("abacus legalizer: %d cells could not be placed", result.failed);
  }
  return result;
}

}  // namespace dreamplace
