// Row segments: the free intervals of each placement row after removing
// fixed obstacles (macros, pads). Both legalizers place cells into
// segments, never across them.
#pragma once

#include <algorithm>
#include <vector>

#include "db/database.h"
#include "lg/macro_legalizer.h"

namespace dreamplace {

struct RowSegment {
  Index row = 0;   ///< Row index in db.rows().
  Coord y = 0;     ///< Row lower edge.
  Coord xl = 0;    ///< Segment left edge (site-aligned).
  Coord xh = 0;    ///< Segment right edge.
};

/// True when `cell` blocks standard-cell rows: fixed, or a movable macro
/// (which the flow legalizes first and then treats as an obstacle).
inline bool isRowObstacle(const Database& db, Index cell) {
  return !db.isMovable(cell) || isMovableMacro(db, cell);
}

/// Splits every row into maximal free segments not covered by obstacles
/// (fixed cells and legalized movable macros). Segments narrower than one
/// site are dropped.
inline std::vector<RowSegment> buildRowSegments(const Database& db) {
  std::vector<RowSegment> segments;
  const auto& rows = db.rows();
  // Collect obstacle x-intervals per row band.
  std::vector<Index> obstacles;
  for (Index i = 0; i < db.numCells(); ++i) {
    if (isRowObstacle(db, i)) {
      obstacles.push_back(i);
    }
  }
  for (Index r = 0; r < static_cast<Index>(rows.size()); ++r) {
    const Row& row = rows[r];
    std::vector<std::pair<Coord, Coord>> blocked;
    for (Index i : obstacles) {
      const Box<Coord> box = db.cellBox(i);
      if (box.yl < row.y + row.height && box.yh > row.y) {
        const Coord xl = std::max(box.xl, row.xl);
        const Coord xh = std::min(box.xh, row.xh);
        if (xh > xl) {
          blocked.emplace_back(xl, xh);
        }
      }
    }
    std::sort(blocked.begin(), blocked.end());
    Coord cursor = row.xl;
    auto emit = [&](Coord xl, Coord xh) {
      // Snap inward to the site grid.
      const Coord site = row.siteWidth;
      const Coord sxl =
          row.xl + std::ceil((xl - row.xl) / site) * site;
      const Coord sxh =
          row.xl + std::floor((xh - row.xl) / site) * site;
      if (sxh - sxl >= site) {
        segments.push_back({r, row.y, sxl, sxh});
      }
    };
    for (const auto& [bxl, bxh] : blocked) {
      if (bxl > cursor) {
        emit(cursor, bxl);
      }
      cursor = std::max(cursor, bxh);
    }
    if (cursor < row.xh) {
      emit(cursor, row.xh);
    }
  }
  return segments;
}

}  // namespace dreamplace
