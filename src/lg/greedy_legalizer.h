// Tetris-like greedy legalization (paper Sec. III-E, after NTUplace3).
//
// Cells are processed in left-to-right order of their GP positions; each
// cell is packed into the row segment that minimizes its displacement,
// appending after the segment's current occupancy frontier. This removes
// all overlaps quickly; AbacusLegalizer then refines within rows for
// minimal movement.
#pragma once

#include "db/database.h"

namespace dreamplace {

struct LegalizerResult {
  Index placed = 0;
  Index failed = 0;       ///< Cells that found no space (should be 0).
  double totalDisplacement = 0.0;
  double maxDisplacement = 0.0;
};

class GreedyLegalizer {
 public:
  struct Options {
    /// Rows to search on each side of the nearest row before giving up
    /// and scanning all rows.
    int rowSearchWindow = 16;
  };

  explicit GreedyLegalizer(Options options) : options_(options) {}
  GreedyLegalizer() : GreedyLegalizer(Options()) {}

  /// Legalizes all movable cells in place. Positions in `db` are updated
  /// to row- and site-aligned, overlap-free locations.
  LegalizerResult run(Database& db) const;

 private:
  Options options_;
};

}  // namespace dreamplace
