#include "io/svg_writer.h"

#include <fstream>
#include <stdexcept>

#include "common/log.h"

namespace dreamplace {

namespace {

constexpr const char* kPalette[] = {
    "#4878cf", "#d65f5f", "#6acc65", "#b47cc7", "#c4ad66", "#77bedb",
};
constexpr int kPaletteSize = 6;

}  // namespace

void writeSvg(const Database& db, const std::string& path,
              const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("svg: cannot write " + path);
  }
  const Box<Coord>& die = db.dieArea();
  const double scale = options.pixelWidth / die.width();
  const double height = die.height() * scale;
  // SVG y grows downward; flip so the die's y-up convention is preserved.
  auto px = [&](double x) { return (x - die.xl) * scale; };
  auto py = [&](double y) { return height - (y - die.yl) * scale; };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.pixelWidth << "\" height=\"" << height << "\" viewBox=\"0 0 "
      << options.pixelWidth << ' ' << height << "\">\n";
  out << "<rect x=\"0\" y=\"0\" width=\"" << options.pixelWidth
      << "\" height=\"" << height
      << "\" fill=\"#fafafa\" stroke=\"#333\" stroke-width=\"1\"/>\n";

  if (options.drawRows) {
    for (const Row& row : db.rows()) {
      out << "<line x1=\"" << px(row.xl) << "\" y1=\"" << py(row.y)
          << "\" x2=\"" << px(row.xh) << "\" y2=\"" << py(row.y)
          << "\" stroke=\"#e0e0e0\" stroke-width=\"0.5\"/>\n";
    }
  }

  // Fixed cells first (background obstacles).
  for (Index i = db.numMovable(); i < db.numCells(); ++i) {
    const Box<Coord> box = db.cellBox(i);
    out << "<rect x=\"" << px(box.xl) << "\" y=\"" << py(box.yh)
        << "\" width=\"" << box.width() * scale << "\" height=\""
        << box.height() * scale
        << "\" fill=\"#777\" fill-opacity=\"0.8\"/>\n";
  }
  for (Index i = 0; i < db.numMovable(); ++i) {
    const Box<Coord> box = db.cellBox(i);
    const char* color = kPalette[0];
    if (!options.cellClass.empty() &&
        i < static_cast<Index>(options.cellClass.size())) {
      color = kPalette[((options.cellClass[i] % kPaletteSize) +
                        kPaletteSize) %
                       kPaletteSize];
    }
    out << "<rect x=\"" << px(box.xl) << "\" y=\"" << py(box.yh)
        << "\" width=\"" << box.width() * scale << "\" height=\""
        << box.height() * scale << "\" fill=\"" << color
        << "\" fill-opacity=\"0.6\" stroke=\"#123\" stroke-width=\"0.2\"/>\n";
  }
  out << "</svg>\n";
  logInfo("svg: wrote %s", path.c_str());
}

}  // namespace dreamplace
