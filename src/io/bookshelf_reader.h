// Reader for the Bookshelf placement format used by the ISPD 2005 and
// DAC 2012 contests (.aux, .nodes, .nets, .pl, .scl, optional .wts).
//
// The synthetic suite generator emits this same format, so real contest
// benchmarks drop in without code changes.
#pragma once

#include <memory>
#include <string>

#include "db/database.h"

namespace dreamplace {

/// Parses the .aux file at `auxPath` and loads the referenced files.
/// Throws std::runtime_error on malformed input or missing files.
std::unique_ptr<Database> readBookshelf(const std::string& auxPath);

/// Loads a .pl placement result onto an existing database (e.g. to
/// evaluate a solution produced by another tool). Unknown cell names
/// throw; cells absent from the file keep their positions.
void readPlacement(Database& db, const std::string& plPath);

}  // namespace dreamplace
