// SVG plot of a placement: die outline, rows, fixed cells (macros/pads)
// and movable cells. Handy for eyeballing GP spreading, legalization, and
// fence-region behaviour without a GUI.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"

namespace dreamplace {

struct SvgOptions {
  double pixelWidth = 1000;  ///< Output width; height keeps aspect ratio.
  bool drawRows = true;
  /// Optional per-movable-cell class index (e.g. fence group); cells get
  /// one of a small palette of fill colors by class. Empty => one color.
  std::vector<int> cellClass;
};

/// Writes the placement as an SVG file. Throws std::runtime_error when
/// the file cannot be created.
void writeSvg(const Database& db, const std::string& path,
              const SvgOptions& options = {});

}  // namespace dreamplace
