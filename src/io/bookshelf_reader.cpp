#include "io/bookshelf_reader.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail(const std::string& file, const std::string& what) {
  throw std::runtime_error("bookshelf: " + file + ": " + what);
}

/// Reads a file line by line, stripping comments (#) and blank lines, and
/// skipping the "UCLA <kind> 1.0" header if present.
class LineReader {
 public:
  explicit LineReader(const std::string& path) : path_(path), in_(path) {
    if (!in_) {
      fail(path, "cannot open");
    }
  }

  /// Next meaningful line; false at EOF.
  bool next(std::string& line) {
    while (std::getline(in_, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) {
        line.erase(hash);
      }
      // Trim.
      const auto begin = line.find_first_not_of(" \t\r\n");
      if (begin == std::string::npos) {
        continue;
      }
      const auto end = line.find_last_not_of(" \t\r\n");
      line = line.substr(begin, end - begin + 1);
      if (line.rfind("UCLA", 0) == 0) {
        continue;
      }
      return true;
    }
    return false;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
};

/// Splits on whitespace and the ':' separator (treated as its own token).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ':') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      if (ch == ':') {
        tokens.emplace_back(":");
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

struct AuxFiles {
  std::string nodes;
  std::string nets;
  std::string wts;
  std::string pl;
  std::string scl;
};

AuxFiles parseAux(const std::string& auxPath) {
  LineReader reader(auxPath);
  std::string line;
  if (!reader.next(line)) {
    fail(auxPath, "empty .aux");
  }
  AuxFiles files;
  const fs::path dir = fs::path(auxPath).parent_path();
  for (const std::string& tok : tokenize(line)) {
    const fs::path p = dir / tok;
    if (tok.ends_with(".nodes")) {
      files.nodes = p.string();
    } else if (tok.ends_with(".nets")) {
      files.nets = p.string();
    } else if (tok.ends_with(".wts")) {
      files.wts = p.string();
    } else if (tok.ends_with(".pl")) {
      files.pl = p.string();
    } else if (tok.ends_with(".scl")) {
      files.scl = p.string();
    }
  }
  if (files.nodes.empty() || files.nets.empty() || files.pl.empty() ||
      files.scl.empty()) {
    fail(auxPath, "missing .nodes/.nets/.pl/.scl reference");
  }
  return files;
}

void parseNodes(const std::string& path, Database& db,
                std::unordered_map<std::string, Index>& byName) {
  LineReader reader(path);
  std::string line;
  while (reader.next(line)) {
    auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    if (tokens[0] == "NumNodes" || tokens[0] == "NumTerminals") {
      continue;  // counts are re-derived; trust the entity lines
    }
    if (tokens.size() < 3) {
      fail(path, "bad node line: " + line);
    }
    const bool terminal =
        tokens.size() >= 4 &&
        (tokens[3] == "terminal" || tokens[3] == "terminal_NI");
    const double width = std::stod(tokens[1]);
    const double height = std::stod(tokens[2]);
    const Index id = db.addCell(tokens[0], width, height, !terminal);
    byName.emplace(tokens[0], id);
  }
}

void parseNets(const std::string& path, Database& db,
               const std::unordered_map<std::string, Index>& byName) {
  LineReader reader(path);
  std::string line;
  Index current_net = kInvalidIndex;
  Index remaining = 0;
  int anon = 0;
  while (reader.next(line)) {
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] == "NumNets" || tokens[0] == "NumPins") {
      continue;
    }
    if (tokens[0] == "NetDegree") {
      // "NetDegree : d [name]"
      if (tokens.size() < 3 || tokens[1] != ":") {
        fail(path, "bad NetDegree line: " + line);
      }
      remaining = static_cast<Index>(std::stol(tokens[2]));
      std::string name =
          tokens.size() >= 4 ? tokens[3] : ("n" + std::to_string(anon++));
      current_net = db.addNet(std::move(name));
      continue;
    }
    // Pin line: "cellName I/O/B : offx offy" (offsets optional).
    if (current_net == kInvalidIndex || remaining <= 0) {
      fail(path, "pin line outside a net: " + line);
    }
    auto it = byName.find(tokens[0]);
    if (it == byName.end()) {
      fail(path, "unknown cell in net: " + tokens[0]);
    }
    double offx = 0.0;
    double offy = 0.0;
    // Find the ':' then read two numbers if present.
    for (size_t i = 1; i + 2 < tokens.size() + 0u; ++i) {
      if (tokens[i] == ":") {
        if (i + 2 < tokens.size()) {
          offx = std::stod(tokens[i + 1]);
          offy = std::stod(tokens[i + 2]);
        }
        break;
      }
    }
    db.addPin(current_net, it->second, offx, offy);
    --remaining;
  }
}

void parseWts(const std::string& path, Database&) {
  // Net weights in ISPD 2005 .wts files are uniformly 1; the file is parsed
  // for format validation but weights stay at their default.
  if (!fs::exists(path)) {
    return;
  }
  LineReader reader(path);
  std::string line;
  while (reader.next(line)) {
    // No-op.
  }
}

void parsePl(const std::string& path, Database& db,
             const std::unordered_map<std::string, Index>& byName) {
  LineReader reader(path);
  std::string line;
  while (reader.next(line)) {
    auto tokens = tokenize(line);
    if (tokens.size() < 3) {
      continue;
    }
    auto it = byName.find(tokens[0]);
    if (it == byName.end()) {
      fail(path, "unknown cell in .pl: " + tokens[0]);
    }
    db.setCellPosition(it->second, std::stod(tokens[1]),
                       std::stod(tokens[2]));
  }
}

void parseScl(const std::string& path, Database& db) {
  LineReader reader(path);
  std::string line;
  Row row;
  bool in_row = false;
  double num_sites = 0;
  double min_x = 0;
  double min_y = 0;
  double max_x = 0;
  double max_y = 0;
  bool any = false;
  while (reader.next(line)) {
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] == "NumRows") {
      continue;
    }
    if (tokens[0] == "CoreRow") {
      in_row = true;
      row = Row{};
      num_sites = 0;
      continue;
    }
    if (!in_row) {
      continue;
    }
    if (tokens[0] == "End") {
      row.xh = row.xl + num_sites * row.siteWidth;
      db.addRow(row);
      if (!any) {
        min_x = row.xl;
        min_y = row.y;
        max_x = row.xh;
        max_y = row.y + row.height;
        any = true;
      } else {
        min_x = std::min(min_x, row.xl);
        min_y = std::min(min_y, row.y);
        max_x = std::max(max_x, row.xh);
        max_y = std::max(max_y, row.y + row.height);
      }
      in_row = false;
      continue;
    }
    if (tokens[0] == "Coordinate" && tokens.size() >= 3) {
      row.y = std::stod(tokens[2]);
    } else if (tokens[0] == "Height" && tokens.size() >= 3) {
      row.height = std::stod(tokens[2]);
    } else if ((tokens[0] == "Sitewidth" || tokens[0] == "Sitespacing") &&
               tokens.size() >= 3) {
      row.siteWidth = std::stod(tokens[2]);
    } else if (tokens[0] == "SubrowOrigin" && tokens.size() >= 3) {
      row.xl = std::stod(tokens[2]);
      // "SubrowOrigin : x NumSites : n" may share a line.
      for (size_t i = 3; i + 1 < tokens.size(); ++i) {
        if (tokens[i] == "NumSites" && tokens[i + 1] == ":") {
          num_sites = std::stod(tokens[i + 2]);
        }
      }
    } else if (tokens[0] == "NumSites" && tokens.size() >= 3) {
      num_sites = std::stod(tokens[2]);
    }
  }
  if (!any) {
    fail(path, "no rows found");
  }
  db.setDieArea({min_x, min_y, max_x, max_y});
}

}  // namespace

void readPlacement(Database& db, const std::string& plPath) {
  DP_ASSERT_MSG(db.finalized(), "readPlacement needs a finalized database");
  LineReader reader(plPath);
  std::string line;
  while (reader.next(line)) {
    auto tokens = tokenize(line);
    if (tokens.size() < 3) {
      continue;
    }
    const Index cell = db.findCell(tokens[0]);
    if (cell == kInvalidIndex) {
      fail(plPath, "unknown cell in .pl: " + tokens[0]);
    }
    db.setCellPosition(cell, std::stod(tokens[1]), std::stod(tokens[2]));
  }
}

std::unique_ptr<Database> readBookshelf(const std::string& auxPath) {
  ScopedTimer timer("io/read");
  const AuxFiles files = parseAux(auxPath);
  auto db = std::make_unique<Database>();
  std::unordered_map<std::string, Index> byName;
  parseNodes(files.nodes, *db, byName);
  parseNets(files.nets, *db, byName);
  if (!files.wts.empty()) {
    parseWts(files.wts, *db);
  }
  parseScl(files.scl, *db);
  parsePl(files.pl, *db, byName);
  db->finalize();
  // Movable-first reordering invalidates byName indices, so positions were
  // set pre-finalize; re-resolve nothing here.
  logInfo("bookshelf: loaded %d cells (%d movable), %d nets, %d pins",
          db->numCells(), db->numMovable(), db->numNets(), db->numPins());
  return db;
}

}  // namespace dreamplace
