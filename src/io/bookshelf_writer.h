// Writer for the Bookshelf placement format. Emits a full benchmark
// (.aux/.nodes/.nets/.wts/.pl/.scl) or just a placement result (.pl).
#pragma once

#include <string>

#include "db/database.h"

namespace dreamplace {

/// Writes all Bookshelf files for `db` under `directory` with base name
/// `design`. Creates the directory if needed.
void writeBookshelf(const Database& db, const std::string& directory,
                    const std::string& design);

/// Writes only the .pl file (placement result) to `path`.
void writePlacement(const Database& db, const std::string& path);

}  // namespace dreamplace
