#include "io/bookshelf_writer.h"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <stdexcept>

#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

namespace fs = std::filesystem;

std::ofstream open(const fs::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bookshelf: cannot write " + path.string());
  }
  // Full round-trip precision: placements are continuous doubles until
  // legalization snaps them.
  out << std::setprecision(17);
  return out;
}

}  // namespace

void writePlacement(const Database& db, const std::string& path) {
  std::ofstream out = open(path);
  out << "UCLA pl 1.0\n\n";
  for (Index i = 0; i < db.numCells(); ++i) {
    out << db.cellName(i) << ' ' << db.cellX(i) << ' ' << db.cellY(i)
        << " : N";
    if (!db.isMovable(i)) {
      out << " /FIXED";
    }
    out << '\n';
  }
}

void writeBookshelf(const Database& db, const std::string& directory,
                    const std::string& design) {
  ScopedTimer timer("io/write");
  const fs::path dir(directory);
  fs::create_directories(dir);

  {
    std::ofstream out = open(dir / (design + ".aux"));
    out << "RowBasedPlacement : " << design << ".nodes " << design << ".nets "
        << design << ".wts " << design << ".pl " << design << ".scl\n";
  }
  {
    std::ofstream out = open(dir / (design + ".nodes"));
    out << "UCLA nodes 1.0\n\n";
    out << "NumNodes : " << db.numCells() << '\n';
    out << "NumTerminals : " << db.numFixed() << '\n';
    for (Index i = 0; i < db.numCells(); ++i) {
      out << '\t' << db.cellName(i) << '\t' << db.cellWidth(i) << '\t'
          << db.cellHeight(i);
      if (!db.isMovable(i)) {
        out << "\tterminal";
      }
      out << '\n';
    }
  }
  {
    std::ofstream out = open(dir / (design + ".nets"));
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << db.numNets() << '\n';
    out << "NumPins : " << db.numPins() << '\n';
    for (Index e = 0; e < db.numNets(); ++e) {
      out << "NetDegree : " << db.netDegree(e) << "  " << db.netName(e)
          << '\n';
      for (Index p = db.netPinBegin(e); p < db.netPinEnd(e); ++p) {
        out << '\t' << db.cellName(db.pinCell(p)) << "\tI : "
            << db.pinOffsetX(p) << '\t' << db.pinOffsetY(p) << '\n';
      }
    }
  }
  {
    std::ofstream out = open(dir / (design + ".wts"));
    out << "UCLA wts 1.0\n\n";
  }
  writePlacement(db, (dir / (design + ".pl")).string());
  {
    std::ofstream out = open(dir / (design + ".scl"));
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << db.rows().size() << '\n';
    for (const Row& row : db.rows()) {
      const auto num_sites =
          static_cast<long>((row.xh - row.xl) / row.siteWidth);
      out << "CoreRow Horizontal\n";
      out << " Coordinate : " << row.y << '\n';
      out << " Height : " << row.height << '\n';
      out << " Sitewidth : " << row.siteWidth << '\n';
      out << " Sitespacing : " << row.siteWidth << '\n';
      out << " Siteorient : 1\n";
      out << " Sitesymmetry : 1\n";
      out << " SubrowOrigin : " << row.xl << " NumSites : " << num_sites
          << '\n';
      out << "End\n";
    }
  }
  logInfo("bookshelf: wrote %s/%s.*", directory.c_str(), design.c_str());
}

}  // namespace dreamplace
