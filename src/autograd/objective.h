// Objective-function abstraction: the placement-as-training analogy.
//
// The paper (Fig. 1/2a) casts analytical placement as neural-network
// training: cell coordinates are the "weights", the wirelength op is the
// prediction loss, the density op is the regularizer, and a gradient-
// descent engine minimizes their weighted sum. This header is the seam
// between those layers: ops implement ObjectiveFunction (forward =
// objective value, backward = gradient), and the optimizers in
// optimizers.h consume it without knowing anything about placement.
#pragma once

#include <span>
#include <vector>

namespace dreamplace {

/// A differentiable scalar objective over a flat parameter vector.
template <typename T>
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;

  /// Number of parameters.
  virtual std::size_t size() const = 0;

  /// Computes the objective at `params` and writes its gradient into
  /// `grad` (same length as `params`). Returns the objective value.
  /// Implementations must overwrite, not accumulate into, `grad`.
  virtual double evaluate(std::span<const T> params, std::span<T> grad) = 0;
};

/// Weighted sum of objective terms: obj = sum_i weight_i * term_i.
/// This is exactly "loss + lambda * regularizer"; the global placer uses
/// it to combine wirelength and density with the density weight schedule.
template <typename T>
class CompositeObjective final : public ObjectiveFunction<T> {
 public:
  /// Terms are non-owning; callers keep them alive. All terms must share
  /// the same parameter size.
  void addTerm(ObjectiveFunction<T>* term, double weight) {
    terms_.push_back(term);
    weights_.push_back(weight);
  }

  void setWeight(std::size_t i, double weight) { weights_[i] = weight; }
  double weight(std::size_t i) const { return weights_[i]; }
  std::size_t numTerms() const { return terms_.size(); }

  /// Objective value of term `i` at the last evaluate() call.
  double lastTermValue(std::size_t i) const { return last_values_[i]; }

  std::size_t size() const override {
    return terms_.empty() ? 0 : terms_.front()->size();
  }

  double evaluate(std::span<const T> params, std::span<T> grad) override {
    last_values_.assign(terms_.size(), 0.0);
    std::fill(grad.begin(), grad.end(), T(0));
    scratch_.resize(grad.size());
    double total = 0.0;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      const double value =
          terms_[i]->evaluate(params, std::span<T>(scratch_));
      last_values_[i] = value;
      total += weights_[i] * value;
      const T w = static_cast<T>(weights_[i]);
      for (std::size_t k = 0; k < grad.size(); ++k) {
        grad[k] += w * scratch_[k];
      }
    }
    return total;
  }

 private:
  std::vector<ObjectiveFunction<T>*> terms_;
  std::vector<double> weights_;
  std::vector<double> last_values_;
  std::vector<T> scratch_;
};

}  // namespace dreamplace
