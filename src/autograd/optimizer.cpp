#include "autograd/optimizers.h"

#include <cmath>

#include "common/counters.h"
#include "common/log.h"

namespace dreamplace {

namespace {

template <typename T>
double norm2(const std::vector<T>& a, const std::vector<T>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

/// Reads a checkpointed vector, enforcing the size the optimizer was
/// constructed with — a snapshot from a different problem must not load.
template <typename V>
void readVec(ByteReader& r, std::vector<V>& out) {
  const std::size_t expected = out.size();
  out = r.f64Vec<V>();
  if (out.size() != expected) {
    throw std::runtime_error(
        "optimizer: snapshot vector size " + std::to_string(out.size()) +
        " does not match problem size " + std::to_string(expected));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// NesterovOptimizer
// ---------------------------------------------------------------------------

template <typename T>
NesterovOptimizer<T>::NesterovOptimizer(ObjectiveFunction<T>& objective,
                                        std::vector<T> initial,
                                        Options options)
    : objective_(objective), options_(options), u_(std::move(initial)) {
  reset();
}

template <typename T>
void NesterovOptimizer<T>::reset() {
  const std::size_t n = u_.size();
  u_prev_ = u_;
  v_ = u_;
  v_prev_ = u_;
  grad_v_.assign(n, T(0));
  grad_v_prev_.assign(n, T(0));
  v_cand_.assign(n, T(0));
  grad_cand_.assign(n, T(0));
  u_cand_.assign(n, T(0));
  a_ = 1.0;
  first_step_ = true;
  alpha_ = options_.initialStep;
}

template <typename T>
double NesterovOptimizer<T>::evalAt(const std::vector<T>& point,
                                    std::vector<T>& grad) {
  ++evaluations_;
  static Counter evals("optimizer/nesterov/evaluations");
  evals.add();
  return objective_.evaluate(std::span<const T>(point), std::span<T>(grad));
}

template <typename T>
double NesterovOptimizer<T>::estimateInitialStep() {
  // Probe the local Lipschitz constant with a small perturbation along the
  // negative gradient (same spirit as ePlace's initialization).
  std::vector<T> probe = v_;
  double gnorm = 0.0;
  for (T g : grad_v_) {
    gnorm += static_cast<double>(g) * static_cast<double>(g);
  }
  gnorm = std::sqrt(gnorm);
  if (gnorm == 0.0) {
    return 1.0;
  }
  const double h = 1.0 / gnorm;  // unit-length probe
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = v_[i] - static_cast<T>(h * grad_v_[i]);
  }
  const double ignored [[maybe_unused]] = evalAt(probe, grad_cand_);
  const double dg = norm2(grad_cand_, grad_v_);
  if (dg == 0.0) {
    return 1.0;
  }
  return 1.0 / dg * 1.0;  // |dv| / |dg| with |dv| == 1
}

template <typename T>
double NesterovOptimizer<T>::step() {
  static Counter steps("optimizer/nesterov/steps");
  steps.add();
  const std::size_t n = u_.size();
  double value = 0.0;
  if (first_step_) {
    value = evalAt(v_, grad_v_);
    if (alpha_ <= 0.0) {
      alpha_ = estimateInitialStep();
    }
    first_step_ = false;
  }

  // Backtracking on the inverse-Lipschitz step estimate: take a trial step
  // from v_k, measure |dv|/|dg| at the landing point, and shrink until the
  // estimate stabilizes (ePlace's line search).
  double alpha = alpha_;
  const double a_next = (1.0 + std::sqrt(4.0 * a_ * a_ + 1.0)) / 2.0;
  const double momentum = (a_ - 1.0) / a_next;
  double cand_value = 0.0;
  for (int bt = 0; bt < options_.maxBacktracks; ++bt) {
    for (std::size_t i = 0; i < n; ++i) {
      u_cand_[i] = v_[i] - static_cast<T>(alpha * grad_v_[i]);
      v_cand_[i] = u_cand_[i] + static_cast<T>(momentum) *
                                    (u_cand_[i] - u_[i]);
    }
    if (options_.projection) {
      options_.projection(u_cand_);
      options_.projection(v_cand_);
    }
    cand_value = evalAt(v_cand_, grad_cand_);
    const double dv = norm2(v_cand_, v_);
    const double dg = norm2(grad_cand_, grad_v_);
    const double alpha_new = dg > 0.0 ? dv / dg : alpha;
    if (alpha_new >= options_.backtrackTolerance * alpha) {
      alpha_ = alpha_new;
      break;
    }
    alpha = alpha_new;
    alpha_ = alpha_new;
  }
  value = cand_value;

  // Commit.
  u_prev_ = u_;
  u_ = u_cand_;
  v_prev_ = v_;
  v_ = v_cand_;
  grad_v_prev_ = grad_v_;
  grad_v_ = grad_cand_;
  a_ = a_next;
  return value;
}

template <typename T>
void NesterovOptimizer<T>::saveState(ByteWriter& w) const {
  // v_cand_/grad_cand_/u_cand_ are per-step scratch (fully overwritten
  // before any read), so only the committed state is serialized.
  w.f64Vec(u_);
  w.f64Vec(u_prev_);
  w.f64Vec(v_);
  w.f64Vec(v_prev_);
  w.f64Vec(grad_v_);
  w.f64Vec(grad_v_prev_);
  w.f64(a_);
  w.f64(alpha_);
  w.u8(first_step_ ? 1 : 0);
  w.i64(evaluations_);
}

template <typename T>
void NesterovOptimizer<T>::loadState(ByteReader& r) {
  readVec(r, u_);
  readVec(r, u_prev_);
  readVec(r, v_);
  readVec(r, v_prev_);
  readVec(r, grad_v_);
  readVec(r, grad_v_prev_);
  a_ = r.f64();
  alpha_ = r.f64();
  first_step_ = r.u8() != 0;
  evaluations_ = static_cast<long>(r.i64());
}

// ---------------------------------------------------------------------------
// AdamOptimizer
// ---------------------------------------------------------------------------

template <typename T>
AdamOptimizer<T>::AdamOptimizer(ObjectiveFunction<T>& objective,
                                std::vector<T> initial, Options options)
    : objective_(objective), options_(options), params_(std::move(initial)) {
  reset();
}

template <typename T>
void AdamOptimizer<T>::reset() {
  grad_.assign(params_.size(), T(0));
  m_.assign(params_.size(), 0.0);
  v_.assign(params_.size(), 0.0);
  lr_ = options_.lr;
  t_ = 0;
}

template <typename T>
double AdamOptimizer<T>::step() {
  static Counter steps("optimizer/adam/steps");
  steps.add();
  const double value = objective_.evaluate(std::span<const T>(params_),
                                           std::span<T>(grad_));
  ++t_;
  const double bias1 = 1.0 - std::pow(options_.beta1, t_);
  const double bias2 = 1.0 - std::pow(options_.beta2, t_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double g = static_cast<double>(grad_[i]);
    m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * g;
    v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * g * g;
    const double mhat = m_[i] / bias1;
    const double vhat = v_[i] / bias2;
    params_[i] -= static_cast<T>(lr_ * mhat /
                                 (std::sqrt(vhat) + options_.eps));
  }
  if (options_.projection) {
    options_.projection(params_);
  }
  lr_ *= options_.lrDecay;
  return value;
}

template <typename T>
void AdamOptimizer<T>::saveState(ByteWriter& w) const {
  w.f64Vec(params_);
  w.f64Vec(m_);
  w.f64Vec(v_);
  w.f64(lr_);
  w.i64(t_);
}

template <typename T>
void AdamOptimizer<T>::loadState(ByteReader& r) {
  readVec(r, params_);
  readVec(r, m_);
  readVec(r, v_);
  lr_ = r.f64();
  t_ = static_cast<long>(r.i64());
}

// ---------------------------------------------------------------------------
// SgdMomentumOptimizer
// ---------------------------------------------------------------------------

template <typename T>
SgdMomentumOptimizer<T>::SgdMomentumOptimizer(ObjectiveFunction<T>& objective,
                                              std::vector<T> initial,
                                              Options options)
    : objective_(objective), options_(options), params_(std::move(initial)) {
  reset();
}

template <typename T>
void SgdMomentumOptimizer<T>::reset() {
  grad_.assign(params_.size(), T(0));
  velocity_.assign(params_.size(), 0.0);
  lr_ = options_.lr;
}

template <typename T>
double SgdMomentumOptimizer<T>::step() {
  static Counter steps("optimizer/sgd_momentum/steps");
  steps.add();
  const double value = objective_.evaluate(std::span<const T>(params_),
                                           std::span<T>(grad_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i] = options_.momentum * velocity_[i] +
                   static_cast<double>(grad_[i]);
    params_[i] -= static_cast<T>(lr_ * velocity_[i]);
  }
  if (options_.projection) {
    options_.projection(params_);
  }
  lr_ *= options_.lrDecay;
  return value;
}

template <typename T>
void SgdMomentumOptimizer<T>::saveState(ByteWriter& w) const {
  w.f64Vec(params_);
  w.f64Vec(velocity_);
  w.f64(lr_);
}

template <typename T>
void SgdMomentumOptimizer<T>::loadState(ByteReader& r) {
  readVec(r, params_);
  readVec(r, velocity_);
  lr_ = r.f64();
}

// ---------------------------------------------------------------------------
// RmsPropOptimizer
// ---------------------------------------------------------------------------

template <typename T>
RmsPropOptimizer<T>::RmsPropOptimizer(ObjectiveFunction<T>& objective,
                                      std::vector<T> initial, Options options)
    : objective_(objective), options_(options), params_(std::move(initial)) {
  reset();
}

template <typename T>
void RmsPropOptimizer<T>::reset() {
  grad_.assign(params_.size(), T(0));
  meanSquare_.assign(params_.size(), 0.0);
  lr_ = options_.lr;
}

template <typename T>
double RmsPropOptimizer<T>::step() {
  static Counter steps("optimizer/rmsprop/steps");
  steps.add();
  const double value = objective_.evaluate(std::span<const T>(params_),
                                           std::span<T>(grad_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double g = static_cast<double>(grad_[i]);
    meanSquare_[i] = options_.alpha * meanSquare_[i] +
                     (1.0 - options_.alpha) * g * g;
    params_[i] -=
        static_cast<T>(lr_ * g / (std::sqrt(meanSquare_[i]) + options_.eps));
  }
  if (options_.projection) {
    options_.projection(params_);
  }
  lr_ *= options_.lrDecay;
  return value;
}

template <typename T>
void RmsPropOptimizer<T>::saveState(ByteWriter& w) const {
  w.f64Vec(params_);
  w.f64Vec(meanSquare_);
  w.f64(lr_);
}

template <typename T>
void RmsPropOptimizer<T>::loadState(ByteReader& r) {
  readVec(r, params_);
  readVec(r, meanSquare_);
  lr_ = r.f64();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

template <typename T>
std::unique_ptr<Optimizer<T>> makeOptimizer(SolverKind kind,
                                            ObjectiveFunction<T>& objective,
                                            std::vector<T> initial,
                                            double lr, double lrDecay) {
  switch (kind) {
    case SolverKind::kNesterov:
      return std::make_unique<NesterovOptimizer<T>>(objective,
                                                    std::move(initial));
    case SolverKind::kAdam: {
      typename AdamOptimizer<T>::Options opt;
      opt.lr = lr;
      opt.lrDecay = lrDecay;
      return std::make_unique<AdamOptimizer<T>>(objective, std::move(initial),
                                                opt);
    }
    case SolverKind::kSgdMomentum: {
      typename SgdMomentumOptimizer<T>::Options opt;
      opt.lr = lr;
      opt.lrDecay = lrDecay;
      return std::make_unique<SgdMomentumOptimizer<T>>(objective,
                                                       std::move(initial), opt);
    }
    case SolverKind::kRmsProp: {
      typename RmsPropOptimizer<T>::Options opt;
      opt.lr = lr;
      opt.lrDecay = lrDecay;
      return std::make_unique<RmsPropOptimizer<T>>(objective,
                                                   std::move(initial), opt);
    }
  }
  logFatal("unknown solver kind");
}

const char* solverName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kNesterov:
      return "Nesterov";
    case SolverKind::kAdam:
      return "Adam";
    case SolverKind::kSgdMomentum:
      return "SGD Momentum";
    case SolverKind::kRmsProp:
      return "RMSProp";
  }
  return "?";
}

#define DP_INSTANTIATE_OPT(T)                                               \
  template class NesterovOptimizer<T>;                                      \
  template class AdamOptimizer<T>;                                          \
  template class SgdMomentumOptimizer<T>;                                   \
  template class RmsPropOptimizer<T>;                                       \
  template std::unique_ptr<Optimizer<T>> makeOptimizer<T>(                  \
      SolverKind, ObjectiveFunction<T>&, std::vector<T>, double, double);

DP_INSTANTIATE_OPT(float)
DP_INSTANTIATE_OPT(double)

#undef DP_INSTANTIATE_OPT

}  // namespace dreamplace
