// Gradient-descent solvers (paper Secs. III-D, IV-C).
//
// NesterovLipschitz reimplements the ePlace/RePlAce solver: Nesterov's
// accelerated method with a Lipschitz-constant backtracking line search.
// Adam, SGD+momentum, and RMSProp mirror the native PyTorch solvers the
// paper compares against in Table IV, including the per-iteration learning
// rate decay used there.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/objective.h"
#include "common/serialize.h"

namespace dreamplace {

/// Common optimizer interface: owns the parameter vector; step() performs
/// one iteration and returns the objective value observed.
template <typename T>
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual double step() = 0;
  virtual const std::vector<T>& params() const = 0;
  virtual std::vector<T>& mutableParams() = 0;
  virtual std::string name() const = 0;
  /// Re-arms internal state after an external parameter change (e.g. the
  /// routability loop moving cells between restarts).
  virtual void reset() = 0;
  /// Effective step size of the last step(): the backtracked Lipschitz
  /// step for Nesterov, the (decayed) learning rate for the others.
  /// Telemetry-only; 0 before the first step.
  virtual double stepSize() const { return 0.0; }

  /// Checkpoint hooks (flow resume, docs/FLOW.md): saveState serializes
  /// everything step() depends on — parameter and momentum vectors plus
  /// scalar schedule state — as f64, so a loadState'd optimizer continues
  /// bit-identically for float64 flows. loadState expects a snapshot from
  /// the same solver over the same problem size and throws on mismatch.
  virtual void saveState(ByteWriter& w) const = 0;
  virtual void loadState(ByteReader& r) = 0;
};

/// Nesterov's method with Lipschitz step-size estimation (ePlace).
template <typename T>
class NesterovOptimizer final : public Optimizer<T> {
 public:
  struct Options {
    double initialStep = 0.0;   ///< 0 => probe with a small perturbation.
    double backtrackTolerance = 0.95;  ///< accept when alphaNew >= tol*alpha.
    int maxBacktracks = 10;
    /// Optional feasibility projection applied to every new iterate
    /// (projected gradient descent; the placer uses it to keep cell
    /// centers inside the die).
    std::function<void(std::vector<T>&)> projection;
  };

  NesterovOptimizer(ObjectiveFunction<T>& objective, std::vector<T> initial,
                    Options options = {});

  double step() override;
  const std::vector<T>& params() const override { return u_; }
  std::vector<T>& mutableParams() override { return u_; }
  std::string name() const override { return "nesterov"; }
  void reset() override;
  double stepSize() const override { return alpha_; }
  void saveState(ByteWriter& w) const override;
  void loadState(ByteReader& r) override;

  /// Number of objective evaluations so far (line search costs extra).
  long evaluations() const { return evaluations_; }

 private:
  double evalAt(const std::vector<T>& point, std::vector<T>& grad);
  double estimateInitialStep();

  ObjectiveFunction<T>& objective_;
  Options options_;
  std::vector<T> u_;        // major solution u_k
  std::vector<T> u_prev_;   // u_{k-1}
  std::vector<T> v_;        // reference solution v_k
  std::vector<T> v_prev_;   // v_{k-1}
  std::vector<T> grad_v_;   // gradient at v_k
  std::vector<T> grad_v_prev_;
  std::vector<T> v_cand_;   // candidate reference for line search
  std::vector<T> grad_cand_;
  std::vector<T> u_cand_;
  double a_ = 1.0;          // momentum coefficient a_k
  double alpha_ = 0.0;      // current step size
  bool first_step_ = true;
  long evaluations_ = 0;
};

/// Adam (Kingma & Ba) with optional multiplicative learning-rate decay.
template <typename T>
class AdamOptimizer final : public Optimizer<T> {
 public:
  struct Options {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double lrDecay = 1.0;  ///< lr *= lrDecay after each step (Table IV).
   /// Optional feasibility projection applied after each update.
    std::function<void(std::vector<T>&)> projection;
  };

  AdamOptimizer(ObjectiveFunction<T>& objective, std::vector<T> initial,
                Options options = {});

  double step() override;
  const std::vector<T>& params() const override { return params_; }
  std::vector<T>& mutableParams() override { return params_; }
  std::string name() const override { return "adam"; }
  void reset() override;
  double stepSize() const override { return lr_; }
  void saveState(ByteWriter& w) const override;
  void loadState(ByteReader& r) override;

 private:
  ObjectiveFunction<T>& objective_;
  Options options_;
  std::vector<T> params_;
  std::vector<T> grad_;
  std::vector<double> m_;
  std::vector<double> v_;
  double lr_ = 0.0;
  long t_ = 0;
};

/// Stochastic gradient descent with classical momentum.
template <typename T>
class SgdMomentumOptimizer final : public Optimizer<T> {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.9;
    double lrDecay = 1.0;
   /// Optional feasibility projection applied after each update.
    std::function<void(std::vector<T>&)> projection;
  };

  SgdMomentumOptimizer(ObjectiveFunction<T>& objective,
                       std::vector<T> initial, Options options = {});

  double step() override;
  const std::vector<T>& params() const override { return params_; }
  std::vector<T>& mutableParams() override { return params_; }
  std::string name() const override { return "sgd_momentum"; }
  void reset() override;
  double stepSize() const override { return lr_; }
  void saveState(ByteWriter& w) const override;
  void loadState(ByteReader& r) override;

 private:
  ObjectiveFunction<T>& objective_;
  Options options_;
  std::vector<T> params_;
  std::vector<T> grad_;
  std::vector<double> velocity_;
  double lr_ = 0.0;
};

/// RMSProp (Tieleman & Hinton) with optional learning-rate decay.
template <typename T>
class RmsPropOptimizer final : public Optimizer<T> {
 public:
  struct Options {
    double lr = 0.01;
    double alpha = 0.99;
    double eps = 1e-8;
    double lrDecay = 1.0;
   /// Optional feasibility projection applied after each update.
    std::function<void(std::vector<T>&)> projection;
  };

  RmsPropOptimizer(ObjectiveFunction<T>& objective, std::vector<T> initial,
                   Options options = {});

  double step() override;
  const std::vector<T>& params() const override { return params_; }
  std::vector<T>& mutableParams() override { return params_; }
  std::string name() const override { return "rmsprop"; }
  void reset() override;
  double stepSize() const override { return lr_; }
  void saveState(ByteWriter& w) const override;
  void loadState(ByteReader& r) override;

 private:
  ObjectiveFunction<T>& objective_;
  Options options_;
  std::vector<T> params_;
  std::vector<T> grad_;
  std::vector<double> meanSquare_;
  double lr_ = 0.0;
};

/// Factory used by the solver-comparison benchmark (Table IV).
enum class SolverKind { kNesterov, kAdam, kSgdMomentum, kRmsProp };

template <typename T>
std::unique_ptr<Optimizer<T>> makeOptimizer(SolverKind kind,
                                            ObjectiveFunction<T>& objective,
                                            std::vector<T> initial,
                                            double lr, double lrDecay);

const char* solverName(SolverKind kind);

}  // namespace dreamplace
