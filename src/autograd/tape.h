// A minimal define-by-run reverse-mode automatic differentiation tape.
//
// The paper's software stack (Fig. 2a) has three layers: low-level OPs,
// automatic gradient derivation, and optimization engines. The production
// placement ops implement their backward passes by hand for speed (as
// DREAMPlace's CUDA ops do), but the framework also carries this tape so
// new objective terms can be prototyped without deriving gradients —
// exactly the "write the forward, get the backward" workflow PyTorch
// offers. The wirelength-op unit tests use it as an oracle: the WA and
// LSE closed-form gradients are checked against tape-differentiated
// versions of the same formulas.
//
// Usage:
//   Tape tape;
//   Var x = tape.variable(2.0);
//   Var y = tape.variable(3.0);
//   Var f = exp(x * y) + x / y;
//   tape.backward(f);
//   tape.grad(x);  // df/dx
//
// Vars are lightweight handles (tape index + pointer); all state lives in
// the tape, which must outlive its Vars. One backward() per forward build;
// call tape.clear() to reuse.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/log.h"

namespace dreamplace::autograd {

class Tape;

/// Handle to a node on the tape.
class Var {
 public:
  Var() = default;

  double value() const;

 private:
  friend class Tape;
  friend Var operator+(Var a, Var b);
  friend Var operator-(Var a, Var b);
  friend Var operator*(Var a, Var b);
  friend Var operator/(Var a, Var b);
  friend Var operator+(Var a, double b);
  friend Var operator-(Var a, double b);
  friend Var operator*(Var a, double b);
  friend Var operator/(Var a, double b);
  friend Var operator+(double a, Var b);
  friend Var operator-(double a, Var b);
  friend Var operator*(double a, Var b);
  friend Var operator-(Var a);
  friend Var exp(Var a);
  friend Var log(Var a);
  friend Var sqrt(Var a);
  friend Var maximum(Var a, Var b);
  friend Var minimum(Var a, Var b);
  friend Var sum(std::span<const Var> vars);

  Var(Tape* tape, std::size_t index) : tape_(tape), index_(index) {}

  Tape* tape_ = nullptr;
  std::size_t index_ = 0;
};

class Tape {
 public:
  /// Creates a leaf variable with gradient tracking.
  Var variable(double value) { return {this, addNode(value)}; }

  /// Creates a constant (gradient flows through but is usually unread).
  Var constant(double value) { return {this, addNode(value)}; }

  double value(Var v) const { return nodes_[v.index_].value; }

  /// Gradient of the last backward() root with respect to `v`.
  double grad(Var v) const { return nodes_[v.index_].grad; }

  /// Reverse pass seeding d(root)/d(root) = 1. Gradients accumulate into
  /// every node reachable from the root; leaves keep them for grad().
  void backward(Var root) {
    for (Node& node : nodes_) {
      node.grad = 0.0;
    }
    nodes_[root.index_].grad = 1.0;
    // Nodes are created in topological order, so a reverse sweep suffices.
    for (std::size_t i = nodes_.size(); i-- > 0;) {
      const Node& node = nodes_[i];
      if (node.grad == 0.0) {
        continue;
      }
      for (int k = 0; k < node.arity; ++k) {
        nodes_[node.parent[k]].grad += node.grad * node.partial[k];
      }
    }
  }

  void clear() { nodes_.clear(); }
  std::size_t size() const { return nodes_.size(); }

 private:
  friend class Var;
  friend Var operator+(Var a, Var b);
  friend Var operator-(Var a, Var b);
  friend Var operator*(Var a, Var b);
  friend Var operator/(Var a, Var b);
  friend Var operator+(Var a, double b);
  friend Var operator-(Var a, double b);
  friend Var operator*(Var a, double b);
  friend Var operator/(Var a, double b);
  friend Var operator+(double a, Var b);
  friend Var operator-(double a, Var b);
  friend Var operator*(double a, Var b);
  friend Var operator-(Var a);
  friend Var exp(Var a);
  friend Var log(Var a);
  friend Var sqrt(Var a);
  friend Var maximum(Var a, Var b);
  friend Var minimum(Var a, Var b);
  friend Var sum(std::span<const Var> vars);

  struct Node {
    double value = 0.0;
    double grad = 0.0;
    int arity = 0;
    std::size_t parent[2] = {0, 0};
    double partial[2] = {0.0, 0.0};
  };

  std::size_t addNode(double value) {
    nodes_.push_back(Node{value, 0.0, 0, {0, 0}, {0.0, 0.0}});
    return nodes_.size() - 1;
  }

  std::size_t addUnary(double value, std::size_t parent, double partial) {
    Node node{value, 0.0, 1, {parent, 0}, {partial, 0.0}};
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  std::size_t addBinary(double value, std::size_t pa, double da,
                        std::size_t pb, double db) {
    Node node{value, 0.0, 2, {pa, pb}, {da, db}};
    nodes_.push_back(node);
    return nodes_.size() - 1;
  }

  std::vector<Node> nodes_;
};

inline double Var::value() const { return tape_->value(*this); }

// --- Operators ------------------------------------------------------------

inline Var operator+(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  return {t, t->addBinary(t->value(a) + t->value(b), a.index_, 1.0,
                          b.index_, 1.0)};
}

inline Var operator-(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  return {t, t->addBinary(t->value(a) - t->value(b), a.index_, 1.0,
                          b.index_, -1.0)};
}

inline Var operator*(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  return {t, t->addBinary(t->value(a) * t->value(b), a.index_, t->value(b),
                          b.index_, t->value(a))};
}

inline Var operator/(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  const double vb = t->value(b);
  const double va = t->value(a);
  return {t, t->addBinary(va / vb, a.index_, 1.0 / vb, b.index_,
                          -va / (vb * vb))};
}

inline Var operator+(Var a, double b) {
  Tape* t = a.tape_;
  return {t, t->addUnary(t->value(a) + b, a.index_, 1.0)};
}
inline Var operator+(double a, Var b) { return b + a; }

inline Var operator-(Var a, double b) {
  Tape* t = a.tape_;
  return {t, t->addUnary(t->value(a) - b, a.index_, 1.0)};
}
inline Var operator-(double a, Var b) {
  Tape* t = b.tape_;
  return {t, t->addUnary(a - t->value(b), b.index_, -1.0)};
}
inline Var operator-(Var a) { return 0.0 - a; }

inline Var operator*(Var a, double b) {
  Tape* t = a.tape_;
  return {t, t->addUnary(t->value(a) * b, a.index_, b)};
}
inline Var operator*(double a, Var b) { return b * a; }

inline Var operator/(Var a, double b) { return a * (1.0 / b); }

inline Var exp(Var a) {
  Tape* t = a.tape_;
  const double v = std::exp(t->value(a));
  return {t, t->addUnary(v, a.index_, v)};
}

inline Var log(Var a) {
  Tape* t = a.tape_;
  return {t, t->addUnary(std::log(t->value(a)), a.index_,
                         1.0 / t->value(a))};
}

inline Var sqrt(Var a) {
  Tape* t = a.tape_;
  const double v = std::sqrt(t->value(a));
  return {t, t->addUnary(v, a.index_, 0.5 / v)};
}

/// Smooth-free max: subgradient convention d/da = 1 when a >= b.
inline Var maximum(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  const bool left = t->value(a) >= t->value(b);
  return {t, t->addBinary(std::max(t->value(a), t->value(b)), a.index_,
                          left ? 1.0 : 0.0, b.index_, left ? 0.0 : 1.0)};
}

inline Var minimum(Var a, Var b) {
  DP_ASSERT(a.tape_ == b.tape_);
  Tape* t = a.tape_;
  const bool left = t->value(a) <= t->value(b);
  return {t, t->addBinary(std::min(t->value(a), t->value(b)), a.index_,
                          left ? 1.0 : 0.0, b.index_, left ? 0.0 : 1.0)};
}

/// Balanced-tree sum of a span of Vars.
inline Var sum(std::span<const Var> vars) {
  DP_ASSERT(!vars.empty());
  Var acc = vars[0];
  for (std::size_t i = 1; i < vars.size(); ++i) {
    acc = acc + vars[i];
  }
  return acc;
}

}  // namespace dreamplace::autograd
