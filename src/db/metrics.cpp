#include "db/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace dreamplace {

namespace {

/// Shared HPWL kernel; `getX`/`getY` map a pin index to its position.
template <typename GetX, typename GetY>
double hpwlImpl(const Database& db, GetX getX, GetY getY) {
  double total = 0.0;
  for (Index e = 0; e < db.numNets(); ++e) {
    const Index begin = db.netPinBegin(e);
    const Index end = db.netPinEnd(e);
    if (end - begin < 2) {
      continue;
    }
    double xl = std::numeric_limits<double>::infinity();
    double xh = -xl;
    double yl = xl;
    double yh = -xl;
    for (Index p = begin; p < end; ++p) {
      const double px = getX(p);
      const double py = getY(p);
      xl = std::min(xl, px);
      xh = std::max(xh, px);
      yl = std::min(yl, py);
      yh = std::max(yh, py);
    }
    total += db.netWeight(e) * ((xh - xl) + (yh - yl));
  }
  return total;
}

}  // namespace

double hpwl(const Database& db) {
  return hpwlImpl(
      db, [&](Index p) { return db.pinX(p); },
      [&](Index p) { return db.pinY(p); });
}

double hpwl(const Database& db, std::span<const double> x,
            std::span<const double> y) {
  DP_ASSERT(static_cast<Index>(x.size()) >= db.numMovable());
  auto posX = [&](Index p) {
    const Index c = db.pinCell(p);
    const double base = db.isMovable(c) ? x[c] : db.cellX(c);
    return base + db.cellWidth(c) / 2 + db.pinOffsetX(p);
  };
  auto posY = [&](Index p) {
    const Index c = db.pinCell(p);
    const double base = db.isMovable(c) ? y[c] : db.cellY(c);
    return base + db.cellHeight(c) / 2 + db.pinOffsetY(p);
  };
  return hpwlImpl(db, posX, posY);
}

double netHpwl(const Database& db, Index net) {
  const Index begin = db.netPinBegin(net);
  const Index end = db.netPinEnd(net);
  if (end - begin < 2) {
    return 0.0;
  }
  double xl = std::numeric_limits<double>::infinity();
  double xh = -xl;
  double yl = xl;
  double yh = -xl;
  for (Index p = begin; p < end; ++p) {
    xl = std::min(xl, db.pinX(p));
    xh = std::max(xh, db.pinX(p));
    yl = std::min(yl, db.pinY(p));
    yh = std::max(yh, db.pinY(p));
  }
  return db.netWeight(net) * ((xh - xl) + (yh - yl));
}

namespace {

/// Sweep-line enumeration of overlapping cell pairs. Calls `visit(i, j,
/// area)` for every overlapping pair with positive area where at least one
/// cell is movable.
template <typename Visit>
void forEachOverlap(const Database& db, Visit visit) {
  const Index n = db.numCells();
  std::vector<Index> order(n);
  for (Index i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return db.cellX(a) < db.cellX(b);
  });
  // Active set sorted by x-high; for each cell, compare against actives
  // whose x-interval still overlaps. For legalized placements the active
  // set stays small, so this is near O(n log n) in practice.
  std::vector<Index> active;
  for (Index idx : order) {
    const Box<Coord> box = db.cellBox(idx);
    // Drop actives that end before this cell begins.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](Index a) {
                                  return db.cellX(a) + db.cellWidth(a) <=
                                         box.xl;
                                }),
                 active.end());
    for (Index a : active) {
      if (!db.isMovable(a) && !db.isMovable(idx)) {
        continue;
      }
      const Coord area = box.overlapArea(db.cellBox(a));
      if (area > 0) {
        visit(a, idx, area);
      }
    }
    active.push_back(idx);
  }
}

}  // namespace

double totalOverlapArea(const Database& db) {
  double total = 0.0;
  forEachOverlap(db, [&](Index, Index, Coord area) { total += area; });
  return total;
}

LegalityReport checkLegality(const Database& db, double tolerance) {
  LegalityReport report;
  const Box<Coord>& die = db.dieArea();
  const Coord row_height = db.rowHeight();
  const Coord site_width = db.siteWidth();
  const Coord row_base = db.rows().empty() ? die.yl : db.rows().front().y;
  const Coord site_base = db.rows().empty() ? die.xl : db.rows().front().xl;

  for (Index i = 0; i < db.numMovable(); ++i) {
    const Box<Coord> box = db.cellBox(i);
    if (box.xl < die.xl - tolerance || box.xh > die.xh + tolerance ||
        box.yl < die.yl - tolerance || box.yh > die.yh + tolerance) {
      ++report.outOfRegion;
    }
    if (row_height > 0) {
      const double rows_off =
          std::abs(std::remainder(box.yl - row_base, row_height));
      if (rows_off > tolerance) {
        ++report.offRow;
      }
    }
    if (site_width > 0) {
      const double site_off =
          std::abs(std::remainder(box.xl - site_base, site_width));
      if (site_off > tolerance) {
        ++report.offSite;
      }
    }
  }
  forEachOverlap(db, [&](Index, Index, Coord area) {
    if (area > tolerance) {
      ++report.overlaps;
    }
  });
  report.legal = report.overlaps == 0 && report.offRow == 0 &&
                 report.offSite == 0 && report.outOfRegion == 0;
  return report;
}

std::string LegalityReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "legal=%d overlaps=%d offRow=%d offSite=%d outOfRegion=%d",
                legal ? 1 : 0, overlaps, offRow, offSite, outOfRegion);
  return buf;
}

double anchoredHpwlBound(const Database& db) {
  // Place every movable cell at the centroid of the fixed pins on its nets
  // (or die center if none), then measure HPWL. Not a true lower bound but
  // a stable reference point for sanity tests.
  std::vector<double> x(db.numMovable());
  std::vector<double> y(db.numMovable());
  const Box<Coord>& die = db.dieArea();
  for (Index c = 0; c < db.numMovable(); ++c) {
    double sx = 0.0;
    double sy = 0.0;
    int count = 0;
    for (Index s = db.cellPinBegin(c); s < db.cellPinEnd(c); ++s) {
      const Index pin = db.cellPinAt(s);
      const Index net = db.pinNet(pin);
      for (Index q = db.netPinBegin(net); q < db.netPinEnd(net); ++q) {
        const Index other = db.pinCell(q);
        if (!db.isMovable(other)) {
          sx += db.pinX(q);
          sy += db.pinY(q);
          ++count;
        }
      }
    }
    if (count > 0) {
      x[c] = sx / count - db.cellWidth(c) / 2;
      y[c] = sy / count - db.cellHeight(c) / 2;
    } else {
      x[c] = die.centerX() - db.cellWidth(c) / 2;
      y[c] = die.centerY() - db.cellHeight(c) / 2;
    }
  }
  return hpwl(db, x, y);
}

}  // namespace dreamplace
