// Placement database: a flat structure-of-arrays netlist model.
//
// Layout conventions:
//  * Cells are ordered movable-first: indices [0, numMovable) are movable,
//    [numMovable, numCells) are fixed (pads, pre-placed macros). Gradient
//    and position arrays in the global placer exploit this ordering.
//  * Pins are grouped by net (CSR via netPinStart); a second CSR maps each
//    cell to its pins.
//  * Pin offsets are relative to the owning cell's center, matching the
//    Bookshelf .nets convention. pinX = cellX + cellWidth/2 + pinOffsetX.
//  * Cell (cellX, cellY) is the lower-left corner.
#pragma once

#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/memory.h"
#include "common/types.h"

namespace dreamplace {

/// One placement row (Bookshelf .scl CoreRow). All rows in the designs we
/// target share the same height and site width.
struct Row {
  Coord y = 0;       ///< Lower edge of the row.
  Coord height = 0;  ///< Row (and standard-cell) height.
  Coord xl = 0;      ///< Left edge of the usable span.
  Coord xh = 0;      ///< Right edge of the usable span.
  Coord siteWidth = 1;
};

class Database {
 public:
  // --- Construction -------------------------------------------------------
  // The database is built by io/ (Bookshelf) or gen/ (synthetic). Builders
  // push raw entities and then call finalize(), which derives CSR structures
  // and validates invariants.

  /// Adds a cell; returns its index. Movable/fixed partitioning is applied
  /// in finalize() by stable re-ordering, so builders may add in any order.
  Index addCell(std::string name, Coord width, Coord height, bool movable);

  /// Adds a net; returns its index.
  Index addNet(std::string name, double weight = 1.0);

  /// Adds a pin on `cell` belonging to `net`, with offsets from cell center.
  Index addPin(Index net, Index cell, Coord offsetX, Coord offsetY);

  void setDieArea(const Box<Coord>& area) { die_area_ = area; }
  void addRow(const Row& row) { rows_.push_back(row); }

  /// Sets the initial location (lower-left) of a cell.
  void setCellPosition(Index cell, Coord x, Coord y);

  /// Re-orders cells movable-first, builds CSR maps, validates. Must be
  /// called exactly once after all entities are added.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- Sizes ---------------------------------------------------------------
  Index numCells() const { return static_cast<Index>(cell_width_.size()); }
  Index numMovable() const { return num_movable_; }
  Index numFixed() const { return numCells() - num_movable_; }
  Index numNets() const { return static_cast<Index>(net_pin_start_.size()) - 1; }
  Index numPins() const { return static_cast<Index>(pin_cell_.size()); }

  bool isMovable(Index cell) const { return cell < num_movable_; }

  // --- Region ---------------------------------------------------------------
  const Box<Coord>& dieArea() const { return die_area_; }
  const std::vector<Row>& rows() const { return rows_; }
  Coord rowHeight() const { return rows_.empty() ? 0 : rows_.front().height; }
  Coord siteWidth() const {
    return rows_.empty() ? 1 : rows_.front().siteWidth;
  }

  // --- Cells -----------------------------------------------------------------
  const std::string& cellName(Index cell) const { return cell_name_[cell]; }
  Coord cellWidth(Index cell) const { return cell_width_[cell]; }
  Coord cellHeight(Index cell) const { return cell_height_[cell]; }
  Coord cellArea(Index cell) const {
    return cell_width_[cell] * cell_height_[cell];
  }
  Coord cellX(Index cell) const { return cell_x_[cell]; }
  Coord cellY(Index cell) const { return cell_y_[cell]; }
  Box<Coord> cellBox(Index cell) const {
    return {cell_x_[cell], cell_y_[cell], cell_x_[cell] + cell_width_[cell],
            cell_y_[cell] + cell_height_[cell]};
  }
  /// Mutable access to positions (the flow moves cells).
  std::vector<Coord>& cellXs() { return cell_x_; }
  std::vector<Coord>& cellYs() { return cell_y_; }
  const std::vector<Coord>& cellXs() const { return cell_x_; }
  const std::vector<Coord>& cellYs() const { return cell_y_; }
  const std::vector<Coord>& cellWidths() const { return cell_width_; }
  const std::vector<Coord>& cellHeights() const { return cell_height_; }

  /// Looks up a cell by name; kInvalidIndex if absent. O(1) after finalize.
  Index findCell(const std::string& name) const;

  // --- Nets ------------------------------------------------------------------
  const std::string& netName(Index net) const { return net_name_[net]; }
  double netWeight(Index net) const { return net_weight_[net]; }
  /// Updates a net weight (net-weighting flows re-weight between GP
  /// rounds; ops snapshot weights at construction).
  void setNetWeight(Index net, double weight) { net_weight_[net] = weight; }
  Index netDegree(Index net) const {
    return net_pin_start_[net + 1] - net_pin_start_[net];
  }
  /// Pin index range [begin, end) of a net.
  Index netPinBegin(Index net) const { return net_pin_start_[net]; }
  Index netPinEnd(Index net) const { return net_pin_start_[net + 1]; }
  const std::vector<Index>& netPinStarts() const { return net_pin_start_; }

  // --- Pins ------------------------------------------------------------------
  Index pinCell(Index pin) const { return pin_cell_[pin]; }
  Index pinNet(Index pin) const { return pin_net_[pin]; }
  Coord pinOffsetX(Index pin) const { return pin_offset_x_[pin]; }
  Coord pinOffsetY(Index pin) const { return pin_offset_y_[pin]; }
  /// Absolute pin position given the current cell locations.
  Coord pinX(Index pin) const {
    const Index c = pin_cell_[pin];
    return cell_x_[c] + cell_width_[c] / 2 + pin_offset_x_[pin];
  }
  Coord pinY(Index pin) const {
    const Index c = pin_cell_[pin];
    return cell_y_[c] + cell_height_[c] / 2 + pin_offset_y_[pin];
  }
  const std::vector<Index>& pinCells() const { return pin_cell_; }
  const std::vector<Index>& pinNets() const { return pin_net_; }
  const std::vector<Coord>& pinOffsetXs() const { return pin_offset_x_; }
  const std::vector<Coord>& pinOffsetYs() const { return pin_offset_y_; }

  // --- Cell -> pins CSR -------------------------------------------------------
  Index cellPinBegin(Index cell) const { return cell_pin_start_[cell]; }
  Index cellPinEnd(Index cell) const { return cell_pin_start_[cell + 1]; }
  Index cellPinAt(Index slot) const { return cell_pins_[slot]; }

  // --- Derived statistics ------------------------------------------------------
  /// Total area of movable cells.
  Coord totalMovableArea() const;
  /// Total area of fixed cells clipped to the die area.
  Coord totalFixedArea() const;
  /// Whitespace = die area - fixed area; utilization = movable / whitespace.
  Coord utilization() const;

 private:
  void buildCellPinCsr();
  void validate() const;

  Box<Coord> die_area_{};
  std::vector<Row> rows_;

  std::vector<std::string> cell_name_;
  std::vector<Coord> cell_width_;
  std::vector<Coord> cell_height_;
  std::vector<Coord> cell_x_;
  std::vector<Coord> cell_y_;
  std::vector<char> cell_movable_;  // pre-finalize flag
  Index num_movable_ = 0;

  std::vector<std::string> net_name_;
  std::vector<double> net_weight_;
  std::vector<Index> net_pin_start_;  // size numNets+1 after finalize

  // During building, pins are appended in arbitrary order with their net id;
  // finalize() sorts them into net-grouped CSR order.
  std::vector<Index> pin_cell_;
  std::vector<Index> pin_net_;
  std::vector<Coord> pin_offset_x_;
  std::vector<Coord> pin_offset_y_;

  std::vector<Index> cell_pin_start_;
  std::vector<Index> cell_pins_;

  std::vector<std::pair<std::string, Index>> name_index_;  // sorted lookup
  TrackedBytes mem_{"db"};  ///< flat-array footprint, set in finalize()
  bool finalized_ = false;
};

}  // namespace dreamplace
