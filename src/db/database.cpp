#include "db/database.h"

#include <algorithm>
#include <numeric>
#include <type_traits>

#include "common/log.h"

namespace dreamplace {

Index Database::addCell(std::string name, Coord width, Coord height,
                        bool movable) {
  DP_ASSERT_MSG(!finalized_, "addCell after finalize");
  DP_ASSERT_MSG(width > 0 && height > 0, "cell %s has non-positive size",
                name.c_str());
  cell_name_.push_back(std::move(name));
  cell_width_.push_back(width);
  cell_height_.push_back(height);
  cell_x_.push_back(0);
  cell_y_.push_back(0);
  cell_movable_.push_back(movable ? 1 : 0);
  return numCells() - 1;
}

Index Database::addNet(std::string name, double weight) {
  DP_ASSERT_MSG(!finalized_, "addNet after finalize");
  net_name_.push_back(std::move(name));
  net_weight_.push_back(weight);
  return static_cast<Index>(net_name_.size()) - 1;
}

Index Database::addPin(Index net, Index cell, Coord offsetX, Coord offsetY) {
  DP_ASSERT_MSG(!finalized_, "addPin after finalize");
  DP_ASSERT(net >= 0 && net < static_cast<Index>(net_name_.size()));
  DP_ASSERT(cell >= 0 && cell < numCells());
  pin_cell_.push_back(cell);
  pin_net_.push_back(net);
  pin_offset_x_.push_back(offsetX);
  pin_offset_y_.push_back(offsetY);
  return static_cast<Index>(pin_cell_.size()) - 1;
}

void Database::setCellPosition(Index cell, Coord x, Coord y) {
  DP_ASSERT(cell >= 0 && cell < numCells());
  cell_x_[cell] = x;
  cell_y_[cell] = y;
}

void Database::finalize() {
  DP_ASSERT_MSG(!finalized_, "finalize called twice");

  const Index n = numCells();
  // Stable movable-first permutation: newIndex[oldIndex].
  std::vector<Index> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return cell_movable_[a] > cell_movable_[b];
  });
  std::vector<Index> new_index(n);
  for (Index i = 0; i < n; ++i) {
    new_index[order[i]] = i;
  }

  auto permute = [&](auto& vec) {
    using V = std::remove_reference_t<decltype(vec)>;
    V out(vec.size());
    for (Index i = 0; i < n; ++i) {
      out[i] = std::move(vec[order[i]]);
    }
    vec = std::move(out);
  };
  permute(cell_name_);
  permute(cell_width_);
  permute(cell_height_);
  permute(cell_x_);
  permute(cell_y_);
  permute(cell_movable_);
  num_movable_ = static_cast<Index>(
      std::count(cell_movable_.begin(), cell_movable_.end(), 1));

  for (Index& c : pin_cell_) {
    c = new_index[c];
  }

  // Group pins by net into CSR order.
  const Index num_nets = static_cast<Index>(net_name_.size());
  const Index num_pins = static_cast<Index>(pin_cell_.size());
  net_pin_start_.assign(num_nets + 1, 0);
  for (Index p = 0; p < num_pins; ++p) {
    ++net_pin_start_[pin_net_[p] + 1];
  }
  std::partial_sum(net_pin_start_.begin(), net_pin_start_.end(),
                   net_pin_start_.begin());

  std::vector<Index> cursor(net_pin_start_.begin(), net_pin_start_.end() - 1);
  std::vector<Index> pc(num_pins);
  std::vector<Index> pn(num_pins);
  std::vector<Coord> px(num_pins);
  std::vector<Coord> py(num_pins);
  for (Index p = 0; p < num_pins; ++p) {
    const Index slot = cursor[pin_net_[p]]++;
    pc[slot] = pin_cell_[p];
    pn[slot] = pin_net_[p];
    px[slot] = pin_offset_x_[p];
    py[slot] = pin_offset_y_[p];
  }
  pin_cell_ = std::move(pc);
  pin_net_ = std::move(pn);
  pin_offset_x_ = std::move(px);
  pin_offset_y_ = std::move(py);

  buildCellPinCsr();

  name_index_.reserve(n);
  for (Index i = 0; i < n; ++i) {
    name_index_.emplace_back(cell_name_[i], i);
  }
  std::sort(name_index_.begin(), name_index_.end());

  finalized_ = true;
  validate();

  const auto vec_bytes = [](const auto& v) {
    return static_cast<std::int64_t>(
        v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  mem_.set(vec_bytes(cell_width_) + vec_bytes(cell_height_) +
           vec_bytes(cell_x_) + vec_bytes(cell_y_) +
           vec_bytes(cell_movable_) + vec_bytes(net_weight_) +
           vec_bytes(net_pin_start_) + vec_bytes(pin_cell_) +
           vec_bytes(pin_net_) + vec_bytes(pin_offset_x_) +
           vec_bytes(pin_offset_y_) + vec_bytes(cell_pin_start_) +
           vec_bytes(cell_pins_) + vec_bytes(rows_));
}

void Database::buildCellPinCsr() {
  const Index n = numCells();
  const Index num_pins = numPins();
  cell_pin_start_.assign(n + 1, 0);
  for (Index p = 0; p < num_pins; ++p) {
    ++cell_pin_start_[pin_cell_[p] + 1];
  }
  std::partial_sum(cell_pin_start_.begin(), cell_pin_start_.end(),
                   cell_pin_start_.begin());
  cell_pins_.resize(num_pins);
  std::vector<Index> cursor(cell_pin_start_.begin(),
                            cell_pin_start_.end() - 1);
  for (Index p = 0; p < num_pins; ++p) {
    cell_pins_[cursor[pin_cell_[p]]++] = p;
  }
}

void Database::validate() const {
  DP_ASSERT_MSG(die_area_.width() > 0 && die_area_.height() > 0,
                "die area is empty");
  for (Index i = 0; i < numCells(); ++i) {
    DP_ASSERT(cell_width_[i] > 0 && cell_height_[i] > 0);
  }
  for (Index e = 0; e < numNets(); ++e) {
    DP_ASSERT_MSG(netDegree(e) >= 1, "net %s has no pins",
                  net_name_[e].c_str());
  }
  for (Index p = 0; p < numPins(); ++p) {
    DP_ASSERT(pin_cell_[p] >= 0 && pin_cell_[p] < numCells());
    DP_ASSERT(pin_net_[p] >= 0 && pin_net_[p] < numNets());
  }
}

Index Database::findCell(const std::string& name) const {
  auto it = std::lower_bound(
      name_index_.begin(), name_index_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != name_index_.end() && it->first == name) {
    return it->second;
  }
  return kInvalidIndex;
}

Coord Database::totalMovableArea() const {
  Coord area = 0;
  for (Index i = 0; i < num_movable_; ++i) {
    area += cellArea(i);
  }
  return area;
}

Coord Database::totalFixedArea() const {
  Coord area = 0;
  for (Index i = num_movable_; i < numCells(); ++i) {
    Box<Coord> box = cellBox(i);
    // Clip to the die; pads may sit on or outside the boundary.
    box.xl = std::max(box.xl, die_area_.xl);
    box.yl = std::max(box.yl, die_area_.yl);
    box.xh = std::min(box.xh, die_area_.xh);
    box.yh = std::min(box.yh, die_area_.yh);
    if (box.width() > 0 && box.height() > 0) {
      area += box.area();
    }
  }
  return area;
}

Coord Database::utilization() const {
  const Coord whitespace = die_area_.area() - totalFixedArea();
  return whitespace > 0 ? totalMovableArea() / whitespace : 1.0;
}

}  // namespace dreamplace
