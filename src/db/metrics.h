// Placement quality metrics: HPWL, overlap, legality.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "db/database.h"

namespace dreamplace {

/// Half-perimeter wirelength over all nets using the positions stored in
/// the database. Net weights are applied.
double hpwl(const Database& db);

/// HPWL using external movable-cell position arrays (indices [0,numMovable));
/// fixed cells use the database positions. This is the view the global
/// placer uses while iterating, so the database itself stays untouched
/// until the flow commits a solution.
double hpwl(const Database& db, std::span<const double> x,
            std::span<const double> y);

/// HPWL of a single net from database positions.
double netHpwl(const Database& db, Index net);

/// Sum over all cell pairs of pairwise overlap area. O(n log n) sweep.
/// Fillers and fixed-fixed overlaps excluded; used to verify legalization.
double totalOverlapArea(const Database& db);

struct LegalityReport {
  bool legal = true;
  Index overlaps = 0;         ///< Number of overlapping movable pairs.
  Index offRow = 0;           ///< Movable cells not aligned to a row.
  Index offSite = 0;          ///< Movable cells not aligned to a site.
  Index outOfRegion = 0;      ///< Movable cells outside the die.
  std::string summary() const;
};

/// Full legality check of movable cells: inside die, row- and site-aligned,
/// and pairwise non-overlapping (against both movable and fixed cells).
LegalityReport checkLegality(const Database& db, double tolerance = 1e-6);

/// Star-model lower bound proxy for sanity checks: for each net, half the
/// perimeter of the bounding box of its pins if every pin collapsed to the
/// net centroid would be zero, so instead we report the sum over nets of
/// (degree >= 2) minimal spanning distance estimate: 0. Kept simple: this
/// returns the HPWL of the placement where every movable cell sits at the
/// centroid of its connected fixed pins, a crude but useful lower-ish bound
/// for end-to-end sanity tests.
double anchoredHpwlBound(const Database& db);

}  // namespace dreamplace
