#include "ops/fence_density_op.h"

#include <algorithm>
#include <cmath>

#include "common/counters.h"
#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

/// Marks every bin fraction outside `box` as occupied in `map` (adds, in
/// density units), clamped to 1 at the end by the caller.
template <typename T>
void blockOutside(const Box<Coord>& box, const DensityGrid<T>& grid,
                  std::vector<T>& map) {
  for (int bx = 0; bx < grid.mx; ++bx) {
    const double bin_xl = grid.xl + bx * grid.binW;
    const double bin_xh = bin_xl + grid.binW;
    const double ox = overlapLength<double>(bin_xl, bin_xh, box.xl, box.xh);
    for (int by = 0; by < grid.my; ++by) {
      const double bin_yl = grid.yl + by * grid.binH;
      const double bin_yh = bin_yl + grid.binH;
      const double oy =
          overlapLength<double>(bin_yl, bin_yh, box.yl, box.yh);
      const double inside = ox * oy / grid.binArea();
      map[bx * grid.my + by] += static_cast<T>(1.0 - inside);
    }
  }
}

}  // namespace

template <typename T>
FenceDensityOp<T>::FenceDensityOp(const Database& db,
                                  const DensityGrid<T>& grid,
                                  std::vector<FenceRegion> fences,
                                  std::vector<int> nodeGroup,
                                  std::vector<T> nodeW, std::vector<T> nodeH,
                                  Options options)
    : db_(db),
      grid_(grid),
      options_(options),
      num_nodes_(static_cast<Index>(nodeW.size())),
      node_group_(std::move(nodeGroup)),
      solver_(grid.mx, grid.my, options.dct) {
  DP_ASSERT(static_cast<Index>(node_group_.size()) == num_nodes_);
  const int num_groups = static_cast<int>(fences.size()) + 1;
  group_box_.resize(num_groups);
  group_box_[0] = db.dieArea();
  for (int g = 1; g < num_groups; ++g) {
    group_box_[g] = fences[g - 1].box;
  }

  groups_.resize(num_groups);
  for (Index i = 0; i < num_nodes_; ++i) {
    const int g = node_group_[i];
    DP_ASSERT_MSG(g >= 0 && g < num_groups, "node %d has bad group %d", i,
                  g);
    groups_[g].members.push_back(i);
  }

  const std::vector<T> base_fixed = buildFixedDensityMap<T>(db, grid);
  for (int g = 0; g < num_groups; ++g) {
    Group& group = groups_[g];
    std::vector<T> w(group.members.size());
    std::vector<T> h(group.members.size());
    for (size_t k = 0; k < group.members.size(); ++k) {
      const Index node = group.members[k];
      w[k] = nodeW[node];
      h[k] = nodeH[node];
      if (node < db.numMovable()) {
        group.movableArea += db.cellArea(node);
      }
    }
    group.builder = std::make_unique<DensityMapBuilder<T>>(
        grid, std::move(w), std::move(h), options.map);
    // Fixed field: real fixed cells plus everything outside the fence.
    group.fixedMap = base_fixed;
    if (g == 0) {
      // Default region: the other fences are blocked for it.
      for (int other = 1; other < num_groups; ++other) {
        Box<Coord> blocked = group_box_[other];
        for (int bx = 0; bx < grid.mx; ++bx) {
          const double bin_xl = grid.xl + bx * grid.binW;
          const double ox = overlapLength<double>(
              bin_xl, bin_xl + grid.binW, blocked.xl, blocked.xh);
          for (int by = 0; by < grid.my; ++by) {
            const double bin_yl = grid.yl + by * grid.binH;
            const double oy = overlapLength<double>(
                bin_yl, bin_yl + grid.binH, blocked.yl, blocked.yh);
            group.fixedMap[bx * grid.my + by] +=
                static_cast<T>(ox * oy / grid.binArea());
          }
        }
      }
    } else {
      blockOutside(group_box_[g], grid, group.fixedMap);
    }
    for (T& d : group.fixedMap) {
      d = std::min(d, T(1));
    }
    group.x.resize(group.members.size());
    group.y.resize(group.members.size());
    group.gx.resize(group.members.size());
    group.gy.resize(group.members.size());
    group.map.resize(static_cast<size_t>(grid.mx) * grid.my);
  }
}

template <typename T>
void FenceDensityOp<T>::gatherMemberPositions(const Group& g,
                                              std::span<const T> params,
                                              std::vector<T>& x,
                                              std::vector<T>& y) const {
  const T* px = params.data();
  const T* py = params.data() + num_nodes_;
  for (size_t k = 0; k < g.members.size(); ++k) {
    x[k] = px[g.members[k]];
    y[k] = py[g.members[k]];
  }
}

template <typename T>
double FenceDensityOp<T>::evaluate(std::span<const T> params,
                                   std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/density/evaluate");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  double energy = 0.0;
  T* gx_out = grad.data();
  T* gy_out = grad.data() + num_nodes_;
  for (Group& group : groups_) {
    if (group.members.empty()) {
      continue;
    }
    gatherMemberPositions(group, params, group.x, group.y);
    std::copy(group.fixedMap.begin(), group.fixedMap.end(),
              group.map.begin());
    group.builder->scatter(group.x.data(), group.y.data(), 0,
                           static_cast<Index>(group.members.size()),
                           group.map);
    solver_.solve(std::span<const T>(group.map), solution_);
    energy += solution_.energy;
    group.builder->gatherForce(group.x.data(), group.y.data(),
                               std::span<const T>(solution_.fieldX),
                               std::span<const T>(solution_.fieldY),
                               group.gx.data(), group.gy.data());
    for (size_t k = 0; k < group.members.size(); ++k) {
      gx_out[group.members[k]] = group.gx[k];
      gy_out[group.members[k]] = group.gy[k];
    }
  }
  return energy;
}

template <typename T>
double FenceDensityOp<T>::overflow(std::span<const T> params) const {
  // Overflow per group against its fence-restricted free area; aggregated
  // as an area-weighted sum so the metric stays comparable to the
  // single-field definition.
  double total_overflow_area = 0.0;
  double total_movable = 0.0;
  std::vector<T> movable(static_cast<size_t>(grid_.mx) * grid_.my);
  for (const Group& group : groups_) {
    if (group.members.empty() || group.movableArea <= 0) {
      continue;
    }
    // Movable members only (global index < numMovable).
    std::vector<T> x;
    std::vector<T> y;
    x.reserve(group.members.size());
    y.reserve(group.members.size());
    const T* px = params.data();
    const T* py = params.data() + num_nodes_;
    // The builder indexes by member slot; scatter a prefix restricted to
    // movable members by zero-size filtering: build a position array where
    // filler members are parked far outside the grid (their contribution
    // clips to nothing).
    std::vector<T> mx(group.members.size());
    std::vector<T> my(group.members.size());
    for (size_t k = 0; k < group.members.size(); ++k) {
      const Index node = group.members[k];
      if (node < db_.numMovable()) {
        mx[k] = px[node];
        my[k] = py[node];
      } else {
        mx[k] = static_cast<T>(grid_.xl - 1e6);
        my[k] = static_cast<T>(grid_.yl - 1e6);
      }
    }
    std::fill(movable.begin(), movable.end(), T(0));
    group.builder->scatter(mx.data(), my.data(), 0,
                           static_cast<Index>(group.members.size()),
                           movable);
    const double ovf =
        densityOverflow<T>(movable, group.fixedMap, grid_,
                           options_.targetDensity, group.movableArea);
    total_overflow_area += ovf * group.movableArea;
    total_movable += group.movableArea;
  }
  return total_movable > 0 ? total_overflow_area / total_movable : 0.0;
}

template <typename T>
T FenceDensityOp<T>::nodeArea(Index node) const {
  const Group& g = groups_[node_group_[node]];
  const auto it = std::lower_bound(g.members.begin(), g.members.end(), node);
  const auto slot = static_cast<Index>(it - g.members.begin());
  return g.builder->chargeScale(slot) * g.builder->effectiveWidth(slot) *
         g.builder->effectiveHeight(slot);
}

template <typename T>
T FenceDensityOp<T>::nodeWidth(Index node) const {
  const Group& g = groups_[node_group_[node]];
  const auto it = std::lower_bound(g.members.begin(), g.members.end(), node);
  return g.builder->effectiveWidth(static_cast<Index>(it - g.members.begin()));
}

template <typename T>
T FenceDensityOp<T>::nodeHeight(Index node) const {
  const Group& g = groups_[node_group_[node]];
  const auto it = std::lower_bound(g.members.begin(), g.members.end(), node);
  return g.builder->effectiveHeight(
      static_cast<Index>(it - g.members.begin()));
}

std::vector<int> assignFillerGroups(const Database& db,
                                    const std::vector<int>& cellGroup,
                                    const std::vector<FenceRegion>& fences,
                                    Index numFillers) {
  DP_ASSERT(static_cast<Index>(cellGroup.size()) == db.numMovable());
  const int num_groups = static_cast<int>(fences.size()) + 1;
  // Whitespace per group: fence area minus its movable cells (default
  // region: die minus fences minus its movable cells).
  std::vector<double> whitespace(num_groups, 0.0);
  whitespace[0] = db.dieArea().area() - db.totalFixedArea();
  for (int g = 1; g < num_groups; ++g) {
    whitespace[g] = fences[g - 1].box.area();
    whitespace[0] -= fences[g - 1].box.area();
  }
  for (Index i = 0; i < db.numMovable(); ++i) {
    whitespace[cellGroup[i]] -= db.cellArea(i);
  }
  double total = 0.0;
  for (double& w : whitespace) {
    w = std::max(w, 0.0);
    total += w;
  }
  std::vector<int> node_group(cellGroup.begin(), cellGroup.end());
  node_group.reserve(cellGroup.size() + numFillers);
  // Deterministic proportional assignment (largest remainder not needed:
  // running-quota rounding is stable and adds up to numFillers).
  double carry = 0.0;
  Index assigned = 0;
  for (int g = 0; g < num_groups && total > 0; ++g) {
    const double exact =
        static_cast<double>(numFillers) * whitespace[g] / total + carry;
    Index count = static_cast<Index>(std::floor(exact));
    carry = exact - count;
    if (g == num_groups - 1) {
      count = numFillers - assigned;  // absorb rounding remainder
    }
    for (Index k = 0; k < count; ++k) {
      node_group.push_back(g);
    }
    assigned += count;
  }
  while (static_cast<Index>(node_group.size()) <
         db.numMovable() + numFillers) {
    node_group.push_back(0);
  }
  return node_group;
}

template class FenceDensityOp<float>;
template class FenceDensityOp<double>;

}  // namespace dreamplace
