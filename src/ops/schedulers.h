// Hyper-parameter schedules of the ePlace/RePlAce flow.
//
// DensityWeightScheduler implements paper eq. (18): the density weight
// lambda is multiplied each iteration by mu, where mu depends on the HPWL
// delta of the last iteration. The TCAD extension replaces mu_max with
// mu_max * max(0.9999^k, 0.98) when p < 0 (Sec. III-C), which this class
// implements behind a flag (the ablation bench compares both).
//
// GammaScheduler implements the ePlace wirelength-smoothness schedule:
// gamma shrinks from ~80x bin size toward ~0.8x bin size as the density
// overflow decreases, sharpening the WA approximation as cells spread.
#pragma once

#include <algorithm>
#include <cmath>

namespace dreamplace {

class DensityWeightScheduler {
 public:
  struct Options {
    double muMin = 0.95;
    double muMax = 1.05;
    /// Reference HPWL delta corresponding to p = 1. The paper uses the
    /// absolute constant 3.5e5 on ISPD-scale designs (HPWL ~ 1e8); we
    /// scale it to the design via 3.5e-3 * initial HPWL so the schedule is
    /// size-independent.
    double refDeltaHpwl = 3.5e5;
    bool tcadMuVariant = true;  ///< mu_max * max(0.9999^k, 0.98) when p<0.
  };

  // Defined out-of-line below: a default argument constructing the nested
  // Options cannot use its member initializers until the enclosing class
  // is complete.
  explicit DensityWeightScheduler(Options options);
  DensityWeightScheduler() : DensityWeightScheduler(Options()) {}

  /// Initial lambda balancing wirelength and density gradient magnitudes
  /// (ePlace: lambda0 = sum|grad WL| / sum|grad D|).
  static double initialWeight(double wlGradAbsSum, double densityGradAbsSum) {
    return densityGradAbsSum > 0 ? wlGradAbsSum / densityGradAbsSum : 1.0;
  }

  void setReferenceDelta(double refDeltaHpwl) {
    options_.refDeltaHpwl = refDeltaHpwl;
  }

  /// Returns the multiplier mu for this iteration (paper eq. (18a)).
  double mu(double deltaHpwl, long iteration) const {
    const double p = deltaHpwl / options_.refDeltaHpwl;
    if (p < 0) {
      if (options_.tcadMuVariant) {
        return options_.muMax *
               std::max(std::pow(0.9999, static_cast<double>(iteration)),
                        0.98);
      }
      return options_.muMax;
    }
    return std::max(options_.muMin, std::pow(options_.muMax, 1.0 - p));
  }

  /// lambda <- lambda * mu (eq. (18b)).
  double update(double lambda, double deltaHpwl, long iteration) const {
    return lambda * mu(deltaHpwl, iteration);
  }

 private:
  Options options_;
};

class GammaScheduler {
 public:
  struct Options {
    double baseCoef = 8.0;  ///< gamma at overflow 0.1 is ~0.8 * bin size.
  };

  GammaScheduler(double binSize, Options options);
  explicit GammaScheduler(double binSize)
      : GammaScheduler(binSize, Options()) {}

  /// gamma(overflow) = 8 * binSize * 10^((overflow - 0.1) * 20/9 - 1):
  /// ~80x bin size at overflow 1.0 (very smooth early), ~0.8x at 0.1.
  double gamma(double overflow) const {
    const double k = (std::clamp(overflow, 0.0, 1.0) - 0.1) * 20.0 / 9.0;
    return options_.baseCoef * bin_size_ * std::pow(10.0, k - 1.0);
  }

 private:
  double bin_size_;
  Options options_;
};

inline DensityWeightScheduler::DensityWeightScheduler(Options options)
    : options_(options) {}

inline GammaScheduler::GammaScheduler(double binSize, Options options)
    : bin_size_(binSize), options_(options) {}

}  // namespace dreamplace
