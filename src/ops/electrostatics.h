// Spectral Poisson solver for the electrostatic density model
// (paper Sec. II-C eq. (4)-(5) and Sec. III-B3 eq. (9)).
//
// Solves  laplacian(psi) = -rho  on an mx x my bin grid with Neumann
// (zero normal field) boundary conditions, which the DCT-II basis
// cos(pi*u*(x+1/2)/M) satisfies naturally. The DC mode is zeroed,
// implementing the zero-total-charge compatibility condition (eq. (4c)).
//
// Outputs, all in bin-index coordinates:
//   potential psi(x,y),
//   fieldX = -d psi / dx  (IDXST along x, IDCT along y),
//   fieldY = -d psi / dy  (IDCT along x, IDXST along y),
//   energy = 1/2 sum_b rho_b * psi_b.
//
// Maps are row-major with dim0 = x: element (bx, by) at bx*my + by.
#pragma once

#include <span>
#include <vector>

#include "common/memory.h"
#include "fft/dct2d.h"

namespace dreamplace {

template <typename T>
struct PoissonSolution {
  std::vector<T> potential;
  std::vector<T> fieldX;
  std::vector<T> fieldY;
  double energy = 0.0;
};

template <typename T>
class PoissonSolver {
 public:
  PoissonSolver(int mx, int my,
                fft::Dct2dAlgorithm algo = fft::Dct2dAlgorithm::kFft2dN);

  /// Solves for the given density map. The transform plans and all
  /// spectral workspace are constructed once with the solver and reused,
  /// so steady-state calls (same `out` object) perform no heap
  /// allocation; the counter pair `ops/electrostatics/ws_alloc` /
  /// `ws_reuse` records whether a call had to grow the output buffers.
  void solve(std::span<const T> density, PoissonSolution<T>& out);

  int mx() const { return mx_; }
  int my() const { return my_; }

 private:
  int mx_;
  int my_;
  fft::Dct2dPlan<T> plan_;   ///< owns FFT plans + transform workspace
  std::vector<T> wu_;        ///< omega_u = pi*u/mx
  std::vector<T> wv_;        ///< omega_v = pi*v/my
  std::vector<T> inv_w2_;    ///< 1/(wu^2+wv^2), 0 at DC
  std::vector<T> coeff_;     ///< forward DCT of the density
  std::vector<T> z_;         ///< scaled modes for the potential
  std::vector<T> zx_;        ///< scaled modes for fieldX
  std::vector<T> zy_;        ///< scaled modes for fieldY
  TrackedBytes mem_{"ops/density/grids"};  ///< spectral workspace bytes
};

}  // namespace dreamplace
