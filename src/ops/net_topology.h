// Flattened net topology shared by the wirelength operators.
//
// All wirelength kernels (the three WA strategies, LSE, and the exact
// HPWL probe) consume the same flat arrays: CSR net->pin offsets, the
// pin->node map, pin offsets for movable pins, absolute positions for
// fixed pins, and net weights. NetTopology owns those arrays (built once
// from the database); NetTopologyView is the non-owning span bundle the
// kernels read. Passing one view instead of seven parallel out-params
// keeps kernel signatures stable as fields are added and guarantees every
// strategy sees identical data.
#pragma once

#include <span>
#include <vector>

#include "db/database.h"

namespace dreamplace {

/// Non-owning view over the flattened topology arrays.
template <typename T>
struct NetTopologyView {
  std::span<const Index> netStart;   ///< CSR offsets, numNets()+1 entries.
  std::span<const Index> pinNet;     ///< Pin -> net.
  std::span<const Index> pinNode;    ///< Pin -> node, kInvalidIndex if fixed.
  std::span<const T> pinFixedX;      ///< Absolute position of fixed pins.
  std::span<const T> pinFixedY;
  std::span<const T> pinOffsetX;     ///< Offset from node center if movable.
  std::span<const T> pinOffsetY;
  std::span<const T> netWeight;
  std::span<const Index> nodePinStart;  ///< CSR offsets, numCells+1 entries.
  std::span<const Index> nodePins;      ///< Movable pins grouped by node.

  Index numNets() const { return static_cast<Index>(netWeight.size()); }
  Index numPins() const { return static_cast<Index>(pinNode.size()); }
  Index numCells() const {
    return static_cast<Index>(nodePinStart.size()) - 1;
  }
  Index netBegin(Index e) const { return netStart[e]; }
  Index netEnd(Index e) const { return netStart[e + 1]; }
  Index netDegree(Index e) const { return netEnd(e) - netBegin(e); }
};

/// Owning storage for a NetTopologyView, built once from the database.
template <typename T>
class NetTopology {
 public:
  NetTopology() = default;
  explicit NetTopology(const Database& db);

  NetTopologyView<T> view() const {
    return {net_start_,    pin_net_,      pin_node_,     pin_fixed_x_,
            pin_fixed_y_,  pin_offset_x_, pin_offset_y_, net_weight_,
            node_pin_start_, node_pins_};
  }

 private:
  std::vector<Index> net_start_;
  std::vector<Index> pin_net_;
  std::vector<Index> pin_node_;
  std::vector<T> pin_fixed_x_, pin_fixed_y_;
  std::vector<T> pin_offset_x_, pin_offset_y_;
  std::vector<T> net_weight_;
  // Node -> pin CSR (movable pins only). The wirelength kernels write
  // per-pin gradients and gather them per node in this fixed pin order,
  // which is what makes the parallel backward pass deterministic.
  std::vector<Index> node_pin_start_;
  std::vector<Index> node_pins_;
};

/// Exact weighted HPWL over a topology at the given node centers
/// (params[0..numNodes) are x, params[numNodes..2*numNodes) are y).
/// Shared monitoring probe of the WA and LSE ops; not differentiable.
template <typename T>
double topologyHpwl(const NetTopologyView<T>& topo, std::span<const T> params,
                    Index numNodes);

/// Accumulates per-pin gradients into per-node gradients through the
/// node->pin CSR: gradX[c] += sum of pinGradX over c's pins, in ascending
/// pin order. Nodes write disjoint entries, so the loop parallelizes
/// without atomics and the fixed gather order keeps the result identical
/// for any thread count. Shared backward tail of the WA and LSE ops.
template <typename T>
void gatherPinGradient(const NetTopologyView<T>& topo, const T* pinGradX,
                       const T* pinGradY, T* gradX, T* gradY);

}  // namespace dreamplace
