#include "ops/wirelength.h"

#include <cmath>
#include <limits>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"

namespace dreamplace {

// ---------------------------------------------------------------------------
// WaWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
WaWirelengthOp<T>::WaWirelengthOp(const Database& db, Index numNodes,
                                  Options options)
    : num_nodes_(numNodes), options_(options), topo_(db) {
  DP_ASSERT(numNodes >= db.numMovable());
  const NetTopologyView<T> topo = topo_.view();
  net_ignored_.assign(topo.numNets(), 0);
  if (options_.ignoreNetDegree > 0) {
    for (Index e = 0; e < topo.numNets(); ++e) {
      if (topo.netDegree(e) > options_.ignoreNetDegree) {
        net_ignored_[e] = 1;
      }
    }
  }
  pin_x_.resize(topo.numPins());
  pin_y_.resize(topo.numPins());
}

template <typename T>
void WaWirelengthOp<T>::computePinPositions(const NetTopologyView<T>& topo,
                                            std::span<const T> params) {
  const Index num_pins = topo.numPins();
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
  parallelFor("ops/wl/pins", num_pins, 2048, [&](Index p) {
    const Index node = topo.pinNode[p];
    if (node >= 0) {
      pin_x_[p] = x[node] + topo.pinOffsetX[p];
      pin_y_[p] = y[node] + topo.pinOffsetY[p];
    } else {
      pin_x_[p] = topo.pinFixedX[p];
      pin_y_[p] = topo.pinFixedY[p];
    }
  });
}

template <typename T>
void WaWirelengthOp<T>::ensureScratch(Index numPins) {
  static Counter allocs("ops/wirelength/scratch_alloc");
  static Counter reuses("ops/wirelength/scratch_reuse");
  if (static_cast<Index>(pin_grad_x_.size()) == numPins) {
    reuses.add();
    return;
  }
  // The pin count is fixed for the op's lifetime, so this runs once.
  pin_grad_x_.resize(numPins);
  pin_grad_y_.resize(numPins);
  mem_scratch_.set(static_cast<std::int64_t>(
      2u * static_cast<std::size_t>(numPins) * sizeof(T)));
  allocs.add();
}

template <typename T>
double WaWirelengthOp<T>::evaluate(std::span<const T> params,
                                   std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();
  ensureScratch(topo.numPins());
  std::fill(pin_grad_x_.begin(), pin_grad_x_.end(), T(0));
  std::fill(pin_grad_y_.begin(), pin_grad_y_.end(), T(0));
  computePinPositions(topo, params);
  double total = 0.0;
  switch (options_.kernel) {
    case WirelengthKernel::kMerged:
      total = evaluateMerged(topo, grad);
      break;
    case WirelengthKernel::kNetByNet:
      total = evaluateNetByNet(topo, grad);
      break;
    case WirelengthKernel::kAtomic:
      total = evaluateAtomic(topo, grad);
      break;
    default:
      logFatal("unknown wirelength kernel");
  }
  // Shared backward tail: fold the per-pin gradients every kernel wrote
  // into per-node gradients in fixed pin order (deterministic, no
  // atomics).
  gatherPinGradient(topo, pin_grad_x_.data(), pin_grad_y_.data(),
                    grad.data(), grad.data() + num_nodes_);
  return total;
}

// Fused forward+backward, all per-net intermediates in locals (Alg. 2).
template <typename T>
double WaWirelengthOp<T>::evaluateMerged(const NetTopologyView<T>& topo,
                                         std::span<T> grad) {
  (void)grad;  // written by the gather tail in evaluate()
  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);

  // Net blocks are claimed dynamically (the paper's chunk heuristic for
  // heterogeneous net degrees); per-block WL partials are combined in
  // block order, so the total matches the serial net order exactly.
  return parallelReduce(
      "ops/wl/merged", num_nets, 64, 0.0,
      [&](Index block_begin, Index block_end) {
        double partial = 0.0;
        for (Index e = block_begin; e < block_end; ++e) {
          if (net_ignored_[e]) {
            continue;
          }
          const Index begin = topo.netBegin(e);
          const Index end = topo.netEnd(e);
          if (end - begin < 2) {
            continue;
          }
          const T weight = topo.netWeight[e];
          // Process x and y identically.
          for (int dim = 0; dim < 2; ++dim) {
            const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
            T* pin_grad =
                dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

            T pmax = -std::numeric_limits<T>::infinity();
            T pmin = std::numeric_limits<T>::infinity();
            for (Index p = begin; p < end; ++p) {
              pmax = std::max(pmax, pos[p]);
              pmin = std::min(pmin, pos[p]);
            }
            // Kernel-local a+/a- (the CPU analog of keeping them in
            // registers, per Alg. 2: no global-memory intermediates). On
            // a GPU the paper recomputes a instead; with scalar exp()
            // the recompute costs more than this thread-local scratch.
            static thread_local std::vector<T> a_local;
            a_local.resize(2 * static_cast<size_t>(end - begin));
            T* a_plus_buf = a_local.data();
            T* a_minus_buf = a_local.data() + (end - begin);
            T b_plus = 0, b_minus = 0, c_plus = 0, c_minus = 0;
            for (Index p = begin; p < end; ++p) {
              const T s_plus = (pos[p] - pmax) * inv_gamma;
              const T s_minus = (pmin - pos[p]) * inv_gamma;
              const T a_plus = std::exp(s_plus);
              const T a_minus = std::exp(s_minus);
              a_plus_buf[p - begin] = a_plus;
              a_minus_buf[p - begin] = a_minus;
              b_plus += a_plus;
              b_minus += a_minus;
              c_plus += (pos[p] - pmax) * a_plus;
              c_minus += (pos[p] - pmin) * a_minus;
            }
            const T wa_plus = c_plus / b_plus;    // relative to pmax
            const T wa_minus = c_minus / b_minus; // relative to pmin
            const T wl = (wa_plus + pmax) - (wa_minus + pmin);
            partial += static_cast<double>(weight * wl);

            // Backward fused into the same kernel; each pin entry is
            // written by exactly one net, so no synchronization.
            for (Index p = begin; p < end; ++p) {
              const T a_plus = a_plus_buf[p - begin];
              const T a_minus = a_minus_buf[p - begin];
              const T g_plus =
                  a_plus / b_plus *
                  (T(1) + ((pos[p] - pmax) - wa_plus) * inv_gamma);
              const T g_minus =
                  a_minus / b_minus *
                  (T(1) - ((pos[p] - pmin) - wa_minus) * inv_gamma);
              if (topo.pinNode[p] >= 0) {
                pin_grad[p] = weight * (g_plus - g_minus);
              }
            }
          }
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

// Net-level forward and backward as separate passes with all intermediates
// stored per pin / per net (the DATE'18-style baseline in Fig. 10).
template <typename T>
double WaWirelengthOp<T>::evaluateNetByNet(const NetTopologyView<T>& topo,
                                           std::span<T> grad) {
  (void)grad;  // written by the gather tail in evaluate()
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  a_plus_.resize(2 * static_cast<size_t>(num_pins));
  a_minus_.resize(2 * static_cast<size_t>(num_pins));
  b_plus_.resize(2 * static_cast<size_t>(num_nets));
  b_minus_.resize(2 * static_cast<size_t>(num_nets));
  c_plus_.resize(2 * static_cast<size_t>(num_nets));
  c_minus_.resize(2 * static_cast<size_t>(num_nets));
  x_max_.resize(2 * static_cast<size_t>(num_nets));
  x_min_.resize(2 * static_cast<size_t>(num_nets));

  double total = 0.0;
  // Forward pass: store every intermediate.
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* a_plus = a_plus_.data() + dim * num_pins;
    T* a_minus = a_minus_.data() + dim * num_pins;
    T* b_plus = b_plus_.data() + dim * num_nets;
    T* b_minus = b_minus_.data() + dim * num_nets;
    T* c_plus = c_plus_.data() + dim * num_nets;
    T* c_minus = c_minus_.data() + dim * num_nets;
    T* pmax = x_max_.data() + dim * num_nets;
    T* pmin = x_min_.data() + dim * num_nets;

    total += parallelReduce(
        "ops/wl/nbn_fwd", num_nets, 64, 0.0,
        [&](Index block_begin, Index block_end) {
          double partial = 0.0;
          for (Index e = block_begin; e < block_end; ++e) {
            if (net_ignored_[e]) {
              continue;
            }
            const Index begin = topo.netBegin(e);
            const Index end = topo.netEnd(e);
            if (end - begin < 2) {
              continue;
            }
            T mx = -std::numeric_limits<T>::infinity();
            T mn = std::numeric_limits<T>::infinity();
            for (Index p = begin; p < end; ++p) {
              mx = std::max(mx, pos[p]);
              mn = std::min(mn, pos[p]);
            }
            pmax[e] = mx;
            pmin[e] = mn;
            T bp = 0, bm = 0, cp = 0, cm = 0;
            for (Index p = begin; p < end; ++p) {
              const T ap = std::exp((pos[p] - mx) * inv_gamma);
              const T am = std::exp((mn - pos[p]) * inv_gamma);
              a_plus[p] = ap;
              a_minus[p] = am;
              bp += ap;
              bm += am;
              cp += (pos[p] - mx) * ap;
              cm += (pos[p] - mn) * am;
            }
            b_plus[e] = bp;
            b_minus[e] = bm;
            c_plus[e] = cp;
            c_minus[e] = cm;
            partial += static_cast<double>(
                topo.netWeight[e] * ((cp / bp + mx) - (cm / bm + mn)));
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  }

  // Backward pass: re-read the stored intermediates; every pin-gradient
  // entry belongs to exactly one net, so the net loop needs no atomics.
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    const T* a_plus = a_plus_.data() + dim * num_pins;
    const T* a_minus = a_minus_.data() + dim * num_pins;
    const T* b_plus = b_plus_.data() + dim * num_nets;
    const T* b_minus = b_minus_.data() + dim * num_nets;
    const T* c_plus = c_plus_.data() + dim * num_nets;
    const T* c_minus = c_minus_.data() + dim * num_nets;
    const T* pmax = x_max_.data() + dim * num_nets;
    const T* pmin = x_min_.data() + dim * num_nets;
    T* pin_grad = dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

    parallelFor("ops/wl/nbn_bwd", num_nets, 64, [&](Index e) {
      if (net_ignored_[e]) {
        return;
      }
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      if (end - begin < 2) {
        return;
      }
      const T wa_plus = c_plus[e] / b_plus[e];
      const T wa_minus = c_minus[e] / b_minus[e];
      for (Index p = begin; p < end; ++p) {
        if (topo.pinNode[p] < 0) {
          continue;
        }
        const T g_plus =
            a_plus[p] / b_plus[e] *
            (T(1) + ((pos[p] - pmax[e]) - wa_plus) * inv_gamma);
        const T g_minus =
            a_minus[p] / b_minus[e] *
            (T(1) - ((pos[p] - pmin[e]) - wa_minus) * inv_gamma);
        pin_grad[p] = topo.netWeight[e] * (g_plus - g_minus);
      }
    });
  }
  return total;
}

// The fine-grained many-pass strategy (Algorithm 1): max/min, a, b, c, WL,
// and gradient are each a separate kernel pass with every intermediate
// materialized in global memory — the memory-traffic profile Fig. 10
// measures. The GPU original reduces those passes with atomics; here each
// per-net reduction scans the net's contiguous pin range in fixed order
// instead, which preserves the pass structure while making the result
// independent of scheduling (the old vector<atomic<T>> workspace is gone).
template <typename T>
double WaWirelengthOp<T>::evaluateAtomic(const NetTopologyView<T>& topo,
                                         std::span<T> grad) {
  (void)grad;  // written by the gather tail in evaluate()
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);

  a_plus_.resize(num_pins);
  a_minus_.resize(num_pins);
  b_plus_.resize(num_nets);
  b_minus_.resize(num_nets);
  c_plus_.resize(num_nets);
  c_minus_.resize(num_nets);
  x_max_.resize(num_nets);
  x_min_.resize(num_nets);

  double total = 0.0;
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* pin_grad = dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

    // x+/x- kernel.
    parallelFor("ops/wl/atomic_minmax", num_nets, 128, [&](Index e) {
      T mx = -std::numeric_limits<T>::infinity();
      T mn = std::numeric_limits<T>::infinity();
      if (!net_ignored_[e]) {
        for (Index p = topo.netBegin(e); p < topo.netEnd(e); ++p) {
          mx = std::max(mx, pos[p]);
          mn = std::min(mn, pos[p]);
        }
      }
      x_max_[e] = mx;
      x_min_[e] = mn;
    });
    // a+/a- kernel (pin-level parallelism, reads the stored max/min).
    parallelFor("ops/wl/atomic_a", num_pins, 2048, [&](Index p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e]) {
        a_plus_[p] = 0;
        a_minus_[p] = 0;
        return;
      }
      a_plus_[p] = std::exp((pos[p] - x_max_[e]) * inv_gamma);
      a_minus_[p] = std::exp((x_min_[e] - pos[p]) * inv_gamma);
    });
    // b kernel (per-net sum of the stored a terms).
    parallelFor("ops/wl/atomic_b", num_nets, 128, [&](Index e) {
      T bp = 0, bm = 0;
      if (!net_ignored_[e]) {
        for (Index p = topo.netBegin(e); p < topo.netEnd(e); ++p) {
          bp += a_plus_[p];
          bm += a_minus_[p];
        }
      }
      b_plus_[e] = bp;
      b_minus_[e] = bm;
    });
    // c kernel (per-net sum, re-reads positions and the a terms).
    parallelFor("ops/wl/atomic_c", num_nets, 128, [&](Index e) {
      T cp = 0, cm = 0;
      if (!net_ignored_[e]) {
        for (Index p = topo.netBegin(e); p < topo.netEnd(e); ++p) {
          cp += (pos[p] - x_max_[e]) * a_plus_[p];
          cm += (pos[p] - x_min_[e]) * a_minus_[p];
        }
      }
      c_plus_[e] = cp;
      c_minus_[e] = cm;
    });
    // WL kernel + ordered reduction.
    total += parallelReduce(
        "ops/wl/atomic_wl", num_nets, 256, 0.0,
        [&](Index block_begin, Index block_end) {
          double partial = 0.0;
          for (Index e = block_begin; e < block_end; ++e) {
            if (net_ignored_[e] || topo.netDegree(e) < 2) {
              continue;
            }
            const T wl = (c_plus_[e] / b_plus_[e] + x_max_[e]) -
                         (c_minus_[e] / b_minus_[e] + x_min_[e]);
            partial += static_cast<double>(topo.netWeight[e] * wl);
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
    // Gradient kernel over pins (disjoint per-pin writes).
    parallelFor("ops/wl/atomic_grad", num_pins, 2048, [&](Index p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e] || topo.netDegree(e) < 2 || topo.pinNode[p] < 0) {
        return;
      }
      const T wa_plus = c_plus_[e] / b_plus_[e];
      const T wa_minus = c_minus_[e] / b_minus_[e];
      const T g_plus = a_plus_[p] / b_plus_[e] *
                       (T(1) + ((pos[p] - x_max_[e]) - wa_plus) * inv_gamma);
      const T g_minus =
          a_minus_[p] / b_minus_[e] *
          (T(1) - ((pos[p] - x_min_[e]) - wa_minus) * inv_gamma);
      pin_grad[p] = topo.netWeight[e] * (g_plus - g_minus);
    });
  }
  return total;
}

template <typename T>
double WaWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

// ---------------------------------------------------------------------------
// LseWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
LseWirelengthOp<T>::LseWirelengthOp(const Database& db, Index numNodes,
                                    Index ignoreNetDegree)
    : num_nodes_(numNodes), ignore_net_degree_(ignoreNetDegree), topo_(db) {
  pin_x_.resize(db.numPins());
  pin_y_.resize(db.numPins());
  pin_grad_x_.resize(db.numPins());
  pin_grad_y_.resize(db.numPins());
}

template <typename T>
double LseWirelengthOp<T>::evaluate(std::span<const T> params,
                                    std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  std::fill(pin_grad_x_.begin(), pin_grad_x_.end(), T(0));
  std::fill(pin_grad_y_.begin(), pin_grad_y_.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();
  const Index num_pins = topo.numPins();
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
  parallelFor("ops/wl/pins", num_pins, 2048, [&](Index p) {
    const Index node = topo.pinNode[p];
    pin_x_[p] = node >= 0 ? x[node] + topo.pinOffsetX[p] : topo.pinFixedX[p];
    pin_y_[p] = node >= 0 ? y[node] + topo.pinOffsetY[p] : topo.pinFixedY[p];
  });

  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  const T gamma = static_cast<T>(gamma_);
  const double total = parallelReduce(
      "ops/wl/lse", num_nets, 64, 0.0,
      [&](Index block_begin, Index block_end) {
        double partial = 0.0;
        for (Index e = block_begin; e < block_end; ++e) {
          const Index begin = topo.netBegin(e);
          const Index end = topo.netEnd(e);
          const Index degree = end - begin;
          if (degree < 2 ||
              (ignore_net_degree_ > 0 && degree > ignore_net_degree_)) {
            continue;
          }
          const T weight = topo.netWeight[e];
          for (int dim = 0; dim < 2; ++dim) {
            const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
            T* pin_grad =
                dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();
            T pmax = -std::numeric_limits<T>::infinity();
            T pmin = std::numeric_limits<T>::infinity();
            for (Index p = begin; p < end; ++p) {
              pmax = std::max(pmax, pos[p]);
              pmin = std::min(pmin, pos[p]);
            }
            T b_plus = 0, b_minus = 0;
            for (Index p = begin; p < end; ++p) {
              b_plus += std::exp((pos[p] - pmax) * inv_gamma);
              b_minus += std::exp((pmin - pos[p]) * inv_gamma);
            }
            const T wl = gamma * (std::log(b_plus) + std::log(b_minus)) +
                         (pmax - pmin);
            partial += static_cast<double>(weight * wl);
            for (Index p = begin; p < end; ++p) {
              if (topo.pinNode[p] < 0) {
                continue;
              }
              const T a_plus = std::exp((pos[p] - pmax) * inv_gamma);
              const T a_minus = std::exp((pmin - pos[p]) * inv_gamma);
              pin_grad[p] =
                  weight * (a_plus / b_plus - a_minus / b_minus);
            }
          }
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  gatherPinGradient(topo, pin_grad_x_.data(), pin_grad_y_.data(),
                    grad.data(), grad.data() + num_nodes_);
  return total;
}

template <typename T>
double LseWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

#define DP_INSTANTIATE_WL(T)     \
  template class WaWirelengthOp<T>; \
  template class LseWirelengthOp<T>;

DP_INSTANTIATE_WL(float)
DP_INSTANTIATE_WL(double)

#undef DP_INSTANTIATE_WL

}  // namespace dreamplace
