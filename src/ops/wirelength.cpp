#include "ops/wirelength.h"

#include <cmath>
#include <limits>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace dreamplace {
namespace {

// ---------------------------------------------------------------------------
// Lane-parallel per-net primitives. Every helper decomposes the net's
// contiguous pin range [begin, end) into full lanes of V::kWidth plus a
// scalar/padded tail, so an element's value depends only on its offset
// within the net — never on the thread count (docs/SIMD.md). Stores are
// exact at the tail: a full-lane store past `end` would cross into the
// next net's pins, which another worker may own.
// ---------------------------------------------------------------------------

/// min/max over pins [begin, end). Lane mins/maxes fold in ascending lane
/// order; min/max are exactly associative, so the result is bit-equal to
/// the serial scan.
template <typename V, typename T = typename V::Elem>
inline void netMinMax(const T* pos, Index begin, Index end, T& mnOut,
                      T& mxOut) {
  constexpr Index kW = V::kWidth;
  T mn = std::numeric_limits<T>::infinity();
  T mx = -std::numeric_limits<T>::infinity();
  Index p = begin;
  if (end - begin >= kW) {
    V vmn = V::broadcast(mn);
    V vmx = V::broadcast(mx);
    for (; p + kW <= end; p += kW) {
      const V v = V::load(pos + p);
      vmn = min(vmn, v);
      vmx = max(vmx, v);
    }
    mn = hmin(vmn);
    mx = hmax(vmx);
  }
  for (; p < end; ++p) {
    mn = std::min(mn, pos[p]);
    mx = std::max(mx, pos[p]);
  }
  mnOut = mn;
  mxOut = mx;
}

/// WA forward for one net: aPlus[i] = exp((pos-pmax)/gamma),
/// aMinus[i] = exp((pmin-pos)/gamma) at local index i = p - begin, and
/// the b/c sums over them. Lane partials fold in ascending lane order;
/// the tail runs through the same vexp on a padded lane so tail elements
/// get identical values to full-lane ones.
template <typename V, typename T = typename V::Elem>
inline void waNetForward(const T* pos, Index begin, Index end, T pmax, T pmin,
                         T ig, T* aPlus, T* aMinus, T& bpOut, T& bmOut,
                         T& cpOut, T& cmOut) {
  constexpr Index kW = V::kWidth;
  const V vmax = V::broadcast(pmax);
  const V vmin = V::broadcast(pmin);
  const V vig = V::broadcast(ig);
  V bp = V::zero(), bm = V::zero(), cp = V::zero(), cm = V::zero();
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    const V v = V::load(pos + p);
    const V dp = v - vmax;  // <= 0
    const V dm = vmin - v;  // <= 0
    const V ap = vexp(dp * vig);
    const V am = vexp(dm * vig);
    ap.store(aPlus + (p - begin));
    am.store(aMinus + (p - begin));
    bp = bp + ap;
    bm = bm + am;
    cp = fma(dp, ap, cp);
    cm = cm - dm * am;  // (pos - pmin) * am
  }
  T bps = hsum(bp), bms = hsum(bm), cps = hsum(cp), cms = hsum(cm);
  if (p < end) {
    const Index n = end - p;
    T sp[kW] = {}, sm[kW] = {};
    for (Index i = 0; i < n; ++i) {
      sp[i] = (pos[p + i] - pmax) * ig;
      sm[i] = (pmin - pos[p + i]) * ig;
    }
    const V ap = vexp(V::load(sp));
    const V am = vexp(V::load(sm));
    for (Index i = 0; i < n; ++i) {
      aPlus[p - begin + i] = ap[i];
      aMinus[p - begin + i] = am[i];
      bps += ap[i];
      bms += am[i];
      cps += (pos[p + i] - pmax) * ap[i];
      cms += (pos[p + i] - pmin) * am[i];
    }
  }
  bpOut = bps;
  bmOut = bms;
  cpOut = cps;
  cmOut = cms;
}

/// The store-only half of waNetForward (the kAtomic a-kernel): exp terms
/// only, no sums.
template <typename V, typename T = typename V::Elem>
inline void waNetExp(const T* pos, Index begin, Index end, T pmax, T pmin,
                     T ig, T* aPlus, T* aMinus) {
  constexpr Index kW = V::kWidth;
  const V vmax = V::broadcast(pmax);
  const V vmin = V::broadcast(pmin);
  const V vig = V::broadcast(ig);
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    const V v = V::load(pos + p);
    vexp((v - vmax) * vig).store(aPlus + (p - begin));
    vexp((vmin - v) * vig).store(aMinus + (p - begin));
  }
  if (p < end) {
    const Index n = end - p;
    T sp[kW] = {}, sm[kW] = {};
    for (Index i = 0; i < n; ++i) {
      sp[i] = (pos[p + i] - pmax) * ig;
      sm[i] = (pmin - pos[p + i]) * ig;
    }
    const V ap = vexp(V::load(sp));
    const V am = vexp(V::load(sm));
    for (Index i = 0; i < n; ++i) {
      aPlus[p - begin + i] = ap[i];
      aMinus[p - begin + i] = am[i];
    }
  }
}

/// Pairwise sums over [begin, end) of two parallel arrays (the kAtomic
/// b-kernel).
template <typename V, typename T = typename V::Elem>
inline void sumPairRange(const T* a, const T* b, Index begin, Index end,
                         T& saOut, T& sbOut) {
  constexpr Index kW = V::kWidth;
  V va = V::zero(), vb = V::zero();
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    va = va + V::load(a + p);
    vb = vb + V::load(b + p);
  }
  T sa = hsum(va), sb = hsum(vb);
  for (; p < end; ++p) {
    sa += a[p];
    sb += b[p];
  }
  saOut = sa;
  sbOut = sb;
}

/// c± = sum (pos - pmax) * a+ and sum (pos - pmin) * a- over the net
/// (the kAtomic c-kernel).
template <typename V, typename T = typename V::Elem>
inline void waNetC(const T* pos, const T* aPlus, const T* aMinus, Index begin,
                   Index end, T pmax, T pmin, T& cpOut, T& cmOut) {
  constexpr Index kW = V::kWidth;
  const V vmax = V::broadcast(pmax);
  const V vmin = V::broadcast(pmin);
  V cp = V::zero(), cm = V::zero();
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    const V v = V::load(pos + p);
    cp = fma(v - vmax, V::load(aPlus + p), cp);
    cm = fma(v - vmin, V::load(aMinus + p), cm);
  }
  T cps = hsum(cp), cms = hsum(cm);
  for (; p < end; ++p) {
    cps += (pos[p] - pmax) * aPlus[p];
    cms += (pos[p] - pmin) * aMinus[p];
  }
  cpOut = cps;
  cmOut = cms;
}

/// WA backward for one net: pinGrad[p] = weight * (g+ - g-) for every pin
/// in [begin, end), a± at local index p - begin. Pin-gradient entries of
/// fixed pins are written too — gatherPinGradient only ever reads pins of
/// movable nodes (node->pin CSR), so the stores can be unconditional;
/// the tail stays exact so the writes never leave this net's range.
template <typename V, typename T = typename V::Elem>
inline void waNetBackward(const T* pos, Index begin, Index end, T pmax,
                          T pmin, T bp, T bm, T wap, T wam, T ig, T weight,
                          const T* aPlus, const T* aMinus, T* pinGrad) {
  constexpr Index kW = V::kWidth;
  const V vmax = V::broadcast(pmax);
  const V vmin = V::broadcast(pmin);
  const V vbp = V::broadcast(bp);
  const V vbm = V::broadcast(bm);
  const V vwap = V::broadcast(wap);
  const V vwam = V::broadcast(wam);
  const V vig = V::broadcast(ig);
  const V vw = V::broadcast(weight);
  const V one = V::broadcast(T(1));
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    const V v = V::load(pos + p);
    const V ap = V::load(aPlus + (p - begin));
    const V am = V::load(aMinus + (p - begin));
    const V gp = ap / vbp * (one + ((v - vmax) - vwap) * vig);
    const V gm = am / vbm * (one - ((v - vmin) - vwam) * vig);
    (vw * (gp - gm)).store(pinGrad + p);
  }
  for (; p < end; ++p) {
    const T ap = aPlus[p - begin];
    const T am = aMinus[p - begin];
    const T gp = ap / bp * (T(1) + ((pos[p] - pmax) - wap) * ig);
    const T gm = am / bm * (T(1) - ((pos[p] - pmin) - wam) * ig);
    pinGrad[p] = weight * (gp - gm);
  }
}

/// LSE backward for one net: pinGrad[p] = weight * (a+/b+ - a-/b-).
template <typename V, typename T = typename V::Elem>
inline void lseNetBackward(Index begin, Index end, T bp, T bm, T weight,
                           const T* aPlus, const T* aMinus, T* pinGrad) {
  constexpr Index kW = V::kWidth;
  const V vbp = V::broadcast(bp);
  const V vbm = V::broadcast(bm);
  const V vw = V::broadcast(weight);
  Index p = begin;
  for (; p + kW <= end; p += kW) {
    const V ap = V::load(aPlus + (p - begin));
    const V am = V::load(aMinus + (p - begin));
    (vw * (ap / vbp - am / vbm)).store(pinGrad + p);
  }
  for (; p < end; ++p) {
    const T ap = aPlus[p - begin];
    const T am = aMinus[p - begin];
    pinGrad[p] = weight * (ap / bp - am / bm);
  }
}

/// One vexp vector call per lane group per sign per dimension.
inline std::int64_t vexpCallsPerEvaluate(std::int64_t laneGroups) {
  return 4 * laneGroups;
}

/// Publishes the lane width the evaluate actually ran with
/// (simd/width = N for the NativeVec path, 1 for ScalarVec). store, not
/// add: the width is a fact, not an event count.
inline void publishSimdWidth(int width) {
  currentCounterRegistry().counter("simd/width").store(width);
}

}  // namespace

// ---------------------------------------------------------------------------
// PinPositionTables
// ---------------------------------------------------------------------------

template <typename T>
void PinPositionTables<T>::build(const NetTopologyView<T>& topo) {
  const Index num_pins = topo.numPins();
  gatherNode.resize(num_pins);
  sel.resize(num_pins);
  baseX.resize(num_pins);
  baseY.resize(num_pins);
  for (Index p = 0; p < num_pins; ++p) {
    const Index node = topo.pinNode[p];
    gatherNode[p] = node >= 0 ? node : 0;
    sel[p] = node >= 0 ? T(1) : T(0);
    baseX[p] = node >= 0 ? topo.pinOffsetX[p] : topo.pinFixedX[p];
    baseY[p] = node >= 0 ? topo.pinOffsetY[p] : topo.pinFixedY[p];
  }
}

template <typename T>
template <typename V>
void PinPositionTables<T>::compute(const T* x, const T* y, T* pinX,
                                   T* pinY) const {
  const Index num_pins = static_cast<Index>(sel.size());
  constexpr Index kW = V::kWidth;
  // The node-coordinate gather stays scalar (no portable gather in the
  // vector extensions); the select and add are lane ops. Lane and scalar
  // tails run the identical op sequence, so results are bit-equal to the
  // branchy pre-SIMD loop.
  parallelForBlocked("ops/wl/pins", num_pins, 2048,
                     [&](Index lo, Index hi, int) {
    Index p = lo;
    for (; p + kW <= hi; p += kW) {
      T bx[kW], by[kW];
      for (Index i = 0; i < kW; ++i) {
        const Index node = gatherNode[p + i];
        bx[i] = x[node];
        by[i] = y[node];
      }
      const V s = V::load(sel.data() + p);
      fma(s, V::load(bx), V::load(baseX.data() + p)).store(pinX + p);
      fma(s, V::load(by), V::load(baseY.data() + p)).store(pinY + p);
    }
    for (; p < hi; ++p) {
      const Index node = gatherNode[p];
      pinX[p] = sel[p] * x[node] + baseX[p];
      pinY[p] = sel[p] * y[node] + baseY[p];
    }
  });
}

// ---------------------------------------------------------------------------
// WaWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
WaWirelengthOp<T>::WaWirelengthOp(const Database& db, Index numNodes,
                                  Options options)
    : num_nodes_(numNodes), options_(options), topo_(db) {
  DP_ASSERT(numNodes >= db.numMovable());
  const NetTopologyView<T> topo = topo_.view();
  net_ignored_.assign(topo.numNets(), 0);
  if (options_.ignoreNetDegree > 0) {
    for (Index e = 0; e < topo.numNets(); ++e) {
      if (topo.netDegree(e) > options_.ignoreNetDegree) {
        net_ignored_[e] = 1;
      }
    }
  }
  constexpr Index kW = simd::kNativeWidth<T>;
  for (Index e = 0; e < topo.numNets(); ++e) {
    const Index degree = topo.netDegree(e);
    if (net_ignored_[e] || degree < 2) {
      continue;
    }
    max_active_degree_ = std::max(max_active_degree_, degree);
    vexp_groups_native_ += (degree + kW - 1) / kW;
    vexp_groups_scalar_ += degree;
  }
  // Merged-kernel block geometry: blocks are the aligned kMergedGrain
  // chunks parallelReduceBlocked hands out, so both the scratch size and
  // the vexp call counts are fixed at construction. Ignored nets keep
  // their arg slots (zero-filled at evaluate), so block pin strips stay
  // contiguous.
  for (Index b0 = 0; b0 < topo.numNets(); b0 += kMergedGrain) {
    const Index b1 = std::min(topo.numNets(), b0 + kMergedGrain);
    const Index block_pins = topo.netEnd(b1 - 1) - topo.netBegin(b0);
    merged_block_pins_ = std::max(merged_block_pins_, block_pins);
    vexp_calls_merged_native_ += 2 * ((2 * block_pins + kW - 1) / kW);
    vexp_calls_merged_scalar_ +=
        2 * (2 * static_cast<std::int64_t>(block_pins));
  }
  pin_tables_.build(topo);
  pin_x_.resize(topo.numPins());
  pin_y_.resize(topo.numPins());
}

template <typename T>
void WaWirelengthOp<T>::ensureScratch(Index numPins) {
  static Counter allocs("ops/wirelength/scratch_alloc");
  static Counter reuses("ops/wirelength/scratch_reuse");
  if (static_cast<Index>(pin_grad_x_.size()) == numPins) {
    reuses.add();
    return;
  }
  // The pin count is fixed for the op's lifetime, so this runs once.
  pin_grad_x_.resize(numPins);
  pin_grad_y_.resize(numPins);
  mem_scratch_.set(static_cast<std::int64_t>(
      2u * static_cast<std::size_t>(numPins) * sizeof(T)));
  allocs.add();
}

template <typename T>
void WaWirelengthOp<T>::ensureKernelScratch(Index numPins, Index numNets) {
  static Counter allocs("ops/wirelength/kernel_ws_alloc");
  static Counter reuses("ops/wirelength/kernel_ws_reuse");
  // Sized once to the net-by-net footprint (2x: per-dimension halves),
  // which covers the atomic strategy's 1x need, so switching kernel
  // strategies on one op never reallocates.
  const std::size_t pins_need = 2 * static_cast<std::size_t>(numPins);
  const std::size_t nets_need = 2 * static_cast<std::size_t>(numNets);
  if (a_plus_.size() == pins_need && b_plus_.size() == nets_need) {
    reuses.add();
    return;
  }
  a_plus_.resize(pins_need);
  a_minus_.resize(pins_need);
  b_plus_.resize(nets_need);
  b_minus_.resize(nets_need);
  c_plus_.resize(nets_need);
  c_minus_.resize(nets_need);
  x_max_.resize(nets_need);
  x_min_.resize(nets_need);
  mem_kernel_ws_.set(static_cast<std::int64_t>(
      (2 * pins_need + 6 * nets_need) * sizeof(T)));
  allocs.add();
}

template <typename T>
void WaWirelengthOp<T>::ensureMergedScratch(int workers) {
  static Counter allocs("ops/wirelength/merged_ws_alloc");
  static Counter reuses("ops/wirelength/merged_ws_reuse");
  // arg+/arg-/a+/a- strips for the widest block, then per-net min/max.
  merged_row_ = 4 * static_cast<std::size_t>(merged_block_pins_) +
                2 * static_cast<std::size_t>(kMergedGrain);
  const std::size_t need = merged_row_ * static_cast<std::size_t>(workers);
  if (merged_scratch_.size() == need) {
    reuses.add();
    return;
  }
  // Re-sized only if the pool size changes between evaluates.
  merged_scratch_.resize(need);
  mem_merged_.set(static_cast<std::int64_t>(need * sizeof(T)));
  allocs.add();
}

template <typename T>
double WaWirelengthOp<T>::evaluate(std::span<const T> params,
                                   std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  static Counter vexp_calls("simd/vexp_calls");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();
  ensureScratch(topo.numPins());
  std::fill(pin_grad_x_.begin(), pin_grad_x_.end(), T(0));
  std::fill(pin_grad_y_.begin(), pin_grad_y_.end(), T(0));

  const bool use_simd = options_.simd && simd::kEnabled;
  using NV = simd::NativeVec<T>;
  using SV = simd::ScalarVec<T, 1>;
  publishSimdWidth(use_simd ? simd::kNativeWidth<T> : 1);
  if (options_.kernel == WirelengthKernel::kMerged) {
    vexp_calls.add(use_simd ? vexp_calls_merged_native_
                            : vexp_calls_merged_scalar_);
  } else {
    vexp_calls.add(vexpCallsPerEvaluate(use_simd ? vexp_groups_native_
                                                 : vexp_groups_scalar_));
  }

  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
  if (use_simd) {
    pin_tables_.template compute<NV>(x, y, pin_x_.data(), pin_y_.data());
  } else {
    pin_tables_.template compute<SV>(x, y, pin_x_.data(), pin_y_.data());
  }

  double total = 0.0;
  switch (options_.kernel) {
    case WirelengthKernel::kMerged:
      total = use_simd ? evaluateMerged<NV>(topo) : evaluateMerged<SV>(topo);
      break;
    case WirelengthKernel::kNetByNet:
      total = use_simd ? evaluateNetByNet<NV>(topo)
                       : evaluateNetByNet<SV>(topo);
      break;
    case WirelengthKernel::kAtomic:
      total = use_simd ? evaluateAtomic<NV>(topo) : evaluateAtomic<SV>(topo);
      break;
    default:
      logFatal("unknown wirelength kernel");
  }
  // Shared backward tail: fold the per-pin gradients every kernel wrote
  // into per-node gradients in fixed pin order (deterministic, no
  // atomics).
  gatherPinGradient(topo, pin_grad_x_.data(), pin_grad_y_.data(),
                    grad.data(), grad.data() + num_nodes_);
  return total;
}

// Fused forward+backward, all per-net intermediates in worker-private
// scratch (Alg. 2), restructured around the block's exp arguments:
//
//   pass 1  per net: min/max, then arg+ = (pos-max)/gamma and
//           arg- = (min-pos)/gamma into the block's contiguous strips,
//   pass 2  ONE vexpArray over the block's 2*pins arguments,
//   pass 3  per net: fold b/c sums in argument space, accumulate WL,
//           write the pin gradients.
//
// Batching the exp is what keeps the vector lanes full: most nets have
// 2-5 pins (fewer than a lane), so a per-net vexp pads most of its lanes
// with dead elements, while the block sweep wastes at most one tail lane
// per 2*blockPins elements. Working in argument space (everything is
// pre-divided by gamma) also drops the per-lane multiplies the
// position-space form needed in the c sums and the backward.
//
// WL per dim in argument space: with k± the a±-weighted mean of arg±
// (both <= 0), WL = (max - min) + gamma*(k+ + k-), and the pin gradient
// is a±/b± * (1 - k± + arg±), combined with the usual +/- signs.
//
// Net blocks are claimed dynamically (the paper's chunk heuristic for
// heterogeneous net degrees); block boundaries are the aligned
// kMergedGrain chunks, so strip layout and lane decomposition depend
// only on the netlist, never the thread count, and per-block WL
// partials combine in block order — the total matches the serial net
// order exactly.
template <typename T>
template <typename V>
double WaWirelengthOp<T>::evaluateMerged(const NetTopologyView<T>& topo) {
  constexpr Index kW = V::kWidth;
  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  const T gamma = static_cast<T>(gamma_);
  ensureMergedScratch(currentThreadPool().threads());

  return parallelReduceBlocked(
      "ops/wl/merged", num_nets, kMergedGrain, 0.0,
      [&](Index block_begin, Index block_end, int worker) {
        T* row = merged_scratch_.data() +
                 merged_row_ * static_cast<std::size_t>(worker);
        const Index pins_begin = topo.netBegin(block_begin);
        const Index pins = topo.netEnd(block_end - 1) - pins_begin;
        // Strips are packed by this block's pin count; the per-net
        // min/max slots sit at the row's fixed tail.
        T* arg_plus = row;
        T* arg_minus = row + pins;
        T* a_plus = row + 2 * static_cast<std::size_t>(pins);
        T* a_minus = row + 3 * static_cast<std::size_t>(pins);
        T* mn_net = row + 4 * static_cast<std::size_t>(merged_block_pins_);
        T* mx_net = mn_net + kMergedGrain;
        double partial = 0.0;
        for (int dim = 0; dim < 2; ++dim) {
          const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
          T* pin_grad = dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

          // Pass 1: min/max and exp arguments.
          for (Index e = block_begin; e < block_end; ++e) {
            const Index begin = topo.netBegin(e);
            const Index end = topo.netEnd(e);
            const Index degree = end - begin;
            const Index lo = begin - pins_begin;
            if (net_ignored_[e] || degree < 2) {
              // Keep the strip well-defined: pass 2 exps every slot, and
              // stale bytes could be subnormal (a many-cycle stall per
              // touch on x86) or NaN.
              for (Index i = 0; i < degree; ++i) {
                arg_plus[lo + i] = T(0);
                arg_minus[lo + i] = T(0);
              }
              continue;
            }
            T mn, mx;
            netMinMax<V>(pos, begin, end, mn, mx);
            if (degree >= kW) {
              const V vmax = V::broadcast(mx);
              const V vmin = V::broadcast(mn);
              const V vig = V::broadcast(inv_gamma);
              Index p = begin;
              for (; p + kW <= end; p += kW) {
                const V v = V::load(pos + p);
                ((v - vmax) * vig).store(arg_plus + (p - pins_begin));
                ((vmin - v) * vig).store(arg_minus + (p - pins_begin));
              }
              for (; p < end; ++p) {
                arg_plus[p - pins_begin] = (pos[p] - mx) * inv_gamma;
                arg_minus[p - pins_begin] = (mn - pos[p]) * inv_gamma;
              }
            } else {
              for (Index i = 0; i < degree; ++i) {
                arg_plus[lo + i] = (pos[begin + i] - mx) * inv_gamma;
                arg_minus[lo + i] = (mn - pos[begin + i]) * inv_gamma;
              }
            }
            mn_net[e - block_begin] = mn;
            mx_net[e - block_begin] = mx;
          }

          // Pass 2: the block's whole exp workload in one lane sweep
          // (arg+ and arg- strips are adjacent, so this is one range).
          simd::vexpArray<V>(row, a_plus, 2 * pins);

          // Pass 3: fold b/c in argument space, accumulate WL, backward.
          for (Index e = block_begin; e < block_end; ++e) {
            const Index begin = topo.netBegin(e);
            const Index end = topo.netEnd(e);
            const Index degree = end - begin;
            if (net_ignored_[e] || degree < 2) {
              continue;
            }
            const Index lo = begin - pins_begin;
            const T weight = topo.netWeight[e];
            T bp, bm, cp, cm;
            if (degree >= kW) {
              V vbp = V::load(a_plus + lo);
              V vbm = V::load(a_minus + lo);
              V vcp = V::load(arg_plus + lo) * vbp;
              V vcm = V::load(arg_minus + lo) * vbm;
              Index i = kW;
              for (; i + kW <= degree; i += kW) {
                const V ap = V::load(a_plus + lo + i);
                const V am = V::load(a_minus + lo + i);
                vbp = vbp + ap;
                vbm = vbm + am;
                vcp = fma(V::load(arg_plus + lo + i), ap, vcp);
                vcm = fma(V::load(arg_minus + lo + i), am, vcm);
              }
              bp = hsum(vbp);
              bm = hsum(vbm);
              cp = hsum(vcp);
              cm = hsum(vcm);
              for (; i < degree; ++i) {
                bp += a_plus[lo + i];
                bm += a_minus[lo + i];
                cp += arg_plus[lo + i] * a_plus[lo + i];
                cm += arg_minus[lo + i] * a_minus[lo + i];
              }
            } else {
              bp = a_plus[lo];
              bm = a_minus[lo];
              cp = arg_plus[lo] * a_plus[lo];
              cm = arg_minus[lo] * a_minus[lo];
              for (Index i = 1; i < degree; ++i) {
                bp += a_plus[lo + i];
                bm += a_minus[lo + i];
                cp += arg_plus[lo + i] * a_plus[lo + i];
                cm += arg_minus[lo + i] * a_minus[lo + i];
              }
            }
            const T k_plus = cp / bp;    // arg-space mean, <= 0
            const T k_minus = cm / bm;   // arg-space mean, <= 0
            const T span = mx_net[e - block_begin] - mn_net[e - block_begin];
            partial += static_cast<double>(
                weight * (span + gamma * (k_plus + k_minus)));

            // Backward fused into the same kernel; each pin entry is
            // written by exactly one net, so no synchronization.
            const T inv_bp = T(1) / bp;
            const T inv_bm = T(1) / bm;
            if (degree >= kW) {
              const V vibp = V::broadcast(inv_bp);
              const V vibm = V::broadcast(inv_bm);
              const V vkp = V::broadcast(T(1) - k_plus);
              const V vkm = V::broadcast(T(1) - k_minus);
              const V vw = V::broadcast(weight);
              Index i = 0;
              for (; i + kW <= degree; i += kW) {
                const V gp = V::load(a_plus + lo + i) * vibp *
                             (vkp + V::load(arg_plus + lo + i));
                const V gm = V::load(a_minus + lo + i) * vibm *
                             (vkm + V::load(arg_minus + lo + i));
                (vw * (gp - gm)).store(pin_grad + begin + i);
              }
              for (; i < degree; ++i) {
                const T gp =
                    a_plus[lo + i] * inv_bp * (T(1) - k_plus + arg_plus[lo + i]);
                const T gm = a_minus[lo + i] * inv_bm *
                             (T(1) - k_minus + arg_minus[lo + i]);
                pin_grad[begin + i] = weight * (gp - gm);
              }
            } else {
              for (Index i = 0; i < degree; ++i) {
                const T gp =
                    a_plus[lo + i] * inv_bp * (T(1) - k_plus + arg_plus[lo + i]);
                const T gm = a_minus[lo + i] * inv_bm *
                             (T(1) - k_minus + arg_minus[lo + i]);
                pin_grad[begin + i] = weight * (gp - gm);
              }
            }
          }
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

// Net-level forward and backward as separate passes with all intermediates
// stored per pin / per net (the DATE'18-style baseline in Fig. 10).
template <typename T>
template <typename V>
double WaWirelengthOp<T>::evaluateNetByNet(const NetTopologyView<T>& topo) {
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  ensureKernelScratch(num_pins, num_nets);

  double total = 0.0;
  // Forward pass: store every intermediate.
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* a_plus = a_plus_.data() + dim * num_pins;
    T* a_minus = a_minus_.data() + dim * num_pins;
    T* b_plus = b_plus_.data() + dim * num_nets;
    T* b_minus = b_minus_.data() + dim * num_nets;
    T* c_plus = c_plus_.data() + dim * num_nets;
    T* c_minus = c_minus_.data() + dim * num_nets;
    T* pmax = x_max_.data() + dim * num_nets;
    T* pmin = x_min_.data() + dim * num_nets;

    total += parallelReduce(
        "ops/wl/nbn_fwd", num_nets, 64, 0.0,
        [&](Index block_begin, Index block_end) {
          double partial = 0.0;
          for (Index e = block_begin; e < block_end; ++e) {
            if (net_ignored_[e]) {
              continue;
            }
            const Index begin = topo.netBegin(e);
            const Index end = topo.netEnd(e);
            if (end - begin < 2) {
              continue;
            }
            T mn, mx;
            netMinMax<V>(pos, begin, end, mn, mx);
            pmax[e] = mx;
            pmin[e] = mn;
            T bp, bm, cp, cm;
            waNetForward<V>(pos, begin, end, mx, mn, inv_gamma,
                            a_plus + begin, a_minus + begin, bp, bm, cp, cm);
            b_plus[e] = bp;
            b_minus[e] = bm;
            c_plus[e] = cp;
            c_minus[e] = cm;
            partial += static_cast<double>(
                topo.netWeight[e] * ((cp / bp + mx) - (cm / bm + mn)));
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  }

  // Backward pass: re-read the stored intermediates; every pin-gradient
  // entry belongs to exactly one net, so the net loop needs no atomics.
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    const T* a_plus = a_plus_.data() + dim * num_pins;
    const T* a_minus = a_minus_.data() + dim * num_pins;
    const T* b_plus = b_plus_.data() + dim * num_nets;
    const T* b_minus = b_minus_.data() + dim * num_nets;
    const T* c_plus = c_plus_.data() + dim * num_nets;
    const T* c_minus = c_minus_.data() + dim * num_nets;
    const T* pmax = x_max_.data() + dim * num_nets;
    const T* pmin = x_min_.data() + dim * num_nets;
    T* pin_grad = dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

    parallelFor("ops/wl/nbn_bwd", num_nets, 64, [&](Index e) {
      if (net_ignored_[e]) {
        return;
      }
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      if (end - begin < 2) {
        return;
      }
      waNetBackward<V>(pos, begin, end, pmax[e], pmin[e], b_plus[e],
                       b_minus[e], c_plus[e] / b_plus[e],
                       c_minus[e] / b_minus[e], inv_gamma, topo.netWeight[e],
                       a_plus + begin, a_minus + begin, pin_grad);
    });
  }
  return total;
}

// The fine-grained many-pass strategy (Algorithm 1): max/min, a, b, c, WL,
// and gradient are each a separate kernel pass with every intermediate
// materialized in global memory — the memory-traffic profile Fig. 10
// measures. The GPU original reduces those passes with atomics; here each
// per-net reduction scans the net's contiguous pin range in fixed order
// instead, which preserves the pass structure while making the result
// independent of scheduling. The a and gradient passes iterate net blocks
// (rather than the GPU's pin threads) so each net's pin strip feeds vexp
// in full lanes.
template <typename T>
template <typename V>
double WaWirelengthOp<T>::evaluateAtomic(const NetTopologyView<T>& topo) {
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  ensureKernelScratch(num_pins, num_nets);

  double total = 0.0;
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* pin_grad = dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();

    // x+/x- kernel.
    parallelFor("ops/wl/atomic_minmax", num_nets, 128, [&](Index e) {
      T mx = -std::numeric_limits<T>::infinity();
      T mn = std::numeric_limits<T>::infinity();
      if (!net_ignored_[e]) {
        netMinMax<V>(pos, topo.netBegin(e), topo.netEnd(e), mn, mx);
      }
      x_max_[e] = mx;
      x_min_[e] = mn;
    });
    // a+/a- kernel (reads the stored max/min). Inactive nets store zeros
    // so the downstream sum kernels read well-defined values.
    parallelFor("ops/wl/atomic_a", num_nets, 128, [&](Index e) {
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      if (net_ignored_[e] || end - begin < 2) {
        for (Index p = begin; p < end; ++p) {
          a_plus_[p] = 0;
          a_minus_[p] = 0;
        }
        return;
      }
      waNetExp<V>(pos, begin, end, x_max_[e], x_min_[e], inv_gamma,
                  a_plus_.data() + begin, a_minus_.data() + begin);
    });
    // b kernel (per-net sum of the stored a terms).
    parallelFor("ops/wl/atomic_b", num_nets, 128, [&](Index e) {
      sumPairRange<V>(a_plus_.data(), a_minus_.data(), topo.netBegin(e),
                      topo.netEnd(e), b_plus_[e], b_minus_[e]);
    });
    // c kernel (per-net sum, re-reads positions and the a terms).
    parallelFor("ops/wl/atomic_c", num_nets, 128, [&](Index e) {
      if (net_ignored_[e]) {
        c_plus_[e] = 0;
        c_minus_[e] = 0;
        return;
      }
      waNetC<V>(pos, a_plus_.data(), a_minus_.data(), topo.netBegin(e),
                topo.netEnd(e), x_max_[e], x_min_[e], c_plus_[e],
                c_minus_[e]);
    });
    // WL kernel + ordered reduction.
    total += parallelReduce(
        "ops/wl/atomic_wl", num_nets, 256, 0.0,
        [&](Index block_begin, Index block_end) {
          double partial = 0.0;
          for (Index e = block_begin; e < block_end; ++e) {
            if (net_ignored_[e] || topo.netDegree(e) < 2) {
              continue;
            }
            const T wl = (c_plus_[e] / b_plus_[e] + x_max_[e]) -
                         (c_minus_[e] / b_minus_[e] + x_min_[e]);
            partial += static_cast<double>(topo.netWeight[e] * wl);
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
    // Gradient kernel (disjoint per-pin writes).
    parallelFor("ops/wl/atomic_grad", num_nets, 128, [&](Index e) {
      if (net_ignored_[e] || topo.netDegree(e) < 2) {
        return;
      }
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      waNetBackward<V>(pos, begin, end, x_max_[e], x_min_[e], b_plus_[e],
                       b_minus_[e], c_plus_[e] / b_plus_[e],
                       c_minus_[e] / b_minus_[e], inv_gamma,
                       topo.netWeight[e], a_plus_.data() + begin,
                       a_minus_.data() + begin, pin_grad);
    });
  }
  return total;
}

template <typename T>
double WaWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

// ---------------------------------------------------------------------------
// LseWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
LseWirelengthOp<T>::LseWirelengthOp(const Database& db, Index numNodes,
                                    Index ignoreNetDegree, bool simd)
    : num_nodes_(numNodes),
      ignore_net_degree_(ignoreNetDegree),
      simd_(simd),
      topo_(db) {
  const NetTopologyView<T> topo = topo_.view();
  constexpr Index kW = simd::kNativeWidth<T>;
  for (Index e = 0; e < topo.numNets(); ++e) {
    const Index degree = topo.netDegree(e);
    if (degree < 2 ||
        (ignore_net_degree_ > 0 && degree > ignore_net_degree_)) {
      continue;
    }
    max_active_degree_ = std::max(max_active_degree_, degree);
    vexp_groups_native_ += (degree + kW - 1) / kW;
    vexp_groups_scalar_ += degree;
  }
  pin_tables_.build(topo);
  pin_x_.resize(db.numPins());
  pin_y_.resize(db.numPins());
  pin_grad_x_.resize(db.numPins());
  pin_grad_y_.resize(db.numPins());
}

template <typename T>
void LseWirelengthOp<T>::ensureScratch(int workers) {
  static Counter allocs("ops/wirelength/lse_ws_alloc");
  static Counter reuses("ops/wirelength/lse_ws_reuse");
  lse_row_ = 2 * static_cast<std::size_t>(max_active_degree_);
  const std::size_t need = lse_row_ * static_cast<std::size_t>(workers);
  if (lse_scratch_.size() == need) {
    reuses.add();
    return;
  }
  lse_scratch_.resize(need);
  mem_lse_.set(static_cast<std::int64_t>(need * sizeof(T)));
  allocs.add();
}

template <typename T>
double LseWirelengthOp<T>::evaluate(std::span<const T> params,
                                    std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  static Counter vexp_calls("simd/vexp_calls");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  std::fill(pin_grad_x_.begin(), pin_grad_x_.end(), T(0));
  std::fill(pin_grad_y_.begin(), pin_grad_y_.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();

  const bool use_simd = simd_ && simd::kEnabled;
  using NV = simd::NativeVec<T>;
  using SV = simd::ScalarVec<T, 1>;
  publishSimdWidth(use_simd ? simd::kNativeWidth<T> : 1);
  vexp_calls.add(vexpCallsPerEvaluate(use_simd ? vexp_groups_native_
                                               : vexp_groups_scalar_));

  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
  double total;
  if (use_simd) {
    pin_tables_.template compute<NV>(x, y, pin_x_.data(), pin_y_.data());
    total = evaluateImpl<NV>(topo);
  } else {
    pin_tables_.template compute<SV>(x, y, pin_x_.data(), pin_y_.data());
    total = evaluateImpl<SV>(topo);
  }
  gatherPinGradient(topo, pin_grad_x_.data(), pin_grad_y_.data(),
                    grad.data(), grad.data() + num_nodes_);
  return total;
}

template <typename T>
template <typename V>
double LseWirelengthOp<T>::evaluateImpl(const NetTopologyView<T>& topo) {
  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  const T gamma = static_cast<T>(gamma_);
  ensureScratch(currentThreadPool().threads());
  return parallelReduceBlocked(
      "ops/wl/lse", num_nets, 64, 0.0,
      [&](Index block_begin, Index block_end, int worker) {
        T* row = lse_scratch_.data() +
                 lse_row_ * static_cast<std::size_t>(worker);
        double partial = 0.0;
        for (Index e = block_begin; e < block_end; ++e) {
          const Index begin = topo.netBegin(e);
          const Index end = topo.netEnd(e);
          const Index degree = end - begin;
          if (degree < 2 ||
              (ignore_net_degree_ > 0 && degree > ignore_net_degree_)) {
            continue;
          }
          const T weight = topo.netWeight[e];
          T* a_plus = row;
          T* a_minus = row + degree;
          for (int dim = 0; dim < 2; ++dim) {
            const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
            T* pin_grad =
                dim == 0 ? pin_grad_x_.data() : pin_grad_y_.data();
            T pmin, pmax;
            netMinMax<V>(pos, begin, end, pmin, pmax);
            // The forward stores the exponentials it sums; the backward
            // re-reads them (the pre-SIMD code recomputed every exp).
            T b_plus, b_minus, c_unused_p, c_unused_m;
            waNetForward<V>(pos, begin, end, pmax, pmin, inv_gamma, a_plus,
                            a_minus, b_plus, b_minus, c_unused_p,
                            c_unused_m);
            const T wl = gamma * (std::log(b_plus) + std::log(b_minus)) +
                         (pmax - pmin);
            partial += static_cast<double>(weight * wl);
            lseNetBackward<V>(begin, end, b_plus, b_minus, weight, a_plus,
                              a_minus, pin_grad);
          }
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

template <typename T>
double LseWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

#define DP_INSTANTIATE_WL(T)        \
  template struct PinPositionTables<T>; \
  template class WaWirelengthOp<T>; \
  template class LseWirelengthOp<T>;

DP_INSTANTIATE_WL(float)
DP_INSTANTIATE_WL(double)

#undef DP_INSTANTIATE_WL

}  // namespace dreamplace
