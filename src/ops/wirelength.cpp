#include "ops/wirelength.h"

#include <cmath>
#include <limits>

#include "common/counters.h"
#include "common/log.h"

namespace dreamplace {

namespace {

/// Atomic max/min/add on floating point via compare-exchange, used by the
/// kAtomic strategy (the CPU analogue of CUDA atomicMax on floats).
template <typename T, typename Combine>
void atomicCombine(std::atomic<T>& target, T value, Combine combine) {
  T current = target.load(std::memory_order_relaxed);
  T desired = combine(current, value);
  while (desired != current &&
         !target.compare_exchange_weak(current, desired,
                                       std::memory_order_relaxed)) {
    desired = combine(current, value);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// WaWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
WaWirelengthOp<T>::WaWirelengthOp(const Database& db, Index numNodes,
                                  Options options)
    : num_nodes_(numNodes), options_(options), topo_(db) {
  DP_ASSERT(numNodes >= db.numMovable());
  const NetTopologyView<T> topo = topo_.view();
  net_ignored_.assign(topo.numNets(), 0);
  if (options_.ignoreNetDegree > 0) {
    for (Index e = 0; e < topo.numNets(); ++e) {
      if (topo.netDegree(e) > options_.ignoreNetDegree) {
        net_ignored_[e] = 1;
      }
    }
  }
  pin_x_.resize(topo.numPins());
  pin_y_.resize(topo.numPins());
}

template <typename T>
void WaWirelengthOp<T>::computePinPositions(const NetTopologyView<T>& topo,
                                            std::span<const T> params) {
  const Index num_pins = topo.numPins();
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
#pragma omp parallel for schedule(static)
  for (Index p = 0; p < num_pins; ++p) {
    const Index node = topo.pinNode[p];
    if (node >= 0) {
      pin_x_[p] = x[node] + topo.pinOffsetX[p];
      pin_y_[p] = y[node] + topo.pinOffsetY[p];
    } else {
      pin_x_[p] = topo.pinFixedX[p];
      pin_y_[p] = topo.pinFixedY[p];
    }
  }
}

template <typename T>
double WaWirelengthOp<T>::evaluate(std::span<const T> params,
                                   std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();
  computePinPositions(topo, params);
  switch (options_.kernel) {
    case WirelengthKernel::kMerged:
      return evaluateMerged(topo, grad);
    case WirelengthKernel::kNetByNet:
      return evaluateNetByNet(topo, grad);
    case WirelengthKernel::kAtomic:
      return evaluateAtomic(topo, grad);
  }
  logFatal("unknown wirelength kernel");
}

// Fused forward+backward, all per-net intermediates in locals (Alg. 2).
template <typename T>
double WaWirelengthOp<T>::evaluateMerged(const NetTopologyView<T>& topo,
                                         std::span<T> grad) {
  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  T* gx = grad.data();
  T* gy = grad.data() + num_nodes_;
  double total = 0.0;

  // Dynamic scheduling with the paper's chunk heuristic
  // (|E| / threads / 16) balances heterogeneous net degrees.
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (Index e = 0; e < num_nets; ++e) {
    if (net_ignored_[e]) {
      continue;
    }
    const Index begin = topo.netBegin(e);
    const Index end = topo.netEnd(e);
    if (end - begin < 2) {
      continue;
    }
    const T weight = topo.netWeight[e];
    // Process x and y identically.
    for (int dim = 0; dim < 2; ++dim) {
      const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
      T* g = dim == 0 ? gx : gy;

      T pmax = -std::numeric_limits<T>::infinity();
      T pmin = std::numeric_limits<T>::infinity();
      for (Index p = begin; p < end; ++p) {
        pmax = std::max(pmax, pos[p]);
        pmin = std::min(pmin, pos[p]);
      }
      // Kernel-local a+/a- (the CPU analog of keeping them in registers,
      // per Alg. 2: no global-memory intermediates). On a GPU the paper
      // recomputes a instead; with scalar exp() the recompute costs more
      // than this thread-local scratch.
      static thread_local std::vector<T> a_local;
      a_local.resize(2 * static_cast<size_t>(end - begin));
      T* a_plus_buf = a_local.data();
      T* a_minus_buf = a_local.data() + (end - begin);
      T b_plus = 0, b_minus = 0, c_plus = 0, c_minus = 0;
      for (Index p = begin; p < end; ++p) {
        const T s_plus = (pos[p] - pmax) * inv_gamma;
        const T s_minus = (pmin - pos[p]) * inv_gamma;
        const T a_plus = std::exp(s_plus);
        const T a_minus = std::exp(s_minus);
        a_plus_buf[p - begin] = a_plus;
        a_minus_buf[p - begin] = a_minus;
        b_plus += a_plus;
        b_minus += a_minus;
        c_plus += (pos[p] - pmax) * a_plus;
        c_minus += (pos[p] - pmin) * a_minus;
      }
      const T wa_plus = c_plus / b_plus;    // relative to pmax
      const T wa_minus = c_minus / b_minus; // relative to pmin
      const T wl = (wa_plus + pmax) - (wa_minus + pmin);
      total += static_cast<double>(weight * wl);

      // Backward fused into the same kernel; only the per-pin gradient is
      // written to shared memory.
      for (Index p = begin; p < end; ++p) {
        const T a_plus = a_plus_buf[p - begin];
        const T a_minus = a_minus_buf[p - begin];
        const T g_plus = a_plus / b_plus *
                         (T(1) + ((pos[p] - pmax) - wa_plus) * inv_gamma);
        const T g_minus = a_minus / b_minus *
                          (T(1) - ((pos[p] - pmin) - wa_minus) * inv_gamma);
        const Index node = topo.pinNode[p];
        if (node >= 0) {
          const T contrib = weight * (g_plus - g_minus);
#pragma omp atomic
          g[node] += contrib;
        }
      }
    }
  }
  return total;
}

// Net-level forward and backward as separate passes with all intermediates
// stored per pin / per net (the DATE'18-style baseline in Fig. 10).
template <typename T>
double WaWirelengthOp<T>::evaluateNetByNet(const NetTopologyView<T>& topo,
                                           std::span<T> grad) {
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  a_plus_.resize(2 * static_cast<size_t>(num_pins));
  a_minus_.resize(2 * static_cast<size_t>(num_pins));
  b_plus_.resize(2 * static_cast<size_t>(num_nets));
  b_minus_.resize(2 * static_cast<size_t>(num_nets));
  c_plus_.resize(2 * static_cast<size_t>(num_nets));
  c_minus_.resize(2 * static_cast<size_t>(num_nets));
  x_max_.resize(2 * static_cast<size_t>(num_nets));
  x_min_.resize(2 * static_cast<size_t>(num_nets));

  double total = 0.0;
  // Forward pass: store every intermediate.
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* a_plus = a_plus_.data() + dim * num_pins;
    T* a_minus = a_minus_.data() + dim * num_pins;
    T* b_plus = b_plus_.data() + dim * num_nets;
    T* b_minus = b_minus_.data() + dim * num_nets;
    T* c_plus = c_plus_.data() + dim * num_nets;
    T* c_minus = c_minus_.data() + dim * num_nets;
    T* pmax = x_max_.data() + dim * num_nets;
    T* pmin = x_min_.data() + dim * num_nets;

#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
    for (Index e = 0; e < num_nets; ++e) {
      if (net_ignored_[e]) {
        continue;
      }
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      if (end - begin < 2) {
        continue;
      }
      T mx = -std::numeric_limits<T>::infinity();
      T mn = std::numeric_limits<T>::infinity();
      for (Index p = begin; p < end; ++p) {
        mx = std::max(mx, pos[p]);
        mn = std::min(mn, pos[p]);
      }
      pmax[e] = mx;
      pmin[e] = mn;
      T bp = 0, bm = 0, cp = 0, cm = 0;
      for (Index p = begin; p < end; ++p) {
        const T ap = std::exp((pos[p] - mx) * inv_gamma);
        const T am = std::exp((mn - pos[p]) * inv_gamma);
        a_plus[p] = ap;
        a_minus[p] = am;
        bp += ap;
        bm += am;
        cp += (pos[p] - mx) * ap;
        cm += (pos[p] - mn) * am;
      }
      b_plus[e] = bp;
      b_minus[e] = bm;
      c_plus[e] = cp;
      c_minus[e] = cm;
      total += static_cast<double>(topo.netWeight[e] *
                                   ((cp / bp + mx) - (cm / bm + mn)));
    }
  }

  // Backward pass: re-read the stored intermediates.
  T* gx = grad.data();
  T* gy = grad.data() + num_nodes_;
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    const T* a_plus = a_plus_.data() + dim * num_pins;
    const T* a_minus = a_minus_.data() + dim * num_pins;
    const T* b_plus = b_plus_.data() + dim * num_nets;
    const T* b_minus = b_minus_.data() + dim * num_nets;
    const T* c_plus = c_plus_.data() + dim * num_nets;
    const T* c_minus = c_minus_.data() + dim * num_nets;
    const T* pmax = x_max_.data() + dim * num_nets;
    const T* pmin = x_min_.data() + dim * num_nets;
    T* g = dim == 0 ? gx : gy;

#pragma omp parallel for schedule(dynamic, 64)
    for (Index e = 0; e < num_nets; ++e) {
      if (net_ignored_[e]) {
        continue;
      }
      const Index begin = topo.netBegin(e);
      const Index end = topo.netEnd(e);
      if (end - begin < 2) {
        continue;
      }
      const T wa_plus = c_plus[e] / b_plus[e];
      const T wa_minus = c_minus[e] / b_minus[e];
      for (Index p = begin; p < end; ++p) {
        const Index node = topo.pinNode[p];
        if (node < 0) {
          continue;
        }
        const T g_plus =
            a_plus[p] / b_plus[e] *
            (T(1) + ((pos[p] - pmax[e]) - wa_plus) * inv_gamma);
        const T g_minus =
            a_minus[p] / b_minus[e] *
            (T(1) - ((pos[p] - pmin[e]) - wa_minus) * inv_gamma);
        const T contrib = topo.netWeight[e] * (g_plus - g_minus);
#pragma omp atomic
        g[node] += contrib;
      }
    }
  }
  return total;
}

template <typename T>
void WaWirelengthOp<T>::ensureAtomicWorkspace(Index numNets) {
  static Counter allocs("ops/wirelength/atomic_ws_alloc");
  static Counter reuses("ops/wirelength/atomic_ws_reuse");
  if (static_cast<Index>(ws_xmax_.size()) == numNets) {
    reuses.add();
    return;
  }
  // vector<atomic> is not resizable; move-assign freshly sized buffers.
  // The net count is fixed for the op's lifetime, so this runs once.
  ws_xmax_ = std::vector<std::atomic<T>>(numNets);
  ws_xmin_ = std::vector<std::atomic<T>>(numNets);
  ws_bplus_ = std::vector<std::atomic<T>>(numNets);
  ws_bminus_ = std::vector<std::atomic<T>>(numNets);
  ws_cplus_ = std::vector<std::atomic<T>>(numNets);
  ws_cminus_ = std::vector<std::atomic<T>>(numNets);
  mem_atomic_.set(static_cast<std::int64_t>(
      6u * static_cast<std::size_t>(numNets) * sizeof(std::atomic<T>)));
  allocs.add();
}

// Pin-level parallelism with atomic reductions (Algorithm 1). Six kernel
// passes per dimension, each a parallel loop over pins/nets with atomics:
// this maximizes parallelism but pays for the global-memory traffic, which
// is exactly the drawback the paper measures.
template <typename T>
double WaWirelengthOp<T>::evaluateAtomic(const NetTopologyView<T>& topo,
                                         std::span<T> grad) {
  const Index num_nets = topo.numNets();
  const Index num_pins = topo.numPins();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);

  a_plus_.resize(num_pins);
  a_minus_.resize(num_pins);
  ensureAtomicWorkspace(num_nets);
  std::vector<std::atomic<T>>& xmax = ws_xmax_;
  std::vector<std::atomic<T>>& xmin = ws_xmin_;
  std::vector<std::atomic<T>>& bplus = ws_bplus_;
  std::vector<std::atomic<T>>& bminus = ws_bminus_;
  std::vector<std::atomic<T>>& cplus = ws_cplus_;
  std::vector<std::atomic<T>>& cminus = ws_cminus_;

  double total = 0.0;
  T* gx = grad.data();
  T* gy = grad.data() + num_nodes_;
  for (int dim = 0; dim < 2; ++dim) {
    const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
    T* g = dim == 0 ? gx : gy;

    // x+/x- kernel (atomic max/min over pins).
#pragma omp parallel for schedule(static)
    for (Index e = 0; e < num_nets; ++e) {
      xmax[e].store(-std::numeric_limits<T>::infinity());
      xmin[e].store(std::numeric_limits<T>::infinity());
      bplus[e].store(0);
      bminus[e].store(0);
      cplus[e].store(0);
      cminus[e].store(0);
    }
#pragma omp parallel for schedule(static)
    for (Index p = 0; p < num_pins; ++p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e]) {
        continue;
      }
      atomicCombine(xmax[e], pos[p],
                    [](T a, T b) { return std::max(a, b); });
      atomicCombine(xmin[e], pos[p],
                    [](T a, T b) { return std::min(a, b); });
    }
    // a+/a- kernel.
#pragma omp parallel for schedule(static)
    for (Index p = 0; p < num_pins; ++p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e]) {
        a_plus_[p] = 0;
        a_minus_[p] = 0;
        continue;
      }
      a_plus_[p] = std::exp((pos[p] - xmax[e].load()) * inv_gamma);
      a_minus_[p] = std::exp((xmin[e].load() - pos[p]) * inv_gamma);
    }
    // b kernel (atomic add).
#pragma omp parallel for schedule(static)
    for (Index p = 0; p < num_pins; ++p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e]) {
        continue;
      }
      atomicCombine(bplus[e], a_plus_[p], [](T a, T b) { return a + b; });
      atomicCombine(bminus[e], a_minus_[p], [](T a, T b) { return a + b; });
    }
    // c kernel (atomic add).
#pragma omp parallel for schedule(static)
    for (Index p = 0; p < num_pins; ++p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e]) {
        continue;
      }
      atomicCombine(cplus[e],
                    static_cast<T>((pos[p] - xmax[e].load()) * a_plus_[p]),
                    [](T a, T b) { return a + b; });
      atomicCombine(cminus[e],
                    static_cast<T>((pos[p] - xmin[e].load()) * a_minus_[p]),
                    [](T a, T b) { return a + b; });
    }
    // WL kernel + reduction.
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (Index e = 0; e < num_nets; ++e) {
      if (net_ignored_[e] || topo.netDegree(e) < 2) {
        continue;
      }
      const T wl = (cplus[e].load() / bplus[e].load() + xmax[e].load()) -
                   (cminus[e].load() / bminus[e].load() + xmin[e].load());
      total += static_cast<double>(topo.netWeight[e] * wl);
    }
    // Gradient kernel over pins.
#pragma omp parallel for schedule(static)
    for (Index p = 0; p < num_pins; ++p) {
      const Index e = topo.pinNet[p];
      if (net_ignored_[e] || topo.netDegree(e) < 2) {
        continue;
      }
      const Index node = topo.pinNode[p];
      if (node < 0) {
        continue;
      }
      const T wa_plus = cplus[e].load() / bplus[e].load();
      const T wa_minus = cminus[e].load() / bminus[e].load();
      const T g_plus =
          a_plus_[p] / bplus[e].load() *
          (T(1) + ((pos[p] - xmax[e].load()) - wa_plus) * inv_gamma);
      const T g_minus =
          a_minus_[p] / bminus[e].load() *
          (T(1) - ((pos[p] - xmin[e].load()) - wa_minus) * inv_gamma);
      const T contrib = topo.netWeight[e] * (g_plus - g_minus);
#pragma omp atomic
      g[node] += contrib;
    }
  }
  return total;
}

template <typename T>
double WaWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

// ---------------------------------------------------------------------------
// LseWirelengthOp
// ---------------------------------------------------------------------------

template <typename T>
LseWirelengthOp<T>::LseWirelengthOp(const Database& db, Index numNodes,
                                    Index ignoreNetDegree)
    : num_nodes_(numNodes), ignore_net_degree_(ignoreNetDegree), topo_(db) {
  pin_x_.resize(db.numPins());
  pin_y_.resize(db.numPins());
}

template <typename T>
double LseWirelengthOp<T>::evaluate(std::span<const T> params,
                                    std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/wirelength/evaluate");
  calls.add();
  std::fill(grad.begin(), grad.end(), T(0));
  const NetTopologyView<T> topo = topo_.view();
  const Index num_pins = topo.numPins();
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
#pragma omp parallel for schedule(static)
  for (Index p = 0; p < num_pins; ++p) {
    const Index node = topo.pinNode[p];
    pin_x_[p] = node >= 0 ? x[node] + topo.pinOffsetX[p] : topo.pinFixedX[p];
    pin_y_[p] = node >= 0 ? y[node] + topo.pinOffsetY[p] : topo.pinFixedY[p];
  }

  const Index num_nets = topo.numNets();
  const T inv_gamma = static_cast<T>(1.0 / gamma_);
  const T gamma = static_cast<T>(gamma_);
  T* gx = grad.data();
  T* gy = grad.data() + num_nodes_;
  double total = 0.0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (Index e = 0; e < num_nets; ++e) {
    const Index begin = topo.netBegin(e);
    const Index end = topo.netEnd(e);
    const Index degree = end - begin;
    if (degree < 2 ||
        (ignore_net_degree_ > 0 && degree > ignore_net_degree_)) {
      continue;
    }
    const T weight = topo.netWeight[e];
    for (int dim = 0; dim < 2; ++dim) {
      const T* pos = dim == 0 ? pin_x_.data() : pin_y_.data();
      T* g = dim == 0 ? gx : gy;
      T pmax = -std::numeric_limits<T>::infinity();
      T pmin = std::numeric_limits<T>::infinity();
      for (Index p = begin; p < end; ++p) {
        pmax = std::max(pmax, pos[p]);
        pmin = std::min(pmin, pos[p]);
      }
      T b_plus = 0, b_minus = 0;
      for (Index p = begin; p < end; ++p) {
        b_plus += std::exp((pos[p] - pmax) * inv_gamma);
        b_minus += std::exp((pmin - pos[p]) * inv_gamma);
      }
      const T wl = gamma * (std::log(b_plus) + std::log(b_minus)) +
                   (pmax - pmin);
      total += static_cast<double>(weight * wl);
      for (Index p = begin; p < end; ++p) {
        const Index node = topo.pinNode[p];
        if (node < 0) {
          continue;
        }
        const T a_plus = std::exp((pos[p] - pmax) * inv_gamma);
        const T a_minus = std::exp((pmin - pos[p]) * inv_gamma);
        const T contrib = weight * (a_plus / b_plus - a_minus / b_minus);
#pragma omp atomic
        g[node] += contrib;
      }
    }
  }
  return total;
}

template <typename T>
double LseWirelengthOp<T>::hpwl(std::span<const T> params) const {
  static Counter calls("ops/wirelength/hpwl");
  calls.add();
  return topologyHpwl(topo_.view(), params, num_nodes_);
}

#define DP_INSTANTIATE_WL(T)     \
  template class WaWirelengthOp<T>; \
  template class LseWirelengthOp<T>;

DP_INSTANTIATE_WL(float)
DP_INSTANTIATE_WL(double)

#undef DP_INSTANTIATE_WL

}  // namespace dreamplace
