#include "ops/net_topology.h"

#include <algorithm>
#include <limits>

namespace dreamplace {

template <typename T>
NetTopology<T>::NetTopology(const Database& db) {
  const Index num_nets = db.numNets();
  const Index num_pins = db.numPins();
  net_start_.assign(db.netPinStarts().begin(), db.netPinStarts().end());
  pin_net_.resize(num_pins);
  pin_node_.resize(num_pins);
  pin_fixed_x_.assign(num_pins, T(0));
  pin_fixed_y_.assign(num_pins, T(0));
  pin_offset_x_.assign(num_pins, T(0));
  pin_offset_y_.assign(num_pins, T(0));
  net_weight_.resize(num_nets);
  for (Index e = 0; e < num_nets; ++e) {
    net_weight_[e] = static_cast<T>(db.netWeight(e));
  }
  for (Index p = 0; p < num_pins; ++p) {
    pin_net_[p] = db.pinNet(p);
    const Index c = db.pinCell(p);
    if (db.isMovable(c)) {
      pin_node_[p] = c;
      pin_offset_x_[p] = static_cast<T>(db.pinOffsetX(p));
      pin_offset_y_[p] = static_cast<T>(db.pinOffsetY(p));
    } else {
      pin_node_[p] = kInvalidIndex;
      pin_fixed_x_[p] = static_cast<T>(db.pinX(p));
      pin_fixed_y_[p] = static_cast<T>(db.pinY(p));
    }
  }
}

template <typename T>
double topologyHpwl(const NetTopologyView<T>& topo, std::span<const T> params,
                    Index numNodes) {
  const Index num_nets = topo.numNets();
  const T* x = params.data();
  const T* y = params.data() + numNodes;
  double total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (Index e = 0; e < num_nets; ++e) {
    const Index begin = topo.netBegin(e);
    const Index end = topo.netEnd(e);
    if (end - begin < 2) {
      continue;
    }
    T xl = std::numeric_limits<T>::infinity();
    T xh = -xl, yl = xl, yh = -xl;
    for (Index p = begin; p < end; ++p) {
      const Index node = topo.pinNode[p];
      const T px =
          node >= 0 ? x[node] + topo.pinOffsetX[p] : topo.pinFixedX[p];
      const T py =
          node >= 0 ? y[node] + topo.pinOffsetY[p] : topo.pinFixedY[p];
      xl = std::min(xl, px);
      xh = std::max(xh, px);
      yl = std::min(yl, py);
      yh = std::max(yh, py);
    }
    total +=
        static_cast<double>(topo.netWeight[e] * ((xh - xl) + (yh - yl)));
  }
  return total;
}

#define DP_INSTANTIATE_TOPO(T)                                          \
  template class NetTopology<T>;                                        \
  template double topologyHpwl<T>(const NetTopologyView<T>&,            \
                                  std::span<const T>, Index);

DP_INSTANTIATE_TOPO(float)
DP_INSTANTIATE_TOPO(double)

#undef DP_INSTANTIATE_TOPO

}  // namespace dreamplace
