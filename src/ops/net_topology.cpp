#include "ops/net_topology.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"

namespace dreamplace {

template <typename T>
NetTopology<T>::NetTopology(const Database& db) {
  const Index num_nets = db.numNets();
  const Index num_pins = db.numPins();
  net_start_.assign(db.netPinStarts().begin(), db.netPinStarts().end());
  pin_net_.resize(num_pins);
  pin_node_.resize(num_pins);
  pin_fixed_x_.assign(num_pins, T(0));
  pin_fixed_y_.assign(num_pins, T(0));
  pin_offset_x_.assign(num_pins, T(0));
  pin_offset_y_.assign(num_pins, T(0));
  net_weight_.resize(num_nets);
  for (Index e = 0; e < num_nets; ++e) {
    net_weight_[e] = static_cast<T>(db.netWeight(e));
  }
  for (Index p = 0; p < num_pins; ++p) {
    pin_net_[p] = db.pinNet(p);
    const Index c = db.pinCell(p);
    if (db.isMovable(c)) {
      pin_node_[p] = c;
      pin_offset_x_[p] = static_cast<T>(db.pinOffsetX(p));
      pin_offset_y_[p] = static_cast<T>(db.pinOffsetY(p));
    } else {
      pin_node_[p] = kInvalidIndex;
      pin_fixed_x_[p] = static_cast<T>(db.pinX(p));
      pin_fixed_y_[p] = static_cast<T>(db.pinY(p));
    }
  }
  // Node -> pin CSR over all cells (fixed cells keep empty ranges). Two
  // counting passes keep the build deterministic and allocation-exact.
  const Index num_cells = db.numCells();
  node_pin_start_.assign(static_cast<std::size_t>(num_cells) + 1, 0);
  for (Index p = 0; p < num_pins; ++p) {
    if (pin_node_[p] >= 0) ++node_pin_start_[pin_node_[p] + 1];
  }
  for (Index c = 0; c < num_cells; ++c) {
    node_pin_start_[c + 1] += node_pin_start_[c];
  }
  node_pins_.resize(node_pin_start_[num_cells]);
  std::vector<Index> cursor(node_pin_start_.begin(),
                            node_pin_start_.end() - 1);
  for (Index p = 0; p < num_pins; ++p) {
    if (pin_node_[p] >= 0) node_pins_[cursor[pin_node_[p]]++] = p;
  }
}

template <typename T>
double topologyHpwl(const NetTopologyView<T>& topo, std::span<const T> params,
                    Index numNodes) {
  const Index num_nets = topo.numNets();
  const T* x = params.data();
  const T* y = params.data() + numNodes;
  return parallelReduce(
      "ops/wl/hpwl", num_nets, 64, 0.0,
      [&](Index block_begin, Index block_end) {
        double partial = 0.0;
        for (Index e = block_begin; e < block_end; ++e) {
          const Index begin = topo.netBegin(e);
          const Index end = topo.netEnd(e);
          if (end - begin < 2) {
            continue;
          }
          T xl = std::numeric_limits<T>::infinity();
          T xh = -xl, yl = xl, yh = -xl;
          for (Index p = begin; p < end; ++p) {
            const Index node = topo.pinNode[p];
            const T px =
                node >= 0 ? x[node] + topo.pinOffsetX[p] : topo.pinFixedX[p];
            const T py =
                node >= 0 ? y[node] + topo.pinOffsetY[p] : topo.pinFixedY[p];
            xl = std::min(xl, px);
            xh = std::max(xh, px);
            yl = std::min(yl, py);
            yh = std::max(yh, py);
          }
          partial += static_cast<double>(topo.netWeight[e] *
                                         ((xh - xl) + (yh - yl)));
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

template <typename T>
void gatherPinGradient(const NetTopologyView<T>& topo, const T* pinGradX,
                       const T* pinGradY, T* gradX, T* gradY) {
  parallelFor("ops/wl/gather", topo.numCells(), 512, [&](Index c) {
    const Index begin = topo.nodePinStart[c];
    const Index end = topo.nodePinStart[c + 1];
    if (begin == end) return;
    T gx = T(0), gy = T(0);
    for (Index k = begin; k < end; ++k) {
      const Index p = topo.nodePins[k];
      gx += pinGradX[p];
      gy += pinGradY[p];
    }
    gradX[c] += gx;
    gradY[c] += gy;
  });
}

#define DP_INSTANTIATE_TOPO(T)                                          \
  template class NetTopology<T>;                                        \
  template double topologyHpwl<T>(const NetTopologyView<T>&,            \
                                  std::span<const T>, Index);           \
  template void gatherPinGradient<T>(const NetTopologyView<T>&,         \
                                     const T*, const T*, T*, T*);

DP_INSTANTIATE_TOPO(float)
DP_INSTANTIATE_TOPO(double)

#undef DP_INSTANTIATE_TOPO

}  // namespace dreamplace
