#include "ops/electrostatics.h"

#include <cmath>

#include "common/log.h"

namespace dreamplace {

template <typename T>
PoissonSolver<T>::PoissonSolver(int mx, int my, fft::Dct2dAlgorithm algo)
    : mx_(mx), my_(my), algo_(algo) {
  wu_.resize(mx_);
  wv_.resize(my_);
  for (int u = 0; u < mx_; ++u) {
    wu_[u] = static_cast<T>(M_PI * u / mx_);
  }
  for (int v = 0; v < my_; ++v) {
    wv_[v] = static_cast<T>(M_PI * v / my_);
  }
  inv_w2_.resize(static_cast<size_t>(mx_) * my_);
  for (int u = 0; u < mx_; ++u) {
    for (int v = 0; v < my_; ++v) {
      const T w2 = wu_[u] * wu_[u] + wv_[v] * wv_[v];
      inv_w2_[u * my_ + v] = (u == 0 && v == 0) ? T(0) : T(1) / w2;
    }
  }
}

template <typename T>
void PoissonSolver<T>::solve(std::span<const T> density,
                             PoissonSolution<T>& out) const {
  const size_t total = static_cast<size_t>(mx_) * my_;
  DP_ASSERT(density.size() == total);
  out.potential.resize(total);
  out.fieldX.resize(total);
  out.fieldY.resize(total);

  // Forward DCT of the charge density.
  std::vector<T> coeff(total);
  fft::dct2d(density.data(), coeff.data(), mx_, my_, algo_);

  // Mode amplitudes of the series rho = sum a_uv cos cos are
  // a_uv = dct * eps_u * eps_v / (mx*my); evaluating the inverse series
  // through idct2d absorbs another 2^[u==0] 2^[v==0], so the combined
  // coefficient is uniformly 4/(mx*my) (derivation: docs/ALGORITHMS.md §3).
  const T norm = T(4) / (static_cast<T>(mx_) * static_cast<T>(my_));
  std::vector<T> z(total);
  std::vector<T> zx(total);
  std::vector<T> zy(total);
  for (int u = 0; u < mx_; ++u) {
    for (int v = 0; v < my_; ++v) {
      const size_t i = static_cast<size_t>(u) * my_ + v;
      const T base = norm * coeff[i] * inv_w2_[i];
      z[i] = base;
      zx[i] = base * wu_[u];
      zy[i] = base * wv_[v];
    }
  }

  fft::idct2d(z.data(), out.potential.data(), mx_, my_, algo_);
  fft::idxstIdct(zx.data(), out.fieldX.data(), mx_, my_, algo_);
  fft::idctIdxst(zy.data(), out.fieldY.data(), mx_, my_, algo_);

  double energy = 0.0;
#pragma omp parallel for reduction(+ : energy) schedule(static)
  for (long i = 0; i < static_cast<long>(total); ++i) {
    energy += 0.5 * static_cast<double>(density[i]) *
              static_cast<double>(out.potential[i]);
  }
  out.energy = energy;
}

template class PoissonSolver<float>;
template class PoissonSolver<double>;

}  // namespace dreamplace
