#include "ops/electrostatics.h"

#include <cmath>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"

namespace dreamplace {

template <typename T>
PoissonSolver<T>::PoissonSolver(int mx, int my, fft::Dct2dAlgorithm algo)
    : mx_(mx), my_(my), plan_(mx, my, algo) {
  wu_.resize(mx_);
  wv_.resize(my_);
  for (int u = 0; u < mx_; ++u) {
    wu_[u] = static_cast<T>(M_PI * u / mx_);
  }
  for (int v = 0; v < my_; ++v) {
    wv_[v] = static_cast<T>(M_PI * v / my_);
  }
  const size_t total = static_cast<size_t>(mx_) * my_;
  inv_w2_.resize(total);
  for (int u = 0; u < mx_; ++u) {
    for (int v = 0; v < my_; ++v) {
      const T w2 = wu_[u] * wu_[u] + wv_[v] * wv_[v];
      inv_w2_[u * my_ + v] = (u == 0 && v == 0) ? T(0) : T(1) / w2;
    }
  }
  coeff_.resize(total);
  z_.resize(total);
  zx_.resize(total);
  zy_.resize(total);
  mem_.set(static_cast<std::int64_t>(
      (wu_.capacity() + wv_.capacity() + inv_w2_.capacity() +
       coeff_.capacity() + z_.capacity() + zx_.capacity() + zy_.capacity()) *
      sizeof(T)));
}

template <typename T>
void PoissonSolver<T>::solve(std::span<const T> density,
                             PoissonSolution<T>& out) {
  static Counter solves("ops/electrostatics/solve");
  static Counter ws_allocs("ops/electrostatics/ws_alloc");
  static Counter ws_reuses("ops/electrostatics/ws_reuse");
  solves.add();
  const size_t total = static_cast<size_t>(mx_) * my_;
  DP_ASSERT(density.size() == total);
  const bool grows = out.potential.capacity() < total ||
                     out.fieldX.capacity() < total ||
                     out.fieldY.capacity() < total;
  (grows ? ws_allocs : ws_reuses).add();
  out.potential.resize(total);
  out.fieldX.resize(total);
  out.fieldY.resize(total);

  // Forward DCT of the charge density.
  plan_.dct2d(density.data(), coeff_.data());

  // Mode amplitudes of the series rho = sum a_uv cos cos are
  // a_uv = dct * eps_u * eps_v / (mx*my); evaluating the inverse series
  // through idct2d absorbs another 2^[u==0] 2^[v==0], so the combined
  // coefficient is uniformly 4/(mx*my) (derivation: docs/ALGORITHMS.md §3).
  const T norm = T(4) / (static_cast<T>(mx_) * static_cast<T>(my_));
  parallelFor("ops/es/coeff", mx_, 8, [&](Index u) {
    const T wu = wu_[u];
    for (int v = 0; v < my_; ++v) {
      const size_t i = static_cast<size_t>(u) * my_ + v;
      const T base = norm * coeff_[i] * inv_w2_[i];
      z_[i] = base;
      zx_[i] = base * wu;
      zy_[i] = base * wv_[v];
    }
  });

  plan_.idct2d(z_.data(), out.potential.data());
  plan_.idxstIdct(zx_.data(), out.fieldX.data());
  plan_.idctIdxst(zy_.data(), out.fieldY.data());

  out.energy = parallelReduce(
      "ops/es/energy", static_cast<Index>(total), 8192, 0.0,
      [&](Index block_begin, Index block_end) {
        double partial = 0.0;
        for (Index i = block_begin; i < block_end; ++i) {
          partial += 0.5 * static_cast<double>(density[i]) *
                     static_cast<double>(out.potential[i]);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

template class PoissonSolver<float>;
template class PoissonSolver<double>;

}  // namespace dreamplace
