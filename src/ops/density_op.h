// Electrostatic density penalty operator (paper Sec. III-B).
//
// Forward: scatter node charge into the bin density map, add the static
// fixed-cell map, solve Poisson's equation spectrally, return the system
// potential energy. Backward: gather the electric field onto each node.
// This is the D(w) "regularization term" of the training analogy.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "autograd/objective.h"
#include "common/memory.h"
#include "db/database.h"
#include "ops/density_map.h"
#include "ops/electrostatics.h"

namespace dreamplace {

/// Common interface of density penalty operators. DensityOp implements the
/// single-field electrostatic system; FenceDensityOp (fence_density_op.h)
/// implements one independent field per fence region (paper Sec. III-G).
template <typename T>
class DensityFunction : public ObjectiveFunction<T> {
 public:
  virtual Index numNodes() const = 0;
  virtual const DensityGrid<T>& grid() const = 0;
  /// Movable-cell density overflow at `params` (the GP stopping metric).
  virtual double overflow(std::span<const T> params) const = 0;
  /// Per-node charge (area) for the Jacobi preconditioner, and the node
  /// footprints used to keep nodes inside the die.
  virtual T nodeArea(Index node) const = 0;
  virtual T nodeWidth(Index node) const = 0;
  virtual T nodeHeight(Index node) const = 0;
};

template <typename T>
class DensityOp final : public DensityFunction<T> {
 public:
  struct Options {
    double targetDensity = 1.0;
    typename DensityMapBuilder<T>::Options map;
    fft::Dct2dAlgorithm dct = fft::Dct2dAlgorithm::kFft2dN;
  };

  /// `nodeW`/`nodeH` give the density footprint of every node: the
  /// database's movable cells [0, numMovable) followed by filler nodes.
  /// Passing widths larger than the physical cells implements routability
  /// cell inflation (Sec. III-F). Use makeNodeSizes() for the plain case.
  DensityOp(const Database& db, const DensityGrid<T>& grid,
            std::vector<T> nodeW, std::vector<T> nodeH,
            Options options = {});

  /// Physical movable-cell sizes followed by the given filler sizes.
  static void makeNodeSizes(const Database& db,
                            const std::vector<T>& fillerW,
                            const std::vector<T>& fillerH,
                            std::vector<T>& nodeW, std::vector<T>& nodeH);

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;

  /// Fillers are excluded from the overflow metric.
  double overflow(std::span<const T> params) const override;

  Index numNodes() const override { return num_nodes_; }
  Index numFillers() const { return num_nodes_ - db_.numMovable(); }
  const DensityGrid<T>& grid() const override { return builder_.grid(); }
  const DensityMapBuilder<T>& builder() const { return builder_; }
  T nodeArea(Index node) const override {
    return builder_.chargeScale(node) * builder_.effectiveWidth(node) *
           builder_.effectiveHeight(node);
  }
  T nodeWidth(Index node) const override {
    return builder_.effectiveWidth(node);
  }
  T nodeHeight(Index node) const override {
    return builder_.effectiveHeight(node);
  }

  /// Density map (movable+filler+fixed) from the last evaluate() call.
  const std::vector<T>& lastDensityMap() const { return map_; }
  const PoissonSolution<T>& lastSolution() const { return solution_; }

 private:
  const Database& db_;
  Index num_nodes_ = 0;
  Options options_;
  DensityMapBuilder<T> builder_;
  PoissonSolver<T> solver_;
  std::vector<T> fixed_map_;
  double total_movable_area_ = 0.0;

  // Workspaces.
  std::vector<T> map_;
  PoissonSolution<T> solution_;
  TrackedBytes mem_{"ops/density/grids"};  ///< density/fixed/solution maps
};

/// Computes the filler cell sizes for a database: total filler area =
/// targetDensity * whitespace - movable area (zero if negative); fillers
/// are square-ish with the average movable cell dimensions, matching
/// ePlace's whitespace filling.
template <typename T>
void computeFillers(const Database& db, double targetDensity,
                    std::vector<T>& widths, std::vector<T>& heights);

}  // namespace dreamplace
