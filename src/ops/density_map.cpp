#include "ops/density_map.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace dreamplace {
namespace {

/// row[by] += qox * yOverlap(by) for by in [by0, by1), where yOverlap is
/// the (clamped) overlap of [yl, yh) with bin row by. Full lanes compute
/// consecutive bins at once; overlap-free lanes contribute an exact 0.
/// The tail stays scalar so stores never leave [by0, by1).
template <typename V, typename T = typename V::Elem>
inline void addOverlapStrip(T* row, int by0, int by1, T qox, T yl, T yh,
                            T gridYl, T binH) {
  constexpr int kW = V::kWidth;
  int by = by0;
  if (by1 - by0 >= kW) {
    const V vyl = V::broadcast(yl);
    const V vyh = V::broadcast(yh);
    const V vbinh = V::broadcast(binH);
    const V vgyl = V::broadcast(gridYl);
    const V vq = V::broadcast(qox);
    const V zero = V::zero();
    V idx = V::iota() + V::broadcast(static_cast<T>(by0));
    for (; by + kW <= by1; by += kW) {
      const V bin_yl = fma(idx, vbinh, vgyl);
      const V oy = max(zero, min(vyh, bin_yl + vbinh) - max(vyl, bin_yl));
      fma(vq, oy, V::load(row + by)).store(row + by);
      idx = idx + V::broadcast(static_cast<T>(kW));
    }
  }
  for (; by < by1; ++by) {
    const T bin_yl = static_cast<T>(by) * binH + gridYl;
    const T oy = std::min(yh, bin_yl + binH) - std::max(yl, bin_yl);
    if (oy > 0) {
      row[by] += qox * oy;
    }
  }
}

/// fx += sum ox*oy(by)*fieldX[b], fy likewise, over the strip's bins.
/// Lane partials fold in ascending lane order (deterministic — the lane
/// decomposition depends only on [by0, by1)).
template <typename V, typename T = typename V::Elem>
inline void dotOverlapStrip(const T* rowX, const T* rowY, int by0, int by1,
                            T ox, T yl, T yh, T gridYl, T binH, T& fx,
                            T& fy) {
  constexpr int kW = V::kWidth;
  int by = by0;
  T sx = 0, sy = 0;
  if (by1 - by0 >= kW) {
    const V vyl = V::broadcast(yl);
    const V vyh = V::broadcast(yh);
    const V vbinh = V::broadcast(binH);
    const V vgyl = V::broadcast(gridYl);
    const V vox = V::broadcast(ox);
    const V zero = V::zero();
    V ax = V::zero(), ay = V::zero();
    V idx = V::iota() + V::broadcast(static_cast<T>(by0));
    for (; by + kW <= by1; by += kW) {
      const V bin_yl = fma(idx, vbinh, vgyl);
      const V area =
          vox * max(zero, min(vyh, bin_yl + vbinh) - max(vyl, bin_yl));
      ax = fma(area, V::load(rowX + by), ax);
      ay = fma(area, V::load(rowY + by), ay);
      idx = idx + V::broadcast(static_cast<T>(kW));
    }
    sx = hsum(ax);
    sy = hsum(ay);
  }
  for (; by < by1; ++by) {
    const T bin_yl = static_cast<T>(by) * binH + gridYl;
    const T oy = std::min(yh, bin_yl + binH) - std::max(yl, bin_yl);
    if (oy > 0) {
      sx += ox * oy * rowX[by];
      sy += ox * oy * rowY[by];
    }
  }
  fx += sx;
  fy += sy;
}

}  // namespace

template <typename T>
DensityGrid<T> makeGrid(const Box<Coord>& region, Index numCells,
                        int minBins, int maxBins) {
  // Aim for ~1 bin per 2-4 cells in a square grid, like ePlace's M x M
  // choice, and round to a power of two for the FFT path.
  const double target = std::sqrt(static_cast<double>(numCells) / 2.0);
  int m = 1;
  while (m < target && m < maxBins) {
    m <<= 1;
  }
  m = std::clamp(m, minBins, maxBins);
  DensityGrid<T> grid;
  grid.mx = m;
  grid.my = m;
  grid.xl = static_cast<T>(region.xl);
  grid.yl = static_cast<T>(region.yl);
  grid.binW = static_cast<T>(region.width()) / m;
  grid.binH = static_cast<T>(region.height()) / m;
  return grid;
}

template <typename T>
DensityMapBuilder<T>::DensityMapBuilder(const DensityGrid<T>& grid,
                                        std::vector<T> widths,
                                        std::vector<T> heights,
                                        Options options)
    : grid_(grid),
      widths_(std::move(widths)),
      heights_(std::move(heights)),
      options_(options) {
  DP_ASSERT(widths_.size() == heights_.size());
  DP_ASSERT(options_.subdivision >= 1);
  inv_bin_w_ = T(1) / grid_.binW;
  inv_bin_h_ = T(1) / grid_.binH;
  inv_bin_area_ = T(1) / grid_.binArea();
  const Index n = numNodes();
  eff_w_.resize(n);
  eff_h_.resize(n);
  scale_.resize(n);
  // ePlace local smoothing: a node narrower than sqrt(2) bins is widened to
  // sqrt(2) bins with its charge (area) preserved, which keeps the density
  // gradient well defined for cells much smaller than a bin.
  const T min_w = static_cast<T>(M_SQRT2) * grid_.binW;
  const T min_h = static_cast<T>(M_SQRT2) * grid_.binH;
  for (Index i = 0; i < n; ++i) {
    eff_w_[i] = std::max(widths_[i], min_w);
    eff_h_[i] = std::max(heights_[i], min_h);
    scale_[i] = widths_[i] * heights_[i] / (eff_w_[i] * eff_h_[i]);
  }
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  if (options_.kernel == DensityKernel::kSorted) {
    std::sort(order_.begin(), order_.end(), [&](Index a, Index b) {
      const T area_a = eff_w_[a] * eff_h_[a];
      const T area_b = eff_w_[b] * eff_h_[b];
      return area_a > area_b;
    });
  }
}

template <typename T>
template <typename Visit>
void DensityMapBuilder<T>::forEachOverlapStrip(const T* x, const T* y,
                                               Index node,
                                               Visit visit) const {
  const int sub = options_.subdivision;
  const T w = eff_w_[node];
  const T h = eff_h_[node];
  const T sub_w = w / sub;
  const T sub_h = h / sub;
  const T node_xl = x[node] - w / 2;
  const T node_yl = y[node] - h / 2;
  // Sub-rectangles emulate the paper's multiple-threads-per-cell scheme;
  // each is scattered independently (with sub > 1 the bin-boundary work is
  // partitioned at finer granularity, at the cost of extra index math).
  for (int sx = 0; sx < sub; ++sx) {
    for (int sy = 0; sy < sub; ++sy) {
      const T xl = node_xl + sx * sub_w;
      const T xh = xl + sub_w;
      const T yl = node_yl + sy * sub_h;
      const T yh = yl + sub_h;
      int bx0 = static_cast<int>(std::floor((xl - grid_.xl) * inv_bin_w_));
      int bx1 = static_cast<int>(std::ceil((xh - grid_.xl) * inv_bin_w_));
      int by0 = static_cast<int>(std::floor((yl - grid_.yl) * inv_bin_h_));
      int by1 = static_cast<int>(std::ceil((yh - grid_.yl) * inv_bin_h_));
      bx0 = std::max(bx0, 0);
      by0 = std::max(by0, 0);
      bx1 = std::min(bx1, grid_.mx);
      by1 = std::min(by1, grid_.my);
      for (int bx = bx0; bx < bx1; ++bx) {
        const T bin_xl = grid_.xl + bx * grid_.binW;
        const T ox = std::min(xh, bin_xl + grid_.binW) - std::max(xl, bin_xl);
        if (ox <= 0) {
          continue;
        }
        visit(bx, by0, by1, ox, yl, yh);
      }
    }
  }
}

template <typename T>
int DensityMapBuilder<T>::scatterSlices() const {
  if (numNodes() < 2048) return 1;
  // Cap the slice scratch at ~64 MB so huge grids degrade to fewer
  // slices instead of an allocation spike. The count must never depend
  // on the thread count (determinism contract).
  const std::size_t per_slice =
      static_cast<std::size_t>(grid_.mx) * grid_.my * sizeof(T);
  const std::size_t budget = std::size_t(64) << 20;
  const std::size_t cap = budget / std::max<std::size_t>(per_slice, 1);
  return static_cast<int>(std::clamp<std::size_t>(cap, 1, 8));
}

template <typename T>
void DensityMapBuilder<T>::scatter(const T* x, const T* y, Index begin,
                                   Index end, std::vector<T>& map) const {
  DP_ASSERT(static_cast<int>(map.size()) == grid_.mx * grid_.my);
  using V = simd::NativeVec<T>;
  const Index n = numNodes();
  // order_ is a permutation of all nodes; entries outside [begin, end)
  // are skipped.
  const int slices = scatterSlices();
  if (slices == 1) {
    // Small designs: accumulate in the serial processing order.
    for (Index k = 0; k < n; ++k) {
      const Index node = order_[k];
      if (node < begin || node >= end) {
        continue;
      }
      const T q = scale_[node] * inv_bin_area_;
      forEachOverlapStrip(
          x, y, node, [&](int bx, int by0, int by1, T ox, T yl, T yh) {
            addOverlapStrip<V>(map.data() + bx * grid_.my, by0, by1, q * ox,
                               yl, yh, grid_.yl, grid_.binH);
          });
    }
    return;
  }
  // Each slice takes a strided subset of the (area-sorted) processing
  // order — stride assignment spreads the big cells across slices, the
  // same load-balancing idea as the paper's sorted work distribution —
  // and accumulates into its private partial map. Combining the partials
  // per bin in slice order makes the sum independent of which thread ran
  // which slice.
  const std::size_t bins = map.size();
  slice_scratch_.resize(bins * static_cast<std::size_t>(slices));
  mem_slices_.set(static_cast<std::int64_t>(slice_scratch_.size() *
                                            sizeof(T)));
  currentThreadPool().run(
      "ops/density/scatter", slices, [&](Index s, int) {
        T* partial = slice_scratch_.data() + bins * static_cast<std::size_t>(s);
        std::fill(partial, partial + bins, T(0));
        for (Index k = s; k < n; k += slices) {
          const Index node = order_[k];
          if (node < begin || node >= end) {
            continue;
          }
          const T q = scale_[node] * inv_bin_area_;
          forEachOverlapStrip(
              x, y, node, [&](int bx, int by0, int by1, T ox, T yl, T yh) {
                addOverlapStrip<V>(partial + bx * grid_.my, by0, by1, q * ox,
                                   yl, yh, grid_.yl, grid_.binH);
              });
        }
      });
  parallelFor("ops/density/combine", static_cast<Index>(bins), 4096,
              [&](Index b) {
                T acc = map[b];
                for (int s = 0; s < slices; ++s) {
                  acc += slice_scratch_[bins * static_cast<std::size_t>(s) + b];
                }
                map[b] = acc;
              });
}

template <typename T>
void DensityMapBuilder<T>::gatherForce(const T* x, const T* y,
                                       std::span<const T> fieldX,
                                       std::span<const T> fieldY, T* gx,
                                       T* gy) const {
  const Index n = numNodes();
  using V = simd::NativeVec<T>;
  // Nodes write disjoint gradient entries, so the backward gather needs
  // no synchronization; blocks over the area-sorted order keep the
  // per-block cost roughly even.
  parallelFor("ops/density/gather", n, 256, [&](Index k) {
    const Index node = order_[k];
    T fx = 0;
    T fy = 0;
    forEachOverlapStrip(
        x, y, node, [&](int bx, int by0, int by1, T ox, T yl, T yh) {
          const int b = bx * grid_.my;
          dotOverlapStrip<V>(fieldX.data() + b, fieldY.data() + b, by0, by1,
                             ox, yl, yh, grid_.yl, grid_.binH, fx, fy);
        });
    const T q = scale_[node] * inv_bin_area_;
    // Density gradient is minus the electric force; the 1/bin scale
    // converts the field from bin-index to layout coordinates.
    gx[node] = -q * fx * inv_bin_w_;
    gy[node] = -q * fy * inv_bin_h_;
  });
}

template <typename T>
std::vector<T> buildFixedDensityMap(const Database& db,
                                    const DensityGrid<T>& grid) {
  std::vector<T> map(static_cast<size_t>(grid.mx) * grid.my, T(0));
  const T inv_bin_area = T(1) / grid.binArea();
  const double inv_bin_w = 1.0 / grid.binW;
  const double inv_bin_h = 1.0 / grid.binH;
  for (Index i = db.numMovable(); i < db.numCells(); ++i) {
    const Box<Coord> box = db.cellBox(i);
    int bx0 = static_cast<int>(std::floor((box.xl - grid.xl) * inv_bin_w));
    int bx1 = static_cast<int>(std::ceil((box.xh - grid.xl) * inv_bin_w));
    int by0 = static_cast<int>(std::floor((box.yl - grid.yl) * inv_bin_h));
    int by1 = static_cast<int>(std::ceil((box.yh - grid.yl) * inv_bin_h));
    bx0 = std::max(bx0, 0);
    by0 = std::max(by0, 0);
    bx1 = std::min(bx1, grid.mx);
    by1 = std::min(by1, grid.my);
    for (int bx = bx0; bx < bx1; ++bx) {
      const T bin_xl = grid.xl + bx * grid.binW;
      const T ox = static_cast<T>(
          std::min<double>(box.xh, bin_xl + grid.binW) -
          std::max<double>(box.xl, bin_xl));
      if (ox <= 0) {
        continue;
      }
      for (int by = by0; by < by1; ++by) {
        const T bin_yl = grid.yl + by * grid.binH;
        const T oy = static_cast<T>(
            std::min<double>(box.yh, bin_yl + grid.binH) -
            std::max<double>(box.yl, bin_yl));
        if (oy <= 0) {
          continue;
        }
        map[bx * grid.my + by] += ox * oy * inv_bin_area;
      }
    }
  }
  // Fixed overlap can exceed a full bin (stacked pads); clamp to 1.0 so the
  // electric system sees at most a full obstacle.
  for (T& d : map) {
    d = std::min(d, T(1));
  }
  return map;
}

template <typename T>
double densityOverflow(std::span<const T> movableMap,
                       std::span<const T> fixedMap,
                       const DensityGrid<T>& grid, double targetDensity,
                       double totalMovableArea) {
  DP_ASSERT(movableMap.size() == fixedMap.size());
  const double bin_area = grid.binArea();
  double overflow = 0.0;
  for (std::size_t b = 0; b < movableMap.size(); ++b) {
    const double movable_area = movableMap[b] * bin_area;
    const double free_area = (1.0 - fixedMap[b]) * bin_area;
    overflow += std::max(0.0, movable_area - targetDensity * free_area);
  }
  return totalMovableArea > 0 ? overflow / totalMovableArea : 0.0;
}

#define DP_INSTANTIATE_DENSITY_MAP(T)                                       \
  template struct DensityGrid<T>;                                           \
  template DensityGrid<T> makeGrid<T>(const Box<Coord>&, Index, int, int);  \
  template class DensityMapBuilder<T>;                                      \
  template std::vector<T> buildFixedDensityMap<T>(const Database&,          \
                                                  const DensityGrid<T>&);   \
  template double densityOverflow<T>(std::span<const T>, std::span<const T>, \
                                     const DensityGrid<T>&, double, double);

DP_INSTANTIATE_DENSITY_MAP(float)
DP_INSTANTIATE_DENSITY_MAP(double)

#undef DP_INSTANTIATE_DENSITY_MAP

}  // namespace dreamplace
