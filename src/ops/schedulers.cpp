// Schedulers are header-only; this TU exists so the ops library has a
// stable archive member for them and to host future out-of-line additions.
#include "ops/schedulers.h"
