// Wirelength operators (paper Sec. III-A).
//
// The weighted-average (WA) wirelength op is provided in the three kernel
// strategies the paper compares in Fig. 10:
//  * kNetByNet — net-level parallelism with separate forward/backward
//    passes that materialize the a/b/c intermediates in memory,
//  * kAtomic   — the fine-grained many-pass strategy (Algorithm 1): every
//    intermediate (max/min, a, b, c, gradient) is produced by its own
//    kernel pass through global memory. On the GPU those passes reduce
//    with atomics; this CPU realization keeps the pass structure and
//    memory traffic but reduces per net in fixed pin order, so results
//    are deterministic for any thread count,
//  * kMerged   — fused forward+backward with all intermediates kept in
//    kernel-local registers (Algorithm 2); the default.
// The log-sum-exp (LSE) wirelength is also implemented, as in the paper.
//
// All strategies consume the same NetTopologyView (ops/net_topology.h),
// so they are guaranteed to agree on the flattened netlist.
//
// Parameter layout shared by all placement ops: params[0..n) are node
// center x coordinates, params[n..2n) node center y coordinates, where
// nodes are the database's movable cells [0, numMovable) followed by any
// filler cells (fillers carry no pins and therefore no wirelength
// gradient). Pins on fixed cells contribute at their static database
// positions.
#pragma once

#include <span>
#include <vector>

#include "autograd/objective.h"
#include "common/memory.h"
#include "db/database.h"
#include "ops/net_topology.h"

namespace dreamplace {

enum class WirelengthKernel { kNetByNet, kAtomic, kMerged };
enum class WirelengthModel { kWeightedAverage, kLogSumExp };

/// Common interface of the smooth wirelength operators: a differentiable
/// objective plus the gamma smoothness knob and an exact-HPWL probe. The
/// global placer is written against this base so the wirelength model is
/// a configuration choice (paper Sec. III-A: WA and LSE are both
/// implemented in the framework).
template <typename T>
class WirelengthOp : public ObjectiveFunction<T> {
 public:
  virtual void setGamma(double gamma) = 0;
  virtual double gamma() const = 0;
  /// Exact HPWL at the given parameters (monitoring; not differentiable).
  virtual double hpwl(std::span<const T> params) const = 0;
};

template <typename T>
class WaWirelengthOp final : public WirelengthOp<T> {
 public:
  struct Options {
    WirelengthKernel kernel = WirelengthKernel::kMerged;
    /// Nets with more pins than this are skipped (contest convention for
    /// huge fanout nets like clocks); <= 0 disables the cutoff.
    Index ignoreNetDegree = 0;
  };

  WaWirelengthOp(const Database& db, Index numNodes, Options options = {});

  void setGamma(double gamma) override { gamma_ = gamma; }
  double gamma() const override { return gamma_; }

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;

  double hpwl(std::span<const T> params) const override;

  /// The flattened netlist all kernel strategies consume.
  NetTopologyView<T> topology() const { return topo_.view(); }

 private:
  double evaluateMerged(const NetTopologyView<T>& topo, std::span<T> grad);
  double evaluateNetByNet(const NetTopologyView<T>& topo, std::span<T> grad);
  double evaluateAtomic(const NetTopologyView<T>& topo, std::span<T> grad);

  /// Computes per-pin absolute positions into pin_x_/pin_y_.
  void computePinPositions(const NetTopologyView<T>& topo,
                           std::span<const T> params);
  /// Sizes the per-pin gradient scratch on first use; reports allocation
  /// vs. reuse through the counter registry so the regression gate can
  /// pin "allocated once, then reused".
  void ensureScratch(Index numPins);

  Index num_nodes_ = 0;
  Options options_;
  double gamma_ = 1.0;

  NetTopology<T> topo_;            // flat copies for kernel speed
  std::vector<char> net_ignored_;

  // Workspaces.
  std::vector<T> pin_x_;
  std::vector<T> pin_y_;
  // Per-pin gradient scratch shared by every kernel strategy: the
  // backward passes write disjoint pin entries (no atomics), and
  // gatherPinGradient folds them into per-node gradients in a fixed
  // order, so the parallel backward is deterministic for any thread
  // count. Replaces the old vector<atomic<T>> reduction workspace, which
  // could never shrink or be copied and made results schedule-dependent.
  std::vector<T> pin_grad_x_, pin_grad_y_;
  // Intermediates for the net-by-net and atomic strategies.
  std::vector<T> a_plus_, a_minus_;        // per pin (x dim reused for y)
  std::vector<T> b_plus_, b_minus_;        // per net
  std::vector<T> c_plus_, c_minus_;        // per net
  std::vector<T> x_max_, x_min_;           // per net
  TrackedBytes mem_scratch_{"ops/wirelength/scratch"};
};

/// Log-sum-exp wirelength (Naylor et al.): WL_e = gamma*(log sum
/// e^{x/gamma} + log sum e^{-x/gamma}) per dimension, max-shifted for
/// numerical stability. Overestimates HPWL (WA underestimates).
template <typename T>
class LseWirelengthOp final : public WirelengthOp<T> {
 public:
  LseWirelengthOp(const Database& db, Index numNodes,
                  Index ignoreNetDegree = 0);

  void setGamma(double gamma) override { gamma_ = gamma; }
  double gamma() const override { return gamma_; }

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;
  double hpwl(std::span<const T> params) const override;

  NetTopologyView<T> topology() const { return topo_.view(); }

 private:
  Index num_nodes_ = 0;
  Index ignore_net_degree_ = 0;
  double gamma_ = 1.0;
  NetTopology<T> topo_;
  std::vector<T> pin_x_, pin_y_;
  std::vector<T> pin_grad_x_, pin_grad_y_;
};

}  // namespace dreamplace
