// Wirelength operators (paper Sec. III-A).
//
// The weighted-average (WA) wirelength op is provided in the three kernel
// strategies the paper compares in Fig. 10:
//  * kNetByNet — net-level parallelism with separate forward/backward
//    passes that materialize the a/b/c intermediates in memory,
//  * kAtomic   — the fine-grained many-pass strategy (Algorithm 1): every
//    intermediate (max/min, a, b, c, gradient) is produced by its own
//    kernel pass through global memory. On the GPU those passes reduce
//    with atomics; this CPU realization keeps the pass structure and
//    memory traffic but reduces per net in fixed pin order, so results
//    are deterministic for any thread count,
//  * kMerged   — fused forward+backward with all intermediates kept in
//    kernel-local scratch (Algorithm 2); the default. The CPU realization
//    batches nets in blocks of kMergedGrain and runs every exp argument
//    of a block through one vexpArray sweep, so the exp work runs in full
//    vector lanes even though ~70% of nets have fewer pins than a lane.
// The log-sum-exp (LSE) wirelength is also implemented, as in the paper.
//
// Every kernel's inner loops are written against the common/simd.h
// vector layer and instantiated twice: once with NativeVec<T> (the
// polynomial vexp, lane-parallel min/max/accumulate) and once with
// ScalarVec<T, 1> (libm std::exp, the pre-SIMD numerics). Options::simd
// picks the path at runtime, so one binary can bench and cross-check
// both; -DDREAMPLACE_SIMD=OFF builds only ever run the scalar family.
// Lane decomposition of a net's pin range depends only on the net degree
// (docs/SIMD.md), so the thread-count bit-identity contract of
// docs/PARALLEL.md is untouched.
//
// All strategies consume the same NetTopologyView (ops/net_topology.h),
// so they are guaranteed to agree on the flattened netlist.
//
// Parameter layout shared by all placement ops: params[0..n) are node
// center x coordinates, params[n..2n) node center y coordinates, where
// nodes are the database's movable cells [0, numMovable) followed by any
// filler cells (fillers carry no pins and therefore no wirelength
// gradient). Pins on fixed cells contribute at their static database
// positions.
#pragma once

#include <span>
#include <vector>

#include "autograd/objective.h"
#include "common/memory.h"
#include "db/database.h"
#include "ops/net_topology.h"

namespace dreamplace {

enum class WirelengthKernel { kNetByNet, kAtomic, kMerged };
enum class WirelengthModel { kWeightedAverage, kLogSumExp };

/// Common interface of the smooth wirelength operators: a differentiable
/// objective plus the gamma smoothness knob and an exact-HPWL probe. The
/// global placer is written against this base so the wirelength model is
/// a configuration choice (paper Sec. III-A: WA and LSE are both
/// implemented in the framework).
template <typename T>
class WirelengthOp : public ObjectiveFunction<T> {
 public:
  virtual void setGamma(double gamma) = 0;
  virtual double gamma() const = 0;
  /// Exact HPWL at the given parameters (monitoring; not differentiable).
  virtual double hpwl(std::span<const T> params) const = 0;
};

/// Precomputed pin-position tables: branch-free form of
/// "movable pins follow their node, fixed pins sit still", shared by the
/// WA and LSE ops. pin = sel * node_coord + base, where sel is 1/0 and
/// base is the pin offset (movable) or the static position (fixed) — the
/// select becomes a lane multiply, and the result is bit-identical to
/// the branchy scalar form (sel and base are exact).
template <typename T>
struct PinPositionTables {
  std::vector<Index> gatherNode;  ///< pinNode, or 0 for fixed pins.
  std::vector<T> sel;             ///< 1 for movable pins, 0 for fixed.
  std::vector<T> baseX, baseY;    ///< Offset (movable) or position (fixed).

  void build(const NetTopologyView<T>& topo);
  /// pinX[p] = sel[p]*x[gatherNode[p]] + baseX[p] (same for y), lane
  /// blocks of V::kWidth, parallel over pins.
  template <typename V>
  void compute(const T* x, const T* y, T* pinX, T* pinY) const;
};

template <typename T>
class WaWirelengthOp final : public WirelengthOp<T> {
 public:
  struct Options {
    WirelengthKernel kernel = WirelengthKernel::kMerged;
    /// Nets with more pins than this are skipped (contest convention for
    /// huge fanout nets like clocks); <= 0 disables the cutoff.
    Index ignoreNetDegree = 0;
    /// Run the NativeVec kernels (polynomial vexp). Off = ScalarVec
    /// kernels with libm std::exp — the comparison row of bench_fig10
    /// and the only path in -DDREAMPLACE_SIMD=OFF builds.
    bool simd = true;
  };

  WaWirelengthOp(const Database& db, Index numNodes, Options options = {});

  void setGamma(double gamma) override { gamma_ = gamma; }
  double gamma() const override { return gamma_; }

  /// Switches the kernel strategy between evaluates (benching, A/B
  /// comparisons). All strategies share one intermediate workspace sized
  /// to the largest footprint, so switching never reallocates.
  void setKernel(WirelengthKernel kernel) { options_.kernel = kernel; }
  WirelengthKernel kernel() const { return options_.kernel; }

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;

  double hpwl(std::span<const T> params) const override;

  /// The flattened netlist all kernel strategies consume.
  NetTopologyView<T> topology() const { return topo_.view(); }

 private:
  template <typename V>
  double evaluateMerged(const NetTopologyView<T>& topo);
  template <typename V>
  double evaluateNetByNet(const NetTopologyView<T>& topo);
  template <typename V>
  double evaluateAtomic(const NetTopologyView<T>& topo);

  /// Sizes the per-pin gradient scratch on first use; reports allocation
  /// vs. reuse through the counter registry so the regression gate can
  /// pin "allocated once, then reused".
  void ensureScratch(Index numPins);
  /// Sizes the kNetByNet/kAtomic intermediate arrays once, to the larger
  /// (net-by-net) footprint, so alternating kernel strategies on one op
  /// reuses instead of churning reallocations. Counted like
  /// ensureScratch (ops/wirelength/kernel_ws_alloc|reuse).
  void ensureKernelScratch(Index numPins, Index numNets);
  /// Per-worker block rows for the merged kernel: arg+/arg-/a+/a- strips
  /// for the largest net block plus per-net min/max, sized threads x
  /// (4*maxBlockPins + 2*kMergedGrain). Owned by the op (not
  /// thread_local) so the bytes show up under the
  /// ops/wirelength/merged_scratch memory key and die with the op.
  void ensureMergedScratch(int workers);

  Index num_nodes_ = 0;
  Options options_;
  double gamma_ = 1.0;

  NetTopology<T> topo_;            // flat copies for kernel speed
  std::vector<char> net_ignored_;
  PinPositionTables<T> pin_tables_;
  Index max_active_degree_ = 0;    ///< Max degree over non-ignored nets.
  /// Per-evaluate vexp invocation counts (simd/vexp_calls), precomputed
  /// for both widths at construction — the active net set is fixed. The
  /// net-by-net and atomic kernels exp per net: one vector call per lane
  /// group per sign per dimension, 4 * sum over active nets of
  /// ceil(degree / width). The merged kernel exps per net block instead
  /// (one vexpArray over a block's 2*pins arguments per dimension), so
  /// its counts are 2 * sum over blocks of ceil(2*blockPins / width).
  std::int64_t vexp_groups_native_ = 0;
  std::int64_t vexp_groups_scalar_ = 0;
  std::int64_t vexp_calls_merged_native_ = 0;
  std::int64_t vexp_calls_merged_scalar_ = 0;
  /// Merged-kernel batching geometry: nets are blocked by kMergedGrain
  /// (also the parallel grain, so block boundaries depend only on the
  /// net count) and merged_block_pins_ is the widest block's pin strip.
  static constexpr Index kMergedGrain = 64;
  Index merged_block_pins_ = 0;

  // Workspaces.
  std::vector<T> pin_x_;
  std::vector<T> pin_y_;
  // Per-pin gradient scratch shared by every kernel strategy: the
  // backward passes write disjoint pin entries (no atomics), and
  // gatherPinGradient folds them into per-node gradients in a fixed
  // order, so the parallel backward is deterministic for any thread
  // count. Replaces the old vector<atomic<T>> reduction workspace, which
  // could never shrink or be copied and made results schedule-dependent.
  std::vector<T> pin_grad_x_, pin_grad_y_;
  // Intermediates for the net-by-net and atomic strategies
  // (ensureKernelScratch).
  std::vector<T> a_plus_, a_minus_;        // per pin (x dim reused for y)
  std::vector<T> b_plus_, b_minus_;        // per net
  std::vector<T> c_plus_, c_minus_;        // per net
  std::vector<T> x_max_, x_min_;           // per net
  // Merged-kernel per-worker a± rows (ensureMergedScratch).
  std::vector<T> merged_scratch_;
  std::size_t merged_row_ = 0;     ///< Elements per worker row.
  TrackedBytes mem_scratch_{"ops/wirelength/scratch"};
  TrackedBytes mem_kernel_ws_{"ops/wirelength/kernel_ws"};
  TrackedBytes mem_merged_{"ops/wirelength/merged_scratch"};
};

/// Log-sum-exp wirelength (Naylor et al.): WL_e = gamma*(log sum
/// e^{x/gamma} + log sum e^{-x/gamma}) per dimension, max-shifted for
/// numerical stability. Overestimates HPWL (WA underestimates).
template <typename T>
class LseWirelengthOp final : public WirelengthOp<T> {
 public:
  LseWirelengthOp(const Database& db, Index numNodes,
                  Index ignoreNetDegree = 0, bool simd = true);

  void setGamma(double gamma) override { gamma_ = gamma; }
  double gamma() const override { return gamma_; }

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;
  double hpwl(std::span<const T> params) const override;

  NetTopologyView<T> topology() const { return topo_.view(); }

 private:
  template <typename V>
  double evaluateImpl(const NetTopologyView<T>& topo);
  /// Per-worker a± rows: the forward pass stores the exponentials it
  /// sums into b±, and the fused backward re-reads them instead of
  /// recomputing exp per pin (the pre-SIMD code paid the exp twice).
  void ensureScratch(int workers);

  Index num_nodes_ = 0;
  Index ignore_net_degree_ = 0;
  bool simd_ = true;
  double gamma_ = 1.0;
  NetTopology<T> topo_;
  PinPositionTables<T> pin_tables_;
  Index max_active_degree_ = 0;
  std::int64_t vexp_groups_native_ = 0;
  std::int64_t vexp_groups_scalar_ = 0;
  std::vector<T> pin_x_, pin_y_;
  std::vector<T> pin_grad_x_, pin_grad_y_;
  std::vector<T> lse_scratch_;
  std::size_t lse_row_ = 0;
  TrackedBytes mem_lse_{"ops/wirelength/lse_scratch"};
};

}  // namespace dreamplace
