#include "ops/density_op.h"

#include <algorithm>
#include <cmath>

#include "common/counters.h"
#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

template <typename T>
void DensityOp<T>::makeNodeSizes(const Database& db,
                                 const std::vector<T>& fillerW,
                                 const std::vector<T>& fillerH,
                                 std::vector<T>& nodeW,
                                 std::vector<T>& nodeH) {
  DP_ASSERT(fillerW.size() == fillerH.size());
  nodeW.clear();
  nodeH.clear();
  nodeW.reserve(db.numMovable() + fillerW.size());
  nodeH.reserve(db.numMovable() + fillerH.size());
  for (Index i = 0; i < db.numMovable(); ++i) {
    nodeW.push_back(static_cast<T>(db.cellWidth(i)));
    nodeH.push_back(static_cast<T>(db.cellHeight(i)));
  }
  nodeW.insert(nodeW.end(), fillerW.begin(), fillerW.end());
  nodeH.insert(nodeH.end(), fillerH.begin(), fillerH.end());
}

template <typename T>
DensityOp<T>::DensityOp(const Database& db, const DensityGrid<T>& grid,
                        std::vector<T> nodeW, std::vector<T> nodeH,
                        Options options)
    : db_(db),
      num_nodes_(static_cast<Index>(nodeW.size())),
      options_(options),
      builder_(grid, std::move(nodeW), std::move(nodeH), options.map),
      solver_(grid.mx, grid.my, options.dct),
      fixed_map_(buildFixedDensityMap<T>(db, grid)),
      total_movable_area_(db.totalMovableArea()) {
  DP_ASSERT(num_nodes_ >= db.numMovable());
  map_.resize(static_cast<size_t>(grid.mx) * grid.my);
  mem_.set(static_cast<std::int64_t>(
      (map_.capacity() + fixed_map_.capacity()) * sizeof(T)));
}

template <typename T>
double DensityOp<T>::evaluate(std::span<const T> params, std::span<T> grad) {
  DP_ASSERT(params.size() == size() && grad.size() == size());
  static Counter calls("ops/density/evaluate");
  calls.add();
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;

  {
    ScopedTimer t("gp/op/density/scatter");
    std::copy(fixed_map_.begin(), fixed_map_.end(), map_.begin());
    builder_.scatter(x, y, 0, num_nodes_, map_);
  }
  {
    ScopedTimer t("gp/op/density/poisson");
    solver_.solve(std::span<const T>(map_), solution_);
    // Attribute the solution buffers once they reach steady-state size
    // (set() is a no-op when nothing changed).
    mem_.set(static_cast<std::int64_t>(
        (map_.capacity() + fixed_map_.capacity() +
         solution_.potential.capacity() + solution_.fieldX.capacity() +
         solution_.fieldY.capacity()) *
        sizeof(T)));
  }
  {
    ScopedTimer t("gp/op/density/gather");
    builder_.gatherForce(x, y, std::span<const T>(solution_.fieldX),
                         std::span<const T>(solution_.fieldY), grad.data(),
                         grad.data() + num_nodes_);
  }
  return solution_.energy;
}

template <typename T>
double DensityOp<T>::overflow(std::span<const T> params) const {
  const T* x = params.data();
  const T* y = params.data() + num_nodes_;
  std::vector<T> movable(map_.size(), T(0));
  builder_.scatter(x, y, 0, db_.numMovable(), movable);
  return densityOverflow<T>(movable, fixed_map_, builder_.grid(),
                            options_.targetDensity, total_movable_area_);
}

template <typename T>
void computeFillers(const Database& db, double targetDensity,
                    std::vector<T>& widths, std::vector<T>& heights) {
  widths.clear();
  heights.clear();
  const double whitespace = db.dieArea().area() - db.totalFixedArea();
  const double movable = db.totalMovableArea();
  const double filler_total = targetDensity * whitespace - movable;
  if (filler_total <= 0) {
    return;
  }
  // Filler dimensions: row height tall, average movable width wide.
  double avg_w = 0.0;
  for (Index i = 0; i < db.numMovable(); ++i) {
    avg_w += db.cellWidth(i);
  }
  avg_w = db.numMovable() > 0 ? avg_w / db.numMovable() : db.siteWidth();
  const double h = db.rowHeight() > 0 ? db.rowHeight() : avg_w;
  const auto count =
      static_cast<Index>(std::floor(filler_total / (avg_w * h)));
  widths.assign(count, static_cast<T>(avg_w));
  heights.assign(count, static_cast<T>(h));
}

template class DensityOp<float>;
template class DensityOp<double>;
template void computeFillers<float>(const Database&, double,
                                    std::vector<float>&,
                                    std::vector<float>&);
template void computeFillers<double>(const Database&, double,
                                     std::vector<double>&,
                                     std::vector<double>&);

}  // namespace dreamplace
