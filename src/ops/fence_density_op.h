// Fence-region density operator (paper Sec. III-G).
//
// Fence regions constrain groups of cells to stay inside given boxes. The
// paper's proposed mechanism — "multiple electric fields, e.g., one for
// each region, to enable independent spreading between regions" — is
// implemented here: each group g gets its own electrostatic system on the
// shared bin grid, whose fixed density marks everything *outside* the
// group's fence (plus real fixed cells inside it) as occupied. A group's
// cells therefore spread within their fence, repelled by its walls, while
// different groups do not interact through density at all (they interact
// only through wirelength, as in the paper's sketch).
//
// Group 0 is the default region: its fence is the whole die minus the
// union of the other fences.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "db/database.h"
#include "ops/density_map.h"
#include "ops/density_op.h"
#include "ops/electrostatics.h"

namespace dreamplace {

struct FenceRegion {
  Box<Coord> box;
};

template <typename T>
class FenceDensityOp final : public DensityFunction<T> {
 public:
  struct Options {
    double targetDensity = 1.0;
    typename DensityMapBuilder<T>::Options map;
    fft::Dct2dAlgorithm dct = fft::Dct2dAlgorithm::kFft2dN;
  };

  /// `fences` are the explicit regions (group ids 1..fences.size());
  /// `nodeGroup[i]` gives the group of node i (0 = default region) and
  /// must cover all nodes described by `nodeW`/`nodeH` (movable cells
  /// followed by fillers, as in DensityOp).
  FenceDensityOp(const Database& db, const DensityGrid<T>& grid,
                 std::vector<FenceRegion> fences, std::vector<int> nodeGroup,
                 std::vector<T> nodeW, std::vector<T> nodeH,
                 Options options = {});

  std::size_t size() const override {
    return 2 * static_cast<std::size_t>(num_nodes_);
  }
  double evaluate(std::span<const T> params, std::span<T> grad) override;

  double overflow(std::span<const T> params) const override;

  Index numNodes() const override { return num_nodes_; }
  const DensityGrid<T>& grid() const override { return grid_; }
  T nodeArea(Index node) const override;
  T nodeWidth(Index node) const override;
  T nodeHeight(Index node) const override;

  int numGroups() const { return static_cast<int>(groups_.size()); }
  int nodeGroup(Index node) const { return node_group_[node]; }
  /// Fence box of a group (group 0 returns the die).
  const Box<Coord>& groupBox(int group) const { return group_box_[group]; }

 private:
  struct Group {
    std::vector<Index> members;          ///< Global node indices.
    std::unique_ptr<DensityMapBuilder<T>> builder;  ///< Over member sizes.
    std::vector<T> fixedMap;             ///< Blocked density for this field.
    double movableArea = 0.0;            ///< Physical movable area.
    // Workspaces.
    std::vector<T> x, y;                 ///< Member center positions.
    std::vector<T> gx, gy;
    std::vector<T> map;
  };

  void gatherMemberPositions(const Group& g, std::span<const T> params,
                             std::vector<T>& x, std::vector<T>& y) const;

  const Database& db_;
  DensityGrid<T> grid_;
  Options options_;
  Index num_nodes_ = 0;
  std::vector<int> node_group_;
  std::vector<Box<Coord>> group_box_;
  std::vector<Group> groups_;
  PoissonSolver<T> solver_;
  PoissonSolution<T> solution_;
};

/// Assigns fillers to groups proportionally to each group's whitespace and
/// returns the per-node group vector for movable cells + fillers, given a
/// per-movable-cell group assignment.
std::vector<int> assignFillerGroups(const Database& db,
                                    const std::vector<int>& cellGroup,
                                    const std::vector<FenceRegion>& fences,
                                    Index numFillers);

}  // namespace dreamplace
