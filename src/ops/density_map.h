// Density map construction and electric-force gathering
// (paper Sec. III-B1/B2: the "dynamic bipartite graph" forward/backward).
//
// The forward scatter spreads each node's (locally smoothed) area over the
// bins it overlaps; the backward gather accumulates the per-bin electric
// field back onto each node. Two work-distribution strategies mirror the
// paper's GPU comparison:
//  * kNaive  — one task per cell in index order (the DAC'19 baseline),
//  * kSorted — cells sorted by area so adjacent tasks have similar cost
//    (the warp-balancing trick), optionally splitting each cell into
//    k x k sub-rectangles processed as independent tasks (the
//    "multiple threads per cell" ablation of Fig. 6).
#pragma once

#include <span>
#include <vector>

#include "common/memory.h"
#include "common/types.h"
#include "db/database.h"

namespace dreamplace {

/// Uniform bin grid over the placement region.
template <typename T>
struct DensityGrid {
  int mx = 0;  ///< Bins along x.
  int my = 0;  ///< Bins along y.
  T xl = 0, yl = 0;
  T binW = 0, binH = 0;

  T binArea() const { return binW * binH; }
};

/// Chooses a power-of-two grid with roughly one bin per few cells, clamped
/// to [minBins, maxBins] per side (the paper uses 512..4096 per side for
/// 0.2M..10M cell designs).
template <typename T>
DensityGrid<T> makeGrid(const Box<Coord>& region, Index numCells,
                        int minBins = 16, int maxBins = 4096);

enum class DensityKernel { kNaive, kSorted };

template <typename T>
class DensityMapBuilder {
 public:
  struct Options {
    DensityKernel kernel = DensityKernel::kSorted;
    int subdivision = 2;  ///< k x k sub-rectangles per cell (Fig. 6; >= 1).
  };

  /// `widths`/`heights` cover all nodes (movable cells then fillers).
  DensityMapBuilder(const DensityGrid<T>& grid, std::vector<T> widths,
                    std::vector<T> heights, Options options = {});

  const DensityGrid<T>& grid() const { return grid_; }
  Index numNodes() const { return static_cast<Index>(widths_.size()); }

  /// Scatters nodes [begin, end) into `map` (size mx*my, row-major with
  /// dim0 = x). Adds on top of existing content in density units
  /// (area / bin area).
  ///
  /// Parallelized with a fixed number of slices (scatterSlices, a
  /// function of the node count and grid only — never the thread count):
  /// each slice accumulates a private partial map over a strided subset
  /// of the processing order, then the partials are combined per bin in
  /// slice order. Results are therefore bit-identical for any thread
  /// count. Uses mutable slice scratch: not safe to call concurrently on
  /// the same builder.
  void scatter(const T* x, const T* y, Index begin, Index end,
               std::vector<T>& map) const;

  /// Gathers field onto node gradients:
  ///   gx[i] -= sum_b q_ib * fieldX_b / binArea / binW   (and same for y),
  /// i.e. the electric force with the sign of a density-penalty gradient.
  void gatherForce(const T* x, const T* y, std::span<const T> fieldX,
                   std::span<const T> fieldY, T* gx, T* gy) const;

  /// Smoothed width/height and charge scale of a node.
  T effectiveWidth(Index node) const { return eff_w_[node]; }
  T effectiveHeight(Index node) const { return eff_h_[node]; }
  T chargeScale(Index node) const { return scale_[node]; }

 private:
  /// Decomposes a node's overlap with the bin grid into contiguous
  /// y-strips: visit(bx, by0, by1, ox, yl, yh) once per bin column the
  /// node (sub-rectangle) overlaps, where ox is the x overlap with
  /// column bx and [yl, yh) the sub-rectangle's y extent. The per-bin y
  /// overlaps are then lane math on consecutive bins (common/simd.h),
  /// and the bin-index searches use the precomputed 1/binW, 1/binH
  /// instead of dividing per sub-rectangle.
  template <typename Visit>
  void forEachOverlapStrip(const T* x, const T* y, Index node,
                           Visit visit) const;
  /// Slice count for the parallel scatter: 1 for small designs, else up
  /// to 8, reduced when the per-slice partial map would blow the scratch
  /// budget on huge grids. Depends only on (node count, grid, T).
  int scatterSlices() const;

  DensityGrid<T> grid_;
  // Hoisted reciprocals: the per-sub-rectangle bin-index math multiplies
  // instead of dividing (division is ~20x the latency of multiply and
  // not pipelined).
  T inv_bin_w_ = 0;
  T inv_bin_h_ = 0;
  T inv_bin_area_ = 0;
  std::vector<T> widths_;
  std::vector<T> heights_;
  std::vector<T> eff_w_;   ///< Smoothed width (>= sqrt(2) * binW).
  std::vector<T> eff_h_;
  std::vector<T> scale_;   ///< area / (eff_w * eff_h), preserves charge.
  std::vector<Index> order_;  ///< Processing order (sorted by area if kSorted).
  Options options_;
  // Per-slice partial density maps for the deterministic parallel
  // scatter; lazily sized on first use (scatter() stays const).
  mutable std::vector<T> slice_scratch_;
  mutable TrackedBytes mem_slices_{"ops/density/scatter_slices"};
};

/// Builds the static density contribution of fixed cells (clipped to the
/// region, no smoothing) in density units.
template <typename T>
std::vector<T> buildFixedDensityMap(const Database& db,
                                    const DensityGrid<T>& grid);

/// Density overflow (paper's stopping metric):
///   sum_b max(0, movable_b - target * free_b) / total movable area,
/// where movable_b is the movable-cell area in bin b and free_b the bin
/// area not covered by fixed cells.
template <typename T>
double densityOverflow(std::span<const T> movableMap,
                       std::span<const T> fixedMap,
                       const DensityGrid<T>& grid, double targetDensity,
                       double totalMovableArea);

}  // namespace dreamplace
