// Synthetic netlist generator.
//
// Stands in for the ISPD 2005 / DAC 2012 contest benchmark files, which are
// not available in this environment. The generator reproduces the structural
// statistics that drive placement behaviour:
//  * net degree distribution matching published contest statistics
//    (dominated by 2-3 pin nets with a thin high-fanout tail),
//  * Rent's-rule-style locality via hierarchical clustering (nets
//    preferentially connect cells that are close in a recursive-bisection
//    hierarchy),
//  * realistic cell width distribution, fixed IO pads on the periphery,
//    optional fixed macro blocks (industrial suite),
//  * a die sized for a target utilization.
//
// Output is a regular Database; writeBookshelf() can persist it so the
// files are interchangeable with real contest data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "db/database.h"

namespace dreamplace {

struct GeneratorConfig {
  std::string designName = "synthetic";
  Index numCells = 1000;       ///< Movable standard cells.
  Index numNets = 0;           ///< 0 => ~1.03 * numCells (contest-typical).
  double utilization = 0.70;   ///< movable area / (die - fixed) area.
  Index numPads = 64;          ///< Fixed IO pads on the periphery.
  Index numMacros = 0;         ///< Fixed macro blocks inside the die.
  Index numMovableMacros = 0;  ///< Movable macros (mixed-size placement),
                               ///< 2-6 rows tall, placed by the flow.
  double macroAreaFraction = 0.15;  ///< Die fraction covered by macros.
  double rentLocality = 0.75;  ///< Probability mass that stays local per
                               ///< hierarchy level; higher = more local nets.
  std::uint64_t seed = 1;
  Coord rowHeight = 12;
  Coord siteWidth = 1;
};

/// Generates a finalized database per `config`.
std::unique_ptr<Database> generateNetlist(const GeneratorConfig& config);

}  // namespace dreamplace
