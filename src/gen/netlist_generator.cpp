#include "gen/netlist_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/log.h"
#include "common/rng.h"

namespace dreamplace {

namespace {

/// Net degree distribution modeled on ISPD 2005 statistics: ~90% of nets
/// have degree <= 4, with a thin high-fanout tail (clock/reset-like nets).
Index sampleNetDegree(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.55) return 2;
  if (u < 0.74) return 3;
  if (u < 0.84) return 4;
  if (u < 0.90) return 5;
  if (u < 0.94) return 6;
  if (u < 0.97) return 7 + static_cast<Index>(rng.uniformInt(4));   // 7-10
  if (u < 0.995) return 11 + static_cast<Index>(rng.uniformInt(10)); // 11-20
  return 24 + static_cast<Index>(rng.uniformInt(41));                // 24-64
}

/// Standard-cell width in sites: mostly small cells, occasionally wide ones
/// (multi-bit registers, large drivers).
Coord sampleCellWidth(Rng& rng, Coord siteWidth) {
  const double u = rng.uniform();
  Index sites = 0;
  if (u < 0.45) {
    sites = 3 + static_cast<Index>(rng.uniformInt(3));    // 3-5
  } else if (u < 0.80) {
    sites = 6 + static_cast<Index>(rng.uniformInt(5));    // 6-10
  } else if (u < 0.97) {
    sites = 11 + static_cast<Index>(rng.uniformInt(10));  // 11-20
  } else {
    sites = 21 + static_cast<Index>(rng.uniformInt(30));  // 21-50
  }
  return sites * siteWidth;
}

}  // namespace

std::unique_ptr<Database> generateNetlist(const GeneratorConfig& config) {
  DP_ASSERT(config.numCells >= 2);
  Rng rng(config.seed, /*stream=*/0x9e3779b97f4a7c15ULL);
  auto db = std::make_unique<Database>();

  // --- Movable cells ------------------------------------------------------
  const Index n = config.numCells;
  Coord movable_area = 0;
  for (Index i = 0; i < n; ++i) {
    const Coord w = sampleCellWidth(rng, config.siteWidth);
    db->addCell("o" + std::to_string(i), w, config.rowHeight,
                /*movable=*/true);
    movable_area += w * config.rowHeight;
  }
  // Movable macros (mixed-size placement): 2-6 rows tall, width in whole
  // sites. They participate in GP like any cell and are legalized by the
  // MacroLegalizer before standard-cell legalization.
  std::vector<Index> movable_macro_ids;
  for (Index m = 0; m < config.numMovableMacros; ++m) {
    const Coord h = (2 + static_cast<Index>(rng.uniformInt(5))) *
                    config.rowHeight;
    const Coord w = std::floor(rng.uniform(2.0, 6.0) * h /
                               config.siteWidth) * config.siteWidth /
                    (h / config.rowHeight);
    const Coord width = std::max<Coord>(
        8 * config.siteWidth,
        std::floor(w / config.siteWidth) * config.siteWidth);
    const Index id = db->addCell("mm" + std::to_string(m), width, h,
                                 /*movable=*/true);
    movable_macro_ids.push_back(id);
    movable_area += width * h;
  }

  // --- Die sizing ----------------------------------------------------------
  // Core area so that movable cells reach the target utilization of the
  // whitespace left after macros.
  const double macro_frac = config.numMacros > 0 ? config.macroAreaFraction : 0.0;
  const double core_area =
      movable_area / (config.utilization * (1.0 - macro_frac));
  // Square-ish die, snapped to whole rows and sites.
  const auto num_rows = static_cast<Index>(
      std::ceil(std::sqrt(core_area) / config.rowHeight));
  const Coord die_height = num_rows * config.rowHeight;
  const auto num_sites =
      static_cast<Index>(std::ceil(core_area / die_height / config.siteWidth));
  const Coord die_width = num_sites * config.siteWidth;
  db->setDieArea({0, 0, die_width, die_height});
  for (Index r = 0; r < num_rows; ++r) {
    Row row;
    row.y = r * config.rowHeight;
    row.height = config.rowHeight;
    row.xl = 0;
    row.xh = die_width;
    row.siteWidth = config.siteWidth;
    db->addRow(row);
  }

  // --- Fixed macros ---------------------------------------------------------
  // Random non-overlapping square-ish blocks snapped to rows/sites; placed
  // greedily with rejection. Their area is excluded from whitespace.
  std::vector<Box<Coord>> macro_boxes;
  std::vector<Index> macro_ids;
  if (config.numMacros > 0) {
    const double each_area = core_area * macro_frac / config.numMacros;
    for (Index m = 0; m < config.numMacros; ++m) {
      const double aspect = rng.uniform(0.6, 1.6);
      Coord h = std::sqrt(each_area * aspect);
      h = std::max<Coord>(config.rowHeight * 2,
                          std::round(h / config.rowHeight) * config.rowHeight);
      Coord w = std::max<Coord>(
          config.siteWidth * 4,
          std::round(each_area / h / config.siteWidth) * config.siteWidth);
      bool placed = false;
      for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
        const Coord x = std::floor(rng.uniform(0, die_width - w) /
                                   config.siteWidth) * config.siteWidth;
        const Coord y = std::floor(rng.uniform(0, die_height - h) /
                                   config.rowHeight) * config.rowHeight;
        const Box<Coord> box{x, y, x + w, y + h};
        bool overlap = false;
        for (const auto& other : macro_boxes) {
          // Keep a one-row halo between macros so cells can flow between.
          Box<Coord> inflated{other.xl - 4 * config.siteWidth,
                              other.yl - config.rowHeight,
                              other.xh + 4 * config.siteWidth,
                              other.yh + config.rowHeight};
          if (inflated.overlaps(box)) {
            overlap = true;
            break;
          }
        }
        if (!overlap) {
          const Index id = db->addCell("m" + std::to_string(m), w, h,
                                       /*movable=*/false);
          db->setCellPosition(id, x, y);
          macro_boxes.push_back(box);
          macro_ids.push_back(id);
          placed = true;
        }
      }
      if (!placed) {
        logWarn("generator: could not place macro %d; skipping", m);
      }
    }
  }

  // --- IO pads ---------------------------------------------------------------
  // Fixed unit-size pads evenly distributed around the periphery, alternating
  // over the four edges.
  std::vector<Index> pad_ids;
  for (Index p = 0; p < config.numPads; ++p) {
    const Index id = db->addCell("p" + std::to_string(p), config.siteWidth,
                                 config.rowHeight, /*movable=*/false);
    const double t = (p / 4 + 0.5) / std::max<Index>(1, config.numPads / 4);
    Coord x = 0;
    Coord y = 0;
    switch (p % 4) {
      case 0:  // bottom edge
        x = t * (die_width - config.siteWidth);
        y = 0;
        break;
      case 1:  // top edge
        x = t * (die_width - config.siteWidth);
        y = die_height - config.rowHeight;
        break;
      case 2:  // left edge
        x = 0;
        y = std::floor(t * (num_rows - 1)) * config.rowHeight;
        break;
      default:  // right edge
        x = die_width - config.siteWidth;
        y = std::floor(t * (num_rows - 1)) * config.rowHeight;
        break;
    }
    x = std::floor(x / config.siteWidth) * config.siteWidth;
    db->setCellPosition(id, x, y);
    pad_ids.push_back(id);
  }

  // --- Nets with hierarchical locality -----------------------------------------
  // Cells are leaves of an implicit balanced binary hierarchy over their
  // index range (a stand-in for the recursive-bisection structure of real
  // netlists). A net picks a hierarchy level: with probability
  // `rentLocality` it stays at the current (smaller) subtree, otherwise it
  // moves up one level. Members are sampled within the chosen range.
  const Index num_nets =
      config.numNets > 0
          ? config.numNets
          : static_cast<Index>(std::llround(1.03 * static_cast<double>(n)));

  // Random permutation so hierarchy ranges are uncorrelated with cell sizes.
  std::vector<Index> perm(n);
  for (Index i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (Index i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.uniformInt(static_cast<std::uint32_t>(i + 1))]);
  }

  std::unordered_set<Index> members;
  for (Index e = 0; e < num_nets; ++e) {
    Index degree = sampleNetDegree(rng);
    // Choose a subtree: start from a window of 16 leaves around a random
    // anchor and grow it until the locality coin says stop or it spans all.
    Index window = std::max<Index>(16, degree * 2);
    while (window < n && rng.uniform() > config.rentLocality) {
      window *= 2;
    }
    window = std::min(window, n);
    const Index base =
        window >= n ? 0
                    : static_cast<Index>(rng.uniformInt(
                          static_cast<std::uint32_t>(n - window)));
    degree = std::min(degree, window);

    members.clear();
    while (static_cast<Index>(members.size()) < degree) {
      members.insert(perm[base + static_cast<Index>(rng.uniformInt(
                               static_cast<std::uint32_t>(window)))]);
    }

    const Index net = db->addNet("n" + std::to_string(e));
    for (Index cell : members) {
      // Pin offset uniform inside the cell, relative to center.
      const Coord w = db->cellWidth(cell);
      const Coord h = db->cellHeight(cell);
      db->addPin(net, cell, rng.uniform(-0.45, 0.45) * w,
                 rng.uniform(-0.45, 0.45) * h);
    }
    // ~4% of nets also connect to an IO pad; ~1% to a macro pin.
    if (!pad_ids.empty() && rng.uniform() < 0.04) {
      const Index pad =
          pad_ids[rng.uniformInt(static_cast<std::uint32_t>(pad_ids.size()))];
      db->addPin(net, pad, 0, 0);
    } else if (!macro_ids.empty() && rng.uniform() < 0.01) {
      const Index mac =
          macro_ids[rng.uniformInt(static_cast<std::uint32_t>(macro_ids.size()))];
      db->addPin(net, mac, rng.uniform(-0.45, 0.45) * db->cellWidth(mac),
                 rng.uniform(-0.45, 0.45) * db->cellHeight(mac));
    }
  }

  // A few extra nets tie each movable macro into the netlist.
  for (Index mac : movable_macro_ids) {
    const int fanout = 3 + static_cast<int>(rng.uniformInt(4));
    for (int f = 0; f < fanout; ++f) {
      const Index net = db->addNet(
          "nm" + std::to_string(mac) + "_" + std::to_string(f));
      db->addPin(net, mac, rng.uniform(-0.45, 0.45) * db->cellWidth(mac),
                 rng.uniform(-0.45, 0.45) * db->cellHeight(mac));
      const int degree = 2 + static_cast<int>(rng.uniformInt(3));
      for (int d = 0; d < degree; ++d) {
        const Index cell =
            static_cast<Index>(rng.uniformInt(static_cast<std::uint32_t>(n)));
        db->addPin(net, cell, rng.uniform(-0.45, 0.45) * db->cellWidth(cell),
                   rng.uniform(-0.45, 0.45) * db->cellHeight(cell));
      }
    }
  }

  // Random initial positions inside the die (the GP re-initializes anyway,
  // but the database should always hold a meaningful placement).
  for (Index i = 0; i < n; ++i) {
    const Coord x = rng.uniform(0, die_width - db->cellWidth(i));
    const Coord y = std::floor(rng.uniform(0, num_rows)) * config.rowHeight;
    db->setCellPosition(i, x, y);
  }
  for (Index mac : movable_macro_ids) {
    db->setCellPosition(
        mac, rng.uniform(0, die_width - db->cellWidth(mac)),
        rng.uniform(0, die_height - db->cellHeight(mac)));
  }

  db->finalize();
  logInfo("generator: %s => %d cells (%d movable), %d nets, %d pins, "
          "die %.0fx%.0f util %.2f",
          config.designName.c_str(), db->numCells(), db->numMovable(),
          db->numNets(), db->numPins(), die_width, die_height,
          db->utilization());
  return db;
}

}  // namespace dreamplace
