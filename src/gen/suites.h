// Benchmark suite presets mirroring the paper's three evaluation suites.
//
// Cell/net counts are the paper's (Tables II, III, V) scaled down by a
// configurable factor (default 1/100) so the whole evaluation fits a
// single-core machine; the *relative* sizes across designs are preserved,
// which is what the runtime-scaling claims depend on.
#pragma once

#include <string>
#include <vector>

#include "gen/netlist_generator.h"

namespace dreamplace {

struct SuiteEntry {
  std::string name;
  GeneratorConfig config;
  double paperCellsK = 0;  ///< Paper's cell count in thousands (for tables).
};

/// ISPD 2005 contest suite stand-in (Table II): adaptec1-4, bigblue1-4.
std::vector<SuiteEntry> ispd2005Suite(double scale = 0.01);

/// Industrial suite stand-in (Table III): design1-6 with fixed macros;
/// design6 is the 10.5M-cell scalability stressor.
std::vector<SuiteEntry> industrialSuite(double scale = 0.01);

/// DAC 2012 routability suite stand-in (Table V): superblue-like designs
/// with lower utilization (routability headroom).
std::vector<SuiteEntry> dac2012Suite(double scale = 0.01);

/// Finds an entry by name across all three suites; throws if absent.
SuiteEntry findSuiteEntry(const std::string& name, double scale = 0.01);

}  // namespace dreamplace
