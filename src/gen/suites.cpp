#include "gen/suites.h"

#include <cmath>
#include <stdexcept>

namespace dreamplace {

namespace {

SuiteEntry makeEntry(const std::string& name, double cellsK, double netsK,
                     double scale, double utilization, Index macros,
                     std::uint64_t seed) {
  SuiteEntry entry;
  entry.name = name;
  entry.paperCellsK = cellsK;
  GeneratorConfig& cfg = entry.config;
  cfg.designName = name;
  cfg.numCells = std::max<Index>(
      200, static_cast<Index>(std::llround(cellsK * 1000.0 * scale)));
  cfg.numNets = std::max<Index>(
      200, static_cast<Index>(std::llround(netsK * 1000.0 * scale)));
  cfg.utilization = utilization;
  cfg.numMacros = macros;
  cfg.numPads = std::max<Index>(32, cfg.numCells / 200);
  cfg.seed = seed;
  return entry;
}

}  // namespace

std::vector<SuiteEntry> ispd2005Suite(double scale) {
  // Paper Table II counts (thousands of cells / nets).
  return {
      makeEntry("adaptec1", 211, 221, scale, 0.75, 0, 11),
      makeEntry("adaptec2", 255, 266, scale, 0.75, 0, 12),
      makeEntry("adaptec3", 452, 467, scale, 0.70, 0, 13),
      makeEntry("adaptec4", 496, 516, scale, 0.70, 0, 14),
      makeEntry("bigblue1", 278, 284, scale, 0.75, 0, 15),
      makeEntry("bigblue2", 558, 577, scale, 0.70, 0, 16),
      makeEntry("bigblue3", 1097, 1123, scale, 0.70, 0, 17),
      makeEntry("bigblue4", 2177, 2230, scale, 0.65, 0, 18),
  };
}

std::vector<SuiteEntry> industrialSuite(double scale) {
  // Paper Table III counts; industrial designs carry fixed macros.
  return {
      makeEntry("design1", 1345, 1389, scale, 0.72, 6, 21),
      makeEntry("design2", 1306, 1355, scale, 0.72, 6, 22),
      makeEntry("design3", 2265, 2276, scale, 0.70, 8, 23),
      makeEntry("design4", 1525, 1528, scale, 0.72, 6, 24),
      makeEntry("design5", 1316, 1364, scale, 0.72, 6, 25),
      makeEntry("design6", 10504, 10747, scale, 0.68, 12, 26),
  };
}

std::vector<SuiteEntry> dac2012Suite(double scale) {
  // Paper Table V counts (#nodes includes terminals; we use them as cell
  // counts). Routability designs run at lower utilization.
  return {
      makeEntry("SB2", 1014, 991, scale, 0.55, 4, 31),
      makeEntry("SB3", 920, 898, scale, 0.55, 4, 32),
      makeEntry("SB6", 1014, 1007, scale, 0.55, 4, 33),
      makeEntry("SB7", 1365, 1340, scale, 0.55, 4, 34),
      makeEntry("SB9", 847, 834, scale, 0.55, 4, 35),
      makeEntry("SB11", 955, 936, scale, 0.55, 4, 36),
      makeEntry("SB12", 1293, 1293, scale, 0.55, 4, 37),
      makeEntry("SB14", 635, 620, scale, 0.55, 4, 38),
      makeEntry("SB16", 699, 697, scale, 0.55, 4, 39),
      makeEntry("SB19", 523, 512, scale, 0.55, 4, 40),
  };
}

SuiteEntry findSuiteEntry(const std::string& name, double scale) {
  for (auto suite : {ispd2005Suite(scale), industrialSuite(scale),
                     dac2012Suite(scale)}) {
    for (auto& entry : suite) {
      if (entry.name == name) {
        return entry;
      }
    }
  }
  throw std::runtime_error("unknown suite entry: " + name);
}

}  // namespace dreamplace
