#include "place/report_check.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "place/engine.h"

namespace dreamplace {

namespace {

/// Recursive-descent JSON parser that records leaves under dotted paths.
class FlatParser {
 public:
  FlatParser(const std::string& text, FlatJson& out)
      : text_(text), out_(out) {}

  bool run(std::string* error) {
    skipWs();
    if (!parseValue("")) {
      if (error != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", error_.c_str(),
                      pos_);
        *error = buf;
      }
      return false;
    }
    skipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters after document";
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "." + key;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) {
      return fail("expected '\"'");
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Keep the checker dependency-free: non-ASCII escapes become '?'.
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          pos_ += 4;
          out += '?';
          break;
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(const std::string& path) {
    skipWs();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return parseObject(path);
    }
    if (c == '[') {
      return parseArray(path);
    }
    if (c == '"') {
      std::string s;
      if (!parseString(s)) {
        return false;
      }
      out_.strings[path] = s;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "true", 4) == 0) {
      pos_ += 4;
      out_.numbers[path] = 1.0;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "false", 5) == 0) {
      pos_ += 5;
      out_.numbers[path] = 0.0;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "null", 4) == 0) {
      pos_ += 4;  // null leaves are skipped (NaN/Inf placeholders)
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) {
      return fail("expected value");
    }
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    out_.numbers[path] = v;
    return true;
  }

  bool parseObject(const std::string& path) {
    consume('{');
    skipWs();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) {
        return false;
      }
      skipWs();
      if (!consume(':')) {
        return fail("expected ':'");
      }
      if (!parseValue(join(path, key))) {
        return false;
      }
      skipWs();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(const std::string& path) {
    consume('[');
    skipWs();
    if (consume(']')) {
      return true;
    }
    int index = 0;
    while (true) {
      if (!parseValue(join(path, std::to_string(index++)))) {
        return false;
      }
      skipWs();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  FlatJson& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string formatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

bool parseJsonFlat(const std::string& text, FlatJson& out,
                   std::string* error) {
  out = FlatJson{};
  FlatParser parser(text, out);
  return parser.run(error);
}

bool checkReport(const FlatJson& report, const FlatJson& baseline,
                 std::vector<CheckResult>& results, std::string* error) {
  results.clear();
  const auto baselineString = [&baseline](const std::string& path) {
    const auto it = baseline.strings.find(path);
    return it == baseline.strings.end() ? std::string() : it->second;
  };

  int count = 0;
  for (int i = 0;; ++i) {
    const std::string prefix = "checks." + std::to_string(i) + ".";
    const std::string path = baselineString(prefix + "path");
    if (path.empty()) {
      break;
    }
    ++count;
    const std::string op = baselineString(prefix + "op");
    const std::string other = baselineString(prefix + "other");

    CheckResult result;
    const bool pathOp = op.size() > 5 && op.compare(op.size() - 5, 5,
                                                    "_path") == 0;
    // Expected side: literal "value" or the report value at "other".
    double expected = 0.0;
    bool expectedOk = true;
    if (pathOp) {
      if (other.empty()) {
        if (error != nullptr) {
          *error = "check " + std::to_string(i) + ": op '" + op +
                   "' needs \"other\"";
        }
        return false;
      }
      result.description = path + " " + op.substr(0, op.size() - 5) + " " +
                           other;
      const auto it = report.numbers.find(other);
      if (it == report.numbers.end()) {
        result.detail = "report has no numeric value at '" + other + "'";
        expectedOk = false;
      } else {
        expected = it->second;
      }
    } else {
      const auto it = baseline.numbers.find(prefix + "value");
      if (it == baseline.numbers.end()) {
        if (error != nullptr) {
          *error = "check " + std::to_string(i) + ": op '" + op +
                   "' needs \"value\"";
        }
        return false;
      }
      expected = it->second;
      result.description = path + " " + op + " " + formatNumber(expected);
    }

    const std::string baseOp = pathOp ? op.substr(0, op.size() - 5) : op;
    if (baseOp != "eq" && baseOp != "le" && baseOp != "ge") {
      if (error != nullptr) {
        *error = "check " + std::to_string(i) + ": unknown op '" + op + "'";
      }
      return false;
    }

    // "missing_ok": true passes an absent report path — counters are
    // registered lazily, so "this never happened" (or "this feature was
    // off") shows up as no entry; the check constrains the value only
    // when the path exists.
    const auto missingIt = baseline.numbers.find(prefix + "missing_ok");
    const bool missingOk =
        missingIt != baseline.numbers.end() && missingIt->second != 0.0;

    const auto it = report.numbers.find(path);
    const bool present = it != report.numbers.end();
    if (!present && missingOk) {
      result.passed = true;
      result.detail = "path absent, skipped (missing_ok)";
      results.push_back(std::move(result));
      continue;
    }
    if (!present) {
      result.passed = false;
      if (result.detail.empty()) {
        result.detail = "report has no numeric value at '" + path + "'";
      }
    } else if (!expectedOk) {
      result.passed = false;
    } else {
      const double actual = it->second;
      if (baseOp == "eq") {
        result.passed = actual == expected;
      } else if (baseOp == "le") {
        result.passed = actual <= expected;
      } else {
        result.passed = actual >= expected;
      }
      result.detail = "actual " + formatNumber(actual) + ", expected " +
                      baseOp + " " + formatNumber(expected);
    }
    results.push_back(std::move(result));
  }

  if (count == 0) {
    if (error != nullptr) {
      *error = "baseline contains no checks";
    }
    return false;
  }
  return true;
}

bool isBatchReport(const FlatJson& document) {
  const auto it = document.strings.find("schema");
  return it != document.strings.end() &&
         it->second == "dreamplace.batch_report.v1";
}

namespace {

/// Re-roots "jobs.N.report.*" leaves to "*" for one job of a batch.
FlatJson extractJobReport(const FlatJson& batch, int index) {
  const std::string prefix = "jobs." + std::to_string(index) + ".report.";
  FlatJson report;
  for (const auto& [path, value] : batch.numbers) {
    if (path.compare(0, prefix.size(), prefix) == 0) {
      report.numbers.emplace(path.substr(prefix.size()), value);
    }
  }
  for (const auto& [path, value] : batch.strings) {
    if (path.compare(0, prefix.size(), prefix) == 0) {
      report.strings.emplace(path.substr(prefix.size()), value);
    }
  }
  return report;
}

}  // namespace

bool checkBatchReport(const FlatJson& batch, const FlatJson& baseline,
                      std::vector<BatchJobCheck>& jobs, std::string* error,
                      const BatchCheckOptions& options) {
  jobs.clear();
  const auto batchString = [&batch](const std::string& path) {
    const auto it = batch.strings.find(path);
    return it == batch.strings.end() ? std::string() : it->second;
  };

  for (int i = 0;; ++i) {
    const std::string prefix = "jobs." + std::to_string(i) + ".";
    const std::string status = batchString(prefix + "status");
    if (status.empty()) {
      break;
    }
    BatchJobCheck job;
    job.name = batchString(prefix + "name");
    if (job.name.empty()) {
      job.name = "job" + std::to_string(i);
    }
    job.status = status;
    const auto expected = options.expectedStatus.find(job.name);
    job.expected = expected == options.expectedStatus.end()
                       ? "succeeded"
                       : expected->second;
    job.succeeded = status == job.expected;
    if (status == "succeeded") {
      // Re-root the embedded run report ("jobs.N.report.*" -> "*") and
      // apply the per-run baseline to it unchanged.
      const FlatJson report = extractJobReport(batch, i);
      if (!checkReport(report, baseline, job.results, error)) {
        return false;
      }
    }
    jobs.push_back(std::move(job));
  }

  if (jobs.empty()) {
    if (error != nullptr) {
      *error = "batch report contains no jobs";
    }
    return false;
  }
  return true;
}

bool compareBatchJobsForResume(const FlatJson& batch, const std::string& jobA,
                               const std::string& jobB,
                               std::vector<CheckResult>& results,
                               std::string* error) {
  results.clear();

  const auto findJob = [&batch, error](const std::string& name, int& index) {
    for (int i = 0;; ++i) {
      const std::string prefix = "jobs." + std::to_string(i) + ".";
      const auto nameIt = batch.strings.find(prefix + "name");
      if (nameIt == batch.strings.end()) {
        break;
      }
      if (nameIt->second != name) {
        continue;
      }
      const auto statusIt = batch.strings.find(prefix + "status");
      const std::string status =
          statusIt == batch.strings.end() ? "" : statusIt->second;
      if (status != "succeeded") {
        if (error != nullptr) {
          *error = "job '" + name + "' has status '" + status +
                   "', need succeeded to compare reports";
        }
        return false;
      }
      index = i;
      return true;
    }
    if (error != nullptr) {
      *error = "batch report has no job named '" + name + "'";
    }
    return false;
  };

  int indexA = -1;
  int indexB = -1;
  if (!findJob(jobA, indexA) || !findJob(jobB, indexB)) {
    return false;
  }
  const FlatJson a = extractJobReport(batch, indexA);
  const FlatJson b = extractJobReport(batch, indexB);

  // A path participates when it is the outcome of the flow (result/design)
  // or a resume-comparable counter; wall-time leaves are machine noise and
  // a resumed run's cover only the resumed segment.
  const auto compared = [](const std::string& path) {
    const auto endsWith = [&path](const char* suffix) {
      const std::size_t n = std::strlen(suffix);
      return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
    };
    if (endsWith("_s") || endsWith("_seconds")) {
      return false;
    }
    if (path.compare(0, 7, "result.") == 0 ||
        path.compare(0, 7, "design.") == 0) {
      return true;
    }
    constexpr std::size_t kCountersLen = 9;  // "counters."
    if (path.compare(0, kCountersLen, "counters.") == 0) {
      return !isResumeVariantCounter(
          std::string_view(path).substr(kCountersLen));
    }
    return false;
  };

  int comparedPaths = 0;
  for (const auto& [path, valueA] : a.numbers) {
    if (!compared(path)) {
      continue;
    }
    ++comparedPaths;
    CheckResult result;
    result.description = path + " identical across " + jobA + "/" + jobB;
    const auto it = b.numbers.find(path);
    if (it == b.numbers.end()) {
      result.passed = false;
      result.detail = "present in '" + jobA + "' but missing from '" + jobB +
                      "'";
    } else {
      // Bit-identical resume is the contract: exact equality, no epsilon.
      result.passed = valueA == it->second;
      result.detail = jobA + " " + formatNumber(valueA) + ", " + jobB + " " +
                      formatNumber(it->second);
    }
    results.push_back(std::move(result));
  }
  for (const auto& [path, valueB] : b.numbers) {
    if (!compared(path) || a.numbers.find(path) != a.numbers.end()) {
      continue;
    }
    ++comparedPaths;
    CheckResult result;
    result.description = path + " identical across " + jobA + "/" + jobB;
    result.passed = false;
    result.detail = "present in '" + jobB + "' but missing from '" + jobA +
                    "'";
    results.push_back(std::move(result));
  }

  if (comparedPaths == 0) {
    if (error != nullptr) {
      *error = "jobs '" + jobA + "' and '" + jobB +
               "' have no comparable report paths";
    }
    return false;
  }
  return true;
}

}  // namespace dreamplace
