// Flow run report: one machine-readable document per placeDesign() call.
//
// The paper's evaluation tables are runtime/quality *reports* (per-stage
// GP/LG/DP/IO columns, per-kernel breakdowns, convergence summaries).
// RunReport assembles the same facts from the live registries — timing
// (with self-time and call counts), counters, memory attribution, GP
// telemetry summaries — plus design/config metadata, and renders them as
// one JSON document and/or a human-readable text summary.
//
// Timing and counter sections come from the flow's own FlowContext
// registries, which start empty when the flow starts — so a process that
// runs several flows (benches, sweeps, engine batches) reports exact
// per-run numbers with no delta arithmetic and no cross-flow leakage.
// Memory merges the default context's tracker (pre-flow attributions such
// as the database, loaded before placeDesign) with the flow's own; the IO
// stage likewise folds in pre-flow "io/" scopes.
//
// The JSON schema is pinned by tests/report_test.cpp and consumed by
// tools/check_report.cpp, the count-based CI regression gate (see
// tools/report_baseline.json and docs/OBSERVABILITY.md).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/memory.h"
#include "common/timer.h"
#include "db/database.h"
#include "gp/telemetry.h"
#include "place/placer.h"

namespace dreamplace {

/// Everything one flow run exposes, ready to render.
struct RunReport {
  static constexpr const char* kSchema = "dreamplace.run_report.v1";

  std::string label;

  // Design facts.
  Index numCells = 0;
  Index numMovable = 0;
  Index numNets = 0;
  Index numPins = 0;
  double utilization = 0.0;

  // Configuration (names, not enum ordinals, so reports stay diffable
  // across enum reorderings).
  std::string precision;
  std::string solver;
  std::string wirelengthModel;
  std::string wirelengthKernel;
  std::string densityKernel;
  std::string dctAlgorithm;
  std::string initialPlacement;
  double targetDensity = 0.0;
  double stopOverflow = 0.0;
  int maxIterations = 0;
  int binsMax = 0;
  bool routability = false;
  bool detailedPlacement = true;
  /// PlacerOptions::toJson() of the producing run, spliced verbatim under
  /// "config.options" — the complete configuration, not just the summary
  /// fields above. Empty = omitted (hand-built reports in tests).
  std::string optionsJson;

  // Outcome + stage breakdown.
  FlowResult result;
  double ioSeconds = 0.0;  ///< Absolute "io/" prefix (read/write scopes).

  // GP convergence, one entry per GP run (restarts included).
  std::vector<TelemetryRunSummary> gpRuns;

  // Parallel runtime (common/parallel.h): configured thread count plus
  // the pool's busy/capacity time over this run (deltas). utilization =
  // busy / capacity, 0 when the pool did no parallel work.
  int threads = 0;
  double poolBusySeconds = 0.0;
  double poolCapacitySeconds = 0.0;
  double poolUtilization = 0.0;

  // SIMD kernel layer (common/simd.h): whether the HwVec kernels were
  // compiled in, which ISA they target, and the native lane widths —
  // build facts, filled from the simd layer's constants.
  bool simdEnabled = false;
  std::string simdIsa;
  int simdWidthF32 = 1;
  int simdWidthF64 = 1;

  /// Conditions worth surfacing without digging through counters:
  /// nonzero trace/dropped, watchdog verdicts that raced completion.
  /// Rendered as a JSON "warnings" array and a text section.
  std::vector<std::string> warnings;

  // Registry sections: timing/counters are run deltas, memory is live.
  std::map<std::string, TimingStat> timing;
  std::map<std::string, CounterRegistry::Value> counters;
  std::map<std::string, MemoryTracker::Usage> trackedMemory;
  ProcessMemory processMemory;

  std::string toJson() const;
  std::string toText() const;
};

/// Assembles the report for a finished flow run from `context`, the
/// FlowContext the flow ran under (its registries hold exactly this
/// flow's activity; context.markFlowStart() must have been called at flow
/// start for the pool section). `gpRuns` are the telemetry summaries
/// observed during the run.
RunReport buildRunReport(const Database& db, const PlacerOptions& options,
                         const FlowResult& result,
                         const std::vector<TelemetryRunSummary>& gpRuns,
                         FlowContext& context);

/// Writes the JSON and/or text rendering to the given paths (empty path =
/// skip). Logs a warning and returns false if any write fails, appending
/// "report: cannot write <path>" to `error` (if non-null). placeDesign
/// treats a failed write as a flow failure — a requested export must not
/// silently vanish.
bool writeRunReport(const RunReport& report, const std::string& jsonPath,
                    const std::string& textPath, std::string* error = nullptr);

}  // namespace dreamplace
