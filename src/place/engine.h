// PlacementEngine: a long-lived runner for batches of placement flows.
//
// The paper's evaluation runs many designs through the same flow; doing
// that one process per design wastes the expensive process-level state
// (worker pool threads, cached FFT plans). The engine owns that state
// once and accepts PlacementJobs — a database plus flow-scoped
// PlacerOptions — running up to maxConcurrentJobs of them at a time, each
// under its own FlowContext (place/report.h registries, private trace,
// cooperative deadline), with bounded retry on failure.
//
// Determinism: every job runs on a fresh OS thread, so per-thread scratch
// caches start cold identically whether the batch runs serial or
// concurrent; per-flow registries keep counters/timers isolated; and the
// deterministic parallel runtime (docs/PARALLEL.md) makes kernel results
// independent of which pool threads execute them. Per-job reports are
// therefore bit-identical (float64) between maxConcurrentJobs=1 and
// maxConcurrentJobs=N — except for the order-dependent counters listed in
// isOrderDependentCounter(), which record shared-infrastructure
// attribution (plan-cache insertion order, pool scheduling) rather than
// algorithmic work. docs/ENGINE.md has the full contract.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/counters.h"
#include "place/placer.h"
#include "place/report.h"

namespace dreamplace {

class ThreadPool;

/// Engine/process-scoped settings: everything shared across the jobs of a
/// batch. Flow-scoped settings stay in PlacerOptions.
struct EngineOptions {
  /// Worker threads of the engine-owned pool (shared by all jobs).
  /// 0 = auto (DREAMPLACE_THREADS env var, else hardware concurrency).
  int threads = 0;
  /// Jobs placed concurrently. Each extra lane costs one resident design
  /// (positions, nets, density grids); the worker pool stays one bounded
  /// set regardless.
  int maxConcurrentJobs = 1;
  /// Per-job wall-clock budget, enforced cooperatively at GP-iteration
  /// and flow-stage boundaries. Retries share one budget (the deadline is
  /// fixed before the first attempt). 0 = no timeout.
  double jobTimeoutSeconds = 0.0;
  /// Attempts per job: on a thrown failure the job is retried until this
  /// many attempts were made. Timeouts are never retried. Must be >= 1.
  int maxJobAttempts = 1;
  /// Event capacity of each job's private trace recorder; 0 = default.
  std::size_t traceCapacity = 0;

  /// Throws std::invalid_argument listing every violated constraint.
  void validate() const;
};

/// One unit of work: a design to place and how to place it.
struct PlacementJob {
  /// Placed in-place; must stay alive for the whole batch and must not be
  /// shared between jobs of one batch.
  Database* db = nullptr;
  PlacerOptions options;
  std::string name;  ///< Job label in the BatchReport ("" = index).
  /// Optional hook called at the start of every attempt (1-based) on the
  /// job's thread, before the flow. A throw counts as a failed attempt —
  /// tests use this to inject failures and observe retries.
  std::function<void(int attempt)> attemptHook;
};

enum class JobStatus {
  kSucceeded,  ///< Flow completed; result and report are valid.
  kFailed,     ///< Every attempt threw (last error recorded).
  kTimedOut,   ///< Deadline passed (FlowTimeoutError); not retried.
};

const char* statusName(JobStatus status);

/// Outcome of one job.
struct JobReport {
  std::string name;
  JobStatus status = JobStatus::kFailed;
  int attempts = 0;        ///< Attempts actually made (>= 1).
  std::string error;       ///< Last failure message; empty on success.
  FlowResult result;       ///< Valid only when status == kSucceeded.
  RunReport report;        ///< Valid only when status == kSucceeded.
  double wallSeconds = 0.0;
};

/// Outcome of a whole batch: per-job reports plus aggregate accounting.
struct BatchReport {
  static constexpr const char* kSchema = "dreamplace.batch_report.v1";

  std::string label;
  std::vector<JobReport> jobs;
  double wallSeconds = 0.0;       ///< Batch wall time (concurrent lanes).
  double aggregateSeconds = 0.0;  ///< Sum of per-job wall times.
  int succeeded = 0;
  int failed = 0;
  int timedOut = 0;

  bool allSucceeded() const {
    return failed == 0 && timedOut == 0 &&
           succeeded == static_cast<int>(jobs.size());
  }

  /// One JSON document (schema dreamplace.batch_report.v1): batch counts
  /// and timings plus a "jobs" array embedding each succeeded job's full
  /// RunReport under "report". tools/check_report understands this shape
  /// and applies the per-run baseline to every job.
  std::string toJson() const;
};

/// True for counter keys whose values legitimately differ between serial
/// and concurrent batch runs: they attribute *shared infrastructure*
/// (plan-cache insertions land on whichever flow first needs a plan, pool
/// start/steal/contention depend on scheduling), not algorithmic work.
/// Everything else — op evaluate/solve counts, FFT transform counts,
/// optimizer steps, parallel/jobs and parallel/tasks — is deterministic
/// per flow and safe to compare bit-for-bit.
bool isOrderDependentCounter(std::string_view key);

/// Copy of `counters` with the order-dependent keys removed — the subset
/// a determinism comparison may EXPECT_EQ across concurrency levels.
std::map<std::string, CounterRegistry::Value> deterministicCounters(
    const std::map<std::string, CounterRegistry::Value>& counters);

/// The long-lived engine. Owns its worker pool; safe to run() multiple
/// batches over its lifetime. Not itself thread-safe: drive one engine
/// from one thread (it parallelizes internally).
class PlacementEngine {
 public:
  explicit PlacementEngine(EngineOptions options = {});
  ~PlacementEngine();

  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  /// Runs every job, up to options().maxConcurrentJobs at a time, and
  /// returns the batch outcome. Job order in the result matches the input
  /// order regardless of completion order.
  BatchReport run(std::vector<PlacementJob> jobs);

  const EngineOptions& options() const { return options_; }
  ThreadPool& pool() { return *pool_; }

 private:
  JobReport runJob(PlacementJob& job);

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dreamplace
