// PlacementEngine: a long-lived runner for batches of placement flows.
//
// The paper's evaluation runs many designs through the same flow; doing
// that one process per design wastes the expensive process-level state
// (worker pool threads, cached FFT plans). The engine owns that state
// once and accepts PlacementJobs — a database plus flow-scoped
// PlacerOptions — running up to maxConcurrentJobs of them at a time, each
// under its own FlowContext (place/report.h registries, private trace,
// cooperative deadline), with bounded retry on failure.
//
// Determinism: every job runs on a fresh OS thread, so per-thread scratch
// caches start cold identically whether the batch runs serial or
// concurrent; per-flow registries keep counters/timers isolated; and the
// deterministic parallel runtime (docs/PARALLEL.md) makes kernel results
// independent of which pool threads execute them. Per-job reports are
// therefore bit-identical (float64) between maxConcurrentJobs=1 and
// maxConcurrentJobs=N — except for the order-dependent counters listed in
// isOrderDependentCounter(), which record shared-infrastructure
// attribution (plan-cache insertion order, pool scheduling) rather than
// algorithmic work. docs/ENGINE.md has the full contract.
//
// Health: an optional per-engine monitor thread samples each job's
// heartbeat (common/heartbeat.h) and applies the stall/divergence
// policies in EngineOptions, cancelling sick flows cooperatively via
// FlowContext::requestCancel() — terminal states kDiverged/kStalled,
// never retried. The same thread can periodically render a Prometheus
// metrics file of all active jobs (common/metrics_export.h). Both only
// read flow state, so determinism is unaffected; their bookkeeping
// counters (health/checks, metrics/exports) are wall-clock-dependent and
// listed order-dependent. docs/OBSERVABILITY.md documents the policies.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "place/placer.h"
#include "place/report.h"

namespace dreamplace {

class ThreadPool;

/// Engine/process-scoped settings: everything shared across the jobs of a
/// batch. Flow-scoped settings stay in PlacerOptions.
struct EngineOptions {
  /// Worker threads of the engine-owned pool (shared by all jobs).
  /// 0 = auto (DREAMPLACE_THREADS env var, else hardware concurrency).
  int threads = 0;
  /// Jobs placed concurrently. Each extra lane costs one resident design
  /// (positions, nets, density grids); the worker pool stays one bounded
  /// set regardless.
  int maxConcurrentJobs = 1;
  /// Per-job wall-clock budget, enforced cooperatively at GP-iteration
  /// and flow-stage boundaries. Retries share one budget (the deadline is
  /// fixed before the first attempt). 0 = no timeout.
  double jobTimeoutSeconds = 0.0;
  /// Attempts per job: on a thrown failure the job is retried until this
  /// many attempts were made. Timeouts are never retried. Must be >= 1.
  int maxJobAttempts = 1;
  /// Event capacity of each job's private trace recorder; 0 = default.
  std::size_t traceCapacity = 0;

  // --- Live health & metrics (docs/OBSERVABILITY.md) ----------------------
  /// Stall policy: a job whose heartbeat has not advanced for this many
  /// seconds is cancelled with terminal status `stalled`. Must exceed the
  /// longest heartbeat gap of a healthy flow (LG/DP stages publish only
  /// at their boundaries). 0 disables stall detection.
  double stallSeconds = 0.0;
  /// Divergence policy: a job whose published HPWL exceeds this ratio
  /// times its running-best HPWL for `divergenceSamples` consecutive
  /// watchdog observations of *fresh* GP iterations is cancelled with
  /// terminal status `diverged`. A non-finite HPWL is fatal immediately.
  /// 0 disables the ratio check; otherwise must be > 1.
  double divergenceHpwlRatio = 0.0;
  /// Consecutive over-ratio observations before the diverged verdict; a
  /// healthy sample resets the run. Must be >= 1.
  int divergenceSamples = 3;
  /// Watchdog/metrics sampling period. Must be > 0.
  double watchdogPeriodSeconds = 0.05;
  /// When non-empty, the monitor thread periodically renders a Prometheus
  /// text exposition of every active job (common/metrics_export.h) and
  /// atomically rewrites this file (tmp+rename). run() fails up front if
  /// the path is unwritable.
  std::string metricsFile;
  /// Seconds between metrics-file rewrites. Must be > 0.
  double metricsPeriodSeconds = 1.0;

  /// True when a health policy is configured (monitor thread samples
  /// heartbeats, not just metrics).
  bool watchdogEnabled() const {
    return stallSeconds > 0.0 || divergenceHpwlRatio > 0.0;
  }

  /// Throws std::invalid_argument listing every violated constraint.
  void validate() const;
};

/// One unit of work: a design to place and how to place it.
struct PlacementJob {
  /// Placed in-place; must stay alive for the whole batch and must not be
  /// shared between jobs of one batch.
  Database* db = nullptr;
  PlacerOptions options;
  std::string name;  ///< Job label in the BatchReport ("" = index).
  /// Optional hook called at the start of every attempt (1-based) on the
  /// job's thread, before the flow but with the attempt's FlowContext
  /// already installed — so a hook can poll
  /// FlowContext::current().throwIfInterrupted() and be cancelled by the
  /// watchdog like the flow itself. A throw counts as a failed attempt —
  /// tests use this to inject failures and observe retries.
  std::function<void(int attempt)> attemptHook;
};

enum class JobStatus {
  kSucceeded,  ///< Flow completed; result and report are valid.
  kFailed,     ///< Every attempt threw (last error recorded).
  kTimedOut,   ///< Deadline passed (FlowTimeoutError); not retried.
  kDiverged,   ///< Watchdog divergence verdict (terminal, never retried).
  kStalled,    ///< Watchdog stall verdict (terminal, never retried).
};

const char* statusName(JobStatus status);

/// Watchdog view of one job, accumulated over its attempts. Populated
/// whenever the engine monitor ran for the job (even without a verdict).
struct JobHealth {
  bool watchdogEnabled = false;  ///< A health policy was active.
  std::int64_t checks = 0;       ///< Watchdog samples across all attempts.
  std::string verdict;           ///< "", "diverged" or "stalled".
  std::string detail;            ///< Human-readable policy explanation.
  std::string lastStage;         ///< Flow stage at the last sample.
  int lastIteration = -1;        ///< Last GP iteration observed.
  double lastHpwl = 0.0;
  double bestHpwl = 0.0;
  double lastOverflow = 0.0;
};

/// Outcome of one job.
struct JobReport {
  std::string name;
  JobStatus status = JobStatus::kFailed;
  int attempts = 0;        ///< Attempts actually made (>= 1).
  /// A retry attempt continued from a flow checkpoint instead of
  /// restarting from scratch (requires PlacerOptions::checkpointDir).
  bool resumed = false;
  std::string error;       ///< Last failure message; empty on success.
  FlowResult result;       ///< Valid only when status == kSucceeded.
  RunReport report;        ///< Valid only when status == kSucceeded.
  JobHealth health;        ///< Watchdog view (see JobHealth).
  double wallSeconds = 0.0;
};

/// Outcome of a whole batch: per-job reports plus aggregate accounting.
struct BatchReport {
  static constexpr const char* kSchema = "dreamplace.batch_report.v1";

  std::string label;
  std::vector<JobReport> jobs;
  double wallSeconds = 0.0;       ///< Batch wall time (concurrent lanes).
  double aggregateSeconds = 0.0;  ///< Sum of per-job wall times.
  int succeeded = 0;
  int failed = 0;
  int timedOut = 0;
  int diverged = 0;
  int stalled = 0;

  bool allSucceeded() const {
    return failed == 0 && timedOut == 0 && diverged == 0 && stalled == 0 &&
           succeeded == static_cast<int>(jobs.size());
  }

  /// One JSON document (schema dreamplace.batch_report.v1): batch counts
  /// and timings plus a "jobs" array embedding each succeeded job's full
  /// RunReport under "report". tools/check_report understands this shape
  /// and applies the per-run baseline to every job.
  std::string toJson() const;
};

/// True for counter keys whose values legitimately differ between serial
/// and concurrent batch runs: they attribute *shared infrastructure*
/// (plan-cache insertions land on whichever flow first needs a plan, pool
/// start/steal/contention depend on scheduling), not algorithmic work.
/// Everything else — op evaluate/solve counts, FFT transform counts,
/// optimizer steps, parallel/jobs and parallel/tasks — is deterministic
/// per flow and safe to compare bit-for-bit.
bool isOrderDependentCounter(std::string_view key);

/// Copy of `counters` with the order-dependent keys removed — the subset
/// a determinism comparison may EXPECT_EQ across concurrency levels.
std::map<std::string, CounterRegistry::Value> deterministicCounters(
    const std::map<std::string, CounterRegistry::Value>& counters);

/// True for counter keys whose values legitimately differ between an
/// uninterrupted flow and the same flow interrupted and resumed from a
/// checkpoint: the order-dependent set above, checkpoint bookkeeping
/// itself, and lazy workspace allocation/reuse counters (a resumed
/// segment re-allocates scratch the original run reused). All
/// *algorithmic-work* counters — op evaluations, optimizer steps,
/// parallel/jobs — are resume-invariant and excluded from this set.
bool isResumeVariantCounter(std::string_view key);

/// Copy of `counters` with the resume-variant keys removed — the subset a
/// resume-determinism comparison may EXPECT_EQ against an uninterrupted
/// baseline.
std::map<std::string, CounterRegistry::Value> resumeComparableCounters(
    const std::map<std::string, CounterRegistry::Value>& counters);

/// The long-lived engine. Owns its worker pool; safe to run() multiple
/// batches over its lifetime. Not itself thread-safe: drive one engine
/// from one thread (it parallelizes internally).
class PlacementEngine {
 public:
  explicit PlacementEngine(EngineOptions options = {});
  ~PlacementEngine();

  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  /// Runs every job, up to options().maxConcurrentJobs at a time, and
  /// returns the batch outcome. Job order in the result matches the input
  /// order regardless of completion order.
  BatchReport run(std::vector<PlacementJob> jobs);

  const EngineOptions& options() const { return options_; }
  ThreadPool& pool() { return *pool_; }

 private:
  /// Monitor-side state of one registered (running) flow; see engine.cpp.
  struct FlowWatch;

  JobReport runJob(PlacementJob& job);

  // Monitor thread lifecycle (run()-scoped). All FlowWatch access —
  // including the context pointer a watch holds — happens under
  // monitor_mutex_; runJob() unregisters a watch under the same mutex
  // before its stack-local FlowContext dies.
  bool monitorNeeded() const;
  void startMonitor();
  void stopMonitor();
  void monitorLoop();
  std::shared_ptr<FlowWatch> registerFlow(const std::string& name,
                                          FlowContext* context);
  void unregisterFlow(const std::shared_ptr<FlowWatch>& watch,
                      JobHealth& health);
  void sampleWatch(FlowWatch& watch,
                   std::chrono::steady_clock::time_point now);
  void exportMetricsLocked();

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
  std::vector<std::shared_ptr<FlowWatch>> active_;
  std::thread monitor_;
};

}  // namespace dreamplace
