// Flow checkpoints: versioned binary snapshots of a placement flow.
//
// A checkpoint captures everything a resumed flow needs to continue
// bit-identically (float64) from where the original stopped: the movable
// cell positions, the pipeline stage cursor, the partial FlowResult, the
// flow's counter registry, and — for a checkpoint taken mid-stage — the
// in-progress stage's serialized state (optimizer vectors, density
// weight, EMA, overflow; see GlobalPlacer's resume hooks). Checkpoints
// are written atomically (tmp+rename) at stage boundaries and every
// PlacerOptions::checkpointEveryIterations GP iterations; a flow that
// completes deletes its checkpoint. PlacementEngine's retry loop points
// PlacerOptions::resumeFrom at the file so attempt 2+ continues instead
// of restarting. Format and semantics: docs/FLOW.md.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "place/placer.h"

namespace dreamplace {

struct CheckpointData {
  static constexpr std::uint32_t kMagic = 0x4B435044;  // "DPCK" (LE)
  static constexpr std::uint32_t kVersion = 1;

  std::uint8_t precision = 1;  ///< 0 = float32, 1 = float64.
  /// '|'-joined stage names of the producing pipeline; a resume rejects a
  /// checkpoint whose signature does not match the pipeline it would run.
  std::string signature;
  std::uint32_t stageCursor = 0;  ///< Index of the next stage to run.
  bool midStage = false;  ///< Stage at the cursor is partially done.
  std::string stageState;  ///< Its state blob (empty unless midStage).
  FlowResult result;       ///< Stage results accumulated so far.
  /// Movable-cell lower-left positions at checkpoint time (always f64;
  /// exact for f32 flows too).
  std::vector<double> cellX;
  std::vector<double> cellY;
  /// Flow counter registry snapshot, restored additively so a resumed
  /// flow's work counters continue from the original run's values.
  /// Resume-variant keys (isResumeVariantCounter, place/engine.h) are
  /// skipped on restore and stay per-segment.
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

std::string encodeCheckpoint(const CheckpointData& data);
/// Throws std::runtime_error on a truncated / corrupt / wrong-version
/// document.
CheckpointData decodeCheckpoint(const std::string& bytes);

/// Atomic write (tmp+rename, same idiom as writeMetricsFile). Returns
/// false with a message in `error` on failure.
bool writeCheckpointFile(const std::string& path, const CheckpointData& data,
                         std::string* error = nullptr);
/// Reads and decodes; throws std::runtime_error naming the path on any
/// failure.
CheckpointData loadCheckpointFile(const std::string& path);

/// Resolved checkpoint file path for a flow, "" when checkpointing is off
/// (empty checkpointDir). Uses checkpointName, defaulting to "flow".
std::string checkpointFilePath(const PlacerOptions& options);

}  // namespace dreamplace
