#include "place/net_weighting.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "db/metrics.h"

namespace dreamplace {

double tailNetHpwl(const Database& db, double fraction) {
  std::vector<double> lengths;
  lengths.reserve(db.numNets());
  for (Index e = 0; e < db.numNets(); ++e) {
    if (db.netDegree(e) >= 2) {
      // Unweighted length: the metric must not move when only the weights
      // change.
      lengths.push_back(netHpwl(db, e) / db.netWeight(e));
    }
  }
  if (lengths.empty()) {
    return 0.0;
  }
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(lengths.size() * fraction)));
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += lengths[i];
  }
  return acc / static_cast<double>(count);
}

template <typename T>
NetWeightingResult netWeightingPlace(Database& db,
                                     const NetWeightingOptions& options) {
  NetWeightingResult result;

  std::vector<T> carry_x;
  std::vector<T> carry_y;
  bool have_carry = false;

  for (int round = 0; round <= options.rounds; ++round) {
    GlobalPlacer<T> placer(db, options.gp);
    if (have_carry) {
      placer.setInitialPositions(carry_x, carry_y);
    }
    placer.run();
    carry_x = placer.nodeX();
    carry_y = placer.nodeY();
    have_carry = true;
    result.tailTrace.push_back(tailNetHpwl(db));
    ++result.rounds;
    if (round == options.rounds) {
      break;
    }

    // Re-weight: nets above the HPWL percentile are critical.
    std::vector<double> lengths;
    lengths.reserve(db.numNets());
    for (Index e = 0; e < db.numNets(); ++e) {
      lengths.push_back(db.netDegree(e) >= 2
                            ? netHpwl(db, e) / db.netWeight(e)
                            : 0.0);
    }
    std::vector<double> sorted = lengths;
    std::sort(sorted.begin(), sorted.end());
    const double threshold =
        sorted[static_cast<std::size_t>(options.percentile *
                                        (sorted.size() - 1))];
    Index boosted = 0;
    for (Index e = 0; e < db.numNets(); ++e) {
      if (lengths[e] > threshold && db.netWeight(e) < options.maxWeight) {
        db.setNetWeight(
            e, std::min(db.netWeight(e) * options.boost, options.maxWeight));
        ++boosted;
      }
    }
    logInfo("net weighting: round %d boosted %d nets (threshold %.3e)",
            round, boosted, threshold);
  }

  // Final unweighted metrics.
  double total = 0.0;
  double worst = 0.0;
  for (Index e = 0; e < db.numNets(); ++e) {
    if (db.netDegree(e) < 2) {
      continue;
    }
    const double len = netHpwl(db, e) / db.netWeight(e);
    total += len;
    worst = std::max(worst, len);
  }
  result.hpwl = total;
  result.maxNetHpwl = worst;
  result.tailNetHpwl = tailNetHpwl(db);
  return result;
}

template NetWeightingResult netWeightingPlace<float>(
    Database&, const NetWeightingOptions&);
template NetWeightingResult netWeightingPlace<double>(
    Database&, const NetWeightingOptions&);

}  // namespace dreamplace
