#include "place/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/parallel.h"

namespace dreamplace {

namespace {

const char* precisionName(Precision p) {
  return p == Precision::kFloat32 ? "float32" : "float64";
}

const char* wlModelName(WirelengthModel m) {
  return m == WirelengthModel::kWeightedAverage ? "weighted_average"
                                                : "log_sum_exp";
}

const char* wlKernelName(WirelengthKernel k) {
  switch (k) {
    case WirelengthKernel::kNetByNet: return "net_by_net";
    case WirelengthKernel::kAtomic: return "atomic";
    case WirelengthKernel::kMerged: return "merged";
  }
  return "?";
}

const char* densityKernelName(DensityKernel k) {
  return k == DensityKernel::kNaive ? "naive" : "sorted";
}

const char* dctName(fft::Dct2dAlgorithm a) {
  switch (a) {
    case fft::Dct2dAlgorithm::kRowColNaive: return "rowcol_naive";
    case fft::Dct2dAlgorithm::kRowCol2N: return "rowcol_2n";
    case fft::Dct2dAlgorithm::kRowColN: return "rowcol_n";
    case fft::Dct2dAlgorithm::kFft2dN: return "fft2d_n";
  }
  return "?";
}

const char* initName(InitialPlacement i) {
  return i == InitialPlacement::kRandomCenter ? "random_center" : "spread";
}

// --- Minimal JSON writer ---------------------------------------------------

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null keeps the document valid.
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void appendInt(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// Tiny comma-managing JSON emitter; enough for one flat-ish document.
class Json {
 public:
  std::string out;

  void openObject() { punct('{'); fresh_ = true; }
  void closeObject() { out += '}'; fresh_ = false; }
  void openArray() { punct('['); fresh_ = true; }
  void closeArray() { out += ']'; fresh_ = false; }

  void key(const std::string& k) {
    comma();
    appendEscaped(out, k);
    out += ':';
    fresh_ = true;  // value follows, no comma before it
  }
  void value(const std::string& v) { comma(); appendEscaped(out, v); }
  void value(double v) { comma(); appendNumber(out, v); }
  void value(std::int64_t v) { comma(); appendInt(out, v); }
  void value(int v) { comma(); appendInt(out, v); }
  void value(bool v) { comma(); out += v ? "true" : "false"; }

 private:
  void punct(char c) {
    comma();
    out += c;
  }
  void comma() {
    if (!fresh_) {
      out += ',';
    }
    fresh_ = false;
  }
  bool fresh_ = true;
};

std::string formatBytes(std::int64_t bytes) {
  char buf[32];
  if (bytes >= 1 << 20) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 1 << 10) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " B", bytes);
  }
  return buf;
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

ObservabilitySnapshot ObservabilitySnapshot::capture() {
  ObservabilitySnapshot snap;
  snap.timing = TimingRegistry::instance().statsSnapshot();
  snap.counters = CounterRegistry::instance().snapshot();
  snap.poolBusyMicros = ThreadPool::instance().busyMicros();
  snap.poolCapacityMicros = ThreadPool::instance().capacityMicros();
  return snap;
}

RunReport buildRunReport(const Database& db, const PlacerOptions& options,
                         const FlowResult& result,
                         const std::vector<TelemetryRunSummary>& gpRuns,
                         const ObservabilitySnapshot& before) {
  RunReport report;
  report.label = options.telemetryLabel;

  report.numCells = db.numCells();
  report.numMovable = db.numMovable();
  report.numNets = db.numNets();
  report.numPins = db.numPins();
  report.utilization = static_cast<double>(db.utilization());

  report.precision = precisionName(options.precision);
  report.solver = solverName(options.gp.solver);
  report.wirelengthModel = wlModelName(options.gp.wlModel);
  report.wirelengthKernel = wlKernelName(options.gp.wlKernel);
  report.densityKernel = densityKernelName(options.gp.densityKernel);
  report.dctAlgorithm = dctName(options.gp.dct);
  report.initialPlacement = initName(options.gp.init);
  report.targetDensity = options.gp.targetDensity;
  report.stopOverflow = options.gp.stopOverflow;
  report.maxIterations = options.gp.maxIterations;
  report.binsMax = options.gp.binsMax;
  report.routability = options.routability;
  report.detailedPlacement = options.runDetailedPlacement;

  report.result = result;
  report.ioSeconds = TimingRegistry::instance().totalPrefix("io");
  report.gpRuns = gpRuns;

  ThreadPool& pool = ThreadPool::instance();
  report.threads = pool.threads();
  const std::int64_t busy_us = pool.busyMicros() - before.poolBusyMicros;
  const std::int64_t cap_us = pool.capacityMicros() - before.poolCapacityMicros;
  report.poolBusySeconds = static_cast<double>(busy_us) * 1e-6;
  report.poolCapacitySeconds = static_cast<double>(cap_us) * 1e-6;
  report.poolUtilization =
      cap_us > 0 ? std::clamp(static_cast<double>(busy_us) / cap_us, 0.0, 1.0)
                 : 0.0;

  // Run deltas: subtract the flow-start snapshot, drop empty entries.
  for (auto& [key, stat] : TimingRegistry::instance().statsSnapshot()) {
    TimingStat delta = stat;
    if (const auto it = before.timing.find(key); it != before.timing.end()) {
      delta.count -= it->second.count;
      delta.seconds -= it->second.seconds;
      delta.selfSeconds -= it->second.selfSeconds;
      delta.rootSeconds -= it->second.rootSeconds;
    }
    if (delta.count != 0 || delta.seconds != 0.0) {
      report.timing.emplace(key, delta);
    }
  }
  for (auto& [key, value] : CounterRegistry::instance().snapshot()) {
    CounterRegistry::Value delta = value;
    if (const auto it = before.counters.find(key);
        it != before.counters.end()) {
      delta -= it->second;
    }
    if (delta != 0) {
      report.counters.emplace(key, delta);
    }
  }

  report.trackedMemory = MemoryTracker::instance().snapshot();
  report.processMemory = sampleProcessMemory();
  return report;
}

std::string RunReport::toJson() const {
  Json j;
  j.openObject();
  j.key("schema");
  j.value(std::string(kSchema));
  j.key("label");
  j.value(label);

  j.key("design");
  j.openObject();
  j.key("cells"); j.value(static_cast<std::int64_t>(numCells));
  j.key("movable"); j.value(static_cast<std::int64_t>(numMovable));
  j.key("nets"); j.value(static_cast<std::int64_t>(numNets));
  j.key("pins"); j.value(static_cast<std::int64_t>(numPins));
  j.key("utilization"); j.value(utilization);
  j.closeObject();

  j.key("config");
  j.openObject();
  j.key("precision"); j.value(precision);
  j.key("solver"); j.value(solver);
  j.key("wl_model"); j.value(wirelengthModel);
  j.key("wl_kernel"); j.value(wirelengthKernel);
  j.key("density_kernel"); j.value(densityKernel);
  j.key("dct"); j.value(dctAlgorithm);
  j.key("init"); j.value(initialPlacement);
  j.key("target_density"); j.value(targetDensity);
  j.key("stop_overflow"); j.value(stopOverflow);
  j.key("max_iterations"); j.value(maxIterations);
  j.key("bins_max"); j.value(binsMax);
  j.key("routability"); j.value(routability);
  j.key("detailed_placement"); j.value(detailedPlacement);
  j.closeObject();

  j.key("result");
  j.openObject();
  j.key("hpwl_gp"); j.value(result.hpwlGp);
  j.key("hpwl_legal"); j.value(result.hpwlLegal);
  j.key("hpwl"); j.value(result.hpwl);
  j.key("overflow"); j.value(result.overflow);
  j.key("gp_iterations"); j.value(result.gpIterations);
  j.key("legal"); j.value(result.legal);
  j.closeObject();

  j.key("stages");
  j.openObject();
  j.key("gp_s"); j.value(result.gpSeconds);
  j.key("lg_s"); j.value(result.lgSeconds);
  j.key("dp_s"); j.value(result.dpSeconds);
  j.key("io_s"); j.value(ioSeconds);
  j.key("total_s"); j.value(result.totalSeconds);
  j.closeObject();

  j.key("parallel");
  j.openObject();
  j.key("threads"); j.value(threads);
  j.key("busy_s"); j.value(poolBusySeconds);
  j.key("capacity_s"); j.value(poolCapacitySeconds);
  j.key("utilization"); j.value(poolUtilization);
  j.closeObject();

  j.key("gp_runs");
  j.openArray();
  for (const TelemetryRunSummary& run : gpRuns) {
    j.openObject();
    j.key("iterations"); j.value(run.iterations);
    j.key("hpwl"); j.value(run.hpwl);
    j.key("overflow"); j.value(run.overflow);
    j.key("lambda"); j.value(run.lambda);
    j.key("seconds"); j.value(run.seconds);
    j.closeObject();
  }
  j.closeArray();

  j.key("timing");
  j.openObject();
  for (const auto& [key, stat] : timing) {
    j.key(key);
    j.openObject();
    j.key("count"); j.value(stat.count);
    j.key("incl_s"); j.value(stat.seconds);
    j.key("self_s"); j.value(stat.selfSeconds);
    j.closeObject();
  }
  j.closeObject();

  j.key("counters");
  j.openObject();
  for (const auto& [key, value] : counters) {
    j.key(key);
    j.value(value);
  }
  j.closeObject();

  j.key("memory");
  j.openObject();
  j.key("tracked");
  j.openObject();
  for (const auto& [key, usage] : trackedMemory) {
    j.key(key);
    j.openObject();
    j.key("current_bytes"); j.value(usage.currentBytes);
    j.key("peak_bytes"); j.value(usage.peakBytes);
    j.closeObject();
  }
  j.closeObject();
  j.key("process");
  j.openObject();
  j.key("vm_rss_bytes"); j.value(processMemory.vmRssBytes);
  j.key("vm_hwm_bytes"); j.value(processMemory.vmHwmBytes);
  j.key("valid"); j.value(processMemory.valid);
  j.closeObject();
  j.closeObject();

  j.closeObject();
  j.out += '\n';
  return j.out;
}

std::string RunReport::toText() const {
  std::string out;
  char line[256];
  const auto add = [&out, &line] { out += line; };

  std::snprintf(line, sizeof(line), "=== flow run report%s%s ===\n",
                label.empty() ? "" : ": ", label.c_str());
  add();
  std::snprintf(line, sizeof(line),
                "design: %d cells (%d movable), %d nets, %d pins\n",
                static_cast<int>(numCells), static_cast<int>(numMovable),
                static_cast<int>(numNets), static_cast<int>(numPins));
  add();
  std::snprintf(line, sizeof(line),
                "config: %s, %s solver, wl %s/%s, density %s, dct %s\n",
                precision.c_str(), solver.c_str(), wirelengthModel.c_str(),
                wirelengthKernel.c_str(), densityKernel.c_str(),
                dctAlgorithm.c_str());
  add();
  std::snprintf(line, sizeof(line),
                "result: hpwl %.4e (gp %.4e, legal %.4e), overflow %.4f, "
                "%d GP iterations, %s\n",
                result.hpwl, result.hpwlGp, result.hpwlLegal, result.overflow,
                result.gpIterations, result.legal ? "legal" : "NOT LEGAL");
  add();

  out += "\nstages:\n";
  const double total = std::max(result.totalSeconds, 1e-12);
  const auto stage = [&](const char* name, double s) {
    std::snprintf(line, sizeof(line), "  %-6s %9.3fs %6.1f%%\n", name, s,
                  100.0 * s / total);
    add();
  };
  stage("gp", result.gpSeconds);
  stage("lg", result.lgSeconds);
  stage("dp", result.dpSeconds);
  stage("io", ioSeconds);
  std::snprintf(line, sizeof(line), "  %-6s %9.3fs\n", "total",
                result.totalSeconds);
  add();

  std::snprintf(line, sizeof(line),
                "\nparallel: %d threads, pool %.3fs busy / %.3fs capacity "
                "(%.0f%% utilization)\n",
                threads, poolBusySeconds, poolCapacitySeconds,
                100.0 * poolUtilization);
  add();

  if (!gpRuns.empty()) {
    out += "\ngp runs:\n";
    for (std::size_t i = 0; i < gpRuns.size(); ++i) {
      const TelemetryRunSummary& run = gpRuns[i];
      std::snprintf(line, sizeof(line),
                    "  #%zu: %d iters, hpwl %.4e, overflow %.4f, %.2fs\n", i,
                    run.iterations, run.hpwl, run.overflow, run.seconds);
      add();
    }
  }

  if (!timing.empty()) {
    out += "\ntop self-time scopes:\n";
    std::vector<std::pair<std::string, TimingStat>> rows(timing.begin(),
                                                         timing.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.selfSeconds > b.second.selfSeconds;
    });
    const std::size_t top = std::min<std::size_t>(rows.size(), 12);
    for (std::size_t i = 0; i < top; ++i) {
      std::snprintf(line, sizeof(line),
                    "  %-32s %8" PRId64 "x %9.3fs self %9.3fs incl\n",
                    rows[i].first.c_str(), rows[i].second.count,
                    rows[i].second.selfSeconds, rows[i].second.seconds);
      add();
    }
  }

  if (!trackedMemory.empty()) {
    out += "\ntracked memory:\n";
    for (const auto& [key, usage] : trackedMemory) {
      std::snprintf(line, sizeof(line), "  %-32s %12s current %12s peak\n",
                    key.c_str(), formatBytes(usage.currentBytes).c_str(),
                    formatBytes(usage.peakBytes).c_str());
      add();
    }
  }
  if (processMemory.valid) {
    std::snprintf(line, sizeof(line),
                  "process rss: %s current, %s peak\n",
                  formatBytes(processMemory.vmRssBytes).c_str(),
                  formatBytes(processMemory.vmHwmBytes).c_str());
    add();
  }

  if (!counters.empty()) {
    out += "\ncounters:\n";
    for (const auto& [key, value] : counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12" PRId64 "\n", key.c_str(),
                    value);
      add();
    }
  }
  return out;
}

bool writeRunReport(const RunReport& report, const std::string& jsonPath,
                    const std::string& textPath) {
  bool ok = true;
  if (!jsonPath.empty() && !writeFile(jsonPath, report.toJson())) {
    logWarn("report: cannot write %s", jsonPath.c_str());
    ok = false;
  }
  if (!textPath.empty() && !writeFile(textPath, report.toText())) {
    logWarn("report: cannot write %s", textPath.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace dreamplace
