#include "place/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/flow_context.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace dreamplace {

namespace {

const char* precisionName(Precision p) {
  return p == Precision::kFloat32 ? "float32" : "float64";
}

const char* wlModelName(WirelengthModel m) {
  return m == WirelengthModel::kWeightedAverage ? "weighted_average"
                                                : "log_sum_exp";
}

const char* wlKernelName(WirelengthKernel k) {
  switch (k) {
    case WirelengthKernel::kNetByNet: return "net_by_net";
    case WirelengthKernel::kAtomic: return "atomic";
    case WirelengthKernel::kMerged: return "merged";
  }
  return "?";
}

const char* densityKernelName(DensityKernel k) {
  return k == DensityKernel::kNaive ? "naive" : "sorted";
}

const char* dctName(fft::Dct2dAlgorithm a) {
  switch (a) {
    case fft::Dct2dAlgorithm::kRowColNaive: return "rowcol_naive";
    case fft::Dct2dAlgorithm::kRowCol2N: return "rowcol_2n";
    case fft::Dct2dAlgorithm::kRowColN: return "rowcol_n";
    case fft::Dct2dAlgorithm::kFft2dN: return "fft2d_n";
  }
  return "?";
}

const char* initName(InitialPlacement i) {
  return i == InitialPlacement::kRandomCenter ? "random_center" : "spread";
}

using json::Json;

std::string formatBytes(std::int64_t bytes) {
  char buf[32];
  if (bytes >= 1 << 20) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 1 << 10) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " B", bytes);
  }
  return buf;
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

// Defined here rather than placer.cpp so it shares the enum-name helpers
// the report's config summary uses — the two renderings cannot drift.
std::string PlacerOptions::toJson() const {
  Json j;
  j.openObject();
  j.key("precision"); j.value(precisionName(precision));
  j.key("threads"); j.value(threads);
  j.key("run_global_placement"); j.value(runGlobalPlacement);
  j.key("run_detailed_placement"); j.value(runDetailedPlacement);
  j.key("routability"); j.value(routability);
  j.key("telemetry_label"); j.value(telemetryLabel);

  j.key("gp");
  j.openObject();
  j.key("target_density"); j.value(gp.targetDensity);
  j.key("solver"); j.value(solverName(gp.solver));
  j.key("lr"); j.value(gp.lr);
  j.key("lr_decay"); j.value(gp.lrDecay);
  j.key("wl_model"); j.value(wlModelName(gp.wlModel));
  j.key("wl_kernel"); j.value(wlKernelName(gp.wlKernel));
  j.key("density_kernel"); j.value(densityKernelName(gp.densityKernel));
  j.key("density_subdivision"); j.value(gp.densitySubdivision);
  j.key("dct"); j.value(dctName(gp.dct));
  j.key("max_iterations"); j.value(gp.maxIterations);
  j.key("min_iterations"); j.value(gp.minIterations);
  j.key("stop_overflow"); j.value(gp.stopOverflow);
  j.key("seed"); j.value(static_cast<std::int64_t>(gp.seed));
  j.key("init"); j.value(initName(gp.init));
  j.key("noise_ratio"); j.value(gp.noiseRatio);
  j.key("lambda_update_every"); j.value(gp.lambdaUpdateEvery);
  j.key("tcad_mu_variant"); j.value(gp.tcadMuVariant);
  j.key("ignore_net_degree");
  j.value(static_cast<std::int64_t>(gp.ignoreNetDegree));
  j.key("precondition"); j.value(gp.precondition);
  j.key("bins_max"); j.value(gp.binsMax);
  j.key("initial_density_weight"); j.value(gp.initialDensityWeight);
  j.key("fences"); j.value(static_cast<std::int64_t>(gp.fences.size()));
  j.key("inflated_cells");
  j.value(static_cast<std::int64_t>(gp.inflation.size()));
  j.closeObject();

  j.key("greedy");
  j.openObject();
  j.key("row_search_window"); j.value(greedy.rowSearchWindow);
  j.closeObject();

  j.key("abacus");
  j.openObject();
  j.key("row_search_window"); j.value(abacus.rowSearchWindow);
  j.closeObject();

  j.key("dp");
  j.openObject();
  j.key("passes"); j.value(dp.passes);
  j.key("window_size"); j.value(dp.windowSize);
  j.key("swap_radius_rows"); j.value(dp.swapRadiusRows);
  j.key("max_candidates"); j.value(dp.maxCandidates);
  j.key("convergence_tolerance"); j.value(dp.convergenceTolerance);
  j.key("enable_ism"); j.value(dp.enableIsm);
  j.key("ism_set_size"); j.value(dp.ismSetSize);
  j.closeObject();

  if (routability) {
    j.key("routability_options");
    j.openObject();
    j.key("inflation_trigger"); j.value(routabilityOptions.inflationTrigger);
    j.key("inflation_exponent"); j.value(routabilityOptions.inflationExponent);
    j.key("inflation_max"); j.value(routabilityOptions.inflationMax);
    j.key("whitespace_budget"); j.value(routabilityOptions.whitespaceBudget);
    j.key("stop_inflation_ratio");
    j.value(routabilityOptions.stopInflationRatio);
    j.key("max_rounds"); j.value(routabilityOptions.maxRounds);
    j.key("slow_lambda_every"); j.value(routabilityOptions.slowLambdaEvery);
    j.key("router");
    j.openObject();
    j.key("grid_x"); j.value(routabilityOptions.router.gridX);
    j.key("grid_y"); j.value(routabilityOptions.router.gridY);
    j.key("layer_pairs"); j.value(routabilityOptions.router.numLayerPairs);
    j.key("capacity_per_layer");
    j.value(routabilityOptions.router.capacityPerLayer);
    j.key("capacity_factor"); j.value(routabilityOptions.router.capacityFactor);
    j.key("wire_pitch"); j.value(routabilityOptions.router.wirePitch);
    j.key("reroute_rounds"); j.value(routabilityOptions.router.rerouteRounds);
    j.key("max_net_degree");
    j.value(static_cast<std::int64_t>(routabilityOptions.router.maxNetDegree));
    j.closeObject();
    j.closeObject();
  }

  j.key("checkpoint");
  j.openObject();
  j.key("dir"); j.value(checkpointDir);
  j.key("name"); j.value(checkpointName);
  j.key("every_iterations"); j.value(checkpointEveryIterations);
  j.key("resume_from"); j.value(resumeFrom);
  j.closeObject();

  j.key("exports");
  j.openObject();
  j.key("telemetry_jsonl"); j.value(telemetryJsonl);
  j.key("telemetry_csv"); j.value(telemetryCsv);
  j.key("trace_file"); j.value(traceFile);
  j.key("report_json"); j.value(reportJson);
  j.key("report_text"); j.value(reportText);
  j.closeObject();

  j.closeObject();
  return j.out;
}

RunReport buildRunReport(const Database& db, const PlacerOptions& options,
                         const FlowResult& result,
                         const std::vector<TelemetryRunSummary>& gpRuns,
                         FlowContext& context) {
  RunReport report;
  report.label = options.telemetryLabel;

  report.numCells = db.numCells();
  report.numMovable = db.numMovable();
  report.numNets = db.numNets();
  report.numPins = db.numPins();
  report.utilization = static_cast<double>(db.utilization());

  report.precision = precisionName(options.precision);
  report.solver = solverName(options.gp.solver);
  report.wirelengthModel = wlModelName(options.gp.wlModel);
  report.wirelengthKernel = wlKernelName(options.gp.wlKernel);
  report.densityKernel = densityKernelName(options.gp.densityKernel);
  report.dctAlgorithm = dctName(options.gp.dct);
  report.initialPlacement = initName(options.gp.init);
  report.targetDensity = options.gp.targetDensity;
  report.stopOverflow = options.gp.stopOverflow;
  report.maxIterations = options.gp.maxIterations;
  report.binsMax = options.gp.binsMax;
  report.routability = options.routability;
  report.detailedPlacement = options.runDetailedPlacement;
  report.optionsJson = options.toJson();

  report.result = result;
  // IO typically happens before placeDesign (reader scopes land in the
  // default context); fold it in with any flow-local "io/" scopes.
  report.ioSeconds = context.timing().totalPrefix("io");
  if (!context.isDefault()) {
    report.ioSeconds +=
        FlowContext::defaultContext().timing().totalPrefix("io");
  }
  report.gpRuns = gpRuns;

  // Pool time since markFlowStart(). The pool may be shared with
  // concurrent jobs, so busy/capacity are wall-clock facts about this
  // window, not per-flow invariants — the gate never checks them.
  ThreadPool& pool = context.pool();
  report.threads = pool.threads();
  const std::int64_t busy_us =
      pool.busyMicros() - context.poolBusyStartMicros();
  const std::int64_t cap_us =
      pool.capacityMicros() - context.poolCapacityStartMicros();
  report.poolBusySeconds = static_cast<double>(busy_us) * 1e-6;
  report.poolCapacitySeconds = static_cast<double>(cap_us) * 1e-6;
  report.poolUtilization =
      cap_us > 0 ? std::clamp(static_cast<double>(busy_us) / cap_us, 0.0, 1.0)
                 : 0.0;

  report.simdEnabled = simd::kEnabled;
  report.simdIsa = simd::activeIsaName();
  report.simdWidthF32 = simd::kNativeWidth<float>;
  report.simdWidthF64 = simd::kNativeWidth<double>;

  // Per-flow registries start empty at flow start, so their contents ARE
  // this run's numbers — no delta arithmetic, no cross-flow leakage.
  for (auto& [key, stat] : context.timing().statsSnapshot()) {
    if (stat.count != 0 || stat.seconds != 0.0) {
      report.timing.emplace(key, stat);
    }
  }
  for (auto& [key, value] : context.counters().snapshot()) {
    if (value != 0) {
      report.counters.emplace(key, value);
    }
  }

  // Conditions a reader should not have to dig out of the counter table.
  const auto dropped = report.counters.find("trace/dropped");
  if (dropped != report.counters.end() && dropped->second > 0) {
    report.warnings.push_back(
        "trace/dropped=" + std::to_string(dropped->second) +
        ": the bounded trace buffer overflowed; raise traceCapacity or "
        "disable tracing for this flow");
  }

  // Memory: merge pre-flow attributions (the database, loaded under the
  // default context before placeDesign) with the flow's own workspaces.
  report.trackedMemory = context.memory().snapshot();
  if (!context.isDefault()) {
    for (const auto& [key, usage] :
         FlowContext::defaultContext().memory().snapshot()) {
      MemoryTracker::Usage& merged = report.trackedMemory[key];
      merged.currentBytes += usage.currentBytes;
      merged.peakBytes += usage.peakBytes;
    }
  }
  report.processMemory = sampleProcessMemory();
  return report;
}

std::string RunReport::toJson() const {
  Json j;
  j.openObject();
  j.key("schema");
  j.value(std::string(kSchema));
  j.key("label");
  j.value(label);

  j.key("design");
  j.openObject();
  j.key("cells"); j.value(static_cast<std::int64_t>(numCells));
  j.key("movable"); j.value(static_cast<std::int64_t>(numMovable));
  j.key("nets"); j.value(static_cast<std::int64_t>(numNets));
  j.key("pins"); j.value(static_cast<std::int64_t>(numPins));
  j.key("utilization"); j.value(utilization);
  j.closeObject();

  j.key("config");
  j.openObject();
  j.key("precision"); j.value(precision);
  j.key("solver"); j.value(solver);
  j.key("wl_model"); j.value(wirelengthModel);
  j.key("wl_kernel"); j.value(wirelengthKernel);
  j.key("density_kernel"); j.value(densityKernel);
  j.key("dct"); j.value(dctAlgorithm);
  j.key("init"); j.value(initialPlacement);
  j.key("target_density"); j.value(targetDensity);
  j.key("stop_overflow"); j.value(stopOverflow);
  j.key("max_iterations"); j.value(maxIterations);
  j.key("bins_max"); j.value(binsMax);
  j.key("routability"); j.value(routability);
  j.key("detailed_placement"); j.value(detailedPlacement);
  if (!optionsJson.empty()) {
    j.key("options");
    j.rawValue(optionsJson);
  }
  j.closeObject();

  j.key("result");
  j.openObject();
  j.key("hpwl_gp"); j.value(result.hpwlGp);
  j.key("hpwl_legal"); j.value(result.hpwlLegal);
  j.key("hpwl"); j.value(result.hpwl);
  j.key("overflow"); j.value(result.overflow);
  j.key("gp_iterations"); j.value(result.gpIterations);
  j.key("legal"); j.value(result.legal);
  j.key("lg_fallback"); j.value(result.lgFallback);
  j.key("lg_failed_cells"); j.value(result.lgFailedCells);
  j.closeObject();

  j.key("stages");
  j.openObject();
  j.key("gp_s"); j.value(result.gpSeconds);
  j.key("lg_s"); j.value(result.lgSeconds);
  j.key("dp_s"); j.value(result.dpSeconds);
  j.key("io_s"); j.value(ioSeconds);
  j.key("total_s"); j.value(result.totalSeconds);
  j.closeObject();

  j.key("parallel");
  j.openObject();
  j.key("threads"); j.value(threads);
  j.key("busy_s"); j.value(poolBusySeconds);
  j.key("capacity_s"); j.value(poolCapacitySeconds);
  j.key("utilization"); j.value(poolUtilization);
  j.closeObject();

  j.key("simd");
  j.openObject();
  j.key("enabled"); j.value(simdEnabled);
  j.key("isa"); j.value(simdIsa);
  j.key("width_f32"); j.value(simdWidthF32);
  j.key("width_f64"); j.value(simdWidthF64);
  j.closeObject();

  // Back-end (LG/DP) work summary, lifted out of the counter table so the
  // report states the post-GP effort at a glance.
  {
    const auto counterOr0 = [this](const char* key) -> std::int64_t {
      const auto it = counters.find(key);
      return it == counters.end() ? 0 : it->second;
    };
    j.key("backend");
    j.openObject();
    j.key("lg_segments_tried"); j.value(counterOr0("lg/segments_tried"));
    j.key("dp_reorder_windows"); j.value(counterOr0("dp/reorder_windows"));
    j.key("dp_reorder_moves"); j.value(counterOr0("dp/reorder_moves"));
    j.key("dp_swap_candidates"); j.value(counterOr0("dp/swap_candidates"));
    j.key("dp_swap_moves"); j.value(counterOr0("dp/swap_moves"));
    j.key("dp_ism_moves"); j.value(counterOr0("dp/ism_moves"));
    j.key("dp_bbox_delta"); j.value(counterOr0("dp/bbox_delta"));
    j.key("dp_bbox_rescan"); j.value(counterOr0("dp/bbox_rescan"));
    j.closeObject();
  }

  j.key("gp_runs");
  j.openArray();
  for (const TelemetryRunSummary& run : gpRuns) {
    j.openObject();
    j.key("iterations"); j.value(run.iterations);
    j.key("hpwl"); j.value(run.hpwl);
    j.key("overflow"); j.value(run.overflow);
    j.key("lambda"); j.value(run.lambda);
    j.key("seconds"); j.value(run.seconds);
    j.closeObject();
  }
  j.closeArray();

  j.key("timing");
  j.openObject();
  for (const auto& [key, stat] : timing) {
    j.key(key);
    j.openObject();
    j.key("count"); j.value(stat.count);
    j.key("incl_s"); j.value(stat.seconds);
    j.key("self_s"); j.value(stat.selfSeconds);
    j.closeObject();
  }
  j.closeObject();

  j.key("counters");
  j.openObject();
  for (const auto& [key, value] : counters) {
    j.key(key);
    j.value(value);
  }
  j.closeObject();

  j.key("warnings");
  j.openArray();
  for (const std::string& warning : warnings) {
    j.value(warning);
  }
  j.closeArray();

  j.key("memory");
  j.openObject();
  j.key("tracked");
  j.openObject();
  for (const auto& [key, usage] : trackedMemory) {
    j.key(key);
    j.openObject();
    j.key("current_bytes"); j.value(usage.currentBytes);
    j.key("peak_bytes"); j.value(usage.peakBytes);
    j.closeObject();
  }
  j.closeObject();
  j.key("process");
  j.openObject();
  j.key("vm_rss_bytes"); j.value(processMemory.vmRssBytes);
  j.key("vm_hwm_bytes"); j.value(processMemory.vmHwmBytes);
  j.key("valid"); j.value(processMemory.valid);
  j.closeObject();
  j.closeObject();

  j.closeObject();
  j.out += '\n';
  return j.out;
}

std::string RunReport::toText() const {
  std::string out;
  char line[256];
  const auto add = [&out, &line] { out += line; };

  std::snprintf(line, sizeof(line), "=== flow run report%s%s ===\n",
                label.empty() ? "" : ": ", label.c_str());
  add();
  std::snprintf(line, sizeof(line),
                "design: %d cells (%d movable), %d nets, %d pins\n",
                static_cast<int>(numCells), static_cast<int>(numMovable),
                static_cast<int>(numNets), static_cast<int>(numPins));
  add();
  std::snprintf(line, sizeof(line),
                "config: %s, %s solver, wl %s/%s, density %s, dct %s\n",
                precision.c_str(), solver.c_str(), wirelengthModel.c_str(),
                wirelengthKernel.c_str(), densityKernel.c_str(),
                dctAlgorithm.c_str());
  add();
  std::snprintf(line, sizeof(line),
                "result: hpwl %.4e (gp %.4e, legal %.4e), overflow %.4f, "
                "%d GP iterations, %s\n",
                result.hpwl, result.hpwlGp, result.hpwlLegal, result.overflow,
                result.gpIterations, result.legal ? "legal" : "NOT LEGAL");
  add();
  if (result.lgFallback || result.lgFailedCells > 0) {
    std::snprintf(line, sizeof(line),
                  "legalization: greedy fallback taken, %d cells unplaced "
                  "after final pass\n",
                  result.lgFailedCells);
    add();
  }

  out += "\nstages:\n";
  const double total = std::max(result.totalSeconds, 1e-12);
  const auto stage = [&](const char* name, double s) {
    std::snprintf(line, sizeof(line), "  %-6s %9.3fs %6.1f%%\n", name, s,
                  100.0 * s / total);
    add();
  };
  stage("gp", result.gpSeconds);
  stage("lg", result.lgSeconds);
  stage("dp", result.dpSeconds);
  stage("io", ioSeconds);
  std::snprintf(line, sizeof(line), "  %-6s %9.3fs\n", "total",
                result.totalSeconds);
  add();

  std::snprintf(line, sizeof(line),
                "\nparallel: %d threads, pool %.3fs busy / %.3fs capacity "
                "(%.0f%% utilization)\n",
                threads, poolBusySeconds, poolCapacitySeconds,
                100.0 * poolUtilization);
  add();

  std::snprintf(line, sizeof(line),
                "simd: %s (%s, %d/%d lanes f32/f64)\n",
                simdEnabled ? "on" : "off", simdIsa.c_str(), simdWidthF32,
                simdWidthF64);
  add();

  {
    const auto counterOr0 = [this](const char* key) -> std::int64_t {
      const auto it = counters.find(key);
      return it == counters.end() ? 0 : it->second;
    };
    const std::int64_t lg_tried = counterOr0("lg/segments_tried");
    const std::int64_t windows = counterOr0("dp/reorder_windows");
    const std::int64_t cands = counterOr0("dp/swap_candidates");
    if (lg_tried > 0 || windows > 0 || cands > 0) {
      std::snprintf(line, sizeof(line),
                    "backend: lg %" PRId64 " segment trials; dp %" PRId64
                    " windows, %" PRId64 " swap candidates, bbox %" PRId64
                    " delta / %" PRId64 " rescan\n",
                    lg_tried, windows, cands, counterOr0("dp/bbox_delta"),
                    counterOr0("dp/bbox_rescan"));
      add();
    }
  }

  if (!gpRuns.empty()) {
    out += "\ngp runs:\n";
    for (std::size_t i = 0; i < gpRuns.size(); ++i) {
      const TelemetryRunSummary& run = gpRuns[i];
      std::snprintf(line, sizeof(line),
                    "  #%zu: %d iters, hpwl %.4e, overflow %.4f, %.2fs\n", i,
                    run.iterations, run.hpwl, run.overflow, run.seconds);
      add();
    }
  }

  if (!timing.empty()) {
    out += "\ntop self-time scopes:\n";
    std::vector<std::pair<std::string, TimingStat>> rows(timing.begin(),
                                                         timing.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.selfSeconds > b.second.selfSeconds;
    });
    const std::size_t top = std::min<std::size_t>(rows.size(), 12);
    for (std::size_t i = 0; i < top; ++i) {
      std::snprintf(line, sizeof(line),
                    "  %-32s %8" PRId64 "x %9.3fs self %9.3fs incl\n",
                    rows[i].first.c_str(), rows[i].second.count,
                    rows[i].second.selfSeconds, rows[i].second.seconds);
      add();
    }
  }

  if (!trackedMemory.empty()) {
    out += "\ntracked memory:\n";
    for (const auto& [key, usage] : trackedMemory) {
      std::snprintf(line, sizeof(line), "  %-32s %12s current %12s peak\n",
                    key.c_str(), formatBytes(usage.currentBytes).c_str(),
                    formatBytes(usage.peakBytes).c_str());
      add();
    }
  }
  if (processMemory.valid) {
    std::snprintf(line, sizeof(line),
                  "process rss: %s current, %s peak\n",
                  formatBytes(processMemory.vmRssBytes).c_str(),
                  formatBytes(processMemory.vmHwmBytes).c_str());
    add();
  }

  if (!counters.empty()) {
    out += "\ncounters:\n";
    for (const auto& [key, value] : counters) {
      std::snprintf(line, sizeof(line), "  %-40s %12" PRId64 "\n", key.c_str(),
                    value);
      add();
    }
  }

  if (!warnings.empty()) {
    out += "\nwarnings:\n";
    for (const std::string& warning : warnings) {
      out += "  ! ";
      out += warning;
      out += '\n';
    }
  }
  return out;
}

bool writeRunReport(const RunReport& report, const std::string& jsonPath,
                    const std::string& textPath, std::string* error) {
  bool ok = true;
  const auto fail = [&ok, error](const std::string& path) {
    logWarn("report: cannot write %s", path.c_str());
    if (error != nullptr) {
      if (!error->empty()) {
        *error += "; ";
      }
      *error += "report: cannot write " + path;
    }
    ok = false;
  };
  if (!jsonPath.empty() && !writeFile(jsonPath, report.toJson())) {
    fail(jsonPath);
  }
  if (!textPath.empty() && !writeFile(textPath, report.toText())) {
    fail(textPath);
  }
  return ok;
}

}  // namespace dreamplace
