#include "place/placer.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "common/flow_context.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/trace.h"
#include "db/metrics.h"
#include "place/pipeline.h"
#include "place/report.h"

namespace dreamplace {

namespace {

/// Collects per-run GP summaries for the end-of-flow report without the
/// per-iteration storage of RecordingTelemetrySink.
class GpSummarySink final : public TelemetrySink {
 public:
  void onIteration(const IterationStats& /*stats*/) override {}
  void onRunEnd(const TelemetryRunSummary& summary) override {
    summaries_.push_back(summary);
  }

  const std::vector<TelemetryRunSummary>& summaries() const {
    return summaries_;
  }

 private:
  std::vector<TelemetryRunSummary> summaries_;
};

/// Builds the telemetry sink stack requested by the options and wires it
/// into the GP options. Owns the file sinks; must outlive the flow run.
/// Constructed (and destroyed) with the flow's context installed, so the
/// trace it enables/writes is the *flow's* recorder, not a global one.
class FlowTelemetry {
 public:
  FlowTelemetry(const PlacerOptions& options, bool wantSummaries) {
    if (!options.telemetryJsonl.empty()) {
      jsonl_ = std::make_unique<JsonlTelemetrySink>(options.telemetryJsonl);
      mux_.addSink(jsonl_.get());
    }
    if (!options.telemetryCsv.empty()) {
      csv_ = std::make_unique<CsvTelemetrySink>(options.telemetryCsv);
      mux_.addSink(csv_.get());
    }
    if (!options.traceFile.empty()) {
      trace_file_ = options.traceFile;
      currentTraceRecorder().setEnabled(true);
      mux_.addSink(&trace_sink_);
    }
    if (wantSummaries) {
      mux_.addSink(&summary_sink_);
    }
    mux_.addSink(options.telemetry);
  }

  ~FlowTelemetry() {
    // Backstop for flows that fail before reaching finishTrace(); a
    // write failure here can only be logged.
    finishTrace();
  }

  /// Stops recording and writes the trace file. Returns "" on success or
  /// when no trace was requested; on failure logs and returns the message
  /// so the caller can surface it (RunReport warnings — a silently
  /// missing trace looks identical to a flow that never emitted scopes).
  /// Idempotent: the file is written (and the failure reported) once.
  std::string finishTrace() {
    if (trace_file_.empty()) {
      return {};
    }
    const std::string trace_file = std::exchange(trace_file_, {});
    TraceRecorder& trace = currentTraceRecorder();
    trace.setEnabled(false);
    if (!trace.writeJson(trace_file)) {
      const std::string error = "trace: cannot write " + trace_file;
      logWarn("%s", error.c_str());
      return error;
    }
    return {};
  }

  /// Null when no sink is configured, so the GP loop skips all telemetry.
  TelemetrySink* sink() { return mux_.empty() ? nullptr : &mux_; }

  /// GP run summaries observed so far (empty unless a report was asked).
  const std::vector<TelemetryRunSummary>& gpSummaries() const {
    return summary_sink_.summaries();
  }

 private:
  TelemetryMux mux_;
  std::unique_ptr<JsonlTelemetrySink> jsonl_;
  std::unique_ptr<CsvTelemetrySink> csv_;
  TraceTelemetrySink trace_sink_;
  GpSummarySink summary_sink_;
  std::string trace_file_;
};

template <typename T>
FlowResult runFlow(Database& db, const PlacerOptions& options,
                   FlowTelemetry& telemetry) {
  FlowResult result;
  FlowPipeline pipeline = buildFlowPipeline<T>(options);
  StageContext context{db, options, result, telemetry.sink()};
  pipeline.run(context);
  logInfo("flow: hpwl gp %.4e -> legal %.4e -> final %.4e, legal=%d, "
          "gp %.1fs lg %.1fs dp %.1fs",
          result.hpwlGp, result.hpwlLegal, result.hpwl, result.legal ? 1 : 0,
          result.gpSeconds, result.lgSeconds, result.dpSeconds);
  return result;
}

}  // namespace

void PlacerOptions::validate() const {
  std::string errors;
  const auto fail = [&errors](const std::string& message) {
    errors += (errors.empty() ? "" : "; ") + message;
  };

  if (threads < 0) {
    fail("threads must be >= 0 (got " + std::to_string(threads) +
         "); 0 means auto (DREAMPLACE_THREADS or hardware concurrency)");
  }
  if (gp.binsMax <= 0) {
    fail("gp.binsMax must be positive (got " + std::to_string(gp.binsMax) +
         "); the density grid needs at least one bin per axis");
  }
  if (!(gp.targetDensity > 0.0) || gp.targetDensity > 1.0) {
    fail("gp.targetDensity must be in (0, 1] (got " +
         std::to_string(gp.targetDensity) +
         "); it is the bin utilization GP spreads toward");
  }
  if (!(gp.stopOverflow > 0.0) || gp.stopOverflow >= 1.0) {
    fail("gp.stopOverflow must be in (0, 1) (got " +
         std::to_string(gp.stopOverflow) +
         "); GP stops when density overflow falls below it");
  }
  if (gp.maxIterations <= 0) {
    fail("gp.maxIterations must be positive (got " +
         std::to_string(gp.maxIterations) + ")");
  }
  if (gp.minIterations < 0 || gp.minIterations > gp.maxIterations) {
    fail("gp.minIterations must be in [0, maxIterations] (got " +
         std::to_string(gp.minIterations) + " with maxIterations " +
         std::to_string(gp.maxIterations) + ")");
  }
  if (gp.lambdaUpdateEvery < 1) {
    fail("gp.lambdaUpdateEvery must be >= 1 (got " +
         std::to_string(gp.lambdaUpdateEvery) +
         "); it is the eq. (18) update period in iterations");
  }
  if (gp.densitySubdivision < 1) {
    fail("gp.densitySubdivision must be >= 1 (got " +
         std::to_string(gp.densitySubdivision) + ")");
  }
  if (gp.noiseRatio < 0.0) {
    fail("gp.noiseRatio must be non-negative (got " +
         std::to_string(gp.noiseRatio) + ")");
  }
  if (gp.solver != SolverKind::kNesterov && gp.lr <= 0.0) {
    fail("gp.lr must be positive for the " +
         std::string(solverName(gp.solver)) +
         " solver (got " + std::to_string(gp.lr) +
         "); only Nesterov derives its own step size");
  }
  if (gp.lrDecay <= 0.0 || gp.lrDecay > 1.0) {
    fail("gp.lrDecay must be in (0, 1] (got " + std::to_string(gp.lrDecay) +
         "); it multiplies the learning rate each iteration");
  }
  if (gp.fences.empty() && !gp.cellFence.empty()) {
    fail("gp.cellFence assigns cells to fence regions but gp.fences is "
         "empty; provide the fence list or clear cellFence");
  }
  for (const int f : gp.cellFence) {
    if (f < 0 || f > static_cast<int>(gp.fences.size())) {
      fail("gp.cellFence entries must be 0 (default region) or a 1-based "
           "index into gp.fences (got " + std::to_string(f) + " with " +
           std::to_string(gp.fences.size()) + " fences)");
      break;
    }
  }
  if (!runGlobalPlacement && routability) {
    fail("runGlobalPlacement=false is incompatible with routability mode; "
         "the inflation loop *is* a GP loop");
  }
  if (checkpointEveryIterations < 0) {
    fail("checkpointEveryIterations must be >= 0 (got " +
         std::to_string(checkpointEveryIterations) +
         "); 0 checkpoints at stage boundaries only");
  }
  if (checkpointEveryIterations > 0 && checkpointDir.empty()) {
    fail("checkpointEveryIterations requires checkpointDir; mid-GP "
         "snapshots need somewhere to go");
  }
  if (routability) {
    const RouterOptions& router = routabilityOptions.router;
    if (router.gridX <= 0 || router.gridY <= 0) {
      fail("routability mode needs a positive router grid "
           "(routabilityOptions.router.gridX/gridY, got " +
           std::to_string(router.gridX) + "x" + std::to_string(router.gridY) +
           ")");
    }
    if (router.numLayerPairs <= 0) {
      fail("routabilityOptions.router.numLayerPairs must be positive (got " +
           std::to_string(router.numLayerPairs) + ")");
    }
    if (!(routabilityOptions.inflationTrigger > 0.0) ||
        routabilityOptions.inflationTrigger >= 1.0) {
      fail("routabilityOptions.inflationTrigger must be in (0, 1) (got " +
           std::to_string(routabilityOptions.inflationTrigger) +
           "); it is the overflow at which inflation starts");
    }
    if (routabilityOptions.maxRounds < 1) {
      fail("routabilityOptions.maxRounds must be >= 1 (got " +
           std::to_string(routabilityOptions.maxRounds) + ")");
    }
  }

  if (!errors.empty()) {
    throw std::invalid_argument("PlacerOptions: " + errors);
  }
}

FlowResult placeDesign(Database& db, const PlacerOptions& options) {
  // Fresh context per call: the flow's counters/timings start from zero,
  // so sequential flows in one process no longer leak into each other's
  // reports. A trace export gets its own recorder; otherwise scopes keep
  // landing on the shared default recorder (program-wide tracing, e.g. a
  // bench's TelemetrySession, still sees the flow).
  FlowContext::Config config;
  config.privateTrace = !options.traceFile.empty();
  FlowContext context(config);
  return placeDesign(db, options, context, nullptr);
}

FlowResult placeDesign(Database& db, const PlacerOptions& options,
                       FlowContext& context, RunReport* reportOut) {
  options.validate();
  FlowContextScope scope(context);
  // 0 keeps the pool as configured (auto-resolution or a caller's
  // earlier setThreads); only an explicit request reconfigures it.
  if (options.threads > 0) {
    context.pool().setThreads(options.threads);
  }
  context.markFlowStart();
  FlowTelemetry telemetry(options, /*wantSummaries=*/reportOut != nullptr ||
                                       !options.reportJson.empty() ||
                                       !options.reportText.empty());
  const bool want_report = reportOut != nullptr ||
                           !options.reportJson.empty() ||
                           !options.reportText.empty();
  const FlowResult result =
      options.precision == Precision::kFloat32
          ? runFlow<float>(db, options, telemetry)
          : runFlow<double>(db, options, telemetry);
  if (want_report) {
    RunReport report = buildRunReport(db, options, result,
                                      telemetry.gpSummaries(), context);
    // Write the trace now (instead of in FlowTelemetry's destructor) so a
    // failed export lands in the report's warnings array — a run report
    // that looks clean while the trace silently vanished is the bug this
    // closes.
    const std::string trace_error = telemetry.finishTrace();
    if (!trace_error.empty()) {
      report.warnings.push_back(trace_error);
    }
    std::string error;
    if (!writeRunReport(report, options.reportJson, options.reportText,
                        &error)) {
      // The caller asked for a report file; silently dropping it would
      // make the run look observable when it is not. Fail the flow.
      throw std::runtime_error(error);
    }
    if (reportOut != nullptr) {
      *reportOut = std::move(report);
    }
  }
  return result;
}

}  // namespace dreamplace
