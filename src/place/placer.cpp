#include "place/placer.h"

#include "common/log.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "lg/macro_legalizer.h"

namespace dreamplace {

namespace {

template <typename T>
FlowResult runFlow(Database& db, const PlacerOptions& options) {
  FlowResult result;
  Timer total;

  // --- Global placement -------------------------------------------------
  Timer gp_timer;
  if (options.routability) {
    RoutabilityOptions ropts = options.routabilityOptions;
    ropts.gp = options.gp;
    RoutabilityDrivenPlacer<T> placer(db, ropts);
    const RoutabilityResult r = placer.run();
    result.gpIterations = r.gp.iterations;
    result.overflow = r.gp.overflow;
    result.nlSeconds = r.nlSeconds;
    result.grSeconds = r.grSeconds;
    result.rc = r.congestion.rc;
  } else {
    GlobalPlacer<T> placer(db, options.gp);
    const GlobalPlacerResult r = placer.run();
    result.gpIterations = r.iterations;
    result.overflow = r.overflow;
  }
  result.gpSeconds = gp_timer.elapsed();
  result.hpwlGp = hpwl(db);

  // --- Legalization ------------------------------------------------------
  Timer lg_timer;
  {
    ScopedTimer t("lg");
    // Movable macros (mixed-size placement) first; they become obstacles
    // for the standard-cell legalizers.
    MacroLegalizer macro_lg;
    macro_lg.run(db);
    // Abacus legalizes directly from the GP positions (minimal movement).
    // If any cell fails to fit (pathological fragmentation), fall back to
    // the Tetris-like greedy packing and re-run Abacus from there.
    AbacusLegalizer abacus(options.abacus);
    LegalizerResult lg = abacus.run(db);
    if (lg.failed > 0) {
      GreedyLegalizer greedy(options.greedy);
      greedy.run(db);
      abacus.run(db);
    }
  }
  result.lgSeconds = lg_timer.elapsed();
  result.hpwlLegal = hpwl(db);

  // --- Detailed placement ---------------------------------------------------
  Timer dp_timer;
  if (options.runDetailedPlacement) {
    DetailedPlacer dp(options.dp);
    dp.run(db);
  }
  result.dpSeconds = dp_timer.elapsed();

  result.hpwl = hpwl(db);
  result.legal = checkLegality(db).legal;
  result.totalSeconds = total.elapsed();

  if (options.routability) {
    // Re-estimate congestion on the final legalized placement.
    GlobalRouter router(options.routabilityOptions.router);
    const CongestionReport report = computeCongestion(router.route(db));
    result.rc = report.rc;
    result.sHpwl = scaledHpwl(result.hpwl, result.rc);
  }

  logInfo("flow: hpwl gp %.4e -> legal %.4e -> final %.4e, legal=%d, "
          "gp %.1fs lg %.1fs dp %.1fs",
          result.hpwlGp, result.hpwlLegal, result.hpwl, result.legal ? 1 : 0,
          result.gpSeconds, result.lgSeconds, result.dpSeconds);
  return result;
}

}  // namespace

FlowResult placeDesign(Database& db, const PlacerOptions& options) {
  if (options.precision == Precision::kFloat32) {
    return runFlow<float>(db, options);
  }
  return runFlow<double>(db, options);
}

}  // namespace dreamplace
