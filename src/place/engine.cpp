#include "place/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/flow_context.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace dreamplace {

void EngineOptions::validate() const {
  std::string errors;
  const auto fail = [&errors](const std::string& message) {
    errors += (errors.empty() ? "" : "; ") + message;
  };

  if (threads < 0) {
    fail("threads must be >= 0 (got " + std::to_string(threads) +
         "); 0 means auto (DREAMPLACE_THREADS or hardware concurrency)");
  }
  if (maxConcurrentJobs < 1) {
    fail("maxConcurrentJobs must be >= 1 (got " +
         std::to_string(maxConcurrentJobs) + ")");
  }
  if (jobTimeoutSeconds < 0.0) {
    fail("jobTimeoutSeconds must be >= 0 (got " +
         std::to_string(jobTimeoutSeconds) + "); 0 disables the timeout");
  }
  if (maxJobAttempts < 1) {
    fail("maxJobAttempts must be >= 1 (got " +
         std::to_string(maxJobAttempts) + ")");
  }

  if (!errors.empty()) {
    throw std::invalid_argument("EngineOptions: " + errors);
  }
}

const char* statusName(JobStatus status) {
  switch (status) {
    case JobStatus::kSucceeded: return "succeeded";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timed_out";
  }
  return "unknown";
}

bool isOrderDependentCounter(std::string_view key) {
  // Plan-cache counters attribute to whichever flow *first* needs a plan
  // of a given size — under concurrency that is a race winner, not a
  // property of the flow.
  if (key.substr(0, 8) == "fft/plan") return true;
  // Pool scheduling: who started the workers, how blocks were claimed,
  // whether a second run() caller hit the occupied job slot.
  return key == "parallel/steals" || key == "parallel/pool_start" ||
         key == "parallel/contended";
}

std::map<std::string, CounterRegistry::Value> deterministicCounters(
    const std::map<std::string, CounterRegistry::Value>& counters) {
  std::map<std::string, CounterRegistry::Value> out;
  for (const auto& [key, value] : counters) {
    if (!isOrderDependentCounter(key)) {
      out.emplace(key, value);
    }
  }
  return out;
}

std::string BatchReport::toJson() const {
  json::Json j;
  j.openObject();
  j.key("schema"); j.value(kSchema);
  j.key("label"); j.value(label);
  j.key("wall_s"); j.value(wallSeconds);
  j.key("aggregate_s"); j.value(aggregateSeconds);

  j.key("counts");
  j.openObject();
  j.key("jobs"); j.value(static_cast<std::int64_t>(jobs.size()));
  j.key("succeeded"); j.value(succeeded);
  j.key("failed"); j.value(failed);
  j.key("timed_out"); j.value(timedOut);
  j.closeObject();

  j.key("jobs");
  j.openArray();
  for (const JobReport& job : jobs) {
    j.openObject();
    j.key("name"); j.value(job.name);
    j.key("status"); j.value(statusName(job.status));
    j.key("attempts"); j.value(job.attempts);
    j.key("wall_s"); j.value(job.wallSeconds);
    if (!job.error.empty()) {
      j.key("error"); j.value(job.error);
    }
    if (job.status == JobStatus::kSucceeded) {
      j.key("report");
      j.rawValue(job.report.toJson());
    }
    j.closeObject();
  }
  j.closeArray();

  j.closeObject();
  return j.out;
}

PlacementEngine::PlacementEngine(EngineOptions options)
    : options_(std::move(options)), pool_(std::make_unique<ThreadPool>()) {
  options_.validate();
  if (options_.threads > 0) {
    pool_->setThreads(options_.threads);
  }
}

PlacementEngine::~PlacementEngine() = default;

JobReport PlacementEngine::runJob(PlacementJob& job) {
  JobReport out;
  out.name = job.name;
  Timer wall;

  // One budget for the whole job: retries run against the deadline fixed
  // here, so a flaky job cannot stretch its wall-clock allowance by
  // failing first.
  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = options_.jobTimeoutSeconds > 0.0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options_.jobTimeoutSeconds));
  }

  PlacerOptions options = job.options;
  // Flow-scoped options only: a job must not resize the shared engine
  // pool under its sibling jobs.
  options.threads = 0;

  for (int attempt = 1; attempt <= options_.maxJobAttempts; ++attempt) {
    out.attempts = attempt;
    try {
      if (job.attemptHook) {
        job.attemptHook(attempt);
      }
      FlowContext::Config config;
      config.pool = pool_.get();
      config.privateTrace = true;
      config.traceCapacity = options_.traceCapacity;
      FlowContext context(config);
      if (has_deadline) {
        context.setDeadline(deadline);
      }
      out.result = placeDesign(*job.db, options, context, &out.report);
      out.status = JobStatus::kSucceeded;
      out.error.clear();
      break;
    } catch (const FlowTimeoutError& e) {
      // The budget is spent; a retry would time out immediately.
      out.status = JobStatus::kTimedOut;
      out.error = e.what();
      logWarn("engine: job '%s' timed out after %.1fs (attempt %d)",
              out.name.c_str(), options_.jobTimeoutSeconds, attempt);
      break;
    } catch (const std::exception& e) {
      out.status = JobStatus::kFailed;
      out.error = e.what();
      logWarn("engine: job '%s' attempt %d/%d failed: %s", out.name.c_str(),
              attempt, options_.maxJobAttempts, e.what());
    }
  }

  out.wallSeconds = wall.elapsed();
  return out;
}

BatchReport PlacementEngine::run(std::vector<PlacementJob> jobs) {
  BatchReport batch;
  batch.jobs.resize(jobs.size());
  Timer wall;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].db == nullptr) {
      throw std::invalid_argument("PlacementEngine: job " + std::to_string(i) +
                                  " has no database");
    }
    if (jobs[i].name.empty()) {
      jobs[i].name = "job" + std::to_string(i);
    }
  }

  const int lanes =
      std::max(1, std::min(options_.maxConcurrentJobs,
                           static_cast<int>(jobs.size())));
  std::atomic<std::size_t> next{0};

  // Each lane pulls the next unstarted job. Every job body runs on a
  // *fresh* OS thread (not the lane thread, which stays warm across
  // jobs): per-thread scratch caches then start cold for every job,
  // identically at any concurrency level — one ingredient of the
  // serial-vs-concurrent bit-identical-report contract (docs/ENGINE.md).
  const auto lane = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        break;
      }
      JobReport report;
      std::thread worker([this, &jobs, &report, i]() {
        report = runJob(jobs[i]);
      });
      worker.join();
      batch.jobs[i] = std::move(report);
    }
  };

  if (lanes == 1) {
    lane();
  } else {
    std::vector<std::thread> runners;
    runners.reserve(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      runners.emplace_back(lane);
    }
    for (std::thread& runner : runners) {
      runner.join();
    }
  }

  batch.wallSeconds = wall.elapsed();
  for (const JobReport& job : batch.jobs) {
    batch.aggregateSeconds += job.wallSeconds;
    switch (job.status) {
      case JobStatus::kSucceeded: ++batch.succeeded; break;
      case JobStatus::kFailed: ++batch.failed; break;
      case JobStatus::kTimedOut: ++batch.timedOut; break;
    }
  }
  logInfo("engine: batch done: %d/%zu succeeded (%d failed, %d timed out), "
          "wall %.1fs aggregate %.1fs",
          batch.succeeded, batch.jobs.size(), batch.failed, batch.timedOut,
          batch.wallSeconds, batch.aggregateSeconds);
  return batch;
}

}  // namespace dreamplace
