#include "place/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/flow_context.h"
#include "common/heartbeat.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/metrics_export.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "place/checkpoint.h"

namespace dreamplace {

void EngineOptions::validate() const {
  std::string errors;
  const auto fail = [&errors](const std::string& message) {
    errors += (errors.empty() ? "" : "; ") + message;
  };

  if (threads < 0) {
    fail("threads must be >= 0 (got " + std::to_string(threads) +
         "); 0 means auto (DREAMPLACE_THREADS or hardware concurrency)");
  }
  if (maxConcurrentJobs < 1) {
    fail("maxConcurrentJobs must be >= 1 (got " +
         std::to_string(maxConcurrentJobs) + ")");
  }
  if (jobTimeoutSeconds < 0.0) {
    fail("jobTimeoutSeconds must be >= 0 (got " +
         std::to_string(jobTimeoutSeconds) + "); 0 disables the timeout");
  }
  if (maxJobAttempts < 1) {
    fail("maxJobAttempts must be >= 1 (got " +
         std::to_string(maxJobAttempts) + ")");
  }
  if (stallSeconds < 0.0) {
    fail("stallSeconds must be >= 0 (got " + std::to_string(stallSeconds) +
         "); 0 disables stall detection");
  }
  if (divergenceHpwlRatio != 0.0 && divergenceHpwlRatio <= 1.0) {
    fail("divergenceHpwlRatio must be 0 (disabled) or > 1 (got " +
         std::to_string(divergenceHpwlRatio) +
         "); it multiplies the running-best HPWL");
  }
  if (divergenceSamples < 1) {
    fail("divergenceSamples must be >= 1 (got " +
         std::to_string(divergenceSamples) + ")");
  }
  if (!(watchdogPeriodSeconds > 0.0)) {
    fail("watchdogPeriodSeconds must be > 0 (got " +
         std::to_string(watchdogPeriodSeconds) + ")");
  }
  if (!(metricsPeriodSeconds > 0.0)) {
    fail("metricsPeriodSeconds must be > 0 (got " +
         std::to_string(metricsPeriodSeconds) + ")");
  }

  if (!errors.empty()) {
    throw std::invalid_argument("EngineOptions: " + errors);
  }
}

const char* statusName(JobStatus status) {
  switch (status) {
    case JobStatus::kSucceeded: return "succeeded";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timed_out";
    case JobStatus::kDiverged: return "diverged";
    case JobStatus::kStalled: return "stalled";
  }
  return "unknown";
}

bool isOrderDependentCounter(std::string_view key) {
  // Plan-cache counters attribute to whichever flow *first* needs a plan
  // of a given size — under concurrency that is a race winner, not a
  // property of the flow.
  if (key.substr(0, 8) == "fft/plan") return true;
  // Watchdog samples and metrics exports are wall-clock sampling: how
  // many land on a flow depends on machine speed, never on the flow's
  // algorithmic work.
  if (key.substr(0, 7) == "health/" || key.substr(0, 8) == "metrics/") {
    return true;
  }
  // Back-end bbox-cache traffic and staleness depend on thread count: the
  // parallel propose+commit scheme evaluates speculative proposals (and
  // re-evaluates stale ones) that the serial path never computes, so these
  // tallies vary with pool size even though every placement result is
  // bit-identical.
  if (key.substr(0, 8) == "dp/bbox_" || key == "dp/reorder_stale" ||
      key == "dp/swap_stale") {
    return true;
  }
  // Pool scheduling: who started the workers, how blocks were claimed,
  // whether a second run() caller hit the occupied job slot.
  return key == "parallel/steals" || key == "parallel/pool_start" ||
         key == "parallel/contended";
}

std::map<std::string, CounterRegistry::Value> deterministicCounters(
    const std::map<std::string, CounterRegistry::Value>& counters) {
  std::map<std::string, CounterRegistry::Value> out;
  for (const auto& [key, value] : counters) {
    if (!isOrderDependentCounter(key)) {
      out.emplace(key, value);
    }
  }
  return out;
}

bool isResumeVariantCounter(std::string_view key) {
  if (isOrderDependentCounter(key)) return true;
  // Checkpoint bookkeeping: the uninterrupted baseline loads nothing and
  // may save a different number of snapshots than the interrupted run.
  if (key.substr(0, 11) == "checkpoint/") return true;
  // Lazy workspace counters: ops allocate scratch on first use and reuse
  // it afterwards. A resumed segment is a fresh process state, so it
  // re-allocates once more (alloc N -> N+1, reuse M -> M-1) even though
  // the algorithmic work is identical.
  const auto ends_with = [&key](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  if (ends_with("_alloc") || ends_with("_reuse")) return true;
  return key == "fft/scratch_grow";
}

std::map<std::string, CounterRegistry::Value> resumeComparableCounters(
    const std::map<std::string, CounterRegistry::Value>& counters) {
  std::map<std::string, CounterRegistry::Value> out;
  for (const auto& [key, value] : counters) {
    if (!isResumeVariantCounter(key)) {
      out.emplace(key, value);
    }
  }
  return out;
}

std::string BatchReport::toJson() const {
  json::Json j;
  j.openObject();
  j.key("schema"); j.value(kSchema);
  j.key("label"); j.value(label);
  j.key("wall_s"); j.value(wallSeconds);
  j.key("aggregate_s"); j.value(aggregateSeconds);

  j.key("counts");
  j.openObject();
  j.key("jobs"); j.value(static_cast<std::int64_t>(jobs.size()));
  j.key("succeeded"); j.value(succeeded);
  j.key("failed"); j.value(failed);
  j.key("timed_out"); j.value(timedOut);
  j.key("diverged"); j.value(diverged);
  j.key("stalled"); j.value(stalled);
  j.closeObject();

  j.key("jobs");
  j.openArray();
  for (const JobReport& job : jobs) {
    j.openObject();
    j.key("name"); j.value(job.name);
    j.key("status"); j.value(statusName(job.status));
    j.key("attempts"); j.value(job.attempts);
    j.key("resumed"); j.value(job.resumed);
    j.key("wall_s"); j.value(job.wallSeconds);
    if (!job.error.empty()) {
      j.key("error"); j.value(job.error);
    }
    if (job.health.watchdogEnabled || !job.health.verdict.empty()) {
      j.key("health");
      j.openObject();
      j.key("watchdog"); j.value(job.health.watchdogEnabled);
      j.key("checks"); j.value(job.health.checks);
      j.key("verdict"); j.value(job.health.verdict);
      if (!job.health.detail.empty()) {
        j.key("detail"); j.value(job.health.detail);
      }
      j.key("last_stage"); j.value(job.health.lastStage);
      j.key("last_iteration"); j.value(job.health.lastIteration);
      j.key("last_hpwl"); j.value(job.health.lastHpwl);
      j.key("best_hpwl"); j.value(job.health.bestHpwl);
      j.key("last_overflow"); j.value(job.health.lastOverflow);
      j.closeObject();
    }
    if (job.status == JobStatus::kSucceeded) {
      j.key("report");
      j.rawValue(job.report.toJson());
    }
    j.closeObject();
  }
  j.closeArray();

  j.closeObject();
  return j.out;
}

// ---------------------------------------------------------------------------
// Monitor: one engine-scoped thread sampling the active flows' heartbeats
// and (optionally) exporting the metrics file.
// ---------------------------------------------------------------------------

/// All fields are guarded by the engine's monitor_mutex_: the monitor
/// samples under it, and runJob() registers/unregisters and harvests the
/// outcome under it. `context` points at runJob's stack-local FlowContext
/// and is valid exactly while the watch is in active_.
struct PlacementEngine::FlowWatch {
  std::string name;
  FlowContext* context = nullptr;

  // Policy state.
  std::uint64_t lastSequence = 0;
  std::chrono::steady_clock::time_point lastProgress;
  int lastIteration = INT_MIN;  ///< INT_MIN: no iteration observed yet.
  int regressionRun = 0;        ///< Consecutive over-ratio observations.

  // Outcome, harvested into JobHealth.
  std::int64_t checks = 0;
  std::string verdict;  ///< "", "diverged" or "stalled".
  std::string detail;
  HeartbeatSnapshot last;
};

bool PlacementEngine::monitorNeeded() const {
  return options_.watchdogEnabled() || !options_.metricsFile.empty();
}

void PlacementEngine::startMonitor() {
  if (!monitorNeeded()) {
    return;
  }
  if (!options_.metricsFile.empty()) {
    // Fail the batch up front on an unwritable metrics path: the user
    // asked for a live view, and discovering the file is missing after
    // the batch defeats the point.
    std::string error;
    if (!writeMetricsFile(options_.metricsFile, renderPrometheusMetrics({}),
                          &error)) {
      throw std::runtime_error(error);
    }
  }
  monitor_stop_ = false;
  monitor_ = std::thread([this]() { monitorLoop(); });
}

void PlacementEngine::stopMonitor() {
  if (!monitor_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  monitor_.join();
}

void PlacementEngine::monitorLoop() {
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.watchdogPeriodSeconds));
  const auto metrics_period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.metricsPeriodSeconds));
  std::unique_lock<std::mutex> lock(monitor_mutex_);
  auto next_export = std::chrono::steady_clock::now() + metrics_period;
  while (!monitor_stop_) {
    monitor_cv_.wait_for(lock, period);
    if (monitor_stop_) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (options_.watchdogEnabled()) {
      for (const std::shared_ptr<FlowWatch>& watch : active_) {
        sampleWatch(*watch, now);
      }
    }
    if (!options_.metricsFile.empty() && now >= next_export) {
      exportMetricsLocked();
      next_export = now + metrics_period;
    }
  }
  if (!options_.metricsFile.empty()) {
    // Final rewrite so the file reflects the post-batch state (no active
    // flows) instead of a stale mid-run snapshot.
    exportMetricsLocked();
  }
}

void PlacementEngine::sampleWatch(FlowWatch& watch,
                                  std::chrono::steady_clock::time_point now) {
  if (!watch.verdict.empty() || watch.context == nullptr) {
    return;  // verdict already delivered; the cancel is in flight
  }
  const HeartbeatSnapshot hb = watch.context->heartbeat().read();
  ++watch.checks;
  watch.context->counters().add("health/checks");
  char detail[256];

  if (hb.sequence != watch.lastSequence) {
    // Progress since the last sample. Divergence is judged only on fresh
    // GP iterations (stage boundaries republish old HPWL values).
    const bool fresh_iteration = hb.stage == FlowStage::kGlobalPlacement &&
                                 hb.iteration != watch.lastIteration;
    if (fresh_iteration) {
      if (!std::isfinite(hb.hpwl)) {
        std::snprintf(detail, sizeof(detail),
                      "non-finite HPWL at GP iteration %d", hb.iteration);
        watch.verdict = "diverged";
        watch.detail = detail;
      } else if (options_.divergenceHpwlRatio > 0.0 && hb.bestHpwl > 0.0 &&
                 hb.hpwl > options_.divergenceHpwlRatio * hb.bestHpwl) {
        if (++watch.regressionRun >= options_.divergenceSamples) {
          std::snprintf(detail, sizeof(detail),
                        "HPWL %.4e is %.1fx the running best %.4e "
                        "(threshold %.2fx) for %d consecutive samples, "
                        "GP iteration %d",
                        hb.hpwl, hb.hpwl / hb.bestHpwl, hb.bestHpwl,
                        options_.divergenceHpwlRatio, watch.regressionRun,
                        hb.iteration);
          watch.verdict = "diverged";
          watch.detail = detail;
        }
      } else {
        watch.regressionRun = 0;
      }
      watch.lastIteration = hb.iteration;
    }
    watch.lastSequence = hb.sequence;
    watch.lastProgress = now;
    watch.last = hb;
  } else if (options_.stallSeconds > 0.0) {
    const double idle =
        std::chrono::duration<double>(now - watch.lastProgress).count();
    if (idle >= options_.stallSeconds) {
      std::snprintf(detail, sizeof(detail),
                    "no heartbeat progress for %.1fs (stall threshold %.1fs; "
                    "last stage %s, GP iteration %d)",
                    idle, options_.stallSeconds,
                    flowStageName(watch.last.stage), watch.last.iteration);
      watch.verdict = "stalled";
      watch.detail = detail;
    }
  }

  if (!watch.verdict.empty()) {
    watch.context->requestCancel();
    logWarn("engine: watchdog verdict '%s' for job '%s': %s",
            watch.verdict.c_str(), watch.name.c_str(), watch.detail.c_str());
  }
}

void PlacementEngine::exportMetricsLocked() {
  std::vector<MetricsSource> sources;
  sources.reserve(active_.size());
  for (const std::shared_ptr<FlowWatch>& watch : active_) {
    if (watch->context != nullptr) {
      sources.push_back({watch->name, watch->context});
    }
  }
  std::string error;
  if (!writeMetricsFile(options_.metricsFile, renderPrometheusMetrics(sources),
                        &error)) {
    // The initial write in startMonitor() succeeded, so this is a
    // transient/environmental failure mid-batch; keep the jobs running.
    logWarn("engine: %s", error.c_str());
  }
}

std::shared_ptr<PlacementEngine::FlowWatch> PlacementEngine::registerFlow(
    const std::string& name, FlowContext* context) {
  if (!monitorNeeded()) {
    return nullptr;
  }
  auto watch = std::make_shared<FlowWatch>();
  watch->name = name;
  watch->context = context;
  watch->lastProgress = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    active_.push_back(watch);
  }
  return watch;
}

void PlacementEngine::unregisterFlow(const std::shared_ptr<FlowWatch>& watch,
                                     JobHealth& health) {
  if (watch == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(monitor_mutex_);
  active_.erase(std::remove(active_.begin(), active_.end(), watch),
                active_.end());
  watch->context = nullptr;  // the FlowContext dies when runJob's try ends
  health.watchdogEnabled = options_.watchdogEnabled();
  health.checks += watch->checks;
  if (!watch->verdict.empty()) {
    health.verdict = watch->verdict;
    health.detail = watch->detail;
  }
  health.lastStage = flowStageName(watch->last.stage);
  health.lastIteration = watch->last.iteration;
  health.lastHpwl = watch->last.hpwl;
  health.bestHpwl = watch->last.bestHpwl;
  health.lastOverflow = watch->last.overflow;
}

PlacementEngine::PlacementEngine(EngineOptions options)
    : options_(std::move(options)), pool_(std::make_unique<ThreadPool>()) {
  options_.validate();
  // Structured-log configuration is engine-adjacent observability; apply
  // the env knobs here so embedding programs get them without CLI help.
  initLogLevelFromEnv();
  initLogJsonFromEnv();
  if (options_.threads > 0) {
    pool_->setThreads(options_.threads);
  }
}

PlacementEngine::~PlacementEngine() { stopMonitor(); }

JobReport PlacementEngine::runJob(PlacementJob& job) {
  JobReport out;
  out.name = job.name;
  Timer wall;
  LogScope log_job("job", out.name);
  LogScope log_design("design", job.options.telemetryLabel.empty()
                                    ? out.name
                                    : job.options.telemetryLabel);

  // One budget for the whole job: retries run against the deadline fixed
  // here, so a flaky job cannot stretch its wall-clock allowance by
  // failing first.
  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = options_.jobTimeoutSeconds > 0.0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options_.jobTimeoutSeconds));
  }

  PlacerOptions options = job.options;
  // Flow-scoped options only: a job must not resize the shared engine
  // pool under its sibling jobs.
  options.threads = 0;
  if (!options.checkpointDir.empty() && options.checkpointName.empty()) {
    options.checkpointName = out.name;
  }
  const std::string checkpoint_path = checkpointFilePath(options);

  for (int attempt = 1; attempt <= options_.maxJobAttempts; ++attempt) {
    out.attempts = attempt;
    if (attempt > 1 && !checkpoint_path.empty()) {
      // Resume instead of restart: the failed attempt left a checkpoint
      // at its last stage boundary (or mid-GP snapshot); continuing from
      // it keeps already-spent GP iterations instead of repaying them
      // against the same deadline. Absent file (crash before the first
      // snapshot) falls back to a clean restart.
      std::ifstream probe(checkpoint_path, std::ios::binary);
      if (probe.good()) {
        options.resumeFrom = checkpoint_path;
        out.resumed = true;
        logInfo("engine: resuming job from %s", checkpoint_path.c_str());
      } else {
        options.resumeFrom.clear();
      }
    }
    logInfo("engine: job start (attempt %d/%d)", attempt,
            options_.maxJobAttempts);
    FlowContext::Config config;
    config.pool = pool_.get();
    config.privateTrace = true;
    config.traceCapacity = options_.traceCapacity;
    FlowContext context(config);
    if (has_deadline) {
      context.setDeadline(deadline);
    }
    // Registered before the attempt hook so the watchdog covers a hook
    // that never returns (the stall injection in tools/run_batch).
    const std::shared_ptr<FlowWatch> watch =
        registerFlow(out.name, &context);
    const auto verdictOf = [this, &watch]() {
      if (watch == nullptr) {
        return std::string();
      }
      std::lock_guard<std::mutex> lock(monitor_mutex_);
      return watch->verdict;
    };
    try {
      if (job.attemptHook) {
        FlowContextScope scope(context);
        job.attemptHook(attempt);
      }
      out.result = placeDesign(*job.db, options, context, &out.report);
      out.status = JobStatus::kSucceeded;
      out.error.clear();
      const std::string verdict = verdictOf();
      unregisterFlow(watch, out.health);
      if (!verdict.empty()) {
        // Lost race: the verdict landed after the flow's last interrupt
        // poll. The flow finished, so surface it as a warning only.
        out.report.warnings.push_back("watchdog verdict '" + verdict +
                                      "' raced with flow completion: " +
                                      out.health.detail);
      }
      logInfo("engine: job done (status %s)", statusName(out.status));
      break;
    } catch (const FlowTimeoutError& e) {
      // The budget is spent; a retry would time out immediately.
      unregisterFlow(watch, out.health);
      out.status = JobStatus::kTimedOut;
      out.error = e.what();
      logWarn("engine: job timed out after %.1fs (attempt %d)",
              options_.jobTimeoutSeconds, attempt);
      break;
    } catch (const FlowCancelledError& e) {
      const std::string verdict = verdictOf();
      unregisterFlow(watch, out.health);
      if (verdict == "diverged" || verdict == "stalled") {
        // Watchdog verdicts are terminal: the same design under the same
        // options would diverge/stall again, so a retry only burns time.
        out.status =
            verdict == "diverged" ? JobStatus::kDiverged : JobStatus::kStalled;
        out.error = out.health.detail;
        logWarn("engine: job %s (attempt %d): %s", verdict.c_str(), attempt,
                out.error.c_str());
        break;
      }
      // Cancelled by someone else (no verdict) — treat as a failure.
      out.status = JobStatus::kFailed;
      out.error = e.what();
      logWarn("engine: job attempt %d/%d cancelled: %s", attempt,
              options_.maxJobAttempts, e.what());
    } catch (const std::exception& e) {
      unregisterFlow(watch, out.health);
      out.status = JobStatus::kFailed;
      out.error = e.what();
      logWarn("engine: job attempt %d/%d failed: %s", attempt,
              options_.maxJobAttempts, e.what());
    }
  }

  out.wallSeconds = wall.elapsed();
  return out;
}

BatchReport PlacementEngine::run(std::vector<PlacementJob> jobs) {
  BatchReport batch;
  batch.jobs.resize(jobs.size());
  Timer wall;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].db == nullptr) {
      throw std::invalid_argument("PlacementEngine: job " + std::to_string(i) +
                                  " has no database");
    }
    if (jobs[i].name.empty()) {
      jobs[i].name = "job" + std::to_string(i);
    }
    logInfo("engine: job submit '%s' (%zu of %zu)", jobs[i].name.c_str(),
            i + 1, jobs.size());
  }

  startMonitor();
  // Joins the monitor on every exit path (a validation throw above
  // happens before startMonitor, so only the lane section needs cover).
  struct MonitorGuard {
    PlacementEngine* engine;
    ~MonitorGuard() { engine->stopMonitor(); }
  } monitor_guard{this};

  const int lanes =
      std::max(1, std::min(options_.maxConcurrentJobs,
                           static_cast<int>(jobs.size())));
  std::atomic<std::size_t> next{0};

  // Each lane pulls the next unstarted job. Every job body runs on a
  // *fresh* OS thread (not the lane thread, which stays warm across
  // jobs): per-thread scratch caches then start cold for every job,
  // identically at any concurrency level — one ingredient of the
  // serial-vs-concurrent bit-identical-report contract (docs/ENGINE.md).
  const auto lane = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        break;
      }
      JobReport report;
      std::thread worker([this, &jobs, &report, i]() {
        report = runJob(jobs[i]);
      });
      worker.join();
      batch.jobs[i] = std::move(report);
    }
  };

  if (lanes == 1) {
    lane();
  } else {
    std::vector<std::thread> runners;
    runners.reserve(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      runners.emplace_back(lane);
    }
    for (std::thread& runner : runners) {
      runner.join();
    }
  }

  batch.wallSeconds = wall.elapsed();
  for (const JobReport& job : batch.jobs) {
    batch.aggregateSeconds += job.wallSeconds;
    switch (job.status) {
      case JobStatus::kSucceeded: ++batch.succeeded; break;
      case JobStatus::kFailed: ++batch.failed; break;
      case JobStatus::kTimedOut: ++batch.timedOut; break;
      case JobStatus::kDiverged: ++batch.diverged; break;
      case JobStatus::kStalled: ++batch.stalled; break;
    }
  }
  logInfo("engine: batch done: %d/%zu succeeded (%d failed, %d timed out, "
          "%d diverged, %d stalled), wall %.1fs aggregate %.1fs",
          batch.succeeded, batch.jobs.size(), batch.failed, batch.timedOut,
          batch.diverged, batch.stalled, batch.wallSeconds,
          batch.aggregateSeconds);
  return batch;
}

}  // namespace dreamplace
