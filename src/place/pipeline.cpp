#include "place/pipeline.h"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/counters.h"
#include "common/flow_context.h"
#include "common/log.h"
#include "common/serialize.h"
#include "db/metrics.h"
#include "lg/macro_legalizer.h"
#include "place/checkpoint.h"
#include "place/engine.h"

namespace dreamplace {

namespace {

// --- Concrete stages -------------------------------------------------------
// Private to this file; callers assemble them through buildFlowPipeline()
// and address them by name() (tests, checkpoint signatures).

/// Standard nonlinear GP (paper Sec. 3). The only stage with mid-run
/// checkpoints: GlobalPlacer snapshots its loop state (optimizer vectors,
/// lambda, EMA, overflow) every checkpointEveryIterations through the
/// sink below, and resumes from the same blob bit-identically.
template <typename T>
class GlobalPlacementStage final : public PipelineStage {
 public:
  const char* name() const override { return "gp"; }
  FlowStage heartbeatStage() const override {
    return FlowStage::kGlobalPlacement;
  }
  double* secondsSlot(FlowResult& r) const override { return &r.gpSeconds; }
  double* hpwlSlot(FlowResult& r) const override { return &r.hpwlGp; }

  void run(StageContext& context) override {
    GlobalPlacerOptions gp = context.options.gp;
    gp.telemetry = context.telemetry;
    gp.telemetryLabel = context.options.telemetryLabel;
    if (!resume_state_.empty()) {
      gp.resumeState = &resume_state_;
    }
    if (context.checkpointer != nullptr &&
        context.options.checkpointEveryIterations > 0) {
      gp.checkpointEveryIterations = context.options.checkpointEveryIterations;
      gp.checkpointSink = [this, &context](const std::string& state) {
        state_ = state;
        context.checkpointer->saveMidStage(context, *this);
      };
    }
    GlobalPlacer<T> placer(context.db, gp);
    const GlobalPlacerResult r = placer.run();
    context.result.gpIterations = r.iterations;
    context.result.overflow = r.overflow;
    resume_state_.clear();
    state_.clear();
  }

  void saveState(ByteWriter& w) const override { w.str(state_); }
  void loadState(ByteReader& r) override { resume_state_ = r.str(); }

 private:
  std::string state_;         ///< Latest mid-run snapshot from the sink.
  std::string resume_state_;  ///< Snapshot to resume from (via loadState).
};

/// Routability-driven GP (paper Table V): the inflation loop owns its GP
/// restarts, so this stage checkpoints only at its boundary.
template <typename T>
class RoutabilityGpStage final : public PipelineStage {
 public:
  const char* name() const override { return "gp_rt"; }
  FlowStage heartbeatStage() const override {
    return FlowStage::kGlobalPlacement;
  }
  double* secondsSlot(FlowResult& r) const override { return &r.gpSeconds; }
  double* hpwlSlot(FlowResult& r) const override { return &r.hpwlGp; }

  void run(StageContext& context) override {
    RoutabilityOptions ropts = context.options.routabilityOptions;
    ropts.gp = context.options.gp;
    ropts.gp.telemetry = context.telemetry;
    ropts.gp.telemetryLabel = context.options.telemetryLabel;
    RoutabilityDrivenPlacer<T> placer(context.db, ropts);
    const RoutabilityResult r = placer.run();
    context.result.gpIterations = r.gp.iterations;
    context.result.overflow = r.gp.overflow;
    context.result.nlSeconds = r.nlSeconds;
    context.result.grSeconds = r.grSeconds;
    context.result.rc = r.congestion.rc;
  }
};

/// Movable macros (mixed-size placement) first; they become obstacles
/// for the standard-cell legalizers.
class MacroLegalizationStage final : public PipelineStage {
 public:
  const char* name() const override { return "macro_lg"; }
  FlowStage heartbeatStage() const override {
    return FlowStage::kLegalization;
  }
  const char* timerKey() const override { return "lg"; }
  double* secondsSlot(FlowResult& r) const override { return &r.lgSeconds; }

  void run(StageContext& context) override {
    MacroLegalizer macro_lg;
    macro_lg.run(context.db);
  }
};

/// Abacus legalizes directly from the GP positions (minimal movement).
/// If any cell fails to fit (pathological fragmentation), fall back to
/// the Tetris-like greedy packing and re-run Abacus from there — and
/// record how that re-run went: a second failure means the placement is
/// not legal, which the flow result must say instead of discovering it
/// later (or never) through checkLegality.
class AbacusLegalizationStage final : public PipelineStage {
 public:
  const char* name() const override { return "lg"; }
  FlowStage heartbeatStage() const override {
    return FlowStage::kLegalization;
  }
  const char* timerKey() const override { return "lg"; }
  double* secondsSlot(FlowResult& r) const override { return &r.lgSeconds; }
  double* hpwlSlot(FlowResult& r) const override { return &r.hpwlLegal; }

  void run(StageContext& context) override {
    Database& db = context.db;
    AbacusLegalizer abacus(context.options.abacus);
    LegalizerResult lg = abacus.run(db);
    if (lg.failed > 0) {
      currentCounterRegistry().add("lg/fallback");
      context.result.lgFallback = true;
      GreedyLegalizer greedy(context.options.greedy);
      greedy.run(db);
      lg = abacus.run(db);
      if (lg.failed > 0) {
        logWarn("lg: %d cells still unplaced after greedy fallback; "
                "placement is not legal",
                lg.failed);
      }
    }
    context.result.lgFailedCells = lg.failed;
  }
};

class DetailedPlacementStage final : public PipelineStage {
 public:
  const char* name() const override { return "dp"; }
  FlowStage heartbeatStage() const override {
    return FlowStage::kDetailedPlacement;
  }
  double* secondsSlot(FlowResult& r) const override { return &r.dpSeconds; }
  double* hpwlSlot(FlowResult& r) const override { return &r.hpwl; }

  void run(StageContext& context) override {
    if (!context.options.runDetailedPlacement) {
      return;
    }
    DetailedPlacer dp(context.options.dp);
    dp.run(context.db);
  }
};

/// Legality verdict and total wall time. A separate stage so a resumed
/// flow re-derives both from the restored database instead of trusting
/// a stale checkpoint value.
class FinalizeStage final : public PipelineStage {
 public:
  const char* name() const override { return "finalize"; }
  FlowStage heartbeatStage() const override { return FlowStage::kDone; }

  void run(StageContext& context) override {
    context.result.legal = checkLegality(context.db).legal;
    context.result.totalSeconds = context.totalTimer->elapsed();
  }
};

/// Routability mode: re-estimate congestion on the final legalized
/// placement (paper Table V's RC / scaled-HPWL columns).
class RouteEstimateStage final : public PipelineStage {
 public:
  const char* name() const override { return "route"; }
  FlowStage heartbeatStage() const override { return FlowStage::kDone; }

  void run(StageContext& context) override {
    GlobalRouter router(context.options.routabilityOptions.router);
    const CongestionReport report = computeCongestion(router.route(context.db));
    context.result.rc = report.rc;
    context.result.sHpwl = scaledHpwl(context.result.hpwl, context.result.rc);
  }
};

/// Restores database positions, counters, partial results, and (mid-stage
/// checkpoints) the in-progress stage's state. Returns the stage cursor to
/// continue from. Throws on any mismatch with the pipeline about to run —
/// resuming an incompatible checkpoint must fail loudly, not converge to
/// a subtly different placement.
std::size_t restoreFromCheckpoint(
    const std::vector<std::unique_ptr<PipelineStage>>& stages,
    const std::string& signature, std::uint8_t precision,
    StageContext& context) {
  const CheckpointData data = loadCheckpointFile(context.options.resumeFrom);
  if (data.precision != precision) {
    throw std::runtime_error(
        "checkpoint: precision mismatch (checkpoint is " +
        std::string(data.precision != 0 ? "float64" : "float32") +
        ", flow runs " + std::string(precision != 0 ? "float64" : "float32") +
        ")");
  }
  if (data.signature != signature) {
    throw std::runtime_error("checkpoint: pipeline mismatch (checkpoint from '" +
                             data.signature + "', this flow runs '" +
                             signature + "')");
  }
  if (data.stageCursor > stages.size()) {
    throw std::runtime_error("checkpoint: stage cursor " +
                             std::to_string(data.stageCursor) +
                             " out of range for " +
                             std::to_string(stages.size()) + " stages");
  }
  Database& db = context.db;
  if (data.cellX.size() != static_cast<std::size_t>(db.numMovable())) {
    throw std::runtime_error(
        "checkpoint: design mismatch (" + std::to_string(data.cellX.size()) +
        " movable cells in checkpoint, " + std::to_string(db.numMovable()) +
        " in database)");
  }
  for (std::size_t i = 0; i < data.cellX.size(); ++i) {
    db.setCellPosition(static_cast<Index>(i), data.cellX[i], data.cellY[i]);
  }
  // Additive restore: the resumed flow runs under a fresh (zeroed)
  // registry, so original-run values + resumed-segment increments equal
  // an uninterrupted run's counters (docs/FLOW.md lists the exceptions).
  CounterRegistry& counters = FlowContext::current().counters();
  for (const auto& [key, value] : data.counters) {
    // Resume-variant counters (allocation splits, checkpoint and
    // scheduling bookkeeping; place/engine.h) stay per-segment: restoring
    // them additively would make e.g. ws_alloc read 2 on a resumed run
    // and break the per-run baseline's exact pins.
    if (!isResumeVariantCounter(key)) {
      counters.add(key, value);
    }
  }
  counters.add("checkpoint/loads");
  context.result = data.result;
  if (data.midStage && data.stageCursor < stages.size() &&
      !data.stageState.empty()) {
    ByteReader r(data.stageState);
    stages[data.stageCursor]->loadState(r);
  }
  logInfo("pipeline: resumed from %s at stage %u/%zu (%s%s)",
          context.options.resumeFrom.c_str(), data.stageCursor, stages.size(),
          data.stageCursor < stages.size()
              ? stages[data.stageCursor]->name()
              : "done",
          data.midStage ? ", mid-stage" : "");
  return data.stageCursor;
}

}  // namespace

// --- FlowCheckpointer ------------------------------------------------------

FlowCheckpointer::FlowCheckpointer(std::string path, std::string signature,
                                   std::uint8_t precision)
    : path_(std::move(path)),
      signature_(std::move(signature)),
      precision_(precision) {}

void FlowCheckpointer::saveBoundary(const StageContext& context,
                                    std::size_t nextCursor) {
  save(context, nextCursor, /*midStage=*/false, {});
}

void FlowCheckpointer::saveMidStage(const StageContext& context,
                                    const PipelineStage& stage) {
  ByteWriter w;
  stage.saveState(w);
  save(context, context.stageIndex, /*midStage=*/true, w.take());
}

void FlowCheckpointer::clear() { std::remove(path_.c_str()); }

void FlowCheckpointer::save(const StageContext& context, std::size_t cursor,
                            bool midStage, std::string stageState) {
  // Ticked before the snapshot so the checkpoint accounts for itself;
  // checkpoint/* counters are excluded from resume comparisons anyway
  // (isResumeVariantCounter).
  currentCounterRegistry().add("checkpoint/saves");
  CheckpointData data;
  data.precision = precision_;
  data.signature = signature_;
  data.stageCursor = static_cast<std::uint32_t>(cursor);
  data.midStage = midStage;
  data.stageState = std::move(stageState);
  data.result = context.result;
  const Database& db = context.db;
  const std::size_t movable = static_cast<std::size_t>(db.numMovable());
  data.cellX.reserve(movable);
  data.cellY.reserve(movable);
  for (std::size_t i = 0; i < movable; ++i) {
    data.cellX.push_back(db.cellX(static_cast<Index>(i)));
    data.cellY.push_back(db.cellY(static_cast<Index>(i)));
  }
  for (const auto& [key, value] :
       FlowContext::current().counters().snapshot()) {
    data.counters.emplace_back(key, value);
  }
  std::string error;
  if (!writeCheckpointFile(path_, data, &error)) {
    throw std::runtime_error(error);
  }
}

// --- FlowPipeline ----------------------------------------------------------

FlowPipeline::FlowPipeline(std::vector<std::unique_ptr<PipelineStage>> stages)
    : stages_(std::move(stages)) {}

std::string FlowPipeline::signature() const {
  std::string s;
  for (const auto& stage : stages_) {
    if (!s.empty()) {
      s += '|';
    }
    s += stage->name();
  }
  return s;
}

void FlowPipeline::run(StageContext& context) {
  Timer total;
  context.totalTimer = &total;
  FlowContext& flow = FlowContext::current();

  std::unique_ptr<FlowCheckpointer> checkpointer;
  const std::string checkpoint_path = checkpointFilePath(context.options);
  const std::uint8_t precision =
      context.options.precision == Precision::kFloat64 ? 1 : 0;
  if (!checkpoint_path.empty()) {
    checkpointer = std::make_unique<FlowCheckpointer>(checkpoint_path,
                                                      signature(), precision);
    context.checkpointer = checkpointer.get();
  }

  std::size_t cursor = 0;
  if (!context.options.resumeFrom.empty()) {
    cursor = restoreFromCheckpoint(stages_, signature(), precision, context);
  }

  FlowStage last_stage = FlowStage::kIdle;
  for (std::size_t i = cursor; i < stages_.size(); ++i) {
    PipelineStage& stage = *stages_[i];
    context.stageIndex = i;
    flow.throwIfInterrupted();
    if (stage.heartbeatStage() != last_stage) {
      flow.heartbeat().beginStage(stage.heartbeatStage());
      last_stage = stage.heartbeatStage();
    }
    Timer stage_timer;
    {
      std::optional<ScopedTimer> scope;
      if (stage.timerKey() != nullptr) {
        scope.emplace(stage.timerKey());
      }
      stage.run(context);
    }
    if (double* slot = stage.secondsSlot(context.result)) {
      *slot += stage_timer.elapsed();
    }
    if (double* slot = stage.hpwlSlot(context.result)) {
      *slot = hpwl(context.db);
    }
    if (context.checkpointer != nullptr && i + 1 < stages_.size()) {
      context.checkpointer->saveBoundary(context, i + 1);
    }
  }

  if (context.checkpointer != nullptr) {
    context.checkpointer->clear();
    context.checkpointer = nullptr;
  }
}

template <typename T>
FlowPipeline buildFlowPipeline(const PlacerOptions& options) {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  if (options.runGlobalPlacement) {
    if (options.routability) {
      stages.push_back(std::make_unique<RoutabilityGpStage<T>>());
    } else {
      stages.push_back(std::make_unique<GlobalPlacementStage<T>>());
    }
  }
  stages.push_back(std::make_unique<MacroLegalizationStage>());
  stages.push_back(std::make_unique<AbacusLegalizationStage>());
  stages.push_back(std::make_unique<DetailedPlacementStage>());
  stages.push_back(std::make_unique<FinalizeStage>());
  if (options.routability) {
    stages.push_back(std::make_unique<RouteEstimateStage>());
  }
  return FlowPipeline(std::move(stages));
}

template FlowPipeline buildFlowPipeline<float>(const PlacerOptions& options);
template FlowPipeline buildFlowPipeline<double>(const PlacerOptions& options);

}  // namespace dreamplace
