#include "place/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/serialize.h"

namespace dreamplace {

namespace {

void encodeFlowResult(ByteWriter& w, const FlowResult& r) {
  w.f64(r.hpwlGp);
  w.f64(r.hpwlLegal);
  w.f64(r.hpwl);
  w.f64(r.overflow);
  w.i32(r.gpIterations);
  w.u8(r.legal ? 1 : 0);
  w.u8(r.lgFallback ? 1 : 0);
  w.i32(r.lgFailedCells);
  w.f64(r.gpSeconds);
  w.f64(r.lgSeconds);
  w.f64(r.dpSeconds);
  w.f64(r.nlSeconds);
  w.f64(r.grSeconds);
  w.f64(r.rc);
  w.f64(r.sHpwl);
  w.f64(r.totalSeconds);
}

FlowResult decodeFlowResult(ByteReader& r) {
  FlowResult out;
  out.hpwlGp = r.f64();
  out.hpwlLegal = r.f64();
  out.hpwl = r.f64();
  out.overflow = r.f64();
  out.gpIterations = r.i32();
  out.legal = r.u8() != 0;
  out.lgFallback = r.u8() != 0;
  out.lgFailedCells = r.i32();
  out.gpSeconds = r.f64();
  out.lgSeconds = r.f64();
  out.dpSeconds = r.f64();
  out.nlSeconds = r.f64();
  out.grSeconds = r.f64();
  out.rc = r.f64();
  out.sHpwl = r.f64();
  out.totalSeconds = r.f64();
  return out;
}

}  // namespace

std::string encodeCheckpoint(const CheckpointData& data) {
  ByteWriter w;
  w.u32(CheckpointData::kMagic);
  w.u32(CheckpointData::kVersion);
  w.u8(data.precision);
  w.str(data.signature);
  w.u32(data.stageCursor);
  w.u8(data.midStage ? 1 : 0);
  w.str(data.stageState);
  encodeFlowResult(w, data.result);
  w.f64Vec(data.cellX);
  w.f64Vec(data.cellY);
  w.u64(data.counters.size());
  for (const auto& [key, value] : data.counters) {
    w.str(key);
    w.i64(value);
  }
  return w.take();
}

CheckpointData decodeCheckpoint(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.u32() != CheckpointData::kMagic) {
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint file)");
  }
  const std::uint32_t version = r.u32();
  if (version != CheckpointData::kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " (this build reads " +
                             std::to_string(CheckpointData::kVersion) + ")");
  }
  CheckpointData data;
  data.precision = r.u8();
  data.signature = r.str();
  data.stageCursor = r.u32();
  data.midStage = r.u8() != 0;
  data.stageState = r.str();
  data.result = decodeFlowResult(r);
  data.cellX = r.f64Vec<double>();
  data.cellY = r.f64Vec<double>();
  if (data.cellX.size() != data.cellY.size()) {
    throw std::runtime_error("checkpoint: mismatched position vectors");
  }
  const std::uint64_t n = r.u64();
  data.counters.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    const std::int64_t value = r.i64();
    data.counters.emplace_back(std::move(key), value);
  }
  if (!r.atEnd()) {
    throw std::runtime_error("checkpoint: trailing bytes after document");
  }
  return data;
}

bool writeCheckpointFile(const std::string& path, const CheckpointData& data,
                         std::string* error) {
  const std::string bytes = encodeCheckpoint(data);
  // Create the checkpoint directory on demand (callers may point at a
  // directory that does not exist yet); a real failure still surfaces
  // through the open below.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  // tmp+rename: a reader (or a resumed attempt after a crash) never sees
  // a half-written checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(bytes.data(),
                           static_cast<std::streamsize>(bytes.size())) ||
        !out.flush()) {
      if (error != nullptr) {
        *error = "checkpoint: cannot write " + tmp;
      }
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "checkpoint: cannot rename " + tmp + " to " + path;
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointData loadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return decodeCheckpoint(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " (" + path + ")");
  }
}

std::string checkpointFilePath(const PlacerOptions& options) {
  if (options.checkpointDir.empty()) {
    return {};
  }
  const std::string name =
      options.checkpointName.empty() ? "flow" : options.checkpointName;
  return options.checkpointDir + "/" + name + ".dpck";
}

}  // namespace dreamplace
