// Net-weighting driven placement (paper Sec. III-G).
//
// The paper notes that "timing can be considered by net weighting or
// additional differentiable timing costs in the objective". Without
// liberty/SDF timing data, the classic length-based criticality proxy is
// used: after each GP round, the nets whose HPWL exceeds a percentile of
// the net-length distribution (the "critical" nets — long nets dominate
// path delay) get their weights multiplied, and GP restarts from the
// current positions. All wirelength ops honor net weights, so the
// machinery is identical to what a slack-based weighter would drive.
#pragma once

#include <vector>

#include "db/database.h"
#include "gp/global_placer.h"

namespace dreamplace {

struct NetWeightingOptions {
  GlobalPlacerOptions gp;
  int rounds = 3;             ///< Re-weighting rounds after the first GP.
  double percentile = 0.95;   ///< Nets above this HPWL percentile get boosted.
  double boost = 2.0;         ///< Multiplicative weight increase.
  double maxWeight = 16.0;    ///< Weight cap.
};

struct NetWeightingResult {
  double hpwl = 0.0;             ///< Final (unweighted) HPWL.
  double maxNetHpwl = 0.0;       ///< Length of the longest net.
  double tailNetHpwl = 0.0;      ///< Mean HPWL of the top 5% longest nets
                                 ///< (the timing proxy being minimized).
  int rounds = 0;
  std::vector<double> tailTrace; ///< tailNetHpwl after each round.
};

/// Mean HPWL of the `fraction` longest nets at the current placement.
double tailNetHpwl(const Database& db, double fraction = 0.05);

/// Runs GP with iterative net re-weighting; commits positions to `db`
/// (global placement only; run LG/DP afterwards as usual). Net weights in
/// `db` are left at their final values.
template <typename T>
NetWeightingResult netWeightingPlace(Database& db,
                                     const NetWeightingOptions& options);

}  // namespace dreamplace
