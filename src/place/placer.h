// Top-level placement flow (paper Fig. 2b): GP -> LG -> DP, with the
// per-stage runtime accounting the paper's tables report (GP / LG / DP /
// IO columns) and an optional routability-driven mode (Table V).
#pragma once

#include <string>

#include "db/database.h"
#include "dp/detailed_placer.h"
#include "gp/global_placer.h"
#include "lg/abacus_legalizer.h"
#include "lg/greedy_legalizer.h"
#include "routeopt/inflation.h"

namespace dreamplace {

enum class Precision { kFloat32, kFloat64 };

struct PlacerOptions {
  Precision precision = Precision::kFloat64;
  /// Worker threads for the deterministic parallel runtime
  /// (common/parallel.h). 0 leaves the pool as configured (auto:
  /// DREAMPLACE_THREADS env var if set, else hardware concurrency).
  /// 1 runs strictly serial. Results are bit-identical for any value
  /// (docs/PARALLEL.md).
  int threads = 0;
  GlobalPlacerOptions gp;
  GreedyLegalizer::Options greedy;
  AbacusLegalizer::Options abacus;
  DetailedPlacer::Options dp;
  bool runDetailedPlacement = true;
  bool routability = false;          ///< Table V mode.
  RoutabilityOptions routabilityOptions;

  // --- Observability exports (all off by default; see
  // docs/OBSERVABILITY.md) -------------------------------------------------
  /// Per-iteration GP telemetry as JSONL, one record per iteration.
  std::string telemetryJsonl;
  /// Per-run GP summary CSV (one row per GP run, incl. restarts).
  std::string telemetryCsv;
  /// Chrome trace-event JSON (chrome://tracing / Perfetto) covering the
  /// whole flow: every ScopedTimer scope plus GP counter tracks.
  std::string traceFile;
  /// End-of-flow run report (place/report.h): one JSON document with
  /// stage and per-op self-time breakdowns, GP convergence summaries,
  /// counter deltas, and memory attribution. CI's regression gate
  /// (tools/check_report) consumes this file.
  std::string reportJson;
  /// Human-readable text rendering of the same report.
  std::string reportText;
  /// Additional caller-provided sink (non-owning); composed with the
  /// file exports above.
  TelemetrySink* telemetry = nullptr;
  /// Label stamped on telemetry records (design name); defaults to "".
  std::string telemetryLabel;

  /// Rejects nonsensical configurations with an actionable message.
  /// Throws std::invalid_argument listing every violated constraint.
  void validate() const;
};

struct FlowResult {
  double hpwlGp = 0.0;     ///< HPWL right after global placement.
  double hpwlLegal = 0.0;  ///< After legalization.
  double hpwl = 0.0;       ///< Final (after DP).
  double overflow = 0.0;
  int gpIterations = 0;
  bool legal = false;
  double gpSeconds = 0.0;
  double lgSeconds = 0.0;
  double dpSeconds = 0.0;
  double nlSeconds = 0.0;  ///< Routability mode: nonlinear optimization.
  double grSeconds = 0.0;  ///< Routability mode: global routing.
  double rc = 0.0;         ///< Routability mode: congestion metric.
  double sHpwl = 0.0;      ///< Routability mode: scaled HPWL.
  double totalSeconds = 0.0;
};

/// Runs the full placement flow on `db` in place.
FlowResult placeDesign(Database& db, const PlacerOptions& options);

}  // namespace dreamplace
