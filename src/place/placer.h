// Top-level placement flow (paper Fig. 2b): GP -> LG -> DP, with the
// per-stage runtime accounting the paper's tables report (GP / LG / DP /
// IO columns) and an optional routability-driven mode (Table V).
#pragma once

#include <string>

#include "db/database.h"
#include "dp/detailed_placer.h"
#include "gp/global_placer.h"
#include "lg/abacus_legalizer.h"
#include "lg/greedy_legalizer.h"
#include "routeopt/inflation.h"

namespace dreamplace {

class FlowContext;
struct RunReport;

enum class Precision { kFloat32, kFloat64 };

/// Flow-scoped placement configuration: everything that describes *one*
/// flow run. Process/engine-scoped settings (worker pool size, job
/// concurrency, cache and trace capacities) live in EngineOptions
/// (place/engine.h); the one legacy exception is `threads` below, kept
/// for standalone placeDesign() callers and ignored under an engine.
struct PlacerOptions {
  Precision precision = Precision::kFloat64;
  /// Worker threads for the deterministic parallel runtime
  /// (common/parallel.h). 0 leaves the pool as configured (auto:
  /// DREAMPLACE_THREADS env var if set, else hardware concurrency).
  /// 1 runs strictly serial. Results are bit-identical for any value
  /// (docs/PARALLEL.md). Process-scoped: resizes the pool the flow runs
  /// on; PlacementEngine forces 0 so one job cannot resize the shared
  /// engine pool under its siblings (docs/ENGINE.md).
  int threads = 0;
  GlobalPlacerOptions gp;
  GreedyLegalizer::Options greedy;
  AbacusLegalizer::Options abacus;
  DetailedPlacer::Options dp;
  /// Partial-flow switch: false skips global placement and legalizes /
  /// refines the database's *current* positions (warm-start LG+DP-only
  /// re-runs; docs/FLOW.md). Incompatible with routability mode, whose
  /// inflation loop is a GP loop.
  bool runGlobalPlacement = true;
  bool runDetailedPlacement = true;
  bool routability = false;          ///< Table V mode.
  RoutabilityOptions routabilityOptions;

  // --- Checkpoint / resume (docs/FLOW.md) ---------------------------------
  /// Directory for flow checkpoints. Empty (default) disables
  /// checkpointing; non-empty writes a versioned binary snapshot
  /// (place/checkpoint.h) at every stage boundary, atomically replacing
  /// the previous one. The file is deleted when the flow completes.
  std::string checkpointDir;
  /// Checkpoint file stem inside checkpointDir ("<name>.dpck"); empty
  /// defaults to "flow". PlacementEngine sets it to the job name.
  std::string checkpointName;
  /// Additionally checkpoint mid-GP every N iterations (0 = stage
  /// boundaries only). Requires checkpointDir. Ignored in routability
  /// mode, whose GP restarts carry inflation state a mid-run snapshot
  /// does not cover — routability flows checkpoint at stage boundaries.
  int checkpointEveryIterations = 0;
  /// Path of a checkpoint to resume from. The flow restores positions,
  /// counters, and partial results, then continues at the saved stage
  /// (mid-GP when the checkpoint was taken there). A float64 resumed run
  /// is bit-identical to an uninterrupted one (docs/FLOW.md lists the
  /// few allocation-bookkeeping counters that legitimately differ).
  /// Must target the same design, options, and precision.
  std::string resumeFrom;

  // --- Observability exports (all off by default; see
  // docs/OBSERVABILITY.md) -------------------------------------------------
  /// Per-iteration GP telemetry as JSONL, one record per iteration.
  std::string telemetryJsonl;
  /// Per-run GP summary CSV (one row per GP run, incl. restarts).
  std::string telemetryCsv;
  /// Chrome trace-event JSON (chrome://tracing / Perfetto) covering the
  /// whole flow: every ScopedTimer scope plus GP counter tracks.
  std::string traceFile;
  /// End-of-flow run report (place/report.h): one JSON document with
  /// stage and per-op self-time breakdowns, GP convergence summaries,
  /// counter deltas, and memory attribution. CI's regression gate
  /// (tools/check_report) consumes this file.
  std::string reportJson;
  /// Human-readable text rendering of the same report.
  std::string reportText;
  /// Additional caller-provided sink (non-owning); composed with the
  /// file exports above.
  TelemetrySink* telemetry = nullptr;
  /// Label stamped on telemetry records (design name); defaults to "".
  std::string telemetryLabel;

  /// Rejects nonsensical configurations with an actionable message.
  /// Throws std::invalid_argument listing every violated constraint.
  void validate() const;

  /// Full configuration as one JSON object (every field, names instead of
  /// enum ordinals). Embedded under "config.options" in RunReport so a
  /// report completely identifies the run that produced it.
  std::string toJson() const;
};

struct FlowResult {
  double hpwlGp = 0.0;     ///< HPWL right after global placement.
  double hpwlLegal = 0.0;  ///< After legalization.
  double hpwl = 0.0;       ///< Final (after DP).
  double overflow = 0.0;
  int gpIterations = 0;
  bool legal = false;
  /// Legalization took the greedy-fallback path (the first Abacus pass
  /// left cells unplaced, so greedy packing ran and Abacus re-ran).
  bool lgFallback = false;
  /// Cells the *final* legalization pass still could not place (0 on a
  /// healthy flow; >0 means the placement is not legal).
  int lgFailedCells = 0;
  double gpSeconds = 0.0;
  double lgSeconds = 0.0;
  double dpSeconds = 0.0;
  double nlSeconds = 0.0;  ///< Routability mode: nonlinear optimization.
  double grSeconds = 0.0;  ///< Routability mode: global routing.
  double rc = 0.0;         ///< Routability mode: congestion metric.
  double sHpwl = 0.0;      ///< Routability mode: scaled HPWL.
  double totalSeconds = 0.0;
};

/// Runs the full placement flow on `db` in place. Each call runs under a
/// fresh FlowContext, so the RunReport (when requested) contains exactly
/// this flow's counters/timings — sequential flows in one process no
/// longer leak into each other's reports.
FlowResult placeDesign(Database& db, const PlacerOptions& options);

/// Context-aware variant: runs the flow under `context` (installed on the
/// calling thread for the duration). The context carries the registries,
/// trace recorder, worker pool, and the cooperative deadline/cancel state
/// honored at GP-iteration and stage boundaries. When `reportOut` is
/// non-null the assembled RunReport is also returned through it (built
/// regardless of whether file exports were requested). This is the entry
/// point PlacementEngine drives.
FlowResult placeDesign(Database& db, const PlacerOptions& options,
                       FlowContext& context, RunReport* reportOut = nullptr);

}  // namespace dreamplace
