// Count-based regression gate over flow run reports.
//
// CI compares a fresh RunReport (place/report.h) against a checked-in
// baseline of *deterministic count invariants* — never wall-times, which
// vary with the machine. Example invariants: one forward DCT per Poisson
// solve, one density-solver workspace allocation per flow, zero atomic
// wirelength allocations under the merged kernel, zero dropped trace
// events. tools/check_report.cpp is the CLI wrapper; the logic lives here
// so tests can drive it in-process.
//
// Both documents are parsed with a dependency-free flattening JSON
// parser: nested keys join with '.', array elements use their index
// ("gp_runs.0.iterations"), booleans map to 0/1, null is skipped.
//
// Baseline schema (tools/report_baseline.json):
//   {"schema": "dreamplace.report_baseline.v1",
//    "checks": [
//      {"path": "counters.trace/dropped", "op": "eq", "value": 0},
//      {"path": "counters.fft/dct2d", "op": "eq_path",
//       "other": "counters.ops/electrostatics/solve"},
//      ...]}
// Ops: eq / le / ge compare against "value"; eq_path / le_path / ge_path
// compare against the report value at "other".
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dreamplace {

/// A JSON document flattened to dotted-path leaves.
struct FlatJson {
  std::map<std::string, double> numbers;  ///< Numbers and booleans (0/1).
  std::map<std::string, std::string> strings;

  bool hasNumber(const std::string& path) const {
    return numbers.find(path) != numbers.end();
  }
};

/// Parses `text` into `out`. Returns false and sets `error` (if non-null)
/// on malformed input.
bool parseJsonFlat(const std::string& text, FlatJson& out,
                   std::string* error = nullptr);

/// Outcome of one baseline check.
struct CheckResult {
  std::string description;
  bool passed = false;
  std::string detail;  ///< Observed vs expected, or the failure reason.
};

/// Runs every baseline check against the report. Returns false (with
/// `error`) when the baseline itself is malformed; individual check
/// failures are reported through the results, not the return value.
bool checkReport(const FlatJson& report, const FlatJson& baseline,
                 std::vector<CheckResult>& results,
                 std::string* error = nullptr);

/// True when the parsed document is a PlacementEngine batch report
/// (schema dreamplace.batch_report.v1, place/engine.h) rather than a
/// single run report.
bool isBatchReport(const FlatJson& document);

/// Outcome of checking one job of a batch report.
struct BatchJobCheck {
  std::string name;
  std::string status;    ///< "succeeded" / "failed" / "timed_out" /
                         ///< "diverged" / "stalled".
  std::string expected;  ///< Status this job was required to reach.
  bool succeeded = false;  ///< status == expected.
  /// Per-run baseline results over the job's embedded report; empty when
  /// the job did not succeed (there is no report to check).
  std::vector<CheckResult> results;
};

/// Per-job expectations for checkBatchReport. Jobs not listed must reach
/// "succeeded"; a listed job must land in exactly the given terminal
/// status (e.g. "diverged" for the CI health-gate's injected divergence
/// job) and is exempt from the per-run baseline, which only applies to
/// succeeded jobs' embedded reports.
struct BatchCheckOptions {
  std::map<std::string, std::string> expectedStatus;
};

/// Applies the per-run baseline to every job of a batch report: the
/// batch passes only when every job reached its expected status AND
/// every succeeded job's embedded RunReport passes every baseline check.
/// Returns false (with `error`) when the batch has no jobs or the
/// baseline is malformed.
bool checkBatchReport(const FlatJson& batch, const FlatJson& baseline,
                      std::vector<BatchJobCheck>& jobs,
                      std::string* error = nullptr,
                      const BatchCheckOptions& options = {});

/// Resume-determinism gate: compares two succeeded jobs of a batch report
/// and requires their embedded run reports to agree bit-for-bit on every
/// "result.*" and "design.*" leaf and on every resume-comparable counter
/// ("counters.*" minus isResumeVariantCounter, place/engine.h). Wall-time
/// leaves (suffix "_s") are skipped — a resumed run's timings cover only
/// the resumed segment. A path present on one side but not the other is a
/// failure. Returns false (with `error`) when either job is absent or not
/// succeeded; per-path outcomes land in `results`.
bool compareBatchJobsForResume(const FlatJson& batch, const std::string& jobA,
                               const std::string& jobB,
                               std::vector<CheckResult>& results,
                               std::string* error = nullptr);

}  // namespace dreamplace
