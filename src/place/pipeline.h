// Composable flow pipeline: the stage sequence of the paper's Fig. 2b
// (GP -> LG -> DP, plus the Table V routability re-estimate) as an
// explicit stage list instead of a hardcoded function body.
//
// Each PipelineStage declares its heartbeat stage, timing scope, and
// which FlowResult slots it fills; FlowPipeline::run() centralizes what
// every stage boundary used to do by hand — cooperative interrupt check,
// heartbeat transition, ScopedTimer, per-stage seconds and HPWL snapshot
// — so adding a stage is one registration, not five edit sites. On top,
// the pipeline checkpoints (place/checkpoint.h): a boundary snapshot
// after every stage when PlacerOptions::checkpointDir is set, plus
// mid-GP snapshots every checkpointEveryIterations, and a resume path
// (PlacerOptions::resumeFrom) that restores positions, counters, partial
// results, and the in-progress stage's state — bit-identical (float64)
// to an uninterrupted run. docs/FLOW.md has the full contract.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/heartbeat.h"
#include "common/timer.h"
#include "place/placer.h"

namespace dreamplace {

class ByteReader;
class ByteWriter;
class FlowCheckpointer;

/// Everything a stage may touch, assembled once per flow run.
struct StageContext {
  Database& db;
  const PlacerOptions& options;
  FlowResult& result;
  /// GP telemetry sink stack (null = no telemetry).
  TelemetrySink* telemetry = nullptr;
  /// Flow stopwatch, started when the pipeline starts (a resumed run
  /// therefore reports only the resumed segment's wall time).
  const Timer* totalTimer = nullptr;
  /// Non-null while checkpointing is enabled; owned by the pipeline.
  FlowCheckpointer* checkpointer = nullptr;
  /// Index of the running stage, maintained by the pipeline.
  std::size_t stageIndex = 0;
};

/// One flow stage. Concrete stages live in pipeline.cpp and are reached
/// through buildFlowPipeline(); tests address them via name().
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  virtual const char* name() const = 0;
  /// Heartbeat stage the pipeline enters before run() (deduplicated
  /// against the previous stage's value).
  virtual FlowStage heartbeatStage() const = 0;
  /// Timing-registry scope opened around run(); nullptr = none (stages
  /// whose workers open their own scopes, e.g. "gp" inside GlobalPlacer).
  virtual const char* timerKey() const { return nullptr; }
  /// FlowResult field receiving this stage's elapsed seconds (additive,
  /// so the two legalization stages share lgSeconds); nullptr = none.
  virtual double* secondsSlot(FlowResult&) const { return nullptr; }
  /// FlowResult field receiving hpwl(db) after the stage; nullptr = none.
  virtual double* hpwlSlot(FlowResult&) const { return nullptr; }

  virtual void run(StageContext& context) = 0;

  /// Mid-stage resumable state for checkpoints taken while the stage is
  /// running. Stateless stages (the default) write/read nothing; the GP
  /// stage round-trips the GlobalPlacer loop snapshot.
  virtual void saveState(ByteWriter&) const {}
  virtual void loadState(ByteReader&) {}
};

/// Writes flow checkpoints for one pipeline run. Owned by
/// FlowPipeline::run(); stages reach it through StageContext to request
/// mid-stage snapshots. A failed write throws — the caller asked for
/// checkpoints, and a silently missing one would defeat resume (the same
/// fail-loudly contract as report exports).
class FlowCheckpointer {
 public:
  FlowCheckpointer(std::string path, std::string signature,
                   std::uint8_t precision);

  /// Stage-boundary snapshot: the next stage to run is `nextCursor`.
  void saveBoundary(const StageContext& context, std::size_t nextCursor);
  /// Mid-stage snapshot of the stage at context.stageIndex, embedding
  /// stage.saveState().
  void saveMidStage(const StageContext& context, const PipelineStage& stage);
  /// Deletes the checkpoint file (the flow completed).
  void clear();

  const std::string& path() const { return path_; }

 private:
  void save(const StageContext& context, std::size_t cursor, bool midStage,
            std::string stageState);

  std::string path_;
  std::string signature_;
  std::uint8_t precision_;
};

class FlowPipeline {
 public:
  explicit FlowPipeline(std::vector<std::unique_ptr<PipelineStage>> stages);

  /// '|'-joined stage names — the checkpoint compatibility key: a resume
  /// rejects a checkpoint whose producing pipeline differs.
  std::string signature() const;
  const std::vector<std::unique_ptr<PipelineStage>>& stages() const {
    return stages_;
  }

  /// Runs the stages in order under the current FlowContext, resuming
  /// from context.options.resumeFrom when set and checkpointing when
  /// checkpointDir is set.
  void run(StageContext& context);

 private:
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

/// Assembles the standard flow for `options`:
///   [gp | gp_rt] -> macro_lg -> lg -> dp -> finalize [-> route]
/// honoring runGlobalPlacement (partial LG+DP-only flows) and
/// routability mode.
template <typename T>
FlowPipeline buildFlowPipeline(const PlacerOptions& options);

}  // namespace dreamplace
