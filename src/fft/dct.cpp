#include "fft/dct.h"

#include <cmath>
#include <complex>

#include "common/log.h"
#include "fft/fft.h"

namespace dreamplace::fft {

namespace {

template <typename T>
std::vector<T> dctNaive(const std::vector<T>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<T> out(n);
  for (int k = 0; k < n; ++k) {
    double acc = 0.0;
    for (int m = 0; m < n; ++m) {
      acc += static_cast<double>(x[m]) * std::cos(M_PI * (m + 0.5) * k / n);
    }
    out[k] = static_cast<T>(acc);
  }
  return out;
}

template <typename T>
std::vector<T> idctNaive(const std::vector<T>& c) {
  const int n = static_cast<int>(c.size());
  std::vector<T> out(n);
  for (int k = 0; k < n; ++k) {
    double acc = 0.5 * static_cast<double>(c[0]);
    for (int m = 1; m < n; ++m) {
      acc += static_cast<double>(c[m]) * std::cos(M_PI * m * (k + 0.5) / n);
    }
    out[k] = static_cast<T>(acc);
  }
  return out;
}

/// DCT-II via a 2N-point complex FFT of the half-sample even extension
/// [x_0..x_{N-1}, x_{N-1}..x_0]: Y_k = 2 e^{+j pi k/2N} X_k.
template <typename T>
std::vector<T> dctFft2N(const std::vector<T>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<std::complex<T>> y(2 * n);
  for (int i = 0; i < n; ++i) {
    y[i] = x[i];
    y[2 * n - 1 - i] = x[i];
  }
  fft(y.data(), 2 * n, false);
  std::vector<T> out(n);
  for (int k = 0; k < n; ++k) {
    const double angle = -M_PI * k / (2.0 * n);
    const std::complex<T> tw(static_cast<T>(std::cos(angle)),
                             static_cast<T>(std::sin(angle)));
    out[k] = T(0.5) * (tw * y[k]).real();
  }
  return out;
}

/// IDCT via a 2N-point inverse FFT: idct(c)_k = Re(S_k) - c_0/2 with
/// S = 2N * IDFT_2N(d), d_n = c_n e^{+j pi n/2N} zero-padded to 2N.
template <typename T>
std::vector<T> idctFft2N(const std::vector<T>& c) {
  const int n = static_cast<int>(c.size());
  std::vector<std::complex<T>> d(2 * n, std::complex<T>(0, 0));
  for (int m = 0; m < n; ++m) {
    const double angle = M_PI * m / (2.0 * n);
    d[m] = static_cast<T>(c[m]) *
           std::complex<T>(static_cast<T>(std::cos(angle)),
                           static_cast<T>(std::sin(angle)));
  }
  fft(d.data(), 2 * n, true);
  std::vector<T> out(n);
  const T half_c0 = c[0] / T(2);
  for (int k = 0; k < n; ++k) {
    out[k] = static_cast<T>(2 * n) * d[k].real() - half_c0;
  }
  return out;
}

/// Makhoul N-point DCT (Algorithm 3 in the paper): reorder, one-sided real
/// FFT, and a linear-time twiddle pass.
template <typename T>
std::vector<T> dctFftN(const std::vector<T>& x) {
  const int n = static_cast<int>(x.size());
  DP_ASSERT_MSG(n % 2 == 0, "N-point DCT requires even N, got %d", n);
  std::vector<T> v(n);
  const int h = n / 2;
  for (int t = 0; t < n; ++t) {
    v[t] = (t < h) ? x[2 * t] : x[2 * (n - t) - 1];
  }
  std::vector<std::complex<T>> spectrum(h + 1);
  rfft(v.data(), spectrum.data(), n);
  std::vector<T> out(n);
  for (int k = 0; k < n; ++k) {
    const double angle = -M_PI * k / (2.0 * n);
    const std::complex<T> tw(static_cast<T>(std::cos(angle)),
                             static_cast<T>(std::sin(angle)));
    // Conjugate symmetry of the real FFT covers k > N/2.
    const std::complex<T> vk =
        (k <= h) ? spectrum[k] : std::conj(spectrum[n - k]);
    out[k] = (tw * vk).real();
  }
  return out;
}

/// Makhoul N-point IDCT: U_t = e^{+j pi t/2N} (c_t - j c_{N-t}) for
/// t = 0..N/2 (c_N := 0), one-sided inverse real FFT, inverse reorder,
/// scale by N/2.
template <typename T>
std::vector<T> idctFftN(const std::vector<T>& c) {
  const int n = static_cast<int>(c.size());
  DP_ASSERT_MSG(n % 2 == 0, "N-point IDCT requires even N, got %d", n);
  const int h = n / 2;
  std::vector<std::complex<T>> u(h + 1);
  for (int t = 0; t <= h; ++t) {
    const T ct = c[t];
    const T cnt = (t == 0) ? T(0) : c[n - t];
    const double angle = M_PI * t / (2.0 * n);
    const std::complex<T> tw(static_cast<T>(std::cos(angle)),
                             static_cast<T>(std::sin(angle)));
    u[t] = tw * std::complex<T>(ct, -cnt);
  }
  std::vector<T> v(n);
  irfft(u.data(), v.data(), n);
  std::vector<T> out(n);
  const T scale = static_cast<T>(n) / T(2);
  for (int k = 0; k < n; ++k) {
    // Inverse of the forward reorder: even outputs from the first half.
    out[k] = scale * ((k % 2 == 0) ? v[k / 2] : v[n - (k + 1) / 2]);
  }
  return out;
}

}  // namespace

template <typename T>
std::vector<T> dct(const std::vector<T>& x, DctAlgorithm algo) {
  switch (algo) {
    case DctAlgorithm::kNaive:
      return dctNaive(x);
    case DctAlgorithm::kFft2N:
      return dctFft2N(x);
    case DctAlgorithm::kFftN:
      return dctFftN(x);
  }
  logFatal("unknown DCT algorithm");
}

template <typename T>
std::vector<T> idct(const std::vector<T>& c, DctAlgorithm algo) {
  switch (algo) {
    case DctAlgorithm::kNaive:
      return idctNaive(c);
    case DctAlgorithm::kFft2N:
      return idctFft2N(c);
    case DctAlgorithm::kFftN:
      return idctFftN(c);
  }
  logFatal("unknown IDCT algorithm");
}

template <typename T>
std::vector<T> idxst(const std::vector<T>& c, DctAlgorithm algo) {
  const int n = static_cast<int>(c.size());
  // Paper eq. (8e): idxst(c)_k = (-1)^k idct(z)_k, z_0 = 0, z_n = c_{N-n}.
  std::vector<T> z(n);
  z[0] = T(0);
  for (int m = 1; m < n; ++m) {
    z[m] = c[n - m];
  }
  std::vector<T> y = idct(z, algo);
  for (int k = 1; k < n; k += 2) {
    y[k] = -y[k];
  }
  return y;
}

#define DP_INSTANTIATE_DCT(T)                                          \
  template std::vector<T> dct<T>(const std::vector<T>&, DctAlgorithm); \
  template std::vector<T> idct<T>(const std::vector<T>&, DctAlgorithm); \
  template std::vector<T> idxst<T>(const std::vector<T>&, DctAlgorithm);

DP_INSTANTIATE_DCT(float)
DP_INSTANTIATE_DCT(double)

#undef DP_INSTANTIATE_DCT

}  // namespace dreamplace::fft
