#include "fft/dct.h"

#include <cmath>
#include <complex>

#include "common/log.h"
#include "fft/fft.h"

namespace dreamplace::fft {

namespace {

/// Thread-local quarter-wave twiddle table exp(-i*pi*k/(2n)), k < n.
/// The row-column drivers call the 1-D transforms with the same n for a
/// whole pass, so each thread computes the table once per pass instead of
/// n trig pairs per row.
template <typename T>
const std::complex<T>* quarterTwiddles(int n) {
  thread_local std::vector<std::complex<T>> tw;
  thread_local int cached_n = 0;
  if (cached_n != n) {
    tw.resize(n);
    for (int k = 0; k < n; ++k) {
      const double angle = -M_PI * k / (2.0 * n);
      tw[k] = std::complex<T>(static_cast<T>(std::cos(angle)),
                              static_cast<T>(std::sin(angle)));
    }
    cached_n = n;
  }
  return tw.data();
}

template <typename T>
void dctNaive(const T* x, T* out, int n) {
  for (int k = 0; k < n; ++k) {
    double acc = 0.0;
    for (int m = 0; m < n; ++m) {
      acc += static_cast<double>(x[m]) * std::cos(M_PI * (m + 0.5) * k / n);
    }
    out[k] = static_cast<T>(acc);
  }
}

template <typename T>
void idctNaive(const T* c, T* out, int n) {
  for (int k = 0; k < n; ++k) {
    double acc = 0.5 * static_cast<double>(c[0]);
    for (int m = 1; m < n; ++m) {
      acc += static_cast<double>(c[m]) * std::cos(M_PI * m * (k + 0.5) / n);
    }
    out[k] = static_cast<T>(acc);
  }
}

/// DCT-II via a 2N-point complex FFT of the half-sample even extension
/// [x_0..x_{N-1}, x_{N-1}..x_0]: Y_k = 2 e^{+j pi k/2N} X_k.
template <typename T>
void dctFft2N(const T* x, T* out, int n) {
  thread_local std::vector<std::complex<T>> y;
  y.assign(2 * n, std::complex<T>(0, 0));
  for (int i = 0; i < n; ++i) {
    y[i] = x[i];
    y[2 * n - 1 - i] = x[i];
  }
  fft(y.data(), 2 * n, false);
  const std::complex<T>* tw = quarterTwiddles<T>(n);
  for (int k = 0; k < n; ++k) {
    out[k] = T(0.5) * (tw[k] * y[k]).real();
  }
}

/// IDCT via a 2N-point inverse FFT: idct(c)_k = Re(S_k) - c_0/2 with
/// S = 2N * IDFT_2N(d), d_n = c_n e^{+j pi n/2N} zero-padded to 2N.
template <typename T>
void idctFft2N(const T* c, T* out, int n) {
  thread_local std::vector<std::complex<T>> d;
  d.assign(2 * n, std::complex<T>(0, 0));
  const std::complex<T>* tw = quarterTwiddles<T>(n);
  for (int m = 0; m < n; ++m) {
    d[m] = c[m] * std::conj(tw[m]);
  }
  fft(d.data(), 2 * n, true);
  const T half_c0 = c[0] / T(2);
  for (int k = 0; k < n; ++k) {
    out[k] = static_cast<T>(2 * n) * d[k].real() - half_c0;
  }
}

/// Makhoul N-point DCT (Algorithm 3 in the paper): reorder, one-sided real
/// FFT, and a linear-time twiddle pass.
template <typename T>
void dctFftN(const T* x, T* out, int n) {
  DP_ASSERT_MSG(n % 2 == 0, "N-point DCT requires even N, got %d", n);
  const int h = n / 2;
  thread_local std::vector<T> v;
  thread_local std::vector<std::complex<T>> spectrum;
  v.resize(n);
  spectrum.resize(h + 1);
  for (int t = 0; t < n; ++t) {
    v[t] = (t < h) ? x[2 * t] : x[2 * (n - t) - 1];
  }
  rfft(v.data(), spectrum.data(), n);
  const std::complex<T>* tw = quarterTwiddles<T>(n);
  for (int k = 0; k < n; ++k) {
    // Conjugate symmetry of the real FFT covers k > N/2.
    const std::complex<T> vk =
        (k <= h) ? spectrum[k] : std::conj(spectrum[n - k]);
    out[k] = (tw[k] * vk).real();
  }
}

/// Makhoul N-point IDCT: U_t = e^{+j pi t/2N} (c_t - j c_{N-t}) for
/// t = 0..N/2 (c_N := 0), one-sided inverse real FFT, inverse reorder,
/// scale by N/2.
template <typename T>
void idctFftN(const T* c, T* out, int n) {
  DP_ASSERT_MSG(n % 2 == 0, "N-point IDCT requires even N, got %d", n);
  const int h = n / 2;
  thread_local std::vector<std::complex<T>> u;
  thread_local std::vector<T> v;
  u.resize(h + 1);
  v.resize(n);
  const std::complex<T>* tw = quarterTwiddles<T>(n);
  for (int t = 0; t <= h; ++t) {
    const T ct = c[t];
    const T cnt = (t == 0) ? T(0) : c[n - t];
    u[t] = std::conj(tw[t]) * std::complex<T>(ct, -cnt);
  }
  irfft(u.data(), v.data(), n);
  const T scale = static_cast<T>(n) / T(2);
  for (int k = 0; k < n; ++k) {
    // Inverse of the forward reorder: even outputs from the first half.
    out[k] = scale * ((k % 2 == 0) ? v[k / 2] : v[n - (k + 1) / 2]);
  }
}

}  // namespace

template <typename T>
void dct(const T* in, T* out, int n, DctAlgorithm algo) {
  switch (algo) {
    case DctAlgorithm::kNaive:
      return dctNaive(in, out, n);
    case DctAlgorithm::kFft2N:
      return dctFft2N(in, out, n);
    case DctAlgorithm::kFftN:
      return dctFftN(in, out, n);
  }
  logFatal("unknown DCT algorithm");
}

template <typename T>
void idct(const T* in, T* out, int n, DctAlgorithm algo) {
  switch (algo) {
    case DctAlgorithm::kNaive:
      return idctNaive(in, out, n);
    case DctAlgorithm::kFft2N:
      return idctFft2N(in, out, n);
    case DctAlgorithm::kFftN:
      return idctFftN(in, out, n);
  }
  logFatal("unknown IDCT algorithm");
}

template <typename T>
void idxst(const T* in, T* out, int n, DctAlgorithm algo) {
  // Paper eq. (8e): idxst(c)_k = (-1)^k idct(z)_k, z_0 = 0, z_n = c_{N-n}.
  thread_local std::vector<T> z;
  z.resize(n);
  z[0] = T(0);
  for (int m = 1; m < n; ++m) {
    z[m] = in[n - m];
  }
  idct(z.data(), out, n, algo);
  for (int k = 1; k < n; k += 2) {
    out[k] = -out[k];
  }
}

template <typename T>
std::vector<T> dct(const std::vector<T>& x, DctAlgorithm algo) {
  std::vector<T> out(x.size());
  dct(x.data(), out.data(), static_cast<int>(x.size()), algo);
  return out;
}

template <typename T>
std::vector<T> idct(const std::vector<T>& c, DctAlgorithm algo) {
  std::vector<T> out(c.size());
  idct(c.data(), out.data(), static_cast<int>(c.size()), algo);
  return out;
}

template <typename T>
std::vector<T> idxst(const std::vector<T>& c, DctAlgorithm algo) {
  std::vector<T> out(c.size());
  idxst(c.data(), out.data(), static_cast<int>(c.size()), algo);
  return out;
}

#define DP_INSTANTIATE_DCT(T)                                           \
  template void dct<T>(const T*, T*, int, DctAlgorithm);                \
  template void idct<T>(const T*, T*, int, DctAlgorithm);               \
  template void idxst<T>(const T*, T*, int, DctAlgorithm);              \
  template std::vector<T> dct<T>(const std::vector<T>&, DctAlgorithm);  \
  template std::vector<T> idct<T>(const std::vector<T>&, DctAlgorithm); \
  template std::vector<T> idxst<T>(const std::vector<T>&, DctAlgorithm);

DP_INSTANTIATE_DCT(float)
DP_INSTANTIATE_DCT(double)

#undef DP_INSTANTIATE_DCT

}  // namespace dreamplace::fft
