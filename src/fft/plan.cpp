#include "fft/plan.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/counters.h"
#include "common/log.h"

namespace dreamplace::fft {

namespace {

bool isPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int nextPowerOfTwo(int n) {
  int p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

template <typename T>
std::complex<T> unitPhase(double angle) {
  return {static_cast<T>(std::cos(angle)), static_cast<T>(std::sin(angle))};
}

}  // namespace

// ---------------------------------------------------------------------------
// FftPlan
// ---------------------------------------------------------------------------

template <typename T>
FftPlan<T>::FftPlan(int n, bool inverse) : n_(n), inverse_(inverse) {
  DP_ASSERT(n >= 1);
  if (n_ == 1) {
    return;
  }
  if (isPowerOfTwo(n_)) {
    // Bit-reversal swap pairs (i < j only, so execution is a plain sweep).
    swaps_.reserve(n_ / 2);
    for (int i = 1, j = 0; i < n_; ++i) {
      int bit = n_ >> 1;
      for (; j & bit; bit >>= 1) {
        j ^= bit;
      }
      j ^= bit;
      if (i < j) {
        swaps_.emplace_back(i, j);
      }
    }
    // Per-stage twiddle tables, every entry from fresh double trigonometry
    // (the legacy w *= wlen recurrence drifted ~1e-4 in float32 by
    // n = 4096; see tests/fft_test.cpp Float32AccuracyAt4096).
    twiddles_.reserve(n_ - 1);
    for (int len = 2; len <= n_; len <<= 1) {
      const double base = (inverse_ ? 2.0 : -2.0) * M_PI / len;
      for (int k = 0; k < len / 2; ++k) {
        twiddles_.push_back(unitPhase<T>(base * k));
      }
    }
    return;
  }

  // Bluestein chirp-z state. k^2 mod 2n keeps the quadratic phase exact
  // for large n.
  m_ = nextPowerOfTwo(2 * n_ + 1);
  scratch_size_ = static_cast<std::size_t>(m_);
  chirp_.resize(n_);
  for (int k = 0; k < n_; ++k) {
    const long long k2 = (static_cast<long long>(k) * k) % (2LL * n_);
    const double angle = (inverse_ ? 1.0 : -1.0) * M_PI *
                         static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = unitPhase<T>(angle);
  }
  sub_fwd_ = std::make_unique<const FftPlan<T>>(m_, false);
  sub_inv_ = std::make_unique<const FftPlan<T>>(m_, true);
  // Pre-transform the chirp kernel q once; execution then needs a single
  // forward sub-FFT, a pointwise product, and one inverse sub-FFT.
  qspec_.assign(m_, std::complex<T>(0, 0));
  qspec_[0] = std::conj(chirp_[0]);
  for (int k = 1; k < n_; ++k) {
    qspec_[k] = qspec_[m_ - k] = std::conj(chirp_[k]);
  }
  sub_fwd_->execute(qspec_.data(), nullptr);
}

template <typename T>
void FftPlan<T>::executePow2(std::complex<T>* a) const {
  for (const auto& [i, j] : swaps_) {
    std::swap(a[i], a[j]);
  }
  const std::complex<T>* tw = twiddles_.data();
  for (int len = 2; len <= n_; len <<= 1) {
    const int half = len / 2;
    for (int i = 0; i < n_; i += len) {
      for (int k = 0; k < half; ++k) {
        const std::complex<T> u = a[i + k];
        const std::complex<T> v = a[i + k + half] * tw[k];
        a[i + k] = u + v;
        a[i + k + half] = u - v;
      }
    }
    tw += half;
  }
  if (inverse_) {
    const T scale = T(1) / static_cast<T>(n_);
    for (int i = 0; i < n_; ++i) {
      a[i] *= scale;
    }
  }
}

template <typename T>
void FftPlan<T>::executeBluestein(std::complex<T>* a,
                                  std::complex<T>* scratch) const {
  DP_ASSERT_MSG(scratch != nullptr, "Bluestein execution needs scratch");
  std::complex<T>* p = scratch;
  for (int k = 0; k < n_; ++k) {
    p[k] = a[k] * chirp_[k];
  }
  for (int k = n_; k < m_; ++k) {
    p[k] = std::complex<T>(0, 0);
  }
  sub_fwd_->execute(p, nullptr);
  for (int k = 0; k < m_; ++k) {
    p[k] *= qspec_[k];
  }
  sub_inv_->execute(p, nullptr);
  for (int k = 0; k < n_; ++k) {
    a[k] = p[k] * chirp_[k];
  }
  if (inverse_) {
    const T scale = T(1) / static_cast<T>(n_);
    for (int k = 0; k < n_; ++k) {
      a[k] *= scale;
    }
  }
}

template <typename T>
void FftPlan<T>::execute(std::complex<T>* data,
                         std::complex<T>* scratch) const {
  if (n_ == 1) {
    return;
  }
  if (m_ == 0) {
    executePow2(data);
  } else {
    executeBluestein(data, scratch);
  }
}

// ---------------------------------------------------------------------------
// RfftPlan
// ---------------------------------------------------------------------------

template <typename T>
RfftPlan<T>::RfftPlan(int n, bool inverse) : n_(n), inverse_(inverse) {
  DP_ASSERT_MSG(n >= 2 && n % 2 == 0, "real FFT requires even n, got %d", n);
  const int h = n_ / 2;
  half_ = PlanCache::complexPlan<T>(h, inverse_);
  unpack_.resize(h + 1);
  const double base = (inverse_ ? 2.0 : -2.0) * M_PI / n_;
  for (int k = 0; k <= h; ++k) {
    unpack_[k] = unitPhase<T>(base * k);
  }
}

template <typename T>
std::size_t RfftPlan<T>::scratchSize() const {
  return static_cast<std::size_t>(n_ / 2) + half_->scratchSize();
}

template <typename T>
void RfftPlan<T>::forward(const T* in, std::complex<T>* out,
                          std::complex<T>* scratch) const {
  DP_ASSERT(!inverse_);
  const int h = n_ / 2;
  std::complex<T>* z = scratch;
  // Pack adjacent real pairs into complex samples and run a half-size FFT.
  for (int m = 0; m < h; ++m) {
    z[m] = std::complex<T>(in[2 * m], in[2 * m + 1]);
  }
  half_->execute(z, scratch + h);
  // Unpack: E_k (even-sample DFT) and O_k (odd-sample DFT).
  for (int k = 0; k <= h; ++k) {
    const std::complex<T> zk = z[k % h];
    const std::complex<T> zc = std::conj(z[(h - k) % h]);
    const std::complex<T> even = (zk + zc) * T(0.5);
    const std::complex<T> odd =
        (zk - zc) * std::complex<T>(0, T(-0.5));  // divide by 2i
    out[k] = even + unpack_[k] * odd;
  }
}

template <typename T>
void RfftPlan<T>::inverse(const std::complex<T>* in, T* out,
                          std::complex<T>* scratch) const {
  DP_ASSERT(inverse_);
  const int h = n_ / 2;
  std::complex<T>* z = scratch;
  for (int k = 0; k < h; ++k) {
    const std::complex<T> xk = in[k];
    const std::complex<T> xc = std::conj(in[h - k]);
    const std::complex<T> even = (xk + xc) * T(0.5);
    const std::complex<T> odd = (xk - xc) * T(0.5) * unpack_[k];
    z[k] = even + std::complex<T>(0, 1) * odd;
  }
  half_->execute(z, scratch + h);
  for (int m = 0; m < h; ++m) {
    out[2 * m] = z[m].real();
    out[2 * m + 1] = z[m].imag();
  }
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

namespace {

/// One mutex-guarded shard per (plan kind, precision). Keyed by
/// n * 2 + inverse. Plans are constructed while holding the shard lock so
/// concurrent requests for the same key build exactly once; FftPlan
/// construction never re-enters its own shard (Bluestein sub-plans are
/// owned directly), and RfftPlan construction only takes the — distinct —
/// FftPlan shard lock.
template <typename P>
struct PlanShard {
  std::mutex mutex;
  std::map<std::int64_t, std::shared_ptr<const P>> plans;

  static PlanShard& instance() {
    static PlanShard shard;
    return shard;
  }

  std::shared_ptr<const P> get(int n, bool inverse) {
    static Counter creates("fft/plan/create");
    static Counter hits("fft/plan/hit");
    const std::int64_t key = static_cast<std::int64_t>(n) * 2 + (inverse ? 1 : 0);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = plans.find(key);
    if (it != plans.end()) {
      hits.add();
      return it->second;
    }
    creates.add();
    auto plan = std::make_shared<const P>(n, inverse);
    plans.emplace(key, plan);
    return plan;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lock(mutex);
    return plans.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    plans.clear();
  }
};

}  // namespace

template <typename T>
std::shared_ptr<const FftPlan<T>> PlanCache::complexPlan(int n,
                                                         bool inverse) {
  return PlanShard<FftPlan<T>>::instance().get(n, inverse);
}

template <typename T>
std::shared_ptr<const RfftPlan<T>> PlanCache::realPlan(int n, bool inverse) {
  return PlanShard<RfftPlan<T>>::instance().get(n, inverse);
}

std::size_t PlanCache::size() {
  return PlanShard<FftPlan<float>>::instance().size() +
         PlanShard<FftPlan<double>>::instance().size() +
         PlanShard<RfftPlan<float>>::instance().size() +
         PlanShard<RfftPlan<double>>::instance().size();
}

void PlanCache::clear() {
  PlanShard<FftPlan<float>>::instance().clear();
  PlanShard<FftPlan<double>>::instance().clear();
  PlanShard<RfftPlan<float>>::instance().clear();
  PlanShard<RfftPlan<double>>::instance().clear();
}

#define DP_INSTANTIATE_PLAN(T)                                             \
  template class FftPlan<T>;                                               \
  template class RfftPlan<T>;                                              \
  template std::shared_ptr<const FftPlan<T>> PlanCache::complexPlan<T>(    \
      int, bool);                                                          \
  template std::shared_ptr<const RfftPlan<T>> PlanCache::realPlan<T>(int,  \
                                                                     bool);

DP_INSTANTIATE_PLAN(float)
DP_INSTANTIATE_PLAN(double)

#undef DP_INSTANTIATE_PLAN

}  // namespace dreamplace::fft
