// Plan-based FFT engine (FFTW-style execution model).
//
// A plan captures everything about a transform that depends only on
// (size, precision, direction): the bit-reversal permutation, per-stage
// twiddle-factor tables (each entry evaluated directly with double-
// precision trigonometry — no error-accumulating w *= wlen recurrence),
// the rfft/irfft unpack twiddles, and for Bluestein (non-power-of-two)
// sizes the chirp vector plus the pre-transformed q-spectrum. Executing a
// plan therefore performs no trigonometry and no allocation; callers pass
// scratch explicitly (scratchSize() complex slots, zero for power-of-two
// complex transforms).
//
// Thread-safety contract (see docs/FFT.md):
//  * FftPlan / RfftPlan are immutable after construction; execute() is
//    const and may be called concurrently from any number of threads, each
//    with its own scratch.
//  * PlanCache is a process-wide, mutex-guarded registry; concurrent
//    lookups of the same key construct the plan exactly once and share it.
//  * The legacy stateless entry points (fft(), rfft(), dct2d(), ...) wrap
//    the cache with thread-local memoization and thread-local scratch, so
//    existing callers stay correct and become allocation-free in steady
//    state.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dreamplace::fft {

/// Immutable complex-FFT plan for one (size, direction).
template <typename T>
class FftPlan {
 public:
  FftPlan(int n, bool inverse);

  int size() const { return n_; }
  bool inverse() const { return inverse_; }

  /// Complex scratch slots execute() needs: 0 for power-of-two sizes,
  /// the padded Bluestein length otherwise.
  std::size_t scratchSize() const { return scratch_size_; }

  /// In-place transform of data[0..n). `scratch` must provide
  /// scratchSize() slots (may be null when that is zero).
  void execute(std::complex<T>* data, std::complex<T>* scratch) const;

 private:
  void executePow2(std::complex<T>* data) const;
  void executeBluestein(std::complex<T>* data,
                        std::complex<T>* scratch) const;

  int n_;
  bool inverse_;
  std::size_t scratch_size_ = 0;

  // Radix-2 state (power-of-two n, also the Bluestein sub-transforms).
  std::vector<std::pair<std::int32_t, std::int32_t>> swaps_;
  std::vector<std::complex<T>> twiddles_;  ///< stages flattened, n-1 total

  // Bluestein chirp-z state (non-power-of-two n).
  int m_ = 0;                            ///< padded size, >= 2n+1, pow2
  std::vector<std::complex<T>> chirp_;   ///< exp(+/- i*pi*k^2/n), k < n
  std::vector<std::complex<T>> qspec_;   ///< FFT_m of the chirp kernel
  std::unique_ptr<const FftPlan<T>> sub_fwd_;  ///< size-m forward plan
  std::unique_ptr<const FftPlan<T>> sub_inv_;  ///< size-m inverse plan
};

/// Immutable real-FFT plan for one (even size, direction): forward plans
/// execute rfft (real n -> complex n/2+1), inverse plans irfft. Holds the
/// half-size complex plan (shared through PlanCache) plus the precomputed
/// unpack twiddles exp(-/+ 2*pi*i*k/n).
template <typename T>
class RfftPlan {
 public:
  RfftPlan(int n, bool inverse);

  int size() const { return n_; }
  bool inverse() const { return inverse_; }

  /// Complex scratch slots: n/2 packing slots + the half plan's own need.
  std::size_t scratchSize() const;

  /// rfft: in[0..n) -> out[0..n/2]. Forward plans only.
  void forward(const T* in, std::complex<T>* out,
               std::complex<T>* scratch) const;

  /// irfft: in[0..n/2] -> out[0..n). Inverse plans only.
  void inverse(const std::complex<T>* in, T* out,
               std::complex<T>* scratch) const;

 private:
  int n_;
  bool inverse_;
  std::shared_ptr<const FftPlan<T>> half_;  ///< size n/2, same direction
  std::vector<std::complex<T>> unpack_;     ///< k = 0..n/2
};

/// Process-wide plan registry keyed by (size, direction) per precision.
/// Lookups are mutex-guarded; each key is constructed exactly once.
/// Counters: `fft/plan/create` and `fft/plan/hit`.
class PlanCache {
 public:
  template <typename T>
  static std::shared_ptr<const FftPlan<T>> complexPlan(int n, bool inverse);

  template <typename T>
  static std::shared_ptr<const RfftPlan<T>> realPlan(int n, bool inverse);

  /// Number of cached plans across all shards (both precisions).
  static std::size_t size();

  /// Drops every cached plan (outstanding shared_ptrs stay valid).
  static void clear();
};

}  // namespace dreamplace::fft
