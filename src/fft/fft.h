// Complex and real fast Fourier transforms.
//
// Self-contained (no FFTW in this environment): iterative radix-2 for
// power-of-two sizes with a Bluestein chirp-z fallback for arbitrary sizes.
// Real transforms use the standard half-size complex packing so an N-point
// real FFT costs one N/2-point complex FFT plus O(N) twiddling — this is
// what makes the paper's "N-point FFT" DCT (Algorithm 3) faster than the
// "2N-point FFT" formulation.
//
// Conventions:
//   fft:   X_k = sum_n x_n exp(-2*pi*i*k*n/N)        (unnormalized)
//   ifft:  x_n = (1/N) sum_k X_k exp(+2*pi*i*k*n/N)  (normalized)
//   rfft:  real x[N] -> complex X[N/2+1], N even
//   irfft: complex X[N/2+1] -> real x[N], N even; irfft(rfft(x)) == x
#pragma once

#include <complex>
#include <vector>

namespace dreamplace::fft {

/// In-place complex FFT (or inverse when `inverse`). Any n >= 1; power-of-
/// two sizes take the radix-2 path, others Bluestein.
template <typename T>
void fft(std::complex<T>* data, int n, bool inverse);

/// Convenience wrappers.
template <typename T>
std::vector<std::complex<T>> fft(std::vector<std::complex<T>> data,
                                 bool inverse = false);

/// Real-input FFT: writes n/2+1 complex outputs. Requires even n >= 2.
template <typename T>
void rfft(const T* in, std::complex<T>* out, int n);

/// Inverse of rfft: reconstructs n real samples from n/2+1 complex bins.
/// Requires even n >= 2.
template <typename T>
void irfft(const std::complex<T>* in, T* out, int n);

/// Naive O(n^2) DFT used as the test oracle.
template <typename T>
std::vector<std::complex<T>> naiveDft(const std::vector<std::complex<T>>& x,
                                      bool inverse);

}  // namespace dreamplace::fft
