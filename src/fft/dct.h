// 1-D discrete cosine transforms used by the spectral Poisson solver.
//
// Conventions (all unnormalized; matching paper eq. (7)):
//   dct(x)_k   = sum_{n=0}^{N-1} x_n cos(pi*(n+1/2)*k/N)           (DCT-II)
//   idct(c)_k  = c_0/2 + sum_{n=1}^{N-1} c_n cos(pi*n*(k+1/2)/N)   (DCT-III)
//   idxst(c)_k = sum_{n=0}^{N-1} c_n sin(pi*n*(k+1/2)/N)           (eq. (8))
// so that idct(dct(x)) == (N/2) * x.
//
// Two fast formulations are provided, mirroring the paper's comparison
// (Fig. 11): the textbook 2N-point-FFT route and Makhoul's N-point-FFT
// route (Algorithm 3). The N-point route additionally uses the one-sided
// real FFT, halving the transform size again.
#pragma once

#include <vector>

namespace dreamplace::fft {

enum class DctAlgorithm {
  kNaive,      ///< O(N^2) direct evaluation (test oracle).
  kFft2N,      ///< via a 2N-point complex FFT.
  kFftN,       ///< via an N-point real FFT (Algorithm 3).
};

template <typename T>
std::vector<T> dct(const std::vector<T>& x,
                   DctAlgorithm algo = DctAlgorithm::kFftN);

template <typename T>
std::vector<T> idct(const std::vector<T>& c,
                    DctAlgorithm algo = DctAlgorithm::kFftN);

/// Inverse DXT used for the electric field (paper eq. (8)); implemented by
/// reduction to idct: idxst(c)_k = (-1)^k * idct(z)_k with z_0 = 0,
/// z_n = c_{N-n}.
template <typename T>
std::vector<T> idxst(const std::vector<T>& c,
                     DctAlgorithm algo = DctAlgorithm::kFftN);

// Pointer-based forms used by the 2-D row-column drivers: write the n
// outputs into `out` with no per-call vector round trip. `in` and `out`
// must not alias. Internal temporaries are thread-local, so steady-state
// calls are allocation-free per thread.
template <typename T>
void dct(const T* in, T* out, int n, DctAlgorithm algo = DctAlgorithm::kFftN);

template <typename T>
void idct(const T* in, T* out, int n,
          DctAlgorithm algo = DctAlgorithm::kFftN);

template <typename T>
void idxst(const T* in, T* out, int n,
           DctAlgorithm algo = DctAlgorithm::kFftN);

}  // namespace dreamplace::fft
