#include "fft/dct2d.h"

#include <cmath>
#include <complex>

#include "common/counters.h"
#include "common/log.h"
#include "fft/fft.h"

namespace dreamplace::fft {

namespace {

template <typename T>
void transpose(const T* in, T* out, int n1, int n2) {
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      out[j * n1 + i] = in[i * n2 + j];
    }
  }
}

/// Applies a 1-D transform to every row of an n1 x n2 map.
template <typename T, typename Fn>
void applyRows(const T* in, T* out, int n1, int n2, Fn fn) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n1; ++i) {
    std::vector<T> row(in + i * n2, in + (i + 1) * n2);
    std::vector<T> res = fn(row);
    std::copy(res.begin(), res.end(), out + i * n2);
  }
}

/// Row-column driver: transform dim1 (rows), transpose, transform dim0,
/// transpose back. `fn0` acts along dim0, `fn1` along dim1.
template <typename T, typename Fn0, typename Fn1>
void rowCol(const T* in, T* out, int n1, int n2, Fn0 fn0, Fn1 fn1) {
  std::vector<T> tmp(static_cast<size_t>(n1) * n2);
  std::vector<T> tmp2(static_cast<size_t>(n1) * n2);
  applyRows(in, tmp.data(), n1, n2, fn1);
  transpose(tmp.data(), tmp2.data(), n1, n2);
  applyRows(tmp2.data(), tmp.data(), n2, n1, fn0);
  transpose(tmp.data(), out, n2, n1);
}

DctAlgorithm to1d(Dct2dAlgorithm algo) {
  switch (algo) {
    case Dct2dAlgorithm::kRowColNaive:
      return DctAlgorithm::kNaive;
    case Dct2dAlgorithm::kRowCol2N:
      return DctAlgorithm::kFft2N;
    case Dct2dAlgorithm::kRowColN:
      return DctAlgorithm::kFftN;
    default:
      logFatal("no 1-D equivalent for this 2-D algorithm");
  }
}

/// Makhoul per-dimension reorder index: v_t = x_{m(t)}.
inline int reorderIndex(int t, int n) {
  return (t < (n + 1) / 2) ? 2 * t : 2 * (n - t) - 1;
}

/// Inverse reorder index for the IDCT output pass.
inline int inverseReorderIndex(int k, int n) {
  return (k % 2 == 0) ? k / 2 : n - (k + 1) / 2;
}

template <typename T>
std::complex<T> unitPhase(double angle) {
  return {static_cast<T>(std::cos(angle)), static_cast<T>(std::sin(angle))};
}

/// Single-pass 2-D DCT via one 2-D real FFT (paper Algorithm 4 / Makhoul).
///
/// Steps: 2-D reorder -> row-wise real FFT (dim1) -> column-wise complex
/// FFT (dim0) -> O(N^2) twiddle combining the spectrum with its conjugate
/// mirror. Only the one-sided half of dim1 is ever materialized.
template <typename T>
void dct2dFft(const T* in, T* out, int n1, int n2) {
  DP_ASSERT_MSG(n2 % 2 == 0, "2-D DCT requires even n2, got %d", n2);
  const int h2 = n2 / 2;
  const int stride = h2 + 1;

  // Reorder both dimensions (eq. (10)).
  std::vector<T> reordered(static_cast<size_t>(n1) * n2);
  for (int t1 = 0; t1 < n1; ++t1) {
    const int s1 = reorderIndex(t1, n1);
    for (int t2 = 0; t2 < n2; ++t2) {
      reordered[t1 * n2 + t2] = in[s1 * n2 + reorderIndex(t2, n2)];
    }
  }

  // One-sided real FFT along dim1.
  std::vector<std::complex<T>> spec(static_cast<size_t>(n1) * stride);
#pragma omp parallel for schedule(static)
  for (int t1 = 0; t1 < n1; ++t1) {
    rfft(reordered.data() + t1 * n2, spec.data() + t1 * stride, n2);
  }

  // Complex FFT along dim0, column by column.
#pragma omp parallel for schedule(static)
  for (int k2 = 0; k2 <= h2; ++k2) {
    std::vector<std::complex<T>> col(n1);
    for (int t1 = 0; t1 < n1; ++t1) {
      col[t1] = spec[t1 * stride + k2];
    }
    fft(col.data(), n1, false);
    for (int t1 = 0; t1 < n1; ++t1) {
      spec[t1 * stride + k2] = col[t1];
    }
  }

  // Twiddle pass:
  //   X(k1,k2) = 1/2 Re(e^{-j a1 k1} (e^{-j a2 k2} A + e^{+j a2 k2} B))
  // with A = V(k1,k2), B = V(k1,(n2-k2) mod n2); the one-sided storage is
  // expanded through the Hermitian symmetry V(k1,k2) = conj(V((n1-k1)%n1,
  // n2-k2)).
#pragma omp parallel for schedule(static)
  for (int k1 = 0; k1 < n1; ++k1) {
    const int r1 = (n1 - k1) % n1;
    const std::complex<T> tw1 = unitPhase<T>(-M_PI * k1 / (2.0 * n1));
    for (int k2 = 0; k2 < n2; ++k2) {
      std::complex<T> a;
      std::complex<T> b;
      if (k2 <= h2) {
        a = spec[k1 * stride + k2];
        b = std::conj(spec[r1 * stride + k2]);
      } else {
        const int m2 = n2 - k2;
        a = std::conj(spec[r1 * stride + m2]);
        b = spec[k1 * stride + m2];
      }
      const std::complex<T> tw2 = unitPhase<T>(-M_PI * k2 / (2.0 * n2));
      const std::complex<T> combined = tw2 * a + std::conj(tw2) * b;
      out[k1 * n2 + k2] = T(0.5) * (tw1 * combined).real();
    }
  }
}

/// Single-pass 2-D IDCT via one 2-D inverse real FFT.
///
///   U(t1,t2) = e^{+j a1 t1} e^{+j a2 t2}
///              (c(t1,t2) - c(n1-t1,n2-t2) - j (c(t1,n2-t2) + c(n1-t1,t2)))
/// with out-of-range c treated as zero (paper eq. (12)); then a column-wise
/// inverse complex FFT, a row-wise inverse real FFT, the inverse reorder of
/// eq. (13), and the (n1/2)(n2/2) scale from the 1-D convention.
template <typename T>
void idct2dFft(const T* in, T* out, int n1, int n2) {
  DP_ASSERT_MSG(n2 % 2 == 0, "2-D IDCT requires even n2, got %d", n2);
  const int h2 = n2 / 2;
  const int stride = h2 + 1;

  auto at = [&](int i1, int i2) -> T {
    // c with zero padding at index n1 / n2 (not periodic wrap).
    if (i1 >= n1 || i2 >= n2) {
      return T(0);
    }
    return in[i1 * n2 + i2];
  };

  std::vector<std::complex<T>> u(static_cast<size_t>(n1) * stride);
#pragma omp parallel for schedule(static)
  for (int t1 = 0; t1 < n1; ++t1) {
    const std::complex<T> tw1 = unitPhase<T>(M_PI * t1 / (2.0 * n1));
    for (int t2 = 0; t2 <= h2; ++t2) {
      const std::complex<T> tw2 = unitPhase<T>(M_PI * t2 / (2.0 * n2));
      const T re = at(t1, t2) - at(n1 - t1, n2 - t2);
      const T im = -(at(t1, n2 - t2) + at(n1 - t1, t2));
      u[t1 * stride + t2] = tw1 * tw2 * std::complex<T>(re, im);
    }
  }

  // Inverse complex FFT along dim0.
#pragma omp parallel for schedule(static)
  for (int t2 = 0; t2 <= h2; ++t2) {
    std::vector<std::complex<T>> col(n1);
    for (int t1 = 0; t1 < n1; ++t1) {
      col[t1] = u[t1 * stride + t2];
    }
    fft(col.data(), n1, true);
    for (int t1 = 0; t1 < n1; ++t1) {
      u[t1 * stride + t2] = col[t1];
    }
  }

  // Inverse real FFT along dim1.
  std::vector<T> w(static_cast<size_t>(n1) * n2);
#pragma omp parallel for schedule(static)
  for (int t1 = 0; t1 < n1; ++t1) {
    irfft(u.data() + t1 * stride, w.data() + t1 * n2, n2);
  }

  // Inverse reorder (eq. (13)) and scale.
  const T scale = static_cast<T>(n1) * static_cast<T>(n2) / T(4);
#pragma omp parallel for schedule(static)
  for (int k1 = 0; k1 < n1; ++k1) {
    const int s1 = inverseReorderIndex(k1, n1);
    for (int k2 = 0; k2 < n2; ++k2) {
      out[k1 * n2 + k2] =
          scale * w[s1 * n2 + inverseReorderIndex(k2, n2)];
    }
  }
}

}  // namespace

template <typename T>
void dct2d(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  static Counter calls("fft/dct2d");
  calls.add();
  if (algo == Dct2dAlgorithm::kFft2dN) {
    dct2dFft(in, out, n1, n2);
    return;
  }
  const DctAlgorithm algo1d = to1d(algo);
  rowCol(
      in, out, n1, n2,
      [algo1d](const std::vector<T>& v) { return dct(v, algo1d); },
      [algo1d](const std::vector<T>& v) { return dct(v, algo1d); });
}

template <typename T>
void idct2d(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  static Counter calls("fft/idct2d");
  calls.add();
  if (algo == Dct2dAlgorithm::kFft2dN) {
    idct2dFft(in, out, n1, n2);
    return;
  }
  const DctAlgorithm algo1d = to1d(algo);
  rowCol(
      in, out, n1, n2,
      [algo1d](const std::vector<T>& v) { return idct(v, algo1d); },
      [algo1d](const std::vector<T>& v) { return idct(v, algo1d); });
}

template <typename T>
void idctIdxst(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  // Paper Alg. 4 IDCT_IDXST: flip dim1 (eq. (14)), 2-D IDCT, then apply
  // (-1)^{k2} (eq. (15)). This realizes IDXST along dim1.
  const size_t total = static_cast<size_t>(n1) * n2;
  std::vector<T> flipped(total);
  for (int i1 = 0; i1 < n1; ++i1) {
    flipped[i1 * n2 + 0] = T(0);
    for (int i2 = 1; i2 < n2; ++i2) {
      flipped[i1 * n2 + i2] = in[i1 * n2 + (n2 - i2)];
    }
  }
  idct2d(flipped.data(), out, n1, n2, algo);
  for (int i1 = 0; i1 < n1; ++i1) {
    for (int i2 = 1; i2 < n2; i2 += 2) {
      out[i1 * n2 + i2] = -out[i1 * n2 + i2];
    }
  }
}

template <typename T>
void idxstIdct(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  // Paper Alg. 4 IDXST_IDCT: flip dim0 (eq. (16)), 2-D IDCT, then apply
  // (-1)^{k1} (eq. (17)). This realizes IDXST along dim0.
  const size_t total = static_cast<size_t>(n1) * n2;
  std::vector<T> flipped(total);
  for (int i2 = 0; i2 < n2; ++i2) {
    flipped[0 * n2 + i2] = T(0);
  }
  for (int i1 = 1; i1 < n1; ++i1) {
    for (int i2 = 0; i2 < n2; ++i2) {
      flipped[i1 * n2 + i2] = in[(n1 - i1) * n2 + i2];
    }
  }
  idct2d(flipped.data(), out, n1, n2, algo);
  for (int i1 = 1; i1 < n1; i1 += 2) {
    for (int i2 = 0; i2 < n2; ++i2) {
      out[i1 * n2 + i2] = -out[i1 * n2 + i2];
    }
  }
}

#define DP_INSTANTIATE_DCT2D(T)                                      \
  template void dct2d<T>(const T*, T*, int, int, Dct2dAlgorithm);    \
  template void idct2d<T>(const T*, T*, int, int, Dct2dAlgorithm);   \
  template void idctIdxst<T>(const T*, T*, int, int, Dct2dAlgorithm); \
  template void idxstIdct<T>(const T*, T*, int, int, Dct2dAlgorithm);

DP_INSTANTIATE_DCT2D(float)
DP_INSTANTIATE_DCT2D(double)

#undef DP_INSTANTIATE_DCT2D

}  // namespace dreamplace::fft
