#include "fft/dct2d.h"

#include <cmath>
#include <map>
#include <memory>
#include <tuple>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"
#include "fft/fft.h"

namespace dreamplace::fft {

namespace {

/// Cache-blocked transpose: walks 64x64 tiles so the strided writes stay
/// within one L1-resident tile instead of thrashing a whole column of
/// cache lines per row on large maps. Row-tile stripes parallelize over
/// the pool (disjoint output rows per stripe).
template <typename T>
void transposeBlocked(const T* in, T* out, int n1, int n2) {
  constexpr int kBlock = 64;
  const Index row_tiles = (n1 + kBlock - 1) / kBlock;
  parallelFor("fft/transpose", row_tiles, 1, [&](Index tile) {
    const int ib = static_cast<int>(tile) * kBlock;
    const int iend = std::min(ib + kBlock, n1);
    for (int jb = 0; jb < n2; jb += kBlock) {
      const int jend = std::min(jb + kBlock, n2);
      for (int i = ib; i < iend; ++i) {
        for (int j = jb; j < jend; ++j) {
          out[static_cast<size_t>(j) * n1 + i] =
              in[static_cast<size_t>(i) * n2 + j];
        }
      }
    }
  });
}

DctAlgorithm to1d(Dct2dAlgorithm algo) {
  switch (algo) {
    case Dct2dAlgorithm::kRowColNaive:
      return DctAlgorithm::kNaive;
    case Dct2dAlgorithm::kRowCol2N:
      return DctAlgorithm::kFft2N;
    case Dct2dAlgorithm::kRowColN:
      return DctAlgorithm::kFftN;
    default:
      logFatal("no 1-D equivalent for this 2-D algorithm");
  }
}

/// Makhoul per-dimension reorder index: v_t = x_{m(t)}.
inline int reorderIndex(int t, int n) {
  return (t < (n + 1) / 2) ? 2 * t : 2 * (n - t) - 1;
}

/// Inverse reorder index for the IDCT output pass.
inline int inverseReorderIndex(int k, int n) {
  return (k % 2 == 0) ? k / 2 : n - (k + 1) / 2;
}

template <typename T>
std::complex<T> unitPhase(double angle) {
  return {static_cast<T>(std::cos(angle)), static_cast<T>(std::sin(angle))};
}

}  // namespace

// ---------------------------------------------------------------------------
// Dct2dPlan
// ---------------------------------------------------------------------------

template <typename T>
Dct2dPlan<T>::Dct2dPlan(int n1, int n2, Dct2dAlgorithm algo)
    : n1_(n1), n2_(n2), algo_(algo) {
  DP_ASSERT(n1 >= 1 && n2 >= 1);
  const size_t total = static_cast<size_t>(n1_) * n2_;
  buf_a_.resize(total);
  if (algo_ != Dct2dAlgorithm::kFft2dN) {
    buf_b_.resize(total);
    flip_.resize(total);
    trackWorkspace();
    return;
  }

  DP_ASSERT_MSG(n2_ % 2 == 0, "2-D FFT DCT requires even n2, got %d", n2_);
  h2_ = n2_ / 2;
  stride_ = h2_ + 1;
  row_fwd_ = PlanCache::realPlan<T>(n2_, false);
  row_inv_ = PlanCache::realPlan<T>(n2_, true);
  col_fwd_ = PlanCache::complexPlan<T>(n1_, false);
  col_inv_ = PlanCache::complexPlan<T>(n1_, true);

  tw1_.resize(n1_);
  for (int k = 0; k < n1_; ++k) {
    tw1_[k] = unitPhase<T>(-M_PI * k / (2.0 * n1_));
  }
  tw2_.resize(n2_);
  for (int k = 0; k < n2_; ++k) {
    tw2_[k] = unitPhase<T>(-M_PI * k / (2.0 * n2_));
  }
  reorder1_.resize(n1_);
  inv_reorder1_.resize(n1_);
  for (int t = 0; t < n1_; ++t) {
    reorder1_[t] = reorderIndex(t, n1_);
    inv_reorder1_[t] = inverseReorderIndex(t, n1_);
  }
  reorder2_.resize(n2_);
  inv_reorder2_.resize(n2_);
  for (int t = 0; t < n2_; ++t) {
    reorder2_[t] = reorderIndex(t, n2_);
    inv_reorder2_[t] = inverseReorderIndex(t, n2_);
  }

  spec_.resize(static_cast<size_t>(n1_) * stride_);
  scratch_workers_ = currentThreadPool().threads();
  row_scratch_stride_ =
      std::max(row_fwd_->scratchSize(), row_inv_->scratchSize());
  col_scratch_stride_ = static_cast<size_t>(n1_) +
      std::max(col_fwd_->scratchSize(), col_inv_->scratchSize());
  row_ws_.resize(row_scratch_stride_ * scratch_workers_);
  col_ws_.resize(col_scratch_stride_ * scratch_workers_);
  trackWorkspace();
}

template <typename T>
void Dct2dPlan<T>::ensureScratch() {
  const int workers = currentThreadPool().threads();
  if (workers <= scratch_workers_) return;
  scratch_workers_ = workers;
  row_ws_.resize(row_scratch_stride_ * workers);
  col_ws_.resize(col_scratch_stride_ * workers);
  trackWorkspace();
}

template <typename T>
void Dct2dPlan<T>::trackWorkspace() {
  const auto bytes = [](const auto& v) {
    return static_cast<std::int64_t>(
        v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  mem_.set(bytes(buf_a_) + bytes(buf_b_) + bytes(flip_) + bytes(spec_) +
           bytes(row_ws_) + bytes(col_ws_) + bytes(tw1_) + bytes(tw2_) +
           bytes(reorder1_) + bytes(reorder2_) + bytes(inv_reorder1_) +
           bytes(inv_reorder2_));
}

template <typename T>
std::complex<T>* Dct2dPlan<T>::rowScratch(int worker) {
  return row_ws_.data() + row_scratch_stride_ * worker;
}

template <typename T>
std::complex<T>* Dct2dPlan<T>::colScratch(int worker) {
  return col_ws_.data() + col_scratch_stride_ * worker;
}

/// Row-column driver: transform dim1 (rows), transpose, transform dim0,
/// transpose back. The 1-D transforms write straight into the plan's
/// buffers through the pointer API — no per-row vector round trips.
template <typename T>
void Dct2dPlan<T>::rowColApply(const T* in, T* out, bool forward) {
  const DctAlgorithm algo1d = to1d(algo_);
  // The 1-D stateless transforms memoize one plan per thread, so rows
  // can run on any worker without sharing workspace.
  parallelFor("fft/rowcol_rows", n1_, 4, [&](Index i) {
    if (forward) {
      dct(in + static_cast<size_t>(i) * n2_,
          buf_a_.data() + static_cast<size_t>(i) * n2_, n2_, algo1d);
    } else {
      idct(in + static_cast<size_t>(i) * n2_,
           buf_a_.data() + static_cast<size_t>(i) * n2_, n2_, algo1d);
    }
  });
  transposeBlocked(buf_a_.data(), buf_b_.data(), n1_, n2_);
  parallelFor("fft/rowcol_cols", n2_, 4, [&](Index j) {
    if (forward) {
      dct(buf_b_.data() + static_cast<size_t>(j) * n1_,
          buf_a_.data() + static_cast<size_t>(j) * n1_, n1_, algo1d);
    } else {
      idct(buf_b_.data() + static_cast<size_t>(j) * n1_,
           buf_a_.data() + static_cast<size_t>(j) * n1_, n1_, algo1d);
    }
  });
  transposeBlocked(buf_a_.data(), out, n2_, n1_);
}

/// Single-pass 2-D DCT via one 2-D real FFT (paper Algorithm 4 / Makhoul).
///
/// Steps: 2-D reorder -> row-wise real FFT (dim1) -> column-wise complex
/// FFT (dim0) -> O(N^2) twiddle combining the spectrum with its conjugate
/// mirror. Only the one-sided half of dim1 is ever materialized, and every
/// twiddle comes from the plan tables.
template <typename T>
void Dct2dPlan<T>::forwardFft2d(const T* in, T* out) {
  ensureScratch();
  // Reorder both dimensions (eq. (10)).
  parallelFor("fft/reorder", n1_, 4, [&](Index t1) {
    const T* src = in + static_cast<size_t>(reorder1_[t1]) * n2_;
    T* dst = buf_a_.data() + static_cast<size_t>(t1) * n2_;
    for (int t2 = 0; t2 < n2_; ++t2) {
      dst[t2] = src[reorder2_[t2]];
    }
  });

  // One-sided real FFT along dim1; each block borrows its worker's
  // scratch lane.
  parallelForBlocked("fft/rows", n1_, 4,
                     [&](Index begin, Index end, int worker) {
                       for (Index t1 = begin; t1 < end; ++t1) {
                         row_fwd_->forward(
                             buf_a_.data() + static_cast<size_t>(t1) * n2_,
                             spec_.data() + static_cast<size_t>(t1) * stride_,
                             rowScratch(worker));
                       }
                     });

  // Complex FFT along dim0, column by column.
  parallelForBlocked(
      "fft/cols", h2_ + 1, 4, [&](Index begin, Index end, int worker) {
        std::complex<T>* col = colScratch(worker);
        for (Index k2 = begin; k2 < end; ++k2) {
          for (int t1 = 0; t1 < n1_; ++t1) {
            col[t1] = spec_[static_cast<size_t>(t1) * stride_ + k2];
          }
          col_fwd_->execute(col, col + n1_);
          for (int t1 = 0; t1 < n1_; ++t1) {
            spec_[static_cast<size_t>(t1) * stride_ + k2] = col[t1];
          }
        }
      });

  // Twiddle pass:
  //   X(k1,k2) = 1/2 Re(e^{-j a1 k1} (e^{-j a2 k2} A + e^{+j a2 k2} B))
  // with A = V(k1,k2), B = V(k1,(n2-k2) mod n2); the one-sided storage is
  // expanded through the Hermitian symmetry V(k1,k2) = conj(V((n1-k1)%n1,
  // n2-k2)).
  parallelFor("fft/twiddle", n1_, 4, [&](Index k1) {
    const int r1 = (n1_ - k1) % n1_;
    const std::complex<T> tw1 = tw1_[k1];
    for (int k2 = 0; k2 < n2_; ++k2) {
      std::complex<T> a;
      std::complex<T> b;
      if (k2 <= h2_) {
        a = spec_[static_cast<size_t>(k1) * stride_ + k2];
        b = std::conj(spec_[static_cast<size_t>(r1) * stride_ + k2]);
      } else {
        const int m2 = n2_ - k2;
        a = std::conj(spec_[static_cast<size_t>(r1) * stride_ + m2]);
        b = spec_[static_cast<size_t>(k1) * stride_ + m2];
      }
      const std::complex<T> tw2 = tw2_[k2];
      const std::complex<T> combined = tw2 * a + std::conj(tw2) * b;
      out[static_cast<size_t>(k1) * n2_ + k2] =
          T(0.5) * (tw1 * combined).real();
    }
  });
}

/// Single-pass 2-D IDCT via one 2-D inverse real FFT.
///
///   U(t1,t2) = e^{+j a1 t1} e^{+j a2 t2}
///              (c(t1,t2) - c(n1-t1,n2-t2) - j (c(t1,n2-t2) + c(n1-t1,t2)))
/// with out-of-range c treated as zero (paper eq. (12)); then a column-wise
/// inverse complex FFT, a row-wise inverse real FFT, the inverse reorder of
/// eq. (13), and the (n1/2)(n2/2) scale from the 1-D convention.
///
/// `flip0`/`flip1` fuse the IDXST reductions: the eq. (14)/(16) input flip
/// is applied inside the gather (reading c'(i) = c(n-i), c'(0) = 0) and
/// the eq. (15)/(17) (-1)^k sign inside the output reorder, saving one
/// full-map copy and one full-map sign sweep per transform.
template <typename T>
void Dct2dPlan<T>::inverseFft2d(const T* in, T* out, bool flip0,
                                bool flip1) {
  const auto at = [&](int i1, int i2) -> T {
    // c with zero padding at index n1 / n2 (not periodic wrap); under a
    // flip the zero also lands on index 0, matching z_0 = 0 in eq. (8e).
    if (flip0) {
      if (i1 == 0 || i1 >= n1_) {
        return T(0);
      }
      i1 = n1_ - i1;
    } else if (i1 >= n1_) {
      return T(0);
    }
    if (flip1) {
      if (i2 == 0 || i2 >= n2_) {
        return T(0);
      }
      i2 = n2_ - i2;
    } else if (i2 >= n2_) {
      return T(0);
    }
    return in[static_cast<size_t>(i1) * n2_ + i2];
  };

  ensureScratch();
  parallelFor("fft/igather", n1_, 4, [&](Index t1) {
    const std::complex<T> tw1 = std::conj(tw1_[t1]);
    for (int t2 = 0; t2 <= h2_; ++t2) {
      const std::complex<T> tw2 = std::conj(tw2_[t2]);
      const T re = at(t1, t2) - at(n1_ - t1, n2_ - t2);
      const T im = -(at(t1, n2_ - t2) + at(n1_ - t1, t2));
      spec_[static_cast<size_t>(t1) * stride_ + t2] =
          tw1 * tw2 * std::complex<T>(re, im);
    }
  });

  // Inverse complex FFT along dim0.
  parallelForBlocked(
      "fft/icols", h2_ + 1, 4, [&](Index begin, Index end, int worker) {
        std::complex<T>* col = colScratch(worker);
        for (Index t2 = begin; t2 < end; ++t2) {
          for (int t1 = 0; t1 < n1_; ++t1) {
            col[t1] = spec_[static_cast<size_t>(t1) * stride_ + t2];
          }
          col_inv_->execute(col, col + n1_);
          for (int t1 = 0; t1 < n1_; ++t1) {
            spec_[static_cast<size_t>(t1) * stride_ + t2] = col[t1];
          }
        }
      });

  // Inverse real FFT along dim1.
  parallelForBlocked("fft/irows", n1_, 4,
                     [&](Index begin, Index end, int worker) {
                       for (Index t1 = begin; t1 < end; ++t1) {
                         row_inv_->inverse(
                             spec_.data() + static_cast<size_t>(t1) * stride_,
                             buf_a_.data() + static_cast<size_t>(t1) * n2_,
                             rowScratch(worker));
                       }
                     });

  // Inverse reorder (eq. (13)), scale, and the fused (-1)^k signs.
  const T scale = static_cast<T>(n1_) * static_cast<T>(n2_) / T(4);
  parallelFor("fft/ireorder", n1_, 4, [&](Index k1) {
    const T* src = buf_a_.data() + static_cast<size_t>(inv_reorder1_[k1]) * n2_;
    const T row_scale = (flip0 && (k1 & 1)) ? -scale : scale;
    T* dst = out + static_cast<size_t>(k1) * n2_;
    for (int k2 = 0; k2 < n2_; ++k2) {
      T v = row_scale * src[inv_reorder2_[k2]];
      if (flip1 && (k2 & 1)) {
        v = -v;
      }
      dst[k2] = v;
    }
  });
}

template <typename T>
void Dct2dPlan<T>::dct2d(const T* in, T* out) {
  static Counter calls("fft/dct2d");
  calls.add();
  if (algo_ == Dct2dAlgorithm::kFft2dN) {
    forwardFft2d(in, out);
  } else {
    rowColApply(in, out, /*forward=*/true);
  }
}

template <typename T>
void Dct2dPlan<T>::idct2d(const T* in, T* out) {
  static Counter calls("fft/idct2d");
  calls.add();
  if (algo_ == Dct2dAlgorithm::kFft2dN) {
    inverseFft2d(in, out, /*flip0=*/false, /*flip1=*/false);
  } else {
    rowColApply(in, out, /*forward=*/false);
  }
}

template <typename T>
void Dct2dPlan<T>::idctIdxst(const T* in, T* out) {
  static Counter calls("fft/idct_idxst");
  calls.add();
  if (algo_ == Dct2dAlgorithm::kFft2dN) {
    inverseFft2d(in, out, /*flip0=*/false, /*flip1=*/true);
    return;
  }
  // Paper Alg. 4 IDCT_IDXST on the row-column baselines: flip dim1
  // (eq. (14)), 2-D IDCT, then apply (-1)^{k2} (eq. (15)).
  for (int i1 = 0; i1 < n1_; ++i1) {
    flip_[static_cast<size_t>(i1) * n2_] = T(0);
    for (int i2 = 1; i2 < n2_; ++i2) {
      flip_[static_cast<size_t>(i1) * n2_ + i2] =
          in[static_cast<size_t>(i1) * n2_ + (n2_ - i2)];
    }
  }
  idct2d(flip_.data(), out);
  for (int i1 = 0; i1 < n1_; ++i1) {
    for (int i2 = 1; i2 < n2_; i2 += 2) {
      out[static_cast<size_t>(i1) * n2_ + i2] =
          -out[static_cast<size_t>(i1) * n2_ + i2];
    }
  }
}

template <typename T>
void Dct2dPlan<T>::idxstIdct(const T* in, T* out) {
  static Counter calls("fft/idxst_idct");
  calls.add();
  if (algo_ == Dct2dAlgorithm::kFft2dN) {
    inverseFft2d(in, out, /*flip0=*/true, /*flip1=*/false);
    return;
  }
  // Paper Alg. 4 IDXST_IDCT on the row-column baselines: flip dim0
  // (eq. (16)), 2-D IDCT, then apply (-1)^{k1} (eq. (17)).
  for (int i2 = 0; i2 < n2_; ++i2) {
    flip_[i2] = T(0);
  }
  for (int i1 = 1; i1 < n1_; ++i1) {
    for (int i2 = 0; i2 < n2_; ++i2) {
      flip_[static_cast<size_t>(i1) * n2_ + i2] =
          in[static_cast<size_t>(n1_ - i1) * n2_ + i2];
    }
  }
  idct2d(flip_.data(), out);
  for (int i1 = 1; i1 < n1_; i1 += 2) {
    for (int i2 = 0; i2 < n2_; ++i2) {
      out[static_cast<size_t>(i1) * n2_ + i2] =
          -out[static_cast<size_t>(i1) * n2_ + i2];
    }
  }
}

// ---------------------------------------------------------------------------
// Stateless wrappers over a thread-local plan cache
// ---------------------------------------------------------------------------

namespace {

/// Plans are not thread-safe (they own workspace), so the stateless entry
/// points memoize one plan per (n1, n2, algo) per thread. Counters:
/// `fft/plan2d/create` and `fft/plan2d/hit`.
template <typename T>
Dct2dPlan<T>& threadLocalPlan(int n1, int n2, Dct2dAlgorithm algo) {
  static Counter creates("fft/plan2d/create");
  static Counter hits("fft/plan2d/hit");
  thread_local std::map<std::tuple<int, int, int>,
                        std::unique_ptr<Dct2dPlan<T>>> cache;
  auto& slot = cache[std::make_tuple(n1, n2, static_cast<int>(algo))];
  if (!slot) {
    creates.add();
    slot = std::make_unique<Dct2dPlan<T>>(n1, n2, algo);
  } else {
    hits.add();
  }
  return *slot;
}

}  // namespace

template <typename T>
void dct2d(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  threadLocalPlan<T>(n1, n2, algo).dct2d(in, out);
}

template <typename T>
void idct2d(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  threadLocalPlan<T>(n1, n2, algo).idct2d(in, out);
}

template <typename T>
void idctIdxst(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  threadLocalPlan<T>(n1, n2, algo).idctIdxst(in, out);
}

template <typename T>
void idxstIdct(const T* in, T* out, int n1, int n2, Dct2dAlgorithm algo) {
  threadLocalPlan<T>(n1, n2, algo).idxstIdct(in, out);
}

#define DP_INSTANTIATE_DCT2D(T)                                      \
  template class Dct2dPlan<T>;                                       \
  template void dct2d<T>(const T*, T*, int, int, Dct2dAlgorithm);    \
  template void idct2d<T>(const T*, T*, int, int, Dct2dAlgorithm);   \
  template void idctIdxst<T>(const T*, T*, int, int, Dct2dAlgorithm); \
  template void idxstIdct<T>(const T*, T*, int, int, Dct2dAlgorithm);

DP_INSTANTIATE_DCT2D(float)
DP_INSTANTIATE_DCT2D(double)

#undef DP_INSTANTIATE_DCT2D

}  // namespace dreamplace::fft
