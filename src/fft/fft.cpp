#include "fft/fft.h"

#include <cmath>

#include "common/counters.h"
#include "common/log.h"
#include "fft/plan.h"

namespace dreamplace::fft {

namespace {

/// Thread-local scratch for the stateless wrappers: grows monotonically,
/// so steady-state calls are allocation-free per thread. Growth events
/// are counted under `fft/scratch_grow`.
template <typename T>
std::complex<T>* wrapperScratch(std::size_t need) {
  thread_local std::vector<std::complex<T>> buf;
  if (buf.size() < need) {
    static Counter grows("fft/scratch_grow");
    grows.add();
    buf.resize(need);
  }
  return buf.data();
}

/// Thread-local one-entry-per-direction memo over the global plan cache:
/// repeated same-size calls (row/column loops) skip the cache mutex.
template <typename T>
const FftPlan<T>* memoizedComplexPlan(int n, bool inverse) {
  thread_local std::shared_ptr<const FftPlan<T>> memo[2];
  auto& slot = memo[inverse ? 1 : 0];
  if (!slot || slot->size() != n) {
    slot = PlanCache::complexPlan<T>(n, inverse);
  }
  return slot.get();
}

template <typename T>
const RfftPlan<T>* memoizedRealPlan(int n, bool inverse) {
  thread_local std::shared_ptr<const RfftPlan<T>> memo[2];
  auto& slot = memo[inverse ? 1 : 0];
  if (!slot || slot->size() != n) {
    slot = PlanCache::realPlan<T>(n, inverse);
  }
  return slot.get();
}

}  // namespace

template <typename T>
void fft(std::complex<T>* data, int n, bool inverse) {
  DP_ASSERT(n >= 1);
  if (n == 1) {
    return;
  }
  const FftPlan<T>* plan = memoizedComplexPlan<T>(n, inverse);
  plan->execute(data, wrapperScratch<T>(plan->scratchSize()));
}

template <typename T>
std::vector<std::complex<T>> fft(std::vector<std::complex<T>> data,
                                 bool inverse) {
  fft(data.data(), static_cast<int>(data.size()), inverse);
  return data;
}

template <typename T>
void rfft(const T* in, std::complex<T>* out, int n) {
  DP_ASSERT_MSG(n >= 2 && n % 2 == 0, "rfft requires even n, got %d", n);
  const RfftPlan<T>* plan = memoizedRealPlan<T>(n, false);
  plan->forward(in, out, wrapperScratch<T>(plan->scratchSize()));
}

template <typename T>
void irfft(const std::complex<T>* in, T* out, int n) {
  DP_ASSERT_MSG(n >= 2 && n % 2 == 0, "irfft requires even n, got %d", n);
  const RfftPlan<T>* plan = memoizedRealPlan<T>(n, true);
  plan->inverse(in, out, wrapperScratch<T>(plan->scratchSize()));
}

template <typename T>
std::vector<std::complex<T>> naiveDft(const std::vector<std::complex<T>>& x,
                                      bool inverse) {
  const int n = static_cast<int>(x.size());
  std::vector<std::complex<T>> out(n);
  for (int k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (int m = 0; m < n; ++m) {
      const double angle =
          (inverse ? 2.0 : -2.0) * M_PI * static_cast<double>(k) * m / n;
      acc += std::complex<double>(x[m].real(), x[m].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (inverse) {
      acc /= static_cast<double>(n);
    }
    out[k] = std::complex<T>(static_cast<T>(acc.real()),
                             static_cast<T>(acc.imag()));
  }
  return out;
}

// Explicit instantiations for the two precisions the paper evaluates.
#define DP_INSTANTIATE_FFT(T)                                              \
  template void fft<T>(std::complex<T>*, int, bool);                       \
  template std::vector<std::complex<T>> fft<T>(std::vector<std::complex<T>>, \
                                               bool);                      \
  template void rfft<T>(const T*, std::complex<T>*, int);                  \
  template void irfft<T>(const std::complex<T>*, T*, int);                 \
  template std::vector<std::complex<T>> naiveDft<T>(                       \
      const std::vector<std::complex<T>>&, bool);

DP_INSTANTIATE_FFT(float)
DP_INSTANTIATE_FFT(double)

#undef DP_INSTANTIATE_FFT

}  // namespace dreamplace::fft
