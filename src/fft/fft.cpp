#include "fft/fft.h"

#include <cmath>

#include "common/log.h"

namespace dreamplace::fft {

namespace {

bool isPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int nextPowerOfTwo(int n) {
  int p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Iterative Cooley-Tukey radix-2 with bit-reversal permutation.
/// Twiddles are computed per stage with double-precision trigonometry and
/// narrowed to T, which keeps float32 accuracy acceptable for the map sizes
/// the density solver uses (<= 4096).
template <typename T>
void fftPow2(std::complex<T>* a, int n, bool inverse) {
  // Bit reversal.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / len;
    const std::complex<T> wlen(static_cast<T>(std::cos(angle)),
                               static_cast<T>(std::sin(angle)));
    for (int i = 0; i < n; i += len) {
      std::complex<T> w(1);
      for (int k = 0; k < len / 2; ++k) {
        const std::complex<T> u = a[i + k];
        const std::complex<T> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const T scale = T(1) / static_cast<T>(n);
    for (int i = 0; i < n; ++i) {
      a[i] *= scale;
    }
  }
}

/// Bluestein chirp-z transform for arbitrary n, built on the radix-2 path.
template <typename T>
void fftBluestein(std::complex<T>* a, int n, bool inverse) {
  const int m = nextPowerOfTwo(2 * n + 1);
  // chirp_k = exp(+/- i * pi * k^2 / n); k^2 mod 2n keeps the argument
  // bounded for large n (exactness of the quadratic phase matters).
  std::vector<std::complex<T>> chirp(n);
  for (int k = 0; k < n; ++k) {
    const long long k2 = (static_cast<long long>(k) * k) % (2LL * n);
    const double angle = (inverse ? 1.0 : -1.0) * M_PI *
                         static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = std::complex<T>(static_cast<T>(std::cos(angle)),
                               static_cast<T>(std::sin(angle)));
  }
  std::vector<std::complex<T>> p(m), q(m);
  for (int k = 0; k < n; ++k) {
    p[k] = a[k] * chirp[k];
  }
  q[0] = std::conj(chirp[0]);
  for (int k = 1; k < n; ++k) {
    q[k] = q[m - k] = std::conj(chirp[k]);
  }
  fftPow2(p.data(), m, false);
  fftPow2(q.data(), m, false);
  for (int k = 0; k < m; ++k) {
    p[k] *= q[k];
  }
  fftPow2(p.data(), m, true);
  for (int k = 0; k < n; ++k) {
    a[k] = p[k] * chirp[k];
  }
  if (inverse) {
    const T scale = T(1) / static_cast<T>(n);
    for (int k = 0; k < n; ++k) {
      a[k] *= scale;
    }
  }
}

}  // namespace

template <typename T>
void fft(std::complex<T>* data, int n, bool inverse) {
  DP_ASSERT(n >= 1);
  if (n == 1) {
    return;
  }
  if (isPowerOfTwo(n)) {
    fftPow2(data, n, inverse);
  } else {
    fftBluestein(data, n, inverse);
  }
}

template <typename T>
std::vector<std::complex<T>> fft(std::vector<std::complex<T>> data,
                                 bool inverse) {
  fft(data.data(), static_cast<int>(data.size()), inverse);
  return data;
}

template <typename T>
void rfft(const T* in, std::complex<T>* out, int n) {
  DP_ASSERT_MSG(n >= 2 && n % 2 == 0, "rfft requires even n, got %d", n);
  const int h = n / 2;
  // Pack adjacent real pairs into complex samples and run a half-size FFT.
  std::vector<std::complex<T>> z(h);
  for (int m = 0; m < h; ++m) {
    z[m] = std::complex<T>(in[2 * m], in[2 * m + 1]);
  }
  fft(z.data(), h, false);
  // Unpack: E_k (even-sample DFT) and O_k (odd-sample DFT).
  for (int k = 0; k <= h; ++k) {
    const std::complex<T> zk = z[k % h];
    const std::complex<T> zc = std::conj(z[(h - k) % h]);
    const std::complex<T> even = (zk + zc) * T(0.5);
    const std::complex<T> odd =
        (zk - zc) * std::complex<T>(0, T(-0.5));  // divide by 2i
    const double angle = -2.0 * M_PI * k / n;
    const std::complex<T> tw(static_cast<T>(std::cos(angle)),
                             static_cast<T>(std::sin(angle)));
    out[k] = even + tw * odd;
  }
}

template <typename T>
void irfft(const std::complex<T>* in, T* out, int n) {
  DP_ASSERT_MSG(n >= 2 && n % 2 == 0, "irfft requires even n, got %d", n);
  const int h = n / 2;
  std::vector<std::complex<T>> z(h);
  for (int k = 0; k < h; ++k) {
    const std::complex<T> xk = in[k];
    const std::complex<T> xc = std::conj(in[h - k]);
    const std::complex<T> even = (xk + xc) * T(0.5);
    const double angle = 2.0 * M_PI * k / n;
    const std::complex<T> tw(static_cast<T>(std::cos(angle)),
                             static_cast<T>(std::sin(angle)));
    const std::complex<T> odd = (xk - xc) * T(0.5) * tw;
    z[k] = even + std::complex<T>(0, 1) * odd;
  }
  fft(z.data(), h, true);
  for (int m = 0; m < h; ++m) {
    out[2 * m] = z[m].real();
    out[2 * m + 1] = z[m].imag();
  }
}

template <typename T>
std::vector<std::complex<T>> naiveDft(const std::vector<std::complex<T>>& x,
                                      bool inverse) {
  const int n = static_cast<int>(x.size());
  std::vector<std::complex<T>> out(n);
  for (int k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (int m = 0; m < n; ++m) {
      const double angle =
          (inverse ? 2.0 : -2.0) * M_PI * static_cast<double>(k) * m / n;
      acc += std::complex<double>(x[m].real(), x[m].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (inverse) {
      acc /= static_cast<double>(n);
    }
    out[k] = std::complex<T>(static_cast<T>(acc.real()),
                             static_cast<T>(acc.imag()));
  }
  return out;
}

// Explicit instantiations for the two precisions the paper evaluates.
#define DP_INSTANTIATE_FFT(T)                                              \
  template void fft<T>(std::complex<T>*, int, bool);                       \
  template std::vector<std::complex<T>> fft<T>(std::vector<std::complex<T>>, \
                                               bool);                      \
  template void rfft<T>(const T*, std::complex<T>*, int);                  \
  template void irfft<T>(const std::complex<T>*, T*, int);                 \
  template std::vector<std::complex<T>> naiveDft<T>(                       \
      const std::vector<std::complex<T>>&, bool);

DP_INSTANTIATE_FFT(float)
DP_INSTANTIATE_FFT(double)

#undef DP_INSTANTIATE_FFT

}  // namespace dreamplace::fft
