// 2-D DCT-family transforms for the spectral Poisson solver.
//
// Maps are stored row-major as flat arrays: element (i1, i2) of an n1 x n2
// map lives at index i1*n2 + i2. In the electrostatics code dim0 is the
// x (horizontal bin) axis and dim1 the y axis.
//
// Three implementations mirror the paper's Fig. 11 comparison:
//  * kRowCol2N — 1-D DCT via 2N-point FFT applied rows-then-columns,
//  * kRowColN  — 1-D DCT via N-point real FFT (Alg. 3) rows-then-columns,
//  * kFft2dN   — single-pass 2-D transform via one 2-D real FFT (Alg. 4).
//
// Scaling follows the 1-D conventions in dct.h applied per dimension, so
// idct2d(dct2d(x)) == (n1/2)*(n2/2) * x.
//
// Dct2dPlan is the plan-based engine (docs/FFT.md): it owns the 1-D FFT
// plans, the reorder index maps, the twiddle tables, and every scratch
// buffer, so executing any transform is trig-free and allocation-free.
// The stateless functions below remain as thin wrappers over a
// thread-local plan cache, so one-shot callers keep working unchanged.
#pragma once

#include <complex>
#include <vector>

#include "common/memory.h"
#include "fft/dct.h"
#include "fft/plan.h"

namespace dreamplace::fft {

enum class Dct2dAlgorithm {
  kRowColNaive,  ///< O(N^3) test oracle built on 1-D naive transforms.
  kRowCol2N,
  kRowColN,
  kFft2dN,
};

/// Reusable 2-D transform plan for one (n1, n2, algorithm) triple.
///
/// Construction precomputes the Makhoul reorder index maps, the quarter-
/// wave twiddle tables, the underlying 1-D FFT plans (shared through
/// PlanCache), and sizes all workspace — including per-pool-worker row
/// and column scratch — so the transform methods perform no trigonometry
/// and no heap allocation (scratch regrows only if the thread pool is
/// enlarged after plan construction). The mixed inverse transforms fuse
/// the paper's
/// eq. (14)/(16) input flips and eq. (15)/(17) sign passes into the
/// existing twiddle and reorder sweeps instead of materializing a flipped
/// copy plus a sign sweep (kFft2dN only; row-column algorithms keep the
/// literal flip for oracle comparability).
///
/// NOT thread-safe: a plan owns its workspace, so use one plan per thread
/// (the transforms parallelize internally on the deterministic
/// ThreadPool). In/out pointers may alias each other but must not alias
/// plan workspace.
template <typename T>
class Dct2dPlan {
 public:
  Dct2dPlan(int n1, int n2, Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

  int n1() const { return n1_; }
  int n2() const { return n2_; }
  Dct2dAlgorithm algorithm() const { return algo_; }

  void dct2d(const T* in, T* out);
  void idct2d(const T* in, T* out);
  /// IDCT along dim0, IDXST along dim1 (paper Alg. 4 IDCT_IDXST).
  void idctIdxst(const T* in, T* out);
  /// IDXST along dim0, IDCT along dim1 (paper Alg. 4 IDXST_IDCT).
  void idxstIdct(const T* in, T* out);

 private:
  void forwardFft2d(const T* in, T* out);
  /// Generalized inverse: optional flip along dim0/dim1 realizes the
  /// IDXST reductions without extra full-map passes.
  void inverseFft2d(const T* in, T* out, bool flip0, bool flip1);
  void rowColApply(const T* in, T* out, bool forward);
  /// Attributes all owned workspace/table bytes to "fft/scratch".
  void trackWorkspace();
  /// Grows the per-worker scratch if the pool gained threads since plan
  /// construction (kFft2dN only).
  void ensureScratch();

  std::complex<T>* rowScratch(int worker);
  std::complex<T>* colScratch(int worker);

  int n1_;
  int n2_;
  int h2_ = 0;      ///< n2/2 (kFft2dN)
  int stride_ = 0;  ///< h2_+1, row stride of the one-sided spectrum
  Dct2dAlgorithm algo_;

  // kFft2dN state.
  std::shared_ptr<const RfftPlan<T>> row_fwd_;  ///< size n2
  std::shared_ptr<const RfftPlan<T>> row_inv_;
  std::shared_ptr<const FftPlan<T>> col_fwd_;  ///< size n1
  std::shared_ptr<const FftPlan<T>> col_inv_;
  std::vector<std::complex<T>> tw1_;  ///< exp(-i*pi*k1/(2*n1)), k1 < n1
  std::vector<std::complex<T>> tw2_;  ///< exp(-i*pi*k2/(2*n2)), k2 < n2
  std::vector<int> reorder1_, reorder2_;        ///< forward gather maps
  std::vector<int> inv_reorder1_, inv_reorder2_;

  // Workspace (ctor-sized; transforms never allocate).
  std::vector<T> buf_a_;                    ///< n1*n2 reorder/output buffer
  std::vector<T> buf_b_;                    ///< n1*n2, row-col only
  std::vector<T> flip_;                     ///< n1*n2, row-col mixed only
  std::vector<std::complex<T>> spec_;       ///< n1*stride, kFft2dN only
  std::size_t row_scratch_stride_ = 0;
  std::size_t col_scratch_stride_ = 0;
  int scratch_workers_ = 0;                 ///< pool size scratch is sized for
  std::vector<std::complex<T>> row_ws_;     ///< per-worker rfft scratch
  std::vector<std::complex<T>> col_ws_;     ///< per-worker column + scratch
  TrackedBytes mem_{"fft/scratch"};         ///< memory attribution
};

template <typename T>
void dct2d(const T* in, T* out, int n1, int n2,
           Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

template <typename T>
void idct2d(const T* in, T* out, int n1, int n2,
            Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

/// IDCT along dim0, IDXST along dim1 (paper Alg. 4 IDCT_IDXST).
template <typename T>
void idctIdxst(const T* in, T* out, int n1, int n2,
               Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

/// IDXST along dim0, IDCT along dim1 (paper Alg. 4 IDXST_IDCT).
template <typename T>
void idxstIdct(const T* in, T* out, int n1, int n2,
               Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

}  // namespace dreamplace::fft
