// 2-D DCT-family transforms for the spectral Poisson solver.
//
// Maps are stored row-major as flat arrays: element (i1, i2) of an n1 x n2
// map lives at index i1*n2 + i2. In the electrostatics code dim0 is the
// x (horizontal bin) axis and dim1 the y axis.
//
// Three implementations mirror the paper's Fig. 11 comparison:
//  * kRowCol2N — 1-D DCT via 2N-point FFT applied rows-then-columns,
//  * kRowColN  — 1-D DCT via N-point real FFT (Alg. 3) rows-then-columns,
//  * kFft2dN   — single-pass 2-D transform via one 2-D real FFT (Alg. 4).
//
// Scaling follows the 1-D conventions in dct.h applied per dimension, so
// idct2d(dct2d(x)) == (n1/2)*(n2/2) * x.
#pragma once

#include <vector>

#include "fft/dct.h"

namespace dreamplace::fft {

enum class Dct2dAlgorithm {
  kRowColNaive,  ///< O(N^3) test oracle built on 1-D naive transforms.
  kRowCol2N,
  kRowColN,
  kFft2dN,
};

template <typename T>
void dct2d(const T* in, T* out, int n1, int n2,
           Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

template <typename T>
void idct2d(const T* in, T* out, int n1, int n2,
            Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

/// IDCT along dim0, IDXST along dim1 (paper Alg. 4 IDCT_IDXST).
template <typename T>
void idctIdxst(const T* in, T* out, int n1, int n2,
               Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

/// IDXST along dim0, IDCT along dim1 (paper Alg. 4 IDXST_IDCT).
template <typename T>
void idxstIdct(const T* in, T* out, int n1, int n2,
               Dct2dAlgorithm algo = Dct2dAlgorithm::kFft2dN);

}  // namespace dreamplace::fft
