// Fundamental index and scalar typedefs shared across subsystems.
#pragma once

#include <cstdint>
#include <limits>

namespace dreamplace {

/// Index into the flat cell/net/pin arrays. Signed so that -1 can mark
/// "no element"; 32-bit indices keep the SoA database compact (the paper
/// scales to 10M cells, well within int32 range).
using Index = std::int32_t;

inline constexpr Index kInvalidIndex = -1;

/// Database coordinate unit. Bookshelf coordinates are integers in site
/// units, but placement is continuous, so the database stores doubles.
using Coord = double;

template <typename T>
inline constexpr T kInf = std::numeric_limits<T>::infinity();

}  // namespace dreamplace
