#include "common/timer.h"

#include <cstdio>

#include "common/trace.h"

namespace dreamplace {

ScopedTimer::~ScopedTimer() {
  const double seconds = timer_.elapsed();
  TimingRegistry::instance().add(key_, seconds);
  TraceRecorder& trace = TraceRecorder::instance();
  if (trace.enabled()) {
    trace.completeEvent(key_, seconds);
  }
}

TimingRegistry& TimingRegistry::instance() {
  static TimingRegistry registry;
  return registry;
}

void TimingRegistry::add(const std::string& key, double seconds) {
  totals_[key] += seconds;
}

double TimingRegistry::total(const std::string& key) const {
  auto it = totals_.find(key);
  return it == totals_.end() ? 0.0 : it->second;
}

double TimingRegistry::totalPrefix(const std::string& prefix) const {
  double sum = 0.0;
  // std::map is ordered, so the matching keys form a contiguous range.
  for (auto it = totals_.lower_bound(prefix); it != totals_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    sum += it->second;
  }
  return sum;
}

std::map<std::string, double> TimingRegistry::snapshot() const {
  return totals_;
}

void TimingRegistry::clear() { totals_.clear(); }

std::string TimingRegistry::report() const {
  double grand = 0.0;
  for (const auto& [key, seconds] : totals_) {
    // Only count top-level keys toward the grand total; nested scopes are
    // already included in their parents.
    if (key.find('/') == std::string::npos) {
      grand += seconds;
    }
  }
  std::string out;
  char line[256];
  for (const auto& [key, seconds] : totals_) {
    double pct = grand > 0.0 ? 100.0 * seconds / grand : 0.0;
    std::snprintf(line, sizeof(line), "%-40s %10.3fs %6.1f%%\n", key.c_str(),
                  seconds, pct);
    out += line;
  }
  return out;
}

}  // namespace dreamplace
