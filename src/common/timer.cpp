#include "common/timer.h"

#include <algorithm>
#include <cstdio>

#include "common/trace.h"

namespace dreamplace {

namespace {

/// One open scope on this thread: accumulated inclusive seconds of its
/// *direct* nested scopes, subtracted from the parent's elapsed time to
/// obtain self time.
struct ScopeFrame {
  double childSeconds = 0.0;
};

thread_local std::vector<ScopeFrame> tlScopeStack;

}  // namespace

ScopedTimer::ScopedTimer(std::string key) : key_(std::move(key)) {
  tlScopeStack.emplace_back();
}

ScopedTimer::~ScopedTimer() {
  const double seconds = timer_.elapsed();
  // Pop this scope's frame and charge the elapsed time to the enclosing
  // scope (if any) so the parent's self time excludes it.
  const double child_seconds = tlScopeStack.back().childSeconds;
  tlScopeStack.pop_back();
  const bool root = tlScopeStack.empty();
  if (!root) {
    tlScopeStack.back().childSeconds += seconds;
  }
  // Clock jitter can make the children sum slightly exceed the parent's
  // own elapsed reading; clamp so self <= inclusive always holds.
  const double self = std::max(0.0, seconds - child_seconds);
  // Resolve per call: the same scope key charges whichever flow context
  // is current on this thread (common/flow_context.h).
  currentTimingRegistry().addScope(key_, seconds, self, root);
  TraceRecorder& trace = currentTraceRecorder();
  if (trace.enabled()) {
    trace.completeEvent(key_, seconds);
  }
}

// TimingRegistry::instance() is defined in flow_context.cpp: it returns
// the default FlowContext's registry.

void TimingRegistry::add(const std::string& key, double seconds) {
  addScope(key, seconds, seconds, /*root=*/true);
}

void TimingRegistry::addScope(const std::string& key, double seconds,
                              double selfSeconds, bool root) {
  std::lock_guard<std::mutex> lock(mutex_);
  TimingStat& stat = totals_[key];
  stat.count += 1;
  stat.seconds += seconds;
  stat.selfSeconds += selfSeconds;
  if (root) {
    stat.rootSeconds += seconds;
  }
}

double TimingRegistry::total(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = totals_.find(key);
  return it == totals_.end() ? 0.0 : it->second.seconds;
}

double TimingRegistry::selfTotal(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = totals_.find(key);
  return it == totals_.end() ? 0.0 : it->second.selfSeconds;
}

std::int64_t TimingRegistry::count(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = totals_.find(key);
  return it == totals_.end() ? 0 : it->second.count;
}

double TimingRegistry::totalPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  // std::map is ordered, so the matching keys form a contiguous range.
  for (auto it = totals_.lower_bound(prefix); it != totals_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    sum += it->second.seconds;
  }
  return sum;
}

double TimingRegistry::selfTotalPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (auto it = totals_.lower_bound(prefix); it != totals_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    sum += it->second.selfSeconds;
  }
  return sum;
}

std::map<std::string, double> TimingRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [key, stat] : totals_) {
    out.emplace(key, stat.seconds);
  }
  return out;
}

std::map<std::string, TimingStat> TimingRegistry::statsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

void TimingRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
}

std::string TimingRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The denominator is the wall time covered by root scopes: every
  // nested scope's seconds are already inside some root's inclusive
  // time, so summing root time counts each observed second exactly once.
  double grand = 0.0;
  for (const auto& [key, stat] : totals_) {
    grand += stat.rootSeconds;
  }
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-40s %8s %10s %10s %7s\n", "key",
                "count", "incl(s)", "self(s)", "incl%");
  out += line;
  for (const auto& [key, stat] : totals_) {
    const double pct = grand > 0.0 ? 100.0 * stat.seconds / grand : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-40s %8lld %10.3f %10.3f %6.1f%%\n", key.c_str(),
                  static_cast<long long>(stat.count), stat.seconds,
                  stat.selfSeconds, pct);
    out += line;
  }
  return out;
}

}  // namespace dreamplace
