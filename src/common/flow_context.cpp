#include "common/flow_context.h"

#include "common/parallel.h"

namespace dreamplace {

namespace {

thread_local FlowContext* tl_current_context = nullptr;

}  // namespace

FlowContext::FlowContext(const Config& config)
    : memory_(std::make_shared<MemoryTracker>()), pool_(config.pool) {
  if (config.privateTrace) {
    trace_owned_ = std::make_unique<TraceRecorder>();
    if (config.traceCapacity != 0) {
      trace_owned_->setCapacity(config.traceCapacity);
    }
    trace_ = trace_owned_.get();
  } else {
    trace_ = &defaultContext().trace();
  }
}

FlowContext::FlowContext(const Config& config, DefaultTag)
    : memory_(std::make_shared<MemoryTracker>()), pool_(config.pool) {
  // The default context *is* the shared recorder; it always owns one.
  trace_owned_ = std::make_unique<TraceRecorder>();
  trace_ = trace_owned_.get();
}

FlowContext::~FlowContext() = default;

ThreadPool& FlowContext::pool() {
  // Resolved lazily so constructing the default context never races the
  // pool singleton's own initialization.
  return pool_ != nullptr ? *pool_ : ThreadPool::instance();
}

bool FlowContext::isDefault() const { return this == &defaultContext(); }

void FlowContext::setDeadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_.store(true, std::memory_order_release);
}

void FlowContext::clearDeadline() {
  has_deadline_.store(false, std::memory_order_release);
}

void FlowContext::throwIfInterrupted() const {
  if (cancel_.load(std::memory_order_relaxed)) {
    throw FlowCancelledError("flow cancelled by request");
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    throw FlowTimeoutError("flow deadline exceeded");
  }
}

void FlowContext::markFlowStart() {
  ThreadPool& p = pool();
  pool_busy_start_us_ = p.busyMicros();
  pool_capacity_start_us_ = p.capacityMicros();
}

FlowContext& FlowContext::current() {
  FlowContext* ctx = tl_current_context;
  return ctx != nullptr ? *ctx : defaultContext();
}

FlowContext& FlowContext::defaultContext() {
  // Intentionally leaked: thread_local caches (FFT plan memos, scope
  // stacks) release their attributions during thread/process teardown and
  // must always find a live default context.
  static FlowContext* ctx = new FlowContext(Config{}, DefaultTag{});
  return *ctx;
}

FlowContextScope::FlowContextScope(FlowContext& context)
    : previous_(tl_current_context) {
  tl_current_context = &context;
}

FlowContextScope::~FlowContextScope() { tl_current_context = previous_; }

// --- Per-call resolution hooks (declared in the registries' headers) -------

CounterRegistry& currentCounterRegistry() {
  return FlowContext::current().counters();
}

TimingRegistry& currentTimingRegistry() {
  return FlowContext::current().timing();
}

TraceRecorder& currentTraceRecorder() { return FlowContext::current().trace(); }

MemoryTracker& currentMemoryTracker() { return FlowContext::current().memory(); }

std::shared_ptr<MemoryTracker> currentMemoryTrackerPtr() {
  return FlowContext::current().memoryPtr();
}

ThreadPool& currentThreadPool() { return FlowContext::current().pool(); }

// --- Legacy singleton accessors: the default context's registries ----------

CounterRegistry& CounterRegistry::instance() {
  return FlowContext::defaultContext().counters();
}

TimingRegistry& TimingRegistry::instance() {
  return FlowContext::defaultContext().timing();
}

TraceRecorder& TraceRecorder::instance() {
  return FlowContext::defaultContext().trace();
}

MemoryTracker& MemoryTracker::instance() {
  return FlowContext::defaultContext().memory();
}

}  // namespace dreamplace
