// Per-flow liveness heartbeat: the producer side of the engine watchdog.
//
// A placement flow is a long cooperative loop; the only party that knows
// whether it is making progress is the loop itself. HeartbeatState is a
// tiny single-writer/multi-reader publication slot the GP loop (every
// iteration) and the flow driver (every stage boundary) write into, and
// that observers — the PlacementEngine watchdog, the metrics exposition —
// read from another thread without locks and without perturbing the
// deterministic hot path: publishing is a handful of relaxed atomic
// stores bracketed by a seqlock sequence counter, and readers never
// write anything the flow can observe.
//
// Seqlock protocol: the writer bumps the sequence to an odd value,
// stores the payload fields, then bumps it to the next even value
// (release). A reader loads the sequence (acquire), copies the fields,
// and re-loads the sequence; a torn read shows up as an odd or changed
// sequence and is retried. There is exactly one writer (the flow's own
// thread — pool workers never publish), so writers need no mutual
// exclusion.
//
// The published running-best HPWL is maintained writer-side so the
// divergence policy compares against the true minimum over *all*
// iterations, not just the ones a sampling watchdog happened to observe.
#pragma once

#include <atomic>
#include <cstdint>

namespace dreamplace {

/// Coarse flow position, published at stage boundaries. Values are stable
/// (exported as metrics gauges and report strings).
enum class FlowStage : int {
  kIdle = 0,            ///< Flow created, nothing published yet.
  kGlobalPlacement = 1,
  kLegalization = 2,
  kDetailedPlacement = 3,
  kDone = 4,
};

/// Short stable name ("idle", "gp", "lg", "dp", "done").
const char* flowStageName(FlowStage stage);

/// One consistent copy of the published heartbeat.
struct HeartbeatSnapshot {
  std::uint64_t sequence = 0;  ///< 0 = nothing published yet.
  FlowStage stage = FlowStage::kIdle;
  int iteration = -1;     ///< Last GP iteration, -1 before/outside GP.
  double hpwl = 0.0;      ///< HPWL at that iteration.
  double bestHpwl = 0.0;  ///< Running-best finite HPWL over the flow.
  double overflow = 0.0;
  std::int64_t timestampMicros = 0;  ///< Monotonic publish time.

  bool everPublished() const { return sequence != 0; }
  /// Seconds between the publish and `nowMicros`.
  double ageSeconds(std::int64_t nowMicros) const {
    return static_cast<double>(nowMicros - timestampMicros) * 1e-6;
  }
};

class HeartbeatState {
 public:
  /// Marks a stage transition. Iteration resets to -1; HPWL fields keep
  /// their last values (the final GP numbers stay visible through LG/DP).
  void beginStage(FlowStage stage);

  /// Publishes one GP iteration. `iteration` -1 is the pre-loop sample
  /// (initial placement HPWL) — it seeds the running best so divergence
  /// ratios are measured against the true starting point.
  void publishIteration(int iteration, double hpwl, double overflow);

  /// Lock-free consistent snapshot; retries while a publish is in flight.
  HeartbeatSnapshot read() const;

  /// Monotonic clock in microseconds (steady_clock), the timestamp base
  /// of snapshots.
  static std::int64_t nowMicros();

 private:
  void publish(FlowStage stage, int iteration, double hpwl, double overflow);

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<int> stage_{static_cast<int>(FlowStage::kIdle)};
  std::atomic<int> iteration_{-1};
  std::atomic<double> hpwl_{0.0};
  std::atomic<double> best_hpwl_{0.0};
  std::atomic<double> overflow_{0.0};
  std::atomic<std::int64_t> timestamp_us_{0};
};

}  // namespace dreamplace
