#include "common/memory.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/trace.h"

namespace dreamplace {

ProcessMemory sampleProcessMemory() {
  ProcessMemory mem;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return mem;  // non-Linux: valid stays false
  }
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long kb = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) {
      mem.vmRssBytes = static_cast<std::int64_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
      mem.vmHwmBytes = static_cast<std::int64_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  mem.valid = true;
  return mem;
}

// MemoryTracker::instance() is defined in flow_context.cpp: it returns
// the default FlowContext's tracker.

void MemoryTracker::adjust(const std::string& key, std::int64_t deltaBytes) {
  std::int64_t current = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Usage& usage = usage_[key];
    usage.currentBytes = std::max<std::int64_t>(
        0, usage.currentBytes + deltaBytes);
    usage.peakBytes = std::max(usage.peakBytes, usage.currentBytes);
    current = usage.currentBytes;
  }
  TraceRecorder& trace = currentTraceRecorder();
  if (trace.enabled()) {
    trace.counterEvent("mem/" + key, static_cast<double>(current));
  }
}

std::int64_t MemoryTracker::current(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = usage_.find(key);
  return it == usage_.end() ? 0 : it->second.currentBytes;
}

std::int64_t MemoryTracker::peak(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = usage_.find(key);
  return it == usage_.end() ? 0 : it->second.peakBytes;
}

std::int64_t MemoryTracker::currentPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t sum = 0;
  for (auto it = usage_.lower_bound(prefix); it != usage_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    sum += it->second.currentBytes;
  }
  return sum;
}

std::map<std::string, MemoryTracker::Usage> MemoryTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

void MemoryTracker::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  usage_.clear();
}

std::string MemoryTracker::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-40s %14s %14s\n", "subsystem",
                "current(B)", "peak(B)");
  out += line;
  for (const auto& [key, usage] : usage_) {
    std::snprintf(line, sizeof(line), "%-40s %14lld %14lld\n", key.c_str(),
                  static_cast<long long>(usage.currentBytes),
                  static_cast<long long>(usage.peakBytes));
    out += line;
  }
  return out;
}

void TrackedBytes::set(std::int64_t bytes) {
  bytes = std::max<std::int64_t>(0, bytes);
  if (bytes == bytes_) {
    return;
  }
  std::shared_ptr<MemoryTracker> cur = currentMemoryTrackerPtr();
  if (tracker_ && tracker_ != cur && bytes_ > 0) {
    // Resized under a different flow: give the old flow its bytes back
    // before charging the new one, so neither report is corrupted.
    tracker_->adjust(key_, -bytes_);
    bytes_ = 0;
  }
  if (bytes != bytes_) {
    cur->adjust(key_, bytes - bytes_);
  }
  bytes_ = bytes;
  tracker_ = bytes > 0 ? std::move(cur) : nullptr;
}

}  // namespace dreamplace
