// Chrome trace-event recording (chrome://tracing / Perfetto JSON).
//
// The placer is a training loop; understanding where iterations spend
// their time needs a timeline, not just stage totals. TraceRecorder
// collects duration ("X"), instant ("i"), and counter ("C") events and
// serializes them in the Trace Event Format that chrome://tracing,
// Perfetto, and speedscope all load. Recording is off by default: every
// entry point first checks an atomic flag, so instrumented code costs a
// relaxed load when tracing is disabled. ScopedTimer emits trace events
// for its timing scope automatically, so the existing "gp/op/..."
// hierarchy shows up on the timeline without extra instrumentation;
// TraceScope records trace-only scopes that should not pollute the
// timing registry.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace dreamplace {

/// One trace event; `args` holds pre-rendered JSON ("" => no args).
struct TraceEvent {
  std::string name;
  char phase = 'X';     ///< 'X' complete, 'i' instant, 'C' counter.
  double tsUs = 0.0;    ///< Microseconds since recorder epoch.
  double durUs = 0.0;   ///< Complete events only.
  int tid = 0;
  std::string args;
};

/// Trace-event collector. The process has one shared default recorder
/// (instance(), owned by the default FlowContext); flows that request a
/// trace file get a private recorder so concurrent timelines stay
/// isolated (common/flow_context.h).
///
/// Thread-safe: events from concurrent scopes are appended under a mutex
/// (recording is rare enough that contention is irrelevant; the disabled
/// path never takes the lock).
///
/// The event buffer is bounded (setCapacity, default 1M events): long
/// flows emit scope events every GP iteration and an unbounded vector
/// would eventually take the process down. Events beyond the cap are
/// dropped and counted in the `trace/dropped` counter so a truncated
/// trace is detectable instead of silently partial.
class TraceRecorder {
 public:
  /// Default event-buffer capacity (~150 MB worst case of event strings).
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The shared default recorder (legacy process-wide accessor).
  static TraceRecorder& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling (re)starts the time epoch so timestamps start near zero.
  void setEnabled(bool enabled);
  void clear();
  std::size_t size() const;

  /// Caps the event buffer; 0 means unbounded. Applies to future events
  /// only (an already-larger buffer is kept).
  void setCapacity(std::size_t maxEvents);
  std::size_t capacity() const;
  /// Events dropped since the last clear() because the buffer was full
  /// (mirrors the `trace/dropped` counter, which is cumulative).
  std::size_t dropped() const;

  /// Records a duration event that ends now and lasted `seconds`.
  void completeEvent(std::string_view name, double seconds);
  /// Records a thread-scoped instant event, optionally with JSON args.
  void instantEvent(std::string_view name, std::string_view argsJson = {});
  /// Records a counter sample (rendered as a stacked chart in the UI).
  void counterEvent(std::string_view name, double value);

  /// Serializes all events as a Trace Event Format JSON object.
  std::string toJson() const;
  /// Writes toJson() to `path`; returns false on I/O failure.
  bool writeJson(const std::string& path) const;

 private:
  int threadId();
  /// Caller holds mutex_. True if an event slot is available; otherwise
  /// records the drop.
  bool reserveSlot();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> thread_ids_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t dropped_ = 0;
};

/// The current flow's trace recorder (common/flow_context.h).
TraceRecorder& currentTraceRecorder();

/// RAII trace-only scope: a complete event spanning the scope lifetime.
/// Near-zero cost when recording is disabled (one relaxed load in the
/// constructor, one branch in the destructor). Resolves the current
/// flow's recorder per call.
class TraceScope {
 public:
  explicit TraceScope(std::string_view name) {
    if (currentTraceRecorder().enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
      active_ = true;
    }
  }
  ~TraceScope() {
    if (active_) {
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      currentTraceRecorder().completeEvent(name_, seconds);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

/// Escapes a string for inclusion inside a JSON string literal.
std::string jsonEscape(std::string_view s);

}  // namespace dreamplace
