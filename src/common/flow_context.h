// Per-flow observability context: the registries one placement flow
// writes into, bundled behind a thread-local "current context" pointer.
//
// Historically the counter/timing/trace/memory registries were process
// singletons, which made two concurrent placeDesign() calls corrupt each
// other's run reports (and made even *sequential* flows report deltas
// instead of absolute per-run numbers). A FlowContext owns one private
// CounterRegistry, TimingRegistry and MemoryTracker — plus either a
// private TraceRecorder or a reference to the shared default one — and a
// pointer to the ThreadPool the flow should run on.
//
// Resolution model (lock-free, one thread_local read):
//   * FlowContext::current() returns the context installed on this thread
//     by a FlowContextScope, falling back to the process-wide default
//     context.
//   * The legacy CounterRegistry::instance() / TimingRegistry::instance()
//     / TraceRecorder::instance() / MemoryTracker::instance() accessors
//     now return the *default* context's registries, so every pre-context
//     call site and test keeps its exact behavior.
//   * Instrumentation primitives (Counter, ScopedTimer, TraceScope,
//     TrackedBytes) resolve the current context per call instead of
//     caching a registry reference, so the same static Counter in a hot
//     kernel charges whichever flow is running on the calling thread.
//   * ThreadPool workers inherit the submitting flow's context for the
//     duration of each parallel job, so kernels instrumented inside
//     worker threads attribute to the right flow.
//
// Interruption: a context can carry a deadline and a cancel flag; flows
// poll throwIfInterrupted() at iteration/stage boundaries (cooperative —
// there is no preemption). PlacementEngine (place/engine.h) uses this for
// per-job timeouts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/counters.h"
#include "common/heartbeat.h"
#include "common/memory.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dreamplace {

class ThreadPool;

/// Base of the cooperative-interruption exceptions so callers can catch
/// "the flow was interrupted" without distinguishing why.
class FlowInterruptedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by throwIfInterrupted() once the context deadline has passed.
class FlowTimeoutError : public FlowInterruptedError {
 public:
  using FlowInterruptedError::FlowInterruptedError;
};

/// Thrown by throwIfInterrupted() after requestCancel().
class FlowCancelledError : public FlowInterruptedError {
 public:
  using FlowInterruptedError::FlowInterruptedError;
};

/// Registries and runtime bindings of one placement flow.
class FlowContext {
 public:
  struct Config {
    /// Pool parallel work runs on; nullptr = the process-wide pool.
    ThreadPool* pool = nullptr;
    /// Own a private TraceRecorder instead of sharing the default one.
    /// Private recorders isolate a flow's timeline (and its dropped-event
    /// accounting) from every other flow in the process.
    bool privateTrace = false;
    /// Event-buffer capacity of a private recorder; 0 keeps
    /// TraceRecorder::kDefaultCapacity. Ignored when privateTrace=false.
    std::size_t traceCapacity = 0;
  };

  FlowContext() : FlowContext(Config{}) {}
  explicit FlowContext(const Config& config);
  ~FlowContext();

  FlowContext(const FlowContext&) = delete;
  FlowContext& operator=(const FlowContext&) = delete;

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }
  TimingRegistry& timing() { return timing_; }
  const TimingRegistry& timing() const { return timing_; }
  MemoryTracker& memory() { return *memory_; }
  const MemoryTracker& memory() const { return *memory_; }
  /// Shared-ownership handle; TrackedBytes keeps it so releases always
  /// reach the tracker they were charged to, even after the flow ends.
  const std::shared_ptr<MemoryTracker>& memoryPtr() const { return memory_; }
  TraceRecorder& trace() { return *trace_; }
  /// Liveness heartbeat of this flow: the GP loop and the flow driver
  /// publish into it; the engine watchdog and the metrics exposition read
  /// it from other threads (common/heartbeat.h).
  HeartbeatState& heartbeat() { return heartbeat_; }
  const HeartbeatState& heartbeat() const { return heartbeat_; }
  ThreadPool& pool();

  /// True for the process-wide default context backing the legacy
  /// X::instance() accessors.
  bool isDefault() const;

  // --- Cooperative interruption -------------------------------------------
  void setDeadline(std::chrono::steady_clock::time_point deadline);
  void clearDeadline();
  void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Throws FlowCancelledError / FlowTimeoutError when the flow should
  /// stop. Called at GP-iteration and flow-stage boundaries.
  void throwIfInterrupted() const;

  // --- Pool accounting ------------------------------------------------------
  /// Snapshots the pool's busy/capacity clocks; RunReport subtracts them
  /// to attribute pool time to this flow (the pool may be shared).
  void markFlowStart();
  std::int64_t poolBusyStartMicros() const { return pool_busy_start_us_; }
  std::int64_t poolCapacityStartMicros() const {
    return pool_capacity_start_us_;
  }

  /// The context installed on this thread (by FlowContextScope or a pool
  /// job), or the default context.
  static FlowContext& current();
  /// Process-wide context backing the legacy singleton accessors. Never
  /// destroyed, so releases from thread-local caches at exit stay safe.
  static FlowContext& defaultContext();

 private:
  friend class FlowContextScope;
  struct DefaultTag {};
  FlowContext(const Config& config, DefaultTag);

  CounterRegistry counters_;
  TimingRegistry timing_;
  HeartbeatState heartbeat_;
  std::shared_ptr<MemoryTracker> memory_;
  std::unique_ptr<TraceRecorder> trace_owned_;
  TraceRecorder* trace_ = nullptr;
  ThreadPool* pool_ = nullptr;  ///< nullptr = resolve the process pool.

  std::atomic<bool> cancel_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};

  std::int64_t pool_busy_start_us_ = 0;
  std::int64_t pool_capacity_start_us_ = 0;
};

/// RAII installer: makes `context` the current one on this thread,
/// restoring the previous current context on destruction.
class FlowContextScope {
 public:
  explicit FlowContextScope(FlowContext& context);
  ~FlowContextScope();

  FlowContextScope(const FlowContextScope&) = delete;
  FlowContextScope& operator=(const FlowContextScope&) = delete;

 private:
  FlowContext* previous_;
};

}  // namespace dreamplace
