// Wall-clock timing with a hierarchical, self-time-attributing registry.
//
// The paper's evaluation is a set of runtime *reports*: per-stage columns
// (GP / LG / DP / IO of Tables II-V), stage breakdowns (Figs. 3 and 9),
// and per-op kernel breakdowns (Figs. 10 and 12). The registry
// accumulates named scopes so a flow run can assemble those reports
// without threading timers through every API. Each key records call
// count, inclusive seconds, and *self* seconds (inclusive minus time
// spent in nested ScopedTimer scopes on the same thread), so nested
// hierarchies like "gp" > "gp/op/density" > "gp/op/density/poisson" can
// be broken down without double counting.
//
// Thread-safety: the registry is mutex-guarded (multithreaded kernels
// destroy ScopedTimers concurrently); the nesting bookkeeping is a
// thread-local scope stack, so scopes on different threads never see
// each other as parents. Invariants (pinned by tests/profiler_test.cpp):
//   * self <= inclusive for every key,
//   * the self times of a root scope's subtree sum to the root's
//     inclusive time,
//   * the report() denominator is the total root-scope time, so
//     percentages of nested scopes never double-count.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dreamplace {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulated statistics of one timing key.
struct TimingStat {
  std::int64_t count = 0;   ///< Number of completed scopes / add() calls.
  double seconds = 0.0;     ///< Inclusive wall seconds.
  double selfSeconds = 0.0; ///< Inclusive minus nested-scope seconds.
  /// Inclusive seconds accumulated by scopes that were roots of their
  /// thread's scope stack (nothing above them). Summed across keys this
  /// is the wall time the profiler observed exactly once — the natural
  /// percentage denominator.
  double rootSeconds = 0.0;

  TimingStat& operator+=(const TimingStat& o) {
    count += o.count;
    seconds += o.seconds;
    selfSeconds += o.selfSeconds;
    rootSeconds += o.rootSeconds;
    return *this;
  }
};

/// Accumulator of named timing scopes (one per FlowContext).
///
/// Scope keys are '/'-separated paths, e.g. "gp/density/fft". Accumulation
/// is additive across calls; the registry can be cleared between runs.
/// All entry points are thread-safe.
class TimingRegistry {
 public:
  TimingRegistry() = default;
  TimingRegistry(const TimingRegistry&) = delete;
  TimingRegistry& operator=(const TimingRegistry&) = delete;

  /// The default FlowContext's registry (legacy process-wide accessor).
  static TimingRegistry& instance();

  /// Manual accumulation: treated as a leaf root scope (self == inclusive,
  /// one call). Source-compatible with pre-profiler call sites.
  void add(const std::string& key, double seconds);
  /// Scope accumulation with explicit self-time attribution (ScopedTimer's
  /// entry point). `root` marks scopes with no enclosing scope on their
  /// thread.
  void addScope(const std::string& key, double seconds, double selfSeconds,
                bool root);

  /// Inclusive seconds of `key` (0 when absent).
  double total(const std::string& key) const;
  /// Self seconds of `key` (0 when absent).
  double selfTotal(const std::string& key) const;
  /// Completed-scope count of `key` (0 when absent).
  std::int64_t count(const std::string& key) const;
  /// Sum of inclusive seconds over all keys that start with `prefix`.
  double totalPrefix(const std::string& prefix) const;
  /// Sum of self seconds over all keys that start with `prefix`. Unlike
  /// totalPrefix this never double-counts nested scopes, so it is the
  /// right aggregate for subtree shares.
  double selfTotalPrefix(const std::string& prefix) const;

  /// Inclusive seconds per key (legacy shape).
  std::map<std::string, double> snapshot() const;
  /// Full statistics per key.
  std::map<std::string, TimingStat> statsSnapshot() const;
  void clear();

  /// Pretty-print all scopes as "key  count  inclusive  self  percent".
  /// Percentages are inclusive seconds over the total root-scope time, so
  /// nested scopes show their true share instead of inflating the total.
  std::string report() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TimingStat> totals_;
};

/// The current flow's timing registry (common/flow_context.h).
TimingRegistry& currentTimingRegistry();

/// RAII scope that adds its lifetime to the registry under `key`.
///
/// Maintains a thread-local scope stack for self-time attribution: the
/// only per-scope overhead beyond the pre-existing registry add is one
/// push in the constructor and one pop in the destructor. When trace
/// recording is enabled (common/trace.h) the scope also emits a duration
/// event, so every timed region shows up on the timeline.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string key);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string key_;
  Timer timer_;
};

}  // namespace dreamplace
