// Wall-clock timing with a hierarchical accumulation registry.
//
// The paper reports per-stage runtime (GP / LG / DP / IO columns of
// Tables II-V) and runtime breakdowns (Figs. 3 and 9). The registry
// accumulates named scopes so a flow run can print those breakdowns
// without threading timers through every API.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace dreamplace {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-wide accumulator of named timing scopes.
///
/// Scope keys are '/'-separated paths, e.g. "gp/density/fft". Accumulation
/// is additive across calls; the registry can be cleared between runs.
class TimingRegistry {
 public:
  static TimingRegistry& instance();

  void add(const std::string& key, double seconds);
  double total(const std::string& key) const;
  /// Sum of all keys that start with `prefix`.
  double totalPrefix(const std::string& prefix) const;
  std::map<std::string, double> snapshot() const;
  void clear();

  /// Pretty-print all accumulated scopes as "key  seconds  percent".
  std::string report() const;

 private:
  TimingRegistry() = default;
  std::map<std::string, double> totals_;
};

/// RAII scope that adds its lifetime to the registry under `key`.
/// When trace recording is enabled (common/trace.h) the scope also emits
/// a duration event, so every timed region shows up on the timeline.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string key) : key_(std::move(key)) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string key_;
  Timer timer_;
};

}  // namespace dreamplace
