#include "common/parallel.h"

#include <chrono>
#include <cstdlib>

#include "common/counters.h"
#include "common/flow_context.h"
#include "common/trace.h"

#ifdef DREAMPLACE_OPENMP_FALLBACK
#include <omp.h>
#endif

namespace dreamplace {
namespace {

/// Thread count resolution order: explicit request > DREAMPLACE_THREADS
/// environment variable > hardware concurrency > 1.
int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DREAMPLACE_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// True while this thread executes a pool task; nested run() calls see it
/// and degrade to serial inline execution instead of deadlocking.
thread_local bool tl_in_pool_task = false;

std::int64_t elapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// One in-flight parallel job. Lives on the caller's stack for the
/// duration of run(); workers may only touch it between registering as a
/// participant (under job_mutex_) and deregistering (ditto), which is
/// what the caller's done-wait synchronizes on.
struct ThreadPool::Job {
  const std::function<void(Index, int)>* fn = nullptr;
  const char* label = "";
  Index numTasks = 0;
  /// Submitting flow's context; workers adopt it while participating so
  /// instrumentation inside tasks attributes to the right flow.
  FlowContext* context = nullptr;
  std::atomic<Index> next{0};       ///< Shared claim cursor.
  std::atomic<Index> completed{0};  ///< Tasks fully executed.
  int active = 0;  ///< Participants inside participate(); job_mutex_.
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  std::lock_guard<std::mutex> lock(config_mutex_);
  stopWorkersLocked();
}

void ThreadPool::setThreads(int threads) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  requested_ = threads < 0 ? 0 : threads;
  const int resolved = resolveThreadCount(requested_);
  if (resolved != resolved_.load(std::memory_order_relaxed)) {
    // Workers respawn lazily at the new size on the next parallel job.
    stopWorkersLocked();
  }
  resolved_.store(resolved, std::memory_order_release);
}

int ThreadPool::threads() {
  int resolved = resolved_.load(std::memory_order_acquire);
  if (resolved == 0) {
    std::lock_guard<std::mutex> lock(config_mutex_);
    resolved = resolved_.load(std::memory_order_relaxed);
    if (resolved == 0) {
      resolved = resolveThreadCount(requested_);
      resolved_.store(resolved, std::memory_order_release);
    }
  }
  return resolved;
}

std::int64_t ThreadPool::busyMicros() const {
  return busy_us_.load(std::memory_order_relaxed);
}

std::int64_t ThreadPool::capacityMicros() const {
  return capacity_us_.load(std::memory_order_relaxed);
}

double ThreadPool::utilization() const {
  const std::int64_t capacity = capacityMicros();
  if (capacity <= 0) return 0.0;
  const double ratio = static_cast<double>(busyMicros()) /
                       static_cast<double>(capacity);
  return ratio < 0.0 ? 0.0 : (ratio > 1.0 ? 1.0 : ratio);
}

void ThreadPool::ensureStarted(int threads) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  if (static_cast<int>(workers_.size()) == threads - 1) return;
  stopWorkersLocked();
  static Counter pool_start("parallel/pool_start");
  pool_start.add();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int worker = 1; worker < threads; ++worker) {
    workers_.emplace_back([this, worker] { workerMain(worker); });
  }
}

void ThreadPool::stopWorkersLocked() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    stop_ = false;
  }
}

void ThreadPool::workerMain(int worker) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(job_mutex_);
  for (;;) {
    job_cv_.wait(lock, [&] {
      return stop_ || job_generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = job_generation_;
    Job* job = current_job_;
    // The job may already be finished and retired (all tasks were claimed
    // before this worker woke); nothing to do for this generation.
    if (job == nullptr) continue;
    ++job->active;
    lock.unlock();
    {
      // Adopt the submitting flow's context for the job's duration.
      FlowContextScope scope(*job->context);
      participate(*job, worker);
    }
    lock.lock();
    --job->active;
    done_cv_.notify_all();
  }
}

void ThreadPool::participate(Job& job, int worker) {
  static Counter steals("parallel/steals");
  const bool was_in_task = tl_in_pool_task;
  tl_in_pool_task = true;
  const auto start = std::chrono::steady_clock::now();
  Index executed = 0;
  for (Index task = job.next.fetch_add(1, std::memory_order_relaxed);
       task < job.numTasks;
       task = job.next.fetch_add(1, std::memory_order_relaxed)) {
    (*job.fn)(task, worker);
    ++executed;
    job.completed.fetch_add(1, std::memory_order_release);
  }
  tl_in_pool_task = was_in_task;
  if (executed > 0) {
    busy_us_.fetch_add(elapsedMicros(start), std::memory_order_relaxed);
    if (worker != 0) steals.add(executed);
    TraceRecorder& recorder = currentTraceRecorder();
    if (recorder.enabled()) {
      // One lane per worker thread: the recorder assigns tids per thread,
      // so each worker's share of the job shows as its own track.
      recorder.completeEvent(
          job.label,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
  }
}

void ThreadPool::run(const char* label, Index numTasks,
                     const std::function<void(Index, int)>& fn) {
  if (numTasks <= 0) return;
  static Counter jobs("parallel/jobs");
  static Counter tasks("parallel/tasks");
  jobs.add();
  tasks.add(numTasks);
  const int num_threads = threads();
  const auto start = std::chrono::steady_clock::now();
  const auto run_inline = [&] {
    // Strictly serial inline execution: no pool, no synchronization.
    for (Index task = 0; task < numTasks; ++task) fn(task, 0);
    const std::int64_t wall = elapsedMicros(start);
    busy_us_.fetch_add(wall, std::memory_order_relaxed);
    capacity_us_.fetch_add(wall, std::memory_order_relaxed);
  };
  if (num_threads <= 1 || numTasks <= 1 || tl_in_pool_task) {
    run_inline();
    return;
  }
  // Single job slot: when another flow's job already occupies the pool,
  // run this job inline on the calling thread. The deterministic block
  // decomposition makes the result identical; only wall time differs.
  bool expected = false;
  if (!job_inflight_.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire)) {
    static Counter contended("parallel/contended");
    contended.add();
    run_inline();
    return;
  }
  struct SlotRelease {
    std::atomic<bool>& flag;
    ~SlotRelease() { flag.store(false, std::memory_order_release); }
  } slot_release{job_inflight_};
#ifdef DREAMPLACE_OPENMP_FALLBACK
  // Optional fallback backend: same dynamic claim loop, OpenMP threads.
  {
    static Counter steals("parallel/steals");
    FlowContext& context = FlowContext::current();
    std::atomic<Index> next{0};
    std::atomic<std::int64_t> busy{0};
#pragma omp parallel num_threads(num_threads)
    {
      FlowContextScope scope(context);
      const int worker = omp_get_thread_num();
      const auto thread_start = std::chrono::steady_clock::now();
      const bool was_in_task = tl_in_pool_task;
      tl_in_pool_task = true;
      Index executed = 0;
      for (Index task = next.fetch_add(1, std::memory_order_relaxed);
           task < numTasks;
           task = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(task, worker);
        ++executed;
      }
      tl_in_pool_task = was_in_task;
      if (executed > 0) {
        busy.fetch_add(elapsedMicros(thread_start),
                       std::memory_order_relaxed);
        if (worker != 0) steals.add(executed);
      }
    }
    busy_us_.fetch_add(busy.load(), std::memory_order_relaxed);
    capacity_us_.fetch_add(elapsedMicros(start) * num_threads,
                           std::memory_order_relaxed);
  }
  (void)label;
#else
  ensureStarted(num_threads);
  Job job;
  job.fn = &fn;
  job.label = label;
  job.numTasks = numTasks;
  job.context = &FlowContext::current();
  job.active = 1;  // The caller participates as worker 0.
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    current_job_ = &job;
    ++job_generation_;
  }
  job_cv_.notify_all();
  participate(job, 0);
  {
    std::unique_lock<std::mutex> lock(job_mutex_);
    --job.active;
    done_cv_.wait(lock, [&] {
      return job.active == 0 &&
             job.completed.load(std::memory_order_acquire) == job.numTasks;
    });
    // Retire the job before releasing the lock so late-waking workers see
    // nullptr instead of a dangling stack pointer.
    current_job_ = nullptr;
  }
  capacity_us_.fetch_add(elapsedMicros(start) * num_threads,
                         std::memory_order_relaxed);
#endif
}

}  // namespace dreamplace
