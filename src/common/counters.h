// Named scalar-counter registry, the event-count sibling of TimingRegistry.
//
// Timing answers "where did the seconds go"; counters answer "how many
// times did it happen" — op invocations, FFT transforms, workspace
// allocations vs. reuses, optimizer line-search evaluations. Keys are
// '/'-separated paths like the timing registry ("ops/wirelength/evaluate")
// so prefix sums work the same way.
//
// Registries are per-flow: each FlowContext (common/flow_context.h) owns
// one, and instance() returns the default context's registry so legacy
// call sites keep working. Counter handles therefore hold the *key*, not
// a cell address, and resolve the current context's registry on every
// add() — the same static Counter in a hot kernel charges whichever flow
// runs on the calling thread. Counters fire per event (op call, FFT
// transform), not per element, so the map lookup is noise next to the
// work being counted.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace dreamplace {

/// Registry of named monotonic counters (one per FlowContext).
class CounterRegistry {
 public:
  using Value = std::int64_t;

  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// The default FlowContext's registry (legacy process-wide accessor).
  static CounterRegistry& instance();

  /// Returns the counter cell for `key`, creating it at zero. The address
  /// stays valid for the registry lifetime (clear() zeroes, never erases).
  std::atomic<Value>& counter(std::string_view key);

  void add(std::string_view key, Value delta = 1);
  Value value(std::string_view key) const;
  /// Sum of all counters whose key starts with `prefix`.
  Value totalPrefix(const std::string& prefix) const;
  std::map<std::string, Value> snapshot() const;
  /// Resets every counter to zero (registered keys remain).
  void clear();

  /// Pretty-print all counters as "key  value".
  std::string report() const;

 private:
  mutable std::mutex mutex_;
  // std::less<> enables find(string_view) without a temporary string.
  std::map<std::string, std::unique_ptr<std::atomic<Value>>, std::less<>>
      counters_;
};

/// The current flow's counter registry (common/flow_context.h).
CounterRegistry& currentCounterRegistry();

/// Increment handle bound to one counter *key*; the owning registry is
/// resolved per call from the current FlowContext.
class Counter {
 public:
  explicit Counter(const char* key) : key_(key) {}

  void add(CounterRegistry::Value delta = 1) {
    currentCounterRegistry().add(key_, delta);
  }
  CounterRegistry::Value value() const {
    return currentCounterRegistry().value(key_);
  }

 private:
  const char* key_;
};

}  // namespace dreamplace
