// Named scalar-counter registry, the event-count sibling of TimingRegistry.
//
// Timing answers "where did the seconds go"; counters answer "how many
// times did it happen" — op invocations, FFT transforms, workspace
// allocations vs. reuses, optimizer line-search evaluations. Keys are
// '/'-separated paths like the timing registry ("ops/wirelength/evaluate")
// so prefix sums work the same way.
//
// Hot paths increment through a Counter handle, which caches the atomic's
// address once (function-local static) and then costs one relaxed
// fetch_add per event — no map lookup, no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dreamplace {

/// Process-wide registry of named monotonic counters.
class CounterRegistry {
 public:
  using Value = std::int64_t;

  static CounterRegistry& instance();

  /// Returns the counter cell for `key`, creating it at zero. The address
  /// stays valid for the process lifetime (clear() zeroes, never erases).
  std::atomic<Value>& counter(const std::string& key);

  void add(const std::string& key, Value delta = 1);
  Value value(const std::string& key) const;
  /// Sum of all counters whose key starts with `prefix`.
  Value totalPrefix(const std::string& prefix) const;
  std::map<std::string, Value> snapshot() const;
  /// Resets every counter to zero (registered keys remain).
  void clear();

  /// Pretty-print all counters as "key  value".
  std::string report() const;

 private:
  CounterRegistry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<Value>>> counters_;
};

/// Cheap increment handle bound to one registry cell.
class Counter {
 public:
  explicit Counter(const char* key)
      : cell_(CounterRegistry::instance().counter(key)) {}

  void add(CounterRegistry::Value delta = 1) {
    cell_.fetch_add(delta, std::memory_order_relaxed);
  }
  CounterRegistry::Value value() const {
    return cell_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<CounterRegistry::Value>& cell_;
};

}  // namespace dreamplace
