// Deterministic parallel runtime: an owned ThreadPool plus parallel-for /
// parallel-reduce helpers that replace the ad-hoc `#pragma omp` sites.
//
// Why own the runtime instead of leaning on OpenMP:
//  * Determinism. Every helper partitions work into fixed blocks whose
//    boundaries depend only on (n, grain) — never on the thread count —
//    and reductions combine per-block partials in ascending block order.
//    Floating-point results are therefore bit-identical whether the flow
//    runs with 1, 2, or 64 threads, which is what lets the count-based
//    regression gate and the determinism test suite pin flow results.
//  * Observability. Jobs and tasks are counted (`parallel/jobs`,
//    `parallel/tasks`, `parallel/steals`), each worker emits its own
//    chrome-trace lane when recording is on, and busy/capacity time is
//    accumulated so the run report can state pool utilization.
//  * Control. Thread count comes from PlacerOptions::threads or the
//    DREAMPLACE_THREADS environment variable (default: hardware
//    concurrency); 1 means strictly serial inline execution with zero
//    thread machinery. Future backends (task graphs, SIMD tiles,
//    distributed shards) swap in behind the same three helpers.
//
// OpenMP remains available as an optional build fallback
// (-DDREAMPLACE_OPENMP_FALLBACK=ON): the claim loop then runs inside an
// `omp parallel` region instead of pool workers. It is the only OpenMP
// site left in the tree.
//
// Scheduling model: a job splits [0, n) into ceil(n/grain) blocks; the
// caller and the pool workers claim blocks dynamically from a shared
// atomic cursor (cheap work stealing, good load balance for skewed block
// costs such as sorted-by-area density scatter). Dynamic claiming is safe
// for determinism because *which thread* runs a block never influences
// the result — blocks write disjoint state or produce ordered partials.
//
// Grain-size guidance (see docs/PARALLEL.md): pick a grain so one block
// costs ~10µs or more. Elementwise loops over cells/pins: 1024–8192.
// Per-net or per-row loops that do real work each iteration: 1–64.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace dreamplace {

class FlowContext;

/// Worker pool. Lazily started: no threads exist until the first parallel
/// job with threads() > 1 runs. Thread count is reconfigurable between
/// jobs via setThreads(); configuring while a job is in flight is not
/// supported.
///
/// instance() is the process-wide pool used by flows on the default
/// context; a PlacementEngine constructs its own so concurrent jobs share
/// one bounded worker set. A pool accepts run() from several threads at
/// once: one caller's job occupies the workers, the others execute their
/// tasks inline on the calling thread (the determinism contract makes
/// the result identical either way — only wall time differs). Workers
/// adopt the submitting flow's FlowContext for the duration of a job, so
/// per-flow counters/timers/traces attribute correctly from inside
/// kernels.
class ThreadPool {
 public:
  ThreadPool() = default;
  static ThreadPool& instance();

  /// Requests a pool size: n >= 1 forces n, 0 re-resolves from
  /// DREAMPLACE_THREADS / hardware concurrency. If the resolved size
  /// changes, running workers are joined and respawn lazily.
  void setThreads(int threads);

  /// Resolved pool size (>= 1). Resolves lazily on first use.
  int threads();

  /// Runs `numTasks` tasks, calling fn(taskIndex, workerIndex) for each
  /// task exactly once. workerIndex is in [0, threads()); the calling
  /// thread participates as worker 0. Serial inline when threads() == 1,
  /// numTasks <= 1, or when called from inside a pool task (nested
  /// parallelism degrades to serial rather than deadlocking).
  void run(const char* label, Index numTasks,
           const std::function<void(Index, int)>& fn);

  /// Cumulative worker-busy microseconds across all jobs.
  std::int64_t busyMicros() const;
  /// Cumulative capacity: job wall time times pool size, summed.
  std::int64_t capacityMicros() const;
  /// busyMicros / capacityMicros in [0, 1]; 0 before any job ran.
  double utilization() const;

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  struct Job;

  void ensureStarted(int threads);
  /// Joins all workers. Caller holds config_mutex_.
  void stopWorkersLocked();
  void workerMain(int worker);
  void participate(Job& job, int worker);

  std::mutex config_mutex_;
  int requested_ = 0;
  std::atomic<int> resolved_{0};  ///< 0 = not yet resolved.

  /// Single job slot: true while a pooled job is in flight. A second
  /// concurrent run() caller falls back to inline-serial execution.
  std::atomic<bool> job_inflight_{false};

  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* current_job_ = nullptr;
  std::uint64_t job_generation_ = 0;
  bool stop_ = false;

  std::atomic<std::int64_t> busy_us_{0};
  std::atomic<std::int64_t> capacity_us_{0};
};

/// The current flow's pool (common/flow_context.h): the engine pool for
/// engine jobs, the process-wide pool otherwise. The helpers below run on
/// it, so kernels need no pool plumbing.
ThreadPool& currentThreadPool();

/// Elementwise parallel loop: fn(i) for every i in [0, n), grouped into
/// ceil(n/grain) dynamically-claimed blocks. Use when iterations write
/// disjoint state (fn must not race with itself on shared writes).
template <typename Fn>
void parallelFor(const char* label, Index n, Index grain, Fn&& fn) {
  if (n <= 0) return;
  const Index g = grain > 0 ? grain : 1;
  const Index blocks = (n + g - 1) / g;
  currentThreadPool().run(label, blocks, [&](Index block, int) {
    const Index lo = block * g;
    const Index hi = std::min<Index>(lo + g, n);
    for (Index i = lo; i < hi; ++i) fn(i);
  });
}

/// Block-granular parallel loop: fn(begin, end, worker) per block. The
/// worker index (in [0, threads())) lets blocks borrow per-worker scratch
/// (e.g. FFT row buffers) without allocation.
template <typename Fn>
void parallelForBlocked(const char* label, Index n, Index grain, Fn&& fn) {
  if (n <= 0) return;
  const Index g = grain > 0 ? grain : 1;
  const Index blocks = (n + g - 1) / g;
  currentThreadPool().run(label, blocks, [&](Index block, int worker) {
    const Index lo = block * g;
    const Index hi = std::min<Index>(lo + g, n);
    fn(lo, hi, worker);
  });
}

/// Deterministic parallel reduction. map(begin, end) computes one block's
/// partial; partials are combined with combine(acc, partial) in ascending
/// block order starting from init. Because block boundaries depend only
/// on (n, grain) and combination order is fixed, the result is
/// bit-identical for any thread count — and identical to the serial loop
/// the block decomposition implies.
template <typename R, typename Map, typename Combine>
R parallelReduce(const char* label, Index n, Index grain, R init, Map&& map,
                 Combine&& combine) {
  if (n <= 0) return init;
  const Index g = grain > 0 ? grain : 1;
  const Index blocks = (n + g - 1) / g;
  std::vector<R> partial(static_cast<std::size_t>(blocks), init);
  currentThreadPool().run(label, blocks, [&](Index block, int) {
    const Index lo = block * g;
    const Index hi = std::min<Index>(lo + g, n);
    partial[static_cast<std::size_t>(block)] = map(lo, hi);
  });
  R acc = init;
  for (Index block = 0; block < blocks; ++block) {
    acc = combine(acc, partial[static_cast<std::size_t>(block)]);
  }
  return acc;
}

/// parallelReduce with a worker index: map(begin, end, worker) may use
/// per-worker scratch (worker in [0, threads())), exactly like
/// parallelForBlocked. Same determinism guarantee — which worker runs a
/// block never affects the partial it produces, and partials combine in
/// ascending block order.
template <typename R, typename Map, typename Combine>
R parallelReduceBlocked(const char* label, Index n, Index grain, R init,
                        Map&& map, Combine&& combine) {
  if (n <= 0) return init;
  const Index g = grain > 0 ? grain : 1;
  const Index blocks = (n + g - 1) / g;
  std::vector<R> partial(static_cast<std::size_t>(blocks), init);
  currentThreadPool().run(label, blocks, [&](Index block, int worker) {
    const Index lo = block * g;
    const Index hi = std::min<Index>(lo + g, n);
    partial[static_cast<std::size_t>(block)] = map(lo, hi, worker);
  });
  R acc = init;
  for (Index block = 0; block < blocks; ++block) {
    acc = combine(acc, partial[static_cast<std::size_t>(block)]);
  }
  return acc;
}

}  // namespace dreamplace
