// Prometheus text exposition over the live flow registries.
//
// renderPrometheusMetrics() snapshots each source FlowContext — counters,
// timing self-times/call counts, tracked memory, process RSS/HWM, and the
// liveness heartbeat (common/heartbeat.h) — into the Prometheus text
// format (HELP/TYPE headers + `name{label="v"} value` samples). The
// PlacementEngine's monitor thread renders periodically and atomically
// rewrites a --metrics-file (write tmp, rename), so a scraper or a plain
// `watch cat` always sees a complete document; tools/metrics_dump is the
// standalone CLI. See docs/OBSERVABILITY.md for the metric families.
//
// Rendering only *reads* flow state (snapshots under the registries' own
// locks) — plus one bookkeeping increment of the source's
// "metrics/exports" counter, which is order-dependent by design and
// excluded from determinism comparisons (place/engine.h
// isOrderDependentCounter).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dreamplace {

class FlowContext;

/// One flow to export; `job` becomes the `job="…"` label on its series.
struct MetricsSource {
  std::string job;
  FlowContext* context = nullptr;
};

/// Renders the full exposition document for `sources` (possibly empty:
/// process-level series are always present). Increments each source's
/// "metrics/exports" counter.
std::string renderPrometheusMetrics(const std::vector<MetricsSource>& sources);

/// Atomically replaces `path` with `text`: writes `path + ".tmp"`, then
/// renames over `path`. Returns false and sets `error` (if non-null) to
/// "metrics: cannot write <path>" on failure.
bool writeMetricsFile(const std::string& path, const std::string& text,
                      std::string* error = nullptr);

/// Validates Prometheus text exposition format: HELP/TYPE comment syntax,
/// metric-name and label syntax, numeric sample values (including the
/// NaN/+Inf/-Inf spellings), and that every sample's metric name was
/// declared by a preceding TYPE line. On success returns true and sets
/// `samplesOut` (if non-null) to the number of sample lines; on failure
/// returns false with a line-numbered message in `error`.
bool validatePrometheusText(const std::string& text,
                            std::string* error = nullptr,
                            std::size_t* samplesOut = nullptr);

}  // namespace dreamplace
