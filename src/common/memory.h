// Memory accounting: process peak-RSS sampling plus a per-subsystem
// byte-attribution registry.
//
// DG-RePlAce and the enhanced-FFT placer both report per-kernel memory
// alongside runtime; this is the registry that makes those numbers
// observable here. Two views:
//   * sampleProcessMemory() — VmRSS / VmHWM from /proc/self/status, the
//     ground truth the OS sees (zeros with valid=false off Linux).
//   * MemoryTracker — named current/peak byte counts attributed to the
//     workspace-owning subsystems ("fft/scratch", "ops/density/grids",
//     "ops/wirelength/atomic_ws", "db", ...), keyed like the timing and
//     counter registries so prefix sums work the same way.
//
// Owning classes report through a TrackedBytes RAII member: set() adjusts
// the subsystem's current bytes by the delta and the destructor gives the
// bytes back, so re-running a flow in one process cannot leak attribution.
// When chrome-trace recording is enabled every adjustment also emits a
// "mem/<key>" counter track, putting memory curves on the timeline next
// to the kernel scopes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dreamplace {

/// Process-wide memory as the kernel reports it, in bytes.
struct ProcessMemory {
  std::int64_t vmRssBytes = 0;  ///< Current resident set size.
  std::int64_t vmHwmBytes = 0;  ///< Peak resident set size ("high water mark").
  bool valid = false;           ///< False when /proc is unavailable.
};

/// Reads VmRSS/VmHWM from /proc/self/status. Returns valid=false (all
/// zeros) on platforms without procfs, so callers can gate on it.
ProcessMemory sampleProcessMemory();

/// Registry attributing workspace bytes to named subsystems (one per
/// FlowContext; shared ownership so TrackedBytes releases stay valid
/// after a flow ends).
class MemoryTracker {
 public:
  struct Usage {
    std::int64_t currentBytes = 0;  ///< Live attributed bytes.
    std::int64_t peakBytes = 0;     ///< Maximum currentBytes ever seen.
  };

  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// The default FlowContext's tracker (legacy process-wide accessor).
  static MemoryTracker& instance();

  /// Adjusts `key` by `deltaBytes` (negative to release). Clamps current
  /// at zero so a stray double-release cannot corrupt the registry.
  void adjust(const std::string& key, std::int64_t deltaBytes);

  std::int64_t current(const std::string& key) const;
  std::int64_t peak(const std::string& key) const;
  /// Sum of current bytes over all keys that start with `prefix`.
  std::int64_t currentPrefix(const std::string& prefix) const;
  std::map<std::string, Usage> snapshot() const;
  /// Resets every entry (keys are erased; TrackedBytes owners still
  /// release safely because adjust() clamps at zero).
  void clear();

  /// Pretty-print all subsystems as "key  current  peak".
  std::string report() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Usage> usage_;
};

/// The current flow's memory tracker (common/flow_context.h).
MemoryTracker& currentMemoryTracker();
/// Shared-ownership handle to the current flow's tracker; TrackedBytes
/// holds one so releases reach the tracker the bytes were charged to even
/// after the owning FlowContext is gone.
std::shared_ptr<MemoryTracker> currentMemoryTrackerPtr();

/// RAII byte reservation against one MemoryTracker subsystem. Owning
/// classes keep one per workspace group and call set() whenever the
/// workspace is (re)sized; destruction releases the attribution.
///
/// Context-aware: set() charges the tracker of the FlowContext current at
/// the call. If the owner is resized under a *different* context, the old
/// reservation is released against the tracker it was charged to (kept
/// alive by a shared_ptr) before charging the new one, so attributions
/// never leak across flows and never dangle.
class TrackedBytes {
 public:
  explicit TrackedBytes(std::string key) : key_(std::move(key)) {}
  ~TrackedBytes() { set(0); }

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;
  /// Moves transfer the reservation (owning classes stay movable).
  TrackedBytes(TrackedBytes&& o) noexcept
      : key_(std::move(o.key_)),
        bytes_(o.bytes_),
        tracker_(std::move(o.tracker_)) {
    o.bytes_ = 0;
  }
  TrackedBytes& operator=(TrackedBytes&& o) noexcept {
    if (this != &o) {
      set(0);
      key_ = std::move(o.key_);
      bytes_ = o.bytes_;
      tracker_ = std::move(o.tracker_);
      o.bytes_ = 0;
    }
    return *this;
  }

  /// Re-declares the reservation to `bytes`, adjusting the tracker by the
  /// delta from the previous value.
  void set(std::int64_t bytes);
  /// Adds `bytes` on top of the current reservation.
  void grow(std::int64_t bytes) { set(bytes_ + bytes); }
  std::int64_t bytes() const { return bytes_; }

 private:
  std::string key_;
  std::int64_t bytes_ = 0;
  std::shared_ptr<MemoryTracker> tracker_;  ///< Where bytes_ is charged.
};

}  // namespace dreamplace
