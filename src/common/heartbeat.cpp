#include "common/heartbeat.h"

#include <chrono>
#include <cmath>

namespace dreamplace {

const char* flowStageName(FlowStage stage) {
  switch (stage) {
    case FlowStage::kIdle: return "idle";
    case FlowStage::kGlobalPlacement: return "gp";
    case FlowStage::kLegalization: return "lg";
    case FlowStage::kDetailedPlacement: return "dp";
    case FlowStage::kDone: return "done";
  }
  return "unknown";
}

std::int64_t HeartbeatState::nowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void HeartbeatState::publish(FlowStage stage, int iteration, double hpwl,
                             double overflow) {
  // Single writer: the relaxed read-modify of best_hpwl_ cannot race with
  // another writer, and readers only see it through the seqlock.
  double best = best_hpwl_.load(std::memory_order_relaxed);
  if (std::isfinite(hpwl) && (best <= 0.0 || hpwl < best)) {
    best = hpwl;
  }
  const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
  seq_.store(seq + 1, std::memory_order_relaxed);  // odd: publish in flight
  // The release fence pairs with the reader's acquire fence: if a reader
  // observes any payload store below, it also observes the odd sequence.
  std::atomic_thread_fence(std::memory_order_release);
  stage_.store(static_cast<int>(stage), std::memory_order_relaxed);
  iteration_.store(iteration, std::memory_order_relaxed);
  hpwl_.store(hpwl, std::memory_order_relaxed);
  best_hpwl_.store(best, std::memory_order_relaxed);
  overflow_.store(overflow, std::memory_order_relaxed);
  timestamp_us_.store(nowMicros(), std::memory_order_relaxed);
  seq_.store(seq + 2, std::memory_order_release);  // even: stable
}

void HeartbeatState::beginStage(FlowStage stage) {
  publish(stage, /*iteration=*/-1, hpwl_.load(std::memory_order_relaxed),
          overflow_.load(std::memory_order_relaxed));
}

void HeartbeatState::publishIteration(int iteration, double hpwl,
                                      double overflow) {
  publish(static_cast<FlowStage>(stage_.load(std::memory_order_relaxed)),
          iteration, hpwl, overflow);
}

HeartbeatSnapshot HeartbeatState::read() const {
  HeartbeatSnapshot out;
  for (;;) {
    const std::uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1u) {
      continue;  // publish in flight
    }
    out.sequence = before;
    out.stage = static_cast<FlowStage>(stage_.load(std::memory_order_relaxed));
    out.iteration = iteration_.load(std::memory_order_relaxed);
    out.hpwl = hpwl_.load(std::memory_order_relaxed);
    out.bestHpwl = best_hpwl_.load(std::memory_order_relaxed);
    out.overflow = overflow_.load(std::memory_order_relaxed);
    out.timestampMicros = timestamp_us_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) {
      return out;
    }
  }
}

}  // namespace dreamplace
