// Minimal dependency-free JSON emission helpers shared by the run-report
// and options serializers (place/report.cpp, PlacerOptions::toJson). Not
// a general-purpose library: just escaped strings, finite numbers, and a
// comma-managing object/array emitter.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace dreamplace {
namespace json {

inline void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null keeps the document valid.
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

inline void appendInt(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// Tiny comma-managing JSON emitter; enough for one flat-ish document.
class Json {
 public:
  std::string out;

  void openObject() { punct('{'); fresh_ = true; }
  void closeObject() { out += '}'; fresh_ = false; }
  void openArray() { punct('['); fresh_ = true; }
  void closeArray() { out += ']'; fresh_ = false; }

  void key(const std::string& k) {
    comma();
    appendEscaped(out, k);
    out += ':';
    fresh_ = true;  // value follows, no comma before it
  }
  void value(const std::string& v) { comma(); appendEscaped(out, v); }
  void value(const char* v) { comma(); appendEscaped(out, v); }
  void value(double v) { comma(); appendNumber(out, v); }
  void value(std::int64_t v) { comma(); appendInt(out, v); }
  void value(int v) { comma(); appendInt(out, v); }
  void value(bool v) { comma(); out += v ? "true" : "false"; }
  /// Splices a pre-rendered JSON document as the next value. The caller
  /// guarantees `rendered` is itself valid JSON.
  void rawValue(const std::string& rendered) { comma(); out += rendered; }

 private:
  void punct(char c) {
    comma();
    out += c;
  }
  void comma() {
    if (!fresh_) {
      out += ',';
    }
    fresh_ = false;
  }
  bool fresh_ = true;
};

}  // namespace json
}  // namespace dreamplace
