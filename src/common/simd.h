// Portable fixed-width SIMD layer: Vec<T, N> wrappers plus a vectorized
// exponential (vexp), the arithmetic backbone of the WA/LSE wirelength
// kernels and the density overlap strips (see docs/SIMD.md).
//
// Two interchangeable vector families expose the same operation set:
//  * HwVec<T, N>     — GCC/Clang vector extensions; one register per
//    value. Compiled only when DREAMPLACE_SIMD is ON (the default).
//  * ScalarVec<T, N> — plain lane array with elementwise loops; always
//    available. Its vexp is std::exp per lane, so a ScalarVec kernel
//    reproduces libm numerics exactly. This is both the
//    -DDREAMPLACE_SIMD=OFF fallback and the in-binary "scalar" row of
//    bench_fig10.
//
// NativeVec<T> is the build's preferred type: HwVec<T, kNativeBytes /
// sizeof(T)> (8 float / 4 double lanes on AVX2, half that on SSE2/NEON)
// when SIMD is enabled, ScalarVec<T, 1> otherwise. Kernels are written
// as templates over the vector type and
// instantiated for both families, so the scalar path is a first-class
// citizen (tested, benchable), not dead code.
//
// Determinism contract (docs/PARALLEL.md): lane decomposition of a range
// depends only on the range length and kWidth — never on the thread
// count — and every horizontal reduction (hsum/hmin/hmax) folds lanes in
// ascending lane order. Remainder elements go through the same vexp
// instruction path via a padded lane (vexpArray), so an element's value
// never depends on its position in a range. All kernels therefore stay
// bit-identical for any thread count, exactly like the block
// decomposition of common/parallel.h.
//
// vexp accuracy contract (pinned by tests/simd_test.cpp):
//  * Cephes-style argument reduction x = k*ln2 + r, |r| <= ln2/2, with a
//    degree-5 polynomial (float) / Pade rational (double) for exp(r) and
//    exponent-field scaling by 2^k.
//  * Max error <= 4 ULP against std::exp wherever exp(x) is a normal
//    number (measured: ~2 ULP float, ~1 ULP double). The kernels'
//    argument range is (-inf, 0], where exp is in [0, 1].
//  * Flush-to-zero below kLoFlush (x < -86 float, x < -706 double) —
//    slightly before exp(x) itself goes subnormal, so no intermediate of
//    the lane math is ever a subnormal operand (a many-cycle microcode
//    assist per element on x86; see ExpConst). x = -inf returns exactly
//    0 and x = 0 returns exactly 1. Arguments above +88.38 (float) /
//    +709 (double) saturate rather than overflow.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/types.h"

namespace dreamplace {
namespace simd {

#if !defined(DREAMPLACE_SIMD_DISABLED)
#define DREAMPLACE_SIMD_ENABLED 1
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Human-readable name of the vector ISA the build targets ("avx2",
/// "sse2", "neon", ... or "scalar" when DREAMPLACE_SIMD is OFF). Purely
/// informational: the code is the same portable vector-extension code
/// either way; the compiler's target flags decide the instructions.
const char* activeIsaName();

// ---------------------------------------------------------------------------
// ScalarVec<T, N>: the always-available lane-array fallback.
// ---------------------------------------------------------------------------

template <typename T, int N>
struct ScalarVec {
  static constexpr int kWidth = N;
  using Elem = T;

  T lane[N];

  static ScalarVec broadcast(T x) {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.lane[i] = x;
    return r;
  }
  static ScalarVec zero() { return broadcast(T(0)); }
  /// {0, 1, ..., N-1} as T.
  static ScalarVec iota() {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.lane[i] = static_cast<T>(i);
    return r;
  }
  static ScalarVec load(const T* p) {
    ScalarVec r;
    for (int i = 0; i < N; ++i) r.lane[i] = p[i];
    return r;
  }
  void store(T* p) const {
    for (int i = 0; i < N; ++i) p[i] = lane[i];
  }
  T operator[](int i) const { return lane[i]; }

  friend ScalarVec operator+(ScalarVec a, ScalarVec b) {
    for (int i = 0; i < N; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend ScalarVec operator-(ScalarVec a, ScalarVec b) {
    for (int i = 0; i < N; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend ScalarVec operator*(ScalarVec a, ScalarVec b) {
    for (int i = 0; i < N; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend ScalarVec operator/(ScalarVec a, ScalarVec b) {
    for (int i = 0; i < N; ++i) a.lane[i] /= b.lane[i];
    return a;
  }
};

template <typename T, int N>
inline ScalarVec<T, N> min(ScalarVec<T, N> a, ScalarVec<T, N> b) {
  for (int i = 0; i < N; ++i) a.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
  return a;
}
template <typename T, int N>
inline ScalarVec<T, N> max(ScalarVec<T, N> a, ScalarVec<T, N> b) {
  for (int i = 0; i < N; ++i) a.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  return a;
}
/// a*b + c. Deliberately unfused (two correctly-rounded ops) in both
/// vector families so HwVec and ScalarVec kernels agree on targets with
/// and without hardware FMA; see docs/SIMD.md.
template <typename T, int N>
inline ScalarVec<T, N> fma(ScalarVec<T, N> a, ScalarVec<T, N> b,
                           ScalarVec<T, N> c) {
  for (int i = 0; i < N; ++i) c.lane[i] += a.lane[i] * b.lane[i];
  return c;
}
/// Lanes folded in ascending lane order (deterministic).
template <typename T, int N>
inline T hsum(ScalarVec<T, N> a) {
  T s = a.lane[0];
  for (int i = 1; i < N; ++i) s += a.lane[i];
  return s;
}
template <typename T, int N>
inline T hmin(ScalarVec<T, N> a) {
  T s = a.lane[0];
  for (int i = 1; i < N; ++i) s = a.lane[i] < s ? a.lane[i] : s;
  return s;
}
template <typename T, int N>
inline T hmax(ScalarVec<T, N> a) {
  T s = a.lane[0];
  for (int i = 1; i < N; ++i) s = a.lane[i] > s ? a.lane[i] : s;
  return s;
}

/// Scalar-family vexp: exactly std::exp per lane. The fallback therefore
/// has libm accuracy (0 ULP vs std::exp) and is the reference the
/// polynomial path is ULP-tested against.
template <typename T, int N>
inline ScalarVec<T, N> vexp(ScalarVec<T, N> a) {
  for (int i = 0; i < N; ++i) a.lane[i] = std::exp(a.lane[i]);
  return a;
}

#if defined(DREAMPLACE_SIMD_ENABLED)

// ---------------------------------------------------------------------------
// HwVec<T, N>: GCC/Clang vector extensions.
// ---------------------------------------------------------------------------

template <typename T, int N>
struct HwVec {
  static constexpr int kWidth = N;
  using Elem = T;
  typedef T Native __attribute__((vector_size(N * sizeof(T))));
  /// N lanes of int32 regardless of T: exponent-field math never needs
  /// 64-bit integer lanes (which SSE2/NEON/AVX2 lack converts for).
  typedef std::int32_t NativeI32 __attribute__((vector_size(N * 4)));

  Native v;

  static HwVec broadcast(T x) { return {Native{} + x}; }
  static HwVec zero() { return {Native{}}; }
  static HwVec iota() {
    HwVec r;
    for (int i = 0; i < N; ++i) r.v[i] = static_cast<T>(i);
    return r;
  }
  /// Unaligned load/store (memcpy lowers to unaligned vector moves).
  static HwVec load(const T* p) {
    HwVec r;
    std::memcpy(&r.v, p, sizeof(Native));
    return r;
  }
  void store(T* p) const { std::memcpy(p, &v, sizeof(Native)); }
  T operator[](int i) const { return v[i]; }

  friend HwVec operator+(HwVec a, HwVec b) { return {a.v + b.v}; }
  friend HwVec operator-(HwVec a, HwVec b) { return {a.v - b.v}; }
  friend HwVec operator*(HwVec a, HwVec b) { return {a.v * b.v}; }
  friend HwVec operator/(HwVec a, HwVec b) { return {a.v / b.v}; }
};

template <typename T, int N>
inline HwVec<T, N> min(HwVec<T, N> a, HwVec<T, N> b) {
  return {a.v < b.v ? a.v : b.v};
}
template <typename T, int N>
inline HwVec<T, N> max(HwVec<T, N> a, HwVec<T, N> b) {
  return {a.v > b.v ? a.v : b.v};
}
template <typename T, int N>
inline HwVec<T, N> fma(HwVec<T, N> a, HwVec<T, N> b, HwVec<T, N> c) {
  return {a.v * b.v + c.v};
}
template <typename T, int N>
inline T hsum(HwVec<T, N> a) {
  T s = a.v[0];
  for (int i = 1; i < N; ++i) s += a.v[i];
  return s;
}
template <typename T, int N>
inline T hmin(HwVec<T, N> a) {
  T s = a.v[0];
  for (int i = 1; i < N; ++i) s = a.v[i] < s ? a.v[i] : s;
  return s;
}
template <typename T, int N>
inline T hmax(HwVec<T, N> a) {
  T s = a.v[0];
  for (int i = 1; i < N; ++i) s = a.v[i] > s ? a.v[i] : s;
  return s;
}

namespace detail {

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kLittleEndian = true;
#else
inline constexpr bool kLittleEndian = false;
#endif

/// Per-precision constants of the Cephes-style exp reduction.
template <typename T>
struct ExpConst;

template <>
struct ExpConst<float> {
  static constexpr float kLog2e = 1.44269504088896341f;
  // ln2 split so k*kLn2Hi is exact for |k| < 2^15.
  static constexpr float kLn2Hi = 0.693359375f;
  static constexpr float kLn2Lo = -2.12194440e-4f;
  // Flush-to-zero threshold. exp(x) only goes subnormal below -87.34,
  // but the cut sits at -86 so every intermediate stays comfortably
  // normal: k = rint(x*log2e) >= -125, and y*2^k >= 0.5*2^-125 — a
  // subnormal *operand* anywhere in the lane math costs a ~100-cycle
  // microcode assist per element on x86 (we never set FTZ/DAZ), which
  // measured as a 10x kernel slowdown on wirelength-typical arguments.
  // exp(-86) ~= 4.4e-38; flushing values that small changes no WA/LSE
  // sum (the max-shifted term is always exp(0) = 1).
  static constexpr float kLoFlush = -86.0f;
  static constexpr float kHi = 88.3762626647949f;
  // 1.5 * 2^23: adding/subtracting rounds |z| < 2^22 to the nearest
  // integer (round-to-nearest FP mode, the C++ default) with no
  // float<->int compare/fixup dance.
  static constexpr float kMagic = 12582912.0f;
  static constexpr std::int32_t kExpBias = 127;
  static constexpr int kMantBits = 23;
};

template <>
struct ExpConst<double> {
  static constexpr double kLog2e = 1.4426950408889634073599;
  static constexpr double kLn2Hi = 6.93145751953125e-1;
  static constexpr double kLn2Lo = 1.42860682030941723212e-6;
  // Same conservative flush as float (see above): exp(x) is subnormal
  // below -708.4, but cutting at -706 keeps k >= -1019 and every
  // intermediate normal (y*2^k >= 0.5*2^-1019 > 2^-1022).
  static constexpr double kLoFlush = -706.0;
  static constexpr double kHi = 709.0;
  // 1.5 * 2^52: rounds |z| < 2^51 to the nearest integer.
  static constexpr double kMagic = 6755399441055744.0;
  static constexpr std::int32_t kExpBias = 1023;
  static constexpr int kMantBits = 52;
};

}  // namespace detail

/// Vectorized exp, float: Cephes expf — degree-5 polynomial for exp(r)
/// after x = k*ln2 + r reduction (k = rint(x*log2e), so |r| <= ln2/2),
/// 2^k applied through the exponent field.
template <int N>
inline HwVec<float, N> vexp(HwVec<float, N> xin) {
  using V = HwVec<float, N>;
  using NF = typename V::Native;
  using NI = typename V::NativeI32;
  using C = detail::ExpConst<float>;

  const NF x0 = xin.v;
  NF x = x0 < C::kHi ? x0 : (NF{} + C::kHi);
  x = x > C::kLoFlush ? x : (NF{} + C::kLoFlush);

  // k = rint(x * log2(e)) via the magic-constant trick; the clamps keep
  // |x*log2e| < 2^22 so the rounding is exact, and the truncating
  // convert below is exact because kf is already an integer.
  const NF kf = (x * C::kLog2e + C::kMagic) - C::kMagic;
  const NI k = __builtin_convertvector(kf, NI);

  NF r = x - kf * C::kLn2Hi;
  r = r - kf * C::kLn2Lo;

  NF y = NF{} + 1.9875691500e-4f;
  y = y * r + 1.3981999507e-3f;
  y = y * r + 8.3334519073e-3f;
  y = y * r + 4.1665795894e-2f;
  y = y * r + 1.6666665459e-1f;
  y = y * r + 5.0000001201e-1f;
  y = y * (r * r) + r + 1.0f;

  // Scale by 2^k through the exponent field; k is in [-126, 127] thanks
  // to the clamps, so the biased exponent stays in the normal range.
  const NI bits = (k + C::kExpBias) << C::kMantBits;
  NF scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  NF result = y * scale;

  // Subnormal results flush to exactly zero (see the contract above).
  result = x0 >= C::kLoFlush ? result : NF{};
  return {result};
}

/// Vectorized exp, double: Cephes exp — Pade rational
/// exp(r) = 1 + 2r*P(r^2) / (Q(r^2) - r*P(r^2)) after the same reduction.
template <int N>
inline HwVec<double, N> vexp(HwVec<double, N> xin) {
  using V = HwVec<double, N>;
  using NF = typename V::Native;
  using NI = typename V::NativeI32;
  using C = detail::ExpConst<double>;

  const NF x0 = xin.v;
  NF x = x0 < C::kHi ? x0 : (NF{} + C::kHi);
  x = x > C::kLoFlush ? x : (NF{} + C::kLoFlush);

  const NF kf = (x * C::kLog2e + C::kMagic) - C::kMagic;
  const NI k = __builtin_convertvector(kf, NI);

  NF r = x - kf * C::kLn2Hi;
  r = r - kf * C::kLn2Lo;
  const NF rr = r * r;

  NF p = NF{} + 1.26177193074810590878e-4;
  p = p * rr + 3.02994407707441961300e-2;
  p = p * rr + 9.99999999999999999910e-1;
  p = p * r;

  NF q = NF{} + 3.00198505138664455042e-6;
  q = q * rr + 2.52448340349684104192e-3;
  q = q * rr + 2.27265548208155028766e-1;
  q = q * rr + 2.00000000000000000005e0;

  NF y = p / (q - p);
  y = 1.0 + 2.0 * y;

  // 2^k as a double whose bit pattern is (k + 1023) << 52. Built from
  // int32 lanes only — hardware converts/shifts on 64-bit integer lanes
  // don't exist below AVX-512, so the obvious int64 formulation
  // scalarizes. The int64 bits are [low word 0 | high word
  // (k+1023) << 20]; on little-endian we interleave zeros with the high
  // words in one shuffle.
  const NI hi = (k + C::kExpBias) << (C::kMantBits - 32);
  NF scale;
  if constexpr (detail::kLittleEndian && N == 4) {
    typedef std::int32_t WideI __attribute__((vector_size(32)));
    const WideI w = __builtin_shufflevector(NI{}, hi, 0, 4, 0, 5, 0, 6, 0, 7);
    std::memcpy(&scale, &w, sizeof(scale));
  } else if constexpr (detail::kLittleEndian && N == 2) {
    typedef std::int32_t WideI __attribute__((vector_size(16)));
    const WideI w = __builtin_shufflevector(NI{}, hi, 0, 2, 0, 3);
    std::memcpy(&scale, &w, sizeof(scale));
  } else {
    std::int64_t b[N];
    for (int i = 0; i < N; ++i) {
      b[i] = static_cast<std::int64_t>(k[i] + C::kExpBias) << C::kMantBits;
    }
    std::memcpy(&scale, b, sizeof(scale));
  }
  NF result = y * scale;

  result = x0 >= C::kLoFlush ? result : NF{};
  return {result};
}

/// Bytes per native vector. 32 only when the target really has 32-byte
/// integer lanes (AVX2); otherwise 16 — on SSE2/NEON a 32-byte vector
/// splits into register pairs and measures *slower* than libm, while
/// 16-byte vexp beats it. The width is a per-build constant (set by the
/// target flags CMake chose), so every TU in a build agrees on
/// NativeVec and the determinism contract is per-build, as documented.
#if defined(__AVX2__)
inline constexpr int kNativeBytes = 32;
#else
inline constexpr int kNativeBytes = 16;
#endif

/// The build's preferred vector type (e.g. 8 float / 4 double lanes on
/// AVX2, 4 float / 2 double on SSE2/NEON).
template <typename T>
using NativeVec = HwVec<T, kNativeBytes / static_cast<int>(sizeof(T))>;

#else  // DREAMPLACE_SIMD_DISABLED

template <typename T>
using NativeVec = ScalarVec<T, 1>;

#endif

/// Lane width of the build's native vector for T (1 when SIMD is OFF).
template <typename T>
inline constexpr int kNativeWidth = NativeVec<T>::kWidth;

/// NativeVec's vexp returns exactly 0 for arguments below this
/// threshold (see ExpConst::kLoFlush). -inf when SIMD is OFF: the
/// ScalarVec fallback is libm std::exp, which never flushes.
template <typename T>
#if defined(DREAMPLACE_SIMD_ENABLED)
inline constexpr T kVexpFlushBelow = detail::ExpConst<T>::kLoFlush;
#else
inline constexpr T kVexpFlushBelow = -std::numeric_limits<T>::infinity();
#endif

/// out[i] = vexp(in[i]) for i in [0, n). Full lanes stream through vexp;
/// the remainder is computed through the *same* vexp on a zero-padded
/// lane, so every element's value is independent of its position in the
/// array (lane-remainder determinism, pinned by tests/simd_test.cpp).
template <typename V, typename T = typename V::Elem>
inline void vexpArray(const T* in, T* out, Index n) {
  constexpr Index kW = V::kWidth;
  Index i = 0;
  for (; i + kW <= n; i += kW) {
    vexp(V::load(in + i)).store(out + i);
  }
  if (i < n) {
    T tmp[kW] = {};
    for (Index j = i; j < n; ++j) tmp[j - i] = in[j];
    T padded[kW];
    vexp(V::load(tmp)).store(padded);
    for (Index j = i; j < n; ++j) out[j] = padded[j - i];
  }
}

}  // namespace simd
}  // namespace dreamplace
