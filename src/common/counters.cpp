#include "common/counters.h"

#include <cstdio>

namespace dreamplace {

// CounterRegistry::instance() is defined in flow_context.cpp: it returns
// the default FlowContext's registry.

std::atomic<CounterRegistry::Value>& CounterRegistry::counter(
    std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(key),
                      std::make_unique<std::atomic<Value>>(0))
             .first;
  }
  return *it->second;
}

void CounterRegistry::add(std::string_view key, Value delta) {
  counter(key).fetch_add(delta, std::memory_order_relaxed);
}

CounterRegistry::Value CounterRegistry::value(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->load();
}

CounterRegistry::Value CounterRegistry::totalPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Value sum = 0;
  // std::map is ordered, so the matching keys form a contiguous range.
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    sum += it->second->load();
  }
  return sum;
}

std::map<std::string, CounterRegistry::Value> CounterRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Value> out;
  for (const auto& [key, cell] : counters_) {
    out.emplace(key, cell->load());
  }
  return out;
}

void CounterRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, cell] : counters_) {
    cell->store(0);
  }
}

std::string CounterRegistry::report() const {
  std::string out;
  char line[256];
  for (const auto& [key, value] : snapshot()) {
    std::snprintf(line, sizeof(line), "%-40s %12lld\n", key.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  return out;
}

}  // namespace dreamplace
