// Basic 2-D geometry value types used throughout the placer.
#pragma once

#include <algorithm>
#include <cmath>

namespace dreamplace {

template <typename T>
struct Point {
  T x{};
  T y{};

  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned rectangle with [lo, hi) semantics on both axes.
template <typename T>
struct Box {
  T xl{};
  T yl{};
  T xh{};
  T yh{};

  constexpr T width() const { return xh - xl; }
  constexpr T height() const { return yh - yl; }
  constexpr T area() const { return width() * height(); }
  constexpr T centerX() const { return (xl + xh) / T(2); }
  constexpr T centerY() const { return (yl + yh) / T(2); }

  constexpr bool contains(T x, T y) const {
    return x >= xl && x < xh && y >= yl && y < yh;
  }

  constexpr bool containsBox(const Box& other) const {
    return other.xl >= xl && other.xh <= xh && other.yl >= yl &&
           other.yh <= yh;
  }

  constexpr bool overlaps(const Box& other) const {
    return xl < other.xh && other.xl < xh && yl < other.yh && other.yl < yh;
  }

  /// Overlap area with another box; zero if disjoint.
  constexpr T overlapArea(const Box& other) const {
    const T w = std::min(xh, other.xh) - std::max(xl, other.xl);
    const T h = std::min(yh, other.yh) - std::max(yl, other.yl);
    return (w > T(0) && h > T(0)) ? w * h : T(0);
  }

  friend bool operator==(const Box&, const Box&) = default;
};

/// Overlap length of 1-D intervals [al, ah) and [bl, bh); zero if disjoint.
template <typename T>
constexpr T overlapLength(T al, T ah, T bl, T bh) {
  const T len = std::min(ah, bh) - std::max(al, bl);
  return len > T(0) ? len : T(0);
}

/// Clamp helper mirroring std::clamp but tolerant of lo > hi (returns lo).
template <typename T>
constexpr T clampSafe(T value, T lo, T hi) {
  if (hi < lo) {
    return lo;
  }
  return std::clamp(value, lo, hi);
}

}  // namespace dreamplace
