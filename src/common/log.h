// Lightweight leveled logging for the placer.
//
// The placer is a long-running numerical loop; logging must be cheap when
// disabled and line-buffered when enabled so progress is visible during runs.
#pragma once

#include <cstdarg>
#include <string>

namespace dreamplace {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging. All calls are thread-safe (single write per line).
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fatal error: logs and aborts. Used for programming errors (broken
/// invariants), not user input errors.
[[noreturn]] void logFatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
}  // namespace detail

}  // namespace dreamplace

/// Assertion macro that stays active in release builds; placement invariants
/// are cheap to check relative to the numerical work they guard.
#define DP_ASSERT(cond, ...)                                           \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dreamplace::logFatal("assertion failed: %s (%s:%d) ", #cond,   \
                             __FILE__, __LINE__);                      \
    }                                                                  \
  } while (0)

#define DP_ASSERT_MSG(cond, fmt, ...)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dreamplace::logFatal("assertion failed: %s (%s:%d): " fmt, #cond,  \
                             __FILE__, __LINE__, ##__VA_ARGS__);           \
    }                                                                      \
  } while (0)
