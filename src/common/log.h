// Lightweight leveled logging for the placer.
//
// The placer is a long-running numerical loop; logging must be cheap when
// disabled and line-buffered when enabled so progress is visible during runs.
//
// Structured context: a RAII LogScope stamps key=value pairs (job name,
// design label) onto every line the current thread emits while the scope
// is alive, so interleaved lines from concurrent engine jobs stay
// attributable. An optional JSONL sink (DREAMPLACE_LOG_JSON=<path>, or
// setLogJsonPath) mirrors every emitted line as one JSON object —
// {"ts":…,"level":…,<scope keys>,"msg":…} — making engine lifecycle
// events machine-parseable. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>

namespace dreamplace {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Stable lowercase name ("debug", "info", "warn", "error", "silent").
const char* logLevelName(LogLevel level);

/// Parses a level name (case-insensitive; "warning" accepted for kWarn).
/// Returns false and leaves `out` untouched on an unknown name.
bool parseLogLevel(std::string_view name, LogLevel& out);

/// Applies DREAMPLACE_LOG_LEVEL when set to a valid level name; returns
/// true when a level was applied. An invalid value logs a warning and is
/// ignored (logging must not break a run).
bool initLogLevelFromEnv();

/// Mirrors every emitted log line to `path` as one JSON object per line
/// (append mode). An empty path disables the sink. Throws
/// std::runtime_error("log: cannot write <path>") when the file cannot be
/// opened. Re-setting the same path is a no-op.
void setLogJsonPath(const std::string& path);

/// Applies DREAMPLACE_LOG_JSON when set; an unopenable path logs an error
/// and returns false instead of throwing (env-driven config must not kill
/// a run that never asked for logs programmatically).
bool initLogJsonFromEnv();

/// RAII structured-log context: while alive, every log line emitted by
/// *this thread* carries "key=value" (text) / "key":"value" (JSONL).
/// Scopes nest; destruction must be LIFO (automatic with block scoping).
class LogScope {
 public:
  LogScope(std::string key, std::string value);
  ~LogScope();

  LogScope(const LogScope&) = delete;
  LogScope& operator=(const LogScope&) = delete;

  /// "key=value key2=value2" for this thread's active scopes ("" if none).
  static std::string currentText();
};

/// printf-style logging. All calls are thread-safe (single write per line).
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fatal error: logs and aborts. Used for programming errors (broken
/// invariants), not user input errors.
[[noreturn]] void logFatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
}  // namespace detail

}  // namespace dreamplace

/// Assertion macro that stays active in release builds; placement invariants
/// are cheap to check relative to the numerical work they guard.
#define DP_ASSERT(cond, ...)                                           \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dreamplace::logFatal("assertion failed: %s (%s:%d) ", #cond,   \
                             __FILE__, __LINE__);                      \
    }                                                                  \
  } while (0)

#define DP_ASSERT_MSG(cond, fmt, ...)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dreamplace::logFatal("assertion failed: %s (%s:%d): " fmt, #cond,  \
                             __FILE__, __LINE__, ##__VA_ARGS__);           \
    }                                                                      \
  } while (0)
