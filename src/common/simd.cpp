#include "common/simd.h"

namespace dreamplace {
namespace simd {

const char* activeIsaName() {
#if defined(DREAMPLACE_SIMD_DISABLED)
  return "scalar";
#elif defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__ARM_NEON) || defined(__aarch64__)
  return "neon";
#else
  return "generic";
#endif
}

}  // namespace simd
}  // namespace dreamplace
