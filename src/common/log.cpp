#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dreamplace {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

// JSONL mirror sink; guarded by g_mutex (the same lock that serializes
// the stderr lines, so text and JSONL stay in the same order).
std::FILE* g_json_file = nullptr;
std::string g_json_path;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[DEBUG] ";
    case LogLevel::kInfo:
      return "[INFO ] ";
    case LogLevel::kWarn:
      return "[WARN ] ";
    case LogLevel::kError:
      return "[ERROR] ";
    default:
      return "";
  }
}

/// Per-thread stack of active LogScope key/value pairs.
std::vector<std::pair<std::string, std::string>>& scopeStack() {
  thread_local std::vector<std::pair<std::string, std::string>> stack;
  return stack;
}

void appendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kSilent: return "silent";
  }
  return "unknown";
}

bool parseLogLevel(std::string_view name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") { out = LogLevel::kDebug; return true; }
  if (lower == "info") { out = LogLevel::kInfo; return true; }
  if (lower == "warn" || lower == "warning") { out = LogLevel::kWarn; return true; }
  if (lower == "error") { out = LogLevel::kError; return true; }
  if (lower == "silent" || lower == "off") { out = LogLevel::kSilent; return true; }
  return false;
}

bool initLogLevelFromEnv() {
  const char* env = std::getenv("DREAMPLACE_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  LogLevel level;
  if (!parseLogLevel(env, level)) {
    logWarn("log: ignoring invalid DREAMPLACE_LOG_LEVEL '%s' "
            "(expected debug|info|warn|error|silent)", env);
    return false;
  }
  setLogLevel(level);
  return true;
}

void setLogJsonPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (path == g_json_path) {
    return;  // idempotent: engines and CLIs may both apply the same env
  }
  if (g_json_file != nullptr) {
    std::fclose(g_json_file);
    g_json_file = nullptr;
    g_json_path.clear();
  }
  if (path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    throw std::runtime_error("log: cannot write " + path);
  }
  g_json_file = f;
  g_json_path = path;
}

bool initLogJsonFromEnv() {
  const char* env = std::getenv("DREAMPLACE_LOG_JSON");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  try {
    setLogJsonPath(env);
  } catch (const std::exception& e) {
    logError("log: DREAMPLACE_LOG_JSON: %s", e.what());
    return false;
  }
  return true;
}

LogScope::LogScope(std::string key, std::string value) {
  scopeStack().emplace_back(std::move(key), std::move(value));
}

LogScope::~LogScope() { scopeStack().pop_back(); }

std::string LogScope::currentText() {
  std::string out;
  for (const auto& [key, value] : scopeStack()) {
    if (!out.empty()) {
      out += ' ';
    }
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load()) {
    return;
  }
  char msg[1024];
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  const auto& scopes = scopeStack();

  // Logs go to stderr: benches and examples print result tables on
  // stdout, and the two streams must stay separable.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(prefix(level), stderr);
  if (!scopes.empty()) {
    std::fputc('[', stderr);
    for (std::size_t i = 0; i < scopes.size(); ++i) {
      std::fprintf(stderr, "%s%s=%s", i == 0 ? "" : " ",
                   scopes[i].first.c_str(), scopes[i].second.c_str());
    }
    std::fputs("] ", stderr);
  }
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);

  if (g_json_file != nullptr) {
    const double ts =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string line = "{\"ts\":";
    char num[64];
    std::snprintf(num, sizeof(num), "%.6f", ts);
    line += num;
    line += ",\"level\":\"";
    line += logLevelName(level);
    line += '"';
    for (const auto& [key, value] : scopes) {
      line += ",\"";
      appendJsonEscaped(line, key);
      line += "\":\"";
      appendJsonEscaped(line, value);
      line += '"';
    }
    line += ",\"msg\":\"";
    appendJsonEscaped(line, msg);
    line += "\"}\n";
    std::fputs(line.c_str(), g_json_file);
    std::fflush(g_json_file);
  }
}
}  // namespace detail

#define DP_DEFINE_LOG(name, level)            \
  void name(const char* fmt, ...) {           \
    std::va_list args;                        \
    va_start(args, fmt);                      \
    detail::vlog(level, fmt, args);           \
    va_end(args);                             \
  }

DP_DEFINE_LOG(logDebug, LogLevel::kDebug)
DP_DEFINE_LOG(logInfo, LogLevel::kInfo)
DP_DEFINE_LOG(logWarn, LogLevel::kWarn)
DP_DEFINE_LOG(logError, LogLevel::kError)

#undef DP_DEFINE_LOG

void logFatal(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  detail::vlog(LogLevel::kError, fmt, args);
  va_end(args);
  std::abort();
}

}  // namespace dreamplace
