#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dreamplace {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[DEBUG] ";
    case LogLevel::kInfo:
      return "[INFO ] ";
    case LogLevel::kWarn:
      return "[WARN ] ";
    case LogLevel::kError:
      return "[ERROR] ";
    default:
      return "";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load()) {
    return;
  }
  // Logs go to stderr: benches and examples print result tables on
  // stdout, and the two streams must stay separable.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(prefix(level), stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}
}  // namespace detail

#define DP_DEFINE_LOG(name, level)            \
  void name(const char* fmt, ...) {           \
    std::va_list args;                        \
    va_start(args, fmt);                      \
    detail::vlog(level, fmt, args);           \
    va_end(args);                             \
  }

DP_DEFINE_LOG(logDebug, LogLevel::kDebug)
DP_DEFINE_LOG(logInfo, LogLevel::kInfo)
DP_DEFINE_LOG(logWarn, LogLevel::kWarn)
DP_DEFINE_LOG(logError, LogLevel::kError)

#undef DP_DEFINE_LOG

void logFatal(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  detail::vlog(LogLevel::kError, fmt, args);
  va_end(args);
  std::abort();
}

}  // namespace dreamplace
