// Deterministic random number generation.
//
// Placement runs must be reproducible run-to-run for regression comparison
// (the paper's future-work section even calls out determinism). All
// stochastic choices in the library flow through this PCG32-based engine
// seeded explicitly by the caller.
#pragma once

#include <cstdint>
#include <limits>

namespace dreamplace {

/// PCG32 generator (O'Neill, 2014): small state, good statistical quality,
/// and identical streams across platforms, unlike std::mt19937 + libstdc++
/// distributions which are not portable bit-for-bit.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1U) | 1U;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint32_t uniformInt(std::uint32_t n) {
    if (n == 0) {
      return 0;
    }
    const std::uint32_t threshold = (0U - n) % n;
    for (;;) {
      std::uint32_t r = next();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

 private:
  result_type next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((0U - rot) & 31U));
  }

  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dreamplace
