#include "common/metrics_export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string_view>

#include "common/flow_context.h"
#include "common/heartbeat.h"
#include "common/memory.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

void appendLabelEscaped(std::string& out, const std::string& s) {
  // Prometheus label values escape backslash, double-quote and newline.
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void appendValue(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

/// `name{job="…",key="…"} value` (omit a label by passing nullptr).
void appendSample(std::string& out, const char* name, const std::string* job,
                  const char* keyLabel, const std::string* key, double value) {
  out += name;
  if (job != nullptr || key != nullptr) {
    out += '{';
    bool first = true;
    if (job != nullptr) {
      out += "job=\"";
      appendLabelEscaped(out, *job);
      out += '"';
      first = false;
    }
    if (key != nullptr) {
      if (!first) {
        out += ',';
      }
      out += keyLabel;
      out += "=\"";
      appendLabelEscaped(out, *key);
      out += '"';
    }
    out += '}';
  }
  out += ' ';
  appendValue(out, value);
  out += '\n';
}

void appendHeader(std::string& out, const char* name, const char* type,
                  const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

bool validMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  const auto ok_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  const auto ok_rest = [&ok_first](char c) {
    return ok_first(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!ok_first(name[0])) {
    return false;
  }
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!ok_rest(name[i])) {
      return false;
    }
  }
  return true;
}

bool validSampleValue(std::string_view value) {
  if (value == "NaN" || value == "+Inf" || value == "-Inf" || value == "Inf") {
    return true;
  }
  if (value.empty()) {
    return false;
  }
  const std::string copy(value);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

}  // namespace

std::string renderPrometheusMetrics(
    const std::vector<MetricsSource>& sources) {
  for (const MetricsSource& source : sources) {
    if (source.context != nullptr) {
      source.context->counters().add("metrics/exports", 1);
    }
  }

  std::string out;
  out.reserve(4096);
  const std::int64_t now_us = HeartbeatState::nowMicros();

  appendHeader(out, "dreamplace_counter_total", "counter",
               "Monotonic event counters, one series per flow and key.");
  for (const MetricsSource& source : sources) {
    if (source.context == nullptr) {
      continue;
    }
    for (const auto& [key, value] : source.context->counters().snapshot()) {
      appendSample(out, "dreamplace_counter_total", &source.job, "key", &key,
                   static_cast<double>(value));
    }
  }

  appendHeader(out, "dreamplace_timing_self_seconds_total", "counter",
               "Self time per timing scope (seconds).");
  appendHeader(out, "dreamplace_timing_calls_total", "counter",
               "Invocations per timing scope.");
  for (const MetricsSource& source : sources) {
    if (source.context == nullptr) {
      continue;
    }
    for (const auto& [key, stat] : source.context->timing().statsSnapshot()) {
      appendSample(out, "dreamplace_timing_self_seconds_total", &source.job,
                   "key", &key, stat.selfSeconds);
      appendSample(out, "dreamplace_timing_calls_total", &source.job, "key",
                   &key, static_cast<double>(stat.count));
    }
  }

  appendHeader(out, "dreamplace_memory_current_bytes", "gauge",
               "Tracked memory currently attributed, per flow and key.");
  appendHeader(out, "dreamplace_memory_peak_bytes", "gauge",
               "Tracked memory peak attribution, per flow and key.");
  for (const MetricsSource& source : sources) {
    if (source.context == nullptr) {
      continue;
    }
    for (const auto& [key, usage] : source.context->memory().snapshot()) {
      appendSample(out, "dreamplace_memory_current_bytes", &source.job, "key",
                   &key, static_cast<double>(usage.currentBytes));
      appendSample(out, "dreamplace_memory_peak_bytes", &source.job, "key",
                   &key, static_cast<double>(usage.peakBytes));
    }
  }

  appendHeader(out, "dreamplace_heartbeat_sequence", "gauge",
               "Heartbeat publish count (0 = flow not started).");
  appendHeader(out, "dreamplace_heartbeat_iteration", "gauge",
               "Last published GP iteration (-1 outside the GP loop).");
  appendHeader(out, "dreamplace_heartbeat_hpwl", "gauge",
               "HPWL at the last heartbeat.");
  appendHeader(out, "dreamplace_heartbeat_best_hpwl", "gauge",
               "Running-best finite HPWL over the flow.");
  appendHeader(out, "dreamplace_heartbeat_overflow", "gauge",
               "Density overflow at the last heartbeat.");
  appendHeader(out, "dreamplace_heartbeat_age_seconds", "gauge",
               "Seconds since the last heartbeat was published.");
  appendHeader(out, "dreamplace_heartbeat_stage", "gauge",
               "1 for the flow's current stage label.");
  for (const MetricsSource& source : sources) {
    if (source.context == nullptr) {
      continue;
    }
    const HeartbeatSnapshot hb = source.context->heartbeat().read();
    appendSample(out, "dreamplace_heartbeat_sequence", &source.job, nullptr,
                 nullptr, static_cast<double>(hb.sequence));
    appendSample(out, "dreamplace_heartbeat_iteration", &source.job, nullptr,
                 nullptr, static_cast<double>(hb.iteration));
    appendSample(out, "dreamplace_heartbeat_hpwl", &source.job, nullptr,
                 nullptr, hb.hpwl);
    appendSample(out, "dreamplace_heartbeat_best_hpwl", &source.job, nullptr,
                 nullptr, hb.bestHpwl);
    appendSample(out, "dreamplace_heartbeat_overflow", &source.job, nullptr,
                 nullptr, hb.overflow);
    appendSample(out, "dreamplace_heartbeat_age_seconds", &source.job, nullptr,
                 nullptr, hb.everPublished() ? hb.ageSeconds(now_us) : 0.0);
    const std::string stage = flowStageName(hb.stage);
    appendSample(out, "dreamplace_heartbeat_stage", &source.job, "stage",
                 &stage, 1.0);
  }

  appendHeader(out, "dreamplace_active_flows", "gauge",
               "Flows currently exported by this document.");
  appendSample(out, "dreamplace_active_flows", nullptr, nullptr, nullptr,
               static_cast<double>(sources.size()));

  appendHeader(out, "dreamplace_process_resident_bytes", "gauge",
               "Process resident set size (VmRSS).");
  appendHeader(out, "dreamplace_process_peak_resident_bytes", "gauge",
               "Process peak resident set size (VmHWM).");
  const ProcessMemory mem = sampleProcessMemory();
  if (mem.valid) {
    appendSample(out, "dreamplace_process_resident_bytes", nullptr, nullptr,
                 nullptr, static_cast<double>(mem.vmRssBytes));
    appendSample(out, "dreamplace_process_peak_resident_bytes", nullptr,
                 nullptr, nullptr, static_cast<double>(mem.vmHwmBytes));
  }
  return out;
}

bool writeMetricsFile(const std::string& path, const std::string& text,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << text) || !out.flush()) {
      if (error != nullptr) {
        *error = "metrics: cannot write " + path;
      }
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "metrics: cannot write " + path;
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool validatePrometheusText(const std::string& text, std::string* error,
                            std::size_t* samplesOut) {
  const auto fail = [error](int line, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return false;
  };

  std::map<std::string, std::string, std::less<>> typed;  // name -> type
  std::size_t samples = 0;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind"; other comments allowed.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        const std::string_view name =
            space == std::string_view::npos ? rest : rest.substr(0, space);
        if (!validMetricName(name)) {
          return fail(line_no, "invalid metric name in comment");
        }
        if (is_type) {
          if (space == std::string_view::npos) {
            return fail(line_no, "TYPE line without a type");
          }
          const std::string_view kind = rest.substr(space + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return fail(line_no, "unknown metric type");
          }
          typed.emplace(std::string(name), std::string(kind));
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') {
      ++i;
    }
    const std::string_view name = line.substr(0, i);
    if (!validMetricName(name)) {
      return fail(line_no, "invalid metric name");
    }
    if (typed.find(name) == typed.end()) {
      return fail(line_no,
                  "sample for '" + std::string(name) + "' has no TYPE line");
    }
    if (i < line.size() && line[i] == '{') {
      ++i;  // past '{'
      while (i < line.size() && line[i] != '}') {
        std::size_t label_start = i;
        while (i < line.size() && line[i] != '=') {
          ++i;
        }
        const std::string_view label = line.substr(label_start, i - label_start);
        if (!validMetricName(label) || label.find(':') != std::string_view::npos) {
          return fail(line_no, "invalid label name");
        }
        if (i + 1 >= line.size() || line[i + 1] != '"') {
          return fail(line_no, "label value must be quoted");
        }
        i += 2;  // past ="
        while (i < line.size() && line[i] != '"') {
          i += line[i] == '\\' ? 2 : 1;
        }
        if (i >= line.size()) {
          return fail(line_no, "unterminated label value");
        }
        ++i;  // past closing quote
        if (i < line.size() && line[i] == ',') {
          ++i;
        } else if (i < line.size() && line[i] != '}') {
          return fail(line_no, "expected ',' or '}' after label");
        }
      }
      if (i >= line.size()) {
        return fail(line_no, "unterminated label set");
      }
      ++i;  // past '}'
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(line_no, "expected space before sample value");
    }
    ++i;
    std::size_t value_end = i;
    while (value_end < line.size() && line[value_end] != ' ') {
      ++value_end;
    }
    if (!validSampleValue(line.substr(i, value_end - i))) {
      return fail(line_no, "invalid sample value");
    }
    if (value_end < line.size()) {
      // Optional millisecond timestamp.
      const std::string ts(line.substr(value_end + 1));
      char* end = nullptr;
      std::strtoll(ts.c_str(), &end, 10);
      if (ts.empty() || end != ts.c_str() + ts.size()) {
        return fail(line_no, "invalid timestamp");
      }
    }
    ++samples;
  }

  if (samplesOut != nullptr) {
    *samplesOut = samples;
  }
  return true;
}

}  // namespace dreamplace
