// Minimal binary serialization for flow checkpoints (place/checkpoint.h).
//
// ByteWriter appends fixed-width little-layout primitives to a string;
// ByteReader consumes them in the same order and throws on truncation or
// absurd sizes, so a corrupt checkpoint fails loudly instead of resuming
// a flow from garbage. Values are stored in host byte order: checkpoints
// are same-machine restart artifacts, not an interchange format
// (docs/FLOW.md).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dreamplace {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }

  /// Element-wise f64 vector (exact for float inputs too: every float is
  /// representable as a double, so the round trip is bit-preserving).
  template <typename T>
  void f64Vec(const std::vector<T>& v) {
    u64(v.size());
    for (const T x : v) {
      f64(static_cast<double>(x));
    }
  }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() { return rawAs<std::uint32_t>(); }
  std::int32_t i32() { return rawAs<std::int32_t>(); }
  std::uint64_t u64() { return rawAs<std::uint64_t>(); }
  std::int64_t i64() { return rawAs<std::int64_t>(); }
  double f64() { return rawAs<double>(); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> f64Vec() {
    const std::uint64_t n = u64();
    need(n * sizeof(double));
    std::vector<T> v(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      v[i] = static_cast<T>(f64());
    }
    return v;
  }

  bool atEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T rawAs() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw std::runtime_error(
          "serialize: truncated or corrupt data (need " + std::to_string(n) +
          " bytes at offset " + std::to_string(pos_) + " of " +
          std::to_string(data_.size()) + ")");
    }
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace dreamplace
