#include "common/rng.h"

#include <cmath>

namespace dreamplace {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: draw u1 in (0,1] to keep the log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace dreamplace
