#include "common/trace.h"

#include <cstdio>

#include "common/counters.h"

namespace dreamplace {

// TraceRecorder::instance() is defined in flow_context.cpp: it returns
// the default FlowContext's recorder.

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::setEnabled(bool enabled) {
  if (enabled && !enabled_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_ids_.clear();
  dropped_ = 0;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::setCapacity(std::size_t maxEvents) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = maxEvents;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

bool TraceRecorder::reserveSlot() {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    static Counter drops("trace/dropped");
    drops.add();
    ++dropped_;
    return false;
  }
  return true;
}

int TraceRecorder::threadId() {
  // Caller holds mutex_.
  const auto id = std::this_thread::get_id();
  auto it = thread_ids_.find(id);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(id, static_cast<int>(thread_ids_.size()) + 1)
             .first;
  }
  return it->second;
}

void TraceRecorder::completeEvent(std::string_view name, double seconds) {
  if (!enabled()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reserveSlot()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::string(name);
  ev.phase = 'X';
  ev.durUs = seconds * 1e6;
  ev.tsUs = std::chrono::duration<double, std::micro>(now - epoch_).count() -
            ev.durUs;
  if (ev.tsUs < 0.0) {
    ev.tsUs = 0.0;
  }
  ev.tid = threadId();
  events_.push_back(std::move(ev));
}

void TraceRecorder::instantEvent(std::string_view name,
                                 std::string_view argsJson) {
  if (!enabled()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reserveSlot()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::string(name);
  ev.phase = 'i';
  ev.tsUs = std::chrono::duration<double, std::micro>(now - epoch_).count();
  ev.tid = threadId();
  ev.args = std::string(argsJson);
  events_.push_back(std::move(ev));
}

void TraceRecorder::counterEvent(std::string_view name, double value) {
  if (!enabled()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reserveSlot()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::string(name);
  ev.phase = 'C';
  ev.tsUs = std::chrono::duration<double, std::micro>(now - epoch_).count();
  ev.tid = threadId();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"value\":%.17g}", value);
  ev.args = buf;
  events_.push_back(std::move(ev));
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TraceRecorder::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"" + jsonEscape(ev.name) + "\",\"ph\":\"";
    out += ev.phase;
    out += '"';
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":1,\"tid\":%d",
                  ev.tsUs, ev.tid);
    out += buf;
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", ev.durUs);
      out += buf;
    }
    if (ev.phase == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (!ev.args.empty()) {
      out += ",\"args\":" + ev.args;
    } else if (ev.phase == 'C') {
      out += ",\"args\":{\"value\":0}";
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::writeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const std::string json = toJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dreamplace
