#include "gp/quadratic_ip.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

/// One quadratic connection: movable cell `i` to either movable cell `j`
/// (j >= 0) or a fixed coordinate `anchor` (j < 0), with weight `w`.
struct Spring {
  Index i;
  Index j;
  double anchor;
  double w;
};

/// Builds the B2B springs for one dimension at the given positions.
/// `pos(pin)` returns the pin's absolute coordinate; `cellOf(pin)` the
/// movable cell index or -1.
template <typename PinPos, typename PinCell, typename PinOffset>
void buildSprings(const Database& db, double eps, PinPos pos,
                  PinCell cellOf, PinOffset offsetOf,
                  std::vector<Spring>& springs) {
  springs.clear();
  for (Index e = 0; e < db.numNets(); ++e) {
    const Index begin = db.netPinBegin(e);
    const Index end = db.netPinEnd(e);
    const Index degree = end - begin;
    if (degree < 2) {
      continue;
    }
    // Bound pins.
    Index lo = begin;
    Index hi = begin;
    for (Index p = begin + 1; p < end; ++p) {
      if (pos(p) < pos(lo)) {
        lo = p;
      }
      if (pos(p) > pos(hi)) {
        hi = p;
      }
    }
    const double base = 2.0 / std::max<Index>(degree - 1, 1);
    auto addSpring = [&](Index pa, Index pb) {
      const double dist = std::max(std::abs(pos(pa) - pos(pb)), eps);
      const double w = base / dist;
      const Index ca = cellOf(pa);
      const Index cb = cellOf(pb);
      if (ca < 0 && cb < 0) {
        return;  // fixed-fixed: constant energy
      }
      // Express pin position = cell center + offset; offsets shift the
      // anchor of the other end.
      if (ca >= 0 && cb >= 0) {
        // Movable-movable: with pin offsets oa/ob from the cell variable,
        // (xa + oa - xb - ob)^2 == (xa - xb - (ob - oa))^2, so the spring
        // carries the offset difference as its rest separation.
        springs.push_back({ca, cb, offsetOf(pb) - offsetOf(pa), w});
      } else if (ca >= 0) {
        springs.push_back({ca, kInvalidIndex, pos(pb) - offsetOf(pa), w});
      } else {
        springs.push_back({cb, kInvalidIndex, pos(pa) - offsetOf(pb), w});
      }
    };
    for (Index p = begin; p < end; ++p) {
      if (p != lo) {
        addSpring(p, lo);
      }
      if (p != hi && lo != hi) {
        addSpring(p, hi);
      }
    }
  }
}

/// Jacobi-preconditioned CG on the spring system: minimize
/// sum w (x_i - x_j - d)^2 (+ weak center regularization).
void solveCg(const std::vector<Spring>& springs, Index n, double center,
             double regWeight, int iterations, double tolerance,
             std::vector<double>& x) {
  std::vector<double> diag(n, regWeight);
  std::vector<double> rhs(n, regWeight * center);
  for (const Spring& s : springs) {
    if (s.j >= 0) {
      diag[s.i] += s.w;
      diag[s.j] += s.w;
      // (x_i - x_j - d)^2: rhs_i += w*d, rhs_j -= w*d.
      rhs[s.i] += s.w * s.anchor;
      rhs[s.j] -= s.w * s.anchor;
    } else {
      diag[s.i] += s.w;
      rhs[s.i] += s.w * s.anchor;
    }
  }

  auto applyA = [&](const std::vector<double>& v, std::vector<double>& out) {
    for (Index i = 0; i < n; ++i) {
      out[i] = regWeight * v[i];
    }
    for (const Spring& s : springs) {
      if (s.j >= 0) {
        const double d = v[s.i] - v[s.j];
        out[s.i] += s.w * d;
        out[s.j] -= s.w * d;
      } else {
        out[s.i] += s.w * v[s.i];
      }
    }
  };

  std::vector<double> r(n), z(n), p(n), ap(n);
  applyA(x, ap);
  double rz = 0.0;
  for (Index i = 0; i < n; ++i) {
    r[i] = rhs[i] - ap[i];
    z[i] = r[i] / diag[i];
    p[i] = z[i];
    rz += r[i] * z[i];
  }
  const double r0 = std::sqrt(std::max(rz, 0.0));
  if (r0 == 0.0) {
    return;
  }
  for (int it = 0; it < iterations; ++it) {
    applyA(p, ap);
    double pap = 0.0;
    for (Index i = 0; i < n; ++i) {
      pap += p[i] * ap[i];
    }
    if (pap <= 0) {
      break;
    }
    const double alpha = rz / pap;
    double rz_next = 0.0;
    for (Index i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      z[i] = r[i] / diag[i];
      rz_next += r[i] * z[i];
    }
    if (std::sqrt(std::max(rz_next, 0.0)) < tolerance * r0) {
      break;
    }
    const double beta = rz_next / rz;
    rz = rz_next;
    for (Index i = 0; i < n; ++i) {
      p[i] = z[i] + beta * p[i];
    }
  }
}

}  // namespace

template <typename T>
void quadraticInitialPlacement(const Database& db,
                               const QuadraticIpOptions& options,
                               std::vector<T>& x, std::vector<T>& y) {
  ScopedTimer timer("gp/init/b2b");
  const Index n = db.numMovable();
  const Box<Coord>& die = db.dieArea();
  DP_ASSERT(static_cast<Index>(x.size()) >= n &&
            static_cast<Index>(y.size()) >= n);

  // Work in double regardless of T: CG conditioning benefits.
  // Solver variables are cell lower-left coordinates; the inputs/outputs
  // of this function are centers (the GP parameter convention).
  std::vector<double> cx(n), cy(n);
  for (Index i = 0; i < n; ++i) {
    cx[i] = static_cast<double>(x[i]) - db.cellWidth(i) / 2;
    cy[i] = static_cast<double>(y[i]) - db.cellHeight(i) / 2;
  }

  const double eps_x = options.epsilonFactor * die.width();
  const double eps_y = options.epsilonFactor * die.height();
  // Weak center regularization: keeps anchorless components placeable and
  // the system strictly SPD. Scaled against typical B2B weights.
  const double reg = 1e-4;

  std::vector<Spring> springs;
  for (int round = 0; round < options.b2bRounds; ++round) {
    // --- x dimension ---
    buildSprings(
        db, eps_x,
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.isMovable(c)
                     ? cx[c] + db.cellWidth(c) / 2 + db.pinOffsetX(p)
                     : db.pinX(p);
        },
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.isMovable(c) ? c : kInvalidIndex;
        },
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.cellWidth(c) / 2 + db.pinOffsetX(p);
        },
        springs);
    solveCg(springs, n, die.centerX(), reg, options.cgIterations,
            options.cgTolerance, cx);
    // --- y dimension ---
    buildSprings(
        db, eps_y,
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.isMovable(c)
                     ? cy[c] + db.cellHeight(c) / 2 + db.pinOffsetY(p)
                     : db.pinY(p);
        },
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.isMovable(c) ? c : kInvalidIndex;
        },
        [&](Index p) {
          const Index c = db.pinCell(p);
          return db.cellHeight(c) / 2 + db.pinOffsetY(p);
        },
        springs);
    solveCg(springs, n, die.centerY(), reg, options.cgIterations,
            options.cgTolerance, cy);
  }

  for (Index i = 0; i < n; ++i) {
    // cx/cy are center-of-pin-frame solutions; convert back to centers and
    // clamp into the die.
    x[i] = static_cast<T>(clampSafe(
        cx[i] + db.cellWidth(i) / 2,
        die.xl + db.cellWidth(i) / 2, die.xh - db.cellWidth(i) / 2));
    y[i] = static_cast<T>(clampSafe(
        cy[i] + db.cellHeight(i) / 2,
        die.yl + db.cellHeight(i) / 2, die.yh - db.cellHeight(i) / 2));
  }
}

template void quadraticInitialPlacement<float>(const Database&,
                                               const QuadraticIpOptions&,
                                               std::vector<float>&,
                                               std::vector<float>&);
template void quadraticInitialPlacement<double>(const Database&,
                                                const QuadraticIpOptions&,
                                                std::vector<double>&,
                                                std::vector<double>&);

}  // namespace dreamplace
