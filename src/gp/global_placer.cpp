#include "gp/global_placer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "common/flow_context.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace dreamplace {

template <typename T>
GlobalPlacer<T>::GlobalPlacer(Database& db, GlobalPlacerOptions options)
    : db_(db), options_(std::move(options)) {
  buildOps();
}

template <typename T>
GlobalPlacer<T>::~GlobalPlacer() = default;

template <typename T>
void GlobalPlacer<T>::buildOps() {
  const DensityGrid<T> grid =
      makeGrid<T>(db_.dieArea(), db_.numMovable(), 16, options_.binsMax);

  std::vector<T> filler_w;
  std::vector<T> filler_h;
  computeFillers<T>(db_, options_.targetDensity, filler_w, filler_h);
  std::vector<T> node_w;
  std::vector<T> node_h;
  if (!options_.inflation.empty()) {
    DP_ASSERT(static_cast<Index>(options_.inflation.size()) ==
              db_.numMovable());
    // Cell inflation adds virtual area; give the same amount back by
    // dropping fillers, otherwise total charge exceeds the die capacity
    // and the GP can never reach its stopping overflow (Sec. III-F's
    // whitespace budget exists for exactly this reason).
    double extra = 0.0;
    for (Index i = 0; i < db_.numMovable(); ++i) {
      extra += db_.cellArea(i) * (options_.inflation[i] - 1.0);
    }
    while (!filler_w.empty() && extra > 0) {
      extra -= static_cast<double>(filler_w.back()) *
               static_cast<double>(filler_h.back());
      filler_w.pop_back();
      filler_h.pop_back();
    }
    DensityOp<T>::makeNodeSizes(db_, filler_w, filler_h, node_w, node_h);
    for (Index i = 0; i < db_.numMovable(); ++i) {
      node_w[i] *= static_cast<T>(options_.inflation[i]);
    }
  } else {
    DensityOp<T>::makeNodeSizes(db_, filler_w, filler_h, node_w, node_h);
  }
  num_nodes_ = static_cast<Index>(node_w.size());

  if (options_.wlModel == WirelengthModel::kWeightedAverage) {
    typename WaWirelengthOp<T>::Options wl_opts;
    wl_opts.kernel = options_.wlKernel;
    wl_opts.ignoreNetDegree = options_.ignoreNetDegree;
    wirelength_ =
        std::make_unique<WaWirelengthOp<T>>(db_, num_nodes_, wl_opts);
  } else {
    wirelength_ = std::make_unique<LseWirelengthOp<T>>(
        db_, num_nodes_, options_.ignoreNetDegree);
  }

  grid_ = grid;
  if (options_.fences.empty()) {
    typename DensityOp<T>::Options d_opts;
    d_opts.targetDensity = options_.targetDensity;
    d_opts.map.kernel = options_.densityKernel;
    d_opts.map.subdivision = options_.densitySubdivision;
    d_opts.dct = options_.dct;
    density_ = std::make_unique<DensityOp<T>>(db_, grid, std::move(node_w),
                                              std::move(node_h), d_opts);
  } else {
    DP_ASSERT_MSG(static_cast<Index>(options_.cellFence.size()) ==
                      db_.numMovable(),
                  "cellFence must cover every movable cell");
    typename FenceDensityOp<T>::Options f_opts;
    f_opts.targetDensity = options_.targetDensity;
    f_opts.map.kernel = options_.densityKernel;
    f_opts.map.subdivision = options_.densitySubdivision;
    f_opts.dct = options_.dct;
    const Index num_fillers =
        static_cast<Index>(node_w.size()) - db_.numMovable();
    std::vector<int> node_group = assignFillerGroups(
        db_, options_.cellFence, options_.fences, num_fillers);
    density_ = std::make_unique<FenceDensityOp<T>>(
        db_, grid, options_.fences, std::move(node_group),
        std::move(node_w), std::move(node_h), f_opts);
  }

  objective_ = std::make_unique<PlacementObjective<T>>(db_, *wirelength_,
                                                       *density_);
  objective_->setPreconditioning(options_.precondition);

  logInfo("gp: %d nodes (%d movable + %d fillers), grid %dx%d, target %.2f",
          num_nodes_, db_.numMovable(), num_nodes_ - db_.numMovable(),
          grid.mx, grid.my, options_.targetDensity);
}

template <typename T>
void GlobalPlacer<T>::setInitialPositions(std::vector<T> x,
                                          std::vector<T> y) {
  DP_ASSERT(static_cast<Index>(x.size()) == num_nodes_ &&
            static_cast<Index>(y.size()) == num_nodes_);
  init_x_ = std::move(x);
  init_y_ = std::move(y);
  has_initial_positions_ = true;
}

template <typename T>
GlobalPlacerResult GlobalPlacer<T>::run(const Callback& callback) {
  ScopedTimer gp_timer("gp");
  Timer run_timer;
  TelemetrySink* telemetry = options_.telemetry;
  const Index n = num_nodes_;
  const bool resuming =
      options_.resumeState != nullptr && !options_.resumeState->empty();

  // --- Schedulers --------------------------------------------------------------
  // Stateless given the iteration index, so a resumed loop reconstructs
  // them instead of checkpointing them.
  const double bin_size = 0.5 * (grid().binW + grid().binH);
  GammaScheduler gamma_scheduler(bin_size);
  DensityWeightScheduler::Options lam_opts;
  lam_opts.tcadMuVariant = options_.tcadMuVariant;
  DensityWeightScheduler lambda_scheduler(lam_opts);
  // The paper's reference HPWL delta (3.5e5) is ~0.5% of an ISPD-design
  // HPWL; we keep that ratio relative to the *current* HPWL so the
  // schedule is design-size independent. Small designs have noisy
  // per-iteration HPWL, so the delta is taken on an exponential moving
  // average: at a spreading equilibrium the smoothed delta goes to zero
  // and mu returns to mu_max, which is what breaks the stall.
  constexpr double kRefRatio = 5e-3;
  constexpr double kEmaAlpha = 0.3;

  // --- Feasibility projection ---------------------------------------------------
  // Nodes are clamped into the die — or into their fence box when fence
  // regions are active (fences are axis-aligned boxes, so the projection
  // is an exact Euclidean projection per node).
  std::vector<Box<Coord>> node_box(n, db_.dieArea());
  if (auto* fenced = dynamic_cast<FenceDensityOp<T>*>(density_.get())) {
    for (Index i = 0; i < n; ++i) {
      node_box[i] = fenced->groupBox(fenced->nodeGroup(i));
    }
  }
  auto projection = [this, n, &node_box](std::vector<T>& p) {
    const Index movable = db_.numMovable();
    parallelFor("gp/project", n, 2048, [&](Index i) {
      // Keep node footprints inside their box; fillers use smoothed sizes.
      const T hw = (i < movable ? static_cast<T>(db_.cellWidth(i))
                                : density_->nodeWidth(i)) /
                   T(2);
      const T hh = (i < movable ? static_cast<T>(db_.cellHeight(i))
                                : density_->nodeHeight(i)) /
                   T(2);
      const Box<Coord>& box = node_box[i];
      p[i] = clampSafe<T>(p[i], static_cast<T>(box.xl) + hw,
                          static_cast<T>(box.xh) - hw);
      p[i + n] = clampSafe<T>(p[i + n], static_cast<T>(box.yl) + hh,
                              static_cast<T>(box.yh) - hh);
    });
  };

  double lambda = 0.0;
  double ema_hpwl = 0.0;
  double overflow = 0.0;
  /// HPWL seeding the heartbeat: the initial placement's on a fresh run,
  /// the last pre-snapshot iteration's on a resume.
  double hpwl_seed = 0.0;
  int start_iter = 0;

  if (resuming) {
    // Restore the loop state exactly as serializeRunState() wrote it; the
    // initial-placement and lambda0 computations are skipped entirely (the
    // fresh run already performed them, so re-running would double their
    // counters and diverge from the uninterrupted baseline).
    ByteReader r(*options_.resumeState);
    const std::uint32_t version = r.u32();
    if (version != 1) {
      throw std::runtime_error("gp resume: unsupported snapshot version " +
                               std::to_string(version));
    }
    const std::uint8_t solver = r.u8();
    if (solver != static_cast<std::uint8_t>(options_.solver)) {
      throw std::runtime_error("gp resume: solver mismatch");
    }
    const Index nodes = r.i32();
    if (nodes != n) {
      throw std::runtime_error(
          "gp resume: node count mismatch (snapshot " + std::to_string(nodes) +
          ", placer " + std::to_string(n) + ")");
    }
    start_iter = r.i32();
    lambda = r.f64();
    ema_hpwl = r.f64();
    overflow = r.f64();
    hpwl_seed = r.f64();
    makeSolver(std::vector<T>(2 * static_cast<std::size_t>(n)), projection);
    optimizer_->loadState(r);
    if (!r.atEnd()) {
      throw std::runtime_error("gp resume: trailing bytes in snapshot");
    }
    objective_->setDensityWeight(lambda);
    logInfo("gp: resuming at iteration %d (lambda %.3e, overflow %.4f)",
            start_iter, lambda, overflow);
  } else {
    // --- Initial placement ---------------------------------------------------
    std::vector<T> x;
    std::vector<T> y;
    if (has_initial_positions_) {
      x = init_x_;
      y = init_y_;
    } else {
      initializePlacement<T>(db_, n, options_.init, options_.seed,
                             options_.noiseRatio, x, y);
    }
    std::vector<T> params(2 * static_cast<size_t>(n));
    std::copy(x.begin(), x.end(), params.begin());
    std::copy(y.begin(), y.end(), params.begin() + n);

    // --- Initial density weight (ePlace lambda0) ------------------------------
    std::vector<T> wl_grad(params.size());
    std::vector<T> density_grad(params.size());
    wirelength_->setGamma(gamma_scheduler.gamma(1.0));
    wirelength_->evaluate(std::span<const T>(params), std::span<T>(wl_grad));
    density_->evaluate(std::span<const T>(params),
                       std::span<T>(density_grad));
    double wl_abs = 0.0;
    double d_abs = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      wl_abs += std::abs(static_cast<double>(wl_grad[i]));
      d_abs += std::abs(static_cast<double>(density_grad[i]));
    }
    lambda = options_.initialDensityWeight > 0
                 ? options_.initialDensityWeight
                 : DensityWeightScheduler::initialWeight(wl_abs, d_abs);
    objective_->setDensityWeight(lambda);

    hpwl_seed = wirelength_->hpwl(std::span<const T>(params));
    ema_hpwl = hpwl_seed;
    overflow = density_->overflow(std::span<const T>(params));
    makeSolver(std::move(params), projection);
  }

  // --- Kernel GP iterations ---------------------------------------------------------
  if (telemetry) {
    TelemetryRunInfo info;
    info.label = options_.telemetryLabel;
    info.numNodes = n;
    info.numMovable = db_.numMovable();
    info.numNets = db_.numNets();
    info.solver = optimizer_->name();
    telemetry->onRunBegin(info);
  }
  TimingRegistry& timing = currentTimingRegistry();
  GlobalPlacerResult result;
  int iter = start_iter;
  FlowContext& flow = FlowContext::current();
  // Liveness heartbeat (common/heartbeat.h): the pre-loop publish seeds
  // the running-best HPWL with the initial placement, so the engine
  // watchdog measures divergence against the true starting point even if
  // its first sample lands iterations into the loop.
  HeartbeatState& heartbeat = flow.heartbeat();
  heartbeat.beginStage(FlowStage::kGlobalPlacement);
  heartbeat.publishIteration(start_iter - 1, hpwl_seed, overflow);
  for (; iter < options_.maxIterations; ++iter) {
    // Cooperative timeout/cancel point: once per iteration keeps engine
    // job deadlines responsive without per-kernel checks.
    flow.throwIfInterrupted();
    // Per-op time attribution: the ops accumulate into the timing
    // registry; the delta across one step is this iteration's share.
    double wl_t0 = 0.0, density_t0 = 0.0;
    if (telemetry) {
      wl_t0 = timing.total("gp/op/wirelength");
      density_t0 = timing.total("gp/op/density");
    }
    wirelength_->setGamma(gamma_scheduler.gamma(overflow));
    const double obj = optimizer_->step();
    const std::vector<T>& cur = optimizer_->params();

    const double cur_hpwl = wirelength_->hpwl(std::span<const T>(cur));
    {
      ScopedTimer t("gp/overflow");
      overflow = density_->overflow(std::span<const T>(cur));
    }
    // A few relaxed atomic stores per iteration; observers only read.
    heartbeat.publishIteration(iter, cur_hpwl, overflow);

    const double prev_ema = ema_hpwl;
    ema_hpwl = (1.0 - kEmaAlpha) * ema_hpwl + kEmaAlpha * cur_hpwl;
    if ((iter + 1) % options_.lambdaUpdateEvery == 0) {
      lambda_scheduler.setReferenceDelta(
          std::max(kRefRatio * cur_hpwl, 1e-12));
      lambda = lambda_scheduler.update(lambda, ema_hpwl - prev_ema, iter);
      objective_->setDensityWeight(lambda);
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.objective = obj;
    stats.wirelength = objective_->lastWirelength();
    stats.hpwl = cur_hpwl;
    stats.density = objective_->lastDensity();
    stats.overflow = overflow;
    stats.gamma = wirelength_->gamma();
    stats.lambda = lambda;
    stats.stepSize = optimizer_->stepSize();
    if (telemetry) {
      stats.wlOpSeconds = timing.total("gp/op/wirelength") - wl_t0;
      stats.densityOpSeconds = timing.total("gp/op/density") - density_t0;
      telemetry->onIteration(stats);
    }
    if (options_.verbose && iter % 50 == 0) {
      logInfo("gp iter %4d: hpwl %.4e overflow %.4f lambda %.3e", iter,
              cur_hpwl, overflow, lambda);
    }
    if (callback && !callback(stats)) {
      ++iter;
      break;
    }
    if (iter >= options_.minIterations && overflow < options_.stopOverflow) {
      ++iter;
      break;
    }
    // Mid-run checkpoint, last so a terminating iteration is not
    // snapshotted (the stage-boundary checkpoint supersedes it). The
    // snapshot captures the post-update state; a resume re-enters the
    // loop at iter+1 with it, bit-identical to never having stopped.
    if (options_.checkpointEveryIterations > 0 && options_.checkpointSink &&
        (iter + 1) % options_.checkpointEveryIterations == 0) {
      options_.checkpointSink(
          serializeRunState(iter + 1, lambda, ema_hpwl, overflow, cur_hpwl));
    }
  }

  final_params_ = optimizer_->params();
  commit(final_params_);
  result.iterations = iter;
  result.hpwl = wirelength_->hpwl(std::span<const T>(final_params_));
  result.overflow = overflow;
  result.finalLambda = lambda;
  if (telemetry) {
    TelemetryRunSummary summary;
    summary.iterations = result.iterations;
    summary.hpwl = result.hpwl;
    summary.overflow = result.overflow;
    summary.lambda = result.finalLambda;
    summary.seconds = run_timer.elapsed();
    telemetry->onRunEnd(summary);
  }
  logInfo("gp: done after %d iterations, hpwl %.4e, overflow %.4f",
          result.iterations, result.hpwl, result.overflow);
  return result;
}

template <typename T>
void GlobalPlacer<T>::makeSolver(
    std::vector<T> initial, std::function<void(std::vector<T>&)> projection) {
  switch (options_.solver) {
    case SolverKind::kNesterov: {
      typename NesterovOptimizer<T>::Options opt;
      opt.projection = std::move(projection);
      optimizer_ =
          std::make_unique<NesterovOptimizer<T>>(*objective_, initial, opt);
      break;
    }
    case SolverKind::kAdam: {
      typename AdamOptimizer<T>::Options opt;
      // Scale the learning rate to the die so solver settings transfer
      // across design sizes (PyTorch defaults assume O(1) parameters).
      opt.lr = options_.lr * 0.5 * (grid().binW + grid().binH);
      opt.lrDecay = options_.lrDecay;
      opt.projection = std::move(projection);
      optimizer_ =
          std::make_unique<AdamOptimizer<T>>(*objective_, initial, opt);
      break;
    }
    case SolverKind::kSgdMomentum: {
      typename SgdMomentumOptimizer<T>::Options opt;
      opt.lr = options_.lr * 0.5 * (grid().binW + grid().binH);
      opt.lrDecay = options_.lrDecay;
      opt.projection = std::move(projection);
      optimizer_ = std::make_unique<SgdMomentumOptimizer<T>>(*objective_,
                                                             initial, opt);
      break;
    }
    case SolverKind::kRmsProp: {
      typename RmsPropOptimizer<T>::Options opt;
      opt.lr = options_.lr * 0.5 * (grid().binW + grid().binH);
      opt.lrDecay = options_.lrDecay;
      opt.projection = std::move(projection);
      optimizer_ =
          std::make_unique<RmsPropOptimizer<T>>(*objective_, initial, opt);
      break;
    }
  }
}

template <typename T>
std::string GlobalPlacer<T>::serializeRunState(int next_iter, double lambda,
                                               double ema_hpwl,
                                               double overflow,
                                               double cur_hpwl) const {
  ByteWriter w;
  w.u32(1);  // snapshot version
  w.u8(static_cast<std::uint8_t>(options_.solver));
  w.i32(num_nodes_);
  w.i32(next_iter);
  w.f64(lambda);
  w.f64(ema_hpwl);
  w.f64(overflow);
  w.f64(cur_hpwl);
  optimizer_->saveState(w);
  return w.take();
}

template <typename T>
void GlobalPlacer<T>::commit(const std::vector<T>& params) {
  const Index n = num_nodes_;
  const Box<Coord>& die = db_.dieArea();
  for (Index i = 0; i < db_.numMovable(); ++i) {
    const Coord w = db_.cellWidth(i);
    const Coord h = db_.cellHeight(i);
    const Coord cx = static_cast<Coord>(params[i]);
    const Coord cy = static_cast<Coord>(params[i + n]);
    db_.setCellPosition(i, clampSafe(cx - w / 2, die.xl, die.xh - w),
                        clampSafe(cy - h / 2, die.yl, die.yh - h));
  }
}

template <typename T>
std::vector<T> GlobalPlacer<T>::nodeX() const {
  return {final_params_.begin(), final_params_.begin() + num_nodes_};
}

template <typename T>
std::vector<T> GlobalPlacer<T>::nodeY() const {
  return {final_params_.begin() + num_nodes_, final_params_.end()};
}

template class GlobalPlacer<float>;
template class GlobalPlacer<double>;

}  // namespace dreamplace
