// Bound-to-bound quadratic initial placement (the conventional "GP-IP").
//
// This is the initial-placement algorithm the classical flow (ePlace,
// RePlAce, NTUplace) runs before nonlinear optimization, and whose runtime
// share Fig. 3 reports (25-30% of GP). DREAMPlace's observation is that a
// random center-plus-noise start matches its quality; this module exists
// so the RePlAce-mode reference configuration actually pays the cost the
// paper measured.
//
// Model (Spindler's bound-to-bound net model): per dimension, every pin of
// a net is connected to the net's two bound pins with weights
// w = 2 / ((p-1) * max(|x_i - x_b|, eps)), making the quadratic energy
// match HPWL at the current positions. The resulting SPD system is solved
// matrix-free with Jacobi-preconditioned conjugate gradient; bounds and
// weights are refreshed for a few rounds.
#pragma once

#include <vector>

#include "db/database.h"

namespace dreamplace {

struct QuadraticIpOptions {
  int b2bRounds = 30;
  int cgIterations = 60;
  double cgTolerance = 1e-6;
  /// Distance clamp so coincident pins do not produce infinite weights.
  double epsilonFactor = 1e-3;  ///< times the die dimension
};

/// Computes movable-cell *center* coordinates minimizing the iterated
/// bound-to-bound quadratic wirelength. Fixed pins anchor the system; if a
/// connected component has no fixed anchor, a weak pull to the die center
/// keeps the system non-singular.
template <typename T>
void quadraticInitialPlacement(const Database& db,
                               const QuadraticIpOptions& options,
                               std::vector<T>& x, std::vector<T>& y);

}  // namespace dreamplace
