// Per-iteration GP telemetry: the placement analogue of a training
// stack's metrics layer.
//
// The paper casts global placement as neural-network training (Fig. 1);
// ePlace/RePlAce tune their schedulers off per-iteration signals
// (overflow, HPWL delta, density weight lambda of eq. (18), the gamma
// schedule, the Nesterov step size). IterationStats is that record, one
// per kernel-GP iteration; TelemetrySink is the observer API the loop
// publishes it through. Concrete sinks export JSONL (one JSON object per
// iteration), a per-run CSV summary, and chrome://tracing counter tracks.
// Everything is off by default: a null sink costs the loop one pointer
// compare per iteration.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace dreamplace {

/// One kernel-GP iteration's worth of observable state.
struct IterationStats {
  int iteration = 0;
  double objective = 0.0;
  double wirelength = 0.0;  ///< Smoothed WA/LSE wirelength.
  double hpwl = 0.0;        ///< Exact HPWL.
  double density = 0.0;
  double overflow = 0.0;
  double gamma = 0.0;
  double lambda = 0.0;
  double stepSize = 0.0;         ///< Optimizer step (Nesterov alpha / lr).
  double wlOpSeconds = 0.0;      ///< Wirelength op time this iteration.
  double densityOpSeconds = 0.0; ///< Density op time this iteration.
};

/// Static facts about one GP run, published before the first iteration.
struct TelemetryRunInfo {
  std::string label;     ///< Design / configuration name (may be empty).
  Index numNodes = 0;    ///< Movable + filler.
  Index numMovable = 0;
  Index numNets = 0;
  std::string solver;
};

/// Final outcome of one GP run.
struct TelemetryRunSummary {
  int iterations = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double seconds = 0.0;
};

/// Observer of the kernel-GP loop. Implementations must tolerate multiple
/// runs through the same sink (the routability loop restarts GP; benches
/// sweep configurations).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  virtual void onRunBegin(const TelemetryRunInfo& /*info*/) {}
  virtual void onIteration(const IterationStats& stats) = 0;
  virtual void onRunEnd(const TelemetryRunSummary& /*summary*/) {}
};

/// Writes one JSON object per iteration (JSONL). Schema:
///   {"iter":..,"objective":..,"wl":..,"density":..,"lambda":..,
///    "gamma":..,"overflow":..,"hpwl":..,"step":..,
///    "wl_op_s":..,"density_op_s":..}
/// Run boundaries are marked with {"run":"<label>",...} header records so
/// multi-run files stay self-describing.
class JsonlTelemetrySink final : public TelemetrySink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTelemetrySink(const std::string& path);
  ~JsonlTelemetrySink() override;

  void onRunBegin(const TelemetryRunInfo& info) override;
  void onIteration(const IterationStats& stats) override;
  void onRunEnd(const TelemetryRunSummary& summary) override;

 private:
  std::FILE* file_ = nullptr;
};

/// Appends one CSV row per GP run (summary, not per-iteration):
///   label,iterations,hpwl,overflow,lambda,seconds
class CsvTelemetrySink final : public TelemetrySink {
 public:
  /// Opens `path` for writing and emits the header; throws on failure.
  explicit CsvTelemetrySink(const std::string& path);
  ~CsvTelemetrySink() override;

  void onRunBegin(const TelemetryRunInfo& info) override;
  void onIteration(const IterationStats& stats) override;
  void onRunEnd(const TelemetryRunSummary& summary) override;

 private:
  std::FILE* file_ = nullptr;
  std::string label_;
};

/// Publishes per-iteration scalars as chrome://tracing counter tracks, so
/// the overflow/HPWL/lambda curves render above the kernel timeline.
class TraceTelemetrySink final : public TelemetrySink {
 public:
  void onIteration(const IterationStats& stats) override;
};

/// Fans one stats stream out to several sinks (non-owning).
class TelemetryMux final : public TelemetrySink {
 public:
  void addSink(TelemetrySink* sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink);
    }
  }
  bool empty() const { return sinks_.empty(); }

  void onRunBegin(const TelemetryRunInfo& info) override;
  void onIteration(const IterationStats& stats) override;
  void onRunEnd(const TelemetryRunSummary& summary) override;

 private:
  std::vector<TelemetrySink*> sinks_;
};

/// In-memory sink for tests and programmatic consumers.
class RecordingTelemetrySink final : public TelemetrySink {
 public:
  void onRunBegin(const TelemetryRunInfo& info) override { runs_.push_back(info); }
  void onIteration(const IterationStats& stats) override {
    iterations_.push_back(stats);
  }
  void onRunEnd(const TelemetryRunSummary& summary) override {
    summaries_.push_back(summary);
  }

  const std::vector<TelemetryRunInfo>& runs() const { return runs_; }
  const std::vector<IterationStats>& iterations() const { return iterations_; }
  const std::vector<TelemetryRunSummary>& summaries() const {
    return summaries_;
  }

 private:
  std::vector<TelemetryRunInfo> runs_;
  std::vector<IterationStats> iterations_;
  std::vector<TelemetryRunSummary> summaries_;
};

}  // namespace dreamplace
