// Global placement engine: the "kernel GP iterations" loop of Fig. 2b.
//
// Per iteration: one fused forward/backward pass of the wirelength and
// density ops, one optimizer update, the gamma schedule (wirelength
// smoothness as a function of overflow), and the lambda schedule
// (eq. (18)). The loop stops when density overflow falls below the target
// (default 7%, the ePlace/RePlAce convention) or at the iteration cap.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "autograd/optimizers.h"
#include "db/database.h"
#include "gp/initial_placement.h"
#include "gp/placement_objective.h"
#include "gp/telemetry.h"
#include "ops/density_op.h"
#include "ops/fence_density_op.h"
#include "ops/schedulers.h"
#include "ops/wirelength.h"

namespace dreamplace {

struct GlobalPlacerOptions {
  double targetDensity = 1.0;
  SolverKind solver = SolverKind::kNesterov;
  double lr = 0.01;        ///< For Adam/SGD/RMSProp.
  double lrDecay = 1.0;    ///< Per-iteration decay (Table IV).
  WirelengthModel wlModel = WirelengthModel::kWeightedAverage;
  WirelengthKernel wlKernel = WirelengthKernel::kMerged;  ///< WA only.
  DensityKernel densityKernel = DensityKernel::kSorted;
  int densitySubdivision = 2;      ///< Fig. 6 sub-rectangle factor.
  fft::Dct2dAlgorithm dct = fft::Dct2dAlgorithm::kFft2dN;
  int maxIterations = 1000;
  int minIterations = 30;
  double stopOverflow = 0.07;
  std::uint64_t seed = 1;
  InitialPlacement init = InitialPlacement::kRandomCenter;
  double noiseRatio = 0.001;       ///< Gaussian noise, fraction of die W/H.
  int lambdaUpdateEvery = 1;       ///< 5 in routability mode (Sec. III-F).
  bool tcadMuVariant = true;       ///< TCAD mu_max damping (Sec. III-C).
  Index ignoreNetDegree = 0;
  bool precondition = true;
  int binsMax = 1024;
  bool verbose = false;
  /// Per-movable-cell density width multipliers (cell inflation); empty =>
  /// no inflation.
  std::vector<double> inflation;
  /// Fence regions (paper Sec. III-G): cellFence[i] assigns movable cell i
  /// to fences[cellFence[i] - 1], or the default region when 0. Empty =>
  /// single-field density. Each fence gets its own electric field and the
  /// optimizer projects member cells into their fence box.
  std::vector<FenceRegion> fences;
  std::vector<int> cellFence;
  /// Starting density weight; <= 0 derives ePlace's lambda0 from the
  /// gradient balance. The routability loop carries the previous round's
  /// weight through solver restarts so convergence resumes where it left
  /// off instead of re-ramping under the slowed schedule.
  double initialDensityWeight = 0.0;
  /// Per-iteration stats observer (gp/telemetry.h); non-owning, may be
  /// null (the default — the loop then skips all telemetry work).
  TelemetrySink* telemetry = nullptr;
  /// Label forwarded to the telemetry sink (design / config name).
  std::string telemetryLabel;

  // --- Checkpoint / resume hooks (place/pipeline.h wires these) -----------
  /// Every N iterations, serialize the loop state (optimizer vectors,
  /// lambda, EMA, overflow) and hand it to checkpointSink. 0 (default)
  /// disables. Requires checkpointSink.
  int checkpointEveryIterations = 0;
  std::function<void(const std::string&)> checkpointSink;
  /// Non-null resumes the loop from a snapshot previously produced for
  /// checkpointSink: skips initial placement / lambda0 seeding and
  /// restores the optimizer, continuing bit-identically from the saved
  /// iteration. Must come from the same design, solver, and options.
  const std::string* resumeState = nullptr;
};

struct GlobalPlacerResult {
  int iterations = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double finalLambda = 0.0;  ///< Density weight at termination.
};

template <typename T>
class GlobalPlacer {
 public:
  /// Called after every iteration; return false to stop the loop early
  /// (the routability flow uses this to trigger inflation at 20%).
  using Callback = std::function<bool(const IterationStats&)>;

  GlobalPlacer(Database& db, GlobalPlacerOptions options = {});
  ~GlobalPlacer();

  /// Overrides the initial node centers (e.g. to continue after an
  /// inflation restart). Must be called before run().
  void setInitialPositions(std::vector<T> x, std::vector<T> y);

  /// Runs GP and commits the final movable-cell positions to the database.
  GlobalPlacerResult run(const Callback& callback = {});

  Index numNodes() const { return num_nodes_; }
  /// Node centers after run() (movable cells then fillers).
  std::vector<T> nodeX() const;
  std::vector<T> nodeY() const;

  const DensityGrid<T>& grid() const { return grid_; }

 private:
  void buildOps();
  void commit(const std::vector<T>& params);
  /// Constructs optimizer_ for options_.solver over `initial` with the
  /// given projection (the switch formerly inlined in run()).
  void makeSolver(std::vector<T> initial,
                  std::function<void(std::vector<T>&)> projection);
  /// Loop snapshot handed to options_.checkpointSink: versioned blob of
  /// the next iteration index, schedule state, and optimizer state.
  std::string serializeRunState(int next_iter, double lambda, double ema_hpwl,
                                double overflow, double cur_hpwl) const;

  Database& db_;
  GlobalPlacerOptions options_;
  Index num_nodes_ = 0;
  std::unique_ptr<WirelengthOp<T>> wirelength_;
  std::unique_ptr<DensityFunction<T>> density_;
  DensityGrid<T> grid_{};
  std::unique_ptr<PlacementObjective<T>> objective_;
  std::unique_ptr<Optimizer<T>> optimizer_;
  std::vector<T> init_x_, init_y_;
  bool has_initial_positions_ = false;
  std::vector<T> final_params_;
};

}  // namespace dreamplace
