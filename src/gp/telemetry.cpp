#include "gp/telemetry.h"

#include <stdexcept>

#include "common/trace.h"

namespace dreamplace {

namespace {

std::FILE* openOrThrow(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    throw std::runtime_error("telemetry: cannot write " + path);
  }
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonlTelemetrySink
// ---------------------------------------------------------------------------

JsonlTelemetrySink::JsonlTelemetrySink(const std::string& path)
    : file_(openOrThrow(path)) {}

JsonlTelemetrySink::~JsonlTelemetrySink() {
  if (file_) {
    std::fclose(file_);
  }
}

void JsonlTelemetrySink::onRunBegin(const TelemetryRunInfo& info) {
  std::fprintf(file_,
               "{\"run\":\"%s\",\"nodes\":%d,\"movable\":%d,\"nets\":%d,"
               "\"solver\":\"%s\"}\n",
               jsonEscape(info.label).c_str(), info.numNodes, info.numMovable,
               info.numNets, jsonEscape(info.solver).c_str());
}

void JsonlTelemetrySink::onIteration(const IterationStats& s) {
  std::fprintf(file_,
               "{\"iter\":%d,\"objective\":%.17g,\"wl\":%.17g,"
               "\"density\":%.17g,\"lambda\":%.17g,\"gamma\":%.17g,"
               "\"overflow\":%.17g,\"hpwl\":%.17g,\"step\":%.17g,"
               "\"wl_op_s\":%.6g,\"density_op_s\":%.6g}\n",
               s.iteration, s.objective, s.wirelength, s.density, s.lambda,
               s.gamma, s.overflow, s.hpwl, s.stepSize, s.wlOpSeconds,
               s.densityOpSeconds);
}

void JsonlTelemetrySink::onRunEnd(const TelemetryRunSummary& s) {
  std::fprintf(file_,
               "{\"run_end\":true,\"iterations\":%d,\"hpwl\":%.17g,"
               "\"overflow\":%.17g,\"lambda\":%.17g,\"seconds\":%.6g}\n",
               s.iterations, s.hpwl, s.overflow, s.lambda, s.seconds);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// CsvTelemetrySink
// ---------------------------------------------------------------------------

CsvTelemetrySink::CsvTelemetrySink(const std::string& path)
    : file_(openOrThrow(path)) {
  std::fprintf(file_, "label,iterations,hpwl,overflow,lambda,seconds\n");
}

CsvTelemetrySink::~CsvTelemetrySink() {
  if (file_) {
    std::fclose(file_);
  }
}

void CsvTelemetrySink::onRunBegin(const TelemetryRunInfo& info) {
  label_ = info.label;
}

void CsvTelemetrySink::onIteration(const IterationStats& /*stats*/) {}

void CsvTelemetrySink::onRunEnd(const TelemetryRunSummary& s) {
  std::fprintf(file_, "%s,%d,%.17g,%.17g,%.17g,%.6g\n", label_.c_str(),
               s.iterations, s.hpwl, s.overflow, s.lambda, s.seconds);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// TraceTelemetrySink
// ---------------------------------------------------------------------------

void TraceTelemetrySink::onIteration(const IterationStats& s) {
  TraceRecorder& trace = currentTraceRecorder();
  if (!trace.enabled()) {
    return;
  }
  trace.counterEvent("gp.overflow", s.overflow);
  trace.counterEvent("gp.hpwl", s.hpwl);
  trace.counterEvent("gp.lambda", s.lambda);
  trace.counterEvent("gp.gamma", s.gamma);
  trace.counterEvent("gp.step", s.stepSize);
}

// ---------------------------------------------------------------------------
// TelemetryMux
// ---------------------------------------------------------------------------

void TelemetryMux::onRunBegin(const TelemetryRunInfo& info) {
  for (TelemetrySink* sink : sinks_) {
    sink->onRunBegin(info);
  }
}

void TelemetryMux::onIteration(const IterationStats& stats) {
  for (TelemetrySink* sink : sinks_) {
    sink->onIteration(stats);
  }
}

void TelemetryMux::onRunEnd(const TelemetryRunSummary& summary) {
  for (TelemetrySink* sink : sinks_) {
    sink->onRunEnd(summary);
  }
}

}  // namespace dreamplace
