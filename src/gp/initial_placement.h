// Initial placement strategies (paper Sec. III, Fig. 2b).
//
// DREAMPlace starts from a random-center initial placement: every movable
// cell at the die center plus a small Gaussian noise (0.1% of the die
// width/height), which the paper shows matches the quality of the
// conventional bound-to-bound initial placement at a fraction of the
// runtime (21.1% of GP in Fig. 3). The conventional "spread" strategy is
// also provided as the RePlAce-flow stand-in for the Fig. 3 / ablation
// benches.
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.h"

namespace dreamplace {

enum class InitialPlacement {
  kRandomCenter,  ///< DREAMPlace: die center + Gaussian noise.
  kSpread,        ///< Baseline: quadratic-style spread via net-anchored
                  ///< Jacobi iterations (stand-in for GP-IP in Fig. 3).
};

/// Fills `x`/`y` (length >= numNodes; nodes = movable cells then fillers)
/// with initial *center* coordinates. Fillers are always placed uniformly
/// at random in the die.
template <typename T>
void initializePlacement(const Database& db, Index numNodes,
                         InitialPlacement strategy, std::uint64_t seed,
                         double noiseRatio, std::vector<T>& x,
                         std::vector<T>& y);

}  // namespace dreamplace
