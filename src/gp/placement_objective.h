// The combined, preconditioned GP objective: WL(w) + lambda * D(w).
//
// ePlace applies a Jacobi preconditioner to the gradient — each coordinate
// is divided by an estimate of the objective's diagonal curvature,
// max(#pins(i) + lambda * q_i, eps) — which equalizes step sizes between
// high-fanout cells and large cells. Without it Nesterov's method needs
// far smaller steps to stay stable. The preconditioned direction is what
// the optimizer sees as "the gradient", exactly as in ePlace/DREAMPlace.
#pragma once

#include <span>
#include <vector>

#include "autograd/objective.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "db/database.h"
#include "ops/density_op.h"
#include "ops/wirelength.h"

namespace dreamplace {

template <typename T>
class PlacementObjective final : public ObjectiveFunction<T> {
 public:
  PlacementObjective(const Database& db, WirelengthOp<T>& wirelength,
                     DensityFunction<T>& density)
      : wirelength_(wirelength), density_(density) {
    const Index num_nodes = density.numNodes();
    pin_count_.assign(num_nodes, T(0));
    area_.assign(num_nodes, T(0));
    for (Index i = 0; i < db.numMovable(); ++i) {
      pin_count_[i] =
          static_cast<T>(db.cellPinEnd(i) - db.cellPinBegin(i));
      area_[i] = static_cast<T>(db.cellArea(i));
    }
    // Fillers: no pins; their charge is their (smoothed) area.
    for (Index i = db.numMovable(); i < num_nodes; ++i) {
      area_[i] = density.nodeArea(i);
    }
    // Normalize areas so lambda * area is commensurate with pin counts.
    T max_area = T(0);
    for (T a : area_) {
      max_area = std::max(max_area, a);
    }
    if (max_area > 0) {
      for (T& a : area_) {
        a /= max_area;
      }
    }
    wl_scratch_.resize(this->size());
    density_scratch_.resize(this->size());
  }

  void setDensityWeight(double lambda) { lambda_ = lambda; }
  double densityWeight() const { return lambda_; }
  void setPreconditioning(bool enabled) { precondition_ = enabled; }

  double lastWirelength() const { return last_wl_; }
  double lastDensity() const { return last_density_; }

  std::size_t size() const override { return wirelength_.size(); }

  double evaluate(std::span<const T> params, std::span<T> grad) override {
    {
      ScopedTimer t("gp/op/wirelength");
      last_wl_ = wirelength_.evaluate(params, std::span<T>(wl_scratch_));
    }
    {
      ScopedTimer t("gp/op/density");
      last_density_ =
          density_.evaluate(params, std::span<T>(density_scratch_));
    }
    const T lambda = static_cast<T>(lambda_);
    const Index n = density_.numNodes();
    const T* wl_g = wl_scratch_.data();
    const T* d_g = density_scratch_.data();
    parallelFor("gp/combine", n, 2048, [&](Index i) {
      T gx = wl_g[i] + lambda * d_g[i];
      T gy = wl_g[i + n] + lambda * d_g[i + n];
      if (precondition_) {
        const T precond =
            std::max(pin_count_[i] + lambda * area_[i], T(1));
        gx /= precond;
        gy /= precond;
      }
      grad[i] = gx;
      grad[i + n] = gy;
    });
    return last_wl_ + lambda_ * last_density_;
  }

 private:
  WirelengthOp<T>& wirelength_;
  DensityFunction<T>& density_;
  double lambda_ = 0.0;
  bool precondition_ = true;
  double last_wl_ = 0.0;
  double last_density_ = 0.0;
  std::vector<T> pin_count_;
  std::vector<T> area_;
  std::vector<T> wl_scratch_;
  std::vector<T> density_scratch_;
};

}  // namespace dreamplace
