#include "gp/initial_placement.h"

#include "common/log.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gp/quadratic_ip.h"

namespace dreamplace {

namespace {

}  // namespace

template <typename T>
void initializePlacement(const Database& db, Index numNodes,
                         InitialPlacement strategy, std::uint64_t seed,
                         double noiseRatio, std::vector<T>& x,
                         std::vector<T>& y) {
  ScopedTimer timer("gp/init");
  x.resize(numNodes);
  y.resize(numNodes);
  Rng rng(seed, /*stream=*/0xabcdef1234567ULL);
  const Box<Coord>& die = db.dieArea();
  const Index num_movable = db.numMovable();

  switch (strategy) {
    case InitialPlacement::kRandomCenter:
      for (Index i = 0; i < num_movable; ++i) {
        x[i] = static_cast<T>(
            die.centerX() + rng.normal(0, die.width() * noiseRatio));
        y[i] = static_cast<T>(
            die.centerY() + rng.normal(0, die.height() * noiseRatio));
      }
      break;
    case InitialPlacement::kSpread: {
      // Conventional GP-IP: seed at the die center and run the full
      // bound-to-bound quadratic solve (see quadratic_ip.h). This is the
      // phase whose runtime Fig. 3 attributes 25-30% of GP to, and which
      // DREAMPlace's random-center start eliminates.
      for (Index i = 0; i < num_movable; ++i) {
        x[i] = static_cast<T>(
            die.centerX() + rng.normal(0, die.width() * 1e-3));
        y[i] = static_cast<T>(
            die.centerY() + rng.normal(0, die.height() * 1e-3));
      }
      quadraticInitialPlacement<T>(db, QuadraticIpOptions{}, x, y);
      break;
    }
  }

  // Fillers: uniform over the die (they only interact through density).
  for (Index i = num_movable; i < numNodes; ++i) {
    x[i] = static_cast<T>(rng.uniform(die.xl, die.xh));
    y[i] = static_cast<T>(rng.uniform(die.yl, die.yh));
  }
}

#define DP_INSTANTIATE_INIT(T)                                        \
  template void initializePlacement<T>(const Database&, Index,        \
                                       InitialPlacement, std::uint64_t, \
                                       double, std::vector<T>&,       \
                                       std::vector<T>&);

DP_INSTANTIATE_INIT(float)
DP_INSTANTIATE_INIT(double)

#undef DP_INSTANTIATE_INIT

}  // namespace dreamplace
