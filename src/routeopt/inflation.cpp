#include "routeopt/inflation.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/timer.h"
#include "db/metrics.h"

namespace dreamplace {

template <typename T>
double RoutabilityDrivenPlacer<T>::applyInflation(
    const RoutingResult& routing, std::vector<double>& inflation) const {
  const Box<Coord>& die = db_.dieArea();
  const double tile_w = die.width() / routing.gridX;
  const double tile_h = die.height() / routing.gridY;

  // Tile inflation ratios per eq. (19).
  std::vector<double> tile_ratio(
      static_cast<size_t>(routing.gridX) * routing.gridY, 1.0);
  for (int x = 0; x < routing.gridX; ++x) {
    for (int y = 0; y < routing.gridY; ++y) {
      const double cong = routing.tileCongestion(x, y);
      tile_ratio[x * routing.gridY + y] = std::min(
          std::pow(std::max(cong, 0.0), options_.inflationExponent),
          options_.inflationMax);
    }
  }

  // Per-cell ratio: max over overlapped tiles (a cell "inflates according
  // to the inflation ratios of the tiles it overlaps with").
  std::vector<double> cell_ratio(db_.numMovable(), 1.0);
  double attempted_increment = 0.0;
  double total_cell_area = 0.0;
  for (Index i = 0; i < db_.numMovable(); ++i) {
    const Box<Coord> box = db_.cellBox(i);
    const int bx0 = std::clamp(
        static_cast<int>((box.xl - die.xl) / tile_w), 0, routing.gridX - 1);
    const int bx1 = std::clamp(
        static_cast<int>((box.xh - die.xl) / tile_w), 0, routing.gridX - 1);
    const int by0 = std::clamp(
        static_cast<int>((box.yl - die.yl) / tile_h), 0, routing.gridY - 1);
    const int by1 = std::clamp(
        static_cast<int>((box.yh - die.yl) / tile_h), 0, routing.gridY - 1);
    double ratio = 1.0;
    for (int x = bx0; x <= bx1; ++x) {
      for (int y = by0; y <= by1; ++y) {
        ratio = std::max(ratio, tile_ratio[x * routing.gridY + y]);
      }
    }
    cell_ratio[i] = ratio;
    const double area = db_.cellArea(i) * inflation[i];
    total_cell_area += area;
    attempted_increment += area * (ratio - 1.0);
  }

  // Cap the increment at 10% of the whitespace; scale ratios down uniformly
  // if exceeded.
  const double whitespace = die.area() - db_.totalFixedArea() -
                            db_.totalMovableArea();
  const double budget = options_.whitespaceBudget * std::max(whitespace, 0.0);
  double scale = 1.0;
  if (attempted_increment > budget && attempted_increment > 0) {
    scale = budget / attempted_increment;
  }
  double applied_increment = 0.0;
  for (Index i = 0; i < db_.numMovable(); ++i) {
    const double extra = (cell_ratio[i] - 1.0) * scale;
    inflation[i] *= (1.0 + extra);
    applied_increment += db_.cellArea(i) * inflation[i] /
                         (1.0 + extra) * extra;
  }
  return total_cell_area > 0 ? applied_increment / total_cell_area : 0.0;
}

template <typename T>
RoutabilityResult RoutabilityDrivenPlacer<T>::run() {
  RoutabilityResult result;
  std::vector<double> inflation(db_.numMovable(), 1.0);

  std::vector<T> carry_x;
  std::vector<T> carry_y;
  bool have_carry = false;
  double carry_lambda = 0.0;
  int round = 0;

  for (;; ++round) {
    GlobalPlacerOptions gp_opts = options_.gp;
    gp_opts.inflation = inflation;
    if (round > 0) {
      // Slow down the density weight schedule from the first inflation on,
      // and resume from the previous round's weight (a fresh lambda0 would
      // re-ramp from scratch under the slowed schedule).
      gp_opts.lambdaUpdateEvery = options_.slowLambdaEvery;
      gp_opts.initialDensityWeight = carry_lambda;
    }
    GlobalPlacer<T> placer(db_, gp_opts);
    if (have_carry) {
      // Inflation shrinks the filler population (area is given back to the
      // inflated cells); fillers are dropped from the tail, so truncating
      // the carried positions keeps node identities aligned.
      DP_ASSERT(static_cast<Index>(carry_x.size()) >= placer.numNodes());
      carry_x.resize(placer.numNodes());
      carry_y.resize(placer.numNodes());
      placer.setInitialPositions(carry_x, carry_y);
    }

    const bool final_round = round >= options_.maxRounds;
    Timer nl_timer;
    if (final_round) {
      result.gp = placer.run();
    } else {
      // Stop at the inflation trigger.
      const double trigger = options_.inflationTrigger;
      result.gp = placer.run([&](const IterationStats& stats) {
        return stats.overflow > trigger;
      });
    }
    result.nlSeconds += nl_timer.elapsed();
    carry_x = placer.nodeX();
    carry_y = placer.nodeY();
    carry_lambda = result.gp.finalLambda;
    have_carry = true;

    if (final_round || result.gp.overflow <= options_.gp.stopOverflow) {
      break;
    }

    // Route at the current placement and inflate.
    Timer gr_timer;
    GlobalRouter router(options_.router);
    const RoutingResult routing = router.route(db_);
    result.grSeconds += gr_timer.elapsed();
    ++result.routerInvocations;

    const double round_inflation = applyInflation(routing, inflation);
    logInfo("routeopt: round %d inflation %.3f%% of cell area "
            "(overflowed edges %ld)",
            round, 100.0 * round_inflation, routing.overflowedEdges);
    if (round_inflation < options_.stopInflationRatio) {
      // Converged: finish GP to the normal stopping overflow.
      GlobalPlacerOptions final_opts = options_.gp;
      final_opts.inflation = inflation;
      final_opts.lambdaUpdateEvery = options_.slowLambdaEvery;
      final_opts.initialDensityWeight = carry_lambda;
      GlobalPlacer<T> final_placer(db_, final_opts);
      DP_ASSERT(static_cast<Index>(carry_x.size()) >=
                final_placer.numNodes());
      carry_x.resize(final_placer.numNodes());
      carry_y.resize(final_placer.numNodes());
      final_placer.setInitialPositions(carry_x, carry_y);
      Timer t;
      result.gp = final_placer.run();
      result.nlSeconds += t.elapsed();
      ++round;
      break;
    }
  }
  result.inflationRounds = round;

  // Final congestion estimate for reporting.
  Timer gr_timer;
  GlobalRouter router(options_.router);
  const RoutingResult routing = router.route(db_);
  result.grSeconds += gr_timer.elapsed();
  ++result.routerInvocations;
  result.congestion = computeCongestion(routing);
  result.hpwl = hpwl(db_);
  result.sHpwl = scaledHpwl(result.hpwl, result.congestion.rc);
  logInfo("routeopt: done, %d rounds, RC %.2f, hpwl %.4e, sHPWL %.4e",
          result.inflationRounds, result.congestion.rc, result.hpwl,
          result.sHpwl);
  return result;
}

template class RoutabilityDrivenPlacer<float>;
template class RoutabilityDrivenPlacer<double>;

}  // namespace dreamplace
