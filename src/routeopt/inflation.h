// Routability-driven global placement via cell inflation
// (paper Sec. III-F, evaluated in Table V).
//
// Loop: run GP until the overflow drops to the inflation trigger (20%),
// invoke the global router for a congestion map, inflate cells under
// congested tiles by min((max_l demand/capacity)^2.5, 2.5) (eq. (19)),
// capping the total area increment at 10% of the whitespace per round,
// then restart the solver from the current positions. Stops when the
// round's inflation is below 1% of the total cell area or after 5 rounds;
// a final GP run converges to the normal stopping overflow with the
// density weight updated every 5 iterations (the slowed schedule).
#pragma once

#include "db/database.h"
#include "gp/global_placer.h"
#include "router/congestion.h"
#include "router/global_router.h"

namespace dreamplace {

struct RoutabilityOptions {
  GlobalPlacerOptions gp;
  RouterOptions router;
  double inflationTrigger = 0.20;   ///< Overflow at which to inflate.
  double inflationExponent = 2.5;   ///< eq. (19) exponent.
  double inflationMax = 2.5;        ///< eq. (19) clamp.
  double whitespaceBudget = 0.10;   ///< Max area increment per round.
  double stopInflationRatio = 0.01; ///< Stop when round inflation < 1%.
  int maxRounds = 5;
  int slowLambdaEvery = 5;          ///< Lambda update period after round 1.
};

struct RoutabilityResult {
  GlobalPlacerResult gp;
  CongestionReport congestion;   ///< After the final routing.
  double hpwl = 0.0;
  double sHpwl = 0.0;
  int inflationRounds = 0;
  int routerInvocations = 0;
  double nlSeconds = 0.0;        ///< Nonlinear optimization time.
  double grSeconds = 0.0;        ///< Global routing time.
};

template <typename T>
class RoutabilityDrivenPlacer {
 public:
  RoutabilityDrivenPlacer(Database& db, RoutabilityOptions options)
      : db_(db), options_(std::move(options)) {}

  RoutabilityResult run();

 private:
  /// Per-movable-cell inflation from the routing congestion map, merged
  /// into `inflation` (multiplicative, monotone non-decreasing). Returns
  /// the attempted area increment as a fraction of the total cell area.
  double applyInflation(const RoutingResult& routing,
                        std::vector<double>& inflation) const;

  Database& db_;
  RoutabilityOptions options_;
};

}  // namespace dreamplace
