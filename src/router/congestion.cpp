#include "router/congestion.h"

#include <algorithm>
#include <cmath>

namespace dreamplace {

namespace {

/// Average of the top `fraction` of the (descending-sorted) values, as a
/// percentage.
double aceTop(const std::vector<double>& sorted, double fraction) {
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(sorted.size() * fraction)));
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += sorted[i];
  }
  return 100.0 * acc / static_cast<double>(count);
}

}  // namespace

CongestionReport computeCongestion(const RoutingResult& routing) {
  std::vector<double> tiles = routing.congestionMap();
  std::sort(tiles.begin(), tiles.end(), std::greater<>());
  CongestionReport report;
  if (tiles.empty()) {
    return report;
  }
  report.peak = 100.0 * tiles.front();
  report.ace05 = aceTop(tiles, 0.005);
  report.ace1 = aceTop(tiles, 0.01);
  report.ace2 = aceTop(tiles, 0.02);
  report.ace5 = aceTop(tiles, 0.05);
  const double mean =
      (report.ace05 + report.ace1 + report.ace2 + report.ace5) / 4.0;
  report.rc = std::max(100.0, mean);
  return report;
}

}  // namespace dreamplace
