// Grid global router: the congestion-estimation substrate for
// routability-driven placement (paper Sec. III-F).
//
// Stands in for the external NCTUgr router the paper invokes: the
// inflation loop only needs per-tile routing demand/capacity ratios per
// metal layer, which any capacity-accounted router provides. This router:
//  * overlays a GCell grid on the die,
//  * decomposes each net into 2-pin segments via a Manhattan MST,
//  * routes segments with L/Z-shape pattern routing, choosing the shape
//    with the least congestion along its path,
//  * assigns demand to the least-utilized layer of the matching direction
//    (layers 0/2 horizontal, 1/3 vertical by default),
//  * runs a bounded rip-up-and-reroute pass over segments crossing
//    overflowed edges.
#pragma once

#include <vector>

#include "db/database.h"

namespace dreamplace {

struct RouterOptions {
  int gridX = 64;
  int gridY = 64;
  int numLayerPairs = 2;     ///< Pairs of (horizontal, vertical) layers.
  double capacityPerLayer = 0.0;  ///< Tracks per GCell edge per layer;
                                  ///< 0 => derived from tile size / pitch.
  double capacityFactor = 1.0;    ///< Scales the derived capacity; < 1
                                  ///< models a congestion-tight process.
  double wirePitch = 0.0;    ///< 0 => rowHeight / 8.
  int rerouteRounds = 2;
  Index maxNetDegree = 64;   ///< Larger nets are skipped (clock-like).
};

/// Routing demand/capacity state after routing. Horizontal edges connect
/// (x,y)->(x+1,y); vertical edges (x,y)->(x,y+1). Layer l of a direction
/// is indexed 0..numLayerPairs-1.
struct RoutingResult {
  int gridX = 0;
  int gridY = 0;
  int numLayerPairs = 0;
  double capacity = 0.0;  ///< Per edge per layer.
  /// demandH[l][x*gridY + y]: horizontal demand at tile (x,y), layer l.
  std::vector<std::vector<double>> demandH;
  std::vector<std::vector<double>> demandV;
  long routedSegments = 0;
  long totalWirelengthTiles = 0;
  long overflowedEdges = 0;

  /// max over layers/directions of demand/capacity for tile (x,y).
  double tileCongestion(int x, int y) const;
  /// All tile congestion values (gridX*gridY entries).
  std::vector<double> congestionMap() const;
};

class GlobalRouter {
 public:
  explicit GlobalRouter(RouterOptions options) : options_(options) {}
  GlobalRouter() : GlobalRouter(RouterOptions()) {}

  RoutingResult route(const Database& db) const;

 private:
  RouterOptions options_;
};

}  // namespace dreamplace
