// DAC 2012 contest congestion metrics (paper Sec. IV-D, eq. (20)).
//
// RC is the mean of the ACE (average congestion of edges) values over the
// top 0.5%, 1%, 2% and 5% most congested tiles, expressed in percent and
// floored at 100 (no overflow). sHPWL charges 3% HPWL per RC point above
// 100.
#pragma once

#include <vector>

#include "router/global_router.h"

namespace dreamplace {

struct CongestionReport {
  double rc = 100.0;      ///< Routing congestion metric (>= 100).
  double ace05 = 0.0;     ///< Average congestion %, top 0.5% tiles.
  double ace1 = 0.0;
  double ace2 = 0.0;
  double ace5 = 0.0;
  double peak = 0.0;      ///< Max tile congestion %.
};

/// Computes the RC metric from a routing result.
CongestionReport computeCongestion(const RoutingResult& routing);

/// sHPWL = HPWL * (1 + 0.03 * (RC - 100))  (paper eq. (20)).
inline double scaledHpwl(double hpwl, double rc) {
  return hpwl * (1.0 + 0.03 * (rc - 100.0));
}

}  // namespace dreamplace
