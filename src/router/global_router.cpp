#include "router/global_router.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/timer.h"

namespace dreamplace {

namespace {

struct TilePoint {
  int x = 0;
  int y = 0;
};

/// One routed 2-pin connection (kept for rip-up).
struct Segment {
  TilePoint a;
  TilePoint b;
  int shape = 0;  ///< 0: via a's corner first in x; 1: first in y.
};

int manhattan(const TilePoint& p, const TilePoint& q) {
  return std::abs(p.x - q.x) + std::abs(p.y - q.y);
}

}  // namespace

double RoutingResult::tileCongestion(int x, int y) const {
  double worst = 0.0;
  const int idx = x * gridY + y;
  for (int l = 0; l < numLayerPairs; ++l) {
    if (x < gridX - 1) {
      worst = std::max(worst, demandH[l][idx] / capacity);
    }
    if (y < gridY - 1) {
      worst = std::max(worst, demandV[l][idx] / capacity);
    }
  }
  return worst;
}

std::vector<double> RoutingResult::congestionMap() const {
  std::vector<double> map(static_cast<size_t>(gridX) * gridY, 0.0);
  for (int x = 0; x < gridX; ++x) {
    for (int y = 0; y < gridY; ++y) {
      map[x * gridY + y] = tileCongestion(x, y);
    }
  }
  return map;
}

namespace {

/// Demand bookkeeping with greedy layer balancing.
class DemandState {
 public:
  DemandState(RoutingResult& result) : r_(result) {}

  /// Adds (or removes, weight -1) one track of demand on the horizontal
  /// edge at tile (x,y), on the least- (most-) utilized layer.
  void addH(int x, int y, double weight) { addEdge(r_.demandH, x, y, weight); }
  void addV(int x, int y, double weight) { addEdge(r_.demandV, x, y, weight); }

  double congH(int x, int y) const { return worst(r_.demandH, x, y); }
  double congV(int x, int y) const { return worst(r_.demandV, x, y); }

 private:
  void addEdge(std::vector<std::vector<double>>& demand, int x, int y,
               double weight) {
    const int idx = x * r_.gridY + y;
    int pick = 0;
    double best = weight > 0 ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
    for (int l = 0; l < r_.numLayerPairs; ++l) {
      const double d = demand[l][idx];
      if ((weight > 0 && d < best) || (weight < 0 && d > best)) {
        best = d;
        pick = l;
      }
    }
    demand[pick][idx] += weight;
    if (demand[pick][idx] < 0) {
      demand[pick][idx] = 0;  // numerical safety on rip-up
    }
  }

  double worst(const std::vector<std::vector<double>>& demand, int x,
               int y) const {
    const int idx = x * r_.gridY + y;
    double w = 0.0;
    for (int l = 0; l < r_.numLayerPairs; ++l) {
      w = std::max(w, demand[l][idx]);
    }
    return w / r_.capacity;
  }

  RoutingResult& r_;
};

/// Walks the L-path of `seg` (shape 0: x first, 1: y first), calling
/// stepH(x,y) for each horizontal edge crossed and stepV similarly.
template <typename StepH, typename StepV>
void walkL(const Segment& seg, StepH stepH, StepV stepV) {
  const auto [ax, ay] = seg.a;
  const auto [bx, by] = seg.b;
  if (seg.shape == 0) {
    // Horizontal run at ay, then vertical at bx.
    for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x) {
      stepH(x, ay);
    }
    for (int y = std::min(ay, by); y < std::max(ay, by); ++y) {
      stepV(bx, y);
    }
  } else {
    // Vertical run at ax, then horizontal at by.
    for (int y = std::min(ay, by); y < std::max(ay, by); ++y) {
      stepV(ax, y);
    }
    for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x) {
      stepH(x, by);
    }
  }
}

double pathCost(const Segment& seg, const DemandState& state) {
  // Cost = sum over edges of a congestion-convex penalty; quadratic above
  // 80% utilization discourages stacking demand on hot edges.
  double cost = 0.0;
  auto penalty = [](double utilization) {
    const double over = std::max(0.0, utilization - 0.8);
    return 1.0 + 25.0 * over * over;
  };
  walkL(
      seg, [&](int x, int y) { cost += penalty(state.congH(x, y)); },
      [&](int x, int y) { cost += penalty(state.congV(x, y)); });
  return cost;
}

void commit(const Segment& seg, DemandState& state, double weight) {
  walkL(
      seg, [&](int x, int y) { state.addH(x, y, weight); },
      [&](int x, int y) { state.addV(x, y, weight); });
}

bool crossesOverflow(const Segment& seg, const DemandState& state) {
  bool overflow = false;
  walkL(
      seg,
      [&](int x, int y) { overflow |= state.congH(x, y) > 1.0; },
      [&](int x, int y) { overflow |= state.congV(x, y) > 1.0; });
  return overflow;
}

}  // namespace

RoutingResult GlobalRouter::route(const Database& db) const {
  ScopedTimer timer("router");
  RoutingResult result;
  result.gridX = options_.gridX;
  result.gridY = options_.gridY;
  result.numLayerPairs = options_.numLayerPairs;

  const Box<Coord>& die = db.dieArea();
  const double tile_w = die.width() / options_.gridX;
  const double tile_h = die.height() / options_.gridY;
  const double pitch =
      options_.wirePitch > 0 ? options_.wirePitch : db.rowHeight() / 8.0;
  result.capacity = options_.capacityPerLayer > 0
                        ? options_.capacityPerLayer
                        : options_.capacityFactor * std::min(tile_w, tile_h) /
                              pitch / options_.numLayerPairs;
  for (auto* maps : {&result.demandH, &result.demandV}) {
    maps->assign(options_.numLayerPairs,
                 std::vector<double>(
                     static_cast<size_t>(options_.gridX) * options_.gridY,
                     0.0));
  }
  DemandState state(result);

  auto tileOf = [&](double px, double py) {
    TilePoint t;
    t.x = std::clamp(static_cast<int>((px - die.xl) / tile_w), 0,
                     options_.gridX - 1);
    t.y = std::clamp(static_cast<int>((py - die.yl) / tile_h), 0,
                     options_.gridY - 1);
    return t;
  };

  // --- Decompose nets into 2-pin segments via Manhattan MST (Prim). -----
  std::vector<Segment> segments;
  std::vector<TilePoint> pins;
  std::vector<char> in_tree;
  std::vector<int> dist;
  std::vector<int> parent;
  for (Index e = 0; e < db.numNets(); ++e) {
    const Index begin = db.netPinBegin(e);
    const Index end = db.netPinEnd(e);
    const Index degree = end - begin;
    if (degree < 2 || degree > options_.maxNetDegree) {
      continue;
    }
    pins.clear();
    for (Index p = begin; p < end; ++p) {
      pins.push_back(tileOf(db.pinX(p), db.pinY(p)));
    }
    // Deduplicate same-tile pins.
    std::sort(pins.begin(), pins.end(), [](auto a, auto b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    pins.erase(std::unique(pins.begin(), pins.end(),
                           [](auto a, auto b) {
                             return a.x == b.x && a.y == b.y;
                           }),
               pins.end());
    const int k = static_cast<int>(pins.size());
    if (k < 2) {
      continue;
    }
    in_tree.assign(k, 0);
    dist.assign(k, std::numeric_limits<int>::max());
    parent.assign(k, -1);
    dist[0] = 0;
    for (int it = 0; it < k; ++it) {
      int u = -1;
      for (int i = 0; i < k; ++i) {
        if (!in_tree[i] && (u < 0 || dist[i] < dist[u])) {
          u = i;
        }
      }
      in_tree[u] = 1;
      if (parent[u] >= 0) {
        segments.push_back({pins[parent[u]], pins[u], 0});
      }
      for (int i = 0; i < k; ++i) {
        if (!in_tree[i]) {
          const int d = manhattan(pins[u], pins[i]);
          if (d < dist[i]) {
            dist[i] = d;
            parent[i] = u;
          }
        }
      }
    }
  }

  // --- Initial routing: best of the two L shapes. -----------------------------
  for (Segment& seg : segments) {
    Segment alt = seg;
    alt.shape = 1;
    const double c0 = pathCost(seg, state);
    const double c1 = pathCost(alt, state);
    if (c1 < c0) {
      seg.shape = 1;
    }
    commit(seg, state, 1.0);
    result.totalWirelengthTiles += manhattan(seg.a, seg.b);
  }
  result.routedSegments = static_cast<long>(segments.size());

  // --- Rip-up and re-route segments crossing overflowed edges. ------------------
  for (int round = 0; round < options_.rerouteRounds; ++round) {
    long rerouted = 0;
    for (Segment& seg : segments) {
      if (!crossesOverflow(seg, state)) {
        continue;
      }
      commit(seg, state, -1.0);
      Segment alt = seg;
      alt.shape = 1 - seg.shape;
      if (pathCost(alt, state) < pathCost(seg, state)) {
        seg.shape = alt.shape;
        ++rerouted;
      }
      commit(seg, state, 1.0);
    }
    if (rerouted == 0) {
      break;
    }
  }

  // Count overflowed edges for reporting.
  for (int l = 0; l < result.numLayerPairs; ++l) {
    for (double d : result.demandH[l]) {
      if (d > result.capacity) {
        ++result.overflowedEdges;
      }
    }
    for (double d : result.demandV[l]) {
      if (d > result.capacity) {
        ++result.overflowedEdges;
      }
    }
  }
  return result;
}

}  // namespace dreamplace
