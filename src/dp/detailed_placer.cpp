#include "dp/detailed_placer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "dp/independent_set.h"
#include "dp/net_bbox.h"
#include "lg/macro_legalizer.h"

// Parallelization scheme (see docs/PARALLEL.md, "Parallel back-end"):
// both DP phases are speculative propose + sequential commit. The propose
// phase evaluates every window (reorder) or cell (swap) against a frozen
// snapshot of positions in parallel; the commit pass then walks the same
// items in the serial order, *stamping* every cell and net a committed
// move touches. An item whose footprint (its cells, its incident-net
// union, and — for reorder — the window's right span neighbour) contains
// no stamp provably saw identical inputs in the propose phase, so its
// precomputed result is reused; a stamped ("stale") item is re-evaluated
// against live state. Either way each item resolves to exactly what the
// serial loop would have computed, so results are bit-identical at any
// thread count, including the threads==1 path that skips proposals
// entirely.

namespace dreamplace {

namespace {

/// Union of the nets incident to `cells`, sorted ascending and
/// deduplicated, written into `out` (no allocation when capacity
/// suffices).
void incidentNetsInto(const Database& db, const Index* cells, int count,
                      std::vector<Index>& out) {
  out.clear();
  for (int i = 0; i < count; ++i) {
    const Index c = cells[i];
    for (Index s = db.cellPinBegin(c); s < db.cellPinEnd(c); ++s) {
      out.push_back(db.pinNet(db.cellPinAt(s)));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

/// Row occupancy: cells of each row sorted by x. Fixed cells (pads,
/// macros) are included as immovable entries so window/swap moves never
/// pack over them.
struct RowIndex {
  std::vector<std::vector<Index>> rows;
  std::vector<char> movableEntry;  ///< Per cell: participates in DP moves.
  Coord rowHeight = 0;
  Coord yBase = 0;

  bool isMovableEntry(Index i) const { return movableEntry[i] != 0; }

  void build(const Database& db) {
    rowHeight = db.rowHeight();
    yBase = db.rows().front().y;
    rows.assign(db.rows().size(), {});
    movableEntry.assign(db.numCells(), 0);
    const auto num_rows = static_cast<Index>(rows.size());
    for (Index i = 0; i < db.numCells(); ++i) {
      // Standard movable cells are DP-movable; fixed cells and movable
      // macros are obstacles spanning every row band they overlap.
      if (db.isMovable(i) && !isMovableMacro(db, i)) {
        movableEntry[i] = 1;
        rows[rowOf(db.cellY(i))].push_back(i);
        continue;
      }
      const Box<Coord> box = db.cellBox(i);
      const Index r0 = rowOf(box.yl + 1e-9);
      const Index r1 = rowOf(box.yh - 1e-9);
      for (Index r = std::max<Index>(0, r0);
           r <= std::min(num_rows - 1, r1); ++r) {
        rows[r].push_back(i);
      }
    }
    // Rows sort independently; each row's input sequence (push order) is
    // thread-count-invariant, so the sorted order is too.
    parallelForBlocked("dp/row_sort", num_rows, 8,
                       [&](Index lo, Index hi, int) {
                         for (Index r = lo; r < hi; ++r) {
                           std::sort(rows[r].begin(), rows[r].end(),
                                     [&](Index a, Index b) {
                                       return db.cellX(a) < db.cellX(b);
                                     });
                         }
                       });
  }

  Index rowOf(Coord y) const {
    const auto r = static_cast<Index>(std::round((y - yBase) / rowHeight));
    return std::clamp<Index>(r, 0, static_cast<Index>(rows.size()) - 1);
  }
};

// ---- Intra-row reordering -------------------------------------------------

struct ReorderScratch {
  NetBboxEval eval;
  std::vector<Index> window;
  std::vector<int> perm;
  std::vector<int> bestPerm;
  std::vector<Index> nets;

  ReorderScratch(const Database& db, const NetBboxCache& cache, int w)
      : eval(db, cache), window(w), perm(w), bestPerm(w) {}
};

struct WindowEval {
  bool evaluated = false;  ///< Passed the fixed/feasibility gates.
  bool improved = false;   ///< Best permutation beats base by > 1e-9.
  Coord spanXl = 0;        ///< Packing origin (first cell's x).
};

/// Evaluates one reorder window against the current database state:
/// exhaustively permutes the w cells, packed from the span start, and
/// records the best ordering in `s.bestPerm` (net union in `s.nets`,
/// composition in `s.window`). Read-only; safe to run speculatively.
WindowEval evaluateWindow(const Database& db, const RowIndex& rowIndex,
                          const std::vector<Index>& row, std::size_t start,
                          int w, ReorderScratch& s) {
  WindowEval out;
  bool has_fixed = false;
  for (int k = 0; k < w; ++k) {
    s.window[k] = row[start + k];
    has_fixed |= !rowIndex.isMovableEntry(s.window[k]);
  }
  if (has_fixed) {
    return out;
  }
  // Window span: from first cell's x to the next cell (or +inf);
  // permutations are packed from the span start.
  out.spanXl = db.cellX(s.window[0]);
  Coord span_xh;
  if (start + w < row.size()) {
    span_xh = db.cellX(row[start + w]);
  } else {
    span_xh = std::numeric_limits<Coord>::infinity();
  }
  Coord total_w = 0;
  for (int k = 0; k < w; ++k) {
    total_w += db.cellWidth(s.window[k]);
  }
  if (out.spanXl + total_w > span_xh) {
    return out;  // no room to repack (should not happen)
  }
  incidentNetsInto(db, s.window.data(), w, s.nets);
  out.evaluated = true;

  std::iota(s.perm.begin(), s.perm.end(), 0);
  s.eval.clearOverrides();
  const double base = s.eval.netsHpwl(s.nets);
  double best = base;
  std::copy(s.perm.begin(), s.perm.end(), s.bestPerm.begin());
  const Coord orig_y = db.cellY(s.window[0]);
  // The override cell set is the window for every permutation — slot k
  // holds s.window[k] — so after the first refresh each permutation only
  // re-positions slots (no moved-pin rebuild+sort per candidate).
  for (int k = 0; k < w; ++k) {
    s.eval.setOverride(s.window[k], db.cellX(s.window[k]), orig_y);
  }
  while (std::next_permutation(s.perm.begin(), s.perm.end())) {
    Coord x = out.spanXl;
    for (int k = 0; k < w; ++k) {
      const Index c = s.window[s.perm[k]];
      s.eval.updateOverride(s.perm[k], x, orig_y);
      x += db.cellWidth(c);
    }
    const double cost = s.eval.netsHpwl(s.nets);
    if (cost < best - 1e-9) {
      best = cost;
      std::copy(s.perm.begin(), s.perm.end(), s.bestPerm.begin());
    }
  }
  s.eval.clearOverrides();
  out.improved = best < base - 1e-9;
  return out;
}

/// Applies a winning permutation: moves the w cells to their packed
/// positions (updating the bbox cache move-by-move so its rescans always
/// see a database consistent with the cache) and rewrites the row order.
void commitWindow(Database& db, NetBboxCache& cache, std::vector<Index>& row,
                  std::size_t start, int w, const std::vector<int>& perm,
                  Coord span_xl) {
  Index cells[NetBboxEval::kMaxOverrides];
  for (int k = 0; k < w; ++k) {
    cells[k] = row[start + k];
  }
  const Coord orig_y = db.cellY(cells[0]);
  Coord x = span_xl;
  for (int k = 0; k < w; ++k) {
    const Index c = cells[perm[k]];
    const Coord old_x = db.cellX(c);
    const Coord old_y = db.cellY(c);
    db.setCellPosition(c, x, orig_y);
    cache.moveCell(db, c, old_x, old_y);
    row[start + k] = c;
    x += db.cellWidth(c);
  }
}

struct WindowRef {
  Index row = 0;
  Index start = 0;
};

struct ReorderProposal {
  WindowEval ev;
  std::vector<Index> nets;  ///< Net union (cleanliness check + stamping).
  std::vector<int> perm;    ///< Best permutation, when ev.improved.
};

// ---- Global swap ----------------------------------------------------------

struct SwapScratch {
  NetBboxEval eval;
  std::vector<double> lx, hx, ly, hy;
  std::vector<Index> nets;

  SwapScratch(const Database& db, const NetBboxCache& cache)
      : eval(db, cache) {}
};

struct SwapRegion {
  bool skip = true;
  double ox = 0;
  Index targetRow = 0;
};

/// Optimal region of `cell`: median of the bounding boxes of its nets
/// with the cell itself excluded. skip is set when the cell has no
/// external pins or already sits in its optimal region.
SwapRegion computeSwapRegion(const Database& db, const RowIndex& rows,
                             Index cell, SwapScratch& s) {
  SwapRegion region;
  s.lx.clear();
  s.hx.clear();
  s.ly.clear();
  s.hy.clear();
  for (Index ps = db.cellPinBegin(cell); ps < db.cellPinEnd(cell); ++ps) {
    const Index pin = db.cellPinAt(ps);
    const Index e = db.pinNet(pin);
    double xl = std::numeric_limits<double>::infinity();
    double xh = -xl, yl = xl, yh = -xl;
    bool any = false;
    for (Index p = db.netPinBegin(e); p < db.netPinEnd(e); ++p) {
      if (db.pinCell(p) == cell) {
        continue;
      }
      any = true;
      xl = std::min(xl, db.pinX(p));
      xh = std::max(xh, db.pinX(p));
      yl = std::min(yl, db.pinY(p));
      yh = std::max(yh, db.pinY(p));
    }
    if (any) {
      s.lx.push_back(xl);
      s.hx.push_back(xh);
      s.ly.push_back(yl);
      s.hy.push_back(yh);
    }
  }
  if (s.lx.empty()) {
    return region;
  }
  auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  region.ox = 0.5 * (median(s.lx) + median(s.hx));
  const double oy = 0.5 * (median(s.ly) + median(s.hy));
  region.targetRow = rows.rowOf(oy - db.rowHeight() / 2);

  // Already close to optimal? Skip.
  region.skip = std::abs(db.cellX(cell) - region.ox) < db.rowHeight() &&
                rows.rowOf(db.cellY(cell)) == region.targetRow;
  return region;
}

/// Walks the swap candidates of `cell` around its optimal region in the
/// serial order (rows by distance from the target, nearest-x probes per
/// row), invoking tryCand(other) for each admissible candidate until it
/// returns true (committed) or the candidate budget is exhausted.
/// Read-only with respect to `rows` and the database.
template <typename TryFn>
void enumerateSwapCandidates(const Database& db, const RowIndex& rows,
                             Index cell, double ox, Index target_row,
                             const DetailedPlacer::Options& opt,
                             TryFn&& tryCand) {
  int tried = 0;
  const auto max_row_delta = static_cast<Index>(opt.swapRadiusRows);
  for (Index dr = 0; dr <= max_row_delta && tried < opt.maxCandidates;
       ++dr) {
    for (int sign : {+1, -1}) {
      if (sign < 0 && dr == 0) {
        continue;
      }
      const Index r = target_row + sign * dr;
      if (r < 0 || r >= static_cast<Index>(rows.rows.size())) {
        continue;
      }
      const auto& row = rows.rows[r];
      if (row.empty()) {
        continue;
      }
      // Binary search the cell nearest ox.
      const auto it = std::lower_bound(
          row.begin(), row.end(), ox,
          [&](Index a, double v) { return db.cellX(a) < v; });
      for (int probe = -1; probe <= 1; ++probe) {
        const std::ptrdiff_t j = (it - row.begin()) + probe;
        if (j < 0 || j >= static_cast<std::ptrdiff_t>(row.size())) {
          continue;
        }
        const Index other = row[j];
        if (other == cell || !rows.isMovableEntry(other) ||
            db.cellWidth(other) != db.cellWidth(cell)) {
          continue;  // only equal-width movable swaps stay legal
        }
        if (rows.rowOf(db.cellY(other)) == rows.rowOf(db.cellY(cell)) &&
            std::abs(db.cellX(other) - db.cellX(cell)) <
                4 * db.rowHeight()) {
          continue;  // near same-row swaps are covered by reordering
        }
        ++tried;
        if (tryCand(other)) {
          tried = opt.maxCandidates;  // move on to next cell
          break;
        }
      }
      if (tried >= opt.maxCandidates) {
        break;
      }
    }
  }
}

/// HPWL of the {cell, other} net union before and after exchanging the
/// two cells' positions (union left in s.nets).
void evalSwap(const Database& db, Index cell, Index other, SwapScratch& s,
              double& before, double& after) {
  const Index pair[2] = {cell, other};
  incidentNetsInto(db, pair, 2, s.nets);
  s.eval.clearOverrides();
  before = s.eval.netsHpwl(s.nets);
  s.eval.setOverride(cell, db.cellX(other), db.cellY(other));
  s.eval.setOverride(other, db.cellX(cell), db.cellY(cell));
  after = s.eval.netsHpwl(s.nets);
  s.eval.clearOverrides();
}

struct SwapProposal {
  bool skip = true;
  double ox = 0;
  Index targetRow = 0;
  // Candidate evals recorded along the frozen-state trajectory, reused in
  // the commit pass as a value memo keyed by the candidate cell.
  std::vector<Index> candOther;
  std::vector<double> candBefore;
  std::vector<double> candAfter;
};

}  // namespace

DetailedPlacerResult DetailedPlacer::run(Database& db) const {
  ScopedTimer timer("dp");
  DetailedPlacerResult result;
  result.initialHpwl = hpwl(db);

  const int w = options_.windowSize;
  DP_ASSERT_MSG(w >= 2 && w <= NetBboxEval::kMaxOverrides,
                "windowSize must be in [2, %d]", NetBboxEval::kMaxOverrides);

  const int pool_threads = currentThreadPool().threads();
  const bool parallel_mode = pool_threads > 1;

  NetBboxCache cache;
  RowIndex rows;

  // Per-worker scratch; worker 0's doubles as the commit-pass evaluator.
  std::vector<ReorderScratch> rscratch;
  std::vector<SwapScratch> sscratch;
  rscratch.reserve(pool_threads);
  sscratch.reserve(pool_threads);
  for (int t = 0; t < pool_threads; ++t) {
    rscratch.emplace_back(db, cache, w);
    sscratch.emplace_back(db, cache);
  }

  std::int64_t reorder_windows = 0, swap_candidates = 0;
  std::int64_t reorder_stale = 0, swap_stale = 0;
  std::int64_t bbox_deltas = 0, bbox_rescans = 0;
  const auto drainEval = [&](NetBboxEval& e) {
    bbox_deltas += e.deltas;
    bbox_rescans += e.rescans;
    e.deltas = 0;
    e.rescans = 0;
  };

  // Commit-pass stamps: cells moved and nets perturbed by commits so far
  // in the current phase (parallel mode only).
  std::vector<char> cell_stamp, net_stamp;
  std::vector<WindowRef> window_refs;
  std::vector<ReorderProposal> rprops;
  std::vector<SwapProposal> sprops;

  double pass_start_hpwl = result.initialHpwl;
  for (int pass = 0; pass < options_.passes; ++pass) {
    rows.build(db);
    cache.build(db);  // ISM (below) moves cells outside the cache's view

    // ---- Intra-row local reordering ------------------------------------
    {
      ScopedTimer t("dp/reorder");
      window_refs.clear();
      for (Index r = 0; r < static_cast<Index>(rows.rows.size()); ++r) {
        const auto& row = rows.rows[r];
        if (static_cast<int>(row.size()) < w) {
          continue;
        }
        for (std::size_t start = 0; start + w <= row.size(); ++start) {
          window_refs.push_back({r, static_cast<Index>(start)});
        }
      }

      if (parallel_mode) {
        rprops.assign(window_refs.size(), {});
        parallelForBlocked(
            "dp/reorder_propose", static_cast<Index>(window_refs.size()), 8,
            [&](Index lo, Index hi, int worker) {
              ReorderScratch& s = rscratch[worker];
              for (Index i = lo; i < hi; ++i) {
                const WindowRef& wr = window_refs[i];
                ReorderProposal& p = rprops[i];
                p.ev = evaluateWindow(db, rows, rows.rows[wr.row], wr.start,
                                      w, s);
                if (p.ev.evaluated) {
                  p.nets = s.nets;
                  if (p.ev.improved) {
                    p.perm.assign(s.bestPerm.begin(), s.bestPerm.end());
                  }
                }
              }
            });
        for (auto& s : rscratch) {
          drainEval(s.eval);
        }
        cell_stamp.assign(db.numCells(), 0);
        net_stamp.assign(db.numNets(), 0);
      }

      ReorderScratch& live = rscratch[0];
      for (std::size_t i = 0; i < window_refs.size(); ++i) {
        std::vector<Index>& row = rows.rows[window_refs[i].row];
        const auto start = static_cast<std::size_t>(window_refs[i].start);
        // Clean = no commit so far touched this window's cells, its right
        // span neighbour, or any net of its union; the proposal then saw
        // exactly the live state and its result is reused verbatim.
        bool clean = parallel_mode;
        if (clean) {
          for (int k = 0; k < w && clean; ++k) {
            clean = !cell_stamp[row[start + k]];
          }
          if (clean && start + w < row.size()) {
            clean = !cell_stamp[row[start + w]];
          }
          if (clean && rprops[i].ev.evaluated) {
            for (Index e : rprops[i].nets) {
              if (net_stamp[e]) {
                clean = false;
                break;
              }
            }
          }
        }
        WindowEval ev;
        const std::vector<Index>* nets = nullptr;
        const std::vector<int>* perm = nullptr;
        if (clean) {
          ev = rprops[i].ev;
          nets = &rprops[i].nets;
          perm = &rprops[i].perm;
        } else {
          if (parallel_mode) {
            ++reorder_stale;
          }
          ev = evaluateWindow(db, rows, row, start, w, live);
          nets = &live.nets;
          perm = &live.bestPerm;
        }
        if (!ev.evaluated) {
          continue;
        }
        ++reorder_windows;
        if (!ev.improved) {
          continue;
        }
        commitWindow(db, cache, row, start, w, *perm, ev.spanXl);
        if (parallel_mode) {
          for (int k = 0; k < w; ++k) {
            cell_stamp[row[start + k]] = 1;
          }
          for (Index e : *nets) {
            net_stamp[e] = 1;
          }
        }
        ++result.reorderMoves;
      }
      drainEval(live.eval);
    }

    // ---- Global swap / relocation ----------------------------------------
    {
      ScopedTimer t("dp/swap");
      rows.build(db);

      if (parallel_mode) {
        sprops.assign(db.numMovable(), {});
        parallelForBlocked(
            "dp/swap_propose", db.numMovable(), 16,
            [&](Index lo, Index hi, int worker) {
              SwapScratch& s = sscratch[worker];
              for (Index cell = lo; cell < hi; ++cell) {
                if (isMovableMacro(db, cell)) {
                  continue;
                }
                SwapProposal& p = sprops[cell];
                const SwapRegion region =
                    computeSwapRegion(db, rows, cell, s);
                p.skip = region.skip;
                p.ox = region.ox;
                p.targetRow = region.targetRow;
                if (region.skip) {
                  continue;
                }
                enumerateSwapCandidates(
                    db, rows, cell, region.ox, region.targetRow, options_,
                    [&](Index other) {
                      double before = 0, after = 0;
                      evalSwap(db, cell, other, s, before, after);
                      p.candOther.push_back(other);
                      p.candBefore.push_back(before);
                      p.candAfter.push_back(after);
                      return after < before - 1e-9;
                    });
              }
            });
        for (auto& s : sscratch) {
          drainEval(s.eval);
        }
        cell_stamp.assign(db.numCells(), 0);
        net_stamp.assign(db.numNets(), 0);
      }

      SwapScratch& live = sscratch[0];
      for (Index cell = 0; cell < db.numMovable(); ++cell) {
        if (isMovableMacro(db, cell)) {
          continue;
        }
        // The region memo is valid when neither the cell nor any of its
        // nets saw a commit: position, medians, and skip state are then
        // unchanged from the propose snapshot.
        bool memo_valid = parallel_mode && !cell_stamp[cell];
        if (memo_valid) {
          for (Index ps = db.cellPinBegin(cell); ps < db.cellPinEnd(cell);
               ++ps) {
            if (net_stamp[db.pinNet(db.cellPinAt(ps))]) {
              memo_valid = false;
              break;
            }
          }
        }
        bool skip;
        double ox;
        Index target_row;
        if (memo_valid) {
          skip = sprops[cell].skip;
          ox = sprops[cell].ox;
          target_row = sprops[cell].targetRow;
        } else {
          if (parallel_mode) {
            ++swap_stale;
          }
          const SwapRegion region = computeSwapRegion(db, rows, cell, live);
          skip = region.skip;
          ox = region.ox;
          target_row = region.targetRow;
        }
        if (skip) {
          continue;
        }
        const SwapProposal* memo = memo_valid ? &sprops[cell] : nullptr;
        enumerateSwapCandidates(
            db, rows, cell, ox, target_row, options_, [&](Index other) {
              ++swap_candidates;
              double before = 0, after = 0;
              bool hit = false;
              if (memo != nullptr && !cell_stamp[other]) {
                for (std::size_t j = 0; j < memo->candOther.size(); ++j) {
                  if (memo->candOther[j] != other) {
                    continue;
                  }
                  // The recorded values are live values iff every net of
                  // the {cell, other} union is unstamped.
                  const Index pair[2] = {cell, other};
                  incidentNetsInto(db, pair, 2, live.nets);
                  bool ok = true;
                  for (Index e : live.nets) {
                    if (net_stamp[e]) {
                      ok = false;
                      break;
                    }
                  }
                  if (ok) {
                    before = memo->candBefore[j];
                    after = memo->candAfter[j];
                    hit = true;
                  }
                  break;
                }
              }
              if (!hit) {
                evalSwap(db, cell, other, live, before, after);
              }
              if (!(after < before - 1e-9)) {
                return false;
              }
              const Coord cx = db.cellX(cell);
              const Coord cy = db.cellY(cell);
              const Coord ox2 = db.cellX(other);
              const Coord oy2 = db.cellY(other);
              db.setCellPosition(cell, ox2, oy2);
              cache.moveCell(db, cell, cx, cy);
              db.setCellPosition(other, cx, cy);
              cache.moveCell(db, other, ox2, oy2);
              // Update row occupancy.
              const Index cell_row = rows.rowOf(db.cellY(other));
              const Index other_row = rows.rowOf(db.cellY(cell));
              std::replace(rows.rows[cell_row].begin(),
                           rows.rows[cell_row].end(), cell, other);
              std::replace(rows.rows[other_row].begin(),
                           rows.rows[other_row].end(), other, cell);
              if (parallel_mode) {
                cell_stamp[cell] = 1;
                cell_stamp[other] = 1;
                const Index pair[2] = {cell, other};
                incidentNetsInto(db, pair, 2, live.nets);
                for (Index e : live.nets) {
                  net_stamp[e] = 1;
                }
              }
              ++result.swapMoves;
              return true;
            });
      }
      drainEval(live.eval);
    }

    // ---- Independent-set matching ----------------------------------------
    if (options_.enableIsm) {
      IsmOptions ism;
      ism.maxSetSize = options_.ismSetSize;
      const IsmResult r = independentSetMatching(db, ism);
      result.ismMoves += r.cellsMoved;
    }

    if (options_.convergenceTolerance > 0) {
      const double pass_end_hpwl = hpwl(db);
      if (pass_start_hpwl - pass_end_hpwl <
          options_.convergenceTolerance * pass_end_hpwl) {
        break;
      }
      pass_start_hpwl = pass_end_hpwl;
    }
  }

  result.finalHpwl = hpwl(db);

  CounterRegistry& reg = currentCounterRegistry();
  reg.add("dp/reorder_windows", reorder_windows);
  reg.add("dp/swap_candidates", swap_candidates);
  reg.add("dp/reorder_moves", result.reorderMoves);
  reg.add("dp/swap_moves", result.swapMoves);
  reg.add("dp/ism_moves", result.ismMoves);
  reg.add("dp/bbox_delta", bbox_deltas);
  reg.add("dp/bbox_rescan", bbox_rescans + cache.maintenanceRescans);
  if (parallel_mode) {
    reg.add("dp/reorder_stale", reorder_stale);
    reg.add("dp/swap_stale", swap_stale);
  }

  logInfo("dp: hpwl %.4e -> %.4e (%.2f%%), %ld reorders, %ld swaps, "
          "%ld ism moves",
          result.initialHpwl, result.finalHpwl,
          result.initialHpwl > 0
              ? 100.0 * (result.finalHpwl - result.initialHpwl) /
                    result.initialHpwl
              : 0.0,
          result.reorderMoves, result.swapMoves, result.ismMoves);
  return result;
}

}  // namespace dreamplace
