#include "dp/detailed_placer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/log.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "dp/independent_set.h"
#include "lg/macro_legalizer.h"

namespace dreamplace {

namespace {

/// Evaluates the HPWL of the given nets with up to two cells' positions
/// overridden (the candidate move), without touching the database.
class DeltaEvaluator {
 public:
  explicit DeltaEvaluator(const Database& db) : db_(db) {}

  void setOverride(int slot, Index cell, Coord x, Coord y) {
    cells_[slot] = cell;
    xs_[slot] = x;
    ys_[slot] = y;
  }
  void clearOverrides() { cells_[0] = cells_[1] = kInvalidIndex; }

  double netsHpwl(const std::vector<Index>& nets) const {
    double total = 0.0;
    for (Index e : nets) {
      const Index begin = db_.netPinBegin(e);
      const Index end = db_.netPinEnd(e);
      if (end - begin < 2) {
        continue;
      }
      double xl = std::numeric_limits<double>::infinity();
      double xh = -xl, yl = xl, yh = -xl;
      for (Index p = begin; p < end; ++p) {
        const Index c = db_.pinCell(p);
        double base_x = db_.cellX(c);
        double base_y = db_.cellY(c);
        if (c == cells_[0]) {
          base_x = xs_[0];
          base_y = ys_[0];
        } else if (c == cells_[1]) {
          base_x = xs_[1];
          base_y = ys_[1];
        }
        const double px = base_x + db_.cellWidth(c) / 2 + db_.pinOffsetX(p);
        const double py = base_y + db_.cellHeight(c) / 2 + db_.pinOffsetY(p);
        xl = std::min(xl, px);
        xh = std::max(xh, px);
        yl = std::min(yl, py);
        yh = std::max(yh, py);
      }
      total += db_.netWeight(e) * ((xh - xl) + (yh - yl));
    }
    return total;
  }

 private:
  const Database& db_;
  Index cells_[2] = {kInvalidIndex, kInvalidIndex};
  Coord xs_[2] = {0, 0};
  Coord ys_[2] = {0, 0};
};

/// Union of the nets incident to the given cells, deduplicated.
std::vector<Index> incidentNets(const Database& db,
                                std::initializer_list<Index> cells) {
  std::vector<Index> nets;
  for (Index c : cells) {
    for (Index s = db.cellPinBegin(c); s < db.cellPinEnd(c); ++s) {
      nets.push_back(db.pinNet(db.cellPinAt(s)));
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

/// Row occupancy: cells of each row sorted by x. Fixed cells (pads,
/// macros) are included as immovable entries so window/swap moves never
/// pack over them.
struct RowIndex {
  std::vector<std::vector<Index>> rows;
  std::vector<char> movableEntry;  ///< Per cell: participates in DP moves.
  Coord rowHeight = 0;
  Coord yBase = 0;

  bool isMovableEntry(Index i) const { return movableEntry[i] != 0; }

  void build(const Database& db) {
    rowHeight = db.rowHeight();
    yBase = db.rows().front().y;
    rows.assign(db.rows().size(), {});
    movableEntry.assign(db.numCells(), 0);
    const auto num_rows = static_cast<Index>(rows.size());
    for (Index i = 0; i < db.numCells(); ++i) {
      // Standard movable cells are DP-movable; fixed cells and movable
      // macros are obstacles spanning every row band they overlap.
      if (db.isMovable(i) && !isMovableMacro(db, i)) {
        movableEntry[i] = 1;
        rows[rowOf(db.cellY(i))].push_back(i);
        continue;
      }
      const Box<Coord> box = db.cellBox(i);
      const Index r0 = rowOf(box.yl + 1e-9);
      const Index r1 = rowOf(box.yh - 1e-9);
      for (Index r = std::max<Index>(0, r0);
           r <= std::min(num_rows - 1, r1); ++r) {
        rows[r].push_back(i);
      }
    }
    for (auto& row : rows) {
      std::sort(row.begin(), row.end(), [&](Index a, Index b) {
        return db.cellX(a) < db.cellX(b);
      });
    }
  }

  Index rowOf(Coord y) const {
    const auto r = static_cast<Index>(std::round((y - yBase) / rowHeight));
    return std::clamp<Index>(r, 0, static_cast<Index>(rows.size()) - 1);
  }
};

/// Free space to the left/right of position `k` in a sorted row (bounded
/// by neighbours or infinity at the ends; fixed obstacles are handled by
/// the conservative "neighbour" bound because legalized placements keep
/// fixed cells out of the movable order — moves are additionally validated
/// against the candidate cell's current span).
struct Gap {
  Coord xl = 0;
  Coord xh = 0;
};

}  // namespace

DetailedPlacerResult DetailedPlacer::run(Database& db) const {
  ScopedTimer timer("dp");
  DetailedPlacerResult result;
  result.initialHpwl = hpwl(db);

  DeltaEvaluator eval(db);
  RowIndex rows;

  double pass_start_hpwl = result.initialHpwl;
  for (int pass = 0; pass < options_.passes; ++pass) {
    rows.build(db);

    // ---- Intra-row local reordering ------------------------------------
    {
      ScopedTimer t("dp/reorder");
      const int w = options_.windowSize;
      std::vector<Index> window(w);
      std::vector<int> perm(w);
      for (auto& row : rows.rows) {
        if (static_cast<int>(row.size()) < w) {
          continue;
        }
        for (size_t start = 0; start + w <= row.size(); ++start) {
          bool has_fixed = false;
          for (int k = 0; k < w; ++k) {
            window[k] = row[start + k];
            has_fixed |= !rows.isMovableEntry(window[k]);
          }
          if (has_fixed) {
            continue;
          }
          // Window span: from first cell's x to the next cell (or +inf);
          // permutations are packed from the span start.
          const Coord span_xl = db.cellX(window[0]);
          Coord span_xh;
          if (start + w < row.size()) {
            span_xh = db.cellX(row[start + w]);
          } else {
            span_xh = std::numeric_limits<Coord>::infinity();
          }
          Coord total_w = 0;
          for (int k = 0; k < w; ++k) {
            total_w += db.cellWidth(window[k]);
          }
          if (span_xl + total_w > span_xh) {
            continue;  // no room to repack (should not happen)
          }
          const std::vector<Index> nets = incidentNets(
              db, {window[0], window[1], window[w - 1]});
          // For w==3 all three are covered above; generalize for w>3.
          std::vector<Index> all_nets = nets;
          if (w > 3) {
            all_nets = incidentNets(db, {window[0], window[1]});
            for (int k = 2; k < w; ++k) {
              auto more = incidentNets(db, {window[k]});
              all_nets.insert(all_nets.end(), more.begin(), more.end());
            }
            std::sort(all_nets.begin(), all_nets.end());
            all_nets.erase(std::unique(all_nets.begin(), all_nets.end()),
                           all_nets.end());
          }

          std::iota(perm.begin(), perm.end(), 0);
          const double base = eval.netsHpwl(all_nets);
          double best = base;
          std::vector<int> best_perm = perm;
          std::vector<Coord> orig_x(w);
          const Coord orig_y = db.cellY(window[0]);
          for (int k = 0; k < w; ++k) {
            orig_x[k] = db.cellX(window[k]);
          }
          // Try all permutations by temporarily committing to the db
          // (cheap: w cells), evaluating, and restoring.
          auto apply_perm = [&](const std::vector<int>& p) {
            Coord x = span_xl;
            for (int k = 0; k < w; ++k) {
              db.setCellPosition(window[p[k]], x, orig_y);
              x += db.cellWidth(window[p[k]]);
            }
          };
          while (std::next_permutation(perm.begin(), perm.end())) {
            apply_perm(perm);
            const double cost = eval.netsHpwl(all_nets);
            if (cost < best - 1e-9) {
              best = cost;
              best_perm = perm;
            }
          }
          if (best < base - 1e-9) {
            apply_perm(best_perm);
            // Keep the row order array consistent.
            std::vector<Index> reordered(w);
            for (int k = 0; k < w; ++k) {
              reordered[k] = window[best_perm[k]];
            }
            for (int k = 0; k < w; ++k) {
              row[start + k] = reordered[k];
            }
            ++result.reorderMoves;
          } else {
            for (int k = 0; k < w; ++k) {
              db.setCellPosition(window[k], orig_x[k], orig_y);
            }
          }
        }
      }
    }

    // ---- Global swap / relocation ----------------------------------------
    {
      ScopedTimer t("dp/swap");
      rows.build(db);
      for (Index cell = 0; cell < db.numMovable(); ++cell) {
        if (isMovableMacro(db, cell)) {
          continue;  // macros are frozen after macro legalization
        }
        // Optimal region: median of the bounding boxes of this cell's nets
        // with the cell itself excluded.
        std::vector<double> lx, hx, ly, hy;
        for (Index s = db.cellPinBegin(cell); s < db.cellPinEnd(cell); ++s) {
          const Index pin = db.cellPinAt(s);
          const Index e = db.pinNet(pin);
          double xl = std::numeric_limits<double>::infinity();
          double xh = -xl, yl = xl, yh = -xl;
          bool any = false;
          for (Index p = db.netPinBegin(e); p < db.netPinEnd(e); ++p) {
            if (db.pinCell(p) == cell) {
              continue;
            }
            any = true;
            xl = std::min(xl, db.pinX(p));
            xh = std::max(xh, db.pinX(p));
            yl = std::min(yl, db.pinY(p));
            yh = std::max(yh, db.pinY(p));
          }
          if (any) {
            lx.push_back(xl);
            hx.push_back(xh);
            ly.push_back(yl);
            hy.push_back(yh);
          }
        }
        if (lx.empty()) {
          continue;
        }
        auto median = [](std::vector<double>& v) {
          std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
          return v[v.size() / 2];
        };
        const double ox = 0.5 * (median(lx) + median(hx));
        const double oy = 0.5 * (median(ly) + median(hy));
        const Index target_row = rows.rowOf(oy - db.rowHeight() / 2);

        // Already close to optimal? Skip.
        if (std::abs(db.cellX(cell) - ox) < db.rowHeight() &&
            rows.rowOf(db.cellY(cell)) == target_row) {
          continue;
        }
        const auto max_row_delta =
            static_cast<Index>(options_.swapRadiusRows);

        const std::vector<Index> my_nets = incidentNets(db, {cell});
        int tried = 0;
        for (Index dr = 0;
             dr <= max_row_delta && tried < options_.maxCandidates; ++dr) {
          for (int sign : {+1, -1}) {
            if (sign < 0 && dr == 0) {
              continue;
            }
            const Index r = target_row + sign * dr;
            if (r < 0 || r >= static_cast<Index>(rows.rows.size())) {
              continue;
            }
            auto& row = rows.rows[r];
            if (row.empty()) {
              continue;
            }
            // Binary search the cell nearest ox.
            auto it = std::lower_bound(
                row.begin(), row.end(), ox, [&](Index a, double v) {
                  return db.cellX(a) < v;
                });
            for (int probe = -1; probe <= 1; ++probe) {
              auto jt = it + probe;
              if (jt < row.begin() || jt >= row.end()) {
                continue;
              }
              const Index other = *jt;
              if (other == cell || !rows.isMovableEntry(other) ||
                  db.cellWidth(other) != db.cellWidth(cell)) {
                continue;  // only equal-width movable swaps stay legal
              }
              if (rows.rowOf(db.cellY(other)) ==
                  rows.rowOf(db.cellY(cell)) &&
                  std::abs(db.cellX(other) - db.cellX(cell)) <
                      4 * db.rowHeight()) {
                continue;  // near same-row swaps are covered by reordering
              }
              ++tried;
              std::vector<Index> nets = my_nets;
              const auto other_nets = incidentNets(db, {other});
              nets.insert(nets.end(), other_nets.begin(), other_nets.end());
              std::sort(nets.begin(), nets.end());
              nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

              eval.clearOverrides();
              const double before = eval.netsHpwl(nets);
              eval.setOverride(0, cell, db.cellX(other), db.cellY(other));
              eval.setOverride(1, other, db.cellX(cell), db.cellY(cell));
              const double after = eval.netsHpwl(nets);
              eval.clearOverrides();
              if (after < before - 1e-9) {
                const Coord cx = db.cellX(cell);
                const Coord cy = db.cellY(cell);
                db.setCellPosition(cell, db.cellX(other), db.cellY(other));
                db.setCellPosition(other, cx, cy);
                // Update row occupancy.
                const Index cell_row = rows.rowOf(db.cellY(other));
                const Index other_row = rows.rowOf(db.cellY(cell));
                std::replace(rows.rows[cell_row].begin(),
                             rows.rows[cell_row].end(), cell, other);
                std::replace(rows.rows[other_row].begin(),
                             rows.rows[other_row].end(), other, cell);
                ++result.swapMoves;
                tried = options_.maxCandidates;  // move on to next cell
                break;
              }
            }
            if (tried >= options_.maxCandidates) {
              break;
            }
          }
        }
      }
    }

    // ---- Independent-set matching ----------------------------------------
    if (options_.enableIsm) {
      IsmOptions ism;
      ism.maxSetSize = options_.ismSetSize;
      const IsmResult r = independentSetMatching(db, ism);
      result.ismMoves += r.cellsMoved;
    }

    if (options_.convergenceTolerance > 0) {
      const double pass_end_hpwl = hpwl(db);
      if (pass_start_hpwl - pass_end_hpwl <
          options_.convergenceTolerance * pass_end_hpwl) {
        break;
      }
      pass_start_hpwl = pass_end_hpwl;
    }
  }

  result.finalHpwl = hpwl(db);
  logInfo("dp: hpwl %.4e -> %.4e (%.2f%%), %ld reorders, %ld swaps, "
          "%ld ism moves",
          result.initialHpwl, result.finalHpwl,
          result.initialHpwl > 0
              ? 100.0 * (result.finalHpwl - result.initialHpwl) /
                    result.initialHpwl
              : 0.0,
          result.reorderMoves, result.swapMoves, result.ismMoves);
  return result;
}

}  // namespace dreamplace
