#include "dp/net_bbox.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace dreamplace {

namespace {

inline void foldPin(NetBboxCache::Box& b, double px, double py) {
  if (px < b.xl) {
    b.xl = px;
    b.nxl = 1;
  } else if (px == b.xl) {
    ++b.nxl;
  }
  if (px > b.xh) {
    b.xh = px;
    b.nxh = 1;
  } else if (px == b.xh) {
    ++b.nxh;
  }
  if (py < b.yl) {
    b.yl = py;
    b.nyl = 1;
  } else if (py == b.yl) {
    ++b.nyl;
  }
  if (py > b.yh) {
    b.yh = py;
    b.nyh = 1;
  } else if (py == b.yh) {
    ++b.nyh;
  }
}

inline NetBboxCache::Box scanNet(const Database& db, Index net) {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  NetBboxCache::Box b{kInfinity, -kInfinity, kInfinity, -kInfinity,
                      0, 0, 0, 0};
  for (Index p = db.netPinBegin(net); p < db.netPinEnd(net); ++p) {
    foldPin(b, db.pinX(p), db.pinY(p));
  }
  return b;
}

}  // namespace

void NetBboxCache::build(const Database& db) {
  boxes_.resize(db.numNets());
  for (Index e = 0; e < db.numNets(); ++e) {
    boxes_[e] = scanNet(db, e);
  }
}

void NetBboxCache::rescanNet(const Database& db, Index net) {
  boxes_[net] = scanNet(db, net);
  ++maintenanceRescans;
}

void NetBboxCache::moveCell(const Database& db, Index cell, Coord oldX,
                            Coord oldY) {
  const Coord halfW = db.cellWidth(cell) / 2;
  const Coord halfH = db.cellHeight(cell) / 2;
  for (Index s = db.cellPinBegin(cell); s < db.cellPinEnd(cell); ++s) {
    const Index pin = db.cellPinAt(s);
    const Index net = db.pinNet(pin);
    // Same arithmetic as Database::pinX/pinY, so equal inputs give equal
    // coordinates bit-for-bit.
    const double oldPx = oldX + halfW + db.pinOffsetX(pin);
    const double oldPy = oldY + halfH + db.pinOffsetY(pin);
    const double newPx = db.pinX(pin);
    const double newPy = db.pinY(pin);
    Box& b = boxes_[net];
    // Remove the old coordinate: a pin that solely held a boundary may
    // shrink the box, which only a rescan can answer exactly.
    if ((oldPx == b.xl && b.nxl <= 1) || (oldPx == b.xh && b.nxh <= 1) ||
        (oldPy == b.yl && b.nyl <= 1) || (oldPy == b.yh && b.nyh <= 1)) {
      rescanNet(db, net);
      continue;
    }
    if (oldPx == b.xl) --b.nxl;
    if (oldPx == b.xh) --b.nxh;
    if (oldPy == b.yl) --b.nyl;
    if (oldPy == b.yh) --b.nyh;
    foldPin(b, newPx, newPy);
  }
}

double NetBboxCache::netsHpwl(const Database& db,
                              const std::vector<Index>& nets) const {
  double total = 0.0;
  for (Index e : nets) {
    total += netHpwl(db, e);
  }
  return total;
}

void NetBboxEval::setOverride(Index cell, Coord x, Coord y) {
  DP_ASSERT_MSG(numOverrides_ < kMaxOverrides,
                "NetBboxEval: more than %d overridden cells", kMaxOverrides);
  cells_[numOverrides_] = cell;
  xs_[numOverrides_] = x;
  ys_[numOverrides_] = y;
  ++numOverrides_;
  movedDirty_ = true;
}

void NetBboxEval::updateOverride(int slot, Coord x, Coord y) {
  DP_ASSERT_MSG(slot >= 0 && slot < numOverrides_,
                "NetBboxEval: updateOverride slot %d out of range", slot);
  xs_[slot] = x;
  ys_[slot] = y;
  if (movedDirty_) {
    return;  // the pending refresh reads xs_/ys_ anyway
  }
  const Index cell = cells_[slot];
  const Coord halfW = db_.cellWidth(cell) / 2;
  const Coord halfH = db_.cellHeight(cell) / 2;
  for (MovedPin& m : moved_) {
    if (m.slot == slot) {
      m.newX = x + halfW + db_.pinOffsetX(m.pin);
      m.newY = y + halfH + db_.pinOffsetY(m.pin);
    }
  }
}

void NetBboxEval::refreshMovedPins() {
  moved_.clear();
  groups_.clear();
  for (int k = 0; k < numOverrides_; ++k) {
    const Index cell = cells_[k];
    const Coord halfW = db_.cellWidth(cell) / 2;
    const Coord halfH = db_.cellHeight(cell) / 2;
    for (Index s = db_.cellPinBegin(cell); s < db_.cellPinEnd(cell); ++s) {
      const Index pin = db_.cellPinAt(s);
      MovedPin m;
      m.net = db_.pinNet(pin);
      m.pin = pin;
      m.slot = k;
      m.newX = xs_[k] + halfW + db_.pinOffsetX(pin);
      m.newY = ys_[k] + halfH + db_.pinOffsetY(pin);
      moved_.push_back(m);
    }
  }
  std::sort(moved_.begin(), moved_.end(),
            [](const MovedPin& a, const MovedPin& b) { return a.net < b.net; });
  // One complement-box scan per distinct touched net: the bbox of the
  // net's pins that do NOT sit on an overridden cell. Positions of the
  // overridden cells never enter it, so it survives updateOverride().
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < moved_.size();) {
    std::size_t j = i;
    while (j < moved_.size() && moved_[j].net == moved_[i].net) {
      ++j;
    }
    NetGroup g;
    g.net = moved_[i].net;
    g.begin = static_cast<std::int32_t>(i);
    g.count = static_cast<std::int32_t>(j - i);
    g.xl = kInfinity;
    g.xh = -kInfinity;
    g.yl = kInfinity;
    g.yh = -kInfinity;
    for (Index p = db_.netPinBegin(g.net); p < db_.netPinEnd(g.net); ++p) {
      const Index c = db_.pinCell(p);
      bool overridden = false;
      for (int k = 0; k < numOverrides_; ++k) {
        if (cells_[k] == c) {
          overridden = true;
          break;
        }
      }
      if (overridden) {
        continue;
      }
      const double px = db_.pinX(p);
      const double py = db_.pinY(p);
      g.xl = std::min(g.xl, px);
      g.xh = std::max(g.xh, px);
      g.yl = std::min(g.yl, py);
      g.yh = std::max(g.yh, py);
    }
    ++rescans;
    groups_.push_back(g);
    i = j;
  }
  movedDirty_ = false;
}

double NetBboxEval::evalGroup(const NetGroup& g) {
  if (db_.netPinEnd(g.net) - db_.netPinBegin(g.net) < 2) {
    return 0.0;
  }
  // Full box = complement box extended by the moved pins' new positions;
  // min/max selection is order-independent, so this equals a full scan
  // bit-for-bit.
  double xl = g.xl, xh = g.xh, yl = g.yl, yh = g.yh;
  const MovedPin* m = moved_.data() + g.begin;
  for (std::int32_t i = 0; i < g.count; ++i) {
    xl = std::min(xl, m[i].newX);
    xh = std::max(xh, m[i].newX);
    yl = std::min(yl, m[i].newY);
    yh = std::max(yh, m[i].newY);
  }
  ++deltas;
  return db_.netWeight(g.net) * ((xh - xl) + (yh - yl));
}

double NetBboxEval::evalUntouched(Index net) {
  if (db_.netPinEnd(net) - db_.netPinBegin(net) < 2) {
    return 0.0;
  }
  const NetBboxCache::Box& b = cache_.box(net);
  ++deltas;
  return db_.netWeight(net) * ((b.xh - b.xl) + (b.yh - b.yl));
}

double NetBboxEval::netsHpwl(const std::vector<Index>& nets) {
  if (movedDirty_) {
    refreshMovedPins();
  }
  double total = 0.0;
  std::size_t cursor = 0;
  for (Index e : nets) {
    while (cursor < groups_.size() && groups_[cursor].net < e) {
      ++cursor;
    }
    if (cursor < groups_.size() && groups_[cursor].net == e) {
      total += evalGroup(groups_[cursor]);
    } else {
      total += evalUntouched(e);
    }
  }
  return total;
}

double NetBboxEval::netHpwl(Index net) {
  if (movedDirty_) {
    refreshMovedPins();
  }
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), net,
      [](const NetGroup& g, Index e) { return g.net < e; });
  if (it != groups_.end() && it->net == net) {
    return evalGroup(*it);
  }
  return evalUntouched(net);
}

}  // namespace dreamplace
