// Independent-set matching (ISM) for detailed placement.
//
// The classic third detailed-placement move (alongside local reordering
// and global swap), and the core batch algorithm of the GPU-DP line of
// work the paper cites as future work (ABCDPlace): pick a set of
// equal-width cells that share no nets (so their costs are independent),
// treat their current locations as slots, and solve the assignment
// problem that places each cell on the slot minimizing its own net cost.
// The Hungarian algorithm returns the jointly optimal permutation; the
// identity permutation is always feasible, so ISM never increases HPWL.
#pragma once

#include <vector>

#include "db/database.h"

namespace dreamplace {

struct IsmOptions {
  int maxSetSize = 24;    ///< Cells per matching problem (O(K^3) solve).
  int maxSetsPerPass = 0; ///< 0 => unlimited.
};

struct IsmResult {
  long setsSolved = 0;
  long cellsMoved = 0;
  double hpwlGain = 0.0;  ///< Positive = improvement.
};

/// One ISM pass over all width classes. Positions in `db` are permuted
/// within each matched set; legality is preserved (slots are the cells'
/// own legal positions).
IsmResult independentSetMatching(Database& db, const IsmOptions& options);

/// Solves the square assignment problem min sum_i cost[i][perm[i]]
/// (Hungarian / Kuhn-Munkres, O(n^3)). Returns the optimal column for
/// each row. Exposed for testing.
std::vector<int> solveAssignment(const std::vector<std::vector<double>>& cost);

}  // namespace dreamplace
