// Detailed placement: incremental refinement of a legal placement.
//
// The paper delegates DP to NTUplace3; this module is the in-repo stand-in
// providing the two classic moves academic detailed placers share:
//  * intra-row local reordering — sliding windows of consecutive cells are
//    exhaustively permuted and re-packed, keeping the best HPWL;
//  * global swap — each cell computes its optimal region (median of its
//    nets' bounding boxes) and tries swapping with an equal-width cell
//    there;
//  * independent-set matching — equal-width, net-disjoint cell sets are
//    jointly re-permuted over their slots via the Hungarian algorithm
//    (dp/independent_set.h).
// All moves preserve legality and are only applied when they strictly
// reduce HPWL, so DP never degrades the solution.
#pragma once

#include "db/database.h"

namespace dreamplace {

struct DetailedPlacerResult {
  double initialHpwl = 0.0;
  double finalHpwl = 0.0;
  long reorderMoves = 0;
  long swapMoves = 0;
  long ismMoves = 0;
};

class DetailedPlacer {
 public:
  struct Options {
    int passes = 3;
    int windowSize = 3;          ///< Cells per reorder window (3 => 6 perms).
    double swapRadiusRows = 10;  ///< Search radius around the optimal region.
    int maxCandidates = 12;      ///< Swap candidates examined per cell.
    /// Stop early once a full pass improves HPWL by less than this
    /// fraction; 0 disables the check (always run `passes` passes).
    double convergenceTolerance = 0.0;
    bool enableIsm = true;        ///< Independent-set matching pass.
    int ismSetSize = 24;
  };

  explicit DetailedPlacer(Options options) : options_(options) {}
  DetailedPlacer() : DetailedPlacer(Options()) {}

  DetailedPlacerResult run(Database& db) const;

 private:
  Options options_;
};

}  // namespace dreamplace
