#include "dp/independent_set.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

#include "common/counters.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "db/metrics.h"
#include "dp/net_bbox.h"
#include "lg/macro_legalizer.h"

namespace dreamplace {

std::vector<int> solveAssignment(
    const std::vector<std::vector<double>>& cost) {
  // Kuhn-Munkres with potentials (the standard O(n^3) formulation using
  // 1-based auxiliary arrays; row 0 / column 0 are sentinels).
  const int n = static_cast<int>(cost.size());
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, std::numeric_limits<double>::infinity());
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = std::numeric_limits<double>::infinity();
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) {
          continue;
        }
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0);
  }
  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] > 0) {
      assignment[p[j] - 1] = j - 1;
    }
  }
  return assignment;
}

namespace {

/// Cost of placing `cell` with lower-left (x, y): sum of its incident
/// nets' HPWL with the cell moved there and everything else in place.
/// Deliberately iterates the cell's pins (a net shared by two of the
/// cell's pins counts twice), matching the original full-scan cost; each
/// per-net value comes from the bbox cache's exact delta/rescan path.
/// The caller establishes `cell` as override slot 0 once per matrix row;
/// updateOverride then skips the moved-pin rebuild per entry.
double moveCost(const Database& db, NetBboxEval& eval, Index cell, Coord x,
                Coord y) {
  eval.updateOverride(0, x, y);
  double total = 0.0;
  for (Index s = db.cellPinBegin(cell); s < db.cellPinEnd(cell); ++s) {
    total += eval.netHpwl(db.pinNet(db.cellPinAt(s)));
  }
  return total;
}

}  // namespace

IsmResult independentSetMatching(Database& db, const IsmOptions& options) {
  ScopedTimer timer("dp/ism");
  IsmResult result;

  // Group movable standard cells by (width, height): equal-footprint
  // cells can exchange slots without perturbing anything else. Movable
  // macros are frozen after macro legalization.
  std::map<std::pair<Coord, Coord>, std::vector<Index>> by_width;
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (!isMovableMacro(db, i)) {
      by_width[{db.cellWidth(i), db.cellHeight(i)}].push_back(i);
    }
  }

  NetBboxCache cache;
  cache.build(db);
  const int pool_threads = currentThreadPool().threads();
  std::vector<NetBboxEval> evals;
  evals.reserve(pool_threads);
  for (int t = 0; t < pool_threads; ++t) {
    evals.emplace_back(db, cache);
  }
  const auto flushCounters = [&]() {
    std::int64_t deltas = 0, rescans = 0;
    for (NetBboxEval& e : evals) {
      deltas += e.deltas;
      rescans += e.rescans;
    }
    CounterRegistry& reg = currentCounterRegistry();
    reg.add("dp/bbox_delta", deltas);
    reg.add("dp/bbox_rescan", rescans + cache.maintenanceRescans);
  };

  std::unordered_set<Index> used_nets;
  std::vector<Index> set;
  for (auto& [footprint, cells] : by_width) {
    if (static_cast<int>(cells.size()) < 2) {
      continue;
    }
    // Scan cells in index order, greedily building maximal independent
    // sets: a cell joins if none of its nets are used by the set yet
    // (net-disjointness makes the assignment costs exact).
    size_t cursor = 0;
    while (cursor < cells.size()) {
      set.clear();
      used_nets.clear();
      for (; cursor < cells.size() &&
             static_cast<int>(set.size()) < options.maxSetSize;
           ++cursor) {
        const Index cell = cells[cursor];
        bool independent = true;
        for (Index s = db.cellPinBegin(cell);
             s < db.cellPinEnd(cell) && independent; ++s) {
          independent = !used_nets.count(db.pinNet(db.cellPinAt(s)));
        }
        if (!independent) {
          continue;  // skipped for this pass (the next pass rescans)
        }
        set.push_back(cell);
        for (Index s = db.cellPinBegin(cell); s < db.cellPinEnd(cell);
             ++s) {
          used_nets.insert(db.pinNet(db.cellPinAt(s)));
        }
      }
      const int k = static_cast<int>(set.size());
      if (k < 2) {
        continue;
      }
      // Cost matrix: cell i at slot j (= cell j's current position). Rows
      // are independent pure reads of the live positions, so they fill in
      // parallel; each entry's value is thread-count-invariant.
      std::vector<std::vector<double>> cost(k, std::vector<double>(k));
      parallelForBlocked(
          "dp/ism_cost", k, 1, [&](Index lo, Index hi, int worker) {
            NetBboxEval& eval = evals[worker];
            for (Index i = lo; i < hi; ++i) {
              eval.clearOverrides();
              eval.setOverride(set[i], db.cellX(set[i]), db.cellY(set[i]));
              for (int j = 0; j < k; ++j) {
                cost[i][j] = moveCost(db, eval, set[i], db.cellX(set[j]),
                                      db.cellY(set[j]));
              }
              eval.clearOverrides();
            }
          });
      double identity_cost = 0.0;
      for (int i = 0; i < k; ++i) {
        identity_cost += cost[i][i];
      }
      const std::vector<int> assignment = solveAssignment(cost);
      double best_cost = 0.0;
      for (int i = 0; i < k; ++i) {
        best_cost += cost[i][assignment[i]];
      }
      ++result.setsSolved;
      if (best_cost < identity_cost - 1e-9) {
        // Apply the permutation, keeping the bbox cache in lockstep so
        // later sets' cost rows stay exact.
        std::vector<std::pair<Coord, Coord>> slots(k);
        for (int j = 0; j < k; ++j) {
          slots[j] = {db.cellX(set[j]), db.cellY(set[j])};
        }
        for (int i = 0; i < k; ++i) {
          if (assignment[i] != i) {
            ++result.cellsMoved;
          }
          db.setCellPosition(set[i], slots[assignment[i]].first,
                             slots[assignment[i]].second);
          cache.moveCell(db, set[i], slots[i].first, slots[i].second);
        }
        result.hpwlGain += identity_cost - best_cost;
      }
      if (options.maxSetsPerPass > 0 &&
          result.setsSolved >= options.maxSetsPerPass) {
        flushCounters();
        return result;
      }
    }
  }
  flushCounters();
  return result;
}

}  // namespace dreamplace
