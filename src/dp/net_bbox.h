// Incremental net-bounding-box cache for the detailed-placement back-end.
//
// Every DP move candidate asks "what is the HPWL of these nets with one or
// a few cells displaced?". The pre-cache evaluator answered by rescanning
// every pin of every incident net per candidate — O(sum of net degrees)
// work that dominates the reorder/swap passes. Two structures remove it:
//
//  * NetBboxCache keeps, per net, the exact bounding box of its pins plus
//    the *multiplicity* of pins on each boundary, updated after every
//    committed move in O(pins of the moved cell) — with an exact per-net
//    rescan only when a move takes away the last pin on a boundary.
//    Un-overridden nets evaluate straight from the cached box.
//  * NetBboxEval answers what-if queries for a fixed set of overridden
//    cells. Establishing the set computes, once, each incident net's
//    *complement box* — the bbox of its pins NOT on an overridden cell.
//    Every candidate evaluation is then a pure min/max fold of the moved
//    pins' new positions onto that box, so trying many positions for the
//    same cell set (reorder permutations, swap candidates, ISM cost rows)
//    costs O(pins of the moved cells) per candidate, never a rescan.
//
// Because min/max over doubles are exact, order-independent selections,
// a complement box extended by the moved pins equals a full rescan
// bit-for-bit — the cache accelerates the back-end without perturbing a
// single result bit, which is what lets the determinism suite keep
// EXPECT_EQ-exact HPWL across thread counts and against the pre-cache
// evaluator.
//
// Counters are accumulated locally (deltas/rescans members) so hot loops
// never touch the registry; callers flush them into dp/bbox_delta and
// dp/bbox_rescan at phase boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.h"

namespace dreamplace {

/// Exact per-net bounding boxes with boundary multiplicities, kept in
/// lockstep with the database by moveCell() calls after each committed
/// move.
class NetBboxCache {
 public:
  struct Box {
    double xl = 0, xh = 0, yl = 0, yh = 0;
    // Number of pins whose coordinate equals the respective boundary.
    std::int32_t nxl = 0, nxh = 0, nyl = 0, nyh = 0;
  };

  /// Rebuilds every net's box from the database's current positions.
  void build(const Database& db);

  /// Updates the boxes of `cell`'s nets after db.setCellPosition(cell, …).
  /// (oldX, oldY) is the position the cell had when the cache last saw it.
  /// Boundary-losing pin moves trigger an exact per-net rescan.
  void moveCell(const Database& db, Index cell, Coord oldX, Coord oldY);

  const Box& box(Index net) const { return boxes_[net]; }

  /// Exact weighted HPWL of one net from the cache (0 for degree < 2,
  /// matching the full-scan evaluator's skip).
  double netHpwl(const Database& db, Index net) const {
    if (db.netPinEnd(net) - db.netPinBegin(net) < 2) {
      return 0.0;
    }
    const Box& b = boxes_[net];
    return db.netWeight(net) * ((b.xh - b.xl) + (b.yh - b.yl));
  }

  /// Sum of netHpwl over `nets`, accumulated in list order (the same
  /// order the full-scan evaluator used, so sums agree bitwise).
  double netsHpwl(const Database& db, const std::vector<Index>& nets) const;

  /// Cache-maintenance rescans performed by moveCell (boundary losses).
  std::int64_t maintenanceRescans = 0;

 private:
  void rescanNet(const Database& db, Index net);

  std::vector<Box> boxes_;
};

/// Candidate-move evaluator over a NetBboxCache: computes net HPWL with up
/// to kMaxOverrides cells' positions overridden, without touching the
/// database or the cache. Each worker of a parallel proposal phase owns
/// one evaluator (it carries scratch and local counters).
class NetBboxEval {
 public:
  static constexpr int kMaxOverrides = 16;

  NetBboxEval(const Database& db, const NetBboxCache& cache)
      : db_(db), cache_(cache) {}

  void clearOverrides() { numOverrides_ = 0; movedDirty_ = true; }
  void setOverride(Index cell, Coord x, Coord y);

  /// Re-positions the override in slot `slot` (0-based, in setOverride
  /// order) without changing the overridden cell set. Evaluation loops
  /// that try many positions for a fixed cell set (reorder permutations,
  /// ISM cost rows) use this to skip the moved-pin rebuild+sort — the
  /// sorted structure depends only on the cells, not their positions.
  void updateOverride(int slot, Coord x, Coord y);

  /// Weighted HPWL of the given nets under the current overrides. `nets`
  /// must be sorted ascending (incident-net unions are); contributions
  /// accumulate in list order.
  double netsHpwl(const std::vector<Index>& nets);

  /// Single-net HPWL under the current overrides (ISM cost loops iterate
  /// a cell's pins directly instead of a deduplicated union).
  double netHpwl(Index net);

  /// Local counters, flushed by the owner at phase end. Every evaluation
  /// is a delta (cached box or complement-box fold); `rescans` counts the
  /// complement-box scans performed when an override set is established.
  std::int64_t deltas = 0;
  std::int64_t rescans = 0;

 private:
  struct MovedPin {
    Index net;
    Index pin;
    std::int32_t slot;  ///< Override slot this pin belongs to.
    double newX, newY;  ///< Pin position under the override.
  };
  /// One net touched by the overrides: its moved pins (a range of
  /// `moved_`) plus the bbox of its un-overridden pins, computed once per
  /// override set and valid across updateOverride() calls.
  struct NetGroup {
    Index net;
    std::int32_t begin, count;
    double xl, xh, yl, yh;
  };

  void refreshMovedPins();
  double evalGroup(const NetGroup& g);
  double evalUntouched(Index net);

  const Database& db_;
  const NetBboxCache& cache_;
  Index cells_[kMaxOverrides];
  Coord xs_[kMaxOverrides];
  Coord ys_[kMaxOverrides];
  int numOverrides_ = 0;
  bool movedDirty_ = true;
  std::vector<MovedPin> moved_;   ///< Sorted by net.
  std::vector<NetGroup> groups_;  ///< One per distinct net in moved_.
};

}  // namespace dreamplace
