// Cross-module property sweeps: invariants that must hold for any seed.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/metrics.h"
#include "dp/detailed_placer.h"
#include "gen/netlist_generator.h"
#include "gp/global_placer.h"
#include "lg/abacus_legalizer.h"
#include "lg/greedy_legalizer.h"
#include "ops/density_op.h"
#include "ops/wirelength.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

// ---------------------------------------------------------------------------
// Full flow legality + monotonicity, swept over seeds and utilizations.
// ---------------------------------------------------------------------------

class FlowPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FlowPropertyTest, FlowInvariantsHold) {
  const auto [seed, utilization] = GetParam();
  GeneratorConfig cfg;
  cfg.numCells = 400;
  cfg.utilization = utilization;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto db = generateNetlist(cfg);

  PlacerOptions options;
  options.gp.maxIterations = 400;
  options.gp.binsMax = 64;
  options.dp.passes = 1;
  const FlowResult result = placeDesign(*db, options);

  // Invariant 1: the final placement is legal.
  const auto report = checkLegality(*db);
  EXPECT_TRUE(report.legal) << report.summary();
  // Invariant 2: DP never increases HPWL over LG.
  EXPECT_LE(result.hpwl, result.hpwlLegal + 1e-6);
  // Invariant 3: committed DB HPWL equals the reported one.
  EXPECT_NEAR(hpwl(*db), result.hpwl, 1e-9 * result.hpwl);
  // Invariant 4: overflow ended below a loose bound.
  EXPECT_LT(result.overflow, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndUtilizations, FlowPropertyTest,
    ::testing::Combine(::testing::Values(201, 202, 203, 204, 205),
                       ::testing::Values(0.5, 0.7, 0.85)));

// ---------------------------------------------------------------------------
// Legalization displacement is bounded and legality holds across seeds.
// ---------------------------------------------------------------------------

class LegalizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LegalizerPropertyTest, AbacusLegalAndBounded) {
  const int seed = GetParam();
  GeneratorConfig cfg;
  cfg.numCells = 400;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto db = generateNetlist(cfg);
  Rng rng(seed);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(i,
                        rng.uniform(die.xl, die.xh - db->cellWidth(i)),
                        rng.uniform(die.yl, die.yh - db->cellHeight(i)));
  }
  const auto result = AbacusLegalizer().run(*db);
  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(checkLegality(*db).legal);
  // From a random-uniform start, average displacement should stay within
  // a couple of row heights (Abacus is a minimal-movement method).
  EXPECT_LT(result.totalDisplacement / db->numMovable(),
            4.0 * db->rowHeight());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizerPropertyTest,
                         ::testing::Range(301, 309));

// ---------------------------------------------------------------------------
// Wirelength-op sandwich property: WA <= HPWL <= LSE for any placement.
// ---------------------------------------------------------------------------

class WirelengthSandwichTest : public ::testing::TestWithParam<int> {};

TEST_P(WirelengthSandwichTest, WaBelowHpwlBelowLse) {
  const int seed = GetParam();
  GeneratorConfig cfg;
  cfg.numCells = 150;
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto db = generateNetlist(cfg);
  const Index n = db->numMovable();
  WaWirelengthOp<double> wa(*db, n);
  LseWirelengthOp<double> lse(*db, n);
  std::vector<double> params(2 * static_cast<size_t>(n));
  Rng rng(seed + 5000);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < n; ++i) {
    params[i] = rng.uniform(die.xl, die.xh);
    params[i + n] = rng.uniform(die.yl, die.yh);
  }
  std::vector<double> g(params.size());
  for (double gamma : {1.0, 4.0, 16.0}) {
    wa.setGamma(gamma);
    lse.setGamma(gamma);
    const double v_wa = wa.evaluate(params, g);
    const double v_lse = lse.evaluate(params, g);
    const double v_hpwl = wa.hpwl(params);
    EXPECT_LE(v_wa, v_hpwl + 1e-6) << "gamma " << gamma;
    EXPECT_GE(v_lse, v_hpwl - 1e-6) << "gamma " << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WirelengthSandwichTest,
                         ::testing::Range(401, 407));

// ---------------------------------------------------------------------------
// Density scatter conservation for arbitrary node soups (cells fully
// inside the grid): map mass equals total area for any strategy.
// ---------------------------------------------------------------------------

class DensityConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(DensityConservationTest, MassConserved) {
  const int seed = GetParam();
  Rng rng(seed);
  DensityGrid<double> grid;
  grid.mx = 32;
  grid.my = 32;
  grid.xl = 0;
  grid.yl = 0;
  grid.binW = 4;
  grid.binH = 4;
  const int n = 60;
  std::vector<double> w(n), h(n), x(n), y(n);
  double total_area = 0;
  for (int i = 0; i < n; ++i) {
    w[i] = rng.uniform(0.5, 20.0);
    h[i] = rng.uniform(0.5, 20.0);
    // Keep the smoothed footprint (>= sqrt2*bin) inside the region.
    const double margin = std::max({w[i], h[i], M_SQRT2 * 4.0}) / 2 + 1;
    x[i] = rng.uniform(margin, 128 - margin);
    y[i] = rng.uniform(margin, 128 - margin);
    total_area += w[i] * h[i];
  }
  for (auto kernel : {DensityKernel::kNaive, DensityKernel::kSorted}) {
    DensityMapBuilder<double>::Options options;
    options.kernel = kernel;
    options.subdivision = (seed % 3) + 1;
    DensityMapBuilder<double> builder(grid, w, h, options);
    std::vector<double> map(32 * 32, 0.0);
    builder.scatter(x.data(), y.data(), 0, n, map);
    double mass = 0;
    for (double d : map) {
      mass += d;
    }
    EXPECT_NEAR(mass * grid.binArea(), total_area, 1e-6 * total_area);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityConservationTest,
                         ::testing::Range(501, 507));

// ---------------------------------------------------------------------------
// Determinism of the whole flow across repeated runs (paper future work:
// run-to-run determinism; single-threaded runs must be bit-identical).
// ---------------------------------------------------------------------------

TEST(DeterminismPropertyTest, RepeatedFlowsBitIdentical) {
  for (int seed : {601, 602}) {
    GeneratorConfig cfg;
    cfg.numCells = 300;
    cfg.seed = static_cast<std::uint64_t>(seed);
    PlacerOptions options;
    options.gp.maxIterations = 300;
    options.gp.binsMax = 32;
    auto db1 = generateNetlist(cfg);
    auto db2 = generateNetlist(cfg);
    placeDesign(*db1, options);
    placeDesign(*db2, options);
    for (Index i = 0; i < db1->numMovable(); ++i) {
      ASSERT_EQ(db1->cellX(i), db2->cellX(i)) << "seed " << seed;
      ASSERT_EQ(db1->cellY(i), db2->cellY(i)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dreamplace
