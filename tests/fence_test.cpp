#include <gtest/gtest.h>

#include "gen/netlist_generator.h"
#include "gp/global_placer.h"
#include "ops/fence_density_op.h"

namespace dreamplace {
namespace {

/// Design with two fences on the left/right thirds of the die; every third
/// cell goes to fence 1, every third+1 to fence 2, rest default.
struct FenceSetup {
  std::unique_ptr<Database> db;
  std::vector<FenceRegion> fences;
  std::vector<int> cellGroup;
};

FenceSetup makeSetup(Index cells = 500, std::uint64_t seed = 77) {
  FenceSetup setup;
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.utilization = 0.5;  // fences need headroom
  cfg.seed = seed;
  setup.db = generateNetlist(cfg);
  const Box<Coord>& die = setup.db->dieArea();
  const double w3 = die.width() / 3.0;
  setup.fences.push_back({{die.xl, die.yl, die.xl + w3, die.yh}});
  setup.fences.push_back({{die.xh - w3, die.yl, die.xh, die.yh}});
  setup.cellGroup.resize(setup.db->numMovable());
  for (Index i = 0; i < setup.db->numMovable(); ++i) {
    setup.cellGroup[i] = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 2 : 0;
  }
  return setup;
}

TEST(AssignFillerGroupsTest, CoversAllNodesAndGroups) {
  FenceSetup setup = makeSetup(300);
  const Index fillers = 100;
  const auto groups = assignFillerGroups(*setup.db, setup.cellGroup,
                                         setup.fences, fillers);
  ASSERT_EQ(static_cast<Index>(groups.size()),
            setup.db->numMovable() + fillers);
  int counts[3] = {0, 0, 0};
  for (size_t i = setup.db->numMovable(); i < groups.size(); ++i) {
    ASSERT_GE(groups[i], 0);
    ASSERT_LE(groups[i], 2);
    ++counts[groups[i]];
  }
  // Each fence covers a third of the die; fillers should land in every
  // group.
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(FenceDensityOpTest, GradientPushesIntrudersTowardTheirFence) {
  FenceSetup setup = makeSetup(200);
  Database& db = *setup.db;
  const auto grid = makeGrid<double>(db.dieArea(), db.numMovable(), 16, 32);
  std::vector<double> nodeW, nodeH;
  DensityOp<double>::makeNodeSizes(db, {}, {}, nodeW, nodeH);
  std::vector<int> groups(setup.cellGroup);
  FenceDensityOp<double> op(db, grid, setup.fences, groups, nodeW, nodeH);

  // Park every cell at the die center (outside both fences).
  const Index n = op.numNodes();
  std::vector<double> params(2 * static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    params[i] = db.dieArea().centerX();
    params[i + n] = db.dieArea().centerY();
  }
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);
  // Fence-1 cells (left third) must feel a net force to the left
  // (negative x), fence-2 cells to the right: the descending direction is
  // -grad, so grad must be positive for group 1, negative for group 2.
  double g1 = 0, g2 = 0;
  int n1 = 0, n2 = 0;
  for (Index i = 0; i < db.numMovable(); ++i) {
    if (setup.cellGroup[i] == 1) {
      g1 += grad[i];
      ++n1;
    } else if (setup.cellGroup[i] == 2) {
      g2 += grad[i];
      ++n2;
    }
  }
  ASSERT_GT(n1, 0);
  ASSERT_GT(n2, 0);
  EXPECT_GT(g1 / n1, 0.0);
  EXPECT_LT(g2 / n2, 0.0);
}

TEST(FenceDensityOpTest, NodeGeometryAccessors) {
  FenceSetup setup = makeSetup(100);
  Database& db = *setup.db;
  const auto grid = makeGrid<double>(db.dieArea(), db.numMovable(), 16, 32);
  std::vector<double> nodeW, nodeH;
  DensityOp<double>::makeNodeSizes(db, {}, {}, nodeW, nodeH);
  FenceDensityOp<double> op(db, grid, setup.fences, setup.cellGroup, nodeW,
                            nodeH);
  for (Index i = 0; i < db.numMovable(); i += 13) {
    EXPECT_GE(op.nodeWidth(i), db.cellWidth(i) - 1e-9);
    EXPECT_GE(op.nodeHeight(i), db.cellHeight(i) - 1e-9);
    EXPECT_NEAR(op.nodeArea(i), db.cellArea(i), 1e-6 * db.cellArea(i));
    EXPECT_EQ(op.nodeGroup(i), setup.cellGroup[i]);
  }
}

TEST(FenceGlobalPlacerTest, CellsEndUpInsideTheirFences) {
  FenceSetup setup = makeSetup(400, 81);
  Database& db = *setup.db;
  GlobalPlacerOptions options;
  options.maxIterations = 400;
  options.binsMax = 32;
  options.fences = setup.fences;
  options.cellFence = setup.cellGroup;
  GlobalPlacer<double> placer(db, options);
  const auto result = placer.run();
  EXPECT_TRUE(std::isfinite(result.hpwl));

  Index violations = 0;
  for (Index i = 0; i < db.numMovable(); ++i) {
    const int g = setup.cellGroup[i];
    if (g == 0) {
      continue;
    }
    const Box<Coord>& fence = setup.fences[g - 1].box;
    const double cx = db.cellX(i) + db.cellWidth(i) / 2;
    const double cy = db.cellY(i) + db.cellHeight(i) / 2;
    if (!fence.contains(cx, cy)) {
      ++violations;
    }
  }
  // The projection clamps every member into its fence each iteration, so
  // there must be no violations at all.
  EXPECT_EQ(violations, 0);
}

TEST(FenceGlobalPlacerTest, QualityComparableToUnfenced) {
  // Fencing constrains the solution; HPWL should degrade but stay within
  // a sane factor of the unconstrained run on the same design.
  FenceSetup setup = makeSetup(400, 83);
  auto unfenced_db = generateNetlist([&] {
    GeneratorConfig cfg;
    cfg.numCells = 400;
    cfg.utilization = 0.5;
    cfg.seed = 83;
    return cfg;
  }());
  GlobalPlacerOptions base;
  base.maxIterations = 400;
  base.binsMax = 32;
  GlobalPlacer<double> plain(*unfenced_db, base);
  const auto r_plain = plain.run();

  GlobalPlacerOptions fenced = base;
  fenced.fences = setup.fences;
  fenced.cellFence = setup.cellGroup;
  GlobalPlacer<double> placer(*setup.db, fenced);
  const auto r_fenced = placer.run();
  EXPECT_LT(r_fenced.hpwl, 4.0 * r_plain.hpwl);
  EXPECT_GT(r_fenced.hpwl, r_plain.hpwl * 0.9);
}

}  // namespace
}  // namespace dreamplace
