#include <gtest/gtest.h>

#include <cmath>

#include "common/counters.h"
#include "common/rng.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "ops/wirelength.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> smallDesign(Index cells = 120,
                                      std::uint64_t seed = 21) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numPads = 8;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

/// Center-coordinate parameter vector from the database positions.
template <typename T>
std::vector<T> centerParams(const Database& db, Index numNodes) {
  std::vector<T> params(2 * static_cast<size_t>(numNodes), T(0));
  for (Index i = 0; i < db.numMovable(); ++i) {
    params[i] = static_cast<T>(db.cellX(i) + db.cellWidth(i) / 2);
    params[i + numNodes] =
        static_cast<T>(db.cellY(i) + db.cellHeight(i) / 2);
  }
  return params;
}

class WaKernelTest : public ::testing::TestWithParam<WirelengthKernel> {};

TEST_P(WaKernelTest, MatchesMergedKernel) {
  auto db = smallDesign();
  const Index n = db->numMovable();
  WaWirelengthOp<double>::Options merged_opts;
  merged_opts.kernel = WirelengthKernel::kMerged;
  WaWirelengthOp<double> merged(*db, n, merged_opts);
  WaWirelengthOp<double>::Options opts;
  opts.kernel = GetParam();
  WaWirelengthOp<double> other(*db, n, opts);
  merged.setGamma(4.0);
  other.setGamma(4.0);

  auto params = centerParams<double>(*db, n);
  std::vector<double> g1(params.size()), g2(params.size());
  const double v1 = merged.evaluate(params, g1);
  const double v2 = other.evaluate(params, g2);
  EXPECT_NEAR(v2, v1, 1e-9 * std::abs(v1));
  for (size_t i = 0; i < g1.size(); ++i) {
    ASSERT_NEAR(g2[i], g1[i], 1e-9 * (1.0 + std::abs(g1[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, WaKernelTest,
                         ::testing::Values(WirelengthKernel::kNetByNet,
                                           WirelengthKernel::kAtomic,
                                           WirelengthKernel::kMerged));

TEST_P(WaKernelTest, GradientMatchesFiniteDifference) {
  auto db = smallDesign(60, 5);
  const Index n = db->numMovable();
  WaWirelengthOp<double>::Options opts;
  opts.kernel = GetParam();
  WaWirelengthOp<double> op(*db, n, opts);
  op.setGamma(6.0);

  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);

  Rng rng(3);
  std::vector<double> scratch(params.size());
  const double h = 1e-5;
  for (int trial = 0; trial < 25; ++trial) {
    const size_t i = rng.uniformInt(static_cast<std::uint32_t>(params.size()));
    auto plus = params;
    auto minus = params;
    plus[i] += h;
    minus[i] -= h;
    const double fp = op.evaluate(plus, scratch);
    const double fm = op.evaluate(minus, scratch);
    const double numeric = (fp - fm) / (2 * h);
    ASSERT_NEAR(grad[i], numeric, 1e-4 * (1.0 + std::abs(numeric)))
        << "param " << i;
  }
}

TEST(WaWirelengthTest, ApproachesHpwlAsGammaShrinks) {
  auto db = smallDesign();
  const Index n = db->numMovable();
  WaWirelengthOp<double> op(*db, n);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());
  const double exact = op.hpwl(params);

  double prev_err = std::numeric_limits<double>::infinity();
  for (double gamma : {32.0, 8.0, 2.0, 0.5}) {
    op.setGamma(gamma);
    const double wa = op.evaluate(params, grad);
    const double err = std::abs(wa - exact);
    EXPECT_LT(err, prev_err * 1.001) << "gamma " << gamma;
    prev_err = err;
  }
  // At the sharpest gamma, WA should be within 2% of HPWL.
  EXPECT_LT(prev_err, 0.02 * exact);
}

TEST(WaWirelengthTest, WaIsLowerBoundOnHpwl) {
  // WA underestimates HPWL (weighted average is inside the extrema).
  auto db = smallDesign(80, 9);
  const Index n = db->numMovable();
  WaWirelengthOp<double> op(*db, n);
  op.setGamma(10.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());
  EXPECT_LE(op.evaluate(params, grad), op.hpwl(params) + 1e-9);
}

TEST(WaWirelengthTest, HpwlMatchesMetrics) {
  auto db = smallDesign();
  const Index n = db->numMovable();
  WaWirelengthOp<double> op(*db, n);
  auto params = centerParams<double>(*db, n);
  EXPECT_NEAR(op.hpwl(params), hpwl(*db), 1e-6 * hpwl(*db));
}

TEST(WaWirelengthTest, FillerNodesGetZeroGradient) {
  auto db = smallDesign();
  const Index n = db->numMovable() + 50;  // 50 fillers
  WaWirelengthOp<double> op(*db, n);
  op.setGamma(4.0);
  std::vector<double> params(2 * static_cast<size_t>(n), 0.0);
  auto base = centerParams<double>(*db, db->numMovable());
  const Index m = db->numMovable();
  std::copy(base.begin(), base.begin() + m, params.begin());
  std::copy(base.begin() + m, base.end(), params.begin() + n);
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);
  for (Index i = m; i < n; ++i) {
    EXPECT_EQ(grad[i], 0.0);
    EXPECT_EQ(grad[i + n], 0.0);
  }
}

TEST(WaWirelengthTest, IgnoreNetDegreeSkipsHugeNets) {
  auto db = smallDesign(200, 31);
  const Index n = db->numMovable();
  WaWirelengthOp<double>::Options all_opts;
  WaWirelengthOp<double> all(*db, n, all_opts);
  WaWirelengthOp<double>::Options cut_opts;
  cut_opts.ignoreNetDegree = 10;
  WaWirelengthOp<double> cut(*db, n, cut_opts);
  all.setGamma(4.0);
  cut.setGamma(4.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> g(params.size());
  const double v_all = all.evaluate(params, g);
  const double v_cut = cut.evaluate(params, g);
  EXPECT_LT(v_cut, v_all);  // generator always makes some high-fanout nets
}

TEST(WaWirelengthTest, PerNetGradientConservation) {
  // The WA gradient of one net sums to zero over its pins (translation
  // invariance of the net cost), so on a design where a net is entirely
  // movable and each of its cells carries only that net, the cells'
  // gradients cancel. Build exactly that: a 3-pin net on 3 fresh cells.
  Database db;
  const Index a = db.addCell("a", 2, 12, true);
  const Index b = db.addCell("b", 2, 12, true);
  const Index c = db.addCell("c", 2, 12, true);
  const Index net = db.addNet("n");
  db.addPin(net, a, 0, 0);
  db.addPin(net, b, 0.3, 0);
  db.addPin(net, c, -0.2, 0);
  db.setDieArea({0, 0, 100, 48});
  for (int r = 0; r < 4; ++r) {
    db.addRow({static_cast<Coord>(r * 12), 12, 0, 100, 1});
  }
  db.setCellPosition(a, 10, 0);
  db.setCellPosition(b, 40, 12);
  db.setCellPosition(c, 70, 24);
  db.finalize();

  WaWirelengthOp<double> op(db, db.numMovable());
  op.setGamma(3.0);
  auto params = centerParams<double>(db, db.numMovable());
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);
  EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0, 1e-12);
  EXPECT_NEAR(grad[3] + grad[4] + grad[5], 0.0, 1e-12);

  // And repeated evaluation is deterministic.
  std::vector<double> grad2(params.size());
  const double v1 = op.evaluate(params, grad);
  const double v2 = op.evaluate(params, grad2);
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_EQ(grad, grad2);
}

TEST(WaWirelengthTest, PinScratchAllocatesOnce) {
  // The per-pin gradient scratch is member workspace: the first
  // evaluate() allocates it, every later call reuses it. The counter
  // registry is the witness (deltas, since other tests in this binary
  // also exercise the kernels).
  auto& registry = CounterRegistry::instance();
  const auto allocs0 = registry.value("ops/wirelength/scratch_alloc");
  const auto reuses0 = registry.value("ops/wirelength/scratch_reuse");

  auto db = smallDesign(90, 13);
  const Index n = db->numMovable();
  WaWirelengthOp<double>::Options opts;
  opts.kernel = WirelengthKernel::kAtomic;
  WaWirelengthOp<double> op(*db, n, opts);
  op.setGamma(4.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());

  constexpr int kEvals = 8;
  for (int i = 0; i < kEvals; ++i) {
    op.evaluate(params, grad);
  }
  EXPECT_EQ(registry.value("ops/wirelength/scratch_alloc") - allocs0, 1);
  EXPECT_EQ(registry.value("ops/wirelength/scratch_reuse") - reuses0,
            kEvals - 1);
}

TEST(WaWirelengthTest, KernelSwitchReusesWorkspace) {
  // The net-by-net and atomic strategies share one intermediate
  // workspace, sized up front to the larger (net-by-net) footprint, so
  // alternating strategies on one op allocates once and then reuses —
  // no reallocation churn from the size mismatch (2*numPins vs numPins).
  auto& registry = CounterRegistry::instance();
  const auto allocs0 = registry.value("ops/wirelength/kernel_ws_alloc");
  const auto reuses0 = registry.value("ops/wirelength/kernel_ws_reuse");

  auto db = smallDesign(90, 17);
  const Index n = db->numMovable();
  WaWirelengthOp<double>::Options opts;
  opts.kernel = WirelengthKernel::kNetByNet;
  WaWirelengthOp<double> op(*db, n, opts);
  op.setGamma(4.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());

  // Alternate the two strategies that materialize intermediates: the
  // atomic passes fit inside the net-by-net footprint, so the switch
  // must hit the reuse path every time after the first evaluate.
  constexpr int kEvals = 6;
  for (int i = 0; i < kEvals; ++i) {
    op.setKernel(i % 2 == 0 ? WirelengthKernel::kNetByNet
                            : WirelengthKernel::kAtomic);
    op.evaluate(params, grad);
  }
  EXPECT_EQ(registry.value("ops/wirelength/kernel_ws_alloc") - allocs0, 1);
  EXPECT_EQ(registry.value("ops/wirelength/kernel_ws_reuse") - reuses0,
            kEvals - 1);
}

TEST(WaWirelengthTest, TopologyViewIsConsistent) {
  // All three kernels and the HPWL path consume the same NetTopologyView;
  // its CSR invariants are what make that sharing sound.
  auto db = smallDesign(70, 29);
  const Index n = db->numMovable();
  WaWirelengthOp<double> op(*db, n);
  const NetTopologyView<double> topo = op.topology();
  EXPECT_EQ(topo.numNets(), db->numNets());
  EXPECT_EQ(topo.netStart[0], 0);
  EXPECT_EQ(topo.netStart[topo.numNets()], topo.numPins());
  for (Index e = 0; e < topo.numNets(); ++e) {
    EXPECT_LE(topo.netBegin(e), topo.netEnd(e));
    EXPECT_EQ(topo.netDegree(e), topo.netEnd(e) - topo.netBegin(e));
    for (Index p = topo.netBegin(e); p < topo.netEnd(e); ++p) {
      EXPECT_EQ(topo.pinNet[p], e);
      const Index node = topo.pinNode[p];
      EXPECT_TRUE(node == kInvalidIndex || (node >= 0 && node < n));
    }
  }
}

TEST(LseWirelengthTest, UpperBoundsHpwl) {
  // LSE overestimates HPWL.
  auto db = smallDesign(80, 17);
  const Index n = db->numMovable();
  LseWirelengthOp<double> lse(*db, n);
  WaWirelengthOp<double> wa(*db, n);
  lse.setGamma(5.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());
  EXPECT_GE(lse.evaluate(params, grad) + 1e-9, wa.hpwl(params));
}

TEST(LseWirelengthTest, GradientMatchesFiniteDifference) {
  auto db = smallDesign(50, 19);
  const Index n = db->numMovable();
  LseWirelengthOp<double> op(*db, n);
  op.setGamma(7.0);
  auto params = centerParams<double>(*db, n);
  std::vector<double> grad(params.size());
  op.evaluate(params, grad);
  std::vector<double> scratch(params.size());
  Rng rng(4);
  const double h = 1e-5;
  for (int trial = 0; trial < 20; ++trial) {
    const size_t i = rng.uniformInt(static_cast<std::uint32_t>(params.size()));
    auto plus = params;
    auto minus = params;
    plus[i] += h;
    minus[i] -= h;
    const double numeric =
        (op.evaluate(plus, scratch) - op.evaluate(minus, scratch)) / (2 * h);
    ASSERT_NEAR(grad[i], numeric, 1e-4 * (1.0 + std::abs(numeric)));
  }
}

TEST(WirelengthFloatTest, Float32TracksFloat64) {
  auto db = smallDesign(100, 23);
  const Index n = db->numMovable();
  WaWirelengthOp<double> op64(*db, n);
  WaWirelengthOp<float> op32(*db, n);
  op64.setGamma(5.0);
  op32.setGamma(5.0);
  auto p64 = centerParams<double>(*db, n);
  std::vector<float> p32(p64.begin(), p64.end());
  std::vector<double> g64(p64.size());
  std::vector<float> g32(p32.size());
  const double v64 = op64.evaluate(p64, g64);
  const double v32 = op32.evaluate(p32, g32);
  EXPECT_NEAR(v32, v64, 1e-3 * std::abs(v64));
}

}  // namespace
}  // namespace dreamplace
