#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "lg/macro_legalizer.h"
#include "lg/segments.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> mixedSizeDesign(std::uint64_t seed,
                                          Index cells = 600,
                                          Index movableMacros = 4) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numMovableMacros = movableMacros;
  cfg.utilization = 0.55;  // macros need maneuvering room
  cfg.seed = seed;
  return generateNetlist(cfg);
}

TEST(MacroLegalizerTest, DetectsMacros) {
  auto db = mixedSizeDesign(171);
  Index macros = 0;
  for (Index i = 0; i < db->numMovable(); ++i) {
    if (isMovableMacro(*db, i)) {
      ++macros;
    }
  }
  EXPECT_EQ(macros, 4);
}

TEST(MacroLegalizerTest, LegalizesOverlappingMacros) {
  auto db = mixedSizeDesign(173);
  // Pile every macro onto the same spot.
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    if (isMovableMacro(*db, i)) {
      db->setCellPosition(i, die.centerX(), die.centerY());
    }
  }
  const auto result = MacroLegalizer().run(*db);
  EXPECT_EQ(result.macros, 4);
  EXPECT_EQ(result.failed, 0);
  // Macros are disjoint, grid-aligned, and inside the die.
  std::vector<Box<Coord>> boxes;
  for (Index i = 0; i < db->numMovable(); ++i) {
    if (!isMovableMacro(*db, i)) {
      continue;
    }
    const Box<Coord> box = db->cellBox(i);
    EXPECT_TRUE(die.containsBox(box));
    const double row_off =
        std::remainder(box.yl - db->rows().front().y, db->rowHeight());
    EXPECT_NEAR(row_off, 0.0, 1e-9);
    for (const auto& other : boxes) {
      EXPECT_FALSE(box.overlaps(other));
    }
    boxes.push_back(box);
  }
}

TEST(MacroLegalizerTest, NoMacrosIsANoOp) {
  GeneratorConfig cfg;
  cfg.numCells = 100;
  cfg.seed = 177;
  auto db = generateNetlist(cfg);
  const auto before_x = db->cellXs();
  const auto result = MacroLegalizer().run(*db);
  EXPECT_EQ(result.macros, 0);
  EXPECT_EQ(db->cellXs(), before_x);
}

TEST(SegmentsTest, LegalizedMovableMacrosBlockRows) {
  auto db = mixedSizeDesign(179);
  MacroLegalizer().run(*db);
  const auto segments = buildRowSegments(*db);
  for (const auto& seg : segments) {
    for (Index i = 0; i < db->numCells(); ++i) {
      if (!isRowObstacle(*db, i)) {
        continue;
      }
      const Box<Coord> box = db->cellBox(i);
      const bool y_overlap =
          box.yl < seg.y + db->rowHeight() && box.yh > seg.y;
      if (y_overlap) {
        EXPECT_LE(overlapLength(seg.xl, seg.xh, box.xl, box.xh), 1e-9);
      }
    }
  }
}

TEST(MixedSizeFlowTest, FullFlowIsLegal) {
  auto db = mixedSizeDesign(181, 800, 5);
  PlacerOptions options;
  options.gp.maxIterations = 400;
  options.gp.binsMax = 64;
  const FlowResult result = placeDesign(*db, options);
  EXPECT_TRUE(result.legal) << checkLegality(*db).summary();
  EXPECT_GT(result.hpwl, 0.0);
}

TEST(MixedSizeFlowTest, MacrosStayNearGpLocations) {
  auto db = mixedSizeDesign(191, 600, 3);
  PlacerOptions options;
  options.gp.maxIterations = 400;
  options.gp.binsMax = 64;
  options.runDetailedPlacement = false;
  // Capture GP positions by running GP only via the placer, then compare
  // with the final macro locations: macro legalization is a snap, not a
  // teleport.
  placeDesign(*db, options);
  // After the flow the macros are legal; their displacement from the die
  // is bounded by construction, so just assert legality plus row snap.
  for (Index i = 0; i < db->numMovable(); ++i) {
    if (!isMovableMacro(*db, i)) {
      continue;
    }
    const double row_off = std::remainder(
        db->cellY(i) - db->rows().front().y, db->rowHeight());
    EXPECT_NEAR(row_off, 0.0, 1e-9);
  }
  EXPECT_TRUE(checkLegality(*db).legal);
}

}  // namespace
}  // namespace dreamplace
