// Pins the profiler invariants documented in common/timer.h: per-key call
// counts, self vs inclusive time from the thread-local scope stack, the
// root-time percentage denominator, and thread-safe accumulation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/timer.h"

namespace dreamplace {
namespace {

TimingRegistry& registry() { return TimingRegistry::instance(); }

/// Burns wall-clock time without sleeping (sleep granularity is coarse
/// and flaky under load; a spin against steady_clock is exact enough).
void spinFor(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < seconds) {
  }
}

TEST(ProfilerTest, CountsAccumulatePerKey) {
  registry().clear();
  for (int i = 0; i < 5; ++i) {
    ScopedTimer t("prof/count");
  }
  EXPECT_EQ(registry().count("prof/count"), 5);
  EXPECT_EQ(registry().count("prof/absent"), 0);
}

TEST(ProfilerTest, AddIsALeafRootScope) {
  registry().clear();
  registry().add("prof/manual", 1.5);
  registry().add("prof/manual", 0.5);
  const auto stats = registry().statsSnapshot().at("prof/manual");
  EXPECT_EQ(stats.count, 2);
  EXPECT_DOUBLE_EQ(stats.seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.selfSeconds, 2.0);  // leaf: self == inclusive
  EXPECT_DOUBLE_EQ(stats.rootSeconds, 2.0);
}

TEST(ProfilerTest, SelfExcludesNestedScopes) {
  registry().clear();
  {
    ScopedTimer outer("prof/outer");
    spinFor(0.01);
    {
      ScopedTimer inner("prof/outer/inner");
      spinFor(0.01);
    }
  }
  const auto stats = registry().statsSnapshot();
  const TimingStat& outer = stats.at("prof/outer");
  const TimingStat& inner = stats.at("prof/outer/inner");

  // self <= inclusive for every key.
  for (const auto& [key, s] : stats) {
    EXPECT_LE(s.selfSeconds, s.seconds + 1e-12) << key;
    EXPECT_GE(s.selfSeconds, 0.0) << key;
  }
  // The inner scope is a leaf: self == inclusive.
  EXPECT_DOUBLE_EQ(inner.selfSeconds, inner.seconds);
  // The outer scope's self time excludes the inner scope exactly.
  EXPECT_NEAR(outer.selfSeconds, outer.seconds - inner.seconds,
              1e-9 + 1e-6 * outer.seconds);
  // Both spun ~10ms, so the split is roughly half/half.
  EXPECT_GT(outer.selfSeconds, 0.25 * outer.seconds);
  EXPECT_LT(outer.selfSeconds, 0.75 * outer.seconds);
  // Only the outer scope was a root.
  EXPECT_DOUBLE_EQ(outer.rootSeconds, outer.seconds);
  EXPECT_DOUBLE_EQ(inner.rootSeconds, 0.0);
}

TEST(ProfilerTest, SubtreeSelfTimesSumToRootInclusive) {
  registry().clear();
  {
    ScopedTimer root("prof/root");
    spinFor(0.004);
    for (int i = 0; i < 3; ++i) {
      ScopedTimer child("prof/root/child");
      spinFor(0.002);
      ScopedTimer grandchild("prof/root/child/leaf");
      spinFor(0.002);
    }
  }
  const auto stats = registry().statsSnapshot();
  double self_sum = 0.0;
  double root_sum = 0.0;
  for (const auto& [key, s] : stats) {
    self_sum += s.selfSeconds;
    root_sum += s.rootSeconds;
  }
  const double root_incl = stats.at("prof/root").seconds;
  // Self times telescope: every observed second is attributed exactly once.
  EXPECT_NEAR(self_sum, root_incl, 1e-9 + 1e-6 * root_incl);
  EXPECT_NEAR(root_sum, root_incl, 1e-12);
}

TEST(ProfilerTest, SiblingScopesDoNotInflateEachOther) {
  registry().clear();
  {
    ScopedTimer outer("prof/seq");
    {
      ScopedTimer a("prof/seq/a");
      spinFor(0.003);
    }
    {
      ScopedTimer b("prof/seq/b");
      spinFor(0.003);
    }
  }
  const auto stats = registry().statsSnapshot();
  const double children =
      stats.at("prof/seq/a").seconds + stats.at("prof/seq/b").seconds;
  EXPECT_NEAR(stats.at("prof/seq").selfSeconds,
              stats.at("prof/seq").seconds - children,
              1e-9 + 1e-6 * stats.at("prof/seq").seconds);
}

TEST(ProfilerTest, ReportUsesRootTimeDenominator) {
  registry().clear();
  registry().add("alpha", 0.6);
  registry().add("beta", 0.4);
  {
    // A nested hierarchy: percentages must come from root time (1.0s +
    // the root scope below), not the sum of all inclusive times.
    ScopedTimer root("gamma");
    ScopedTimer nested("gamma/nested");
  }
  const std::string report = registry().report();
  // alpha is 0.6 of ~1.0s total root time => ~60%; a sum-of-inclusive
  // denominator bug (counting gamma/nested twice on top) would deflate it.
  EXPECT_NE(report.find("alpha"), std::string::npos);
  const bool about_sixty = report.find("59.") != std::string::npos ||
                           report.find("60.0") != std::string::npos;
  EXPECT_TRUE(about_sixty) << report;
}

TEST(ProfilerTest, ScopesOnOtherThreadsAreIndependentRoots) {
  registry().clear();
  {
    ScopedTimer outer("prof/mainroot");
    std::thread worker([] {
      ScopedTimer t("prof/threadroot");
      spinFor(0.002);
    });
    worker.join();
  }
  const auto stats = registry().statsSnapshot();
  // The worker's scope must not treat the main thread's active scope as
  // its parent: it is a root on its own thread...
  EXPECT_DOUBLE_EQ(stats.at("prof/threadroot").rootSeconds,
                   stats.at("prof/threadroot").seconds);
  // ...and must not be subtracted from the main scope's self time.
  EXPECT_NEAR(stats.at("prof/mainroot").selfSeconds,
              stats.at("prof/mainroot").seconds,
              1e-9 + 1e-6 * stats.at("prof/mainroot").seconds);
}

TEST(ProfilerTest, ConcurrentScopesAreLossless) {
  registry().clear();
  constexpr int kThreads = 4;
  constexpr int kScopes = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load()) {
      }
      const std::string key = "prof/stress/" + std::to_string(t % 2);
      for (int i = 0; i < kScopes; ++i) {
        ScopedTimer outer(key);
        ScopedTimer inner("prof/stress/inner");
      }
    });
  }
  go.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  // Two threads share each key: with the pre-mutex registry this loses
  // updates; with the fix every completed scope is counted.
  EXPECT_EQ(registry().count("prof/stress/0"), kThreads / 2 * kScopes);
  EXPECT_EQ(registry().count("prof/stress/1"), kThreads / 2 * kScopes);
  EXPECT_EQ(registry().count("prof/stress/inner"), kThreads * kScopes);
  const auto stats = registry().statsSnapshot();
  for (const auto& [key, s] : stats) {
    EXPECT_LE(s.selfSeconds, s.seconds + 1e-12) << key;
  }
}

TEST(ProfilerTest, LegacyAccessorsStaySourceCompatible) {
  registry().clear();
  registry().add("legacy/a", 1.0);
  registry().add("legacy/b", 2.0);
  EXPECT_DOUBLE_EQ(registry().total("legacy/a"), 1.0);
  EXPECT_DOUBLE_EQ(registry().totalPrefix("legacy/"), 3.0);
  const auto snapshot = registry().snapshot();
  EXPECT_DOUBLE_EQ(snapshot.at("legacy/b"), 2.0);
}

}  // namespace
}  // namespace dreamplace
