// FlowPipeline + checkpoint/resume (place/pipeline.h, place/checkpoint.h;
// docs/FLOW.md): the stage list must match the options, checkpoints must
// round-trip bit-exactly, and — the acceptance test of the subsystem — a
// float64 flow interrupted mid-GP and resumed from its checkpoint must
// reproduce the uninterrupted run bit-for-bit (EXPECT_EQ, no tolerance)
// at multiple thread counts, including every resume-comparable counter.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "autograd/objective.h"
#include "autograd/optimizers.h"
#include "common/flow_context.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "place/checkpoint.h"
#include "place/engine.h"
#include "place/pipeline.h"
#include "place/report.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Database> pipelineDesign(std::uint64_t seed,
                                         Index cells = 400,
                                         double util = 0.7) {
  GeneratorConfig cfg;
  cfg.designName = "pipe" + std::to_string(seed);
  cfg.numCells = cells;
  cfg.utilization = util;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

PlacerOptions pipelineFlow() {
  PlacerOptions options;
  options.precision = Precision::kFloat64;
  options.gp.maxIterations = 300;
  options.gp.binsMax = 64;
  options.dp.passes = 1;
  return options;
}

fs::path freshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<double> movablePositions(const Database& db) {
  std::vector<double> xy;
  xy.reserve(2 * static_cast<std::size_t>(db.numMovable()));
  for (Index i = 0; i < db.numMovable(); ++i) {
    xy.push_back(db.cellX(i));
    xy.push_back(db.cellY(i));
  }
  return xy;
}

/// Cancels the current flow once, the first time GP reaches `iteration`.
/// The fired flag makes a resumed flow (which re-passes the same
/// iteration index) run to completion.
class CancelAtIteration final : public TelemetrySink {
 public:
  explicit CancelAtIteration(int iteration) : iteration_(iteration) {}
  void onIteration(const IterationStats& stats) override {
    if (!fired_ && stats.iteration >= iteration_) {
      fired_ = true;
      FlowContext::current().requestCancel();
    }
  }

 private:
  int iteration_;
  bool fired_ = false;
};

TEST(PipelineTest, StageListMatchesOptions) {
  PlacerOptions standard = pipelineFlow();
  EXPECT_EQ(buildFlowPipeline<double>(standard).signature(),
            "gp|macro_lg|lg|dp|finalize");

  PlacerOptions routability = pipelineFlow();
  routability.routability = true;
  EXPECT_EQ(buildFlowPipeline<double>(routability).signature(),
            "gp_rt|macro_lg|lg|dp|finalize|route");

  PlacerOptions partial = pipelineFlow();
  partial.runGlobalPlacement = false;
  const FlowPipeline pipeline = buildFlowPipeline<double>(partial);
  EXPECT_EQ(pipeline.signature(), "macro_lg|lg|dp|finalize");
  ASSERT_EQ(pipeline.stages().size(), 4u);
  EXPECT_STREQ(pipeline.stages()[0]->name(), "macro_lg");
  EXPECT_EQ(pipeline.stages()[3]->heartbeatStage(), FlowStage::kDone);
}

TEST(PipelineTest, ValidateRejectsBadCheckpointConfigs) {
  PlacerOptions noDir = pipelineFlow();
  noDir.checkpointEveryIterations = 25;  // requires checkpointDir
  EXPECT_THROW(noDir.validate(), std::invalid_argument);

  PlacerOptions negative = pipelineFlow();
  negative.checkpointDir = "ckpt";
  negative.checkpointEveryIterations = -1;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  PlacerOptions partialRoutability = pipelineFlow();
  partialRoutability.runGlobalPlacement = false;
  partialRoutability.routability = true;
  EXPECT_THROW(partialRoutability.validate(), std::invalid_argument);
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  CheckpointData data;
  data.precision = 1;
  data.signature = "gp|macro_lg|lg|dp|finalize";
  data.stageCursor = 2;
  data.midStage = true;
  data.stageState = std::string("blob\0with\0nuls", 13);
  data.result.hpwlGp = 1.25e7;
  data.result.hpwl = 1.5e7;
  data.result.overflow = 0.0625;
  data.result.gpIterations = 123;
  data.result.legal = true;
  data.result.lgFallback = true;
  data.result.lgFailedCells = 3;
  data.cellX = {0.5, 1.75, -2.0};
  data.cellY = {10.0, 11.0, 12.5};
  data.counters = {{"fft/dct2d", 42}, {"ops/density/evaluate", 17}};

  const CheckpointData back = decodeCheckpoint(encodeCheckpoint(data));
  EXPECT_EQ(back.precision, data.precision);
  EXPECT_EQ(back.signature, data.signature);
  EXPECT_EQ(back.stageCursor, data.stageCursor);
  EXPECT_EQ(back.midStage, data.midStage);
  EXPECT_EQ(back.stageState, data.stageState);
  EXPECT_EQ(back.result.hpwlGp, data.result.hpwlGp);
  EXPECT_EQ(back.result.hpwl, data.result.hpwl);
  EXPECT_EQ(back.result.overflow, data.result.overflow);
  EXPECT_EQ(back.result.gpIterations, data.result.gpIterations);
  EXPECT_EQ(back.result.legal, data.result.legal);
  EXPECT_EQ(back.result.lgFallback, data.result.lgFallback);
  EXPECT_EQ(back.result.lgFailedCells, data.result.lgFailedCells);
  EXPECT_EQ(back.cellX, data.cellX);
  EXPECT_EQ(back.cellY, data.cellY);
  EXPECT_EQ(back.counters, data.counters);
}

TEST(CheckpointTest, DecodeRejectsCorruptDocuments) {
  CheckpointData data;
  data.cellX = {1.0};
  data.cellY = {2.0};
  std::string bytes = encodeCheckpoint(data);

  std::string wrongMagic = bytes;
  wrongMagic[0] = 'X';
  EXPECT_THROW(decodeCheckpoint(wrongMagic), std::runtime_error);

  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(decodeCheckpoint(truncated), std::runtime_error);

  const std::string trailing = bytes + "junk";
  EXPECT_THROW(decodeCheckpoint(trailing), std::runtime_error);
}

TEST(CheckpointTest, FileRoundTripAndPathResolution) {
  const fs::path dir = freshDir("dp_checkpoint_file_test");

  PlacerOptions off;
  EXPECT_EQ(checkpointFilePath(off), "");
  PlacerOptions named = off;
  named.checkpointDir = dir.string();
  EXPECT_EQ(checkpointFilePath(named), (dir / "flow.dpck").string());
  named.checkpointName = "job7";
  EXPECT_EQ(checkpointFilePath(named), (dir / "job7.dpck").string());

  CheckpointData data;
  data.signature = "lg|dp";
  data.stageCursor = 1;
  data.cellX = {3.25};
  data.cellY = {-7.5};
  data.counters = {{"lg/fallback", 1}};
  std::string error;
  ASSERT_TRUE(writeCheckpointFile(checkpointFilePath(named), data, &error))
      << error;
  const CheckpointData back = loadCheckpointFile(checkpointFilePath(named));
  EXPECT_EQ(back.signature, data.signature);
  EXPECT_EQ(back.stageCursor, data.stageCursor);
  EXPECT_EQ(back.cellX, data.cellX);
  EXPECT_EQ(back.cellY, data.cellY);
  EXPECT_EQ(back.counters, data.counters);

  EXPECT_THROW(loadCheckpointFile((dir / "missing.dpck").string()),
               std::runtime_error);
}

/// Convex quadratic used to drive the optimizer state round trips.
class Quadratic final : public ObjectiveFunction<double> {
 public:
  Quadratic(std::vector<double> a, std::vector<double> c)
      : a_(std::move(a)), c_(std::move(c)) {}
  std::size_t size() const override { return a_.size(); }
  double evaluate(std::span<const double> p, std::span<double> g) override {
    double value = 0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const double d = p[i] - c_[i];
      value += 0.5 * a_[i] * d * d;
      g[i] = a_[i] * d;
    }
    return value;
  }

 private:
  std::vector<double> a_;
  std::vector<double> c_;
};

/// Runs `warm` steps, snapshots, runs `tail` more steps on the original,
/// then replays the snapshot into a freshly constructed optimizer and
/// checks the tail reproduces bit-for-bit.
template <typename MakeOpt>
void expectOptimizerRoundTrip(MakeOpt makeOpt, int warm, int tail) {
  Quadratic objA({1.0, 4.0, 0.25}, {3.0, -2.0, 10.0});
  Quadratic objB({1.0, 4.0, 0.25}, {3.0, -2.0, 10.0});
  auto a = makeOpt(objA, std::vector<double>{0.0, 0.0, 0.0});
  for (int i = 0; i < warm; ++i) {
    a->step();
  }
  ByteWriter w;
  a->saveState(w);
  const std::string blob = w.take();

  std::vector<double> valuesA;
  for (int i = 0; i < tail; ++i) {
    valuesA.push_back(a->step());
  }

  auto b = makeOpt(objB, std::vector<double>{9.0, 9.0, 9.0});
  ByteReader r(blob);
  b->loadState(r);
  EXPECT_TRUE(r.atEnd());
  for (int i = 0; i < tail; ++i) {
    EXPECT_EQ(b->step(), valuesA[static_cast<std::size_t>(i)]) << "step " << i;
  }
  for (std::size_t i = 0; i < a->params().size(); ++i) {
    EXPECT_EQ(b->params()[i], a->params()[i]) << "param " << i;
  }
}

TEST(OptimizerStateTest, AllSolversRoundTripBitIdentically) {
  expectOptimizerRoundTrip(
      [](ObjectiveFunction<double>& obj, std::vector<double> initial) {
        return std::make_unique<NesterovOptimizer<double>>(obj,
                                                           std::move(initial));
      },
      7, 10);
  expectOptimizerRoundTrip(
      [](ObjectiveFunction<double>& obj, std::vector<double> initial) {
        return std::make_unique<AdamOptimizer<double>>(obj,
                                                       std::move(initial));
      },
      7, 10);
  expectOptimizerRoundTrip(
      [](ObjectiveFunction<double>& obj, std::vector<double> initial) {
        return std::make_unique<SgdMomentumOptimizer<double>>(
            obj, std::move(initial));
      },
      7, 10);
  expectOptimizerRoundTrip(
      [](ObjectiveFunction<double>& obj, std::vector<double> initial) {
        return std::make_unique<RmsPropOptimizer<double>>(obj,
                                                          std::move(initial));
      },
      7, 10);
}

TEST(OptimizerStateTest, LoadRejectsMismatchedSnapshot) {
  Quadratic obj({1.0, 2.0}, {0.0, 0.0});
  NesterovOptimizer<double> small(obj, {0.0, 0.0});
  small.step();
  ByteWriter w;
  small.saveState(w);
  const std::string blob = w.take();

  Quadratic obj3({1.0, 2.0, 3.0}, {0.0, 0.0, 0.0});
  NesterovOptimizer<double> big(obj3, {0.0, 0.0, 0.0});
  ByteReader r(blob);
  EXPECT_THROW(big.loadState(r), std::runtime_error);
}

// Satellite: the greedy-fallback legalization path. An overfull die
// (movable area > row capacity) makes the first Abacus pass fail, which
// must take the fallback (greedy repack + Abacus re-run), record it in
// the FlowResult — the second pass's outcome used to be silently
// discarded — and tick the lg/fallback counter.
TEST(PipelineTest, GreedyFallbackIsRecorded) {
  auto db = pipelineDesign(21, 300, /*util=*/1.3);
  PlacerOptions options = pipelineFlow();
  options.runGlobalPlacement = false;  // straight to LG on an overfull die
  options.runDetailedPlacement = false;

  FlowContext context;
  RunReport report;
  const FlowResult result = placeDesign(*db, options, context, &report);

  EXPECT_TRUE(result.lgFallback);
  EXPECT_GT(result.lgFailedCells, 0);
  EXPECT_FALSE(result.legal);
  ASSERT_EQ(report.counters.count("lg/fallback"), 1u);
  EXPECT_EQ(report.counters.at("lg/fallback"), 1);
}

// Satellite: partial flows. A scattered design legalized+refined without
// GP must come out legal, with no GP stage in the timing registry.
TEST(PipelineTest, PartialFlowLegalizesCurrentPositions) {
  auto db = pipelineDesign(22, 400);
  PlacerOptions options = pipelineFlow();
  options.runGlobalPlacement = false;

  FlowContext context;
  RunReport report;
  const FlowResult result = placeDesign(*db, options, context, &report);

  EXPECT_TRUE(result.legal);
  EXPECT_EQ(result.gpIterations, 0);
  EXPECT_EQ(result.hpwlGp, 0.0);
  EXPECT_GT(result.hpwlLegal, 0.0);
  EXPECT_EQ(report.timing.count("gp"), 0u);
  EXPECT_EQ(report.timing.count("lg"), 1u);
}

TEST(PipelineTest, ResumeRejectsSignatureMismatch) {
  const fs::path dir = freshDir("dp_resume_mismatch_test");
  auto db = pipelineDesign(23, 200);

  CheckpointData data;
  data.signature = "bogus|pipeline";
  data.stageCursor = 0;
  for (Index i = 0; i < db->numMovable(); ++i) {
    data.cellX.push_back(db->cellX(i));
    data.cellY.push_back(db->cellY(i));
  }
  const std::string path = (dir / "bad.dpck").string();
  std::string error;
  ASSERT_TRUE(writeCheckpointFile(path, data, &error)) << error;

  PlacerOptions options = pipelineFlow();
  options.resumeFrom = path;
  FlowContext context;
  EXPECT_THROW(placeDesign(*db, options, context), std::runtime_error);
}

// The subsystem's acceptance test (ISSUE 9): interrupt a float64 flow
// mid-GP, resume from its checkpoint, and require the final positions,
// result fields, and every resume-comparable counter to equal the
// uninterrupted run's bit-for-bit — at 1 and 4 worker threads.
TEST(PipelineTest, ResumedFlowMatchesUninterruptedBitExact) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const fs::path dir = freshDir("dp_resume_identity_test");

    // Uninterrupted reference run.
    auto cleanDb = pipelineDesign(24);
    PlacerOptions cleanOptions = pipelineFlow();
    cleanOptions.threads = threads;
    FlowContext cleanContext;
    RunReport cleanReport;
    const FlowResult clean =
        placeDesign(*cleanDb, cleanOptions, cleanContext, &cleanReport);
    const std::vector<double> cleanXy = movablePositions(*cleanDb);

    // Interrupted run: checkpoint every 20 GP iterations, cancel at 50.
    auto db = pipelineDesign(24);
    PlacerOptions options = pipelineFlow();
    options.threads = threads;
    options.checkpointDir = dir.string();
    options.checkpointName = "identity";
    options.checkpointEveryIterations = 20;
    CancelAtIteration cancel(50);
    options.telemetry = &cancel;
    FlowContext interrupted;
    EXPECT_THROW(placeDesign(*db, options, interrupted), FlowCancelledError);
    const std::string checkpoint = checkpointFilePath(options);
    ASSERT_TRUE(fs::exists(checkpoint));

    // Resume under a fresh context (a retry starts from zero counters;
    // the checkpoint restores the original segment's).
    PlacerOptions resumeOptions = pipelineFlow();
    resumeOptions.threads = threads;
    resumeOptions.checkpointDir = dir.string();
    resumeOptions.checkpointName = "identity";
    resumeOptions.checkpointEveryIterations = 20;
    resumeOptions.resumeFrom = checkpoint;
    FlowContext resumedContext;
    RunReport resumedReport;
    const FlowResult resumed =
        placeDesign(*db, resumeOptions, resumedContext, &resumedReport);

    EXPECT_EQ(resumed.hpwlGp, clean.hpwlGp);
    EXPECT_EQ(resumed.hpwlLegal, clean.hpwlLegal);
    EXPECT_EQ(resumed.hpwl, clean.hpwl);
    EXPECT_EQ(resumed.overflow, clean.overflow);
    EXPECT_EQ(resumed.gpIterations, clean.gpIterations);
    EXPECT_EQ(resumed.legal, clean.legal);
    EXPECT_EQ(resumed.lgFallback, clean.lgFallback);
    EXPECT_EQ(resumed.lgFailedCells, clean.lgFailedCells);

    const std::vector<double> resumedXy = movablePositions(*db);
    ASSERT_EQ(resumedXy.size(), cleanXy.size());
    for (std::size_t i = 0; i < cleanXy.size(); ++i) {
      ASSERT_EQ(resumedXy[i], cleanXy[i]) << "coordinate " << i;
    }

    // Counter identity: original segment (restored from the checkpoint)
    // plus resumed segment equals the uninterrupted totals, outside the
    // documented resume-variant keys.
    EXPECT_EQ(resumeComparableCounters(resumedReport.counters),
              resumeComparableCounters(cleanReport.counters));

    // The completed flow deleted its checkpoint.
    EXPECT_FALSE(fs::exists(checkpoint));
  }
  ThreadPool::instance().setThreads(0);
}

}  // namespace
}  // namespace dreamplace
