#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "io/bookshelf_reader.h"
#include "io/bookshelf_writer.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

class BookshelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: ctest -j runs each test in its own process, and a
    // shared path would let one test's teardown race another's files.
    dir_ = fs::temp_directory_path() /
           ("dp_bookshelf_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(BookshelfTest, WriteReadRoundTrip) {
  GeneratorConfig cfg;
  cfg.designName = "rt";
  cfg.numCells = 300;
  cfg.numPads = 16;
  cfg.seed = 5;
  auto original = generateNetlist(cfg);
  writeBookshelf(*original, dir_.string(), "rt");

  auto loaded = readBookshelf((dir_ / "rt.aux").string());
  EXPECT_EQ(loaded->numCells(), original->numCells());
  EXPECT_EQ(loaded->numMovable(), original->numMovable());
  EXPECT_EQ(loaded->numNets(), original->numNets());
  EXPECT_EQ(loaded->numPins(), original->numPins());
  EXPECT_EQ(loaded->rows().size(), original->rows().size());
  EXPECT_NEAR(loaded->dieArea().xh, original->dieArea().xh, 1e-9);
  EXPECT_NEAR(loaded->dieArea().yh, original->dieArea().yh, 1e-9);
  // HPWL is a complete functional check of positions + offsets + nets.
  EXPECT_NEAR(hpwl(*loaded), hpwl(*original), 1e-6 * hpwl(*original));
}

TEST_F(BookshelfTest, CellAttributesRoundTrip) {
  GeneratorConfig cfg;
  cfg.numCells = 50;
  cfg.numPads = 8;
  cfg.seed = 9;
  auto original = generateNetlist(cfg);
  writeBookshelf(*original, dir_.string(), "attrs");
  auto loaded = readBookshelf((dir_ / "attrs.aux").string());
  for (Index i = 0; i < original->numCells(); ++i) {
    const Index j = loaded->findCell(original->cellName(i));
    ASSERT_NE(j, kInvalidIndex) << original->cellName(i);
    EXPECT_DOUBLE_EQ(loaded->cellWidth(j), original->cellWidth(i));
    EXPECT_DOUBLE_EQ(loaded->cellHeight(j), original->cellHeight(i));
    EXPECT_DOUBLE_EQ(loaded->cellX(j), original->cellX(i));
    EXPECT_EQ(loaded->isMovable(j), original->isMovable(i));
  }
}

TEST_F(BookshelfTest, ParsesHandWrittenFiles) {
  // Minimal hand-authored benchmark exercising comments, flexible
  // whitespace, and the terminal keyword.
  {
    std::ofstream aux(dir_ / "mini.aux");
    aux << "RowBasedPlacement : mini.nodes mini.nets mini.wts mini.pl "
           "mini.scl\n";
  }
  {
    std::ofstream nodes(dir_ / "mini.nodes");
    nodes << "UCLA nodes 1.0\n# comment line\n\n"
          << "NumNodes : 3\nNumTerminals : 1\n"
          << "  c0  4 12\n"
          << "\tc1\t6\t12\n"
          << "  io0 2 12 terminal\n";
  }
  {
    std::ofstream nets(dir_ / "mini.nets");
    nets << "UCLA nets 1.0\n\nNumNets : 1\nNumPins : 3\n"
         << "NetDegree : 3  signal\n"
         << "  c0 I : 0.5 1\n"
         << "  c1 O : -1 0\n"
         << "  io0 I : 0 0\n";
  }
  {
    std::ofstream wts(dir_ / "mini.wts");
    wts << "UCLA wts 1.0\n";
  }
  {
    std::ofstream pl(dir_ / "mini.pl");
    pl << "UCLA pl 1.0\n\n"
       << "c0 10 0 : N\n"
       << "c1 20 12 : N\n"
       << "io0 0 0 : N /FIXED\n";
  }
  {
    std::ofstream scl(dir_ / "mini.scl");
    scl << "UCLA scl 1.0\n\nNumRows : 2\n"
        << "CoreRow Horizontal\n"
        << " Coordinate : 0\n Height : 12\n"
        << " Sitewidth : 1\n Sitespacing : 1\n"
        << " Siteorient : 1\n Sitesymmetry : 1\n"
        << " SubrowOrigin : 0 NumSites : 100\n"
        << "End\n"
        << "CoreRow Horizontal\n"
        << " Coordinate : 12\n Height : 12\n"
        << " Sitewidth : 1\n Sitespacing : 1\n"
        << " SubrowOrigin : 0 NumSites : 100\n"
        << "End\n";
  }
  auto db = readBookshelf((dir_ / "mini.aux").string());
  EXPECT_EQ(db->numCells(), 3);
  EXPECT_EQ(db->numMovable(), 2);
  EXPECT_EQ(db->numNets(), 1);
  EXPECT_EQ(db->numPins(), 3);
  EXPECT_EQ(db->netDegree(0), 3);
  EXPECT_DOUBLE_EQ(db->dieArea().xh, 100);
  EXPECT_DOUBLE_EQ(db->dieArea().yh, 24);
  const Index c0 = db->findCell("c0");
  EXPECT_DOUBLE_EQ(db->cellX(c0), 10);
  const Index io0 = db->findCell("io0");
  EXPECT_FALSE(db->isMovable(io0));
}

TEST_F(BookshelfTest, MissingFileThrows) {
  EXPECT_THROW(readBookshelf((dir_ / "absent.aux").string()),
               std::runtime_error);
}

TEST_F(BookshelfTest, MalformedNetsThrows) {
  {
    std::ofstream aux(dir_ / "bad.aux");
    aux << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  }
  {
    std::ofstream nodes(dir_ / "bad.nodes");
    nodes << "c0 4 12\n";
  }
  {
    std::ofstream nets(dir_ / "bad.nets");
    nets << "unknown_cell I : 0 0\n";  // pin before any NetDegree
  }
  std::ofstream(dir_ / "bad.wts");
  {
    std::ofstream pl(dir_ / "bad.pl");
    pl << "c0 0 0 : N\n";
  }
  {
    std::ofstream scl(dir_ / "bad.scl");
    scl << "CoreRow Horizontal\n Coordinate : 0\n Height : 12\n"
        << " SubrowOrigin : 0 NumSites : 10\nEnd\n";
  }
  EXPECT_THROW(readBookshelf((dir_ / "bad.aux").string()),
               std::runtime_error);
}

TEST_F(BookshelfTest, ReadPlacementOntoExistingDatabase) {
  GeneratorConfig cfg;
  cfg.numCells = 40;
  cfg.seed = 14;
  auto db = generateNetlist(cfg);
  // Move cells, save, scramble, reload: positions must round-trip.
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(i, i * 3.0, (i % 5) * 12.0);
  }
  const auto pl = (dir_ / "reload.pl").string();
  writePlacement(*db, pl);
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(i, 0, 0);
  }
  readPlacement(*db, pl);
  for (Index i = 0; i < db->numMovable(); ++i) {
    EXPECT_DOUBLE_EQ(db->cellX(i), i * 3.0);
    EXPECT_DOUBLE_EQ(db->cellY(i), (i % 5) * 12.0);
  }
}

TEST_F(BookshelfTest, ReadPlacementUnknownCellThrows) {
  GeneratorConfig cfg;
  cfg.numCells = 10;
  cfg.seed = 15;
  auto db = generateNetlist(cfg);
  std::ofstream(dir_ / "bad.pl") << "UCLA pl 1.0\nnot_a_cell 0 0 : N\n";
  EXPECT_THROW(readPlacement(*db, (dir_ / "bad.pl").string()),
               std::runtime_error);
}

TEST_F(BookshelfTest, WritePlacementOnly) {
  GeneratorConfig cfg;
  cfg.numCells = 20;
  cfg.seed = 2;
  auto db = generateNetlist(cfg);
  const fs::path pl = dir_ / "out.pl";
  writePlacement(*db, pl.string());
  std::ifstream in(pl);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "UCLA pl 1.0");
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      ++lines;
    }
  }
  EXPECT_EQ(lines, db->numCells());
}

}  // namespace
}  // namespace dreamplace
