// PlacementEngine (place/engine.h): concurrent batches must reproduce
// serial runs bit-for-bit (the determinism contract of docs/ENGINE.md),
// timeouts and retries must behave as documented, and the BatchReport
// JSON must satisfy the per-run regression baseline for every job.
//
// Also the FlowContext regression the engine is built on: sequential
// placeDesign() calls in one process report per-run numbers from zero,
// with no leakage from earlier flows.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/flow_context.h"
#include "common/metrics_export.h"
#include "gen/netlist_generator.h"
#include "place/engine.h"
#include "place/report_check.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Database> engineDesign(std::uint64_t seed,
                                       Index numCells = 600) {
  GeneratorConfig cfg;
  cfg.designName = "eng" + std::to_string(seed);
  cfg.numCells = numCells;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

PlacerOptions engineFlow() {
  PlacerOptions options;
  options.gp.maxIterations = 300;
  options.gp.binsMax = 64;
  options.dp.passes = 1;
  return options;
}

/// Builds the same 3-job batch (fresh databases each call, so serial and
/// concurrent runs start from identical state).
std::vector<PlacementJob> makeJobs(
    std::vector<std::unique_ptr<Database>>& keepAlive) {
  std::vector<PlacementJob> jobs;
  for (std::uint64_t seed : {7, 8, 9}) {
    keepAlive.push_back(engineDesign(seed));
    PlacementJob job;
    job.db = keepAlive.back().get();
    job.name = "eng" + std::to_string(seed);
    job.options = engineFlow();
    job.options.telemetryLabel = job.name;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(EngineOptionsTest, ValidateRejectsBadValues) {
  EngineOptions options;
  EXPECT_NO_THROW(options.validate());

  options.maxConcurrentJobs = 0;
  options.maxJobAttempts = 0;
  options.jobTimeoutSeconds = -1.0;
  options.threads = -2;
  options.stallSeconds = -0.5;
  options.divergenceHpwlRatio = 0.5;  // must be 0 or > 1
  options.divergenceSamples = 0;
  options.watchdogPeriodSeconds = 0.0;
  options.metricsPeriodSeconds = -1.0;
  try {
    options.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("maxConcurrentJobs"), std::string::npos);
    EXPECT_NE(message.find("maxJobAttempts"), std::string::npos);
    EXPECT_NE(message.find("jobTimeoutSeconds"), std::string::npos);
    EXPECT_NE(message.find("threads"), std::string::npos);
    EXPECT_NE(message.find("stallSeconds"), std::string::npos);
    EXPECT_NE(message.find("divergenceHpwlRatio"), std::string::npos);
    EXPECT_NE(message.find("divergenceSamples"), std::string::npos);
    EXPECT_NE(message.find("watchdogPeriodSeconds"), std::string::npos);
    EXPECT_NE(message.find("metricsPeriodSeconds"), std::string::npos);
  }

  EngineOptions healthy;
  EXPECT_FALSE(healthy.watchdogEnabled());
  healthy.stallSeconds = 5.0;
  EXPECT_TRUE(healthy.watchdogEnabled());
}

TEST(EngineTest, OrderDependentCounterFilter) {
  EXPECT_TRUE(isOrderDependentCounter("fft/plan/create"));
  EXPECT_TRUE(isOrderDependentCounter("fft/plan/hit"));
  EXPECT_TRUE(isOrderDependentCounter("parallel/steals"));
  EXPECT_TRUE(isOrderDependentCounter("parallel/pool_start"));
  EXPECT_TRUE(isOrderDependentCounter("parallel/contended"));
  // Watchdog samples and metrics exports are wall-clock sampling.
  EXPECT_TRUE(isOrderDependentCounter("health/checks"));
  EXPECT_TRUE(isOrderDependentCounter("metrics/exports"));
  EXPECT_FALSE(isOrderDependentCounter("parallel/jobs"));
  EXPECT_FALSE(isOrderDependentCounter("fft/dct2d"));
  EXPECT_FALSE(isOrderDependentCounter("ops/wirelength/evaluate"));

  const std::map<std::string, CounterRegistry::Value> mixed = {
      {"fft/dct2d", 10},
      {"fft/plan/create", 3},
      {"parallel/steals", 42},
      {"health/checks", 17},
      {"metrics/exports", 4}};
  const auto filtered = deterministicCounters(mixed);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.count("fft/dct2d"), 1u);
}

TEST(EngineTest, ResumeVariantCounterFilter) {
  // Everything order-dependent is also resume-variant...
  EXPECT_TRUE(isResumeVariantCounter("fft/plan/create"));
  EXPECT_TRUE(isResumeVariantCounter("parallel/steals"));
  EXPECT_TRUE(isResumeVariantCounter("health/checks"));
  // ...plus checkpoint bookkeeping and workspace allocation splits (a
  // resumed segment re-allocates what the original already had).
  EXPECT_TRUE(isResumeVariantCounter("checkpoint/saves"));
  EXPECT_TRUE(isResumeVariantCounter("checkpoint/loads"));
  EXPECT_TRUE(isResumeVariantCounter("ops/electrostatics/ws_alloc"));
  EXPECT_TRUE(isResumeVariantCounter("ops/electrostatics/ws_reuse"));
  EXPECT_TRUE(isResumeVariantCounter("ops/wirelength/scratch_alloc"));
  EXPECT_TRUE(isResumeVariantCounter("fft/scratch_grow"));
  // Work counters stay comparable: original segment + resumed segment
  // must equal the uninterrupted totals.
  EXPECT_FALSE(isResumeVariantCounter("optimizer/nesterov/steps"));
  EXPECT_FALSE(isResumeVariantCounter("ops/wirelength/evaluate"));
  EXPECT_FALSE(isResumeVariantCounter("fft/dct2d"));
  EXPECT_FALSE(isResumeVariantCounter("parallel/jobs"));
  EXPECT_FALSE(isResumeVariantCounter("lg/fallback"));

  const std::map<std::string, CounterRegistry::Value> mixed = {
      {"fft/dct2d", 10},
      {"checkpoint/saves", 3},
      {"ops/electrostatics/ws_alloc", 2},
      {"fft/scratch_grow", 1},
      {"optimizer/nesterov/steps", 200}};
  const auto filtered = resumeComparableCounters(mixed);
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered.count("fft/dct2d"), 1u);
  EXPECT_EQ(filtered.count("optimizer/nesterov/steps"), 1u);
}

// The tentpole acceptance test: three jobs run concurrently produce
// per-job results and reports bit-identical (float64) to the same jobs
// run serially — outside wall-times and the order-dependent counters.
// Both runs keep the watchdog AND the metrics sampler enabled: the
// monitor thread only reads flow state, so health sampling must not
// perturb determinism (docs/OBSERVABILITY.md).
TEST(EngineTest, ConcurrentMatchesSerialBitExact) {
  std::vector<std::unique_ptr<Database>> serialDbs;
  std::vector<std::unique_ptr<Database>> concurrentDbs;
  const fs::path metricsDir =
      fs::temp_directory_path() / "dp_engine_metrics_test";
  fs::create_directories(metricsDir);

  EngineOptions serialOptions;
  serialOptions.maxConcurrentJobs = 1;
  serialOptions.stallSeconds = 60.0;           // watchdog on, never fires
  serialOptions.divergenceHpwlRatio = 1.0e6;   // watchdog on, never fires
  serialOptions.watchdogPeriodSeconds = 0.01;
  serialOptions.metricsFile = (metricsDir / "serial.prom").string();
  serialOptions.metricsPeriodSeconds = 0.02;
  PlacementEngine serialEngine(serialOptions);
  const BatchReport serial = serialEngine.run(makeJobs(serialDbs));

  EngineOptions concurrentOptions;
  concurrentOptions.maxConcurrentJobs = 3;
  concurrentOptions.stallSeconds = 60.0;
  concurrentOptions.divergenceHpwlRatio = 1.0e6;
  concurrentOptions.watchdogPeriodSeconds = 0.01;
  concurrentOptions.metricsFile = (metricsDir / "concurrent.prom").string();
  concurrentOptions.metricsPeriodSeconds = 0.02;
  PlacementEngine concurrentEngine(concurrentOptions);
  const BatchReport concurrent = concurrentEngine.run(makeJobs(concurrentDbs));

  ASSERT_EQ(serial.jobs.size(), 3u);
  ASSERT_EQ(concurrent.jobs.size(), 3u);
  EXPECT_TRUE(serial.allSucceeded());
  EXPECT_TRUE(concurrent.allSucceeded());

  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    const JobReport& s = serial.jobs[i];
    const JobReport& c = concurrent.jobs[i];
    SCOPED_TRACE(s.name);
    EXPECT_EQ(c.name, s.name);
    EXPECT_EQ(c.attempts, 1);

    // The watchdog sampled every healthy job without delivering a verdict.
    EXPECT_TRUE(c.health.watchdogEnabled);
    EXPECT_TRUE(c.health.verdict.empty()) << c.health.verdict;

    // Flow results: every non-time field must match exactly.
    EXPECT_EQ(c.result.hpwlGp, s.result.hpwlGp);
    EXPECT_EQ(c.result.hpwlLegal, s.result.hpwlLegal);
    EXPECT_EQ(c.result.hpwl, s.result.hpwl);
    EXPECT_EQ(c.result.overflow, s.result.overflow);
    EXPECT_EQ(c.result.gpIterations, s.result.gpIterations);
    EXPECT_EQ(c.result.legal, s.result.legal);

    // Per-flow counters: bit-identical outside the documented
    // order-dependent keys (shared plan cache, pool scheduling).
    EXPECT_EQ(deterministicCounters(c.report.counters),
              deterministicCounters(s.report.counters));

    // Timing structure (never durations): same scopes, same call counts.
    ASSERT_EQ(c.report.timing.size(), s.report.timing.size());
    auto sit = s.report.timing.begin();
    for (const auto& [key, stat] : c.report.timing) {
      EXPECT_EQ(key, sit->first);
      EXPECT_EQ(stat.count, sit->second.count) << key;
      ++sit;
    }
    ASSERT_EQ(c.report.timing.count("gp"), 1u);
    EXPECT_EQ(c.report.timing.at("gp").count, 1);

    // GP convergence trajectories.
    ASSERT_EQ(c.report.gpRuns.size(), s.report.gpRuns.size());
    for (std::size_t r = 0; r < s.report.gpRuns.size(); ++r) {
      EXPECT_EQ(c.report.gpRuns[r].iterations, s.report.gpRuns[r].iterations);
      EXPECT_EQ(c.report.gpRuns[r].hpwl, s.report.gpRuns[r].hpwl);
      EXPECT_EQ(c.report.gpRuns[r].overflow, s.report.gpRuns[r].overflow);
      EXPECT_EQ(c.report.gpRuns[r].lambda, s.report.gpRuns[r].lambda);
    }
  }

  // The metrics sampler left valid Prometheus expositions behind.
  for (const char* name : {"serial.prom", "concurrent.prom"}) {
    const std::string text = readFile(metricsDir / name);
    ASSERT_FALSE(text.empty()) << name;
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << name << ": " << error;
  }
}

// Satellite regression: sequential plain placeDesign() calls report from
// zero — the second flow's counters equal the first's instead of
// accumulating process-lifetime totals.
TEST(EngineTest, SequentialFlowsReportFromZero) {
  PlacerOptions options = engineFlow();

  auto db1 = engineDesign(7);
  FlowContext context1;
  RunReport report1;
  placeDesign(*db1, options, context1, &report1);

  auto db2 = engineDesign(7);
  FlowContext context2;
  RunReport report2;
  placeDesign(*db2, options, context2, &report2);

  ASSERT_FALSE(report1.counters.empty());
  EXPECT_EQ(deterministicCounters(report2.counters),
            deterministicCounters(report1.counters));
  ASSERT_EQ(report2.timing.count("gp"), 1u);
  EXPECT_EQ(report2.timing.at("gp").count, 1);
}

TEST(EngineTest, TimeoutProducesTimedOutStatusWithoutRetry) {
  auto db = engineDesign(11, 300);

  EngineOptions engineOptions;
  engineOptions.jobTimeoutSeconds = 0.005;
  engineOptions.maxJobAttempts = 3;  // timeouts must NOT consume retries
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "slow";
  job.options = engineFlow();
  job.options.gp.maxIterations = 100000;
  job.options.gp.stopOverflow = 0.0001;  // unreachable: must hit deadline

  const BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kTimedOut);
  EXPECT_EQ(batch.jobs[0].attempts, 1);
  EXPECT_FALSE(batch.jobs[0].error.empty());
  EXPECT_EQ(batch.timedOut, 1);
  EXPECT_FALSE(batch.allSucceeded());
}

TEST(EngineTest, FailingAttemptIsRetriedThenSucceeds) {
  auto db = engineDesign(12, 300);

  EngineOptions engineOptions;
  engineOptions.maxJobAttempts = 3;
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "flaky";
  job.options = engineFlow();
  job.options.gp.maxIterations = 60;
  job.attemptHook = [](int attempt) {
    if (attempt == 1) {
      throw std::runtime_error("injected failure on first attempt");
    }
  };

  const BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kSucceeded);
  EXPECT_EQ(batch.jobs[0].attempts, 2);
  EXPECT_TRUE(batch.jobs[0].error.empty());
  EXPECT_EQ(batch.succeeded, 1);
}

// A flow cancelled mid-GP on its first attempt leaves a checkpoint
// behind; the retry must resume from it (attempt 2, resumed=true) and
// still reproduce an uncheckpointed clean run bit-for-bit.
TEST(EngineTest, RetryResumesFromCheckpointAndMatchesClean) {
  const fs::path dir = fs::temp_directory_path() / "dp_engine_resume_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto cleanDb = engineDesign(7);
  FlowContext cleanContext;
  const FlowResult clean =
      placeDesign(*cleanDb, engineFlow(), cleanContext);

  /// Cancels the current flow once, the first time GP reaches iteration
  /// 60 — the resumed attempt re-passes that index unharmed.
  class CancelOnce final : public TelemetrySink {
   public:
    void onIteration(const IterationStats& stats) override {
      if (!fired_ && stats.iteration >= 60) {
        fired_ = true;
        FlowContext::current().requestCancel();
      }
    }

   private:
    bool fired_ = false;
  } cancel;

  auto db = engineDesign(7);
  EngineOptions engineOptions;
  engineOptions.maxJobAttempts = 2;
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "ckpt_job";
  job.options = engineFlow();
  job.options.checkpointDir = dir.string();
  job.options.checkpointEveryIterations = 25;
  job.options.telemetry = &cancel;

  const BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  const JobReport& report = batch.jobs[0];
  EXPECT_EQ(report.status, JobStatus::kSucceeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_TRUE(report.resumed);

  EXPECT_EQ(report.result.hpwlGp, clean.hpwlGp);
  EXPECT_EQ(report.result.hpwlLegal, clean.hpwlLegal);
  EXPECT_EQ(report.result.hpwl, clean.hpwl);
  EXPECT_EQ(report.result.overflow, clean.overflow);
  EXPECT_EQ(report.result.gpIterations, clean.gpIterations);
  EXPECT_EQ(report.result.legal, clean.legal);

  // The completed attempt deleted its checkpoint (engine names it after
  // the job).
  EXPECT_FALSE(fs::exists(dir / "ckpt_job.dpck"));

  // The BatchReport JSON carries the resume marker.
  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batch.toJson(), flat, &error)) << error;
  EXPECT_EQ(flat.numbers.at("jobs.0.resumed"), 1.0);
  EXPECT_EQ(flat.numbers.at("jobs.0.attempts"), 2.0);
}

TEST(EngineTest, ExhaustedRetriesReportFailed) {
  auto db = engineDesign(13, 300);

  EngineOptions engineOptions;
  engineOptions.maxJobAttempts = 2;
  PlacementEngine engine(engineOptions);

  int attemptsSeen = 0;
  PlacementJob job;
  job.db = db.get();
  job.name = "doomed";
  job.options = engineFlow();
  job.attemptHook = [&attemptsSeen](int attempt) {
    attemptsSeen = attempt;
    throw std::runtime_error("injected failure, attempt " +
                             std::to_string(attempt));
  };

  const BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kFailed);
  EXPECT_EQ(batch.jobs[0].attempts, 2);
  EXPECT_EQ(attemptsSeen, 2);
  EXPECT_NE(batch.jobs[0].error.find("attempt 2"), std::string::npos);
  EXPECT_EQ(batch.failed, 1);
  EXPECT_FALSE(batch.allSucceeded());
}

// The BatchReport JSON round-trips through the flat parser and passes the
// checked-in per-run baseline for every job — the shape CI's batch gate
// (tools/run_batch + tools/check_report) relies on.
TEST(EngineTest, BatchReportJsonPassesCheckedInBaseline) {
  std::vector<std::unique_ptr<Database>> dbs;
  EngineOptions engineOptions;
  engineOptions.maxConcurrentJobs = 3;
  PlacementEngine engine(engineOptions);
  BatchReport batch = engine.run(makeJobs(dbs));
  batch.label = "engine_test";
  ASSERT_TRUE(batch.allSucceeded());

  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batch.toJson(), flat, &error)) << error;
  EXPECT_TRUE(isBatchReport(flat));
  EXPECT_EQ(flat.strings.at("schema"), "dreamplace.batch_report.v1");
  EXPECT_EQ(flat.numbers.at("counts.jobs"), 3.0);
  EXPECT_EQ(flat.numbers.at("counts.succeeded"), 3.0);
  EXPECT_EQ(flat.strings.at("jobs.0.name"), "eng7");
  EXPECT_EQ(flat.strings.at("jobs.1.report.schema"),
            "dreamplace.run_report.v1");
  // The embedded report carries the full options echo.
  EXPECT_EQ(flat.strings.at("jobs.0.report.config.options.gp.solver"),
            flat.strings.at("jobs.0.report.config.solver"));

  const fs::path baselinePath =
      fs::path(__FILE__).parent_path().parent_path() / "tools" /
      "report_baseline.json";
  FlatJson baseline;
  ASSERT_TRUE(parseJsonFlat(readFile(baselinePath), baseline, &error))
      << error;

  std::vector<BatchJobCheck> jobChecks;
  ASSERT_TRUE(checkBatchReport(flat, baseline, jobChecks, &error)) << error;
  ASSERT_EQ(jobChecks.size(), 3u);
  for (const BatchJobCheck& job : jobChecks) {
    EXPECT_TRUE(job.succeeded) << job.name;
    for (const CheckResult& result : job.results) {
      EXPECT_TRUE(result.passed)
          << job.name << ": " << result.description << " — " << result.detail;
    }
  }
}

// A batch containing a failed job: the job carries no embedded report and
// the batch-level check flags it.
TEST(EngineTest, BatchCheckFlagsUnsuccessfulJobs) {
  auto good = engineDesign(7);
  auto bad = engineDesign(8);

  PlacementJob goodJob;
  goodJob.db = good.get();
  goodJob.name = "good";
  goodJob.options = engineFlow();

  PlacementJob badJob;
  badJob.db = bad.get();
  badJob.name = "bad";
  badJob.options = engineFlow();
  badJob.attemptHook = [](int) {
    throw std::runtime_error("injected failure");
  };

  PlacementEngine engine;
  std::vector<PlacementJob> jobs;
  jobs.push_back(std::move(goodJob));
  jobs.push_back(std::move(badJob));
  const BatchReport batch = engine.run(std::move(jobs));
  EXPECT_EQ(batch.succeeded, 1);
  EXPECT_EQ(batch.failed, 1);

  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batch.toJson(), flat, &error)) << error;
  EXPECT_EQ(flat.strings.count("jobs.1.report.schema"), 0u);
  EXPECT_NE(flat.strings.at("jobs.1.error").find("injected"),
            std::string::npos);

  const std::string miniBaseline =
      R"({"schema": "dreamplace.report_baseline.v1",
          "checks": [{"path": "result.legal", "op": "eq", "value": 1}]})";
  FlatJson baseline;
  ASSERT_TRUE(parseJsonFlat(miniBaseline, baseline, &error)) << error;
  std::vector<BatchJobCheck> jobChecks;
  ASSERT_TRUE(checkBatchReport(flat, baseline, jobChecks, &error)) << error;
  ASSERT_EQ(jobChecks.size(), 2u);
  EXPECT_TRUE(jobChecks[0].succeeded);
  ASSERT_EQ(jobChecks[0].results.size(), 1u);
  EXPECT_TRUE(jobChecks[0].results[0].passed);
  EXPECT_FALSE(jobChecks[1].succeeded);
  EXPECT_TRUE(jobChecks[1].results.empty());
}

}  // namespace
}  // namespace dreamplace
