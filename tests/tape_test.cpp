#include <gtest/gtest.h>

#include <cmath>

#include "autograd/tape.h"
#include "common/rng.h"
#include "db/database.h"
#include "gen/netlist_generator.h"
#include "ops/wirelength.h"

namespace dreamplace::autograd {
namespace {

TEST(TapeTest, BasicArithmetic) {
  Tape tape;
  Var x = tape.variable(2.0);
  Var y = tape.variable(3.0);
  Var f = x * y + x - y / x;  // f = xy + x - y/x
  EXPECT_DOUBLE_EQ(f.value(), 6.0 + 2.0 - 1.5);
  tape.backward(f);
  // df/dx = y + 1 + y/x^2 = 3 + 1 + 0.75; df/dy = x - 1/x = 1.5.
  EXPECT_DOUBLE_EQ(tape.grad(x), 4.75);
  EXPECT_DOUBLE_EQ(tape.grad(y), 1.5);
}

TEST(TapeTest, ScalarMixedOperators) {
  Tape tape;
  Var x = tape.variable(4.0);
  Var f = 2.0 * x + (x - 1.0) * 3.0 - (10.0 - x) / 2.0 + (-x);
  // f = 2x + 3x - 3 - 5 + x/2 - x = 4.5x - 8.
  EXPECT_DOUBLE_EQ(f.value(), 10.0);
  tape.backward(f);
  EXPECT_DOUBLE_EQ(tape.grad(x), 4.5);
}

TEST(TapeTest, TranscendentalChain) {
  Tape tape;
  Var x = tape.variable(0.7);
  Var f = exp(log(x) * 2.0) + sqrt(x);  // = x^2 + sqrt(x)
  EXPECT_NEAR(f.value(), 0.49 + std::sqrt(0.7), 1e-12);
  tape.backward(f);
  EXPECT_NEAR(tape.grad(x), 2 * 0.7 + 0.5 / std::sqrt(0.7), 1e-12);
}

TEST(TapeTest, SharedSubexpressionAccumulates) {
  Tape tape;
  Var x = tape.variable(3.0);
  Var a = x * x;
  Var f = a + a;  // 2x^2 -> df/dx = 4x
  tape.backward(f);
  EXPECT_DOUBLE_EQ(tape.grad(x), 12.0);
}

TEST(TapeTest, MaxMinSubgradients) {
  Tape tape;
  Var x = tape.variable(2.0);
  Var y = tape.variable(5.0);
  Var f = maximum(x, y) + minimum(x, y) * 2.0;
  EXPECT_DOUBLE_EQ(f.value(), 5.0 + 4.0);
  tape.backward(f);
  EXPECT_DOUBLE_EQ(tape.grad(x), 2.0);  // x is the min
  EXPECT_DOUBLE_EQ(tape.grad(y), 1.0);  // y is the max
}

TEST(TapeTest, MatchesFiniteDifferenceOnRandomExpression) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const double x0 = rng.uniform(0.5, 2.0);
    const double y0 = rng.uniform(0.5, 2.0);
    auto build = [](Tape& t, double xv, double yv) {
      Var x = t.variable(xv);
      Var y = t.variable(yv);
      Var f = exp(x / (y + 1.0)) * log(x * y + 2.0) + sqrt(x * x + y * y);
      return std::tuple{x, y, f};
    };
    Tape tape;
    auto [x, y, f] = build(tape, x0, y0);
    tape.backward(f);
    const double gx = tape.grad(x);
    const double h = 1e-6;
    Tape tp, tm;
    auto [xp, yp, fp] = build(tp, x0 + h, y0);
    auto [xm, ym, fm] = build(tm, x0 - h, y0);
    (void)xp; (void)yp; (void)xm; (void)ym;
    EXPECT_NEAR(gx, (fp.value() - fm.value()) / (2 * h), 1e-5);
  }
}

/// The tape as a gradient oracle for the production WA wirelength op: the
/// same max-shifted WA formula is written with Vars and differentiated
/// automatically; the hand-derived kernel must agree.
TEST(TapeTest, ReproducesWaWirelengthGradient) {
  GeneratorConfig cfg;
  cfg.numCells = 30;
  cfg.numPads = 4;
  cfg.seed = 3;
  auto db = generateNetlist(cfg);
  const Index n = db->numMovable();
  const double gamma = 5.0;

  // Production op.
  WaWirelengthOp<double> op(*db, n);
  op.setGamma(gamma);
  std::vector<double> params(2 * static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    params[i] = db->cellX(i) + db->cellWidth(i) / 2;
    params[i + n] = db->cellY(i) + db->cellHeight(i) / 2;
  }
  std::vector<double> grad(params.size());
  const double wl = op.evaluate(params, grad);

  // Tape version: one Var per movable-cell coordinate.
  Tape tape;
  std::vector<Var> vx(n), vy(n);
  for (Index i = 0; i < n; ++i) {
    vx[i] = tape.variable(params[i]);
    vy[i] = tape.variable(params[i + n]);
  }
  std::vector<Var> terms;
  for (Index e = 0; e < db->numNets(); ++e) {
    const Index begin = db->netPinBegin(e);
    const Index end = db->netPinEnd(e);
    if (end - begin < 2) {
      continue;
    }
    for (int dim = 0; dim < 2; ++dim) {
      std::vector<Var> pin_pos;
      for (Index p = begin; p < end; ++p) {
        const Index c = db->pinCell(p);
        if (db->isMovable(c)) {
          const Var base = dim == 0 ? vx[c] : vy[c];
          const double off =
              dim == 0 ? db->pinOffsetX(p) : db->pinOffsetY(p);
          pin_pos.push_back(base + off);
        } else {
          pin_pos.push_back(tape.constant(
              dim == 0 ? db->pinX(p) : db->pinY(p)));
        }
      }
      // Max-shifted WA, exactly as in the kernel.
      Var pmax = pin_pos[0];
      Var pmin = pin_pos[0];
      for (size_t k = 1; k < pin_pos.size(); ++k) {
        pmax = maximum(pmax, pin_pos[k]);
        pmin = minimum(pmin, pin_pos[k]);
      }
      Var bp = tape.constant(0.0);
      Var bm = tape.constant(0.0);
      Var cp = tape.constant(0.0);
      Var cm = tape.constant(0.0);
      for (const Var& pos : pin_pos) {
        Var sp = (pos - pmax) / gamma;
        Var sm = (pmin - pos) / gamma;
        Var ap = exp(sp);
        Var am = exp(sm);
        bp = bp + ap;
        bm = bm + am;
        cp = cp + (pos - pmax) * ap;
        cm = cm + (pos - pmin) * am;
      }
      terms.push_back((cp / bp + pmax) - (cm / bm + pmin));
    }
  }
  Var total = sum(terms);
  EXPECT_NEAR(total.value(), wl, 1e-8 * std::abs(wl));
  tape.backward(total);
  for (Index i = 0; i < n; ++i) {
    ASSERT_NEAR(tape.grad(vx[i]), grad[i], 1e-6 * (1 + std::abs(grad[i])))
        << "x grad of cell " << i;
    ASSERT_NEAR(tape.grad(vy[i]), grad[i + n],
                1e-6 * (1 + std::abs(grad[i + n])))
        << "y grad of cell " << i;
  }
}

TEST(TapeTest, ClearAllowsReuse) {
  Tape tape;
  Var x = tape.variable(1.0);
  tape.backward(x + 1.0);
  EXPECT_DOUBLE_EQ(tape.grad(x), 1.0);
  tape.clear();
  EXPECT_EQ(tape.size(), 0u);
  Var y = tape.variable(2.0);
  Var f = y * y;
  tape.backward(f);
  EXPECT_DOUBLE_EQ(tape.grad(y), 4.0);
}

}  // namespace
}  // namespace dreamplace::autograd
