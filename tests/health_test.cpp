// Live health subsystem (docs/OBSERVABILITY.md): the engine watchdog
// must cancel diverging and stalled jobs quickly, deliver terminal
// verdicts that are never retried, and surface the health section in the
// BatchReport; requested observability exports (run report, telemetry
// JSONL, metrics file) must fail the flow loudly when unwritable instead
// of silently vanishing.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/flow_context.h"
#include "gen/netlist_generator.h"
#include "place/engine.h"
#include "place/report.h"
#include "place/report_check.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Database> healthDesign(std::uint64_t seed,
                                       Index numCells = 400) {
  GeneratorConfig cfg;
  cfg.designName = "health" + std::to_string(seed);
  cfg.numCells = numCells;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

// A diverging job (SGD with an absurd learning rate) must be cancelled by
// the watchdog with terminal status `diverged` — long before the job
// timeout, without consuming retry attempts, and with the health section
// populated in both the struct and the JSON.
TEST(HealthTest, WatchdogCancelsDivergingJobTerminally) {
  auto db = healthDesign(21);

  EngineOptions engineOptions;
  engineOptions.jobTimeoutSeconds = 120.0;  // watchdog must win, not this
  engineOptions.maxJobAttempts = 3;         // verdicts are never retried
  engineOptions.divergenceHpwlRatio = 10.0;
  engineOptions.divergenceSamples = 2;
  engineOptions.watchdogPeriodSeconds = 0.01;
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "exploding";
  job.options.gp.solver = SolverKind::kSgdMomentum;
  job.options.gp.lr = 1.0e6;
  job.options.gp.maxIterations = 1000000;
  job.options.gp.binsMax = 64;

  const auto start = std::chrono::steady_clock::now();
  BatchReport batch = engine.run({std::move(job)});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_EQ(batch.jobs.size(), 1u);
  const JobReport& report = batch.jobs[0];
  EXPECT_EQ(report.status, JobStatus::kDiverged);
  EXPECT_EQ(report.attempts, 1);  // terminal: no retry despite 3 attempts
  EXPECT_EQ(batch.diverged, 1);
  EXPECT_FALSE(batch.allSucceeded());
  EXPECT_LT(wall, 60.0);  // far below jobTimeoutSeconds

  EXPECT_TRUE(report.health.watchdogEnabled);
  EXPECT_EQ(report.health.verdict, "diverged");
  EXPECT_FALSE(report.health.detail.empty());
  EXPECT_GE(report.health.checks, 1);
  EXPECT_GT(report.health.bestHpwl, 0.0);

  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batch.toJson(), flat, &error)) << error;
  EXPECT_EQ(flat.strings.at("jobs.0.status"), "diverged");
  EXPECT_EQ(flat.strings.at("jobs.0.health.verdict"), "diverged");
  EXPECT_GE(flat.numbers.at("jobs.0.health.checks"), 1.0);
  EXPECT_EQ(flat.numbers.at("counts.diverged"), 1.0);
}

// A hook that hangs before the flow starts (no heartbeat at all) must be
// cancelled by the stall policy — the hook runs with the attempt's
// FlowContext installed, so throwIfInterrupted() is its cancel point.
TEST(HealthTest, WatchdogCancelsStalledJobTerminally) {
  auto db = healthDesign(22);

  EngineOptions engineOptions;
  engineOptions.maxJobAttempts = 3;
  engineOptions.stallSeconds = 0.15;
  engineOptions.watchdogPeriodSeconds = 0.01;
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "hung";
  job.attemptHook = [](int) {
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      FlowContext::current().throwIfInterrupted();
    }
  };

  BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kStalled);
  EXPECT_EQ(batch.jobs[0].attempts, 1);
  EXPECT_EQ(batch.jobs[0].health.verdict, "stalled");
  EXPECT_FALSE(batch.jobs[0].health.detail.empty());
  EXPECT_EQ(batch.stalled, 1);
  EXPECT_FALSE(batch.allSucceeded());
}

// A healthy job under an active watchdog: no verdict, health section
// still populated with the last observed progress.
TEST(HealthTest, HealthyJobReportsCleanHealthSection) {
  auto db = healthDesign(23, 300);

  EngineOptions engineOptions;
  engineOptions.stallSeconds = 60.0;
  engineOptions.divergenceHpwlRatio = 1.0e6;
  engineOptions.watchdogPeriodSeconds = 0.01;
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "healthy";
  job.options.gp.maxIterations = 200;
  job.options.gp.binsMax = 64;

  BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  ASSERT_EQ(batch.jobs[0].status, JobStatus::kSucceeded);
  const JobHealth& health = batch.jobs[0].health;
  EXPECT_TRUE(health.watchdogEnabled);
  EXPECT_TRUE(health.verdict.empty());
  EXPECT_GE(health.checks, 1);

  FlatJson flat;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batch.toJson(), flat, &error)) << error;
  EXPECT_EQ(flat.numbers.at("jobs.0.health.watchdog"), 1.0);
  EXPECT_EQ(flat.strings.count("jobs.0.health.verdict"), 1u);
}

// checkBatchReport with per-job expected statuses: an injected sick job
// passes when (and only when) it lands in its expected terminal state.
TEST(HealthTest, BatchCheckHonorsExpectedStatus) {
  const std::string batchJson = R"({
    "schema": "dreamplace.batch_report.v1",
    "counts": {"jobs": 2, "succeeded": 1, "diverged": 1},
    "jobs": [
      {"name": "good", "status": "succeeded",
       "report": {"result": {"legal": true}}},
      {"name": "sick", "status": "diverged"}
    ]})";
  const std::string miniBaseline =
      R"({"schema": "dreamplace.report_baseline.v1",
          "checks": [{"path": "result.legal", "op": "eq", "value": 1}]})";

  FlatJson batch;
  FlatJson baseline;
  std::string error;
  ASSERT_TRUE(parseJsonFlat(batchJson, batch, &error)) << error;
  ASSERT_TRUE(parseJsonFlat(miniBaseline, baseline, &error)) << error;
  ASSERT_TRUE(isBatchReport(batch));

  // Without expectations the diverged job fails the gate.
  std::vector<BatchJobCheck> jobs;
  ASSERT_TRUE(checkBatchReport(batch, baseline, jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[0].succeeded);
  EXPECT_FALSE(jobs[1].succeeded);
  EXPECT_EQ(jobs[1].expected, "succeeded");

  // With the expectation it passes; the baseline is not applied to it.
  BatchCheckOptions options;
  options.expectedStatus["sick"] = "diverged";
  ASSERT_TRUE(checkBatchReport(batch, baseline, jobs, &error, options))
      << error;
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[1].succeeded);
  EXPECT_EQ(jobs[1].expected, "diverged");
  EXPECT_TRUE(jobs[1].results.empty());

  // An expectation can also demand failure of a job that succeeded.
  options.expectedStatus["good"] = "failed";
  ASSERT_TRUE(checkBatchReport(batch, baseline, jobs, &error, options))
      << error;
  EXPECT_FALSE(jobs[0].succeeded);
}

// --- Sink error paths: a requested export must fail the flow loudly. ----

TEST(HealthTest, UnwritableReportPathFailsJob) {
  auto db = healthDesign(24, 200);
  PlacementEngine engine;

  PlacementJob job;
  job.db = db.get();
  job.name = "badreport";
  job.options.gp.maxIterations = 40;
  job.options.gp.binsMax = 64;
  job.options.reportJson = "/nonexistent_dir_dp/report.json";

  BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kFailed);
  EXPECT_NE(batch.jobs[0].error.find("report: cannot write"),
            std::string::npos)
      << batch.jobs[0].error;
}

TEST(HealthTest, UnwritableTelemetryJsonlFailsJob) {
  auto db = healthDesign(25, 200);
  PlacementEngine engine;

  PlacementJob job;
  job.db = db.get();
  job.name = "badjsonl";
  job.options.gp.maxIterations = 40;
  job.options.gp.binsMax = 64;
  job.options.telemetryJsonl = "/nonexistent_dir_dp/telemetry.jsonl";

  BatchReport batch = engine.run({std::move(job)});
  ASSERT_EQ(batch.jobs.size(), 1u);
  EXPECT_EQ(batch.jobs[0].status, JobStatus::kFailed);
  EXPECT_FALSE(batch.jobs[0].error.empty());
}

TEST(HealthTest, UnwritableMetricsFileFailsEngineRunUpFront) {
  auto db = healthDesign(26, 200);

  EngineOptions engineOptions;
  engineOptions.metricsFile = "/nonexistent_dir_dp/metrics.prom";
  PlacementEngine engine(engineOptions);

  PlacementJob job;
  job.db = db.get();
  job.name = "badmetrics";
  job.options.gp.maxIterations = 40;

  std::vector<PlacementJob> jobs;
  jobs.push_back(std::move(job));
  try {
    engine.run(std::move(jobs));
    FAIL() << "expected std::runtime_error for unwritable metrics file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("metrics: cannot write"),
              std::string::npos)
        << e.what();
  }
}

// A nonzero trace/dropped counter surfaces as a run-report warning.
TEST(HealthTest, TraceDropWarningSurfacesInRunReport) {
  auto db = healthDesign(27, 100);
  PlacerOptions options;
  FlowResult result;
  FlowContext context;
  context.counters().add("trace/dropped", 5);

  const RunReport report =
      buildRunReport(*db, options, result, {}, context);
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("trace"), std::string::npos);
  EXPECT_NE(report.toJson().find("\"warnings\""), std::string::npos);
  EXPECT_NE(report.toText().find("warnings:"), std::string::npos);
}

}  // namespace
}  // namespace dreamplace
