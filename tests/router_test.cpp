#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/netlist_generator.h"
#include "router/congestion.h"
#include "router/global_router.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> placedDesign(std::uint64_t seed,
                                       Index cells = 800) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.seed = seed;
  auto db = generateNetlist(cfg);
  // Spread cells uniformly (placement-like input for the router).
  Rng rng(seed + 7);
  const Box<Coord>& die = db->dieArea();
  for (Index i = 0; i < db->numMovable(); ++i) {
    db->setCellPosition(
        i, rng.uniform(die.xl, die.xh - db->cellWidth(i)),
        rng.uniform(die.yl, die.yh - db->cellHeight(i)));
  }
  return db;
}

TEST(RouterTest, RoutesAllEligibleSegments) {
  auto db = placedDesign(1);
  RouterOptions options;
  options.gridX = 32;
  options.gridY = 32;
  GlobalRouter router(options);
  const RoutingResult result = router.route(*db);
  EXPECT_GT(result.routedSegments, db->numNets() / 2);
  EXPECT_EQ(result.gridX, 32);
  EXPECT_EQ(result.numLayerPairs, 2);
  EXPECT_GT(result.capacity, 0.0);
}

TEST(RouterTest, DemandConservation) {
  // Total demand across all layers equals total routed tile-edges
  // (each unit segment adds exactly one track on one layer).
  auto db = placedDesign(2, 400);
  RouterOptions options;
  options.gridX = 24;
  options.gridY = 24;
  options.rerouteRounds = 0;
  GlobalRouter router(options);
  const RoutingResult result = router.route(*db);
  double total_demand = 0;
  for (const auto& layer : result.demandH) {
    for (double d : layer) {
      total_demand += d;
    }
  }
  for (const auto& layer : result.demandV) {
    for (double d : layer) {
      total_demand += d;
    }
  }
  EXPECT_NEAR(total_demand, result.totalWirelengthTiles, 1e-6);
}

TEST(RouterTest, ClusteredPlacementMoreCongestedThanSpread) {
  auto spread = placedDesign(3);
  auto clustered = placedDesign(3);
  // Clump all cells into the die center region.
  const Box<Coord>& die = clustered->dieArea();
  Rng rng(99);
  for (Index i = 0; i < clustered->numMovable(); ++i) {
    clustered->setCellPosition(
        i,
        die.centerX() + rng.uniform(-0.05, 0.05) * die.width(),
        die.centerY() + rng.uniform(-0.05, 0.05) * die.height());
  }
  GlobalRouter router;
  const auto r_spread = computeCongestion(router.route(*spread));
  const auto r_clustered = computeCongestion(router.route(*clustered));
  EXPECT_GE(r_clustered.peak, r_spread.peak);
  EXPECT_GE(r_clustered.rc, r_spread.rc);
}

TEST(RouterTest, RerouteReducesOrMaintainsPeakCongestion) {
  auto db = placedDesign(4);
  RouterOptions no_rr;
  no_rr.rerouteRounds = 0;
  no_rr.capacityPerLayer = 2.0;  // artificially tight
  RouterOptions with_rr = no_rr;
  with_rr.rerouteRounds = 3;
  const auto before = computeCongestion(GlobalRouter(no_rr).route(*db));
  const auto after = computeCongestion(GlobalRouter(with_rr).route(*db));
  // Negotiation-style reroute targets hot edges; the peak (and the dense
  // percentiles) should not get worse. The raw overflowed-edge *count*
  // can grow as demand is spread across layers, which is fine.
  EXPECT_LE(after.peak, before.peak * 1.02);
  EXPECT_LE(after.rc, before.rc * 1.02);
}

TEST(RouterTest, SkipsHugeNets) {
  auto db = placedDesign(5, 300);
  RouterOptions restrictive;
  restrictive.maxNetDegree = 3;
  RouterOptions permissive;
  permissive.maxNetDegree = 1000;
  const auto r1 = GlobalRouter(restrictive).route(*db);
  const auto r2 = GlobalRouter(permissive).route(*db);
  EXPECT_LT(r1.routedSegments, r2.routedSegments);
}

TEST(CongestionTest, UncongestedMapGivesRc100) {
  RoutingResult result;
  result.gridX = 8;
  result.gridY = 8;
  result.numLayerPairs = 1;
  result.capacity = 10.0;
  result.demandH.assign(1, std::vector<double>(64, 1.0));  // 10% utilized
  result.demandV.assign(1, std::vector<double>(64, 1.0));
  const auto report = computeCongestion(result);
  EXPECT_DOUBLE_EQ(report.rc, 100.0);
  EXPECT_NEAR(report.peak, 10.0, 1e-9);
}

TEST(CongestionTest, OverflowRaisesRcAboveFloor) {
  RoutingResult result;
  result.gridX = 8;
  result.gridY = 8;
  result.numLayerPairs = 1;
  result.capacity = 10.0;
  result.demandH.assign(1, std::vector<double>(64, 12.0));  // 120% everywhere
  result.demandV.assign(1, std::vector<double>(64, 12.0));
  const auto report = computeCongestion(result);
  EXPECT_NEAR(report.rc, 120.0, 1e-9);
  EXPECT_NEAR(report.ace05, 120.0, 1e-9);
  EXPECT_NEAR(report.ace5, 120.0, 1e-9);
}

TEST(CongestionTest, AceOrderingIsMonotone) {
  // With a heterogeneous map, tighter percentiles see worse congestion.
  RoutingResult result;
  result.gridX = 16;
  result.gridY = 16;
  result.numLayerPairs = 1;
  result.capacity = 10.0;
  std::vector<double> h(256, 1.0);
  for (int i = 0; i < 16; ++i) {
    h[i * 16] = 15.0 + i;  // a few hot edges
  }
  result.demandH.assign(1, h);
  result.demandV.assign(1, std::vector<double>(256, 1.0));
  const auto report = computeCongestion(result);
  EXPECT_GE(report.ace05, report.ace1);
  EXPECT_GE(report.ace1, report.ace2);
  EXPECT_GE(report.ace2, report.ace5);
}

TEST(CongestionTest, ScaledHpwlFormula) {
  EXPECT_DOUBLE_EQ(scaledHpwl(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(scaledHpwl(100.0, 110.0), 130.0);  // +3%/point (eq. 20)
}

}  // namespace
}  // namespace dreamplace
