// Coverage for the observability stack (docs/OBSERVABILITY.md): the
// TelemetrySink API wired into the kernel-GP loop, the file sinks, and
// the flow-level exports on PlacerOptions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "gen/netlist_generator.h"
#include "gp/global_placer.h"
#include "gp/telemetry.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> smallDesign(std::uint64_t seed = 41,
                                      Index cells = 400) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

GlobalPlacerOptions fastOptions() {
  GlobalPlacerOptions options;
  options.maxIterations = 400;
  options.binsMax = 64;
  return options;
}

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

std::string tempPath(const char* name) { return ::testing::TempDir() + name; }

TEST(TelemetryTest, RecordingSinkSeesEveryIteration) {
  auto db = smallDesign();
  RecordingTelemetrySink sink;
  GlobalPlacerOptions options = fastOptions();
  options.telemetry = &sink;
  options.telemetryLabel = "unit";
  GlobalPlacer<double> placer(*db, options);
  const GlobalPlacerResult result = placer.run();

  ASSERT_EQ(sink.runs().size(), 1u);
  const TelemetryRunInfo& info = sink.runs().front();
  EXPECT_EQ(info.label, "unit");
  EXPECT_EQ(info.numMovable, db->numMovable());
  EXPECT_EQ(info.numNets, db->numNets());
  EXPECT_GE(info.numNodes, db->numMovable());  // movable + fillers
  EXPECT_FALSE(info.solver.empty());

  ASSERT_EQ(static_cast<int>(sink.iterations().size()), result.iterations);
  for (int i = 0; i < result.iterations; ++i) {
    const IterationStats& stats = sink.iterations()[i];
    EXPECT_EQ(stats.iteration, i);
    EXPECT_TRUE(std::isfinite(stats.objective));
    EXPECT_GT(stats.hpwl, 0.0);
    EXPECT_GT(stats.wirelength, 0.0);
    EXPECT_GT(stats.gamma, 0.0);
    EXPECT_GT(stats.lambda, 0.0);
    EXPECT_GT(stats.stepSize, 0.0);
    EXPECT_GE(stats.overflow, 0.0);
    EXPECT_GE(stats.wlOpSeconds, 0.0);
    EXPECT_GE(stats.densityOpSeconds, 0.0);
  }
  // The per-iteration op times must account for real work, not stay zero.
  double wl_total = 0.0;
  for (const IterationStats& stats : sink.iterations()) {
    wl_total += stats.wlOpSeconds;
  }
  EXPECT_GT(wl_total, 0.0);

  ASSERT_EQ(sink.summaries().size(), 1u);
  const TelemetryRunSummary& summary = sink.summaries().front();
  EXPECT_EQ(summary.iterations, result.iterations);
  EXPECT_DOUBLE_EQ(summary.hpwl, result.hpwl);
  EXPECT_DOUBLE_EQ(summary.overflow, result.overflow);
  EXPECT_GT(summary.seconds, 0.0);
}

TEST(TelemetryTest, MuxFansOutToAllSinks) {
  RecordingTelemetrySink a, b;
  TelemetryMux mux;
  EXPECT_TRUE(mux.empty());
  mux.addSink(nullptr);  // ignored
  EXPECT_TRUE(mux.empty());
  mux.addSink(&a);
  mux.addSink(&b);
  EXPECT_FALSE(mux.empty());

  IterationStats stats;
  stats.iteration = 3;
  mux.onRunBegin(TelemetryRunInfo{});
  mux.onIteration(stats);
  mux.onRunEnd(TelemetryRunSummary{});
  for (const RecordingTelemetrySink* sink : {&a, &b}) {
    EXPECT_EQ(sink->runs().size(), 1u);
    ASSERT_EQ(sink->iterations().size(), 1u);
    EXPECT_EQ(sink->iterations().front().iteration, 3);
    EXPECT_EQ(sink->summaries().size(), 1u);
  }
}

TEST(TelemetryTest, JsonlSinkWritesOneRecordPerIteration) {
  const std::string path = tempPath("telemetry_test_gp.jsonl");
  auto db = smallDesign();
  GlobalPlacerOptions options = fastOptions();
  int iterations = 0;
  {
    JsonlTelemetrySink sink(path);
    options.telemetry = &sink;
    options.telemetryLabel = "jsonl-design";
    GlobalPlacer<double> placer(*db, options);
    iterations = placer.run().iterations;
  }

  const std::vector<std::string> lines = readLines(path);
  std::remove(path.c_str());
  // Header + one record per iteration + run-end marker.
  ASSERT_EQ(static_cast<int>(lines.size()), iterations + 2);
  EXPECT_NE(lines.front().find("\"run\":\"jsonl-design\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"run_end\""), std::string::npos);
  const char* keys[] = {"\"iter\":",     "\"objective\":", "\"wl\":",
                        "\"density\":",  "\"lambda\":",    "\"gamma\":",
                        "\"overflow\":", "\"hpwl\":",      "\"step\":"};
  for (int i = 0; i < iterations; ++i) {
    const std::string& line = lines[1 + i];
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key : keys) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in: " << line;
    }
    EXPECT_NE(line.find("\"iter\":" + std::to_string(i)), std::string::npos);
  }
}

TEST(TelemetryTest, FileSinksThrowOnUnwritablePath) {
  EXPECT_THROW(JsonlTelemetrySink("/nonexistent-dir/telemetry.jsonl"),
               std::runtime_error);
  EXPECT_THROW(CsvTelemetrySink("/nonexistent-dir/telemetry.csv"),
               std::runtime_error);
}

TEST(TelemetryTest, CsvSinkWritesOneRowPerRun) {
  const std::string path = tempPath("telemetry_test_runs.csv");
  {
    CsvTelemetrySink sink(path);
    TelemetryRunInfo info;
    info.label = "design-a";
    TelemetryRunSummary summary;
    summary.iterations = 12;
    summary.hpwl = 3.5e6;
    sink.onRunBegin(info);
    sink.onRunEnd(summary);
    info.label = "design-b";
    sink.onRunBegin(info);
    sink.onRunEnd(summary);
  }
  const std::vector<std::string> lines = readLines(path);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "label,iterations,hpwl,overflow,lambda,seconds");
  EXPECT_EQ(lines[1].rfind("design-a,12,", 0), 0u);
  EXPECT_EQ(lines[2].rfind("design-b,12,", 0), 0u);
}

TEST(TelemetryTest, TraceSinkEmitsCounterTracks) {
  auto& trace = TraceRecorder::instance();
  trace.clear();
  trace.setEnabled(true);
  TraceTelemetrySink sink;
  IterationStats stats;
  stats.overflow = 0.5;
  stats.hpwl = 1e6;
  sink.onIteration(stats);
  trace.setEnabled(false);
  const std::string json = trace.toJson();
  trace.clear();
  EXPECT_NE(json.find("\"gp.overflow\""), std::string::npos);
  EXPECT_NE(json.find("\"gp.hpwl\""), std::string::npos);
  EXPECT_NE(json.find("\"gp.lambda\""), std::string::npos);
}

TEST(TelemetryTest, FlowExportsJsonlCsvAndTrace) {
  const std::string jsonl = tempPath("telemetry_test_flow.jsonl");
  const std::string csv = tempPath("telemetry_test_flow.csv");
  const std::string trace_path = tempPath("telemetry_test_flow.trace.json");
  auto db = smallDesign(59, 300);
  PlacerOptions options;
  options.gp = fastOptions();
  options.dp.passes = 1;
  options.telemetryJsonl = jsonl;
  options.telemetryCsv = csv;
  options.traceFile = trace_path;
  options.telemetryLabel = "flow-design";
  RecordingTelemetrySink extra;
  options.telemetry = &extra;  // caller sink composes with file exports
  const FlowResult result = placeDesign(*db, options);

  EXPECT_GT(result.gpIterations, 0);
  EXPECT_EQ(static_cast<int>(extra.iterations().size()), result.gpIterations);

  const std::vector<std::string> jsonl_lines = readLines(jsonl);
  std::remove(jsonl.c_str());
  ASSERT_EQ(static_cast<int>(jsonl_lines.size()), result.gpIterations + 2);
  EXPECT_NE(jsonl_lines.front().find("\"run\":\"flow-design\""),
            std::string::npos);

  const std::vector<std::string> csv_lines = readLines(csv);
  std::remove(csv.c_str());
  ASSERT_EQ(csv_lines.size(), 2u);
  EXPECT_EQ(csv_lines[1].rfind("flow-design,", 0), 0u);

  // The trace must cover the whole flow: GP op scopes from ScopedTimer,
  // the LG stage, and the GP counter tracks.
  std::ifstream in(trace_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace_json = buffer.str();
  std::remove(trace_path.c_str());
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"gp/op/wirelength\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"gp/op/density\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"lg\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"gp.overflow\""), std::string::npos);
  // Recording was switched off again when the flow finished.
  EXPECT_FALSE(TraceRecorder::instance().enabled());
  TraceRecorder::instance().clear();
}

TEST(TelemetryTest, NullSinkKeepsGpByteIdentical) {
  // Telemetry off must not perturb the optimization (determinism check:
  // same seed with and without a sink gives bit-identical results).
  auto db1 = smallDesign(43);
  auto db2 = smallDesign(43);
  RecordingTelemetrySink sink;
  GlobalPlacerOptions with = fastOptions();
  with.telemetry = &sink;
  GlobalPlacer<double> p1(*db1, with);
  GlobalPlacer<double> p2(*db2, fastOptions());
  const GlobalPlacerResult r1 = p1.run();
  const GlobalPlacerResult r2 = p2.run();
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
}

}  // namespace
}  // namespace dreamplace
