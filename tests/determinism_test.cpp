// Determinism suite for the parallel runtime (docs/PARALLEL.md): the
// full flow and every wirelength kernel must produce bit-identical
// float64 results at any thread count. This is the contract that lets
// the count-based regression gate pin flow metrics exactly.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "db/metrics.h"
#include "dp/detailed_placer.h"
#include "gen/netlist_generator.h"
#include "lg/abacus_legalizer.h"
#include "ops/wirelength.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> synthDesign(std::uint64_t seed, Index cells = 400) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numPads = 8;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

template <typename T>
std::vector<T> centerParams(const Database& db, Index numNodes) {
  std::vector<T> params(2 * static_cast<size_t>(numNodes), T(0));
  for (Index i = 0; i < db.numMovable(); ++i) {
    params[i] = static_cast<T>(db.cellX(i) + db.cellWidth(i) / 2);
    params[i + numNodes] =
        static_cast<T>(db.cellY(i) + db.cellHeight(i) / 2);
  }
  return params;
}

TEST(DeterminismTest, FlowIsBitIdenticalAcrossThreadCounts) {
  // Same seed, same options, three thread counts: the final HPWL and
  // overflow must match to the last bit (EXPECT_EQ on doubles, no
  // tolerance). On a 1-core machine the 2/4-thread runs execute
  // oversubscribed, which still exercises the block decomposition and
  // ordered combination the contract relies on.
  struct Outcome {
    double hpwlGp, hpwlLegal, hpwl, overflow;
    int iterations;
  };
  auto runFlow = [](int threads) {
    auto db = synthDesign(42);
    PlacerOptions options;
    options.precision = Precision::kFloat64;
    options.threads = threads;
    options.gp.maxIterations = 300;
    options.gp.binsMax = 64;
    options.dp.passes = 1;
    const FlowResult r = placeDesign(*db, options);
    return Outcome{r.hpwlGp, r.hpwlLegal, r.hpwl, r.overflow, r.gpIterations};
  };
  const Outcome t1 = runFlow(1);
  for (const int threads : {2, 4}) {
    const Outcome t = runFlow(threads);
    EXPECT_EQ(t1.hpwlGp, t.hpwlGp) << threads << " threads";
    EXPECT_EQ(t1.hpwlLegal, t.hpwlLegal) << threads << " threads";
    EXPECT_EQ(t1.hpwl, t.hpwl) << threads << " threads";
    EXPECT_EQ(t1.overflow, t.overflow) << threads << " threads";
    EXPECT_EQ(t1.iterations, t.iterations) << threads << " threads";
  }
  ThreadPool::instance().setThreads(0);
}

TEST(DeterminismTest, BackendBitIdenticalAcrossThreadCounts) {
  // LG + DP only: the parallel back-end (speculative Abacus candidate
  // scoring, DP propose+commit reorder/swap, bbox-cache evaluation) must
  // reproduce the serial results bit-for-bit — every final position and
  // the HPWL compare with EXPECT_EQ, no tolerance. The same jittered
  // start is rebuilt per run so each thread count legalizes identical
  // input.
  auto runBackend = [](int threads, std::vector<double>& xs,
                       std::vector<double>& ys) {
    auto db = synthDesign(1234, 600);
    Rng rng(99);
    const Coord h = db->rowHeight();
    for (Index i = 0; i < db->numMovable(); ++i) {
      db->setCellPosition(i, db->cellX(i) + rng.uniform(-5 * h, 5 * h),
                          db->cellY(i) + rng.uniform(-5 * h, 5 * h));
    }
    ThreadPool::instance().setThreads(threads);
    AbacusLegalizer().run(*db);
    DetailedPlacer::Options options;
    options.passes = 2;
    DetailedPlacer(options).run(*db);
    xs.clear();
    ys.clear();
    for (Index i = 0; i < db->numCells(); ++i) {
      xs.push_back(db->cellX(i));
      ys.push_back(db->cellY(i));
    }
    return hpwl(*db);
  };
  std::vector<double> x1, y1, x, y;
  const double hpwl1 = runBackend(1, x1, y1);
  for (const int threads : {2, 4}) {
    const double hpwlT = runBackend(threads, x, y);
    EXPECT_EQ(hpwl1, hpwlT) << threads << " threads";
    ASSERT_EQ(x1.size(), x.size());
    for (std::size_t i = 0; i < x1.size(); ++i) {
      ASSERT_EQ(x1[i], x[i]) << "cell " << i << " x at " << threads
                             << " threads";
      ASSERT_EQ(y1[i], y[i]) << "cell " << i << " y at " << threads
                             << " threads";
    }
  }
  ThreadPool::instance().setThreads(0);
}

class KernelDeterminismTest
    : public ::testing::TestWithParam<WirelengthKernel> {};

TEST_P(KernelDeterminismTest, GradientBitIdenticalAcrossThreadCounts) {
  auto db = synthDesign(77, 300);
  const Index n = db->numMovable();
  const auto params = centerParams<double>(*db, n);

  auto evaluate = [&](int threads, std::vector<double>& grad) {
    ThreadPool::instance().setThreads(threads);
    WaWirelengthOp<double>::Options opts;
    opts.kernel = GetParam();
    WaWirelengthOp<double> op(*db, n, opts);
    op.setGamma(4.0);
    grad.assign(params.size(), 0.0);
    return op.evaluate(params, grad);
  };

  std::vector<double> g1, g;
  const double v1 = evaluate(1, g1);
  for (const int threads : {2, 4}) {
    const double v = evaluate(threads, g);
    EXPECT_EQ(v1, v) << threads << " threads";
    for (size_t i = 0; i < g1.size(); ++i) {
      ASSERT_EQ(g1[i], g[i]) << "grad " << i << " at " << threads
                             << " threads";
    }
  }
  ThreadPool::instance().setThreads(0);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelDeterminismTest,
                         ::testing::Values(WirelengthKernel::kNetByNet,
                                           WirelengthKernel::kAtomic,
                                           WirelengthKernel::kMerged),
                         [](const auto& info) {
                           switch (info.param) {
                             case WirelengthKernel::kNetByNet:
                               return "NetByNet";
                             case WirelengthKernel::kAtomic: return "Atomic";
                             case WirelengthKernel::kMerged: return "Merged";
                           }
                           return "?";
                         });

TEST(DeterminismTest, KernelsAgreeAtEveryThreadCount) {
  // Three-way agreement (the seed's MatchesMergedKernel property) must
  // hold at every pool size, not just the default.
  auto db = synthDesign(91, 250);
  const Index n = db->numMovable();
  const auto params = centerParams<double>(*db, n);

  for (const int threads : {1, 2, 4}) {
    ThreadPool::instance().setThreads(threads);
    std::vector<double> ref;
    double ref_value = 0.0;
    for (const WirelengthKernel kernel :
         {WirelengthKernel::kMerged, WirelengthKernel::kNetByNet,
          WirelengthKernel::kAtomic}) {
      WaWirelengthOp<double>::Options opts;
      opts.kernel = kernel;
      WaWirelengthOp<double> op(*db, n, opts);
      op.setGamma(4.0);
      std::vector<double> grad(params.size(), 0.0);
      const double value = op.evaluate(params, grad);
      if (ref.empty()) {
        ref = grad;
        ref_value = value;
        continue;
      }
      EXPECT_NEAR(value, ref_value, 1e-9 * std::abs(ref_value))
          << threads << " threads";
      for (size_t i = 0; i < grad.size(); ++i) {
        ASSERT_NEAR(grad[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i])))
            << "grad " << i << " at " << threads << " threads";
      }
    }
  }
  ThreadPool::instance().setThreads(0);
}

}  // namespace
}  // namespace dreamplace
