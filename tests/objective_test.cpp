// CompositeObjective: the "loss + lambda * regularizer" seam between the
// placement ops and the optimizers.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "autograd/objective.h"

namespace dreamplace {
namespace {

/// f(x) = 0.5 * sum_i a_i * (x_i - c_i)^2, gradient a_i * (x_i - c_i).
class QuadraticTerm final : public ObjectiveFunction<double> {
 public:
  QuadraticTerm(std::vector<double> scale, std::vector<double> center)
      : scale_(std::move(scale)), center_(std::move(center)) {}

  std::size_t size() const override { return scale_.size(); }

  double evaluate(std::span<const double> params,
                  std::span<double> grad) override {
    ++evaluations_;
    double value = 0.0;
    for (std::size_t i = 0; i < scale_.size(); ++i) {
      const double d = params[i] - center_[i];
      value += 0.5 * scale_[i] * d * d;
      grad[i] = scale_[i] * d;
    }
    return value;
  }

  int evaluations() const { return evaluations_; }

 private:
  std::vector<double> scale_;
  std::vector<double> center_;
  int evaluations_ = 0;
};

TEST(CompositeObjectiveTest, EmptyCompositeHasZeroSize) {
  CompositeObjective<double> composite;
  EXPECT_EQ(composite.size(), 0u);
  EXPECT_EQ(composite.numTerms(), 0u);
}

TEST(CompositeObjectiveTest, WeightedSumOfValuesAndGradients) {
  QuadraticTerm a({1.0, 2.0}, {0.0, 0.0});
  QuadraticTerm b({3.0, 1.0}, {1.0, -1.0});
  CompositeObjective<double> composite;
  composite.addTerm(&a, 1.0);
  composite.addTerm(&b, 0.5);
  EXPECT_EQ(composite.numTerms(), 2u);
  EXPECT_EQ(composite.size(), 2u);

  const std::vector<double> x = {2.0, 3.0};
  std::vector<double> grad(2), ga(2), gb(2);
  const double value = composite.evaluate(x, grad);
  const double va = a.evaluate(x, ga);
  const double vb = b.evaluate(x, gb);
  EXPECT_DOUBLE_EQ(value, va + 0.5 * vb);
  for (int i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(grad[i], ga[i] + 0.5 * gb[i]);
  }
}

TEST(CompositeObjectiveTest, GradientOverwritesNotAccumulates) {
  QuadraticTerm a({1.0}, {0.0});
  CompositeObjective<double> composite;
  composite.addTerm(&a, 1.0);
  const std::vector<double> x = {4.0};
  std::vector<double> grad = {123.0};  // stale garbage must be overwritten
  composite.evaluate(x, grad);
  EXPECT_DOUBLE_EQ(grad[0], 4.0);
  composite.evaluate(x, grad);
  EXPECT_DOUBLE_EQ(grad[0], 4.0);
}

TEST(CompositeObjectiveTest, SetWeightRescalesTerm) {
  QuadraticTerm a({2.0}, {0.0});
  QuadraticTerm b({2.0}, {0.0});
  CompositeObjective<double> composite;
  composite.addTerm(&a, 1.0);
  composite.addTerm(&b, 1.0);
  EXPECT_DOUBLE_EQ(composite.weight(1), 1.0);

  const std::vector<double> x = {3.0};
  std::vector<double> grad(1);
  const double v1 = composite.evaluate(x, grad);
  EXPECT_DOUBLE_EQ(grad[0], 12.0);

  composite.setWeight(1, 10.0);  // the density-weight schedule move
  EXPECT_DOUBLE_EQ(composite.weight(1), 10.0);
  const double v2 = composite.evaluate(x, grad);
  EXPECT_DOUBLE_EQ(v2 - v1, 9.0 * 9.0);  // 9 * (0.5 * 2 * 3^2)
  EXPECT_DOUBLE_EQ(grad[0], 6.0 + 60.0);
}

TEST(CompositeObjectiveTest, LastTermValueTracksUnweightedTerms) {
  QuadraticTerm a({2.0}, {0.0});
  QuadraticTerm b({4.0}, {0.0});
  CompositeObjective<double> composite;
  composite.addTerm(&a, 0.25);
  composite.addTerm(&b, 100.0);
  const std::vector<double> x = {1.0};
  std::vector<double> grad(1);
  composite.evaluate(x, grad);
  // lastTermValue reports the raw term value, before weighting — that is
  // what the GP loop exports as the wirelength/density telemetry fields.
  EXPECT_DOUBLE_EQ(composite.lastTermValue(0), 1.0);
  EXPECT_DOUBLE_EQ(composite.lastTermValue(1), 2.0);
}

TEST(CompositeObjectiveTest, EvaluatesEachTermExactlyOnce) {
  QuadraticTerm a({1.0}, {0.0});
  QuadraticTerm b({1.0}, {0.0});
  CompositeObjective<double> composite;
  composite.addTerm(&a, 1.0);
  composite.addTerm(&b, 2.0);
  const std::vector<double> x = {1.0};
  std::vector<double> grad(1);
  for (int i = 1; i <= 3; ++i) {
    composite.evaluate(x, grad);
    EXPECT_EQ(a.evaluations(), i);
    EXPECT_EQ(b.evaluations(), i);
  }
}

}  // namespace
}  // namespace dreamplace
