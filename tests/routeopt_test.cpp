#include <gtest/gtest.h>

#include "db/metrics.h"
#include "gen/netlist_generator.h"
#include "routeopt/inflation.h"

namespace dreamplace {
namespace {

RoutabilityOptions fastOptions() {
  RoutabilityOptions options;
  options.gp.maxIterations = 300;
  options.gp.binsMax = 64;
  options.router.gridX = 24;
  options.router.gridY = 24;
  options.maxRounds = 3;
  return options;
}

std::unique_ptr<Database> routabilityDesign(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.numCells = 600;
  cfg.utilization = 0.55;  // routability designs run at lower density
  cfg.seed = seed;
  return generateNetlist(cfg);
}

TEST(RoutabilityTest, RunsToCompletion) {
  auto db = routabilityDesign(71);
  RoutabilityDrivenPlacer<double> placer(*db, fastOptions());
  const auto result = placer.run();
  EXPECT_GT(result.hpwl, 0.0);
  EXPECT_GE(result.sHpwl, result.hpwl);  // RC >= 100 => sHPWL >= HPWL
  EXPECT_GE(result.congestion.rc, 100.0);
  EXPECT_LE(result.inflationRounds, fastOptions().maxRounds + 1);
  EXPECT_GE(result.routerInvocations, 1);
  EXPECT_GT(result.nlSeconds, 0.0);
  EXPECT_GE(result.grSeconds, 0.0);
}

TEST(RoutabilityTest, FinalOverflowReasonable) {
  auto db = routabilityDesign(73);
  RoutabilityDrivenPlacer<double> placer(*db, fastOptions());
  const auto result = placer.run();
  EXPECT_LT(result.gp.overflow, 0.25);
}

TEST(RoutabilityTest, TightCapacityTriggersInflation) {
  auto db = routabilityDesign(79);
  RoutabilityOptions options = fastOptions();
  options.router.capacityPerLayer = 1.5;  // very tight: force congestion
  RoutabilityDrivenPlacer<double> placer(*db, options);
  const auto result = placer.run();
  // The tight capacity must trigger at least one extra router invocation
  // (the trigger route plus the final estimate) and some inflation.
  EXPECT_GE(result.routerInvocations, 2);
  EXPECT_GE(result.inflationRounds, 1);
}

TEST(RoutabilityTest, AmpleCapacityKeepsRcNearFloor) {
  auto db = routabilityDesign(83);
  RoutabilityOptions options = fastOptions();
  options.router.capacityPerLayer = 1000.0;  // effectively unconstrained
  RoutabilityDrivenPlacer<double> placer(*db, options);
  const auto result = placer.run();
  EXPECT_NEAR(result.congestion.rc, 100.0, 1.0);
  EXPECT_NEAR(result.sHpwl, result.hpwl, 0.05 * result.hpwl);
}

TEST(RoutabilityTest, InflationImprovesCongestionVsBaseline) {
  // Compare final RC of a routability-driven run against plain GP on the
  // same design under the same (tight) capacity model.
  auto db_plain = routabilityDesign(89);
  auto db_opt = routabilityDesign(89);
  RoutabilityOptions options = fastOptions();
  options.router.capacityPerLayer = 3.0;

  GlobalPlacer<double> plain(*db_plain, options.gp);
  plain.run();
  const auto rc_plain =
      computeCongestion(GlobalRouter(options.router).route(*db_plain)).rc;

  RoutabilityDrivenPlacer<double> opt(*db_opt, options);
  const auto result = opt.run();
  // Inflation should not make congestion (much) worse; typically better.
  EXPECT_LE(result.congestion.rc, rc_plain * 1.05 + 1.0);
}

}  // namespace
}  // namespace dreamplace
