// Unit tests for the incremental net-bbox cache (dp/net_bbox.h): every
// value the cache or its override evaluator produces must equal a full
// rescan bit-for-bit (EXPECT_EQ on doubles, no tolerance) — that is the
// property that lets the parallel DP back-end replace the full-scan
// evaluator without perturbing any placement result.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "dp/net_bbox.h"
#include "gen/netlist_generator.h"

namespace dreamplace {
namespace {

std::unique_ptr<Database> synthDesign(std::uint64_t seed, Index cells = 300) {
  GeneratorConfig cfg;
  cfg.numCells = cells;
  cfg.numPads = 8;
  cfg.utilization = 0.7;
  cfg.seed = seed;
  return generateNetlist(cfg);
}

/// Brute-force reference: weighted HPWL of `net` with the given cells'
/// positions overridden, by scanning every pin.
double scanNetHpwl(const Database& db, Index net,
                   const std::vector<Index>& ovCells,
                   const std::vector<Coord>& ovX,
                   const std::vector<Coord>& ovY) {
  if (db.netPinEnd(net) - db.netPinBegin(net) < 2) {
    return 0.0;
  }
  double xl = std::numeric_limits<double>::infinity();
  double xh = -xl, yl = xl, yh = -xl;
  for (Index p = db.netPinBegin(net); p < db.netPinEnd(net); ++p) {
    const Index c = db.pinCell(p);
    double base_x = db.cellX(c);
    double base_y = db.cellY(c);
    for (std::size_t k = 0; k < ovCells.size(); ++k) {
      if (ovCells[k] == c) {
        base_x = ovX[k];
        base_y = ovY[k];
        break;
      }
    }
    const double px = base_x + db.cellWidth(c) / 2 + db.pinOffsetX(p);
    const double py = base_y + db.cellHeight(c) / 2 + db.pinOffsetY(p);
    xl = std::min(xl, px);
    xh = std::max(xh, px);
    yl = std::min(yl, py);
    yh = std::max(yh, py);
  }
  return db.netWeight(net) * ((xh - xl) + (yh - yl));
}

TEST(NetBboxCacheTest, TracksRandomMoveSequenceExactly) {
  auto db = synthDesign(11);
  NetBboxCache cache;
  cache.build(*db);

  // Random walk: move random cells (including exact revisits of previous
  // positions, which stress the boundary-multiplicity bookkeeping) and
  // keep the cache in lockstep.
  Rng rng(7);
  const Coord h = db->rowHeight();
  for (int step = 0; step < 500; ++step) {
    const auto cell =
        static_cast<Index>(rng.uniformInt(db->numMovable()));
    const Coord old_x = db->cellX(cell);
    const Coord old_y = db->cellY(cell);
    Coord nx = old_x + rng.uniform(-4 * h, 4 * h);
    Coord ny = old_y + rng.uniform(-4 * h, 4 * h);
    if (step % 5 == 0) {
      nx = old_x;  // pure-y move: x boundaries must survive untouched
    }
    db->setCellPosition(cell, nx, ny);
    cache.moveCell(*db, cell, old_x, old_y);
  }

  for (Index e = 0; e < db->numNets(); ++e) {
    EXPECT_EQ(cache.netHpwl(*db, e), scanNetHpwl(*db, e, {}, {}, {}))
        << "net " << e;
  }
  // The walk above is long enough that some move must have taken a
  // boundary away (rescan) and some must not have (pure delta).
  EXPECT_GT(cache.maintenanceRescans, 0);
}

TEST(NetBboxEvalTest, OverridesMatchBruteForce) {
  auto db = synthDesign(23);
  NetBboxCache cache;
  cache.build(*db);
  NetBboxEval eval(*db, cache);

  Rng rng(3);
  const Coord h = db->rowHeight();
  std::vector<Index> cells;
  std::vector<Coord> xs, ys;
  for (int trial = 0; trial < 200; ++trial) {
    eval.clearOverrides();
    cells.clear();
    xs.clear();
    ys.clear();
    const int k = 1 + static_cast<int>(rng.uniformInt(3));
    for (int i = 0; i < k; ++i) {
      const auto c = static_cast<Index>(rng.uniformInt(db->numMovable()));
      if (std::find(cells.begin(), cells.end(), c) != cells.end()) {
        continue;
      }
      const Coord nx = db->cellX(c) + rng.uniform(-6 * h, 6 * h);
      const Coord ny = db->cellY(c) + rng.uniform(-6 * h, 6 * h);
      eval.setOverride(c, nx, ny);
      cells.push_back(c);
      xs.push_back(nx);
      ys.push_back(ny);
    }
    // Every net touched by an override, plus a random (likely untouched)
    // net, must match the brute-force scan exactly.
    for (const Index c : cells) {
      for (Index s = db->cellPinBegin(c); s < db->cellPinEnd(c); ++s) {
        const Index e = db->pinNet(db->cellPinAt(s));
        ASSERT_EQ(eval.netHpwl(e), scanNetHpwl(*db, e, cells, xs, ys))
            << "net " << e << " trial " << trial;
      }
    }
    const auto e = static_cast<Index>(rng.uniformInt(db->numNets()));
    ASSERT_EQ(eval.netHpwl(e), scanNetHpwl(*db, e, cells, xs, ys))
        << "net " << e << " trial " << trial;
  }
  EXPECT_GT(eval.deltas, 0);
}

TEST(NetBboxEvalTest, UpdateOverrideMatchesFreshOverrides) {
  // The slot-repositioning fast path (no moved-pin rebuild) must produce
  // the same values as tearing down and re-establishing the overrides.
  auto db = synthDesign(41);
  NetBboxCache cache;
  cache.build(*db);
  NetBboxEval fast(*db, cache);
  NetBboxEval fresh(*db, cache);

  const Index a = 3;
  const Index b = static_cast<Index>(db->numMovable() - 5);
  std::vector<Index> nets;
  for (const Index c : {a, b}) {
    for (Index s = db->cellPinBegin(c); s < db->cellPinEnd(c); ++s) {
      nets.push_back(db->pinNet(db->cellPinAt(s)));
    }
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  fast.setOverride(a, db->cellX(a), db->cellY(a));
  fast.setOverride(b, db->cellX(b), db->cellY(b));
  Rng rng(5);
  const Coord h = db->rowHeight();
  for (int trial = 0; trial < 100; ++trial) {
    const Coord ax = db->cellX(a) + rng.uniform(-6 * h, 6 * h);
    const Coord ay = db->cellY(a) + rng.uniform(-6 * h, 6 * h);
    const Coord bx = db->cellX(b) + rng.uniform(-6 * h, 6 * h);
    const Coord by = db->cellY(b) + rng.uniform(-6 * h, 6 * h);
    fast.updateOverride(0, ax, ay);
    fast.updateOverride(1, bx, by);
    fresh.clearOverrides();
    fresh.setOverride(a, ax, ay);
    fresh.setOverride(b, bx, by);
    ASSERT_EQ(fast.netsHpwl(nets), fresh.netsHpwl(nets)) << "trial " << trial;
  }
}

TEST(NetBboxEvalTest, NetsHpwlAccumulatesInListOrder) {
  auto db = synthDesign(31, 200);
  NetBboxCache cache;
  cache.build(*db);
  NetBboxEval eval(*db, cache);

  const auto cell = static_cast<Index>(db->numMovable() / 2);
  eval.setOverride(cell, db->cellX(cell) + 3 * db->rowHeight(),
                   db->cellY(cell));

  std::vector<Index> nets;
  for (Index s = db->cellPinBegin(cell); s < db->cellPinEnd(cell); ++s) {
    nets.push_back(db->pinNet(db->cellPinAt(s)));
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  double expected = 0.0;
  for (const Index e : nets) {
    expected += scanNetHpwl(*db, e, {cell},
                            {db->cellX(cell) + 3 * db->rowHeight()},
                            {db->cellY(cell)});
  }
  EXPECT_EQ(eval.netsHpwl(nets), expected);
}

}  // namespace
}  // namespace dreamplace
