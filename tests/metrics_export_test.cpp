// Metrics exposition (common/metrics_export.h) and the liveness
// heartbeat (common/heartbeat.h) it exports: the rendered document must
// be valid Prometheus text covering counters, self-times, memory and
// per-job heartbeat gauges; file replacement must be atomic; and the
// seqlock heartbeat must never show a torn snapshot to a concurrent
// reader.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/flow_context.h"
#include "common/heartbeat.h"
#include "common/metrics_export.h"
#include "gen/netlist_generator.h"
#include "place/placer.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

TEST(HeartbeatTest, StartsUnpublishedAndRoundTripsPublishes) {
  HeartbeatState heartbeat;
  HeartbeatSnapshot snapshot = heartbeat.read();
  EXPECT_FALSE(snapshot.everPublished());
  EXPECT_EQ(snapshot.sequence, 0u);
  EXPECT_EQ(snapshot.stage, FlowStage::kIdle);

  heartbeat.beginStage(FlowStage::kGlobalPlacement);
  snapshot = heartbeat.read();
  EXPECT_TRUE(snapshot.everPublished());
  EXPECT_EQ(snapshot.stage, FlowStage::kGlobalPlacement);
  EXPECT_EQ(snapshot.iteration, -1);

  heartbeat.publishIteration(3, 123.5, 0.42);
  snapshot = heartbeat.read();
  EXPECT_EQ(snapshot.iteration, 3);
  EXPECT_EQ(snapshot.hpwl, 123.5);
  EXPECT_EQ(snapshot.overflow, 0.42);
  EXPECT_EQ(snapshot.sequence % 2, 0u);
  EXPECT_GE(snapshot.timestampMicros, 1);
  EXPECT_GE(snapshot.ageSeconds(HeartbeatState::nowMicros()), 0.0);
}

TEST(HeartbeatTest, TracksRunningBestOverFiniteHpwls) {
  HeartbeatState heartbeat;
  heartbeat.beginStage(FlowStage::kGlobalPlacement);
  heartbeat.publishIteration(0, 100.0, 1.0);
  EXPECT_EQ(heartbeat.read().bestHpwl, 100.0);
  heartbeat.publishIteration(1, 150.0, 0.9);
  EXPECT_EQ(heartbeat.read().bestHpwl, 100.0);
  heartbeat.publishIteration(2, 50.0, 0.8);
  EXPECT_EQ(heartbeat.read().bestHpwl, 50.0);
  // Non-finite publishes never become the best (the divergence ratio
  // must keep a sane denominator).
  heartbeat.publishIteration(3, std::nan(""), 0.7);
  const HeartbeatSnapshot snapshot = heartbeat.read();
  EXPECT_TRUE(std::isnan(snapshot.hpwl));
  EXPECT_EQ(snapshot.bestHpwl, 50.0);
}

TEST(HeartbeatTest, StageNames) {
  EXPECT_STREQ(flowStageName(FlowStage::kIdle), "idle");
  EXPECT_STREQ(flowStageName(FlowStage::kGlobalPlacement), "gp");
  EXPECT_STREQ(flowStageName(FlowStage::kLegalization), "lg");
  EXPECT_STREQ(flowStageName(FlowStage::kDetailedPlacement), "dp");
  EXPECT_STREQ(flowStageName(FlowStage::kDone), "done");
}

// Seqlock torn-read check: the writer maintains hpwl == 2 * iteration
// and overflow == -iteration; a concurrent reader must never observe a
// snapshot violating the invariant.
TEST(HeartbeatTest, ConcurrentReaderNeverSeesTornSnapshot) {
  HeartbeatState heartbeat;
  heartbeat.beginStage(FlowStage::kGlobalPlacement);
  // Seed one publish synchronously: on a single core the reader loop may
  // finish before the writer thread is ever scheduled.
  heartbeat.publishIteration(0, 0.0, 0.0);
  std::atomic<bool> stop{false};

  std::thread writer([&heartbeat, &stop] {
    int i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      heartbeat.publishIteration(i, 2.0 * i, -1.0 * i);
      ++i;
    }
  });

  int consistent = 0;
  for (int r = 0; r < 20000; ++r) {
    const HeartbeatSnapshot snapshot = heartbeat.read();
    if (snapshot.iteration >= 0) {
      ASSERT_EQ(snapshot.hpwl, 2.0 * snapshot.iteration);
      ASSERT_EQ(snapshot.overflow, -1.0 * snapshot.iteration);
      ++consistent;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(consistent, 0);
}

// One real mini-flow rendered as Prometheus text: the document validates
// and covers every family the dashboard needs — counters, self-time
// seconds, tracked memory, per-job heartbeat gauges, process RSS/HWM.
TEST(MetricsExportTest, RenderedFlowExpositionValidatesAndCoversFamilies) {
  GeneratorConfig cfg;
  cfg.designName = "mini";
  cfg.numCells = 150;
  cfg.utilization = 0.7;
  cfg.seed = 31;
  const std::unique_ptr<Database> db = generateNetlist(cfg);

  PlacerOptions options;
  options.gp.maxIterations = 40;
  options.gp.binsMax = 32;
  options.dp.passes = 1;
  FlowContext context;
  placeDesign(*db, options, context);

  const std::string text =
      renderPrometheusMetrics({MetricsSource{"mini", &context}});
  std::string error;
  std::size_t samples = 0;
  ASSERT_TRUE(validatePrometheusText(text, &error, &samples)) << error;
  EXPECT_GT(samples, 10u);

  for (const char* needle :
       {"dreamplace_counter_total{job=\"mini\",key=\"ops/density/evaluate\"}",
        "dreamplace_timing_self_seconds_total{job=\"mini\",key=\"gp\"}",
        "dreamplace_timing_calls_total{job=\"mini\",key=\"gp\"}",
        "dreamplace_memory_peak_bytes{job=\"mini\"",
        "dreamplace_heartbeat_sequence{job=\"mini\"}",
        "dreamplace_heartbeat_hpwl{job=\"mini\"}",
        "dreamplace_heartbeat_best_hpwl{job=\"mini\"}",
        "dreamplace_heartbeat_stage{job=\"mini\",stage=\"done\"} 1",
        "dreamplace_active_flows 1",
        "dreamplace_process_resident_bytes",
        "dreamplace_process_peak_resident_bytes"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  // The render charged its bookkeeping counter to the flow.
  EXPECT_GE(context.counters().snapshot().at("metrics/exports"), 1);
}

TEST(MetricsExportTest, LabelValuesAreEscaped) {
  FlowContext context;
  context.counters().add("weird\"key\\with\nnasties", 1);
  const std::string text =
      renderPrometheusMetrics({MetricsSource{"job\"x", &context}});
  std::string error;
  EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
  EXPECT_NE(text.find("job=\"job\\\"x\""), std::string::npos);
  EXPECT_NE(text.find("weird\\\"key\\\\with\\nnasties"), std::string::npos);
}

TEST(MetricsExportTest, WriteMetricsFileReplacesAtomically) {
  const fs::path dir = fs::temp_directory_path() / "dp_metrics_export_test";
  fs::create_directories(dir);
  const fs::path path = dir / "metrics.prom";

  std::string error;
  ASSERT_TRUE(writeMetricsFile(path.string(), "# first\n", &error)) << error;
  ASSERT_TRUE(writeMetricsFile(path.string(), "# second\n", &error)) << error;

  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "# second\n");
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
}

TEST(MetricsExportTest, WriteMetricsFileFailsWithClearError) {
  std::string error;
  EXPECT_FALSE(writeMetricsFile("/nonexistent_dir_dp/m.prom", "x", &error));
  EXPECT_EQ(error, "metrics: cannot write /nonexistent_dir_dp/m.prom");
}

TEST(MetricsExportTest, ValidatorAcceptsSpecialValuesAndTimestamps) {
  const std::string text =
      "# HELP foo help text\n"
      "# TYPE foo gauge\n"
      "foo{l=\"v\"} NaN\n"
      "foo{l=\"w\"} +Inf\n"
      "foo -Inf\n"
      "foo 1.5e-3 1712345678901\n";
  std::string error;
  std::size_t samples = 0;
  EXPECT_TRUE(validatePrometheusText(text, &error, &samples)) << error;
  EXPECT_EQ(samples, 4u);

  // Empty document: valid, zero samples.
  EXPECT_TRUE(validatePrometheusText("", &error, &samples));
  EXPECT_EQ(samples, 0u);
}

TEST(MetricsExportTest, ValidatorRejectsMalformedDocuments) {
  std::string error;

  // Sample without a preceding TYPE declaration.
  EXPECT_FALSE(validatePrometheusText("foo 1\n", &error));
  EXPECT_NE(error.find("no TYPE line"), std::string::npos);

  // Invalid metric name.
  EXPECT_FALSE(
      validatePrometheusText("# TYPE 1bad gauge\n1bad 1\n", &error));

  // Invalid label name.
  EXPECT_FALSE(validatePrometheusText(
      "# TYPE foo gauge\nfoo{bad-label=\"x\"} 1\n", &error));

  // Unquoted label value.
  EXPECT_FALSE(
      validatePrometheusText("# TYPE foo gauge\nfoo{l=x} 1\n", &error));

  // Non-numeric sample value.
  EXPECT_FALSE(validatePrometheusText("# TYPE foo gauge\nfoo abc\n", &error));

  // Unknown metric type.
  EXPECT_FALSE(validatePrometheusText("# TYPE foo widget\nfoo 1\n", &error));

  // Bad timestamp.
  EXPECT_FALSE(
      validatePrometheusText("# TYPE foo gauge\nfoo 1 12x\n", &error));
}

}  // namespace
}  // namespace dreamplace
