#include <gtest/gtest.h>

#include "db/database.h"
#include "db/metrics.h"

namespace dreamplace {
namespace {

/// Two cells, one 2-pin net with centered pins; HPWL is the center
/// distance in x plus in y.
Database makePairDb(Coord bx, Coord by) {
  Database db;
  const Index a = db.addCell("a", 2, 12, true);
  const Index b = db.addCell("b", 2, 12, true);
  const Index n = db.addNet("n");
  db.addPin(n, a, 0, 0);
  db.addPin(n, b, 0, 0);
  db.setDieArea({0, 0, 200, 120});
  for (int r = 0; r < 10; ++r) {
    db.addRow({static_cast<Coord>(r * 12), 12, 0, 200, 1});
  }
  db.setCellPosition(a, 10, 0);
  db.setCellPosition(b, bx, by);
  db.finalize();
  return db;
}

TEST(MetricsTest, HpwlHandComputed) {
  Database db = makePairDb(50, 24);
  // Centers: (11, 6) and (51, 30) => |dx| + |dy| = 40 + 24.
  EXPECT_DOUBLE_EQ(hpwl(db), 64.0);
}

TEST(MetricsTest, HpwlZeroWhenCoincident) {
  Database db = makePairDb(10, 0);
  EXPECT_DOUBLE_EQ(hpwl(db), 0.0);
}

TEST(MetricsTest, SinglePinNetsIgnored) {
  Database db;
  const Index a = db.addCell("a", 2, 12, true);
  const Index n = db.addNet("n");
  db.addPin(n, a, 0, 0);
  const Index n2 = db.addNet("n2");
  const Index b = db.addCell("b", 2, 12, true);
  db.addPin(n2, a, 0, 0);
  db.addPin(n2, b, 0, 0);
  db.setDieArea({0, 0, 100, 24});
  db.addRow({0, 12, 0, 100, 1});
  db.addRow({12, 12, 0, 100, 1});
  db.setCellPosition(a, 0, 0);
  db.setCellPosition(b, 10, 0);
  db.finalize();
  EXPECT_DOUBLE_EQ(hpwl(db), 10.0);  // only the 2-pin net counts
}

TEST(MetricsTest, ExternalArrayHpwlMatchesCommitted) {
  Database db = makePairDb(50, 24);
  std::vector<double> x(db.numMovable()), y(db.numMovable());
  for (Index i = 0; i < db.numMovable(); ++i) {
    x[i] = db.cellX(i);
    y[i] = db.cellY(i);
  }
  EXPECT_DOUBLE_EQ(hpwl(db, x, y), hpwl(db));
  // Moving b in the external view changes the external HPWL only.
  x[1] += 10;
  EXPECT_DOUBLE_EQ(hpwl(db, x, y), hpwl(db) + 10);
}

TEST(MetricsTest, NetHpwlSumsToTotal) {
  Database db = makePairDb(50, 24);
  double sum = 0;
  for (Index e = 0; e < db.numNets(); ++e) {
    sum += netHpwl(db, e);
  }
  EXPECT_DOUBLE_EQ(sum, hpwl(db));
}

TEST(MetricsTest, OverlapAreaDetectsOverlap) {
  Database db = makePairDb(10, 0);  // identical positions, full overlap
  EXPECT_DOUBLE_EQ(totalOverlapArea(db), 2 * 12.0);
  Database db2 = makePairDb(12, 0);  // abutting
  EXPECT_DOUBLE_EQ(totalOverlapArea(db2), 0.0);
}

TEST(MetricsTest, LegalityLegalCase) {
  Database db = makePairDb(50, 24);
  const LegalityReport report = checkLegality(db);
  EXPECT_TRUE(report.legal) << report.summary();
}

TEST(MetricsTest, LegalityDetectsOffRowOffSiteOutOfRegion) {
  Database db = makePairDb(50.5, 25);  // off-site x, off-row y
  const LegalityReport report = checkLegality(db);
  EXPECT_FALSE(report.legal);
  EXPECT_EQ(report.offSite, 1);
  EXPECT_EQ(report.offRow, 1);

  Database db2 = makePairDb(199, 0);  // b sticks out of the die
  const LegalityReport report2 = checkLegality(db2);
  EXPECT_EQ(report2.outOfRegion, 1);
}

TEST(MetricsTest, LegalityDetectsOverlap) {
  Database db = makePairDb(11, 0);  // a at 10 (width 2) overlaps b at 11
  const LegalityReport report = checkLegality(db);
  EXPECT_FALSE(report.legal);
  EXPECT_GE(report.overlaps, 1);
}

TEST(MetricsTest, AnchoredBoundIsFinite) {
  Database db = makePairDb(50, 24);
  const double bound = anchoredHpwlBound(db);
  EXPECT_GE(bound, 0.0);
}

}  // namespace
}  // namespace dreamplace
