#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/netlist_generator.h"
#include "io/svg_writer.h"

namespace dreamplace {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SvgTest, WritesWellFormedDocument) {
  GeneratorConfig cfg;
  cfg.numCells = 60;
  cfg.numPads = 8;
  cfg.seed = 23;
  auto db = generateNetlist(cfg);
  const fs::path path = fs::temp_directory_path() / "dp_plot.svg";
  writeSvg(*db, path.string());
  const std::string svg = slurp(path);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per cell plus die background.
  size_t rects = 0;
  for (size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_EQ(rects, static_cast<size_t>(db->numCells()) + 1);
  fs::remove(path);
}

TEST(SvgTest, CellClassesColorCells) {
  GeneratorConfig cfg;
  cfg.numCells = 30;
  cfg.seed = 29;
  auto db = generateNetlist(cfg);
  SvgOptions options;
  options.cellClass.assign(db->numMovable(), 0);
  for (Index i = 0; i < db->numMovable(); i += 2) {
    options.cellClass[i] = 1;
  }
  const fs::path path = fs::temp_directory_path() / "dp_plot_classes.svg";
  writeSvg(*db, path.string(), options);
  const std::string svg = slurp(path);
  // Both palette entries appear.
  EXPECT_NE(svg.find("#4878cf"), std::string::npos);
  EXPECT_NE(svg.find("#d65f5f"), std::string::npos);
  fs::remove(path);
}

TEST(SvgTest, UnwritablePathThrows) {
  GeneratorConfig cfg;
  cfg.numCells = 10;
  cfg.seed = 31;
  auto db = generateNetlist(cfg);
  EXPECT_THROW(writeSvg(*db, "/nonexistent_dir/plot.svg"),
               std::runtime_error);
}

}  // namespace
}  // namespace dreamplace
