// Unit tests for the deterministic parallel runtime (common/parallel.h):
// coverage/exactly-once execution, thread-count-independent block
// decomposition, bit-identical reductions, nested-job degradation, pool
// reconfiguration, and the observability counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/counters.h"
#include "common/parallel.h"

namespace dreamplace {
namespace {

/// Forces a pool size for one test, restoring auto-resolution on exit so
/// later tests in the binary see the default configuration.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) {
    ThreadPool::instance().setThreads(threads);
  }
  ~ScopedThreads() { ThreadPool::instance().setThreads(0); }
};

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ScopedThreads scope(threads);
    constexpr Index kN = 10007;  // prime: exercises a ragged tail block
    std::vector<std::atomic<int>> visits(kN);
    for (auto& v : visits) v.store(0);
    parallelFor("test/visit", kN, 64,
                [&](Index i) { visits[i].fetch_add(1); });
    for (Index i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleRangesAreHandled) {
  ScopedThreads scope(4);
  int calls = 0;
  parallelFor("test/empty", 0, 16, [&](Index) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor("test/one", 1, 16, [&](Index i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForBlockedTest, BlockBoundariesIgnoreThreadCount) {
  // The determinism contract: block boundaries are a function of
  // (n, grain) only. Collect the (lo, hi) set at several thread counts
  // and require them identical.
  constexpr Index kN = 777;
  constexpr Index kGrain = 32;
  auto boundaries = [&](int threads) {
    ScopedThreads scope(threads);
    std::mutex m;
    std::vector<std::pair<Index, Index>> blocks;
    parallelForBlocked("test/blocks", kN, kGrain,
                       [&](Index lo, Index hi, int) {
                         std::lock_guard<std::mutex> lock(m);
                         blocks.emplace_back(lo, hi);
                       });
    std::sort(blocks.begin(), blocks.end());
    return blocks;
  };
  const auto b1 = boundaries(1);
  const auto b2 = boundaries(2);
  const auto b4 = boundaries(4);
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b1, b4);
  ASSERT_EQ(b1.size(), static_cast<std::size_t>((kN + kGrain - 1) / kGrain));
  EXPECT_EQ(b1.front().first, 0);
  EXPECT_EQ(b1.back().second, kN);
}

TEST(ParallelForBlockedTest, WorkerIndexWithinPool) {
  ScopedThreads scope(3);
  std::atomic<bool> ok{true};
  parallelForBlocked("test/worker", 64, 1, [&](Index, Index, int worker) {
    if (worker < 0 || worker >= ThreadPool::instance().threads()) {
      ok.store(false);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  // Float accumulation order is fixed by the block decomposition, so the
  // reduction must produce the same bits at any pool size.
  constexpr Index kN = 54321;
  std::vector<double> values(kN);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (double& v : values) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
  }
  auto sum = [&](int threads) {
    ScopedThreads scope(threads);
    return parallelReduce(
        "test/sum", kN, 1024, 0.0,
        [&](Index lo, Index hi) {
          double s = 0.0;
          for (Index i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double s1 = sum(1);
  EXPECT_EQ(s1, sum(2));
  EXPECT_EQ(s1, sum(4));
}

TEST(ParallelReduceTest, MatchesSerialBlockOrder) {
  ScopedThreads scope(4);
  constexpr Index kN = 1000;
  constexpr Index kGrain = 64;
  const double parallel = parallelReduce(
      "test/ordered", kN, kGrain, 0.0,
      [](Index lo, Index hi) {
        double s = 0.0;
        for (Index i = lo; i < hi; ++i) s += 1.0 / (1.0 + i);
        return s;
      },
      [](double acc, double partial) { return acc + partial; });
  double serial = 0.0;
  for (Index lo = 0; lo < kN; lo += kGrain) {
    const Index hi = std::min<Index>(lo + kGrain, kN);
    double s = 0.0;
    for (Index i = lo; i < hi; ++i) s += 1.0 / (1.0 + i);
    serial += s;
  }
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, NestedJobsRunSerialInsteadOfDeadlocking) {
  ScopedThreads scope(4);
  std::atomic<int> total{0};
  parallelFor("test/outer", 8, 1, [&](Index) {
    parallelFor("test/inner", 8, 1, [&](Index) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SetThreadsReconfigures) {
  ThreadPool& pool = ThreadPool::instance();
  pool.setThreads(3);
  EXPECT_EQ(pool.threads(), 3);
  pool.setThreads(1);
  EXPECT_EQ(pool.threads(), 1);
  pool.setThreads(0);  // back to auto
  EXPECT_GE(pool.threads(), 1);
}

TEST(ThreadPoolTest, CountersAndUtilizationAdvance) {
  ScopedThreads scope(2);
  auto& registry = CounterRegistry::instance();
  const auto jobs0 = registry.value("parallel/jobs");
  const auto tasks0 = registry.value("parallel/tasks");
  parallelFor("test/counted", 256, 16, [](Index) {});
  EXPECT_EQ(registry.value("parallel/jobs") - jobs0, 1);
  EXPECT_EQ(registry.value("parallel/tasks") - tasks0, 16);
  const double utilization = ThreadPool::instance().utilization();
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
}

TEST(ThreadPoolTest, SerialModeCountsTasksToo) {
  // The `parallel/tasks >= 1` report invariant must hold on a 1-core
  // machine where every job takes the serial inline path.
  ScopedThreads scope(1);
  auto& registry = CounterRegistry::instance();
  const auto tasks0 = registry.value("parallel/tasks");
  parallelFor("test/serial", 100, 10, [](Index) {});
  EXPECT_EQ(registry.value("parallel/tasks") - tasks0, 10);
}

}  // namespace
}  // namespace dreamplace
