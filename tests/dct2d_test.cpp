#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fft/dct2d.h"

namespace dreamplace::fft {
namespace {

std::vector<double> randomMap(int n1, int n2, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n1) * n2);
  for (double& v : x) {
    v = rng.uniform(-2, 2);
  }
  return x;
}

double maxDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Parameterized over (n1, n2, algorithm): every fast 2-D formulation must
/// agree with the row-column naive oracle.
class Dct2dAlgoTest : public ::testing::TestWithParam<
                          std::tuple<int, int, Dct2dAlgorithm>> {};

TEST_P(Dct2dAlgoTest, ForwardMatchesNaive) {
  const auto [n1, n2, algo] = GetParam();
  auto x = randomMap(n1, n2, n1 * 100 + n2);
  std::vector<double> expected(x.size()), actual(x.size());
  dct2d(x.data(), expected.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  dct2d(x.data(), actual.data(), n1, n2, algo);
  EXPECT_LT(maxDiff(expected, actual), 1e-8 * n1 * n2);
}

TEST_P(Dct2dAlgoTest, InverseMatchesNaive) {
  const auto [n1, n2, algo] = GetParam();
  auto x = randomMap(n1, n2, n1 * 200 + n2);
  std::vector<double> expected(x.size()), actual(x.size());
  idct2d(x.data(), expected.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  idct2d(x.data(), actual.data(), n1, n2, algo);
  EXPECT_LT(maxDiff(expected, actual), 1e-8 * n1 * n2);
}

TEST_P(Dct2dAlgoTest, RoundTripScale) {
  const auto [n1, n2, algo] = GetParam();
  auto x = randomMap(n1, n2, n1 * 300 + n2);
  std::vector<double> c(x.size()), rt(x.size());
  dct2d(x.data(), c.data(), n1, n2, algo);
  idct2d(c.data(), rt.data(), n1, n2, algo);
  const double scale = (n1 / 2.0) * (n2 / 2.0);
  double err = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(rt[i] - scale * x[i]));
  }
  EXPECT_LT(err, 1e-7 * n1 * n2);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, Dct2dAlgoTest,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(4, 8, 16, 32),
                       ::testing::Values(Dct2dAlgorithm::kRowCol2N,
                                         Dct2dAlgorithm::kRowColN,
                                         Dct2dAlgorithm::kFft2dN)));

/// The mixed transforms against their separable definitions.
class MixedTransformTest
    : public ::testing::TestWithParam<Dct2dAlgorithm> {};

TEST_P(MixedTransformTest, IdctIdxstMatchesSeparable) {
  const auto algo = GetParam();
  const int n1 = 8, n2 = 16;
  auto x = randomMap(n1, n2, 41);
  std::vector<double> manual(x.size(), 0.0);
  for (int k1 = 0; k1 < n1; ++k1) {
    for (int k2 = 0; k2 < n2; ++k2) {
      double acc = 0;
      for (int m1 = 0; m1 < n1; ++m1) {
        for (int m2 = 0; m2 < n2; ++m2) {
          const double c1 =
              (m1 == 0 ? 0.5 : 1.0) * std::cos(M_PI * m1 * (k1 + 0.5) / n1);
          const double s2 = std::sin(M_PI * m2 * (k2 + 0.5) / n2);
          acc += x[m1 * n2 + m2] * c1 * s2;
        }
      }
      manual[k1 * n2 + k2] = acc;
    }
  }
  std::vector<double> actual(x.size());
  idctIdxst(x.data(), actual.data(), n1, n2, algo);
  EXPECT_LT(maxDiff(manual, actual), 1e-9 * n1 * n2);
}

TEST_P(MixedTransformTest, IdxstIdctMatchesSeparable) {
  const auto algo = GetParam();
  const int n1 = 16, n2 = 8;
  auto x = randomMap(n1, n2, 42);
  std::vector<double> manual(x.size(), 0.0);
  for (int k1 = 0; k1 < n1; ++k1) {
    for (int k2 = 0; k2 < n2; ++k2) {
      double acc = 0;
      for (int m1 = 0; m1 < n1; ++m1) {
        for (int m2 = 0; m2 < n2; ++m2) {
          const double s1 = std::sin(M_PI * m1 * (k1 + 0.5) / n1);
          const double c2 =
              (m2 == 0 ? 0.5 : 1.0) * std::cos(M_PI * m2 * (k2 + 0.5) / n2);
          acc += x[m1 * n2 + m2] * s1 * c2;
        }
      }
      manual[k1 * n2 + k2] = acc;
    }
  }
  std::vector<double> actual(x.size());
  idxstIdct(x.data(), actual.data(), n1, n2, algo);
  EXPECT_LT(maxDiff(manual, actual), 1e-9 * n1 * n2);
}

INSTANTIATE_TEST_SUITE_P(Algos, MixedTransformTest,
                         ::testing::Values(Dct2dAlgorithm::kRowCol2N,
                                           Dct2dAlgorithm::kRowColN,
                                           Dct2dAlgorithm::kFft2dN));

TEST(Dct2dTest, OddFirstDimensionUsesBluestein) {
  // n1 = 5 forces the Bluestein path in the column FFTs of the 2-D
  // single-pass transform (only n2 must be even).
  const int n1 = 5, n2 = 8;
  auto x = randomMap(n1, n2, 77);
  std::vector<double> a(x.size()), b(x.size());
  dct2d(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  dct2d(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
  idct2d(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  idct2d(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
}

TEST(Dct2dTest, EvenNonPowerOfTwoUsesBluestein) {
  // 12 and 20 are even but not powers of two, so the row real FFTs run a
  // Bluestein half-size transform and the column FFTs are Bluestein
  // outright — all four transform kinds must still match the oracle.
  const int n1 = 12, n2 = 20;
  auto x = randomMap(n1, n2, 555);
  std::vector<double> a(x.size()), b(x.size());
  dct2d(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  dct2d(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
  idct2d(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  idct2d(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
  idctIdxst(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  idctIdxst(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
  idxstIdct(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  idxstIdct(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
}

TEST(Dct2dPlanTest, PlanMatchesStatelessEntryPoints) {
  const int n1 = 16, n2 = 32;
  auto x = randomMap(n1, n2, 321);
  std::vector<double> via_plan(x.size()), via_free(x.size());
  Dct2dPlan<double> plan(n1, n2, Dct2dAlgorithm::kFft2dN);
  plan.dct2d(x.data(), via_plan.data());
  dct2d(x.data(), via_free.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_EQ(maxDiff(via_plan, via_free), 0.0);
  plan.idctIdxst(x.data(), via_plan.data());
  idctIdxst(x.data(), via_free.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_EQ(maxDiff(via_plan, via_free), 0.0);
  plan.idxstIdct(x.data(), via_plan.data());
  idxstIdct(x.data(), via_free.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_EQ(maxDiff(via_plan, via_free), 0.0);
}

TEST(Dct2dTest, NonSquareMaps) {
  const int n1 = 8, n2 = 32;
  auto x = randomMap(n1, n2, 99);
  std::vector<double> a(x.size()), b(x.size());
  dct2d(x.data(), a.data(), n1, n2, Dct2dAlgorithm::kRowColNaive);
  dct2d(x.data(), b.data(), n1, n2, Dct2dAlgorithm::kFft2dN);
  EXPECT_LT(maxDiff(a, b), 1e-8 * n1 * n2);
}

TEST(Dct2dTest, ConstantMapHasOnlyDc) {
  const int n = 16;
  std::vector<double> x(n * n, 3.0);
  std::vector<double> c(n * n);
  dct2d(x.data(), c.data(), n, n, Dct2dAlgorithm::kFft2dN);
  EXPECT_NEAR(c[0], 3.0 * n * n, 1e-8);
  for (size_t i = 1; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 0.0, 1e-8);
  }
}

TEST(Dct2dFloatTest, SinglePrecisionAgreesWithDouble) {
  const int n = 32;
  Rng rng(123);
  std::vector<float> xf(n * n);
  std::vector<double> xd(n * n);
  for (int i = 0; i < n * n; ++i) {
    xd[i] = rng.uniform(-1, 1);
    xf[i] = static_cast<float>(xd[i]);
  }
  std::vector<float> cf(n * n);
  std::vector<double> cd(n * n);
  dct2d(xf.data(), cf.data(), n, n, Dct2dAlgorithm::kFft2dN);
  dct2d(xd.data(), cd.data(), n, n, Dct2dAlgorithm::kFft2dN);
  double err = 0;
  for (int i = 0; i < n * n; ++i) {
    err = std::max(err, std::abs(cf[i] - cd[i]));
  }
  EXPECT_LT(err, 5e-2);
}

}  // namespace
}  // namespace dreamplace::fft
